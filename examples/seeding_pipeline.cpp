/**
 * @file
 * Example: a two-stage seeding pipeline on BEACON-D.
 *
 * Demonstrates the public API end to end for a realistic scenario:
 * build a reference index, simulate FM-index seeding and hash-index
 * seeding for the same read set on one machine configuration, and
 * inspect the statistics a deployment would monitor (per-DIMM row
 * hits, link traffic, energy split).
 *
 *   $ ./seeding_pipeline [genome_log2=17] [reads=512]
 */

#include <cstdio>
#include <cstdlib>

#include "accel/cpu_baseline.hh"
#include "accel/experiment.hh"
#include "accel/system.hh"
#include "accel/workload.hh"

using namespace beacon;

int
main(int argc, char **argv)
{
    const unsigned genome_log2 =
        argc > 1 ? unsigned(std::atoi(argv[1])) : 17;
    const std::size_t num_reads =
        argc > 2 ? std::size_t(std::atoi(argv[2])) : 512;

    genomics::DatasetPreset preset = genomics::seedingPresets()[0];
    preset.genome.length = std::size_t{1} << genome_log2;
    preset.reads.num_reads = num_reads;

    std::printf("reference: %zu bases, %zu reads of %zu bp\n",
                preset.genome.length, preset.reads.num_reads,
                preset.reads.read_length);

    std::printf("\n[1/2] FM-index seeding (BWA-MEM style)\n");
    FmSeedingWorkload fm(preset);
    {
        NdpSystem system(SystemParams::beaconD(), fm);
        const RunResult r = system.run(0);
        const CpuBaselineResult cpu = cpuBaseline(
            measureFootprint(fm, WorkloadContext{}));
        std::printf("  %zu reads seeded in %.1f us "
                    "(%.1fx over 48-thread CPU)\n",
                    std::size_t(r.tasks), r.seconds * 1e6,
                    cpu.seconds / r.seconds);
        std::printf("  DRAM row hits: %.0f, conflicts: %.0f\n",
                    system.stats().sumMatching("rowHits"),
                    system.stats().sumMatching("rowConflicts"));
        std::printf("  wire traffic: %.2f MB, energy: %.1f uJ "
                    "(%.0f%% communication)\n",
                    double(r.wire_bytes.value()) / 1e6,
                    r.energy.totalPj().value() * 1e-6,
                    100 * r.energy.commFraction());
    }

    std::printf("\n[2/2] Hash-index seeding (SMALT style)\n");
    HashSeedingWorkload hash(preset);
    {
        NdpSystem system(SystemParams::beaconD(), hash);
        const RunResult r = system.run(0);
        const CpuBaselineResult cpu = cpuBaseline(
            measureFootprint(hash, WorkloadContext{}));
        std::printf("  %zu reads seeded in %.1f us "
                    "(%.1fx over 48-thread CPU)\n",
                    std::size_t(r.tasks), r.seconds * 1e6,
                    cpu.seconds / r.seconds);
        std::printf("  hash index: %zu buckets, %zu KiB of "
                    "locations\n",
                    hash.index().numBuckets(),
                    hash.index().locationBytes() >> 10);
        std::printf("  wire traffic: %.2f MB, energy: %.1f uJ\n",
                    double(r.wire_bytes.value()) / 1e6,
                    r.energy.totalPj().value() * 1e-6);
    }
    return 0;
}
