/**
 * @file
 * Example: a command-line experiment runner.
 *
 * Composes any evaluated system with any application and dataset
 * from the command line, runs it, and emits a human summary plus an
 * optional JSON report — the entry point a downstream user scripts
 * against.
 *
 *   $ ./run_experiment --system beacon-d --app fm --dataset Pt
 *   $ ./run_experiment --system nest --app kmc --json report.json
 *   $ ./run_experiment --list
 *
 * Options: --system {medal,nest,vanilla-d,vanilla-s,beacon-d,
 * beacon-s}, --app {fm,hash,kmc,prealign,bfs,dbprobe}, --dataset
 * {Pt,Pg,Ss,Am,Nf}, --tasks N, --ideal, --json FILE.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "accel/cpu_baseline.hh"
#include "accel/experiment.hh"
#include "accel/extension_workloads.hh"
#include "accel/report.hh"
#include "accel/system.hh"

using namespace beacon;

namespace
{

void
usage()
{
    std::printf(
        "usage: run_experiment [--system S] [--app A] [--dataset D]\n"
        "                      [--tasks N] [--ideal] [--json FILE]\n"
        "  systems:  medal nest vanilla-d vanilla-s beacon-d "
        "beacon-s\n"
        "  apps:     fm hash kmc prealign bfs dbprobe\n"
        "  datasets: Pt Pg Ss Am Nf (seeding apps only)\n");
}

SystemParams
systemByName(const std::string &name)
{
    if (name == "medal")
        return SystemParams::medal();
    if (name == "nest")
        return SystemParams::nest();
    if (name == "vanilla-d")
        return SystemParams::cxlVanillaD();
    if (name == "vanilla-s")
        return SystemParams::cxlVanillaS();
    if (name == "beacon-s")
        return SystemParams::beaconS();
    return SystemParams::beaconD();
}

std::unique_ptr<Workload>
workloadByName(const std::string &app, const std::string &dataset)
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[0];
    for (const auto &candidate : genomics::seedingPresets()) {
        if (dataset == candidate.name)
            preset = candidate;
    }
    preset.genome.length = 1 << 17;
    preset.reads.num_reads = 512;

    if (app == "hash")
        return std::make_unique<HashSeedingWorkload>(preset);
    if (app == "kmc") {
        genomics::DatasetPreset kp = genomics::kmerCountingPreset();
        kp.genome.length = 1 << 17;
        return std::make_unique<KmerCountingWorkload>(kp);
    }
    if (app == "prealign")
        return std::make_unique<PrealignWorkload>(preset);
    if (app == "bfs") {
        graph::GraphParams gp;
        gp.num_vertices = 1 << 14;
        return std::make_unique<GraphBfsWorkload>(gp, 256, 256);
    }
    if (app == "dbprobe")
        return std::make_unique<DbProbeWorkload>();
    return std::make_unique<FmSeedingWorkload>(preset);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string system_name = "beacon-d";
    std::string app = "fm";
    std::string dataset = "Pt";
    std::string json_path;
    std::size_t tasks = 0;
    bool ideal = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--system")
            system_name = next();
        else if (arg == "--app")
            app = next();
        else if (arg == "--dataset")
            dataset = next();
        else if (arg == "--tasks")
            tasks = std::size_t(std::atoll(next()));
        else if (arg == "--ideal")
            ideal = true;
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--list" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    SystemParams params = systemByName(system_name);
    if (ideal)
        params = params.idealized();
    const std::unique_ptr<Workload> workload =
        workloadByName(app, dataset);

    std::printf("running %s on %s (%zu tasks)...\n",
                workload->name().c_str(), params.name.c_str(),
                tasks ? tasks : workload->numTasks());
    const RunResult result = runSystem(params, *workload, tasks);
    const CpuBaselineResult cpu = cpuBaseline(measureFootprint(
        *workload,
        WorkloadContext{params.opts.kmc_single_pass, 0}));

    std::printf("  time            %.2f us (%s vs 48-thread CPU)\n",
                result.seconds * 1e6,
                formatX(cpu.seconds / result.seconds).c_str());
    std::printf("  throughput      %.2f M tasks/s\n",
                result.tasks_per_second / 1e6);
    std::printf("  energy          %.2f uJ (comm %.1f%%, dram "
                "%.1f%%, PE %.1f%%)\n",
                result.energy.totalPj().value() * 1e-6,
                100 * result.energy.commFraction(),
                100 * result.energy.dram_pj.value() /
                    result.energy.totalPj().value(),
                100 * result.energy.peFraction());
    std::printf("  wire traffic    %.3f MB, host round trips %llu\n",
                double(result.wire_bytes.value()) / 1e6,
                static_cast<unsigned long long>(
                    result.host_round_trips));
    std::printf("  DRAM            %llu reads, %llu writes, chip "
                "cov %.3f\n",
                static_cast<unsigned long long>(result.dram_reads),
                static_cast<unsigned long long>(result.dram_writes),
                result.chip_access_cov);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        writeRunResultsJson(out, {result});
        std::printf("  report          %s\n", json_path.c_str());
    }
    return 0;
}
