/**
 * @file
 * Example: exploring the memory-management framework.
 *
 * Walks through the Fig. 8 flows directly against the public
 * memmgmt API: allocate two applications into one pool, watch the
 * framework choose DIMMs, clean memory (migrating the first
 * tenant), mark regions non-cacheable, resolve addresses under
 * different placement policies, and de-allocate.
 *
 *   $ ./pool_explorer
 */

#include <cstdio>

#include "memmgmt/framework.hh"

using namespace beacon;

namespace
{

std::vector<PoolDimm>
buildPool()
{
    std::vector<PoolDimm> pool;
    for (unsigned s = 0; s < 2; ++s) {
        for (unsigned d = 0; d < 4; ++d) {
            PoolDimm dimm;
            dimm.node = NodeId::dimmNode(s, d);
            dimm.kind = d == 0 ? DimmKind::Cxlg
                               : DimmKind::Unmodified;
            if (dimm.kind == DimmKind::Cxlg) {
                dimm.geom.per_rank_lanes = true;
                dimm.geom.per_rank_cmd_bus = true;
            }
            pool.push_back(dimm);
        }
    }
    return pool;
}

StructureSpec
indexStructure(std::uint64_t bytes)
{
    StructureSpec spec;
    spec.cls = DataClass::FmOcc;
    spec.bytes = Bytes{bytes};
    spec.read_only = true;
    spec.access_granule = 32;
    return spec;
}

void
describe(const MemoryFramework &framework,
         const AllocationResponse &response, const char *app)
{
    std::printf("allocation '%s': %s\n", app,
                response.success ? "success"
                                 : response.error.c_str());
    if (!response.success)
        return;
    std::printf("  DIMMs dedicated (non-cacheable for the host): ");
    for (unsigned dimm : response.allocated_dimms)
        std::printf("%s ", framework.dimms()[dimm].node.str().c_str());
    std::printf("\n  memory clean migrated %.1f GiB\n",
                double(response.migrated_bytes.value()) /
                    double(1ull << 30));
}

} // namespace

int
main()
{
    MemoryFramework framework(buildPool());
    std::printf("pool: %zu DIMMs x 64 GiB (2 CXLG)\n\n",
                framework.dimms().size());

    // --- First tenant: a large k-mer counting run (SMUFIN-sized).
    AllocationRequest smufin;
    smufin.app = "smufin-kmer";
    StructureSpec filter;
    filter.cls = DataClass::BloomCounter;
    filter.bytes = Bytes{180ull << 30}; // ~180 GiB of counters
    filter.read_only = false;
    filter.access_granule = 8;
    smufin.structures = {filter};
    smufin.policy.partitions = 2;
    smufin.policy.partition_switch = {0, 1};
    describe(framework, framework.allocate(smufin), "smufin-kmer");

    // --- Second tenant: seeding with proximity placement.
    AllocationRequest seeding;
    seeding.app = "bwa-seeding";
    seeding.structures = {indexStructure(64ull << 30)};
    seeding.policy.placement_opt = true;
    seeding.policy.replicate_read_only = true;
    seeding.policy.partitions = 2;
    seeding.policy.partition_switch = {0, 1};
    seeding.policy.partition_primary = {{0}, {4}};
    const AllocationResponse response = framework.allocate(seeding);
    describe(framework, response, "bwa-seeding");

    // --- Address resolution under the placement policy.
    std::printf("\nresolving FM-index offsets for partition 0:\n");
    for (std::uint64_t offset : {0ull, 32ull, 64ull, 4096ull}) {
        const auto pieces = response.layout->resolve(
            DataClass::FmOcc, offset, Bytes{32}, 0);
        for (const ResolvedAccess &acc : pieces) {
            std::printf("  offset %5llu -> %s rank %u bg %u bank "
                        "%u row %u col %u chips [%u..%u)\n",
                        static_cast<unsigned long long>(offset),
                        acc.node.str().c_str(), acc.coord.rank,
                        acc.coord.bank_group, acc.coord.bank,
                        acc.coord.row.value(), acc.coord.column,
                        acc.coord.chip_first,
                        acc.coord.chip_first +
                            acc.coord.chip_count);
        }
    }

    // --- De-allocation (Fig. 8 right flow).
    std::printf("\nde-allocating both tenants: %s, %s\n",
                framework.deallocate("smufin-kmer") ? "ok" : "fail",
                framework.deallocate("bwa-seeding") ? "ok" : "fail");
    std::printf("dimm0.0 non-cacheable after de-allocation: %s\n",
                framework.isNonCacheable(0) ? "yes" : "no");
    return 0;
}
