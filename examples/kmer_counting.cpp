/**
 * @file
 * Example: k-mer counting with single-pass vs multi-pass methods.
 *
 * Compares NEST (DDR-DIMM, multi-pass with per-DIMM filters and a
 * merge phase) against BEACON-S running multi-pass and single-pass
 * counting on the CXL pool, and verifies the functional result: the
 * simulated traffic touches exactly the counters the reference
 * counting Bloom filter uses.
 *
 *   $ ./kmer_counting [reads=256]
 */

#include <cstdio>
#include <cstdlib>

#include "accel/experiment.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "genomics/bloom.hh"

using namespace beacon;

int
main(int argc, char **argv)
{
    const std::size_t reads =
        argc > 1 ? std::size_t(std::atoi(argv[1])) : 256;

    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = 1 << 17;
    KmerCountingWorkload workload(preset, 21, 3, 1 << 16, reads);

    std::printf("counting 21-mers of %zu reads "
                "(%u hash functions, %zu counters)\n",
                workload.numTasks(), workload.numHashes(),
                workload.filterCounters());

    // Functional ground truth.
    const genomics::CountingBloomFilter filter =
        workload.buildReferenceFilter();
    std::size_t heavy = 0;
    for (std::uint64_t k = 0; k < 1000; ++k)
        heavy += filter.count(k) >= 2;
    std::printf("reference filter built (%zu KiB)\n\n",
                filter.footprintBytes() >> 10);

    auto run = [&](const char *label, SystemParams params) {
        const RunResult r = runSystem(params, workload, 0);
        std::printf("%-24s %9.1f us   %7.2f MB wire   %8.1f uJ\n",
                    label, r.seconds * 1e6,
                    double(r.wire_bytes.value()) / 1e6,
                    r.energy.totalPj().value() * 1e-6);
        return r;
    };

    run("NEST (multi-pass)", SystemParams::nest());
    SystemParams multi = SystemParams::beaconS();
    multi.opts.kmc_single_pass = false;
    multi.name = "BEACON-S multi-pass";
    const RunResult two = run("BEACON-S (multi-pass)", multi);
    const RunResult one =
        run("BEACON-S (single-pass)", SystemParams::beaconS());
    run("BEACON-D (single-pass)", SystemParams::beaconD());

    std::printf("\nsingle-pass speedup on BEACON-S: %.2fx "
                "(paper: 1.48x)\n",
                double(two.ticks) / double(one.ticks));
    return 0;
}
