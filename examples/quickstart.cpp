/**
 * @file
 * Quickstart: build a small FM-index seeding workload, run it on
 * MEDAL, CXL-vanilla, and BEACON-D, and print the comparison.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "accel/cpu_baseline.hh"
#include "accel/experiment.hh"
#include "accel/system.hh"
#include "accel/workload.hh"

using namespace beacon;

int
main()
{
    // A small synthetic dataset (the "Nf" preset, scaled down).
    genomics::DatasetPreset preset = genomics::seedingPresets()[4];
    preset.genome.length = 1 << 16;
    preset.reads.num_reads = 64;

    std::printf("building FM-index over %zu bases...\n",
                preset.genome.length);
    FmSeedingWorkload workload(preset);

    const WorkloadFootprint footprint =
        measureFootprint(workload, WorkloadContext{});
    const CpuBaselineResult cpu = cpuBaseline(footprint);
    std::printf("CPU baseline (48-thread Xeon model): %.1f us\n",
                cpu.seconds * 1e6);

    const SystemParams systems[] = {
        SystemParams::medal(),
        SystemParams::cxlVanillaD(),
        SystemParams::beaconD(),
    };

    std::printf("%-16s %12s %12s %10s %12s\n", "system", "time(us)",
                "vs CPU", "wireMB", "energy(uJ)");
    for (const SystemParams &params : systems) {
        const RunResult r = runSystem(params, workload, 0);
        std::printf("%-16s %12.1f %12s %10.3f %12.2f\n",
                    r.system.c_str(), r.seconds * 1e6,
                    formatX(cpu.seconds / r.seconds).c_str(),
                    double(r.wire_bytes.value()) / 1e6,
                    r.energy.totalPj().value() * 1e-6);
    }
    return 0;
}
