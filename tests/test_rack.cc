/**
 * @file
 * Rack-scale subsystem tests: HDM decoder address-math properties
 * (decode/encode round-trips under randomized ways and granularities,
 * cross-host non-aliasing), pool-fabric node registration guards, the
 * memmgmt reservation / candidate-restricted evacuation primitives
 * the hot-plug path uses, and whole-rack runs — multi-host smoke,
 * serial-vs-sharded bit-identity, and hot-remove / hot-add / VCS
 * rebind mid-run with clean finalize checks.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "accel/system.hh"
#include "accel/workload.hh"
#include "check/checker_config.hh"
#include "common/rng.hh"
#include "memmgmt/framework.hh"
#include "rack/system.hh"

namespace beacon
{
namespace
{

using rack::HdmDecoded;
using rack::HdmDecoder;
using rack::HdmRange;
using rack::RackParams;
using rack::RackReport;
using rack::RackSystem;
using rack::SegmentParams;

// ---------------------------------------------------------------
// HdmDecoder address math
// ---------------------------------------------------------------

TEST(HdmDecoderTest, RoundTripsRandomizedWaysAndGranularities)
{
    Rng rng(42);
    for (unsigned iter = 0; iter < 64; ++iter) {
        const unsigned ways = 1 + unsigned(rng.next(4));
        const std::uint64_t gran = 64ull << rng.next(7); // 64..4096
        const std::uint64_t tiles = 1 + rng.next(64);
        HdmRange range;
        range.base = rng.next(1u << 20) * gran;
        range.size = Bytes{tiles * gran * ways};
        range.dpa_base = rng.next(1u << 20) * gran;
        range.ways = ways;
        range.granularity = Bytes{gran};
        for (unsigned w = 0; w < ways; ++w)
            range.targets.push_back(8 + w);
        HdmDecoder dec;
        dec.addRange(range);

        for (unsigned probe = 0; probe < 256; ++probe) {
            const std::uint64_t hpa =
                range.base + rng.next(range.size.value());
            const HdmDecoded d = dec.decode(hpa);
            // Granule g of the range lands on target g % ways.
            const std::uint64_t g = (hpa - range.base) / gran;
            EXPECT_EQ(d.way, unsigned(g % ways));
            EXPECT_EQ(d.target, range.targets[g % ways]);
            // encode() inverts decode() exactly.
            EXPECT_EQ(dec.encode(d.range, d.way, d.dpa), hpa)
                << "ways=" << ways << " gran=" << gran
                << " hpa=" << hpa;
        }
    }
}

TEST(HdmDecoderTest, ForEachGranuleCoversSpanInAddressOrder)
{
    HdmRange range;
    range.base = 4096;
    range.size = Bytes{8 * 256 * 2};
    range.dpa_base = 0;
    range.ways = 2;
    range.granularity = Bytes{256};
    range.targets = {8, 9};
    HdmDecoder dec;
    dec.addRange(range);

    std::uint64_t covered = 0, expect_at = 4096 + 100;
    std::uint64_t at = expect_at;
    dec.forEachGranule(at, Bytes{1000},
                       [&](const HdmDecoded &d, Bytes bytes) {
                           EXPECT_EQ(dec.encode(d.range, d.way, d.dpa),
                                     expect_at);
                           // Pieces never straddle a granule.
                           EXPECT_LE((expect_at % 256) + bytes.value(),
                                     256u);
                           expect_at += bytes.value();
                           covered += bytes.value();
                       });
    EXPECT_EQ(covered, 1000u);
}

TEST(HdmDecoderTest, NoTwoHostsAliasTheSameDeviceAddress)
{
    // Two hosts interleaving over the SAME targets, with the rack's
    // disjoint-DPA-window construction: no (target, dpa) pair may be
    // reachable from both.
    const std::uint64_t window = 1u << 20;
    HdmDecoder host0, host1;
    for (unsigned h = 0; h < 2; ++h) {
        HdmRange range;
        range.base = h * window;
        range.size = Bytes{window};
        range.dpa_base = h * window;
        range.ways = 2;
        range.granularity = Bytes{256};
        range.targets = {8, 9};
        (h == 0 ? host0 : host1).addRange(range);
    }
    Rng rng(7);
    std::set<std::pair<unsigned, std::uint64_t>> seen;
    for (unsigned probe = 0; probe < 4096; ++probe) {
        const HdmDecoded a = host0.decode(rng.next(window));
        const HdmDecoded b = host1.decode(window + rng.next(window));
        seen.insert({a.target, a.dpa});
        EXPECT_EQ(seen.count({b.target, b.dpa}), 0u)
            << "host1 aliases host0 at dpa " << b.dpa;
    }
}

TEST(HdmDecoderDeathTest, RejectsBadProgramming)
{
    HdmDecoder dec;
    HdmRange range;
    range.base = 0;
    range.size = Bytes{512};
    range.ways = 2;
    range.granularity = Bytes{96}; // not a power of two
    range.targets = {8, 9};
    EXPECT_DEATH(dec.addRange(range), "power of two");

    range.granularity = Bytes{128};
    range.size = Bytes{384}; // does not tile 2 * 128
    EXPECT_DEATH(dec.addRange(range), "tile");

    range.size = Bytes{512};
    dec.addRange(range);
    HdmRange overlap = range;
    overlap.base = 256; // overlaps [0, 512)
    EXPECT_DEATH(dec.addRange(overlap), "overlaps");
    EXPECT_DEATH(dec.decode(4096), "no HDM range");
}

// ---------------------------------------------------------------
// PoolFabric registration guards
// ---------------------------------------------------------------

TEST(RackFabricDeathTest, DuplicateAndUnregisteredNodesAreFatal)
{
    SystemParams params = SystemParams::beaconD();
    NdpSystem system(params);
    PoolFabric &fabric = system.poolFabric();

    // The constructor registered the built-in nodes already.
    EXPECT_TRUE(fabric.isRegistered(NodeId::host()));
    EXPECT_TRUE(fabric.isRegistered(system.dimmNodeId(0)));
    EXPECT_DEATH(fabric.registerNode(NodeId::host()),
                 "duplicate fabric registration");

    const NodeId extra = NodeId::hostNode(3);
    EXPECT_FALSE(fabric.isRegistered(extra));
    EXPECT_DEATH(fabric.setNodeHome(extra, 1),
                 "unregistered fabric node");
    fabric.registerNode(extra);
    EXPECT_DEATH(fabric.registerNode(extra),
                 "duplicate fabric registration");
    fabric.setNodeHome(extra, 1);
    fabric.unregisterNode(extra);
    EXPECT_FALSE(fabric.isRegistered(extra));
    EXPECT_DEATH(fabric.unregisterNode(extra),
                 "unknown fabric node");
}

// ---------------------------------------------------------------
// memmgmt primitives the hot-plug path relies on
// ---------------------------------------------------------------

TEST(RackMemmgmtTest, ReserveReleaseAndCandidateEvacuation)
{
    SystemParams params = SystemParams::beaconD();
    NdpSystem system(params);
    MemoryFramework &fw = system.memoryFramework();

    const Bytes chunk{1u << 20};
    std::string err;
    ASSERT_TRUE(fw.reserveOn("rack.test", 0, chunk, &err)) << err;
    EXPECT_EQ(fw.appBytesOn("rack.test", 0), chunk);
    EXPECT_EQ(fw.appBytesOn("rack.test", 1), Bytes{});

    // Candidate-restricted evacuation: everything must land on 2.
    std::vector<RegionMove> moves;
    const std::vector<unsigned> candidates{2};
    ASSERT_TRUE(fw.evacuate(0, &moves, &err, &candidates)) << err;
    Bytes moved;
    for (const RegionMove &mv : moves) {
        EXPECT_EQ(mv.from, 0u);
        EXPECT_EQ(mv.to, 2u);
        moved += mv.bytes;
    }
    EXPECT_GE(moved, chunk);
    EXPECT_EQ(fw.appBytesOn("rack.test", 0), Bytes{});
    EXPECT_GE(fw.appBytesOn("rack.test", 2), chunk);
    EXPECT_TRUE(fw.releaseOn("rack.test", 2));
}

// ---------------------------------------------------------------
// Whole-rack runs
// ---------------------------------------------------------------

const HashSeedingWorkload &
rackWorkload()
{
    static const HashSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[3];
        preset.genome.length = 1 << 13;
        preset.reads.num_reads = 16;
        return HashSeedingWorkload(preset);
    }();
    return workload;
}

RackParams
smallRack(unsigned hosts, bool checkers)
{
    RackParams p;
    p.hosts = hosts;
    p.switch_levels = 1;
    p.interleave_ways = 2;
    p.hdm_bytes_per_host = Bytes{1u << 20};
    SegmentParams seg;
    seg.name = "reference";
    seg.bytes = Bytes{1u << 16};
    seg.owner_dimm = 8; // first expansion DIMM of the BEACON-D base
    p.segments.push_back(seg);
    if (checkers)
        p.base.checkers = CheckerConfig::all();
    return p;
}

void
addRackTenants(RackSystem &rack, unsigned jobs_per_host = 3)
{
    for (unsigned h = 0; h < rack.numHosts(); ++h) {
        TenantSpec spec;
        spec.name = "host" + std::to_string(h) + ".t0";
        spec.workload = &rackWorkload();
        spec.num_jobs = jobs_per_host;
        spec.tasks_per_job = 2;
        spec.arrival.concurrency = 2;
        ASSERT_NE(rack.addTenant(h, spec), untenanted_id);
    }
}

TEST(RackSystemTest, TwoHostsShareThePoolAndASegment)
{
    RackSystem rack(smallRack(2, /*checkers=*/true));
    EXPECT_EQ(rack.expansionDimms().size(), 4u);
    EXPECT_TRUE(rack.online(8));
    // Round-robin binding: 8,10 -> host 0; 9,11 -> host 1.
    EXPECT_EQ(rack.boundHost(8), 0u);
    EXPECT_EQ(rack.boundHost(9), 1u);
    EXPECT_EQ(rack.decoder(0).range(0).targets,
              (std::vector<unsigned>{8, 10}));
    EXPECT_EQ(rack.decoder(1).range(0).targets,
              (std::vector<unsigned>{9, 11}));

    addRackTenants(rack);
    const RackReport report = rack.run();

    ASSERT_EQ(report.hosts.size(), 2u);
    for (const ServiceReport &host : report.hosts) {
        ASSERT_EQ(host.tenants.size(), 1u);
        EXPECT_EQ(host.tenants[0].jobs_completed, 3u);
    }
    EXPECT_GT(report.ingress_bytes, Bytes{});
    // Both hosts touched the shared segment: cold misses, then hits.
    EXPECT_GT(report.cache_misses, 0u);
    EXPECT_GT(report.cache_hits, 0u);
    EXPECT_GT(report.pool_utilization, 0.0);
    EXPECT_EQ(report.hot_adds + report.hot_removes + report.rebinds,
              0u);
}

TEST(RackSystemTest, SegmentWritesBackInvalidateSharers)
{
    RackParams p = smallRack(2, /*checkers=*/true);
    p.segment_write_every = 2; // write-heavy: force BI traffic
    RackSystem rack(p);
    addRackTenants(rack, /*jobs_per_host=*/4);
    const RackReport report = rack.run();
    EXPECT_GT(report.bi_flits, 0u);
    EXPECT_GT(report.invalidations, 0u);
}

TEST(RackSystemTest, SerialAndShardedRunsAreBitIdentical)
{
    const auto observe = [](unsigned shards) {
        RackParams p = smallRack(2, /*checkers=*/false);
        if (shards > 0) {
            p.base.des.force_sharded = true;
            p.base.des.shards = shards;
        }
        RackSystem rack(p);
        addRackTenants(rack);
        const RackReport report = rack.run();
        std::ostringstream os;
        rack.machine().stats().dump(os);
        return std::pair<std::string, std::uint64_t>(
            os.str(), report.machine.ticks);
    };
    const auto serial = observe(0);
    const auto sharded = observe(4);
    EXPECT_EQ(serial.second, sharded.second);
    ASSERT_EQ(serial.first, sharded.first)
        << "rack stat registry diverged between serial and sharded";
}

TEST(RackSystemTest, HotRemoveMidRunMigratesAndCompletes)
{
    RackParams p = smallRack(2, /*checkers=*/true);
    RackSystem rack(p);
    addRackTenants(rack, /*jobs_per_host=*/4);
    // DIMM 9 holds host 1's HDM share and is removed mid-run; its
    // regions must migrate to the surviving expanders.
    rack.scheduleHotRemove(Tick{400000}, 9);
    const RackReport report = rack.run();

    EXPECT_EQ(report.hot_removes, 1u);
    EXPECT_GT(report.migrated_bytes, Bytes{});
    EXPECT_FALSE(rack.online(9));
    for (unsigned h = 0; h < 2; ++h) {
        for (unsigned target : rack.decoder(h).range(0).targets)
            EXPECT_NE(target, 9u);
    }
    for (const ServiceReport &host : report.hosts)
        EXPECT_EQ(host.tenants[0].jobs_completed, 4u);
}

TEST(RackSystemTest, HotRemoveRehomesOwnedSegment)
{
    RackParams p = smallRack(2, /*checkers=*/true);
    RackSystem rack(p);
    addRackTenants(rack, /*jobs_per_host=*/4);
    // DIMM 8 owns the shared segment; removing it must re-home the
    // directory and stream the segment to a surviving expander.
    rack.scheduleHotRemove(Tick{400000}, 8);
    const RackReport report = rack.run();
    EXPECT_EQ(report.hot_removes, 1u);
    EXPECT_NE(rack.segment(0).owner(), 8u);
    EXPECT_TRUE(rack.online(rack.segment(0).owner()));
    EXPECT_GE(report.migrated_bytes, Bytes{1u << 16});
    for (const ServiceReport &host : report.hosts)
        EXPECT_EQ(host.tenants[0].jobs_completed, 4u);
}

TEST(RackSystemTest, HotAddAndRebindReshapeTheDecoders)
{
    RackParams p = smallRack(2, /*checkers=*/true);
    RackSystem rack(p);
    addRackTenants(rack, /*jobs_per_host=*/4);
    rack.scheduleHotRemove(Tick{300000}, 11);
    rack.scheduleHotAdd(Tick{600000}, 11);
    rack.scheduleRebind(Tick{900000}, 10, /*new_host=*/1);
    const RackReport report = rack.run();

    EXPECT_EQ(report.hot_removes, 1u);
    EXPECT_EQ(report.hot_adds, 1u);
    EXPECT_EQ(report.rebinds, 1u);
    EXPECT_TRUE(rack.online(11));
    EXPECT_EQ(rack.boundHost(10), 1u);
    for (const ServiceReport &host : report.hosts)
        EXPECT_EQ(host.tenants[0].jobs_completed, 4u);
}

TEST(RackSystemTest, EightHostsAcrossTwoSwitchLevels)
{
    RackParams p = smallRack(8, /*checkers=*/true);
    p.switch_levels = 2;
    RackSystem rack(p);
    // 8 hosts over 4 expanders: hosts 4..7 fall back to whole-pool
    // interleave; nothing may alias (checkers + conservation verify).
    addRackTenants(rack, /*jobs_per_host=*/2);
    const RackReport report = rack.run();
    ASSERT_EQ(report.hosts.size(), 8u);
    for (const ServiceReport &host : report.hosts)
        EXPECT_EQ(host.tenants[0].jobs_completed, 2u);
    EXPECT_GT(report.pool_utilization, 0.0);
}

} // namespace
} // namespace beacon
