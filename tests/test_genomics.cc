/**
 * @file
 * Correctness tests for the genomics kernels: DNA sequences,
 * synthetic data generators, suffix array / BWT, k-mers, counting
 * Bloom filter, and hash index. The FM-index and pre-alignment have
 * their own suites.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/rng.hh"
#include "genomics/bloom.hh"
#include "genomics/dna.hh"
#include "genomics/hash_index.hh"
#include "genomics/kmer.hh"
#include "genomics/suffix_array.hh"

namespace beacon::genomics
{
namespace
{

TEST(Dna, CharRoundTrip)
{
    for (char c : std::string("ACGT"))
        EXPECT_EQ(charFromBase(baseFromChar(c)), c);
    EXPECT_EQ(baseFromChar('a'), BaseA);
    EXPECT_EQ(baseFromChar('t'), BaseT);
}

TEST(Dna, SequenceRoundTrip)
{
    const std::string s = "ACGTACGTTTGCAGTACCCGGGAAATTT";
    DnaSequence seq(s);
    EXPECT_EQ(seq.size(), s.size());
    EXPECT_EQ(seq.str(), s);
}

TEST(Dna, SequenceCrossesWordBoundary)
{
    std::string s;
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        s.push_back(charFromBase(Base(rng.next(4))));
    DnaSequence seq(s);
    EXPECT_EQ(seq.str(), s);
    for (std::size_t i = 0; i < s.size(); ++i)
        EXPECT_EQ(charFromBase(seq.at(i)), s[i]);
}

TEST(Dna, Substr)
{
    DnaSequence seq(std::string("ACGTACGTACGT"));
    EXPECT_EQ(seq.substr(4, 4).str(), "ACGT");
    EXPECT_EQ(seq.substr(0, 0).str(), "");
    EXPECT_EQ(seq.substr(11, 1).str(), "T");
}

TEST(Dna, ReverseComplement)
{
    DnaSequence seq(std::string("AACGT"));
    EXPECT_EQ(seq.reverseComplement().str(), "ACGTT");
    // Double reverse complement is identity.
    EXPECT_TRUE(seq.reverseComplement().reverseComplement() == seq);
}

TEST(Dna, GenomeGeneratorDeterministicAndSized)
{
    GenomeParams params;
    params.length = 10000;
    params.seed = 17;
    const DnaSequence a = makeGenome(params);
    const DnaSequence b = makeGenome(params);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.size(), params.length);
    params.seed = 18;
    EXPECT_FALSE(makeGenome(params) == a);
}

TEST(Dna, GenomeGcContentRoughlyHonoured)
{
    GenomeParams params;
    params.length = 50000;
    params.gc_content = 0.3;
    params.repeat_fraction = 0;
    const DnaSequence g = makeGenome(params);
    std::size_t gc = 0;
    for (std::size_t i = 0; i < g.size(); ++i)
        gc += (g.at(i) == BaseC || g.at(i) == BaseG);
    EXPECT_NEAR(double(gc) / double(g.size()), 0.3, 0.02);
}

TEST(Dna, RepeatsIncreaseKmerMultiplicity)
{
    GenomeParams flat;
    flat.length = 1 << 16;
    flat.repeat_fraction = 0;
    GenomeParams repeaty = flat;
    repeaty.repeat_fraction = 0.5;

    auto max_mult = [](const DnaSequence &g) {
        std::map<std::uint64_t, unsigned> counts;
        forEachKmer(g, 16, [&](std::uint64_t k, std::size_t) {
            ++counts[k];
        });
        unsigned m = 0;
        for (const auto &[k, c] : counts)
            m = std::max(m, c);
        return m;
    };
    EXPECT_GT(max_mult(makeGenome(repeaty)),
              max_mult(makeGenome(flat)));
}

TEST(Dna, ReadsComeFromGenome)
{
    GenomeParams gp;
    gp.length = 20000;
    const DnaSequence genome = makeGenome(gp);
    ReadParams rp;
    rp.read_length = 50;
    rp.num_reads = 20;
    rp.error_rate = 0; // exact reads
    rp.reverse_fraction = 0;
    const auto reads = makeReads(genome, rp);
    ASSERT_EQ(reads.size(), 20u);
    const std::string g = genome.str();
    for (const DnaSequence &read : reads) {
        EXPECT_EQ(read.size(), 50u);
        EXPECT_NE(g.find(read.str()), std::string::npos)
            << "error-free read must be a genome substring";
    }
}

TEST(Dna, PresetsAreDistinct)
{
    const auto presets = seedingPresets();
    ASSERT_EQ(presets.size(), 5u);
    EXPECT_STREQ(presets[0].name, "Pt");
    EXPECT_STREQ(presets[4].name, "Nf");
    for (std::size_t i = 1; i < presets.size(); ++i)
        EXPECT_NE(presets[i].genome.seed, presets[0].genome.seed);
    const auto kmc = kmerCountingPreset();
    EXPECT_GT(kmc.reads.num_reads, 1000u);
}

// --- Suffix array / BWT ---

std::vector<std::uint32_t>
naiveSuffixArray(const std::string &s)
{
    // Sentinel smaller than every character.
    std::vector<std::uint32_t> sa(s.size() + 1);
    for (std::size_t i = 0; i <= s.size(); ++i)
        sa[i] = std::uint32_t(i);
    std::sort(sa.begin(), sa.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return s.substr(a) + "\0" < s.substr(b) + "\0";
              });
    return sa;
}

TEST(SuffixArray, MatchesNaiveOnSmallInputs)
{
    for (const char *text :
         {"BANANA", "ACGTACGT", "AAAA", "A", "ACACACAC"}) {
        // Map arbitrary letters into ACGT space first.
        std::string s;
        for (const char *p = text; *p; ++p)
            s.push_back("ACGT"[(*p) % 4]);
        const DnaSequence seq(s);
        const auto sa = buildSuffixArray(seq);
        const auto naive = naiveSuffixArray(s);
        EXPECT_EQ(sa, naive) << s;
    }
}

TEST(SuffixArray, RandomInputsSortedProperty)
{
    Rng rng(31);
    std::string s;
    for (int i = 0; i < 500; ++i)
        s.push_back(charFromBase(Base(rng.next(4))));
    const DnaSequence seq(s);
    const auto sa = buildSuffixArray(seq);
    ASSERT_EQ(sa.size(), s.size() + 1);
    EXPECT_EQ(sa[0], s.size()); // empty suffix first
    for (std::size_t i = 1; i < sa.size(); ++i) {
        EXPECT_LT(s.substr(sa[i - 1]), s.substr(sa[i]))
            << "suffixes must be in strictly increasing order";
    }
}

TEST(SuffixArray, BwtIsPermutationWithSentinel)
{
    const std::string s = "ACGTTGCAACGT";
    const DnaSequence seq(s);
    const auto sa = buildSuffixArray(seq);
    const auto bwt = buildBwt(seq, sa);
    ASSERT_EQ(bwt.size(), s.size() + 1);
    std::map<int, int> text_counts, bwt_counts;
    int sentinels = 0;
    for (std::size_t i = 0; i < s.size(); ++i)
        ++text_counts[seq.at(i)];
    for (std::uint8_t sym : bwt) {
        if (sym == 4)
            ++sentinels;
        else
            ++bwt_counts[sym];
    }
    EXPECT_EQ(sentinels, 1);
    EXPECT_EQ(text_counts, bwt_counts);
}

// --- k-mers ---

TEST(Kmer, ReverseComplementInvolution)
{
    Rng rng(3);
    for (unsigned k : {1u, 4u, 15u, 21u, 31u, 32u}) {
        for (int i = 0; i < 50; ++i) {
            const std::uint64_t mask =
                k == 32 ? ~0ull : ((1ull << (2 * k)) - 1);
            const std::uint64_t kmer = rng() & mask;
            EXPECT_EQ(reverseComplementKmer(
                          reverseComplementKmer(kmer, k), k),
                      kmer);
        }
    }
}

TEST(Kmer, CanonicalIsStrandInvariant)
{
    Rng rng(4);
    const unsigned k = 21;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t mask = (1ull << (2 * k)) - 1;
        const std::uint64_t kmer = rng() & mask;
        EXPECT_EQ(canonicalKmer(kmer, k),
                  canonicalKmer(reverseComplementKmer(kmer, k), k));
    }
}

TEST(Kmer, ForEachKmerEnumeratesAll)
{
    const DnaSequence seq(std::string("ACGTAC"));
    std::vector<std::pair<std::uint64_t, std::size_t>> seen;
    forEachKmer(seq, 3, [&](std::uint64_t k, std::size_t pos) {
        seen.emplace_back(k, pos);
    });
    ASSERT_EQ(seen.size(), 4u);
    // ACG = 0b000110 = 6.
    EXPECT_EQ(seen[0].first, 0b000110u);
    EXPECT_EQ(seen[0].second, 0u);
    EXPECT_EQ(seen[3].second, 3u);
}

TEST(Kmer, ShortSequenceYieldsNothing)
{
    const DnaSequence seq(std::string("AC"));
    int n = 0;
    forEachKmer(seq, 3, [&](std::uint64_t, std::size_t) { ++n; });
    EXPECT_EQ(n, 0);
}

// --- Counting Bloom filter ---

TEST(Bloom, NeverUndercounts)
{
    CountingBloomFilter filter(1 << 12, 3);
    std::map<std::uint64_t, unsigned> truth;
    Rng rng(8);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t kmer = rng.next(500);
        filter.add(kmer);
        ++truth[kmer];
    }
    for (const auto &[kmer, count] : truth) {
        EXPECT_GE(unsigned(filter.count(kmer)),
                  std::min(count, 255u))
            << "counting Bloom filters upper-bound true counts";
    }
}

TEST(Bloom, MostAbsentKeysReadZeroWhenSparse)
{
    CountingBloomFilter filter(1 << 16, 3);
    for (std::uint64_t k = 0; k < 200; ++k)
        filter.add(k);
    int false_positive = 0;
    for (std::uint64_t k = 1000000; k < 1002000; ++k)
        false_positive += filter.count(k) > 0;
    EXPECT_LT(false_positive, 20); // < 1% at this load factor
}

TEST(Bloom, SaturatesAt255)
{
    CountingBloomFilter filter(16, 1);
    for (int i = 0; i < 300; ++i)
        filter.add(7);
    EXPECT_EQ(filter.count(7), 255);
}

TEST(Bloom, MergeMatchesSequentialInserts)
{
    CountingBloomFilter a(1 << 10, 3), b(1 << 10, 3),
        combined(1 << 10, 3);
    for (std::uint64_t k = 0; k < 100; ++k) {
        a.add(k);
        combined.add(k);
    }
    for (std::uint64_t k = 50; k < 150; ++k) {
        b.add(k);
        combined.add(k);
    }
    a.merge(b);
    for (std::uint64_t k = 0; k < 150; ++k)
        EXPECT_EQ(a.count(k), combined.count(k)) << k;
}

TEST(Bloom, CounterIndexDeterministicAndInRange)
{
    CountingBloomFilter filter(12345, 4);
    for (std::uint64_t k = 0; k < 100; ++k) {
        for (unsigned h = 0; h < 4; ++h) {
            const std::size_t idx = filter.counterIndex(k, h);
            EXPECT_LT(idx, filter.size());
            EXPECT_EQ(idx, filter.counterIndex(k, h));
        }
    }
}

// --- Hash index ---

TEST(HashIndex, FindsAllTruePositions)
{
    GenomeParams gp;
    gp.length = 1 << 14;
    gp.repeat_fraction = 0.2;
    const DnaSequence genome = makeGenome(gp);
    const unsigned k = 15;
    HashIndex index(genome, k, 14, 1024);

    Rng rng(12);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t pos = rng.next(genome.size() - k);
        std::uint64_t kmer = 0;
        for (unsigned i = 0; i < k; ++i)
            kmer = (kmer << 2) | genome.at(pos + i);
        const auto hits = index.lookup(kmer);
        EXPECT_NE(std::find(hits.begin(), hits.end(),
                            std::uint32_t(pos)),
                  hits.end())
            << "position " << pos << " missing from its bucket";
    }
}

TEST(HashIndex, HitCapRespected)
{
    // A genome of one repeated letter has a single ultra-repetitive
    // k-mer; its bucket must be capped.
    DnaSequence genome;
    for (int i = 0; i < 5000; ++i)
        genome.push_back(BaseA);
    HashIndex index(genome, 15, 10, 64);
    std::uint64_t kmer = 0; // AAAA... = 0
    EXPECT_EQ(index.hitCount(kmer), 64u);
}

TEST(HashIndex, LayoutAccountingConsistent)
{
    GenomeParams gp;
    gp.length = 1 << 12;
    const DnaSequence genome = makeGenome(gp);
    HashIndex index(genome, 15, 12, 16);
    EXPECT_EQ(index.numBuckets(), std::size_t{1} << 12);
    EXPECT_EQ(index.bucketTableBytes(), (std::size_t{1} << 12) * 8);
    EXPECT_GT(index.locationBytes(), 0u);
    // Offsets must lie inside the flattened array.
    std::uint64_t kmer = 0;
    for (unsigned i = 0; i < 15; ++i)
        kmer = (kmer << 2) | genome.at(i);
    EXPECT_LT(index.locationOffsetBytes(kmer),
              index.locationBytes() + 1);
}

} // namespace
} // namespace beacon::genomics
