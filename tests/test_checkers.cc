/**
 * @file
 * Tests for the runtime verification layer (src/check).
 *
 * The checkers' whole job is to panic on an illegal stream, so the
 * positive tests are death tests: each feeds a deliberately illegal
 * command/transfer sequence straight into a checker and asserts the
 * process dies with the right diagnostic. The negative tests prove
 * the checkers are quiet on legal streams — both a hand-written
 * JEDEC-legal command sequence and a full system run with every
 * checker armed.
 */

#include <gtest/gtest.h>

#include "accel/system.hh"
#include "accel/workload.hh"
#include "check/checker_config.hh"
#include "check/dram_protocol_checker.hh"
#include "check/link_checker.hh"
#include "common/units.hh"
#include "dram/controller.hh"
#include "dram/timing.hh"
#include "dram/types.hh"

namespace beacon
{
namespace
{

// All streams below are written against DDR4-1600 22-22-22:
// tCK = 1250 ps, tRRD_L = 6 nCK, tRRD_S = 4 nCK, tFAW = 28 nCK,
// tRCD = 22 nCK, tRAS = 52 nCK, tRC = 74 nCK, tRP = 22 nCK.
DramTimingParams
timing()
{
    return DramTimingParams::ddr4_1600_22();
}

DimmGeometry
geometry()
{
    return DimmGeometry{};
}

Tick
ck(unsigned ncycles)
{
    return Tick{ncycles} * timing().t_ck_ps;
}

DramCommand
act(unsigned bg, unsigned bank, unsigned row, Tick t)
{
    DramCommand c;
    c.kind = DramCommandKind::Act;
    c.coord.bank_group = bg;
    c.coord.bank = bank;
    c.coord.row = RowId{row};
    c.tick = t;
    return c;
}

DramCommand
column(DramCommandKind kind, unsigned bg, unsigned bank, unsigned row,
       Tick t)
{
    DramCommand c;
    c.kind = kind;
    c.coord.bank_group = bg;
    c.coord.bank = bank;
    c.coord.row = RowId{row};
    c.tick = t;
    return c;
}

DramCommand
pre(unsigned bg, unsigned bank, Tick t)
{
    DramCommand c;
    c.kind = DramCommandKind::Pre;
    c.coord.bank_group = bg;
    c.coord.bank = bank;
    c.tick = t;
    return c;
}

using DramCheckerDeathTest = ::testing::Test;
using LinkCheckerDeathTest = ::testing::Test;

TEST(DramCheckerDeathTest, ActActInsideTrrdFires)
{
    EXPECT_DEATH(
        {
            DramProtocolChecker checker("dimm", geometry(), timing());
            checker.observe(act(0, 0, 7, 0));
            // Same bank group: tRRD_L = 6 nCK, this ACT is 3 nCK
            // after the first.
            checker.observe(act(0, 1, 7, ck(3)));
        },
        "tRRD_L");
}

TEST(DramCheckerDeathTest, FifthActInsideTfawFires)
{
    EXPECT_DEATH(
        {
            DramProtocolChecker checker("dimm", geometry(), timing());
            // Four ACTs to distinct banks, legally spaced at
            // tRRD_L = 6 nCK each; the window spans 18 nCK.
            checker.observe(act(0, 0, 1, 0));
            checker.observe(act(0, 1, 1, ck(6)));
            checker.observe(act(0, 2, 1, ck(12)));
            checker.observe(act(0, 3, 1, ck(18)));
            // Fifth ACT (other bank group, tRRD_S = 4 nCK satisfied)
            // at 24 nCK — inside the 28 nCK four-activate window.
            checker.observe(act(1, 0, 1, ck(24)));
        },
        "tFAW");
}

TEST(DramCheckerDeathTest, ReadToPrechargedBankFires)
{
    EXPECT_DEATH(
        {
            DramProtocolChecker checker("dimm", geometry(), timing());
            checker.observe(
                column(DramCommandKind::Read, 0, 0, 3, ck(100)));
        },
        "precharged bank");
}

TEST(DramCheckerDeathTest, ReadToWrongRowFires)
{
    EXPECT_DEATH(
        {
            DramProtocolChecker checker("dimm", geometry(), timing());
            checker.observe(act(0, 0, 7, 0));
            checker.observe(
                column(DramCommandKind::Read, 0, 0, 8, ck(22)));
        },
        "wrong row");
}

TEST(DramCheckerDeathTest, ReadBeforeTrcdFires)
{
    EXPECT_DEATH(
        {
            DramProtocolChecker checker("dimm", geometry(), timing());
            checker.observe(act(0, 0, 7, 0));
            // tRCD = 22 nCK; the column command comes at 10 nCK.
            checker.observe(
                column(DramCommandKind::Read, 0, 0, 7, ck(10)));
        },
        "tRCD");
}

TEST(DramCheckerDeathTest, EarlyPrechargeFires)
{
    EXPECT_DEATH(
        {
            DramProtocolChecker checker("dimm", geometry(), timing());
            checker.observe(act(0, 0, 7, 0));
            // tRAS = 52 nCK; PRE at 30 nCK is premature.
            checker.observe(pre(0, 0, ck(30)));
        },
        "tRAS");
}

TEST(DramCheckerDeathTest, LegalStreamIsQuiet)
{
    DramProtocolChecker checker("dimm", geometry(), timing());
    // ACT -> RD (tRCD) -> PRE (tRAS) -> ACT (tRC) -> RD: all gaps at
    // or above their JEDEC minimum, so nothing may fire.
    checker.observe(act(0, 0, 7, 0));
    checker.observe(column(DramCommandKind::Read, 0, 0, 7, ck(22)));
    checker.observe(pre(0, 0, ck(52)));
    checker.observe(act(0, 0, 9, ck(74)));
    checker.observe(column(DramCommandKind::Read, 0, 0, 9, ck(96)));
    checker.finalize(ck(100));
    EXPECT_EQ(checker.commandsObserved(), 5u);
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(LinkCheckerDeathTest, PacketOvertakingFires)
{
    EXPECT_DEATH(
        {
            CxlLinkChecker checker("pool");
            const unsigned chan = checker.registerChannel("link.down");
            // Ideal channel (no serialisation shadow): the second
            // packet arrives before the first — overtaking.
            checker.onTransfer(chan, 0, 0, 1000, Bytes{64}, 64.0,
                               true);
            checker.onTransfer(chan, 100, 100, 500, Bytes{64},
                               64.0, true);
        },
        "overtaking");
}

TEST(LinkCheckerDeathTest, BandwidthViolationFires)
{
    EXPECT_DEATH(
        {
            CxlLinkChecker checker("pool");
            const unsigned chan = checker.registerChannel("link.up");
            // The channel claims a 256 B transfer at 64 GB/s
            // finished serialising instantly.
            checker.onTransfer(chan, 0, 0, 0, Bytes{256}, 64.0,
                               false);
        },
        "bandwidth violation");
}

TEST(LinkCheckerDeathTest, ImbalanceAtEndOfRunFires)
{
    EXPECT_DEATH(
        {
            CxlLinkChecker checker("pool");
            checker.onSubmit(0);
            checker.onSubmit(10);
            checker.onDeliver(20);
            checker.finalize();
        },
        "imbalance");
}

TEST(LinkCheckerDeathTest, LegalTransfersAreQuiet)
{
    CxlLinkChecker checker("pool");
    const unsigned chan = checker.registerChannel("link.down");
    const Tick first = transferTime(Bytes{256}, 64.0);
    checker.onTransfer(chan, 0, first, first + 500, Bytes{256},
                       64.0, false);
    // Departs while the channel is still busy: queued FIFO behind
    // the first transfer.
    const Tick second = first + transferTime(Bytes{64}, 64.0);
    checker.onTransfer(chan, 10, second, second + 500, Bytes{64},
                       64.0, false);
    checker.checkBusyTicks(chan, second);
    checker.onSubmit(0);
    checker.onSubmit(10);
    checker.onDeliver(first + 500);
    checker.onDeliver(second + 500);
    checker.finalize();
    EXPECT_EQ(checker.submitted(), 2u);
    EXPECT_EQ(checker.delivered(), 2u);
}

TEST(CheckerSystemTest, FullRunWithAllCheckersIsQuiet)
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[3];
    preset.genome.length = 1 << 13;
    preset.reads.num_reads = 16;
    const FmSeedingWorkload workload(preset);

    SystemParams params = SystemParams::beaconD();
    params.checkers = CheckerConfig::all();
    NdpSystem system(params, workload);
    const RunResult r = system.run(0);
    EXPECT_EQ(r.tasks, workload.numTasks());

    // The protocol checker must actually have been in the loop.
    const DramProtocolChecker *checker =
        system.dimmController(0).checker();
    ASSERT_NE(checker, nullptr);
    EXPECT_GT(checker->commandsObserved(), 0u);
    EXPECT_EQ(checker->violations(), 0u);
}

} // namespace
} // namespace beacon
