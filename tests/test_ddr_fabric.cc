/**
 * @file
 * Tests for the host-mastered DDR-channel fabric used by the
 * MEDAL/NEST baselines: channel occupancy, the double-hop
 * DIMM-to-DIMM path, granule rounding, and idealized mode.
 */

#include <gtest/gtest.h>

#include "accel/ddr_fabric.hh"

namespace beacon
{
namespace
{

struct DdrHarness
{
    EventQueue eq;
    StatRegistry stats;
    std::unique_ptr<DdrFabric> fabric;

    explicit DdrHarness(bool ideal = false)
    {
        DdrFabricParams params;
        params.num_channels = 4;
        params.dimms_per_channel = 2;
        params.ideal = ideal;
        fabric = std::make_unique<DdrFabric>("ddr", eq, stats,
                                             params);
    }

    Tick
    transfer(NodeId a, NodeId b, Bytes bytes)
    {
        Tick arrive = 0;
        fabric->send(a, b, bytes, true, [&](Tick t) { arrive = t; });
        eq.run();
        return arrive;
    }
};

TEST(DdrFabric, HostToDimmSingleChannelHop)
{
    DdrHarness h;
    const Tick t =
        h.transfer(NodeId::host(), NodeId::dimmNode(1, 0),
                   Bytes{32});
    // 32 B at 12.8 GB/s = 2.5 ns + 30 ns channel latency.
    EXPECT_EQ(t, 2500u + 30000u);
    EXPECT_EQ(h.fabric->channelBytes(1), Bytes{32});
    EXPECT_EQ(h.fabric->channelBytes(0), Bytes{});
}

TEST(DdrFabric, DimmToDimmStoreForwardsThroughHost)
{
    DdrHarness h;
    const Tick t = h.transfer(NodeId::dimmNode(0, 0),
                              NodeId::dimmNode(0, 1), Bytes{32});
    // Two channel hops plus the host store-forward latency.
    EXPECT_EQ(t, 2u * (2500u + 30000u) + 50000u);
    // Same channel carries the message twice.
    EXPECT_EQ(h.fabric->channelBytes(0), Bytes{64});
}

TEST(DdrFabric, CrossChannelChargesBothChannels)
{
    DdrHarness h;
    h.transfer(NodeId::dimmNode(0, 0), NodeId::dimmNode(3, 1),
               Bytes{32});
    EXPECT_EQ(h.fabric->channelBytes(0), Bytes{32});
    EXPECT_EQ(h.fabric->channelBytes(3), Bytes{32});
    EXPECT_EQ(h.fabric->totalWireBytes(), Bytes{64});
}

TEST(DdrFabric, PayloadsRoundUpToGranule)
{
    DdrHarness h;
    h.transfer(NodeId::host(), NodeId::dimmNode(0, 0), Bytes{1});
    EXPECT_EQ(h.fabric->channelBytes(0), Bytes{32})
        << "32 B granule";
    h.transfer(NodeId::host(), NodeId::dimmNode(0, 0), Bytes{33});
    EXPECT_EQ(h.fabric->channelBytes(0), Bytes{32 + 64});
}

TEST(DdrFabric, SelfSendIsFree)
{
    DdrHarness h;
    const Tick t = h.transfer(NodeId::dimmNode(2, 1),
                              NodeId::dimmNode(2, 1), Bytes{64});
    EXPECT_EQ(t, 0u);
    EXPECT_EQ(h.fabric->totalWireBytes(), Bytes{});
}

TEST(DdrFabric, ChannelContentionSerialises)
{
    DdrHarness h;
    Tick first = 0, second = 0;
    h.fabric->send(NodeId::host(), NodeId::dimmNode(0, 0),
                   Bytes{6400}, true, [&](Tick t) { first = t; });
    h.fabric->send(NodeId::host(), NodeId::dimmNode(0, 1), Bytes{64},
                   true, [&](Tick t) { second = t; });
    h.eq.run();
    EXPECT_GT(second, first - 30000)
        << "the second message queues behind the first";
}

TEST(DdrFabric, IdealModeInstantAndUncounted)
{
    DdrHarness h(true);
    const Tick t = h.transfer(NodeId::dimmNode(0, 0),
                              NodeId::dimmNode(3, 1), Bytes{1 << 20});
    EXPECT_EQ(t, 0u);
    // Bytes still counted (energy accounting zeroes them instead).
    EXPECT_GT(h.fabric->totalWireBytes(), Bytes{});
}

TEST(DdrFabricDeath, SwitchNodesRejected)
{
    DdrHarness h;
    EXPECT_DEATH(h.fabric->send(NodeId::switchNode(0),
                                NodeId::dimmNode(0, 0), Bytes{64},
                                true, [](Tick) {}),
                 "no switches");
}

} // namespace
} // namespace beacon
