/**
 * @file
 * Tests for the NDP module (task scheduling, PE occupancy, operand
 * gating) and the Atomic Engine (per-word serialisation).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ndp/atomic_engine.hh"
#include "ndp/ndp_module.hh"

namespace beacon
{
namespace
{

/** A scripted task: fixed number of steps, one access per step. */
class ScriptedTask : public Task
{
  public:
    ScriptedTask(unsigned steps, unsigned accesses_per_step,
                 Cycles cycles = Cycles{16})
        : steps_left(steps), accesses(accesses_per_step),
          cycles(cycles)
    {}

    EngineKind engine() const override { return EngineKind::FmIndex; }

    TaskStep
    next() override
    {
        TaskStep step;
        if (steps_left == 0) {
            step.done = true;
            return step;
        }
        --steps_left;
        step.compute_cycles = cycles;
        for (unsigned i = 0; i < accesses; ++i) {
            AccessRequest req;
            req.offset = i * 32;
            req.bytes = Bytes{32};
            step.accesses.push_back(req);
        }
        return step;
    }

  private:
    unsigned steps_left;
    unsigned accesses;
    Cycles cycles;
};

struct NdpHarness
{
    EventQueue eq;
    StatRegistry stats;
    Tick access_latency = 100000; // 100 ns
    unsigned issued = 0;
    std::unique_ptr<NdpModule> module;

    explicit NdpHarness(unsigned pes = 4, unsigned inflight = 64)
    {
        NdpModuleParams params;
        params.num_pes = pes;
        params.max_inflight_tasks = inflight;
        module = std::make_unique<NdpModule>(
            "ndp", eq, stats, params,
            [this](const AccessRequest &,
                   std::function<void(Tick)> cb) {
                ++issued;
                eq.scheduleIn(access_latency,
                              [cb = std::move(cb), this](/**/) {
                                  cb(eq.now());
                              });
            });
    }
};

TEST(NdpModule, CompletesSubmittedTasks)
{
    NdpHarness h;
    int done = 0;
    h.module->setTaskDoneFn([&] { ++done; });
    for (int i = 0; i < 10; ++i)
        h.module->submit(std::make_unique<ScriptedTask>(3, 2));
    h.eq.run();
    EXPECT_EQ(done, 10);
    EXPECT_EQ(h.module->tasksCompleted(), 10u);
    EXPECT_EQ(h.module->accessesIssued(), 10u * 3u * 2u);
    EXPECT_EQ(h.issued, 60u);
    EXPECT_EQ(h.module->residentTasks(), 0u);
}

TEST(NdpModule, StepsGatedOnAllOperands)
{
    // A task whose step requests two operands must not advance until
    // both complete: total time >= steps x access latency.
    NdpHarness h(1, 8);
    h.module->submit(std::make_unique<ScriptedTask>(4, 2));
    h.eq.run();
    EXPECT_GE(h.eq.now(), 4 * h.access_latency);
}

TEST(NdpModule, PeParallelismBoundsComputeThroughput)
{
    // Pure-compute tasks: with one PE, makespan ~ n x compute; with
    // many PEs it shrinks by the PE count.
    auto makespan = [](unsigned pes) {
        NdpHarness h(pes, 256);
        for (int i = 0; i < 32; ++i)
            h.module->submit(
                std::make_unique<ScriptedTask>(4, 0, Cycles{100}));
        h.eq.run();
        return h.eq.now();
    };
    const Tick serial = makespan(1);
    const Tick parallel = makespan(8);
    EXPECT_GT(serial, parallel * 6);
}

TEST(NdpModule, PeBusyTicksAccumulate)
{
    NdpHarness h;
    h.module->submit(
        std::make_unique<ScriptedTask>(5, 0, Cycles{10}));
    h.eq.run();
    // 6 next() calls (5 work + 1 done), 5 with compute cycles.
    EXPECT_EQ(h.module->peBusyTicks(), 5u * 10u * 1250u);
}

TEST(NdpModule, CapacityAccounting)
{
    NdpHarness h(2, 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(h.module->canAccept());
        h.module->submit(std::make_unique<ScriptedTask>(100, 1));
    }
    EXPECT_FALSE(h.module->canAccept());
}

TEST(NdpModuleDeath, OverCapacityPanics)
{
    NdpHarness h(1, 1);
    h.module->submit(std::make_unique<ScriptedTask>(100, 1));
    EXPECT_DEATH(
        h.module->submit(std::make_unique<ScriptedTask>(1, 0)),
        "capacity");
}

TEST(NdpModule, TasksInterleaveDuringMemoryWaits)
{
    // One PE, two tasks with long memory waits: the module should
    // overlap them, so the makespan is far below the serial sum.
    NdpHarness h(1, 8);
    h.access_latency = 1000000; // 1 us
    h.module->submit(
        std::make_unique<ScriptedTask>(4, 1, Cycles{1}));
    h.module->submit(
        std::make_unique<ScriptedTask>(4, 1, Cycles{1}));
    h.eq.run();
    const Tick serial_sum = 2 * 4 * h.access_latency;
    EXPECT_LT(h.eq.now(), serial_sum * 3 / 4);
}

// --- Atomic engine ---

struct AtomicHarness
{
    EventQueue eq;
    StatRegistry stats;
    AtomicEngine engine{"atomic", eq, stats};
    Tick mem_latency = 50000;

    AtomicEngine::MemFn
    mem()
    {
        return [this](std::function<void(Tick)> cb) {
            eq.scheduleIn(mem_latency, [this, cb = std::move(cb)] {
                cb(eq.now());
            });
        };
    }
};

TEST(AtomicEngine, SingleOpReadComputeWrite)
{
    AtomicHarness h;
    Tick done_at = 0;
    h.engine.perform(1, h.mem(), h.mem(),
                     [&](Tick t) { done_at = t; });
    h.eq.run();
    // read (50ns) + compute (5ns) + write (50ns).
    EXPECT_EQ(done_at, 105000u);
    EXPECT_EQ(h.engine.opsPerformed(), 1u);
}

TEST(AtomicEngine, SameWordSerialises)
{
    AtomicHarness h;
    std::vector<Tick> completions;
    for (int i = 0; i < 4; ++i) {
        h.engine.perform(42, h.mem(), h.mem(), [&](Tick t) {
            completions.push_back(t);
        });
    }
    h.eq.run();
    ASSERT_EQ(completions.size(), 4u);
    for (std::size_t i = 1; i < completions.size(); ++i) {
        EXPECT_GE(completions[i], completions[i - 1] + 105000)
            << "RMWs on one word must not overlap";
    }
}

TEST(AtomicEngine, DifferentWordsProceedInParallel)
{
    AtomicHarness h;
    std::vector<Tick> completions;
    for (int i = 0; i < 4; ++i) {
        h.engine.perform(i, h.mem(), h.mem(), [&](Tick t) {
            completions.push_back(t);
        });
    }
    h.eq.run();
    ASSERT_EQ(completions.size(), 4u);
    for (Tick t : completions)
        EXPECT_EQ(t, 105000u) << "independent words overlap fully";
}

TEST(AtomicEngine, RmwRaceYieldsSerialisedTotal)
{
    // Emulate racing counter increments: with engine serialisation
    // the final value equals the op count (no lost updates).
    AtomicHarness h;
    int counter = 0;
    int snapshot = 0;
    auto read = [&](std::function<void(Tick)> cb) {
        h.eq.scheduleIn(h.mem_latency, [&, cb = std::move(cb)] {
            snapshot = counter; // value observed by the engine
            cb(h.eq.now());
        });
    };
    auto write = [&](std::function<void(Tick)> cb) {
        h.eq.scheduleIn(h.mem_latency, [&, cb = std::move(cb)] {
            counter = snapshot + 1;
            cb(h.eq.now());
        });
    };
    for (int i = 0; i < 10; ++i)
        h.engine.perform(7, read, write, [](Tick) {});
    h.eq.run();
    EXPECT_EQ(counter, 10) << "no increment may be lost";
}

} // namespace
} // namespace beacon
