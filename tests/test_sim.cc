/**
 * @file
 * Unit tests for the simulation kernel: event queue, clock domains,
 * statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace beacon
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
    EXPECT_EQ(eq.eventsExecuted(), 3u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(50, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.scheduled(id));
    eq.cancel(id);
    EXPECT_FALSE(eq.scheduled(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, PendingCountsLiveEventsOnly)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(eq.pendingIncludingCancelled(), 2u);
    // A cancelled event leaves its queue entry behind until its tick
    // is reached; pending() must not count it.
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.pendingIncludingCancelled(), 2u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.pendingIncludingCancelled(), 0u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recur = [&] {
        if (++depth < 5)
            eq.scheduleIn(10, recur);
    };
    eq.schedule(0, recur);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    bool fired = false;
    eq.schedule(5, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(ClockDomain, Conversions)
{
    ClockDomain clk(1250); // DDR4-1600 bus clock
    EXPECT_EQ(clk.period(), 1250u);
    EXPECT_EQ(clk.cyclesToTicks(Cycles{22}), 27500u);
    EXPECT_EQ(clk.ticksToCycles(27500), Cycles{22});
    EXPECT_NEAR(clk.frequencyMHz(), 800.0, 1e-9);
}

TEST(ClockDomain, NextEdge)
{
    ClockDomain clk(1000);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(0), 0u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1000), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1001), 2000u);
}

TEST(Stats, CounterAccumulates)
{
    StatRegistry reg;
    Counter &c = reg.counter("a.b");
    c += 2.5;
    ++c;
    EXPECT_DOUBLE_EQ(reg.counterValue("a.b"), 3.5);
    EXPECT_DOUBLE_EQ(reg.counterValue("missing"), 0.0);
}

TEST(Stats, SameNameSameCounter)
{
    StatRegistry reg;
    reg.counter("x") += 1;
    reg.counter("x") += 1;
    EXPECT_DOUBLE_EQ(reg.counterValue("x"), 2.0);
}

TEST(Stats, SumMatching)
{
    StatRegistry reg;
    reg.counter("dimm0.reads") += 5;
    reg.counter("dimm1.reads") += 7;
    reg.counter("dimm0.writes") += 100;
    EXPECT_DOUBLE_EQ(reg.sumMatching(".reads"), 12.0);
}

TEST(Stats, VectorCounterStatistics)
{
    StatRegistry reg;
    VectorCounter &v = reg.vectorCounter("chips", 4);
    v[0] = 10;
    v[1] = 10;
    v[2] = 10;
    v[3] = 10;
    EXPECT_DOUBLE_EQ(v.total(), 40.0);
    EXPECT_DOUBLE_EQ(v.mean(), 10.0);
    EXPECT_DOUBLE_EQ(v.cov(), 0.0);
    v[3] = 40;
    EXPECT_GT(v.cov(), 0.5);
    EXPECT_DOUBLE_EQ(v.maxValue(), 40.0);
    EXPECT_DOUBLE_EQ(v.minValue(), 10.0);
}

TEST(Stats, SampleStatMoments)
{
    SampleStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 4.0);
    EXPECT_NEAR(s.stddev(), 1.1180, 1e-3);
}

TEST(Stats, SampleStatHistogramPercentiles)
{
    SampleStat s;
    for (int i = 1; i <= 1000; ++i)
        s.sample(double(i));
    // Power-of-two buckets: the estimate lands within the true
    // value's bucket, i.e. within a factor of two.
    const double p50 = s.percentile(0.50);
    const double p99 = s.percentile(0.99);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1000.0); // clamped to maxValue()
    EXPECT_LE(p50, p99);
    // Estimates stay inside the observed range (clamped to the
    // true extremes) and within a 2x bucket of them.
    EXPECT_GE(s.percentile(0.0), 1.0);
    EXPECT_LE(s.percentile(0.0), 2.0);
    EXPECT_GE(s.percentile(1.0), 512.0);
    EXPECT_LE(s.percentile(1.0), 1000.0);
}

TEST(Stats, SampleStatHistogramEmptyAndSingle)
{
    SampleStat s;
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
    s.sample(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
}

TEST(Stats, SampleStatsAccessor)
{
    StatRegistry reg;
    reg.sampleStat("a.latency").sample(1.0);
    reg.sampleStat("b.latency").sample(2.0);
    const auto &all = reg.sampleStats();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all.count("a.latency"), 1u);
    EXPECT_DOUBLE_EQ(all.at("b.latency").mean(), 2.0);
}

TEST(Stats, QuantileSortedCeilRankRule)
{
    const std::vector<double> v{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.25), 10.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.99), 40.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantileSorted({}, 0.5), 0.0);
}

TEST(Stats, ResetAllZeroes)
{
    StatRegistry reg;
    reg.counter("c") += 5;
    reg.vectorCounter("v", 2)[0] = 3;
    reg.sampleStat("s").sample(9);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.counterValue("c"), 0.0);
    EXPECT_DOUBLE_EQ(reg.vectorCounters().at("v").total(), 0.0);
}

TEST(SimObject, NamesAndStats)
{
    EventQueue eq;
    StatRegistry reg;

    struct Widget : SimObject
    {
        Widget(EventQueue &eq, StatRegistry &reg)
            : SimObject("widget", eq, reg)
        {}
        void bump() { ++stat("bumps"); }
    } widget(eq, reg);

    widget.bump();
    widget.bump();
    EXPECT_EQ(widget.name(), "widget");
    EXPECT_DOUBLE_EQ(reg.counterValue("widget.bumps"), 2.0);
}

} // namespace
} // namespace beacon
