/**
 * @file
 * Throwaway fixture for the flight-recorder trap smoke test
 * (FlightRecorderTrapSmoke, driven by flight_recorder_smoke.cmake).
 *
 * Arms lane-guard trapping on a two-lane sharded queue with a
 * FlightRecorder attached, warms the rings with legitimate traffic,
 * then fires a deliberate cross-lane touch. Expected outcome: the
 * guard's BEACON_CHECK funnels through panicImpl, the panic hook
 * writes the post-mortem JSON to argv[1], and the process aborts
 * (nonzero exit). Reaching the end of main means the trap never
 * fired, which the driving script treats as a failure.
 */

#include <cstdio>

#include "obs/flight_recorder.hh"
#include "sim/sharded_event_queue.hh"

int
main(int argc, char **argv)
{
    using namespace beacon;
    const char *path =
        argc > 1 ? argv[1] : "beacon-flightrec-trap.json";
    obs::FlightRecorder recorder(path);

    ShardedEventQueue::Params p;
    p.lanes = 2;
    p.lookahead = 100;
    p.inline_windows = true; // single-threaded, deterministic abort
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 2;
    plan.home_lane[1] = 1;
    eq.setPlan(plan);
    eq.setFlightRecorder(&recorder);
    eq.setLaneGuard(ShardedEventQueue::LaneGuard::Trap);

    // Legitimate traffic first, so the dump shows a ring of events
    // preceding the trapping one on both lanes.
    for (Tick t = 1; t <= 32; ++t) {
        eq.schedule(t, [] {}, EventCat::Other, 0);
        eq.schedule(t, [] {}, EventCat::Other, 1);
    }
    // The deliberate violation: a lane-1 in-window event touching
    // lane-0-homed state without going through the event queue.
    eq.schedule(
        50,
        [&] { eq.checkLaneTouch(0, "flight-recorder smoke fixture"); },
        EventCat::Other, 1);
    eq.schedule(50, [] {}, EventCat::Other, 0);
    while (eq.runWindow())
        ;
    std::fprintf(stderr,
                 "fixture error: lane guard never trapped\n");
    return 0;
}
