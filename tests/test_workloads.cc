/**
 * @file
 * Workload-layer tests: task step protocols, structure declarations,
 * footprint measurement, k-mer counting passes, and the CPU baseline
 * and energy models.
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/cpu_baseline.hh"
#include "accel/energy_model.hh"
#include "accel/workload.hh"

namespace beacon
{
namespace
{

genomics::DatasetPreset
tinyPreset()
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[4];
    preset.genome.length = 1 << 14;
    preset.reads.num_reads = 16;
    return preset;
}

/** Run a task to completion, checking the step protocol. */
WorkloadFootprint
drain(Task &task)
{
    WorkloadFootprint fp;
    fp.tasks = 1;
    for (int guard = 0; guard < 100000; ++guard) {
        const TaskStep step = task.next();
        ++fp.steps;
        fp.compute_cycles += step.compute_cycles;
        for (const AccessRequest &a : step.accesses) {
            ++fp.accesses;
            fp.access_bytes += a.bytes;
            EXPECT_GT(a.bytes, Bytes{});
        }
        if (step.done) {
            EXPECT_TRUE(step.accesses.empty())
                << "a finishing step must not request operands";
            return fp;
        }
    }
    ADD_FAILURE() << "task never finished";
    return fp;
}

TEST(FmSeedingWorkload, TasksTouchOccBlocksOnly)
{
    FmSeedingWorkload workload(tinyPreset());
    EXPECT_EQ(workload.engine(), EngineKind::FmIndex);
    const auto structures = workload.structures();
    ASSERT_EQ(structures.size(), 1u);
    EXPECT_EQ(structures[0].cls, DataClass::FmOcc);
    EXPECT_EQ(structures[0].bytes,
              Bytes{workload.index().indexBytes()});

    WorkloadContext ctx;
    for (std::size_t i = 0; i < workload.numTasks(); ++i) {
        TaskPtr task = workload.makeTask(i, ctx);
        TaskStep step = task->next();
        for (const AccessRequest &a : step.accesses) {
            EXPECT_EQ(a.data_class, DataClass::FmOcc);
            EXPECT_EQ(a.bytes,
                      Bytes{genomics::FmIndex::block_bytes});
            EXPECT_FALSE(a.is_write);
            EXPECT_LT(a.offset, workload.index().indexBytes());
        }
    }
}

TEST(FmSeedingWorkload, StepsBoundedByReadLength)
{
    FmSeedingWorkload workload(tinyPreset());
    WorkloadContext ctx;
    for (std::size_t i = 0; i < 8; ++i) {
        TaskPtr task = workload.makeTask(i, ctx);
        const WorkloadFootprint fp = drain(*task);
        // <= read length extensions plus the final empty step.
        EXPECT_LE(fp.steps, 101u);
        EXPECT_GE(fp.steps, 2u);
        EXPECT_LE(fp.accesses, 2 * fp.steps);
    }
}

TEST(HashSeedingWorkload, BucketThenLocationsProtocol)
{
    HashSeedingWorkload workload(tinyPreset());
    const auto structures = workload.structures();
    ASSERT_EQ(structures.size(), 2u);
    EXPECT_TRUE(structures[1].spatial);

    WorkloadContext ctx;
    TaskPtr task = workload.makeTask(0, ctx);
    bool saw_bucket = false, saw_locations = false;
    for (int guard = 0; guard < 10000; ++guard) {
        const TaskStep step = task->next();
        for (const AccessRequest &a : step.accesses) {
            if (a.data_class == DataClass::HashBucket) {
                EXPECT_EQ(a.bytes, Bytes{8});
                saw_bucket = true;
            } else {
                EXPECT_EQ(a.data_class, DataClass::HashLocations);
                EXPECT_GT(a.bytes, Bytes{});
                saw_locations = true;
            }
        }
        if (step.done)
            break;
    }
    EXPECT_TRUE(saw_bucket);
    EXPECT_TRUE(saw_locations);
}

TEST(KmerCountingWorkload, SinglePassUsesGlobalAtomics)
{
    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = 1 << 14;
    KmerCountingWorkload workload(preset, 21, 3, 1 << 14, 8);
    WorkloadContext ctx;
    ctx.kmc_single_pass = true;
    TaskPtr task = workload.makeTask(0, ctx);
    const TaskStep step = task->next();
    ASSERT_EQ(step.accesses.size(), 3u); // one per hash
    for (const AccessRequest &a : step.accesses) {
        EXPECT_EQ(a.data_class, DataClass::BloomCounter);
        EXPECT_TRUE(a.is_atomic);
        EXPECT_TRUE(a.is_write);
        EXPECT_EQ(a.bytes, Bytes{1});
        EXPECT_LT(a.offset, std::uint64_t(1) << 14);
    }
}

TEST(KmerCountingWorkload, MultiPassSwitchesClassAndMode)
{
    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = 1 << 14;
    KmerCountingWorkload workload(preset, 21, 3, 1 << 14, 8);
    WorkloadContext ctx;
    ctx.kmc_single_pass = false;

    ctx.pass = 0;
    {
        TaskPtr task = workload.makeTask(0, ctx);
        const TaskStep step = task->next();
        for (const AccessRequest &a : step.accesses) {
            EXPECT_EQ(a.data_class, DataClass::BloomLocal);
            EXPECT_TRUE(a.is_atomic);
        }
    }
    ctx.pass = 1;
    {
        TaskPtr task = workload.makeTask(0, ctx);
        const TaskStep step = task->next();
        for (const AccessRequest &a : step.accesses) {
            EXPECT_EQ(a.data_class, DataClass::BloomLocal);
            EXPECT_FALSE(a.is_atomic);
            EXPECT_FALSE(a.is_write);
        }
    }
}

TEST(KmerCountingWorkload, TaskOffsetsMatchReferenceFilter)
{
    // The offsets a task touches must be exactly the counter indices
    // the functional filter uses, so the simulated traffic counts
    // the same k-mers the reference implementation counts.
    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = 1 << 14;
    KmerCountingWorkload workload(preset, 21, 3, 1 << 14, 4);
    const auto filter = workload.buildReferenceFilter();
    EXPECT_EQ(filter.size(), std::size_t{1} << 14);
    EXPECT_EQ(filter.numHashes(), 3u);

    WorkloadContext ctx;
    std::set<std::uint64_t> offsets;
    for (std::size_t i = 0; i < workload.numTasks(); ++i) {
        TaskPtr task = workload.makeTask(i, ctx);
        for (int guard = 0; guard < 100000; ++guard) {
            const TaskStep step = task->next();
            for (const AccessRequest &a : step.accesses)
                offsets.insert(a.offset);
            if (step.done)
                break;
        }
    }
    EXPECT_GT(offsets.size(), 100u);
}

TEST(PrealignWorkload, WindowFetchThenDecide)
{
    PrealignWorkload workload(tinyPreset());
    EXPECT_EQ(workload.numTasks(), 16u * 4u);
    WorkloadContext ctx;
    TaskPtr task = workload.makeTask(0, ctx);
    const TaskStep fetch = task->next();
    ASSERT_EQ(fetch.accesses.size(), 1u);
    EXPECT_EQ(fetch.accesses[0].data_class, DataClass::RefWindow);
    const TaskStep decide = task->next();
    EXPECT_TRUE(decide.done);
    EXPECT_EQ(decide.compute_cycles,
              engineStepCycles(EngineKind::Prealign));
}

TEST(Workload, FootprintAggregatesAllTasks)
{
    FmSeedingWorkload workload(tinyPreset());
    const WorkloadFootprint fp =
        measureFootprint(workload, WorkloadContext{});
    EXPECT_EQ(fp.tasks, workload.numTasks());
    EXPECT_GT(fp.steps, fp.tasks);
    EXPECT_GT(fp.accesses, 0u);
    EXPECT_GT(fp.compute_cycles, Cycles{});
    EXPECT_GT(fp.access_bytes.value(),
              fp.accesses); // >1 byte per access
}

TEST(CpuBaseline, ScalesWithFootprint)
{
    WorkloadFootprint fp;
    fp.tasks = 100;
    fp.steps = 1000;
    fp.accesses = 2000;
    const CpuBaselineResult one = cpuBaseline(fp);
    WorkloadFootprint fp2 = fp;
    fp2.steps *= 2;
    fp2.accesses *= 2;
    const CpuBaselineResult two = cpuBaseline(fp2);
    EXPECT_NEAR(two.seconds, 2 * one.seconds, 1e-12);
    EXPECT_GT(one.energy_pj, Picojoules{});
    EXPECT_GT(one.tasks_per_second, 0.0);
}

TEST(CpuBaseline, MoreThreadsGoFaster)
{
    WorkloadFootprint fp;
    fp.tasks = 10;
    fp.steps = 1000;
    fp.accesses = 1000;
    CpuBaselineParams few;
    few.threads = 1;
    CpuBaselineParams many;
    many.threads = 48;
    EXPECT_GT(cpuBaseline(fp, few).seconds,
              cpuBaseline(fp, many).seconds * 40);
}

TEST(EnergyModel, TableMatchesPaperValues)
{
    const auto table = peOverheadTable();
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(peOverheadFor("MEDAL").area_um2, 8941.39);
    EXPECT_EQ(peOverheadFor("NEST").area_um2, 16721.12);
    EXPECT_EQ(peOverheadFor("BEACON").area_um2, 14090.23);
    EXPECT_EQ(peOverheadFor("BEACON").dynamic_power_mw, 9.48);
    EXPECT_EQ(peOverheadFor("BEACON").leakage_power_uw, 18.97);
}

TEST(EnergyModelDeath, UnknownArchitectureFatal)
{
    EXPECT_DEATH(peOverheadFor("TPU"), "unknown architecture");
}

TEST(EnergyModel, PeEnergyComposition)
{
    const PeOverhead &pe = peOverheadFor("BEACON");
    // 1 us busy, 2 us elapsed, 100 PEs.
    const double pj =
        peEnergyPj(pe, 1000000, 2000000, 100).value();
    const double expected_dynamic = 9.48 * 1e6 * 1e-3;
    const double expected_leak = 18.97 * 2e6 * 100 * 1e-6;
    EXPECT_NEAR(pj, expected_dynamic + expected_leak, 1e-6);
}

TEST(EnergyModel, SystemEnergyFractions)
{
    SystemEnergy energy;
    energy.dram_pj = Picojoules{50};
    energy.comm_pj = Picojoules{30};
    energy.pe_pj = Picojoules{20};
    EXPECT_DOUBLE_EQ(energy.totalPj().value(), 100.0);
    EXPECT_DOUBLE_EQ(energy.commFraction(), 0.3);
    EXPECT_DOUBLE_EQ(energy.peFraction(), 0.2);
}

TEST(EnergyModel, CommEnergyPerBit)
{
    EXPECT_DOUBLE_EQ(commEnergyPj(Bytes{1}, 1.0).value(), 8.0);
    EXPECT_DOUBLE_EQ(commEnergyPj(Bytes{64}, 6.0).value(),
                     64 * 8 * 6.0);
}

} // namespace
} // namespace beacon
