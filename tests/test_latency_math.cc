/**
 * @file
 * Exact end-to-end latency arithmetic: for hand-built minimal
 * scenarios the simulated completion times must equal the sum of the
 * modelled components, tick for tick. These tests pin the timing
 * composition so refactors cannot silently double-charge or drop a
 * hop.
 */

#include <gtest/gtest.h>

#include "accel/ddr_fabric.hh"
#include "cxl/pool.hh"
#include "dram/controller.hh"

namespace beacon
{
namespace
{

TEST(LatencyMath, IdleBankReadLatencyExact)
{
    EventQueue eq;
    StatRegistry stats;
    DimmGeometry geom;
    DramControllerParams params;
    params.enable_refresh = false;
    const DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    DramController ctrl("dimm", eq, stats, geom, tp, params);

    Tick done = 0;
    MemRequest req;
    req.coord.row = RowId{1};
    req.coord.chip_count = 16;
    req.bursts = 1;
    req.on_complete = [&](Tick t) { done = t; };
    ctrl.enqueue(std::move(req));
    eq.run();
    // Decision at t=0 issues ACT; the column command goes out at
    // exactly tRCD; data ends tCL + tBL later.
    EXPECT_EQ(done, (tp.t_rcd + tp.t_cl + tp.t_bl) * tp.t_ck_ps);
}

TEST(LatencyMath, RowHitReadLatencyExact)
{
    EventQueue eq;
    StatRegistry stats;
    DimmGeometry geom;
    DramControllerParams params;
    params.enable_refresh = false;
    const DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    DramController ctrl("dimm", eq, stats, geom, tp, params);

    // Warm the row.
    MemRequest warm;
    warm.coord.row = RowId{1};
    warm.coord.chip_count = 16;
    ctrl.enqueue(std::move(warm));
    eq.run();
    const Tick start = eq.now();

    Tick done = 0;
    MemRequest hit;
    hit.coord.row = RowId{1};
    hit.coord.column = 64;
    hit.coord.chip_count = 16;
    hit.on_complete = [&](Tick t) { done = t; };
    // Enqueue later, from a scheduled event.
    eq.schedule(start + 100 * tp.t_ck_ps,
                [&ctrl, &hit] { ctrl.enqueue(std::move(hit)); });
    eq.run();
    // Hit latency: CAS + burst only (bank constraints long since
    // satisfied).
    EXPECT_EQ(done, start + (100 + tp.t_cl + tp.t_bl) * tp.t_ck_ps);
}

TEST(LatencyMath, PoolDeviceBiasPathExact)
{
    EventQueue eq;
    StatRegistry stats;
    PoolParams params;
    params.device_bias = true;
    params.packer.enabled = false;
    PoolFabric fabric("pool", eq, stats, params);

    // dimm(0,0) -> dimm(0,1), 60 B payload = one 64 B flit:
    // link up (2 ns serialise + 25 ns) + bus (0.25 ns + 15 ns)
    // + link down (2 ns + 25 ns).
    Tick arrive = 0;
    fabric.send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                Bytes{60}, false, [&](Tick t) { arrive = t; });
    eq.run();
    const Tick link_ser = transferTime(Bytes{64}, 32.0);
    const Tick bus_ser = transferTime(Bytes{64}, 256.0);
    EXPECT_EQ(arrive, 2 * (link_ser + params.dimm_link.latency) +
                          bus_ser + params.switch_latency);
}

TEST(LatencyMath, PoolHostBiasAddsHostRoundTrip)
{
    EventQueue eq;
    StatRegistry stats;
    PoolParams params;
    params.device_bias = false;
    params.packer.enabled = false;
    PoolFabric fabric("pool", eq, stats, params);

    Tick arrive = 0;
    fabric.send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                Bytes{60}, false, [&](Tick t) { arrive = t; });
    eq.run();
    const Tick link_ser = transferTime(Bytes{64}, 32.0);
    const Tick host_ser = transferTime(Bytes{64}, 64.0);
    const Tick bus_ser = transferTime(Bytes{64}, 256.0);
    const Tick expected =
        // dimm link up + bus + host link up
        link_ser + params.dimm_link.latency + bus_ser +
        params.switch_latency + host_ser +
        params.host_link.latency +
        // host coherence processing
        params.host_latency +
        // host link down + bus + dimm link down
        host_ser + params.host_link.latency + bus_ser +
        params.switch_latency + link_ser +
        params.dimm_link.latency;
    EXPECT_EQ(arrive, expected);
}

TEST(LatencyMath, DdrDimmToDimmExact)
{
    EventQueue eq;
    StatRegistry stats;
    DdrFabricParams params;
    DdrFabric fabric("ddr", eq, stats, params);

    Tick arrive = 0;
    fabric.send(NodeId::dimmNode(2, 0), NodeId::dimmNode(2, 1),
                Bytes{32}, true, [&](Tick t) { arrive = t; });
    eq.run();
    const Tick ser = transferTime(Bytes{32}, params.channel_gb_per_s);
    EXPECT_EQ(arrive, 2 * (ser + params.channel_latency) +
                          params.host_forward_latency);
}

TEST(LatencyMath, PackerTimeoutAddsExactStagingDelay)
{
    EventQueue eq;
    StatRegistry stats;
    PoolParams params;
    params.device_bias = true;
    params.packer.enabled = true;
    PoolFabric fabric("pool", eq, stats, params);

    Tick arrive = 0;
    // One lone fine-grained payload: waits out the flush timeout,
    // then takes the physical path as a single flit.
    fabric.send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                Bytes{8}, true, [&](Tick t) { arrive = t; });
    eq.run();
    const Tick link_ser = transferTime(Bytes{64}, 32.0);
    const Tick bus_ser = transferTime(Bytes{64}, 256.0);
    EXPECT_EQ(arrive, params.packer.flush_timeout +
                          2 * (link_ser + params.dimm_link.latency) +
                          bus_ser + params.switch_latency);
}

} // namespace
} // namespace beacon
