/**
 * @file
 * ThreadPool and SweepRunner: scheduling, per-run isolation,
 * deterministic merge order, exception semantics, and the
 * serial-vs-parallel equivalence the bench harnesses rely on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/sweep.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "check/checker_config.hh"
#include "common/thread_pool.hh"

namespace beacon
{
namespace
{

// ---------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskAndDeliversResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    int sum = 0;
    for (auto &f : futures)
        sum += f.get();
    int expect = 0;
    for (int i = 0; i < 32; ++i)
        expect += i * i;
    EXPECT_EQ(sum, expect);
}

TEST(ThreadPoolTest, FuturePropagatesTaskException)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(
        {
            try {
                f.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "task failed");
                throw;
            }
        },
        std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // Destructor must run every queued task, then join.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPoolDeathTest, ZeroWorkersPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(ThreadPool pool(0), "at least one worker");
}

// ---------------------------------------------------------------
// SweepRunner scheduling
// ---------------------------------------------------------------

TEST(SweepRunnerTest, EmptySweepReturnsEmpty)
{
    SweepRunner runner(4);
    EXPECT_TRUE(runner.run().empty());
    // The runner stays usable after an empty run.
    runner.enqueue({"d", "l"}, [](RunContext &) {
        return SweepOutcome{};
    });
    EXPECT_EQ(runner.run().size(), 1u);
}

TEST(SweepRunnerTest, MoreWorkersThanJobs)
{
    SweepRunner runner(16);
    for (int i = 0; i < 3; ++i)
        runner.enqueue({"d", std::to_string(i)},
                       [i](RunContext &) {
                           SweepOutcome out;
                           out.stats.emplace_back("i", double(i));
                           return out;
                       });
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(outcomes[i].key.label, std::to_string(i));
        EXPECT_EQ(outcomes[i].stats[0].second, double(i));
    }
}

TEST(SweepRunnerTest, OutcomesMergeInSubmissionOrder)
{
    // Jobs finish in scrambled wall-clock order (later submissions
    // sleep less); the merged vector must still follow submission
    // order, and ctx.index must equal the submission index.
    SweepRunner runner(4);
    for (std::size_t i = 0; i < 8; ++i)
        runner.enqueue({"order", std::to_string(i)},
                       [i](RunContext &ctx) {
                           SweepOutcome out;
                           out.stats.emplace_back(
                               "ctx_index", double(ctx.index));
                           out.stats.emplace_back("job", double(i));
                           return out;
                       });
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(outcomes[i].key.label, std::to_string(i));
        EXPECT_EQ(outcomes[i].stats[0].second, double(i));
        EXPECT_EQ(outcomes[i].stats[1].second, double(i));
    }
}

/** Record each job's first Rng draws for a given worker count. */
std::vector<std::vector<std::uint64_t>>
rngDraws(unsigned workers)
{
    SweepRunner runner(workers, /*base_seed=*/42);
    for (int i = 0; i < 6; ++i)
        runner.enqueue({"rng", std::to_string(i)},
                       [](RunContext &ctx) {
                           SweepOutcome out;
                           for (int d = 0; d < 4; ++d)
                               out.stats.emplace_back(
                                   "draw",
                                   double(ctx.rng.next(1u << 30)));
                           return out;
                       });
    std::vector<std::vector<std::uint64_t>> draws;
    for (const SweepOutcome &out : runner.run()) {
        std::vector<std::uint64_t> row;
        for (const auto &[k, v] : out.stats)
            row.push_back(std::uint64_t(v));
        draws.push_back(std::move(row));
    }
    return draws;
}

TEST(SweepRunnerTest, RngStreamDependsOnIndexNotWorker)
{
    const auto serial = rngDraws(1);
    const auto parallel = rngDraws(8);
    EXPECT_EQ(serial, parallel);
    // Streams are decorrelated across jobs.
    EXPECT_NE(serial[0], serial[1]);
}

// ---------------------------------------------------------------
// Exception semantics
// ---------------------------------------------------------------

TEST(SweepRunnerTest, LowestIndexExceptionWins)
{
    // All four jobs hold at a latch until everyone has started, so
    // both throwing jobs (indices 1 and 3) really run; the rethrown
    // error must be index 1's, exactly as a serial loop would fail.
    SweepRunner runner(4);
    std::latch ready(4);
    for (int i = 0; i < 4; ++i)
        runner.enqueue({"err", std::to_string(i)},
                       [i, &ready](RunContext &) -> SweepOutcome {
                           ready.arrive_and_wait();
                           if (i == 1 || i == 3)
                               throw std::runtime_error(
                                   "job " + std::to_string(i));
                           return {};
                       });
    try {
        runner.run();
        FAIL() << "run() should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 1");
    }
}

TEST(SweepRunnerTest, SerialCancellationSkipsLaterJobs)
{
    // jobs=1: job 0 throws, so jobs 1..3 must never execute.
    SweepRunner runner(1);
    std::atomic<int> executed{0};
    for (int i = 0; i < 4; ++i)
        runner.enqueue({"cancel", std::to_string(i)},
                       [i, &executed](RunContext &) -> SweepOutcome {
                           executed.fetch_add(1);
                           if (i == 0)
                               throw std::runtime_error("first");
                           return {};
                       });
    EXPECT_THROW(runner.run(), std::runtime_error);
    EXPECT_EQ(executed.load(), 1);
}

TEST(SweepRunnerTest, ParallelFailureJoinsAllWorkers)
{
    // run() must not leave detached threads after a worker throws:
    // every started job observes its side effect before run()
    // returns, and the runner can be reused immediately.
    SweepRunner runner(4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 16; ++i)
        runner.enqueue({"join", std::to_string(i)},
                       [i, &completed](RunContext &) -> SweepOutcome {
                           if (i == 0)
                               throw std::runtime_error("abort");
                           completed.fetch_add(1);
                           return {};
                       });
    EXPECT_THROW(runner.run(), std::runtime_error);
    const int after_run = completed.load();
    // Nothing keeps running once run() has returned.
    EXPECT_EQ(completed.load(), after_run);
    runner.enqueue({"join", "again"}, [](RunContext &) {
        return SweepOutcome{};
    });
    EXPECT_EQ(runner.run().size(), 1u);
}

// ---------------------------------------------------------------
// Per-run isolation of full simulations
// ---------------------------------------------------------------

const FmSeedingWorkload &
smallWorkload()
{
    static const FmSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[3];
        preset.genome.length = 1 << 13;
        preset.reads.num_reads = 16;
        return FmSeedingWorkload(preset);
    }();
    return workload;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.host_round_trips, b.host_round_trips);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writes, b.dram_writes);
    EXPECT_EQ(a.energy.totalPj(), b.energy.totalPj());
    EXPECT_EQ(a.chip_accesses, b.chip_accesses);
}

TEST(SweepIsolationTest, ConcurrentSystemsDoNotInterleaveStats)
{
    // Regression test for shared mutable state between NdpSystem
    // instances: two different machines simulated concurrently must
    // produce exactly the results they produce when run alone.
    SystemParams d = SystemParams::beaconD();
    SystemParams s = SystemParams::cxlVanillaD();
    d.checkers = CheckerConfig::all();
    s.checkers = CheckerConfig::all();

    NdpSystem alone_d(d, smallWorkload());
    const RunResult serial_d = alone_d.run(8);
    NdpSystem alone_s(s, smallWorkload());
    const RunResult serial_s = alone_s.run(8);

    SweepRunner runner(2);
    runner.enqueueRun({"iso", "beacon-d"}, d, smallWorkload(), 8);
    runner.enqueueRun({"iso", "vanilla"}, s, smallWorkload(), 8);
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 2u);
    expectSameRun(outcomes[0].result, serial_d);
    expectSameRun(outcomes[1].result, serial_s);
}

TEST(SweepIsolationTest, JsonIdenticalAcrossWorkerCounts)
{
    auto sweepJson = [](unsigned workers) {
        SweepRunner runner(workers);
        for (const SystemParams &params :
             {SystemParams::cxlVanillaD(), SystemParams::beaconD()})
            runner.enqueueRun({"json", params.name}, params,
                              smallWorkload(), 8,
                              {"rowHits"});
        SweepReport report;
        report.harness = "test_sweep";
        report.jobs = runner.jobs();
        report.add(runner.run());
        report.derive("answer", 42.0);
        return sweepJsonString(report, /*include_runtime=*/false);
    };
    const std::string serial = sweepJson(1);
    const std::string parallel = sweepJson(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"schema\": \"beacon-bench-3\""),
              std::string::npos);
    EXPECT_EQ(serial.find("wall_seconds"), std::string::npos);
    EXPECT_EQ(serial.find("\"jobs\""), std::string::npos);
}

} // namespace
} // namespace beacon
