# Flight-recorder trap smoke (ctest name: FlightRecorderTrapSmoke).
#
# Runs the flight_recorder_trap fixture, which arms the lane guard in
# trap mode and fires a deliberate cross-lane touch. Asserts the
# post-mortem contract of docs/observability.md:
#   1. the fixture dies (the trap's BEACON_CHECK aborts the process),
#   2. the panic hook wrote the dump JSON before aborting,
#   3. the dump carries the beacon-flightrec-1 schema tag and a
#      non-empty ring of events preceding the trap.
#
# Usage: cmake -DFIXTURE=<exe> -DDUMP=<path> -P flight_recorder_smoke.cmake

if(NOT FIXTURE OR NOT DUMP)
    message(FATAL_ERROR "FIXTURE and DUMP must both be set")
endif()

file(REMOVE "${DUMP}")

execute_process(COMMAND "${FIXTURE}" "${DUMP}"
                RESULT_VARIABLE fixture_rv
                OUTPUT_VARIABLE fixture_out
                ERROR_VARIABLE fixture_err)

if(fixture_rv EQUAL 0)
    message(FATAL_ERROR
        "fixture exited 0; the lane guard never trapped\n"
        "${fixture_err}")
endif()

if(NOT EXISTS "${DUMP}")
    message(FATAL_ERROR
        "trap did not write the post-mortem dump '${DUMP}'\n"
        "${fixture_err}")
endif()

file(READ "${DUMP}" dump_content)

if(NOT dump_content MATCHES "\"schema\": \"beacon-flightrec-1\"")
    message(FATAL_ERROR
        "dump '${DUMP}' is missing the beacon-flightrec-1 schema tag")
endif()

if(NOT dump_content MATCHES "\"reason\": \"panic\"")
    message(FATAL_ERROR
        "dump '${DUMP}' does not record the panic reason")
endif()

if(NOT dump_content MATCHES "\"detail\": \"[^\"]*lane guard")
    message(FATAL_ERROR
        "dump '${DUMP}' detail does not name the lane guard")
endif()

# The fixture ran 32 warm-up events per lane before the trap, so at
# least one ring must contain records.
if(NOT dump_content MATCHES "\"records\":\\[{")
    message(FATAL_ERROR
        "dump '${DUMP}' contains no ring records before the trap")
endif()

message(STATUS "flight-recorder dump verified: ${DUMP}")
