/**
 * @file
 * FM-index correctness: search results verified against naive string
 * scanning, occ against direct BWT counting, locate against true
 * positions — plus the accelerator-layout helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.hh"
#include "genomics/fm_index.hh"

namespace beacon::genomics
{
namespace
{

std::vector<std::uint32_t>
naiveFind(const std::string &text, const std::string &pattern)
{
    std::vector<std::uint32_t> out;
    if (pattern.empty())
        return out;
    std::size_t pos = text.find(pattern);
    while (pos != std::string::npos) {
        out.push_back(std::uint32_t(pos));
        pos = text.find(pattern, pos + 1);
    }
    return out;
}

class FmIndexTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        GenomeParams params;
        params.length = GetParam();
        params.repeat_fraction = 0.3;
        params.seed = 77;
        genome = makeGenome(params);
        text = genome.str();
        index = std::make_unique<FmIndex>(genome, 16);
    }

    DnaSequence genome;
    std::string text;
    std::unique_ptr<FmIndex> index;
};

TEST_P(FmIndexTest, CountsMatchNaiveSearch)
{
    Rng rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t len = 3 + rng.next(18);
        const std::size_t pos = rng.next(text.size() - len);
        const std::string pattern = text.substr(pos, len);
        const SaRange range = index->search(DnaSequence(pattern));
        EXPECT_EQ(range.count(), naiveFind(text, pattern).size())
            << "pattern " << pattern;
    }
}

TEST_P(FmIndexTest, AbsentPatternsYieldEmptyRange)
{
    // A pattern longer than the text cannot occur; also test random
    // patterns and verify against naive search.
    Rng rng(321);
    int absent = 0;
    for (int trial = 0; trial < 50; ++trial) {
        std::string pattern;
        for (int i = 0; i < 24; ++i)
            pattern.push_back(charFromBase(Base(rng.next(4))));
        const SaRange range = index->search(DnaSequence(pattern));
        const auto naive = naiveFind(text, pattern);
        EXPECT_EQ(range.count(), naive.size());
        absent += naive.empty();
    }
    EXPECT_GT(absent, 0) << "random 24-mers should mostly be absent";
}

TEST_P(FmIndexTest, LocateReturnsTruePositions)
{
    Rng rng(55);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t len = 8 + rng.next(8);
        const std::size_t pos = rng.next(text.size() - len);
        const std::string pattern = text.substr(pos, len);
        const SaRange range = index->search(DnaSequence(pattern));
        const auto located = index->locate(range, 1000);
        const auto naive = naiveFind(text, pattern);
        std::set<std::uint32_t> a(located.begin(), located.end());
        std::set<std::uint32_t> b(naive.begin(), naive.end());
        EXPECT_EQ(a, b) << "pattern " << pattern;
    }
}

TEST_P(FmIndexTest, OccMatchesDirectCount)
{
    // occ(c, i) must equal a direct scan of the BWT prefix. We
    // recompute the BWT here from scratch.
    const auto sa = buildSuffixArray(genome);
    const auto bwt = buildBwt(genome, sa);
    Rng rng(9);
    for (int trial = 0; trial < 100; ++trial) {
        const std::uint64_t i = rng.next(bwt.size() + 1);
        for (unsigned c = 0; c < 4; ++c) {
            std::uint64_t direct = 0;
            for (std::uint64_t j = 0; j < i; ++j)
                direct += bwt[j] == c;
            EXPECT_EQ(index->occ(Base(c), i), direct)
                << "occ(" << c << ", " << i << ")";
        }
    }
}

TEST_P(FmIndexTest, ExtendComposesToSearch)
{
    Rng rng(42);
    const std::size_t len = 12;
    const std::size_t pos = rng.next(text.size() - len);
    const DnaSequence pattern(text.substr(pos, len));
    SaRange range = index->wholeRange();
    for (std::size_t i = pattern.size(); i > 0; --i)
        range = index->extend(range, pattern.at(i - 1));
    EXPECT_EQ(range, index->search(pattern));
}

TEST_P(FmIndexTest, LayoutHelpersConsistent)
{
    EXPECT_EQ(index->size(), genome.size() + 1);
    EXPECT_EQ(index->blockOf(0), 0u);
    EXPECT_EQ(index->blockOf(FmIndex::block_symbols), 1u);
    EXPECT_GE(index->numBlocks(),
              index->size() / FmIndex::block_symbols);
    EXPECT_EQ(index->indexBytes(),
              index->numBlocks() * FmIndex::block_bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FmIndexTest,
                         ::testing::Values(512, 4096, 16384),
                         [](const auto &info) {
                             return "n" + std::to_string(info.param);
                         });

TEST(FmIndexEdge, SingleBaseTextSearchable)
{
    const DnaSequence genome(std::string("A"));
    FmIndex index(genome);
    EXPECT_EQ(index.search(DnaSequence(std::string("A"))).count(),
              1u);
    EXPECT_EQ(index.search(DnaSequence(std::string("C"))).count(),
              0u);
}

TEST(FmIndexEdge, EmptyPatternMatchesEverywhere)
{
    const DnaSequence genome(std::string("ACGT"));
    FmIndex index(genome);
    EXPECT_EQ(index.search(DnaSequence()).count(), genome.size() + 1);
}

TEST(FmIndexEdge, ExtendingEmptyRangeStaysEmpty)
{
    const DnaSequence genome(std::string("AAAA"));
    FmIndex index(genome);
    SaRange empty =
        index.search(DnaSequence(std::string("C")));
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(index.extend(empty, BaseA).empty());
}

} // namespace
} // namespace beacon::genomics
