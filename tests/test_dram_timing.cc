/**
 * @file
 * Property tests for the DDR4 timing model: every JEDEC-style
 * constraint the model claims to enforce is checked against the
 * earliest-issue queries, across chip-group widths and DIMM flavours
 * (stock vs customised per-rank wiring).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dimm_timing.hh"

namespace beacon
{
namespace
{

DimmGeometry
stockGeom()
{
    return DimmGeometry{};
}

DimmGeometry
customGeom()
{
    DimmGeometry g;
    g.per_rank_lanes = true;
    g.per_rank_cmd_bus = true;
    return g;
}

DramCoord
coordOf(unsigned rank, unsigned bg, unsigned bank, unsigned row,
        unsigned col = 0, unsigned chip_first = 0,
        unsigned chip_count = 16)
{
    DramCoord c;
    c.rank = rank;
    c.bank_group = bg;
    c.bank = bank;
    c.row = RowId{row};
    c.column = col;
    c.chip_first = chip_first;
    c.chip_count = chip_count;
    return c;
}

class DramTimingTest : public ::testing::TestWithParam<bool>
{
  protected:
    DimmGeometry
    geom() const
    {
        return GetParam() ? customGeom() : stockGeom();
    }

    DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    Tick ck = tp.t_ck_ps;
};

TEST_P(DramTimingTest, GeometryCapacityIs64GiB)
{
    EXPECT_EQ(geom().capacityBytes(), 64ull << 30);
    EXPECT_EQ(geom().rowBytesPerChip(), 512u);
    EXPECT_EQ(geom().bytesPerChipBurst(), 4u);
}

TEST_P(DramTimingTest, ActToColumnHonoursTrcd)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(0, 0, 0, 10);
    const Tick act_at = model.earliestAct(c, 0);
    model.issueAct(c, act_at);
    const Tick col_at = model.earliestColumn(c, false, act_at);
    EXPECT_GE(col_at, act_at + tp.t_rcd * ck);
}

TEST_P(DramTimingTest, PreHonoursTrasAndActHonoursTrp)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(1, 2, 3, 77);
    model.issueAct(c, 0);
    const Tick pre_at = model.earliestPre(c, 0);
    EXPECT_GE(pre_at, tp.t_ras * ck);
    model.issuePre(c, pre_at);
    const Tick act2 = model.earliestAct(c, pre_at);
    EXPECT_GE(act2, pre_at + tp.t_rp * ck);
}

TEST_P(DramTimingTest, SameBankActToActHonoursTrc)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(0, 1, 1, 5);
    model.issueAct(c, 0);
    const Tick pre_at = model.earliestPre(c, 0);
    model.issuePre(c, pre_at);
    DramCoord c2 = c;
    c2.row = RowId{6};
    const Tick act2 = model.earliestAct(c2, 0);
    EXPECT_GE(act2, tp.t_rc * ck);
}

TEST_P(DramTimingTest, FourActivateWindowPerChip)
{
    DimmTimingModel model(geom(), tp);
    // Issue four ACTs to distinct banks of the same chip group as
    // fast as allowed; the fifth must wait for tFAW.
    Tick first_act = 0;
    Tick t = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const DramCoord c = coordOf(0, i % 4, i / 4, 3);
        t = model.earliestAct(c, t);
        if (i == 0)
            first_act = t;
        model.issueAct(c, t);
    }
    const DramCoord fifth = coordOf(0, 0, 2, 3);
    const Tick t5 = model.earliestAct(fifth, t);
    EXPECT_GE(t5, first_act + tp.t_faw * ck);
}

TEST_P(DramTimingTest, TccdLongerWithinBankGroup)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord a = coordOf(0, 0, 0, 1);
    const DramCoord same_bg = coordOf(0, 0, 1, 1);
    const DramCoord other_bg = coordOf(0, 1, 0, 1);
    model.issueAct(a, 0);
    // Open the other rows far in the future-safe way: separate banks.
    Tick t = model.earliestAct(same_bg, 0);
    model.issueAct(same_bg, t);
    t = model.earliestAct(other_bg, t);
    model.issueAct(other_bg, t);

    // Let every tRCD drain so only column constraints remain.
    t += tp.t_rcd * ck;
    const Tick col_a = model.earliestColumn(a, false, t);
    model.issueColumn(a, false, col_a);
    const Tick col_same = model.earliestColumn(same_bg, false, col_a);
    const Tick col_other =
        model.earliestColumn(other_bg, false, col_a);
    EXPECT_GE(col_same, col_a + tp.t_ccd_l * ck);
    EXPECT_LE(col_other, col_same);
}

TEST_P(DramTimingTest, ReadDataEndAccountsClAndBurst)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(0, 0, 0, 9);
    model.issueAct(c, 0);
    const Tick col_at = model.earliestColumn(c, false, 0);
    const Tick data_end = model.issueColumn(c, false, col_at);
    EXPECT_EQ(data_end, col_at + (tp.t_cl + tp.t_bl) * ck);
}

TEST_P(DramTimingTest, WriteToReadTurnaround)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(0, 0, 0, 9);
    model.issueAct(c, 0);
    const Tick wr_at = model.earliestColumn(c, true, 0);
    const Tick wr_end = model.issueColumn(c, true, wr_at);
    const Tick rd_at = model.earliestColumn(c, false, wr_at);
    EXPECT_GE(rd_at, wr_end + tp.t_wtr * ck);
}

TEST_P(DramTimingTest, RefreshClosesRowsAndBlocks)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(2, 0, 0, 42);
    model.issueAct(c, 0);
    EXPECT_EQ(model.openRow(2, 0, 0), 42);
    const Tick start = model.earliestRefresh(2, 0);
    const Tick done = model.issueRefresh(2, start);
    EXPECT_EQ(done, start + tp.t_rfc * ck);
    EXPECT_EQ(model.openRow(2, 0, 0), -1);
    DramCoord c2 = c;
    c2.row = RowId{43};
    EXPECT_GE(model.earliestAct(c2, start), done);
    // Other ranks are unaffected.
    const DramCoord other = coordOf(0, 0, 0, 1);
    EXPECT_LT(model.earliestAct(other, start), done);
}

TEST_P(DramTimingTest, FineGrainedChipsHaveIndependentRows)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord chip0 = coordOf(0, 0, 0, 10, 0, 0, 1);
    const DramCoord chip1 = coordOf(0, 0, 0, 20, 0, 1, 1);
    Tick t = model.earliestAct(chip0, 0);
    model.issueAct(chip0, t);
    t = model.earliestAct(chip1, t);
    model.issueAct(chip1, t);
    EXPECT_EQ(model.openRow(0, 0, 0), 10);
    EXPECT_EQ(model.openRow(0, 1, 0), 20);
    EXPECT_TRUE(model.rowHit(chip0, geom().banks_per_group));
    EXPECT_TRUE(model.rowHit(chip1, geom().banks_per_group));
}

TEST_P(DramTimingTest, ChipAccessCountersTrackColumns)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord group = coordOf(0, 0, 0, 1, 0, 4, 8);
    model.issueAct(group, 0);
    const Tick col = model.earliestColumn(group, false, 0);
    model.issueColumn(group, false, col);
    const auto &per_chip = model.chipAccesses();
    for (unsigned chip = 0; chip < 16; ++chip) {
        const bool in_group = chip >= 4 && chip < 12;
        EXPECT_EQ(per_chip[chip], in_group ? 1u : 0u) << chip;
    }
    EXPECT_EQ(model.rawBytes(), Bytes{8 * 4});
    EXPECT_EQ(model.numActChipOps(), 8u);
}

TEST_P(DramTimingTest, CommandsAlignToClockEdges)
{
    DimmTimingModel model(geom(), tp);
    const DramCoord c = coordOf(0, 0, 0, 3);
    const Tick act = model.earliestAct(c, 617); // arbitrary time
    EXPECT_EQ(act % ck, 0u);
    model.issueAct(c, act);
    const Tick col = model.earliestColumn(c, false, act + 1);
    EXPECT_EQ(col % ck, 0u);
}

INSTANTIATE_TEST_SUITE_P(StockAndCustom, DramTimingTest,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "custom" : "stock";
                         });

TEST(DramTimingLanes, StockDimmSerialisesRanksOnLanes)
{
    const DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    // Stock: ranks share data lanes; customised: per-rank lanes.
    DimmTimingModel stock(stockGeom(), tp);
    DimmTimingModel custom(customGeom(), tp);

    auto burst_gap = [&](DimmTimingModel &model) {
        const DramCoord r0 = coordOf(0, 0, 0, 1);
        const DramCoord r1 = coordOf(1, 0, 0, 1);
        Tick t = model.earliestAct(r0, 0);
        model.issueAct(r0, t);
        t = model.earliestAct(r1, t);
        model.issueAct(r1, t);
        const Tick col0 = model.earliestColumn(r0, false, t);
        model.issueColumn(r0, false, col0);
        const Tick col1 = model.earliestColumn(r1, false, col0);
        return col1 - col0;
    };

    const Tick stock_gap = burst_gap(stock);
    const Tick custom_gap = burst_gap(custom);
    // On the stock DIMM the second rank's burst waits for the shared
    // lanes; on the customised DIMM only tCCD-class spacing applies.
    EXPECT_GT(stock_gap, custom_gap);
}

TEST(DramTimingCmdBus, PerRankBusAllowsSameTickIssue)
{
    const DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    DimmTimingModel custom(customGeom(), tp);
    DimmTimingModel stock(stockGeom(), tp);

    const DramCoord r0 = coordOf(0, 0, 0, 1);
    const DramCoord r1 = coordOf(1, 0, 0, 1);
    custom.issueAct(r0, 0);
    EXPECT_EQ(custom.earliestAct(r1, 0), 0u);
    stock.issueAct(r0, 0);
    EXPECT_GE(stock.earliestAct(r1, 0), tp.t_ck_ps);
}

TEST(DramTimingPresets, Ddr3200IsFasterButSameNanoseconds)
{
    const DramTimingParams slow = DramTimingParams::ddr4_1600_22();
    const DramTimingParams fast = DramTimingParams::ddr4_3200_22();
    EXPECT_EQ(fast.t_ck_ps * 2, slow.t_ck_ps);
    // CAS chain shrinks in wall-clock time (same cycle count).
    EXPECT_LT(fast.t_cl * fast.t_ck_ps, slow.t_cl * slow.t_ck_ps);
    // Analog windows hold in nanoseconds.
    EXPECT_EQ(fast.t_wr * fast.t_ck_ps, slow.t_wr * slow.t_ck_ps);
    EXPECT_EQ(fast.t_rfc * fast.t_ck_ps,
              slow.t_rfc * slow.t_ck_ps);
    EXPECT_EQ(fast.t_refi * fast.t_ck_ps,
              slow.t_refi * slow.t_ck_ps);

    // A streaming burst train completes sooner at the faster grade.
    auto stream_time = [](const DramTimingParams &tp) {
        DimmTimingModel model(DimmGeometry{}, tp);
        DramCoord c;
        c.row = RowId{1};
        c.chip_count = 16;
        model.issueAct(c, 0);
        Tick t = model.earliestColumn(c, false, 0);
        Tick end = 0;
        for (int i = 0; i < 64; ++i) {
            t = model.earliestColumn(c, false, t);
            end = model.issueColumn(c, false, t);
        }
        return end;
    };
    EXPECT_LT(stream_time(fast), stream_time(slow));
}

TEST(DramTimingRandom, EarliestQueriesAreMonotoneAndLegal)
{
    // Property: for random command sequences, earliest*(t) >= t and
    // issuing at the returned tick never violates the model's own
    // assertions.
    const DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    DimmTimingModel model(customGeom(), tp);
    Rng rng(2024);
    Tick now = 0;
    for (int i = 0; i < 500; ++i) {
        DramCoord c;
        c.rank = unsigned(rng.next(4));
        c.bank_group = unsigned(rng.next(4));
        c.bank = unsigned(rng.next(4));
        c.row = RowId{unsigned(rng.next(1u << 17))};
        const unsigned widths[] = {1, 2, 4, 8, 16};
        c.chip_count = widths[rng.next(5)];
        c.chip_first =
            unsigned(rng.next(16 / c.chip_count)) * c.chip_count;

        const unsigned bpg = 4;
        if (model.rowHit(c, bpg)) {
            const bool wr = rng.chance(0.3);
            const Tick t = model.earliestColumn(c, wr, now);
            EXPECT_GE(t, now);
            model.issueColumn(c, wr, t);
            now = t;
        } else if (model.bankClosed(c, bpg)) {
            const Tick t = model.earliestAct(c, now);
            EXPECT_GE(t, now);
            model.issueAct(c, t);
            now = t;
        } else {
            const Tick t = model.earliestPre(c, now);
            EXPECT_GE(t, now);
            model.issuePre(c, t);
            now = t;
        }
        // Time moves forward only (alignment can keep it equal).
    }
    EXPECT_GT(model.numActs(), 0u);
}

} // namespace
} // namespace beacon
