/**
 * @file
 * Differential tests for the sharded parallel event queue.
 *
 * Layer 1 (this file, queue-level): a deterministic random workload
 * of self-scheduling events runs on the legacy serial EventQueue and
 * on ShardedEventQueue at lane counts {1,2,4,8}, inline and pooled,
 * and the canonical execution sequences must match element-for-
 * element — same events, same ticks, same order, same queue state.
 *
 * Layer 2 (system-level, further down): whole NdpSystem /
 * orchestrator runs serial vs sharded diffing full StatRegistry
 * dumps, plus BEACON_CHECK death tests for lookahead violations.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "accel/experiment.hh"
#include "accel/system.hh"
#include "service/orchestrator.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_event_queue.hh"

namespace beacon
{
namespace
{

// ---------------------------------------------------------------
// Canonical-order recorder
// ---------------------------------------------------------------

/**
 * Records (label, tick) per executed event in canonical order, the
 * same way obs::TraceSink does: events running inside a parallel
 * window stage into a per-lane buffer tagged with the lane-local pop
 * index and are committed at the barrier merge; events running in a
 * serial context append directly.
 */
class Recorder : public LaneMergeHook
{
  public:
    struct Item
    {
        std::uint64_t label;
        Tick when;

        bool
        operator==(const Item &o) const
        {
            return label == o.label && when == o.when;
        }
    };

    void
    record(std::uint64_t label, Tick when)
    {
        const ShardExecContext *ctx = currentShardContext();
        if (ctx && ctx->in_window) {
            auto &stage = staged[ctx->lane];
            stage.items.push_back(Staged{ctx->pop, {label, when}});
        } else {
            log.push_back({label, when});
        }
    }

    void
    prepareLanes(std::size_t lanes) override
    {
        if (staged.size() < lanes)
            staged.resize(lanes);
    }

    void
    commitLaneEvent(unsigned lane, std::uint64_t pop_idx) override
    {
        auto &stage = staged[lane];
        while (stage.cursor < stage.items.size() &&
               stage.items[stage.cursor].pop <= pop_idx)
            log.push_back(stage.items[stage.cursor++].item);
        if (stage.cursor == stage.items.size()) {
            stage.items.clear();
            stage.cursor = 0;
        }
    }

    std::vector<Item> log;

  private:
    struct Staged
    {
        std::uint64_t pop;
        Item item;
    };
    struct LaneStage
    {
        std::vector<Staged> items;
        std::size_t cursor = 0;
    };
    std::vector<LaneStage> staged;
};

// ---------------------------------------------------------------
// Deterministic self-scheduling workload
// ---------------------------------------------------------------

constexpr Tick harness_lookahead = 100;

/**
 * A pure function of (seed, depth): every event logs itself, then
 * schedules a few children. Children on the same home hint may use
 * arbitrary (even zero) delays; children on another hint always use
 * delays >= harness_lookahead, mirroring the physical property the
 * real shard cut gets from CXL link latency. Identical call
 * sequences on any queue, so any divergence is the queue's fault.
 */
struct SelfSchedulingWorkload
{
    EventQueue &eq;
    Recorder &rec;
    unsigned num_hints;

    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return x;
    }

    void
    event(std::uint64_t seed, unsigned depth, std::uint32_t hint)
    {
        rec.record(seed, eq.now());
        if (depth == 0)
            return;
        const unsigned kids = 1 + unsigned(mix(seed) % 3);
        for (unsigned i = 0; i < kids; ++i) {
            const std::uint64_t s = mix(seed + 0x9e37 * (i + 1));
            const bool cross = (s >> 8) % 3 == 0;
            std::uint32_t child_hint = hint;
            Tick delay = s % 40; // same-hint: small, often zero
            EventCat cat = EventCat::Other;
            if (cross) {
                child_hint = std::uint32_t((s >> 16) % num_hints);
                delay = harness_lookahead + s % 400;
                if ((s >> 24) % 7 == 0)
                    cat = EventCat::Sampler; // barrier-lane traffic
            }
            eq.scheduleIn(
                delay,
                [this, s, depth, child_hint] {
                    event(s, depth - 1, child_hint);
                },
                cat, child_hint);
        }
        // Occasionally schedule-then-cancel to exercise lazy removal.
        if (mix(seed ^ 0xabcd) % 5 == 0) {
            const EventId id = eq.scheduleIn(
                3, [this] { rec.record(0xdead, eq.now()); },
                EventCat::Other, hint);
            eq.cancel(id);
        }
    }

    void
    seedRoots(std::uint64_t seed)
    {
        // Root context: any delay/hint combination is legal because
        // no window is open during setup.
        for (unsigned i = 0; i < 6; ++i) {
            const std::uint64_t s = mix(seed + i);
            const std::uint32_t hint = std::uint32_t(s % num_hints);
            eq.schedule(
                s % 50, [this, s, hint] { event(s, 4, hint); },
                EventCat::Other, hint);
        }
    }
};

struct QueueRun
{
    std::vector<Recorder::Item> log;
    Tick final_now;
    std::uint64_t executed;
};

QueueRun
runSerial(std::uint64_t seed, unsigned num_hints)
{
    EventQueue eq;
    Recorder rec;
    SelfSchedulingWorkload w{eq, rec, num_hints};
    w.seedRoots(seed);
    const Tick end = eq.run();
    return {std::move(rec.log), end, eq.eventsExecuted()};
}

QueueRun
runSharded(std::uint64_t seed, unsigned num_hints, unsigned lanes,
           Tick lookahead, bool inline_windows, bool via_run_one)
{
    ShardedEventQueue::Params p;
    p.lanes = lanes;
    p.lookahead = lookahead;
    p.inline_windows = inline_windows;
    ShardedEventQueue eq(p);

    ShardPlan plan;
    plan.lanes = lanes;
    for (unsigned h = 0; h < num_hints; ++h)
        plan.home_lane[h] = h % lanes;
    eq.setPlan(plan);

    Recorder rec;
    eq.setMergeHook(&rec);
    SelfSchedulingWorkload w{eq, rec, num_hints};
    w.seedRoots(seed);
    Tick end = 0;
    if (via_run_one) {
        while (eq.runOne())
            ;
        end = eq.now();
    } else {
        end = eq.run();
    }
    EXPECT_EQ(eq.pending(), 0u);
    return {std::move(rec.log), end, eq.eventsExecuted()};
}

void
expectSameRun(const QueueRun &serial, const QueueRun &got,
              const std::string &what)
{
    ASSERT_EQ(serial.log.size(), got.log.size()) << what;
    for (std::size_t i = 0; i < serial.log.size(); ++i) {
        ASSERT_TRUE(serial.log[i] == got.log[i])
            << what << ": diverged at event " << i << ": serial=("
            << serial.log[i].label << ", t=" << serial.log[i].when
            << ") got=(" << got.log[i].label << ", t="
            << got.log[i].when << ")";
    }
    EXPECT_EQ(serial.final_now, got.final_now) << what;
    EXPECT_EQ(serial.executed, got.executed) << what;
}

// ---------------------------------------------------------------
// Queue-level differential tests
// ---------------------------------------------------------------

TEST(ParallelDesQueue, MatchesSerialAcrossLaneCounts)
{
    const unsigned num_hints = 8;
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        const QueueRun serial = runSerial(seed, num_hints);
        ASSERT_GT(serial.log.size(), 100u)
            << "workload too small to be interesting";
        for (unsigned lanes : {1u, 2u, 4u, 8u}) {
            for (bool inl : {true, false}) {
                const QueueRun got =
                    runSharded(seed, num_hints, lanes,
                               harness_lookahead, inl, false);
                expectSameRun(serial, got,
                              "seed " + std::to_string(seed) +
                                  " lanes " + std::to_string(lanes) +
                                  (inl ? " inline" : " pooled"));
            }
        }
    }
}

TEST(ParallelDesQueue, MatchesSerialWithShorterLookahead)
{
    // Any lookahead <= the workload's real cross-hint latency is
    // conservative and must give identical results, just with more
    // windows.
    const unsigned num_hints = 5;
    const QueueRun serial = runSerial(99, num_hints);
    for (Tick la : {Tick(1), Tick(37), Tick(100)}) {
        const QueueRun got =
            runSharded(99, num_hints, 4, la, false, false);
        expectSameRun(serial, got,
                      "lookahead " + std::to_string(la));
    }
}

TEST(ParallelDesQueue, RunOnePathIsCanonical)
{
    // The serial-canonical runOne() escape hatch (used by driver
    // predicate loops near their stop condition) must produce the
    // same total order as windowed execution.
    const unsigned num_hints = 4;
    const QueueRun serial = runSerial(1234, num_hints);
    const QueueRun got =
        runSharded(1234, num_hints, 4, harness_lookahead, false, true);
    expectSameRun(serial, got, "runOne-only");
}

TEST(ParallelDesQueue, MixedWindowAndRunOne)
{
    // Alternate windows and single steps mid-run; the switch points
    // must not affect the canonical order.
    const unsigned num_hints = 4;
    const QueueRun serial = runSerial(555, num_hints);

    ShardedEventQueue::Params p;
    p.lanes = 4;
    p.lookahead = harness_lookahead;
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 4;
    for (unsigned h = 0; h < num_hints; ++h)
        plan.home_lane[h] = h % 4;
    eq.setPlan(plan);
    Recorder rec;
    eq.setMergeHook(&rec);
    SelfSchedulingWorkload w{eq, rec, num_hints};
    w.seedRoots(555);
    unsigned flip = 0;
    for (;;) {
        bool progressed;
        if (flip++ % 3 == 0)
            progressed = eq.runOne();
        else
            progressed = eq.runWindow();
        if (!progressed)
            break;
    }
    EXPECT_EQ(eq.pending(), 0u);
    expectSameRun(serial,
                  {std::move(rec.log), eq.now(), eq.eventsExecuted()},
                  "mixed stepping");
}

TEST(ParallelDesQueue, MailboxesActuallyUsed)
{
    ShardedEventQueue::Params p;
    p.lanes = 4;
    p.lookahead = harness_lookahead;
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 4;
    for (unsigned h = 0; h < 8; ++h)
        plan.home_lane[h] = h % 4;
    eq.setPlan(plan);
    Recorder rec;
    eq.setMergeHook(&rec);
    SelfSchedulingWorkload w{eq, rec, 8};
    w.seedRoots(7);
    eq.run();
    EXPECT_GT(eq.windowsRun(), 0u);
    EXPECT_GT(eq.mailboxTransfers(), 0u)
        << "workload never exercised the cross-shard path";
}

TEST(ParallelDesQueue, SamplerEventsRunOnBarrierLane)
{
    ShardedEventQueue::Params p;
    p.lanes = 2;
    p.lookahead = 50;
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 2;
    plan.home_lane[1] = 1;
    eq.setPlan(plan);

    // A sampler event between two lane events: it must observe both
    // t=10 events' effects (it runs at a quiesced barrier) and log
    // in canonical tick order.
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); }, EventCat::Other, 0);
    eq.schedule(10, [&] { order.push_back(2); }, EventCat::Other, 1);
    eq.schedule(20, [&] { order.push_back(3); }, EventCat::Sampler, 0);
    eq.schedule(30, [&] { order.push_back(4); }, EventCat::Other, 1);
    while (eq.runWindow())
        ;
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_EQ(order[3], 4);
}

TEST(ParallelDesQueue, LaneGuardCountsCrossLaneTouches)
{
    ShardedEventQueue::Params p;
    p.lanes = 2;
    p.lookahead = 50;
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 2;
    plan.home_lane[1] = 1;
    eq.setPlan(plan);
    eq.setLaneGuard(ShardedEventQueue::LaneGuard::Count);

    // Ambient (driver) context is exempt: no window is open, so any
    // thread may touch any component.
    eq.checkLaneTouch(1, "ambient touch");
    EXPECT_EQ(eq.laneGuardViolations(), 0u);

    // In-window: an event touching its own lane's state is clean, an
    // event touching the other lane's state is a counted violation.
    eq.schedule(
        10, [&] { eq.checkLaneTouch(0, "own-lane touch"); },
        EventCat::Other, 0);
    eq.schedule(
        10, [&] { eq.checkLaneTouch(0, "foreign-lane touch"); },
        EventCat::Other, 1);
    eq.run();
    EXPECT_EQ(eq.laneGuardViolations(), 1u);
    EXPECT_EQ(eq.laneGuard(),
              ShardedEventQueue::LaneGuard::Count);
}

TEST(ParallelDesQueue, LaneGuardExemptsBarrierEvents)
{
    ShardedEventQueue::Params p;
    p.lanes = 2;
    p.lookahead = 50;
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 2;
    plan.home_lane[1] = 1;
    eq.setPlan(plan);
    eq.setLaneGuard(ShardedEventQueue::LaneGuard::Count);

    // Sampler events run at a quiesced barrier: reading any lane's
    // components there is the sampler's whole job.
    eq.schedule(
        10,
        [&] {
            eq.checkLaneTouch(0, "sampler sweep");
            eq.checkLaneTouch(1, "sampler sweep");
        },
        EventCat::Sampler, 0);
    eq.run();
    EXPECT_EQ(eq.laneGuardViolations(), 0u);
}

TEST(ParallelDesQueue, CancelAcrossWindows)
{
    ShardedEventQueue::Params p;
    p.lanes = 2;
    p.lookahead = 100;
    ShardedEventQueue eq(p);
    ShardPlan plan;
    plan.lanes = 2;
    plan.home_lane[1] = 1;
    eq.setPlan(plan);

    bool fired = false;
    const EventId id = eq.schedule(
        500, [&] { fired = true; }, EventCat::Other, 1);
    EXPECT_TRUE(eq.scheduled(id));
    eq.schedule(10, [&] {}, EventCat::Other, 0);
    eq.runWindow();
    // Cancel from the (quiesced) driver context between windows.
    eq.cancel(id);
    EXPECT_FALSE(eq.scheduled(id));
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.pending(), 0u);
}

// ---------------------------------------------------------------
// Satellite: lookahead violations die loudly (BEACON_CHECK)
// ---------------------------------------------------------------

using ParallelDesDeathTest = ::testing::Test;

TEST(ParallelDesDeathTest, SameTickCrossShardSendDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventQueue::Params p;
            p.lanes = 2;
            p.lookahead = 100;
            p.inline_windows = true; // single-threaded death
            ShardedEventQueue eq(p);
            ShardPlan plan;
            plan.lanes = 2;
            plan.home_lane[1] = 1;
            eq.setPlan(plan);
            // Lane-0 event sends to lane 1 at its own tick: a
            // same-tick cross-shard send inside the window.
            eq.schedule(
                10,
                [&] {
                    eq.scheduleIn(0, [] {}, EventCat::Other, 1);
                },
                EventCat::Other, 0);
            eq.schedule(10, [] {}, EventCat::Other, 1);
            eq.runWindow();
        },
        "cross-shard send violates conservative lookahead");
}

TEST(ParallelDesDeathTest, SubLookaheadCrossShardSendDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventQueue::Params p;
            p.lanes = 2;
            p.lookahead = 100;
            p.inline_windows = true;
            ShardedEventQueue eq(p);
            ShardPlan plan;
            plan.lanes = 2;
            plan.home_lane[1] = 1;
            eq.setPlan(plan);
            // Delay 50 < lookahead 100: still inside the window.
            eq.schedule(
                10,
                [&] {
                    eq.scheduleIn(50, [] {}, EventCat::Other, 1);
                },
                EventCat::Other, 0);
            eq.schedule(10, [] {}, EventCat::Other, 1);
            eq.runWindow();
        },
        "cross-shard send violates conservative lookahead");
}

TEST(ParallelDesDeathTest, CrossShardCancelDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventQueue::Params p;
            p.lanes = 2;
            p.lookahead = 100;
            p.inline_windows = true;
            ShardedEventQueue eq(p);
            ShardPlan plan;
            plan.lanes = 2;
            plan.home_lane[1] = 1;
            eq.setPlan(plan);
            const EventId victim = eq.schedule(
                1000, [] {}, EventCat::Other, 1);
            eq.schedule(
                10, [&] { eq.cancel(victim); }, EventCat::Other, 0);
            eq.schedule(10, [] {}, EventCat::Other, 1);
            eq.runWindow();
        },
        "cross-shard cancel");
}

TEST(ParallelDesDeathTest, LaneGuardTrapDiesOnCrossLaneTouch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedEventQueue::Params p;
            p.lanes = 2;
            p.lookahead = 100;
            p.inline_windows = true; // single-threaded death
            ShardedEventQueue eq(p);
            ShardPlan plan;
            plan.lanes = 2;
            plan.home_lane[1] = 1;
            eq.setPlan(plan);
            eq.setLaneGuard(ShardedEventQueue::LaneGuard::Trap);
            // A lane-1 event touching lane-0-homed state without
            // going through the mailbox: the dynamic twin of the
            // static lane-violation finding.
            eq.schedule(
                10,
                [&] { eq.checkLaneTouch(0, "foreign touch"); },
                EventCat::Other, 1);
            eq.schedule(10, [] {}, EventCat::Other, 0);
            eq.runWindow();
        },
        "lane guard");
}

// ---------------------------------------------------------------
// Layer 2: whole-system differential (stats registry + final tick)
// ---------------------------------------------------------------

genomics::DatasetPreset
smallSeedingPreset()
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[3];
    preset.genome.length = 1 << 13;
    preset.reads.num_reads = 16;
    return preset;
}

/** Everything a run externalises: the full registry dump plus the
 *  final simulated tick. Bit-identity means these strings match. */
struct SystemObservation
{
    std::string stats;
    Tick ticks = 0;
};

DesParams
shardedDes(unsigned shards)
{
    DesParams des;
    des.force_sharded = true;
    des.shards = shards;
    return des;
}

SystemObservation
observeWorkloadRun(SystemParams params, const beacon::Workload &wl,
                   const DesParams &des)
{
    params.des = des;
    // Deterministic eligibility regardless of ambient BEACON_*
    // toggles (the fuzz/obs suites cover checker interactions).
    params.checkers = CheckerConfig{};
    NdpSystem system(params, wl);
    const auto result = system.run();
    std::ostringstream os;
    system.stats().dump(os);
    return {os.str(), result.ticks};
}

void
expectSameObservation(const SystemObservation &serial,
                      const SystemObservation &got,
                      const std::string &what)
{
    EXPECT_EQ(serial.ticks, got.ticks) << what;
    ASSERT_EQ(serial.stats, got.stats)
        << what << ": stat registry dump diverged";
}

TEST(ParallelDesSystem, WorkloadRunsMatchSerialAcrossShardCounts)
{
    const FmSeedingWorkload seeding(smallSeedingPreset());

    genomics::DatasetPreset kmer_preset =
        genomics::kmerCountingPreset();
    kmer_preset.genome.length = 1 << 13;
    const KmerCountingWorkload kmer(kmer_preset, 21, 3, 1u << 12, 16);

    const struct
    {
        const char *label;
        SystemParams params;
        const beacon::Workload *workload;
    } cases[] = {
        {"beacon-d/fm-seeding", SystemParams::beaconD(), &seeding},
        {"cxl-vanilla-d/fm-seeding", SystemParams::cxlVanillaD(),
         &seeding},
        {"beacon-s/kmer-counting", SystemParams::beaconS(), &kmer},
    };

    for (const auto &c : cases) {
        const SystemObservation serial =
            observeWorkloadRun(c.params, *c.workload, DesParams{});
        for (unsigned shards : {1u, 2u, 4u, 8u}) {
            const SystemObservation got = observeWorkloadRun(
                c.params, *c.workload, shardedDes(shards));
            expectSameObservation(serial, got,
                                  std::string(c.label) + " shards " +
                                      std::to_string(shards));
        }
    }
}

TEST(ParallelDesSystem, ShardedEngineActuallyEngages)
{
    // A machine narrow enough that tasks outnumber in-flight slots,
    // so the drainUntil() guard admits parallel windows for most of
    // the run rather than degrading to the serial-canonical path.
    SystemParams params = SystemParams::beaconD();
    params.max_inflight_tasks = 2;
    params.checkers = CheckerConfig{};
    params.des = shardedDes(4);
    const FmSeedingWorkload workload(smallSeedingPreset());

    SystemParams serial_params = params;
    serial_params.des = DesParams{};

    NdpSystem serial_sys(serial_params, workload);
    const auto serial_result = serial_sys.run();
    std::ostringstream serial_os;
    serial_sys.stats().dump(serial_os);

    NdpSystem system(params, workload);
    ASSERT_NE(system.shardedQueue(), nullptr);
    EXPECT_GT(system.shardedQueue()->lanes(), 1u);
    EXPECT_GT(system.shardedQueue()->lookahead(), Tick(0));
    const auto result = system.run();
    std::ostringstream os;
    system.stats().dump(os);

    expectSameObservation({serial_os.str(), serial_result.ticks},
                          {os.str(), result.ticks},
                          "narrow beacon-d");
    EXPECT_GT(system.shardedQueue()->windowsRun(), 0u)
        << "guarded drain loop never opened a parallel window";
    EXPECT_GT(system.shardedQueue()->mailboxTransfers(), 0u)
        << "no cross-shard traffic crossed a window boundary";
}

TEST(ParallelDesSystem, LaneGuardCleanOnFullWorkload)
{
    // The re-homed system must have zero cross-lane touches at the
    // guarded call sites (DramController::enqueue,
    // NdpModule::submit, AtomicEngine::perform) — Trap mode turns
    // any regression into an immediate BEACON_CHECK failure instead
    // of a silent race.
    SystemParams params = SystemParams::beaconD();
    params.max_inflight_tasks = 2;
    params.checkers = CheckerConfig{};
    params.des = shardedDes(4);
    const FmSeedingWorkload workload(smallSeedingPreset());

    NdpSystem system(params, workload);
    ASSERT_NE(system.shardedQueue(), nullptr);
    system.shardedQueue()->setLaneGuard(
        ShardedEventQueue::LaneGuard::Trap);
    system.run();
    EXPECT_EQ(system.shardedQueue()->laneGuardViolations(), 0u);
    EXPECT_GT(system.shardedQueue()->windowsRun(), 0u)
        << "guard proved nothing: no parallel window opened";
}

TEST(ParallelDesSystem, IneligibleConfigsCollapseToSingleLane)
{
    const FmSeedingWorkload workload(smallSeedingPreset());

    // CXL link checker subscribes to per-hop callbacks on lane-0
    // state: sharding must disable itself, not race.
    SystemParams checked = SystemParams::beaconD();
    checked.checkers = CheckerConfig{};
    checked.checkers.cxl_link = true;
    SystemParams checked_sharded = checked;
    checked_sharded.des = shardedDes(4);

    {
        NdpSystem serial_sys(checked, workload);
        const auto serial_result = serial_sys.run();
        std::ostringstream serial_os;
        serial_sys.stats().dump(serial_os);

        NdpSystem system(checked_sharded, workload);
        ASSERT_NE(system.shardedQueue(), nullptr);
        EXPECT_EQ(system.shardedQueue()->lanes(), 1u)
            << "checker config must collapse to one lane";
        const auto result = system.run();
        std::ostringstream os;
        system.stats().dump(os);
        expectSameObservation({serial_os.str(), serial_result.ticks},
                              {os.str(), result.ticks},
                              "cxl-link checker");
    }

    // DDR fabric (MEDAL) has no pool links to derive lookahead from.
    SystemParams medal = SystemParams::medal();
    medal.checkers = CheckerConfig{};
    medal.des = shardedDes(4);
    NdpSystem ddr_system(medal, workload);
    ASSERT_NE(ddr_system.shardedQueue(), nullptr);
    EXPECT_EQ(ddr_system.shardedQueue()->lanes(), 1u)
        << "ddr fabric must collapse to one lane";
}

// ---------------------------------------------------------------
// Layer 2: multi-tenant service runs (the qos-small shape)
// ---------------------------------------------------------------

struct ServiceObservation
{
    std::string stats;
    Tick ticks = 0;
    std::vector<std::uint64_t> jobs_completed;
    std::vector<std::uint64_t> jobs_rejected;
};

ServiceObservation
observeServiceRun(SchedulerKind policy, const beacon::Workload &bulk,
                  const beacon::Workload &small,
                  const DesParams &des)
{
    SystemParams params = SystemParams::beaconD();
    params.name = "BEACON-D (service)";
    params.pes_per_module = 4;
    params.max_inflight_tasks = 2;
    params.checkers = CheckerConfig{};
    params.des = des;
    NdpSystem system(params);

    OrchestratorParams op;
    op.scheduler = policy;
    op.seed = 0xBEACC0DEull;
    PoolOrchestrator orchestrator(system, op);

    TenantSpec bulk_spec;
    bulk_spec.name = "bulk";
    bulk_spec.workload = &bulk;
    bulk_spec.num_jobs = 6;
    bulk_spec.tasks_per_job = 4;
    bulk_spec.scratch_bytes_per_job = Bytes{1 << 20};
    bulk_spec.arrival.concurrency = 3;
    EXPECT_NE(orchestrator.addTenant(bulk_spec), untenanted_id)
        << orchestrator.lastError();

    TenantSpec small_spec;
    small_spec.name = "small";
    small_spec.workload = &small;
    small_spec.num_jobs = 4;
    small_spec.tasks_per_job = 2;
    small_spec.priority = 1;
    small_spec.weight = 4.0;
    EXPECT_NE(orchestrator.addTenant(small_spec), untenanted_id)
        << orchestrator.lastError();

    const ServiceReport report = orchestrator.run();
    ServiceObservation out;
    out.ticks = report.machine.ticks;
    for (const TenantReport &tenant : report.tenants) {
        out.jobs_completed.push_back(tenant.jobs_completed);
        out.jobs_rejected.push_back(tenant.jobs_rejected);
    }
    std::ostringstream os;
    system.stats().dump(os);
    out.stats = os.str();
    return out;
}

TEST(ParallelDesSystem, ServiceRunsMatchSerialAcrossShardCounts)
{
    genomics::DatasetPreset bulk_preset = smallSeedingPreset();
    const FmSeedingWorkload bulk(bulk_preset);
    genomics::DatasetPreset small_preset = smallSeedingPreset();
    small_preset.genome.length = 1 << 12;
    small_preset.reads.num_reads = 8;
    const HashSeedingWorkload small(small_preset);

    for (SchedulerKind policy :
         {SchedulerKind::Fcfs, SchedulerKind::Priority,
          SchedulerKind::FairShare}) {
        const ServiceObservation serial =
            observeServiceRun(policy, bulk, small, DesParams{});
        for (unsigned shards : {1u, 4u}) {
            const ServiceObservation got = observeServiceRun(
                policy, bulk, small, shardedDes(shards));
            const std::string what =
                std::string(schedulerName(policy)) + " shards " +
                std::to_string(shards);
            EXPECT_EQ(serial.jobs_completed, got.jobs_completed)
                << what;
            EXPECT_EQ(serial.jobs_rejected, got.jobs_rejected)
                << what;
            expectSameObservation({serial.stats, serial.ticks},
                                  {got.stats, got.ticks}, what);
        }
    }
}

TEST(ParallelDesSystem, ServiceRunEngagesParallelPath)
{
    genomics::DatasetPreset preset = smallSeedingPreset();
    const FmSeedingWorkload bulk(preset);
    genomics::DatasetPreset small_preset = smallSeedingPreset();
    small_preset.genome.length = 1 << 12;
    small_preset.reads.num_reads = 8;
    const HashSeedingWorkload small(small_preset);

    SystemParams params = SystemParams::beaconD();
    params.name = "BEACON-D (service)";
    params.pes_per_module = 4;
    params.max_inflight_tasks = 2;
    params.checkers = CheckerConfig{};
    params.des = shardedDes(4);
    NdpSystem system(params);
    OrchestratorParams op;
    op.scheduler = SchedulerKind::Fcfs;
    op.seed = 0xBEACC0DEull;
    PoolOrchestrator orchestrator(system, op);
    TenantSpec bulk_spec;
    bulk_spec.name = "bulk";
    bulk_spec.workload = &bulk;
    bulk_spec.num_jobs = 6;
    bulk_spec.tasks_per_job = 4;
    bulk_spec.scratch_bytes_per_job = Bytes{1 << 20};
    bulk_spec.arrival.concurrency = 3;
    ASSERT_NE(orchestrator.addTenant(bulk_spec), untenanted_id);
    TenantSpec small_spec;
    small_spec.name = "small";
    small_spec.workload = &small;
    small_spec.num_jobs = 4;
    small_spec.tasks_per_job = 2;
    small_spec.priority = 1;
    small_spec.weight = 4.0;
    ASSERT_NE(orchestrator.addTenant(small_spec), untenanted_id);
    orchestrator.run();
    ASSERT_NE(system.shardedQueue(), nullptr);
    EXPECT_GT(system.shardedQueue()->windowsRun(), 0u)
        << "service drive loop never opened a parallel window";
}

} // namespace
} // namespace beacon
