/**
 * @file
 * Golden-stat determinism gate: small fixed-seed ladders in the
 * shape of Figs. 12/14/15 are swept through SweepRunner and the
 * resulting beacon-bench-2 JSON is compared against checked-in
 * goldens (the .json files under tests/golden).
 *
 * Comparison rules live in tests/golden_compare.hh (exact strings,
 * 1e-9 relative tolerance on non-integer numerics).
 *
 * Regenerate the goldens after an intentional model change with:
 *     BEACON_UPDATE_GOLDEN=1 ./tests/test_golden_stats
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "accel/experiment.hh"
#include "accel/sweep.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "rack/system.hh"
#include "service/orchestrator.hh"

#include "golden_compare.hh"

namespace beacon
{
namespace
{

constexpr std::size_t golden_tasks = 8;

void
checkAgainstGolden(const SweepReport &report,
                   const std::string &file)
{
    golden::checkGoldenString(
        sweepJsonString(report, /*include_runtime=*/false), file);
}

// ---------------------------------------------------------------
// Small fixed ladders (the shape of Figs. 12/14/15)
// ---------------------------------------------------------------

genomics::DatasetPreset
smallSeedingPreset()
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[3];
    preset.genome.length = 1 << 13;
    preset.reads.num_reads = 16;
    return preset;
}

/**
 * Enqueue the rungs of one figure panel: every ladder step, the
 * hardware baseline, and the idealized final design.
 */
void
enqueueLadder(SweepRunner &runner, const std::string &dataset,
              const Workload &workload,
              const SystemParams &hw_baseline,
              const std::vector<LadderStep> &ladder)
{
    for (const LadderStep &step : ladder)
        runner.enqueueRun({dataset, step.label}, step.params,
                          workload, golden_tasks);
    runner.enqueueRun({dataset, hw_baseline.name}, hw_baseline,
                      workload, golden_tasks);
    runner.enqueueRun({dataset, ladder.back().params.name + "-ideal"},
                      ladder.back().params.idealized(), workload,
                      golden_tasks);
}

SweepReport
reportFor(const char *harness, SweepRunner &runner)
{
    SweepReport report;
    report.harness = harness;
    report.jobs = runner.jobs();
    report.add(runner.run());
    return report;
}

TEST(GoldenStatsTest, Fig12FmSeedingSmall)
{
    const FmSeedingWorkload workload(smallSeedingPreset());
    SweepRunner runner;
    enqueueLadder(runner, "small", workload, SystemParams::medal(),
                  beaconDLadder(/*with_coalescing=*/true));
    enqueueLadder(runner, "small", workload, SystemParams::medal(),
                  beaconSLadder(/*with_single_pass=*/false));
    checkAgainstGolden(reportFor("fig12_fm_seeding_small", runner),
                       "fig12_small.json");
}

TEST(GoldenStatsTest, Fig14HashSeedingSmall)
{
    const HashSeedingWorkload workload(smallSeedingPreset());
    SweepRunner runner;
    enqueueLadder(runner, "small", workload, SystemParams::medal(),
                  beaconDLadder(/*with_coalescing=*/false));
    enqueueLadder(runner, "small", workload, SystemParams::medal(),
                  beaconSLadder(/*with_single_pass=*/false));
    checkAgainstGolden(reportFor("fig14_hash_seeding_small", runner),
                       "fig14_small.json");
}

TEST(GoldenStatsTest, Fig15KmerCountingSmall)
{
    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = 1 << 13;
    const KmerCountingWorkload workload(preset, 21, 3, 1u << 12, 16);
    SweepRunner runner;
    enqueueLadder(runner, "small", workload, SystemParams::nest(),
                  beaconDLadder(/*with_coalescing=*/false));
    enqueueLadder(runner, "small", workload, SystemParams::nest(),
                  beaconSLadder(/*with_single_pass=*/true));
    checkAgainstGolden(reportFor("fig15_kmer_counting_small", runner),
                       "fig15_small.json");
}

// ---------------------------------------------------------------
// Multi-tenant QoS ladder (the shape of bench/multi_tenant_qos)
// ---------------------------------------------------------------

TEST(GoldenStatsTest, MultiTenantQosSmall)
{
    genomics::DatasetPreset bulk_preset = smallSeedingPreset();
    const FmSeedingWorkload bulk(bulk_preset);
    genomics::DatasetPreset small_preset = smallSeedingPreset();
    small_preset.genome.length = 1 << 12;
    small_preset.reads.num_reads = 8;
    const HashSeedingWorkload small(small_preset);

    SweepRunner runner;
    for (SchedulerKind policy :
         {SchedulerKind::Fcfs, SchedulerKind::Priority,
          SchedulerKind::FairShare}) {
        const SweepKey key{"small", schedulerName(policy)};
        runner.enqueue(key, [&, key, policy](RunContext &ctx) {
            SystemParams params = SystemParams::beaconD();
            params.name = "BEACON-D (service)";
            params.pes_per_module = 4;
            params.max_inflight_tasks = 2;
            NdpSystem system(params);

            OrchestratorParams op;
            op.scheduler = policy;
            op.seed = 0xBEACC0DEull ^ ctx.index;
            PoolOrchestrator orchestrator(system, op);

            TenantSpec bulk_spec;
            bulk_spec.name = "bulk";
            bulk_spec.workload = &bulk;
            bulk_spec.num_jobs = 6;
            bulk_spec.tasks_per_job = 4;
            bulk_spec.scratch_bytes_per_job = Bytes{1 << 20};
            bulk_spec.arrival.concurrency = 3;
            EXPECT_NE(orchestrator.addTenant(bulk_spec),
                      untenanted_id)
                << orchestrator.lastError();

            TenantSpec small_spec;
            small_spec.name = "small";
            small_spec.workload = &small;
            small_spec.num_jobs = 4;
            small_spec.tasks_per_job = 2;
            small_spec.priority = 1;
            small_spec.weight = 4.0;
            EXPECT_NE(orchestrator.addTenant(small_spec),
                      untenanted_id)
                << orchestrator.lastError();

            const ServiceReport report = orchestrator.run();
            SweepOutcome out;
            out.key = key;
            out.result = report.machine;
            for (const TenantReport &tenant : report.tenants) {
                const std::string tag =
                    "tenant" +
                    std::to_string(tenant.tenant.value());
                out.stats.emplace_back(tag + ".p50_ms",
                                       tenant.p50_latency_ms);
                out.stats.emplace_back(tag + ".p99_ms",
                                       tenant.p99_latency_ms);
                out.stats.emplace_back(tag + ".mean_queue_ms",
                                       tenant.mean_queue_ms);
                out.stats.emplace_back(tag + ".jobs_per_second",
                                       tenant.jobs_per_second);
                out.stats.emplace_back(
                    tag + ".jobs_completed",
                    double(tenant.jobs_completed));
                out.stats.emplace_back(tag + ".energy_pj",
                                       tenant.energy_pj.value());
            }
            return out;
        });
    }
    checkAgainstGolden(reportFor("multi_tenant_qos_small", runner),
                       "qos_small.json");
}

// ---------------------------------------------------------------
// Rack-scale sweep (the shape of bench/rack_scale)
// ---------------------------------------------------------------

TEST(GoldenStatsTest, RackScaleSmall)
{
    genomics::DatasetPreset preset = smallSeedingPreset();
    const HashSeedingWorkload workload(preset);

    SweepRunner runner;
    struct RackPoint
    {
        const char *label;
        unsigned hosts;
        bool hotplug;
    };
    for (const RackPoint point : {RackPoint{"h1", 1, false},
                                  RackPoint{"h2", 2, false},
                                  RackPoint{"hotplug", 2, true}}) {
        const SweepKey key{"small", point.label};
        runner.enqueue(key, [&, key, point](RunContext &) {
            rack::RackParams params;
            params.hosts = point.hosts;
            params.interleave_ways = 2;
            params.hdm_bytes_per_host = Bytes{1u << 20};
            params.segment_write_every = 2;
            rack::SegmentParams seg;
            seg.name = "reference";
            seg.bytes = Bytes{1u << 16};
            seg.owner_dimm = 8;
            params.segments.push_back(seg);

            rack::RackSystem rack(params);
            for (unsigned h = 0; h < point.hosts; ++h) {
                TenantSpec spec;
                spec.name = "host" + std::to_string(h) + ".t0";
                spec.workload = &workload;
                spec.num_jobs = 3;
                spec.tasks_per_job = 2;
                spec.arrival.concurrency = 2;
                EXPECT_NE(rack.addTenant(h, spec), untenanted_id);
            }
            if (point.hotplug) {
                rack.scheduleHotRemove(Tick{400000}, 9);
                rack.scheduleHotAdd(Tick{1200000}, 9);
            }
            const rack::RackReport report = rack.run();

            SweepOutcome out;
            out.key = key;
            out.result = report.machine;
            out.stats.emplace_back("pool_utilization",
                                   report.pool_utilization);
            out.stats.emplace_back("cache_hits",
                                   double(report.cache_hits));
            out.stats.emplace_back("cache_misses",
                                   double(report.cache_misses));
            out.stats.emplace_back("bi_flits",
                                   double(report.bi_flits));
            out.stats.emplace_back("invalidations",
                                   double(report.invalidations));
            out.stats.emplace_back(
                "ingress_bytes",
                double(report.ingress_bytes.value()));
            out.stats.emplace_back(
                "migrated_bytes",
                double(report.migrated_bytes.value()));
            for (std::size_t h = 0; h < report.hosts.size(); ++h) {
                const TenantReport &tenant =
                    report.hosts[h].tenants.at(0);
                const std::string tag =
                    "host" + std::to_string(h);
                out.stats.emplace_back(tag + ".p99_ms",
                                       tenant.p99_latency_ms);
                out.stats.emplace_back(
                    tag + ".jobs_completed",
                    double(tenant.jobs_completed));
            }
            return out;
        });
    }
    checkAgainstGolden(reportFor("rack_scale_small", runner),
                       "rack_small.json");
}

} // namespace
} // namespace beacon
