// Expected-failure: a raw integer must not implicitly become a
// Bytes quantity (construction is explicit).

#include "common/units.hh"

namespace
{

beacon::Bytes
payload()
{
    return 64; // must fail: explicit Bytes{64} required
}

} // namespace

int
main()
{
    return int(payload().value());
}
