// Expected-failure: adding Cycles to Bytes is a dimension error and
// must not compile (ctest runs this under WILL_FAIL).

#include "common/units.hh"

int
main()
{
    const auto broken = beacon::Cycles{16} + beacon::Bytes{64};
    return int(broken.value());
}
