// Positive control for the expected-failure harness: this file USES
// the strong unit types correctly and must keep compiling. If it
// ever breaks, the WILL_FAIL tests below it prove nothing (a harness
// that fails for the wrong reason — missing header, bad flag — would
// still "pass").

#include "common/units.hh"

namespace
{

beacon::Bytes
totalTraffic(beacon::Bytes a, beacon::Bytes b)
{
    return a + b;
}

beacon::Tick
latency(beacon::Cycles compute, beacon::Tick period_ps,
        beacon::Bytes payload)
{
    return beacon::cyclesToTicks(compute, period_ps) +
           beacon::transferTime(payload, 64.0);
}

} // namespace

int
main()
{
    const beacon::Bytes total =
        totalTraffic(beacon::Bytes{32}, beacon::Bytes{32});
    return latency(beacon::Cycles{16}, 1250, total) > 0 ? 0 : 1;
}
