// Expected-failure: ordering comparisons across dimensions are
// meaningless and must not compile.

#include "common/units.hh"

int
main()
{
    return beacon::Cycles{100} < beacon::Bytes{100} ? 0 : 1;
}
