// Expected-failure: a RowId is not a TenantId; passing one where the
// other is expected must not compile even though both wrap uint32.

#include "common/units.hh"

namespace
{

bool
isUntenanted(beacon::TenantId tenant)
{
    return tenant == beacon::untenanted_id;
}

} // namespace

int
main()
{
    const beacon::RowId row{7};
    return isUntenanted(row) ? 0 : 1;
}
