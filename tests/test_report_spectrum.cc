/**
 * @file
 * Tests for the run-report writers (JSON / CSV) and the k-mer
 * spectrum analysis.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/report.hh"
#include "genomics/spectrum.hh"

namespace beacon
{
namespace
{

RunResult
sampleResult()
{
    RunResult r;
    r.system = "BEACON-D";
    r.workload = "fm-seeding/Pt";
    r.ticks = 1000;
    r.seconds = 1e-9;
    r.tasks = 42;
    r.tasks_per_second = 4.2e10;
    r.energy.dram_pj = Picojoules{10};
    r.energy.comm_pj = Picojoules{20};
    r.energy.pe_pj = Picojoules{30};
    r.wire_bytes = Bytes{12345};
    r.host_round_trips = 7;
    r.dram_reads = 99;
    r.dram_writes = 11;
    r.chip_accesses = {1.0, 2.0};
    r.chip_access_cov = 0.5;
    return r;
}

TEST(Report, JsonContainsEveryField)
{
    std::ostringstream out;
    writeRunResultJson(out, sampleResult());
    const std::string json = out.str();
    for (const char *needle :
         {"\"system\": \"BEACON-D\"",
          "\"workload\": \"fm-seeding/Pt\"", "\"ticks\": 1000",
          "\"tasks\": 42", "\"total\": 60", "\"wire_bytes\": 12345",
          "\"host_round_trips\": 7", "\"dram_reads\": 99",
          "\"chip_accesses\": [1, 2]"}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
    // Balanced braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Report, JsonArrayOfResults)
{
    std::ostringstream out;
    writeRunResultsJson(out, {sampleResult(), sampleResult()});
    const std::string json = out.str();
    EXPECT_EQ(json.front(), '[');
    // Two results x (result object + nested energy object).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 4);
    EXPECT_NE(json.find("},"), std::string::npos);
}

TEST(Report, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    std::ostringstream out;
    writeRunResultCsv(out, sampleResult());
    const std::string row = out.str();
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(row), commas(runResultCsvHeader()));
    EXPECT_NE(row.find("BEACON-D,fm-seeding/Pt,"),
              std::string::npos);
}

// --- k-mer spectrum ---

TEST(Spectrum, UniformCoverageProducesPeak)
{
    // 10 identical copies of one read: every k-mer has
    // multiplicity 10.
    genomics::DnaSequence read(
        std::string("ACGTTGCAAGGCTTACCGGATGCA"));
    std::vector<genomics::DnaSequence> reads(10, read);
    const auto spectrum =
        genomics::computeKmerSpectrum(reads, 11, 64);
    EXPECT_EQ(spectrum.coveragePeak(), 10u);
    EXPECT_EQ(spectrum.bins[10], spectrum.distinct_kmers);
    EXPECT_DOUBLE_EQ(spectrum.singletonFraction(), 0.0);
    EXPECT_EQ(spectrum.total_kmers,
              10u * (read.size() - 11 + 1));
}

TEST(Spectrum, GenomeSizeEstimateInRightBallpark)
{
    genomics::GenomeParams gp;
    gp.length = 1 << 15;
    gp.repeat_fraction = 0.0;
    const auto genome = genomics::makeGenome(gp);
    genomics::ReadParams rp;
    rp.read_length = 100;
    rp.num_reads = gp.length * 20 / rp.read_length; // 20x coverage
    rp.error_rate = 0.0;
    const auto reads = genomics::makeReads(genome, rp);
    const auto spectrum =
        genomics::computeKmerSpectrum(reads, 21, 64);
    const double estimate =
        double(spectrum.estimatedGenomeSize());
    EXPECT_GT(estimate, 0.5 * double(gp.length));
    EXPECT_LT(estimate, 1.5 * double(gp.length));
}

// Regression for the determinism-unordered-iter audit
// (beacon-lint): the spectrum is accumulated by iterating an
// unordered_map, which visits k-mers in a hash- and
// insertion-history-dependent order. The emitted histogram must not
// depend on that order, so two runs whose maps grew in different
// orders (and therefore iterate differently) must agree bin-level.
TEST(SpectrumDeterminism, InsertionOrderInvariant)
{
    genomics::GenomeParams gp;
    gp.length = 1 << 14;
    const auto genome = genomics::makeGenome(gp);
    genomics::ReadParams rp;
    rp.read_length = 80;
    rp.num_reads = 256;
    const auto reads = genomics::makeReads(genome, rp);

    std::vector<genomics::DnaSequence> reversed(reads.rbegin(),
                                                reads.rend());
    std::vector<genomics::DnaSequence> rotated(
        reads.begin() + reads.size() / 2, reads.end());
    rotated.insert(rotated.end(), reads.begin(),
                   reads.begin() + reads.size() / 2);

    const auto base = genomics::computeKmerSpectrum(reads, 17, 32);
    for (const auto *order : {&reversed, &rotated}) {
        const auto other =
            genomics::computeKmerSpectrum(*order, 17, 32);
        EXPECT_EQ(other.bins, base.bins);
        EXPECT_EQ(other.distinct_kmers, base.distinct_kmers);
        EXPECT_EQ(other.total_kmers, base.total_kmers);
    }
}

TEST(SpectrumDeterminism, RepeatedRunsEmitIdenticalReports)
{
    // Byte-level stability of the emission boundary itself: two
    // independent computations of the same input must serialise to
    // identical JSON (this is what the golden ladders rely on).
    genomics::GenomeParams gp;
    gp.length = 1 << 13;
    const auto genome = genomics::makeGenome(gp);
    genomics::ReadParams rp;
    rp.read_length = 64;
    rp.num_reads = 128;
    const auto reads = genomics::makeReads(genome, rp);

    auto emit = [&] {
        const auto spectrum =
            genomics::computeKmerSpectrum(reads, 15, 16);
        std::ostringstream out;
        out << "{\"distinct\": " << spectrum.distinct_kmers
            << ", \"total\": " << spectrum.total_kmers
            << ", \"bins\": [";
        for (std::size_t i = 0; i < spectrum.bins.size(); ++i)
            out << (i ? "," : "") << spectrum.bins[i];
        out << "]}";
        return out.str();
    };
    EXPECT_EQ(emit(), emit());
}

TEST(Spectrum, ErrorsInflateSingletons)
{
    genomics::GenomeParams gp;
    gp.length = 1 << 14;
    gp.repeat_fraction = 0.0;
    const auto genome = genomics::makeGenome(gp);
    genomics::ReadParams clean;
    clean.read_length = 100;
    clean.num_reads = 2000;
    clean.error_rate = 0.0;
    genomics::ReadParams noisy = clean;
    noisy.error_rate = 0.02;
    const auto s_clean = genomics::computeKmerSpectrum(
        genomics::makeReads(genome, clean), 21, 64);
    const auto s_noisy = genomics::computeKmerSpectrum(
        genomics::makeReads(genome, noisy), 21, 64);
    EXPECT_GT(s_noisy.singletonFraction(),
              2 * s_clean.singletonFraction());
}

TEST(Spectrum, MultiplicitySaturatesAtCap)
{
    genomics::DnaSequence read(std::string("ACGTACGTACGTACGT"));
    std::vector<genomics::DnaSequence> reads(300, read);
    const auto spectrum =
        genomics::computeKmerSpectrum(reads, 11, 16);
    ASSERT_EQ(spectrum.bins.size(), 17u);
    EXPECT_EQ(spectrum.bins[16], spectrum.distinct_kmers);
}

} // namespace
} // namespace beacon
