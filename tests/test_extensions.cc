/**
 * @file
 * Tests for the Section V extension path: the CSR graph substrate,
 * the GraphBfs and DbProbe workloads, and their end-to-end runs on
 * the BEACON systems (PE replacement).
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/experiment.hh"
#include "accel/extension_workloads.hh"
#include "graph/csr.hh"

namespace beacon
{
namespace
{

// --- CSR substrate ---

TEST(CsrGraph, HandBuiltGraphBfs)
{
    // 0 -> 1 -> 2, 0 -> 2, 3 isolated (no out edges, unreachable).
    std::vector<std::uint32_t> offsets = {0, 2, 3, 3, 3};
    std::vector<std::uint32_t> edges = {1, 2, 2};
    graph::CsrGraph g(std::move(offsets), std::move(edges));
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(3), 0u);

    const auto dist = g.bfs(0);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], 1u);
    EXPECT_EQ(dist[2], 1u);
    EXPECT_EQ(dist[3], std::uint32_t(-1));
}

TEST(CsrGraph, GeneratorProducesConnectedRing)
{
    graph::GraphParams params;
    params.num_vertices = 1 << 10;
    params.avg_degree = 4;
    const graph::CsrGraph g = graph::makeGraph(params);
    EXPECT_EQ(g.numVertices(), params.num_vertices);
    EXPECT_GE(g.numEdges(), std::uint64_t(params.num_vertices));
    // The ring backbone reaches every vertex from vertex 0.
    const auto dist = g.bfs(0);
    for (std::uint32_t v = 0; v < g.numVertices(); ++v)
        EXPECT_NE(dist[v], std::uint32_t(-1)) << v;
}

TEST(CsrGraph, HubBiasSkewsDegrees)
{
    graph::GraphParams uniform;
    uniform.num_vertices = 1 << 12;
    uniform.hub_bias = 0.0;
    graph::GraphParams hubby = uniform;
    hubby.hub_bias = 0.9;

    auto max_in_degree = [](const graph::CsrGraph &g) {
        std::vector<std::uint32_t> in(g.numVertices(), 0);
        for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
            for (std::uint32_t i = 0; i < g.degree(v); ++i)
                ++in[g.neighbors(v)[i]];
        }
        std::uint32_t mx = 0;
        for (std::uint32_t d : in)
            mx = std::max(mx, d);
        return mx;
    };
    EXPECT_GT(max_in_degree(graph::makeGraph(hubby)),
              4 * max_in_degree(graph::makeGraph(uniform)));
}

TEST(CsrGraphDeath, MalformedOffsetsPanic)
{
    std::vector<std::uint32_t> offsets = {0, 2, 1};
    std::vector<std::uint32_t> edges = {1};
    EXPECT_DEATH(
        graph::CsrGraph(std::move(offsets), std::move(edges)),
        "non-decreasing");
}

// --- GraphBfs workload ---

TEST(GraphBfsWorkload, ProtocolAlternatesOffsetsAndEdges)
{
    graph::GraphParams params;
    params.num_vertices = 1 << 10;
    GraphBfsWorkload workload(params, 8, 64);
    EXPECT_EQ(workload.engine(), EngineKind::GraphTraversal);
    ASSERT_EQ(workload.structures().size(), 2u);

    TaskPtr task = workload.makeTask(0, WorkloadContext{});
    bool saw_offsets = false, saw_edges = false;
    for (int guard = 0; guard < 10000; ++guard) {
        const TaskStep step = task->next();
        for (const AccessRequest &a : step.accesses) {
            if (a.data_class == DataClass::GraphOffsets) {
                EXPECT_EQ(a.bytes, Bytes{8});
                saw_offsets = true;
            } else {
                EXPECT_EQ(a.data_class, DataClass::GraphEdges);
                EXPECT_GE(a.bytes, Bytes{4});
                saw_edges = true;
            }
        }
        if (step.done)
            break;
    }
    EXPECT_TRUE(saw_offsets);
    EXPECT_TRUE(saw_edges);
}

TEST(GraphBfsWorkload, VisitBudgetBoundsWork)
{
    graph::GraphParams params;
    params.num_vertices = 1 << 12;
    GraphBfsWorkload small(params, 4, 16);
    GraphBfsWorkload large(params, 4, 256);
    const auto fp_small =
        measureFootprint(small, WorkloadContext{});
    const auto fp_large =
        measureFootprint(large, WorkloadContext{});
    EXPECT_LT(fp_small.accesses, fp_large.accesses);
    // <= 2 steps (offset + edges) per visited vertex, + done steps.
    EXPECT_LE(fp_small.steps, 4u * (2 * 16 + 2));
}

TEST(GraphBfsWorkload, RunsOnBeaconSystems)
{
    graph::GraphParams params;
    params.num_vertices = 1 << 11;
    GraphBfsWorkload workload(params, 32, 64);
    const RunResult d =
        runSystem(SystemParams::beaconD(), workload, 0);
    EXPECT_EQ(d.tasks, 32u);
    EXPECT_GT(d.dram_reads, 0u);
    const RunResult s =
        runSystem(SystemParams::beaconS(), workload, 0);
    EXPECT_EQ(s.tasks, 32u);
}

// --- DbProbe workload ---

TEST(DbProbeWorkload, ReferenceSemantics)
{
    DbProbeWorkload workload(1 << 12, 10, 16, 8);
    // A key drawn from the table must be contained; random keys
    // mostly are not.
    EXPECT_EQ(workload.engine(), EngineKind::IndexProbe);
    Rng rng(4);
    int misses = 0;
    for (int i = 0; i < 100; ++i)
        misses += !workload.contains(rng());
    EXPECT_GT(misses, 90);
}

TEST(DbProbeWorkload, ChainWalkProtocol)
{
    DbProbeWorkload workload(1 << 12, 8, 4, 4);
    TaskPtr task = workload.makeTask(0, WorkloadContext{});
    bool saw_bucket = false, saw_node = false;
    for (int guard = 0; guard < 10000; ++guard) {
        const TaskStep step = task->next();
        for (const AccessRequest &a : step.accesses) {
            if (a.data_class == DataClass::IndexBuckets) {
                EXPECT_EQ(a.bytes, Bytes{8});
                saw_bucket = true;
            } else {
                EXPECT_EQ(a.data_class, DataClass::IndexNodes);
                EXPECT_EQ(a.bytes, Bytes{16});
                saw_node = true;
            }
            EXPECT_FALSE(a.is_write);
        }
        if (step.done)
            break;
    }
    EXPECT_TRUE(saw_bucket);
    EXPECT_TRUE(saw_node);
}

TEST(DbProbeWorkload, RunsOnBeaconAndBaseline)
{
    DbProbeWorkload workload(1 << 12, 10, 64, 16);
    const RunResult vanilla =
        runSystem(SystemParams::cxlVanillaS(), workload, 0);
    const RunResult beacon =
        runSystem(SystemParams::beaconS(), workload, 0);
    EXPECT_EQ(vanilla.tasks, 64u);
    EXPECT_LT(beacon.ticks, vanilla.ticks)
        << "optimizations must carry over to the extension app";
}

TEST(ExtensionEngines, LatenciesDefined)
{
    EXPECT_EQ(engineStepCycles(EngineKind::GraphTraversal),
              Cycles{12});
    EXPECT_EQ(engineStepCycles(EngineKind::IndexProbe), Cycles{14});
}

} // namespace
} // namespace beacon
