/**
 * @file
 * Tests for the event-driven FR-FCFS DRAM controller: completion
 * semantics, row-hit preference, throughput/latency sanity, refresh
 * progress, and the DRAMPower-style energy model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "dram/controller.hh"
#include "dram/energy.hh"

namespace beacon
{
namespace
{

struct ControllerHarness
{
    EventQueue eq;
    StatRegistry stats;
    DimmGeometry geom;
    DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    std::unique_ptr<DramController> ctrl;

    explicit ControllerHarness(bool custom = true,
                               bool refresh = false)
    {
        geom.per_rank_lanes = custom;
        geom.per_rank_cmd_bus = custom;
        DramControllerParams params;
        params.enable_refresh = refresh;
        ctrl = std::make_unique<DramController>("dimm", eq, stats,
                                                geom, tp, params);
    }

    MemRequest
    makeRead(unsigned rank, unsigned bg, unsigned bank, unsigned row,
             unsigned bursts = 1, unsigned chip_first = 0,
             unsigned chip_count = 16)
    {
        MemRequest req;
        req.coord.rank = rank;
        req.coord.bank_group = bg;
        req.coord.bank = bank;
        req.coord.row = RowId{row};
        req.coord.chip_first = chip_first;
        req.coord.chip_count = chip_count;
        req.bursts = bursts;
        req.bytes = Bytes{bursts * chip_count * 4};
        return req;
    }
};

TEST(DramController, SingleReadCompletesWithRealisticLatency)
{
    ControllerHarness h;
    Tick done = 0;
    MemRequest req = h.makeRead(0, 0, 0, 7);
    req.on_complete = [&](Tick t) { done = t; };
    h.ctrl->enqueue(std::move(req));
    h.eq.run();
    // ACT + tRCD + tCL + tBL on an idle bank.
    const Tick expect =
        (h.tp.t_rcd + h.tp.t_cl + h.tp.t_bl) * h.tp.t_ck_ps;
    EXPECT_GE(done, expect);
    EXPECT_LE(done, expect + 10 * h.tp.t_ck_ps);
    EXPECT_EQ(h.ctrl->readsCompleted(), 1u);
}

TEST(DramController, AllCallbacksFireOnce)
{
    ControllerHarness h;
    int fired = 0;
    for (int i = 0; i < 64; ++i) {
        MemRequest req =
            h.makeRead(i % 4, (i / 4) % 4, (i / 16) % 4, i);
        req.on_complete = [&](Tick) { ++fired; };
        h.ctrl->enqueue(std::move(req));
    }
    h.eq.run();
    EXPECT_EQ(fired, 64);
    EXPECT_EQ(h.ctrl->inFlight(), 0u);
}

TEST(DramController, RowHitsPreferredOverConflicts)
{
    ControllerHarness h;
    std::vector<int> completion_order;
    // First open row 5, then interleave row-5 hits with row-9
    // conflicts in the same bank.
    MemRequest warm = h.makeRead(0, 0, 0, 5);
    warm.on_complete = [&](Tick) { completion_order.push_back(0); };
    h.ctrl->enqueue(std::move(warm));
    h.eq.run();

    MemRequest conflict = h.makeRead(0, 0, 0, 9);
    conflict.on_complete = [&](Tick) {
        completion_order.push_back(9);
    };
    h.ctrl->enqueue(std::move(conflict));
    MemRequest hit = h.makeRead(0, 0, 0, 5);
    hit.on_complete = [&](Tick) { completion_order.push_back(5); };
    h.ctrl->enqueue(std::move(hit));
    h.eq.run();

    ASSERT_EQ(completion_order.size(), 3u);
    EXPECT_EQ(completion_order[1], 5) << "row hit should bypass";
    EXPECT_EQ(completion_order[2], 9);
    EXPECT_GT(h.ctrl->device().numPres(), 0u);
}

TEST(DramController, WritesComplete)
{
    ControllerHarness h;
    int writes = 0;
    for (int i = 0; i < 16; ++i) {
        MemRequest req = h.makeRead(0, i % 4, 0, 3);
        req.is_write = true;
        req.on_complete = [&](Tick) { ++writes; };
        h.ctrl->enqueue(std::move(req));
    }
    h.eq.run();
    EXPECT_EQ(writes, 16);
    EXPECT_EQ(h.ctrl->writesCompleted(), 16u);
}

TEST(DramController, StreamingThroughputApproachesPeak)
{
    // Sequential row-hit reads from one rank should sustain close to
    // one burst per tCCD_S on the data bus.
    ControllerHarness h;
    const unsigned n = 256;
    Tick last = 0;
    unsigned done = 0;
    // Single row, many bursts: model as consecutive multi-burst
    // requests to the same row.
    for (unsigned i = 0; i < n; ++i) {
        MemRequest req = h.makeRead(0, 0, 0, 4, 1);
        req.coord.column = (i * 8) % 1024;
        req.on_complete = [&](Tick t) {
            ++done;
            last = t;
        };
        h.ctrl->enqueue(std::move(req));
    }
    h.eq.run();
    EXPECT_EQ(done, n);
    const double bytes = double(n) * 64.0;
    const double seconds = ticksToSeconds(last);
    const double gbps = bytes / seconds / 1e9;
    // DDR4-1600 x64 peak is 12.8 GB/s; expect > 60% of it.
    EXPECT_GT(gbps, 7.5);
    EXPECT_LT(gbps, 12.9);
}

TEST(DramController, MultiBurstRequestSingleCompletion)
{
    ControllerHarness h;
    int fired = 0;
    MemRequest req = h.makeRead(0, 0, 0, 2, 8, 0, 1);
    req.on_complete = [&](Tick) { ++fired; };
    h.ctrl->enqueue(std::move(req));
    h.eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(h.ctrl->device().numReadBursts(), 8u);
}

TEST(DramController, RefreshKeepsServicingRequests)
{
    ControllerHarness h(true, true);
    // Spread requests over a window longer than tREFI so refreshes
    // interleave with traffic.
    int done = 0;
    const Tick refi = h.tp.t_refi * h.tp.t_ck_ps;
    for (int i = 0; i < 32; ++i) {
        h.eq.schedule(i * refi / 4, [&h, &done, i] {
            MemRequest req = h.makeRead(0, 0, 0, 100 + i);
            req.on_complete = [&done](Tick) { ++done; };
            h.ctrl->enqueue(std::move(req));
        });
    }
    h.eq.run(refi * 12);
    EXPECT_EQ(done, 32);
    EXPECT_GT(h.ctrl->device().numRefreshes(), 0u);
}

TEST(DramController, DeterministicAcrossRuns)
{
    auto run_once = [] {
        ControllerHarness h;
        Rng rng(99);
        Tick last = 0;
        for (int i = 0; i < 200; ++i) {
            MemRequest req = h.makeRead(
                unsigned(rng.next(4)), unsigned(rng.next(4)),
                unsigned(rng.next(4)), unsigned(rng.next(1024)));
            req.on_complete = [&](Tick t) { last = t; };
            h.ctrl->enqueue(std::move(req));
        }
        h.eq.run();
        return last;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(DramController, ClosedPagePolicyLeavesBanksClosed)
{
    EventQueue eq;
    StatRegistry stats;
    DimmGeometry geom;
    DramControllerParams params;
    params.enable_refresh = false;
    params.page_policy = PagePolicy::Closed;
    DramController ctrl("dimm", eq, stats, geom,
                        DramTimingParams::ddr4_1600_22(), params);
    MemRequest req;
    req.coord.row = RowId{5};
    req.coord.chip_count = 16;
    req.bursts = 1;
    ctrl.enqueue(std::move(req));
    eq.run();
    EXPECT_EQ(ctrl.device().openRow(0, 0, 0), -1)
        << "auto-precharge must close the bank";
    // No explicit PRE command was spent; the auto-precharge is
    // accounted in per-chip precharge energy ops.
    EXPECT_EQ(ctrl.device().numPres(), 0u);
    EXPECT_EQ(ctrl.device().numPreChipOps(), 16u);
}

TEST(DramController, OpenPageBeatsClosedOnRowLocality)
{
    auto run_policy = [](PagePolicy policy) {
        EventQueue eq;
        StatRegistry stats;
        DimmGeometry geom;
        DramControllerParams params;
        params.enable_refresh = false;
        params.page_policy = policy;
        DramController ctrl("dimm", eq, stats, geom,
                            DramTimingParams::ddr4_1600_22(),
                            params);
        // A streaming pattern through one row.
        for (unsigned i = 0; i < 64; ++i) {
            MemRequest req;
            req.coord.row = RowId{9};
            req.coord.column = (i * 8) % 1024;
            req.coord.chip_count = 16;
            req.bursts = 1;
            ctrl.enqueue(std::move(req));
        }
        eq.run();
        return eq.now();
    };
    EXPECT_LT(run_policy(PagePolicy::Open),
              run_policy(PagePolicy::Closed));
}

TEST(DramEnergy, CountsScaleWithActivity)
{
    ControllerHarness h;
    for (int i = 0; i < 64; ++i) {
        MemRequest req = h.makeRead(0, i % 4, (i / 4) % 4, i);
        h.ctrl->enqueue(std::move(req));
    }
    h.eq.run();
    const Tick end = h.eq.now();
    const DramEnergyBreakdown e =
        computeDramEnergy(h.ctrl->device(), end);
    EXPECT_GT(e.act_pre_pj, Picojoules{});
    EXPECT_GT(e.rd_wr_pj, Picojoules{});
    EXPECT_GT(e.background_pj, Picojoules{});
    EXPECT_DOUBLE_EQ(e.refresh_pj.value(), 0.0);
    EXPECT_GT(e.totalPj(), e.background_pj);

    // Twice the elapsed time doubles only the background term.
    const DramEnergyBreakdown e2 =
        computeDramEnergy(h.ctrl->device(), end * 2);
    EXPECT_DOUBLE_EQ(e2.act_pre_pj.value(), e.act_pre_pj.value());
    EXPECT_NEAR(e2.background_pj.value(),
                2 * e.background_pj.value(),
                1e-6 * e.background_pj.value());
}

TEST(DramEnergy, FineGrainedAccessCostsFewerChipOps)
{
    // Reading 32 useful bytes: one chip x 8 bursts moves 32 raw
    // bytes; a whole-rank burst moves 64 raw bytes.
    ControllerHarness fine;
    {
        MemRequest req = fine.makeRead(0, 0, 0, 1, 8, 0, 1);
        fine.ctrl->enqueue(std::move(req));
        fine.eq.run();
    }
    ControllerHarness wide;
    {
        MemRequest req = wide.makeRead(0, 0, 0, 1, 1, 0, 16);
        wide.ctrl->enqueue(std::move(req));
        wide.eq.run();
    }
    EXPECT_EQ(fine.ctrl->device().rawBytes(), Bytes{32});
    EXPECT_EQ(wide.ctrl->device().rawBytes(), Bytes{64});
    const Picojoules fine_pj =
        computeDramEnergy(fine.ctrl->device(), 1).rd_wr_pj;
    const Picojoules wide_pj =
        computeDramEnergy(wide.ctrl->device(), 1).rd_wr_pj;
    EXPECT_LT(fine_pj, wide_pj);
}

} // namespace
} // namespace beacon
