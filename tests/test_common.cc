/**
 * @file
 * Unit tests for src/common: integer math, RNG, units, logging.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"

namespace beacon
{
namespace
{

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0u));
    EXPECT_TRUE(isPowerOf2(1u));
    EXPECT_TRUE(isPowerOf2(2u));
    EXPECT_FALSE(isPowerOf2(3u));
    EXPECT_TRUE(isPowerOf2(1024u));
    EXPECT_FALSE(isPowerOf2(1023u));
}

TEST(IntMath, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1u), 0u);
    EXPECT_EQ(floorLog2(2u), 1u);
    EXPECT_EQ(floorLog2(3u), 1u);
    EXPECT_EQ(floorLog2(1u << 17), 17u);
    EXPECT_EQ(ceilLog2(1u), 0u);
    EXPECT_EQ(ceilLog2(3u), 2u);
    EXPECT_EQ(ceilLog2(4u), 2u);
    EXPECT_EQ(ceilLog2(5u), 3u);
}

TEST(IntMath, DivCeilAndRounding)
{
    EXPECT_EQ(divCeil(7u, 2u), 4u);
    EXPECT_EQ(divCeil(8u, 2u), 4u);
    EXPECT_EQ(divCeil(1u, 64u), 1u);
    EXPECT_EQ(roundUp(10u, 8u), 16u);
    EXPECT_EQ(roundUp(16u, 8u), 16u);
    EXPECT_EQ(roundDown(10u, 8u), 8u);
}

TEST(IntMath, BitExtractionRoundTrip)
{
    const std::uint64_t value = 0xDEADBEEFCAFEBABEull;
    for (unsigned first = 0; first < 60; first += 7) {
        const unsigned last = first + 3;
        const std::uint64_t field = bits(value, last, first);
        const std::uint64_t rebuilt =
            insertBits(value, last, first, field);
        EXPECT_EQ(rebuilt, value);
    }
    EXPECT_EQ(bits(0xF0u, 7, 4), 0xFu);
    EXPECT_EQ(insertBits(0, 7, 4, 0xF), 0xF0u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        if (va != c())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedDrawStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double mean = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        mean += d;
    }
    mean /= n;
    EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.02);
}

TEST(Units, Conversions)
{
    EXPECT_EQ(nanoseconds(1), 1000u);
    EXPECT_EQ(microseconds(1.0), 1000000u);
    EXPECT_EQ(milliseconds(1.0), 1000000000u);
    EXPECT_DOUBLE_EQ(ticksToSeconds(nanoseconds(1)), 1e-9);
    EXPECT_EQ(1_KiB, Bytes{1024});
    EXPECT_EQ(64_MiB, Bytes{64ull << 20});
    EXPECT_EQ(64_GiB, Bytes{64ull << 30});
}

TEST(Units, TransferTime)
{
    // 64 bytes at 32 GB/s = 2 ns = 2000 ps.
    EXPECT_EQ(transferTime(Bytes{64}, 32.0), 2000u);
    // 1 GB at 1 GB/s = 1 s.
    EXPECT_EQ(transferTime(Bytes{1000000000ull}, 1.0), Tick(1e12));
}

TEST(Logging, LevelGate)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    // warn/inform at silent level must not crash (output suppressed).
    BEACON_WARN("suppressed warning");
    BEACON_INFORM("suppressed info");
    setLogLevel(before);
}

TEST(Logging, AssertPassesOnTrue)
{
    BEACON_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(BEACON_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(BEACON_ASSERT(false, "ouch"), "ouch");
}

} // namespace
} // namespace beacon
