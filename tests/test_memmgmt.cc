/**
 * @file
 * Memory-management tests: address-mapping bijectivity and locality
 * properties, pool placement (replication, partition locality,
 * stripe weighting), and the host allocation framework.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "memmgmt/framework.hh"
#include "memmgmt/layout.hh"
#include "memmgmt/mapper.hh"

namespace beacon
{
namespace
{

using CoordKey =
    std::tuple<unsigned, unsigned, unsigned, unsigned, unsigned,
               unsigned>;

CoordKey
keyOf(const DramCoord &c)
{
    return {c.rank, c.bank_group, c.bank, c.row.value(), c.column,
            c.chip_first};
}

struct MapperCase
{
    unsigned chip_group;
    std::uint32_t granule;
    bool row_major;
};

class MapperTest : public ::testing::TestWithParam<MapperCase>
{
};

TEST_P(MapperTest, MappingIsInjective)
{
    const MapperCase param = GetParam();
    DimmGeometry geom;
    MappingPolicy policy;
    policy.chip_group = param.chip_group;
    policy.granule_bytes = param.granule;
    policy.row_major = param.row_major;
    DimmAddressMapper mapper(geom, policy);

    std::set<CoordKey> seen;
    const std::uint64_t n = 20000;
    for (std::uint64_t idx = 0; idx < n; ++idx) {
        const DramCoord coord = mapper.mapGranule(idx);
        EXPECT_LT(coord.rank, geom.ranks);
        EXPECT_LT(coord.bank_group, geom.bank_groups);
        EXPECT_LT(coord.bank, geom.banks_per_group);
        EXPECT_LT(coord.row.value(), geom.rows);
        EXPECT_LT(coord.column, geom.columns);
        EXPECT_EQ(coord.chip_count, param.chip_group);
        EXPECT_EQ(coord.chip_first % param.chip_group, 0u);
        EXPECT_TRUE(seen.insert(keyOf(coord)).second)
            << "granule " << idx << " collides";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MapperTest,
    ::testing::Values(MapperCase{16, 64, false},
                      MapperCase{1, 32, false},
                      MapperCase{8, 32, false},
                      MapperCase{16, 8192, true},
                      MapperCase{4, 64, true},
                      MapperCase{2, 8, false}),
    [](const auto &info) {
        const MapperCase &c = info.param;
        return "g" + std::to_string(c.chip_group) + "_b" +
               std::to_string(c.granule) +
               (c.row_major ? "_row" : "_bank");
    });

TEST(Mapper, RowMajorKeepsConsecutiveGranulesInOneRow)
{
    DimmGeometry geom;
    MappingPolicy policy;
    policy.chip_group = 16;
    policy.granule_bytes = 64;
    policy.row_major = true;
    DimmAddressMapper mapper(geom, policy);
    const DramCoord first = mapper.mapGranule(0);
    for (std::uint64_t i = 1; i < mapper.slotsPerRow(); ++i) {
        const DramCoord c = mapper.mapGranule(i);
        EXPECT_EQ(c.row, first.row);
        EXPECT_EQ(c.bank, first.bank);
        EXPECT_EQ(c.rank, first.rank);
    }
}

TEST(Mapper, BankInterleavedSpreadsConsecutiveGranules)
{
    DimmGeometry geom;
    MappingPolicy policy;
    policy.chip_group = 16;
    policy.granule_bytes = 64;
    policy.row_major = false;
    DimmAddressMapper mapper(geom, policy);
    const DramCoord a = mapper.mapGranule(0);
    const DramCoord b = mapper.mapGranule(1);
    EXPECT_NE(a.bank_group, b.bank_group);
}

TEST(Mapper, BurstsForMatchesChipGroupWidth)
{
    DimmGeometry geom;
    MappingPolicy policy;
    policy.chip_group = 8; // 32 B per burst
    policy.granule_bytes = 32;
    DimmAddressMapper mapper(geom, policy);
    EXPECT_EQ(mapper.burstsFor(32), 1u);
    EXPECT_EQ(mapper.burstsFor(33), 2u);
    policy.chip_group = 1; // 4 B per burst
    DimmAddressMapper fine(geom, policy);
    EXPECT_EQ(fine.burstsFor(32), 8u);
}

TEST(Mapper, BaseRowShiftsRows)
{
    DimmGeometry geom;
    MappingPolicy a;
    a.chip_group = 16;
    a.granule_bytes = 64;
    MappingPolicy b = a;
    b.base_row = 1000;
    const DramCoord ca = DimmAddressMapper(geom, a).mapGranule(3);
    const DramCoord cb = DimmAddressMapper(geom, b).mapGranule(3);
    EXPECT_EQ((ca.row.value() + 1000) % geom.rows, cb.row.value());
}

// --- Pool layout ---

std::vector<PoolDimm>
makePool(unsigned switches, unsigned per_switch,
         const std::set<unsigned> &cxlg)
{
    std::vector<PoolDimm> pool;
    for (unsigned s = 0; s < switches; ++s) {
        for (unsigned d = 0; d < per_switch; ++d) {
            PoolDimm dimm;
            dimm.node = NodeId::dimmNode(s, d);
            const unsigned global = s * per_switch + d;
            dimm.kind = cxlg.count(global) ? DimmKind::Cxlg
                                           : DimmKind::Unmodified;
            if (dimm.kind == DimmKind::Cxlg) {
                dimm.geom.per_rank_lanes = true;
                dimm.geom.per_rank_cmd_bus = true;
            }
            pool.push_back(dimm);
        }
    }
    return pool;
}

StructureSpec
occSpec(std::uint64_t bytes = 1 << 20)
{
    StructureSpec spec;
    spec.cls = DataClass::FmOcc;
    spec.bytes = Bytes{bytes};
    spec.read_only = true;
    spec.access_granule = 32;
    return spec;
}

TEST(Layout, NaivePlacementStripesOverWholePool)
{
    PlacementPolicy policy;
    policy.partitions = 2;
    policy.partition_switch = {0, 1};
    MemoryLayout layout(makePool(2, 4, {0, 4}), {occSpec()}, policy);

    std::set<unsigned> dimms;
    for (std::uint64_t off = 0; off < 64 * 64; off += 64) {
        for (const auto &acc :
             layout.resolve(DataClass::FmOcc, off, Bytes{32}, 0)) {
            dimms.insert(acc.dimm_index);
        }
    }
    EXPECT_EQ(dimms.size(), 8u) << "single copy across every DIMM";
}

TEST(Layout, ProximityPlacementKeepsPartitionOnItsSwitch)
{
    PlacementPolicy policy;
    policy.placement_opt = true;
    policy.replicate_read_only = true;
    policy.partitions = 2;
    policy.partition_switch = {0, 1};
    MemoryLayout layout(makePool(2, 4, {0, 4}), {occSpec()}, policy);

    for (unsigned part = 0; part < 2; ++part) {
        for (std::uint64_t off = 0; off < 4096; off += 32) {
            for (const auto &acc :
                 layout.resolve(DataClass::FmOcc, off, Bytes{32}, part)) {
                EXPECT_EQ(acc.node.sw, part)
                    << "partition data must stay on its switch";
            }
        }
    }
}

TEST(Layout, CxlgStripeWeightConcentratesAccesses)
{
    PlacementPolicy policy;
    policy.placement_opt = true;
    policy.replicate_read_only = true;
    policy.partitions = 2;
    policy.partition_switch = {0, 1};
    policy.cxlg_stripe_weight = 5;
    MemoryLayout layout(makePool(2, 4, {0, 4}), {occSpec()}, policy);

    unsigned local = 0, total = 0;
    for (std::uint64_t off = 0; off < 32 * 8000; off += 32) {
        for (const auto &acc :
             layout.resolve(DataClass::FmOcc, off, Bytes{32}, 0)) {
            ++total;
            if (acc.dimm_index == 0)
                ++local;
        }
    }
    // Weight 5 vs 3 unmodified DIMMs: 5/8 of accesses are local.
    EXPECT_NEAR(double(local) / total, 5.0 / 8.0, 0.02);
}

TEST(Layout, WeightedStripeRemainsInjectivePerDimm)
{
    PlacementPolicy policy;
    policy.placement_opt = true;
    policy.replicate_read_only = true;
    policy.partitions = 1;
    policy.partition_switch = {0};
    policy.cxlg_stripe_weight = 5;
    MemoryLayout layout(makePool(1, 4, {0}), {occSpec()}, policy);

    std::set<std::tuple<unsigned, CoordKey>> seen;
    for (std::uint64_t off = 0; off < 32 * 20000; off += 32) {
        for (const auto &acc :
             layout.resolve(DataClass::FmOcc, off, Bytes{32}, 0)) {
            EXPECT_TRUE(
                seen.insert({acc.dimm_index, keyOf(acc.coord)})
                    .second)
                << "offset " << off << " collides on DIMM "
                << acc.dimm_index;
        }
    }
}

TEST(Layout, ChipLevelOnCxlgRankLevelOnUnmodified)
{
    PlacementPolicy policy;
    policy.placement_opt = true;
    policy.replicate_read_only = true;
    policy.partitions = 1;
    policy.partition_switch = {0};
    policy.coalesce_chips = 8;
    MemoryLayout layout(makePool(1, 4, {0}), {occSpec()}, policy);

    bool saw_cxlg = false, saw_unmodified = false;
    for (std::uint64_t off = 0; off < 32 * 2000; off += 32) {
        for (const auto &acc :
             layout.resolve(DataClass::FmOcc, off, Bytes{32}, 0)) {
            if (acc.dimm_index == 0) {
                EXPECT_EQ(acc.coord.chip_count, 8u);
                saw_cxlg = true;
            } else {
                EXPECT_EQ(acc.coord.chip_count, 16u);
                saw_unmodified = true;
            }
        }
    }
    EXPECT_TRUE(saw_cxlg);
    EXPECT_TRUE(saw_unmodified);
}

TEST(Layout, SpatialAccessStaysWithinOneRowPiece)
{
    StructureSpec locations;
    locations.cls = DataClass::HashLocations;
    locations.bytes = Bytes{1 << 20};
    locations.spatial = true;
    locations.read_only = true;
    locations.access_granule = 64;

    PlacementPolicy policy;
    policy.placement_opt = true;
    policy.replicate_read_only = true;
    policy.partitions = 1;
    policy.partition_switch = {0};
    MemoryLayout layout(makePool(1, 4, {0}), {locations}, policy);

    // A 256 B spatial access lands in one piece (one row), because
    // the stripe granule is a whole rank-row.
    const auto pieces =
        layout.resolve(DataClass::HashLocations, 8192, Bytes{256}, 0);
    EXPECT_EQ(pieces.size(), 1u);
    EXPECT_EQ(pieces[0].bytes, Bytes{256});
}

TEST(Layout, NaiveStripeSplitsLargeAccesses)
{
    StructureSpec locations;
    locations.cls = DataClass::HashLocations;
    locations.bytes = Bytes{1 << 20};
    locations.spatial = true;
    locations.read_only = true;

    PlacementPolicy policy; // naive: 64 B stripe
    policy.partitions = 1;
    policy.partition_switch = {0};
    MemoryLayout layout(makePool(1, 4, {0}), {locations}, policy);

    const auto pieces =
        layout.resolve(DataClass::HashLocations, 0, Bytes{256}, 0);
    EXPECT_EQ(pieces.size(), 4u);
}

TEST(Layout, PartitionLocalStructuresUsePrimaryDimms)
{
    StructureSpec bloom;
    bloom.cls = DataClass::BloomLocal;
    bloom.bytes = Bytes{1 << 16};
    bloom.read_only = false;
    bloom.partition_local = true;
    bloom.access_granule = 8;

    PlacementPolicy policy;
    policy.partitions = 2;
    policy.partition_switch = {0, 1};
    policy.partition_primary = {{1}, {6}};
    MemoryLayout layout(makePool(2, 4, {}), {bloom}, policy);

    for (unsigned part = 0; part < 2; ++part) {
        for (std::uint64_t off = 0; off < 4096; off += 8) {
            for (const auto &acc : layout.resolve(
                     DataClass::BloomLocal, off, Bytes{1}, part)) {
                EXPECT_EQ(acc.dimm_index, part == 0 ? 1u : 6u);
            }
        }
    }
}

TEST(Layout, HomeSwitchConsistentWithResolve)
{
    StructureSpec bloom;
    bloom.cls = DataClass::BloomCounter;
    bloom.bytes = Bytes{1 << 16};
    bloom.read_only = false;
    bloom.access_granule = 8;

    PlacementPolicy policy;
    policy.partitions = 2;
    policy.partition_switch = {0, 1};
    MemoryLayout layout(makePool(2, 4, {}), {bloom}, policy);

    for (std::uint64_t off = 0; off < 4096; off += 8) {
        const auto pieces =
            layout.resolve(DataClass::BloomCounter, off, Bytes{1}, 0);
        ASSERT_EQ(pieces.size(), 1u);
        EXPECT_EQ(layout.homeSwitch(DataClass::BloomCounter, off),
                  pieces[0].node.sw);
    }
}

TEST(LayoutDeath, UnplannedClassPanics)
{
    PlacementPolicy policy;
    policy.partitions = 1;
    policy.partition_switch = {0};
    MemoryLayout layout(makePool(1, 2, {}), {occSpec()}, policy);
    EXPECT_DEATH(layout.resolve(DataClass::BloomCounter, 0, Bytes{1}, 0),
                 "unplanned");
}

// --- Framework ---

TEST(Framework, AllocateAndDeallocate)
{
    MemoryFramework framework(makePool(2, 4, {0, 4}));
    AllocationRequest request;
    request.app = "fm-seeding";
    request.structures = {occSpec()};
    request.policy.partitions = 2;
    request.policy.partition_switch = {0, 1};

    const AllocationResponse response = framework.allocate(request);
    ASSERT_TRUE(response.success) << response.error;
    ASSERT_NE(response.layout, nullptr);
    EXPECT_FALSE(response.allocated_dimms.empty());
    for (unsigned dimm : response.allocated_dimms) {
        EXPECT_TRUE(framework.isNonCacheable(dimm));
        EXPECT_GT(framework.residentBytes(dimm), Bytes{});
    }
    EXPECT_TRUE(framework.deallocate("fm-seeding"));
    for (unsigned dimm : response.allocated_dimms)
        EXPECT_FALSE(framework.isNonCacheable(dimm));
    EXPECT_FALSE(framework.deallocate("fm-seeding"));
}

TEST(Framework, DuplicateAllocationRejected)
{
    MemoryFramework framework(makePool(1, 4, {0}));
    AllocationRequest request;
    request.app = "app";
    request.structures = {occSpec()};
    request.policy.partitions = 1;
    request.policy.partition_switch = {0};
    EXPECT_TRUE(framework.allocate(request).success);
    const AllocationResponse again = framework.allocate(request);
    EXPECT_FALSE(again.success);
    EXPECT_NE(again.error.find("already"), std::string::npos);
}

TEST(Framework, MemoryCleanMigratesPriorTenant)
{
    MemoryFramework framework(makePool(1, 4, {0}));
    AllocationRequest first;
    first.app = "tenant-a";
    // Nearly fill the pool.
    first.structures = {occSpec(200ull << 30)};
    first.policy.partitions = 1;
    first.policy.partition_switch = {0};
    ASSERT_TRUE(framework.allocate(first).success);

    AllocationRequest second;
    second.app = "tenant-b";
    second.structures = {occSpec(200ull << 30)};
    second.policy.partitions = 1;
    second.policy.partition_switch = {0};
    const AllocationResponse response = framework.allocate(second);
    ASSERT_TRUE(response.success) << response.error;
    EXPECT_GT(response.migrated_bytes, Bytes{})
        << "memory clean should migrate tenant-a's data";
}

TEST(Framework, OversizedAllocationFails)
{
    MemoryFramework framework(makePool(1, 2, {}));
    AllocationRequest request;
    request.app = "huge";
    request.structures = {occSpec(1ull << 40)}; // 1 TiB > 128 GiB
    request.policy.partitions = 1;
    request.policy.partition_switch = {0};
    const AllocationResponse response = framework.allocate(request);
    EXPECT_FALSE(response.success);
    EXPECT_NE(response.error.find("capacity"), std::string::npos);
}

TEST(Framework, MissingAppNameRejected)
{
    MemoryFramework framework(makePool(1, 2, {}));
    AllocationRequest request;
    request.structures = {occSpec()};
    request.policy.partitions = 1;
    request.policy.partition_switch = {0};
    EXPECT_FALSE(framework.allocate(request).success);
}

// --- Multi-tenant partitioning edge cases ---

TEST(Framework, ZeroQuotaTenantRejected)
{
    MemoryFramework framework(makePool(1, 2, {}));
    AllocationRequest request;
    request.app = "freeloader";
    request.structures = {occSpec(0)};
    request.policy.partitions = 1;
    request.policy.partition_switch = {0};
    const AllocationResponse response = framework.allocate(request);
    EXPECT_FALSE(response.success);
    EXPECT_NE(response.error.find("no quota"), std::string::npos);
}

TEST(Framework, QuotaExactlyEqualToDimmCapacity)
{
    const auto pool = makePool(1, 1, {});
    const std::uint64_t capacity = pool[0].geom.capacityBytes();
    MemoryFramework framework(pool);

    AllocationRequest request;
    request.app = "exact-fit";
    request.structures = {occSpec(capacity)};
    request.policy.partitions = 1;
    request.policy.partition_switch = {0};
    const AllocationResponse response = framework.allocate(request);
    ASSERT_TRUE(response.success) << response.error;
    EXPECT_EQ(framework.freeBytes(0), Bytes{});

    // The pool is now exactly full: a co-tenant that refuses memory
    // clean must be rejected with the transient-failure wording...
    AllocationRequest blocked;
    blocked.app = "late-tenant";
    blocked.structures = {occSpec(1 << 10)};
    blocked.policy = request.policy;
    blocked.allow_clean = false;
    const AllocationResponse denied = framework.allocate(blocked);
    EXPECT_FALSE(denied.success);
    EXPECT_NE(denied.error.find("memory clean disallowed"),
              std::string::npos);

    // ...while the default allow_clean migrates and succeeds.
    blocked.app = "clean-tenant";
    blocked.allow_clean = true;
    EXPECT_TRUE(framework.allocate(blocked).success);
}

TEST(Framework, ReleaseReturnsCapacity)
{
    MemoryFramework framework(makePool(1, 2, {}));
    const Bytes initial = framework.poolFreeBytes();

    AllocationRequest request;
    request.app = "job-scratch";
    request.structures = {occSpec(1 << 20)};
    request.policy.partitions = 1;
    request.policy.partition_switch = {0};
    ASSERT_TRUE(framework.allocate(request).success);
    EXPECT_LT(framework.poolFreeBytes(), initial);

    EXPECT_TRUE(framework.deallocate("job-scratch"));
    EXPECT_EQ(framework.poolFreeBytes(), initial);
}

TEST(Framework, ConcurrentTenantsGetDisjointRowRegions)
{
    MemoryFramework framework(makePool(1, 2, {}));
    AllocationRequest first;
    first.app = "tenant-a";
    first.structures = {occSpec(64 << 20)};
    first.policy.partitions = 1;
    first.policy.partition_switch = {0};
    const AllocationResponse a = framework.allocate(first);
    ASSERT_TRUE(a.success) << a.error;

    AllocationRequest second = first;
    second.app = "tenant-b";
    const AllocationResponse b = framework.allocate(second);
    ASSERT_TRUE(b.success) << b.error;

    // The framework offsets the second tenant's base row past the
    // rows the first tenant occupies, so the same (class, offset)
    // resolves to different rows for the two layouts.
    const auto piece_a =
        a.layout->resolve(DataClass::FmOcc, 0, Bytes{32}, 0).at(0);
    const auto piece_b =
        b.layout->resolve(DataClass::FmOcc, 0, Bytes{32}, 0).at(0);
    EXPECT_NE(piece_a.coord.row, piece_b.coord.row);
}

} // namespace
} // namespace beacon
