/**
 * @file
 * Integration tests: full machine models (MEDAL, NEST, CXL-vanilla,
 * BEACON-D, BEACON-S) driving real workloads end to end, plus the
 * behavioural claims the paper's optimizations make (device bias
 * removes host round trips, packing shrinks wire traffic, idealized
 * communication is an upper bound, coalescing balances chips, ...).
 */

#include <gtest/gtest.h>

#include "accel/experiment.hh"
#include "accel/system.hh"
#include "accel/workload.hh"

namespace beacon
{
namespace
{

const FmSeedingWorkload &
fmWorkload()
{
    static const FmSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[4];
        preset.genome.length = 1 << 15;
        preset.reads.num_reads = 48;
        return FmSeedingWorkload(preset);
    }();
    return workload;
}

const KmerCountingWorkload &
kmcWorkload()
{
    static const KmerCountingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::kmerCountingPreset();
        preset.genome.length = 1 << 15;
        return KmerCountingWorkload(preset, 21, 3, 1 << 14, 24);
    }();
    return workload;
}

class SystemRunTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    SystemParams
    params() const
    {
        const std::string name = GetParam();
        if (name == "medal")
            return SystemParams::medal();
        if (name == "nest")
            return SystemParams::nest();
        if (name == "vanillaD")
            return SystemParams::cxlVanillaD();
        if (name == "vanillaS")
            return SystemParams::cxlVanillaS();
        if (name == "beaconD")
            return SystemParams::beaconD();
        return SystemParams::beaconS();
    }
};

TEST_P(SystemRunTest, FmSeedingRunsToCompletion)
{
    NdpSystem system(params(), fmWorkload());
    const RunResult result = system.run(0);
    EXPECT_EQ(result.tasks, fmWorkload().numTasks());
    EXPECT_GT(result.ticks, 0u);
    EXPECT_GT(result.tasks_per_second, 0.0);
    EXPECT_GT(result.energy.dram_pj, Picojoules{});
    EXPECT_GT(result.energy.pe_pj, Picojoules{});
    EXPECT_GT(result.dram_reads, 0u);
}

TEST_P(SystemRunTest, KmerCountingRunsToCompletion)
{
    NdpSystem system(params(), kmcWorkload());
    const RunResult result = system.run(0);
    EXPECT_EQ(result.tasks, kmcWorkload().numTasks());
    EXPECT_GT(result.dram_writes, 0u)
        << "counter updates must write DRAM";
}

TEST_P(SystemRunTest, DeterministicAcrossRuns)
{
    const RunResult a = runSystem(params(), fmWorkload(), 16);
    const RunResult b = runSystem(params(), fmWorkload(), 16);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_DOUBLE_EQ(a.energy.totalPj().value(),
                     b.energy.totalPj().value());
}

TEST_P(SystemRunTest, IdealizedCommunicationIsAnUpperBound)
{
    const RunResult real = runSystem(params(), fmWorkload(), 32);
    const RunResult ideal =
        runSystem(params().idealized(), fmWorkload(), 32);
    EXPECT_LE(ideal.ticks, real.ticks);
    EXPECT_DOUBLE_EQ(ideal.energy.comm_pj.value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemRunTest,
                         ::testing::Values("medal", "nest",
                                           "vanillaD", "vanillaS",
                                           "beaconD", "beaconS"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(SystemBehaviour, DeviceBiasEliminatesHostRoundTrips)
{
    SystemParams host_bias = SystemParams::cxlVanillaD();
    SystemParams device_bias = host_bias;
    device_bias.opts.mem_access_opt = true;

    const RunResult naive = runSystem(host_bias, fmWorkload(), 32);
    const RunResult biased =
        runSystem(device_bias, fmWorkload(), 32);
    EXPECT_GT(naive.host_round_trips, 0u);
    EXPECT_EQ(biased.host_round_trips, 0u);
    EXPECT_LE(biased.ticks, naive.ticks);
}

TEST(SystemBehaviour, DataPackingReducesWireTraffic)
{
    SystemParams plain = SystemParams::cxlVanillaD();
    SystemParams packed = plain;
    packed.opts.data_packing = true;
    const RunResult a = runSystem(plain, fmWorkload(), 32);
    const RunResult b = runSystem(packed, fmWorkload(), 32);
    EXPECT_LT(b.wire_bytes, a.wire_bytes);
}

TEST(SystemBehaviour, PlacementReducesWireTraffic)
{
    SystemParams base = SystemParams::cxlVanillaD();
    base.opts.mem_access_opt = true;
    SystemParams placed = base;
    placed.opts.placement_mapping = true;
    const RunResult a = runSystem(base, fmWorkload(), 32);
    const RunResult b = runSystem(placed, fmWorkload(), 32);
    EXPECT_LT(b.wire_bytes, a.wire_bytes / 2)
        << "replicated proximate placement should slash traffic";
}

TEST(SystemBehaviour, CoalescingBalancesChipAccesses)
{
    SystemParams fine = SystemParams::beaconD();
    fine.opts.coalesce_chips = 1;
    SystemParams coalesced = SystemParams::beaconD();
    coalesced.opts.coalesce_chips = 8;
    const RunResult a = runSystem(fine, fmWorkload(), 0);
    const RunResult b = runSystem(coalesced, fmWorkload(), 0);
    EXPECT_GT(a.chip_access_cov, b.chip_access_cov)
        << "multi-chip coalescing must even out per-chip load";
}

TEST(SystemBehaviour, BeaconOutperformsVanilla)
{
    const RunResult vanilla =
        runSystem(SystemParams::cxlVanillaD(), fmWorkload(), 0);
    const RunResult beacon =
        runSystem(SystemParams::beaconD(), fmWorkload(), 0);
    EXPECT_LT(beacon.ticks, vanilla.ticks);
    EXPECT_LT(beacon.energy.totalPj(), vanilla.energy.totalPj());
}

TEST(SystemBehaviour, SinglePassBeatsMultiPassOnBeaconS)
{
    SystemParams multi = SystemParams::beaconS();
    multi.opts.kmc_single_pass = false;
    const RunResult two_pass =
        runSystem(multi, kmcWorkload(), 0);
    const RunResult one_pass =
        runSystem(SystemParams::beaconS(), kmcWorkload(), 0);
    EXPECT_LT(one_pass.ticks, two_pass.ticks);
}

TEST(SystemBehaviour, AtomicUpdatesAreNotLost)
{
    // Every atomic counter update must reach DRAM exactly once:
    // reads == writes for the update traffic (single-pass KMC only
    // issues RMWs plus task streaming).
    NdpSystem system(SystemParams::beaconS(), kmcWorkload());
    const RunResult result = system.run(0);
    EXPECT_EQ(result.dram_reads, result.dram_writes)
        << "each RMW is one read plus one write";
    const WorkloadFootprint fp = measureFootprint(
        kmcWorkload(), WorkloadContext{true, 0});
    EXPECT_EQ(result.dram_writes, fp.accesses)
        << "one write-back per atomic access";
}

TEST(SystemBehaviour, FunctionShippingCutsWireTraffic)
{
    // Function shipping saves wire only where responses travel
    // sub-flit: a packed pool without proximity placement, so
    // NDP-capable CXLG-DIMMs serve remote requests.
    SystemParams fetch = SystemParams::cxlVanillaD();
    fetch.opts.data_packing = true;
    SystemParams ship = fetch;
    ship.opts.function_shipping = true;
    // Enough load that flit batching amortises; below saturation
    // partial-flit flushes hide the per-message savings.
    genomics::DatasetPreset preset = genomics::seedingPresets()[4];
    preset.genome.length = 1 << 14;
    preset.reads.num_reads = 256;
    const FmSeedingWorkload loaded(preset);
    const RunResult a = runSystem(fetch, loaded, 0);
    const RunResult b = runSystem(ship, loaded, 0);
    EXPECT_LT(b.wire_bytes, a.wire_bytes)
        << "shipping the computation must shrink responses";
    EXPECT_EQ(a.tasks, b.tasks);
}

TEST(SystemBehaviour, PartitionCounts)
{
    NdpSystem medal(SystemParams::medal(), fmWorkload());
    EXPECT_EQ(medal.numPartitions(), 8u);
    NdpSystem beacon_d(SystemParams::beaconD(), fmWorkload());
    EXPECT_EQ(beacon_d.numPartitions(), 2u);
    NdpSystem beacon_s(SystemParams::beaconS(), fmWorkload());
    EXPECT_EQ(beacon_s.numPartitions(), 2u);
}

TEST(SystemBehaviour, StatsExposedThroughRegistry)
{
    NdpSystem system(SystemParams::beaconD(), fmWorkload());
    system.run(16);
    EXPECT_GT(system.stats().counterValue("ndp0.tasksCompleted"), 0);
    EXPECT_GT(system.stats().sumMatching("readsCompleted"), 0);
    EXPECT_GT(system.stats().counterValue("pool.messages"), 0);
}

TEST(Experiment, LaddersAreCumulative)
{
    const auto d_ladder = beaconDLadder(true);
    ASSERT_EQ(d_ladder.size(), 5u);
    EXPECT_FALSE(d_ladder[0].params.opts.data_packing);
    EXPECT_TRUE(d_ladder[1].params.opts.data_packing);
    EXPECT_FALSE(d_ladder[1].params.opts.mem_access_opt);
    EXPECT_TRUE(d_ladder[2].params.opts.mem_access_opt);
    EXPECT_TRUE(d_ladder[3].params.opts.placement_mapping);
    EXPECT_EQ(d_ladder[4].params.opts.coalesce_chips, 8u);
    EXPECT_EQ(d_ladder[4].params.name, "BEACON-D");

    const auto s_ladder = beaconSLadder(true);
    ASSERT_EQ(s_ladder.size(), 5u);
    EXPECT_TRUE(s_ladder[4].params.opts.kmc_single_pass);
    EXPECT_FALSE(s_ladder[3].params.opts.kmc_single_pass);

    const auto short_ladder = beaconDLadder(false);
    EXPECT_EQ(short_ladder.size(), 4u);
    EXPECT_EQ(short_ladder.back().params.name, "BEACON-D");
}

TEST(Experiment, FormatX)
{
    EXPECT_EQ(formatX(4.699), "4.70x");
    EXPECT_EQ(formatX(1.0), "1.00x");
}

} // namespace
} // namespace beacon
