/**
 * @file
 * Pre-alignment filter tests: the Shouji-style filter must never
 * reject a candidate whose true edit distance is within the
 * threshold (on substitution-dominated data) and must reject most
 * unrelated pairs; the banded edit distance is verified against full
 * dynamic programming.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "genomics/prealign.hh"

namespace beacon::genomics
{
namespace
{

DnaSequence
randomSeq(Rng &rng, std::size_t len)
{
    DnaSequence out;
    for (std::size_t i = 0; i < len; ++i)
        out.push_back(Base(rng.next(4)));
    return out;
}

DnaSequence
mutate(const DnaSequence &seq, Rng &rng, unsigned substitutions)
{
    std::string s = seq.str();
    for (unsigned i = 0; i < substitutions; ++i) {
        const std::size_t pos = rng.next(s.size());
        const Base old = baseFromChar(s[pos]);
        s[pos] = charFromBase(Base((old + 1 + rng.next(3)) & 3));
    }
    return DnaSequence(s);
}

unsigned
fullEditDistance(const DnaSequence &a, const DnaSequence &b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<unsigned> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = unsigned(j);
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = unsigned(i);
        for (std::size_t j = 1; j <= m; ++j) {
            const unsigned sub =
                prev[j - 1] + (a.at(i - 1) == b.at(j - 1) ? 0 : 1);
            cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
        }
        prev.swap(cur);
    }
    return prev[m];
}

TEST(BandedEditDistance, MatchesFullDpWithinBand)
{
    Rng rng(71);
    for (int trial = 0; trial < 100; ++trial) {
        const DnaSequence a = randomSeq(rng, 40);
        const DnaSequence b = mutate(a, rng, unsigned(rng.next(5)));
        const unsigned band = 6;
        const unsigned full = fullEditDistance(a, b);
        const unsigned banded = bandedEditDistance(a, b, band);
        if (full <= band)
            EXPECT_EQ(banded, full);
        else
            EXPECT_EQ(banded, band + 1);
    }
}

TEST(BandedEditDistance, IdenticalIsZero)
{
    Rng rng(5);
    const DnaSequence a = randomSeq(rng, 64);
    EXPECT_EQ(bandedEditDistance(a, a, 3), 0u);
}

TEST(BandedEditDistance, FarPairsSaturate)
{
    Rng rng(6);
    const DnaSequence a = randomSeq(rng, 64);
    const DnaSequence b = randomSeq(rng, 64);
    EXPECT_EQ(bandedEditDistance(a, b, 4), 5u);
}

class ShoujiTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ShoujiTest, NeverRejectsWithinThresholdSubstitutions)
{
    const unsigned threshold = GetParam();
    Rng rng(100 + threshold);
    for (int trial = 0; trial < 200; ++trial) {
        const DnaSequence read = randomSeq(rng, 100);
        const unsigned edits = unsigned(rng.next(threshold + 1));
        const DnaSequence window = mutate(read, rng, edits);
        const PrealignResult result =
            shoujiFilter(read, window, threshold);
        EXPECT_TRUE(result.accepted)
            << edits << " substitutions vs threshold " << threshold;
        EXPECT_LE(result.estimated_edits, threshold);
    }
}

TEST_P(ShoujiTest, RejectsMostRandomPairs)
{
    const unsigned threshold = GetParam();
    Rng rng(200 + threshold);
    int rejected = 0;
    const int trials = 200;
    for (int trial = 0; trial < trials; ++trial) {
        const DnaSequence read = randomSeq(rng, 100);
        const DnaSequence window = randomSeq(rng, 100);
        if (!shoujiFilter(read, window, threshold).accepted)
            ++rejected;
    }
    EXPECT_GT(rejected, trials * 8 / 10)
        << "filter should reject most unrelated candidates";
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ShoujiTest,
                         ::testing::Values(2u, 5u, 8u),
                         [](const auto &info) {
                             return "e" + std::to_string(info.param);
                         });

TEST(Shouji, EstimateLowerBoundsTrueDistance)
{
    // The zero-count construction is a lower bound on edits for
    // substitution-only pairs: estimated <= true edit count.
    Rng rng(17);
    for (int trial = 0; trial < 100; ++trial) {
        const DnaSequence read = randomSeq(rng, 80);
        const unsigned edits = unsigned(rng.next(10));
        const DnaSequence window = mutate(read, rng, edits);
        const PrealignResult r = shoujiFilter(read, window, 10);
        EXPECT_LE(r.estimated_edits, edits + 1)
            << "estimate should not wildly overshoot substitutions";
    }
}

TEST(Shouji, IdenticalPairEstimatesZero)
{
    Rng rng(18);
    const DnaSequence read = randomSeq(rng, 100);
    const PrealignResult r = shoujiFilter(read, read, 3);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.estimated_edits, 0u);
}

TEST(ShoujiDeath, MismatchedLengthsPanic)
{
    Rng rng(19);
    const DnaSequence a = randomSeq(rng, 10);
    const DnaSequence b = randomSeq(rng, 11);
    EXPECT_DEATH(shoujiFilter(a, b, 2), "length mismatch");
}

} // namespace
} // namespace beacon::genomics
