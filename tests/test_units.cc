/**
 * @file
 * Tests for the strong unit types (src/common/units.hh):
 * construction, explicit conversion, the allowed operator set, and —
 * via requires-expressions evaluated at compile time — the forbidden
 * operator set. The companion expected-failure harness
 * (tests/compile_fail/) proves the same negatives against the real
 * compiler driver, so a regression in either direction is caught.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_map>

#include "common/units.hh"

namespace beacon
{
namespace
{

// --- compile-time negative tests ------------------------------------
// A requires-expression is the static_assert-friendly way to show an
// expression does NOT compile: the assert fails (loudly, at compile
// time) the moment someone adds a converting constructor or a
// cross-unit operator.

template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };

template <class A, class B>
concept Subtractable = requires(A a, B b) { a - b; };

template <class A, class B>
concept Comparable = requires(A a, B b) { a < b; };

template <class A, class B>
concept Assignable = requires(A a, B b) { a = b; };

// Same-unit arithmetic stays available...
static_assert(Addable<Cycles, Cycles>);
static_assert(Addable<Bytes, Bytes>);
static_assert(Addable<Picojoules, Picojoules>);
static_assert(Subtractable<Bytes, Bytes>);
static_assert(Comparable<Cycles, Cycles>);

// ...but every cross-dimension combination is a compile error.
static_assert(!Addable<Cycles, Bytes>);
static_assert(!Addable<Bytes, Cycles>);
static_assert(!Addable<Cycles, Picojoules>);
static_assert(!Addable<Bytes, Picojoules>);
static_assert(!Subtractable<Cycles, Bytes>);
static_assert(!Comparable<Cycles, Bytes>);
static_assert(!Comparable<Bytes, Picojoules>);
static_assert(!Assignable<Cycles &, Bytes>);
static_assert(!Assignable<Bytes &, std::uint64_t>);

// Identifiers support no arithmetic at all, not even same-type.
static_assert(!Addable<RowId, RowId>);
static_assert(!Addable<TenantId, TenantId>);
static_assert(!Addable<TenantId, int>);
static_assert(!Subtractable<RowId, RowId>);
// ...and identifiers of different kinds never compare equal-typed.
static_assert(!Comparable<RowId, TenantId>);
static_assert(!Assignable<TenantId &, RowId>);
static_assert(!Assignable<RowId &, std::uint32_t>);

// Raw integers do not implicitly become quantities or identifiers.
static_assert(!std::is_convertible_v<std::uint64_t, Cycles>);
static_assert(!std::is_convertible_v<std::uint64_t, Bytes>);
static_assert(!std::is_convertible_v<double, Picojoules>);
static_assert(!std::is_convertible_v<std::uint32_t, RowId>);
static_assert(!std::is_convertible_v<std::uint32_t, TenantId>);
// ...and quantities do not implicitly decay back to integers.
static_assert(!std::is_convertible_v<Cycles, std::uint64_t>);
static_assert(!std::is_convertible_v<Bytes, std::uint64_t>);

// Explicit construction is the sanctioned way in.
static_assert(std::is_constructible_v<Cycles, std::uint64_t>);
static_assert(std::is_constructible_v<TenantId, std::uint32_t>);

// --- construction and explicit conversion ---------------------------

TEST(Units, DefaultConstructionIsZero)
{
    EXPECT_EQ(Cycles{}.value(), 0u);
    EXPECT_EQ(Bytes{}.value(), 0u);
    EXPECT_EQ(Picojoules{}.value(), 0.0);
    EXPECT_EQ(RowId{}.value(), 0u);
    EXPECT_EQ(TenantId{}, untenanted_id);
}

TEST(Units, ExplicitRoundTrip)
{
    const Cycles c{123};
    EXPECT_EQ(c.value(), 123u);
    const Bytes b{1ull << 40};
    EXPECT_EQ(b.value(), 1ull << 40);
    const Picojoules pj{2.5};
    EXPECT_DOUBLE_EQ(pj.value(), 2.5);
}

TEST(Units, ByteLiterals)
{
    EXPECT_EQ((4_KiB).value(), 4096u);
    EXPECT_EQ((2_MiB).value(), 2u << 20);
    EXPECT_EQ((64_GiB).value(), 64ull << 30);
}

// --- allowed operator set -------------------------------------------

TEST(Units, AdditiveArithmetic)
{
    Cycles c = Cycles{10} + Cycles{5};
    EXPECT_EQ(c, Cycles{15});
    c -= Cycles{5};
    EXPECT_EQ(c, Cycles{10});
    c += Cycles{1};
    EXPECT_EQ(c, Cycles{11});
    EXPECT_EQ(Bytes{64} - Bytes{16}, Bytes{48});
}

TEST(Units, ScalarScaling)
{
    EXPECT_EQ(Bytes{32} * 4, Bytes{128});
    EXPECT_EQ(4 * Bytes{32}, Bytes{128});
    EXPECT_EQ(Bytes{128} / 4, Bytes{32});
    EXPECT_DOUBLE_EQ((Picojoules{3} * 0.5).value(), 1.5);
}

TEST(Units, RatioIsDimensionless)
{
    const double r = ratio(Bytes{100}, Bytes{8});
    EXPECT_DOUBLE_EQ(r, 12.5);
    static_assert(
        std::is_same_v<decltype(ratio(Cycles{1}, Cycles{2})),
                       double>);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(Cycles{1}, Cycles{2});
    EXPECT_GE(Bytes{8}, Bytes{8});
    EXPECT_NE(TenantId{1}, TenantId{2});
    EXPECT_LT(RowId{7}, RowId{8}); // ordering for std::map keys
}

TEST(Units, StreamInsertionPrintsBareValue)
{
    // Golden JSON depends on this: promoting a field to a strong
    // type must not change a single emitted byte.
    std::ostringstream out;
    out << Cycles{42} << ' ' << Bytes{64} << ' ' << Picojoules{1.5}
        << ' ' << TenantId{3};
    EXPECT_EQ(out.str(), "42 64 1.5 3");
}

TEST(Units, IdentifiersHashAndKeyContainers)
{
    std::unordered_map<TenantId, int> per_tenant;
    per_tenant[TenantId{1}] = 10;
    per_tenant[TenantId{2}] = 20;
    EXPECT_EQ(per_tenant.at(TenantId{1}), 10);
    std::unordered_map<RowId, int> per_row;
    per_row[RowId{7}] = 1;
    EXPECT_EQ(per_row.count(RowId{8}), 0u);
}

// --- dimension crossings --------------------------------------------

TEST(Units, CyclesToTicksIsTheSanctionedCrossing)
{
    EXPECT_EQ(cyclesToTicks(Cycles{22}, 1250), 22u * 1250u);
    EXPECT_EQ(cyclesToTicks(Cycles{}, 1250), 0u);
}

TEST(Units, TransferTimeCrossesBytesToTicks)
{
    // 64 B at 64 GB/s = 1 ns = 1000 ps.
    EXPECT_EQ(transferTime(Bytes{64}, 64.0), 1000u);
}

// --- overflow-adjacent arithmetic -----------------------------------

TEST(Units, NearOverflowAdditionWrapsLikeRep)
{
    // Quantity arithmetic is defined on the underlying uint64_t, so
    // the wrap behaviour is the rep's — no UB, no silent promotion.
    const std::uint64_t big = ~std::uint64_t{0} - 1;
    const Bytes wrapped = Bytes{big} + Bytes{3};
    EXPECT_EQ(wrapped.value(), std::uint64_t{1});
    const Bytes underflow = Bytes{0} - Bytes{1};
    EXPECT_EQ(underflow.value(), ~std::uint64_t{0});
}

TEST(Units, LargeByteCapacitiesSurviveScaling)
{
    // A 64-DIMM x 256 GiB pool: 16 TiB fits comfortably.
    const Bytes pool = 256_GiB * 64;
    EXPECT_EQ(pool.value(), 16ull << 40);
    EXPECT_EQ(ratio(pool, 256_GiB), 64.0);
}

} // namespace
} // namespace beacon
