/**
 * @file
 * Tests for FASTA/FASTQ I/O and the SA-IS suffix-array construction
 * (cross-checked against the independent prefix-doubling oracle).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "genomics/io.hh"
#include "genomics/suffix_array.hh"

namespace beacon::genomics
{
namespace
{

// --- SA-IS ---

TEST(Sais, MatchesDoublingOnFixedStrings)
{
    for (const char *text :
         {"A", "AC", "ACGT", "AAAA", "ACACACAC", "GATTACA",
          "TTTTTTTTTA", "ACGTACGTACGTACGT"}) {
        const DnaSequence seq{std::string(text)};
        EXPECT_EQ(buildSuffixArray(seq),
                  buildSuffixArrayDoubling(seq))
            << text;
    }
}

TEST(Sais, MatchesDoublingOnRandomStrings)
{
    Rng rng(2025);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t len = 1 + rng.next(2000);
        DnaSequence seq;
        for (std::size_t i = 0; i < len; ++i)
            seq.push_back(Base(rng.next(4)));
        ASSERT_EQ(buildSuffixArray(seq),
                  buildSuffixArrayDoubling(seq))
            << "length " << len << " trial " << trial;
    }
}

TEST(Sais, MatchesDoublingOnRepeatHeavyGenome)
{
    GenomeParams params;
    params.length = 20000;
    params.repeat_fraction = 0.6;
    const DnaSequence genome = makeGenome(params);
    EXPECT_EQ(buildSuffixArray(genome),
              buildSuffixArrayDoubling(genome));
}

TEST(Sais, EmptySequence)
{
    const DnaSequence empty;
    const auto sa = buildSuffixArray(empty);
    ASSERT_EQ(sa.size(), 1u);
    EXPECT_EQ(sa[0], 0u);
}

// --- FASTA ---

TEST(Fasta, RoundTrip)
{
    std::vector<FastaRecord> records(2);
    records[0].name = "chr1 test";
    records[0].sequence = DnaSequence(std::string(200, 'A') + "CGT");
    records[1].name = "chr2";
    records[1].sequence = DnaSequence(std::string("GATTACA"));

    std::ostringstream out;
    writeFasta(out, records, 60);
    std::istringstream in(out.str());
    const auto parsed = parseFasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "chr1 test");
    EXPECT_TRUE(parsed[0].sequence == records[0].sequence);
    EXPECT_TRUE(parsed[1].sequence == records[1].sequence);
    EXPECT_EQ(parsed[0].substituted_bases, 0u);
}

TEST(Fasta, MultilineAndBlankLines)
{
    std::istringstream in(">r1\nACGT\n\nACGT\n>r2\n\nTTTT\n");
    const auto records = parseFasta(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].sequence.str(), "ACGTACGT");
    EXPECT_EQ(records[1].sequence.str(), "TTTT");
}

TEST(Fasta, AmbiguityCodesSubstitutedAndCounted)
{
    std::istringstream in(">r\nACGTNNRYACGT\n");
    const auto records = parseFasta(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence.size(), 12u);
    EXPECT_EQ(records[0].substituted_bases, 4u);
}

TEST(Fasta, LowercaseAccepted)
{
    std::istringstream in(">r\nacgt\n");
    EXPECT_EQ(parseFasta(in)[0].sequence.str(), "ACGT");
}

TEST(Fasta, RejectsLeadingSequence)
{
    std::istringstream in("ACGT\n>r\nACGT\n");
    EXPECT_THROW(parseFasta(in), std::runtime_error);
}

TEST(Fasta, RejectsGarbageSymbols)
{
    std::istringstream in(">r\nAC-GT\n");
    EXPECT_THROW(parseFasta(in), std::runtime_error);
}

TEST(Fasta, RejectsEmptyRecord)
{
    std::istringstream in(">r1\n>r2\nACGT\n");
    EXPECT_THROW(parseFasta(in), std::runtime_error);
}

// --- FASTQ ---

TEST(Fastq, RoundTrip)
{
    std::vector<FastqRecord> records(1);
    records[0].name = "read/1";
    records[0].sequence = DnaSequence(std::string("ACGTACGT"));
    records[0].quality = "IIIIIIII";

    std::ostringstream out;
    writeFastq(out, records);
    std::istringstream in(out.str());
    const auto parsed = parseFastq(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].name, "read/1");
    EXPECT_TRUE(parsed[0].sequence == records[0].sequence);
    EXPECT_EQ(parsed[0].quality, "IIIIIIII");
}

TEST(Fastq, MultipleRecords)
{
    std::istringstream in("@a\nACGT\n+\nIIII\n@b\nTT\n+anything\nII\n");
    const auto records = parseFastq(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].sequence.str(), "TT");
}

TEST(Fastq, SequencesOfHelper)
{
    std::istringstream in("@a\nACGT\n+\nIIII\n@b\nTT\n+\nII\n");
    const auto seqs = sequencesOf(parseFastq(in));
    ASSERT_EQ(seqs.size(), 2u);
    EXPECT_EQ(seqs[0].str(), "ACGT");
}

TEST(Fastq, RejectsQualityLengthMismatch)
{
    std::istringstream in("@a\nACGT\n+\nII\n");
    EXPECT_THROW(parseFastq(in), std::runtime_error);
}

TEST(Fastq, RejectsMissingSeparator)
{
    std::istringstream in("@a\nACGT\nIIII\n@b\n");
    EXPECT_THROW(parseFastq(in), std::runtime_error);
}

TEST(Fastq, RejectsTruncatedRecord)
{
    std::istringstream in("@a\nACGT\n+\n");
    EXPECT_THROW(parseFastq(in), std::runtime_error);
}

TEST(Fastq, CrLfTolerated)
{
    std::istringstream in("@a\r\nACGT\r\n+\r\nIIII\r\n");
    const auto records = parseFastq(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence.str(), "ACGT");
    EXPECT_EQ(records[0].quality, "IIII");
}

} // namespace
} // namespace beacon::genomics
