/**
 * @file
 * Tests for the CXL fabric substrate: bandwidth server occupancy,
 * links, the Data Packer, and PoolFabric routing (device vs host
 * bias, cross-switch paths, idealized mode).
 */

#include <gtest/gtest.h>

#include "cxl/bandwidth_server.hh"
#include "cxl/data_packer.hh"
#include "cxl/link.hh"
#include "cxl/pool.hh"

namespace beacon
{
namespace
{

TEST(BandwidthServer, SerialisesBackToBack)
{
    BandwidthServer server(32.0); // 32 GB/s
    const Tick end1 = server.accept(0, Bytes{64});
    EXPECT_EQ(end1, 2000u); // 64 B / 32 GB/s = 2 ns
    const Tick end2 = server.accept(0, Bytes{64});
    EXPECT_EQ(end2, 4000u); // queues behind the first
    const Tick end3 = server.accept(10000, Bytes{64});
    EXPECT_EQ(end3, 12000u); // idle gap then service
    EXPECT_EQ(server.totalBytes(), Bytes{192});
    EXPECT_EQ(server.totalTransfers(), 3u);
}

TEST(BandwidthServer, IdealModeIsInstant)
{
    BandwidthServer server(-1.0);
    EXPECT_TRUE(server.ideal());
    EXPECT_EQ(server.accept(123, Bytes{1 << 20}), 123u);
}

TEST(CxlLink, DirectionsAreIndependent)
{
    EventQueue eq;
    StatRegistry stats;
    LinkParams params{32.0, 25000, false};
    CxlLink link("link", eq, stats, params);

    Tick down_arrival = 0, up_arrival = 0;
    link.send(LinkDir::Downstream, Bytes{64},
              [&](Tick t) { down_arrival = t; });
    link.send(LinkDir::Upstream, Bytes{64},
              [&](Tick t) { up_arrival = t; });
    eq.run();
    // Both see serialisation (2 ns) + latency (25 ns), no queueing
    // across directions.
    EXPECT_EQ(down_arrival, 27000u);
    EXPECT_EQ(up_arrival, 27000u);
    EXPECT_EQ(link.totalBytes(), Bytes{128});
}

TEST(CxlLink, QueueingWithinDirection)
{
    EventQueue eq;
    StatRegistry stats;
    CxlLink link("link", eq, stats, LinkParams{32.0, 25000, false});
    Tick first = 0, second = 0;
    link.send(LinkDir::Downstream, Bytes{6400},
              [&](Tick t) { first = t; });
    link.send(LinkDir::Downstream, Bytes{64},
              [&](Tick t) { second = t; });
    eq.run();
    EXPECT_GT(second, first - 25000); // second waited for the first
    EXPECT_EQ(first, 200000u + 25000u);
}

TEST(DataPacker, DisabledSendsFullFlits)
{
    EventQueue eq;
    PackerParams params;
    params.enabled = false;
    std::uint64_t sent_bytes = 0;
    unsigned flushes = 0;
    DataPacker packer(eq, params,
                      [&](Bytes wire,
                          std::vector<DataPacker::Deliver> batch) {
                          sent_bytes += wire.value();
                          flushes += unsigned(batch.size());
                          for (auto &d : batch)
                              d(eq.now());
                      });
    int delivered = 0;
    for (int i = 0; i < 4; ++i)
        packer.submit(Bytes{8}, true, [&](Tick) { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 4);
    EXPECT_EQ(sent_bytes, 4u * 64u); // one flit each
}

TEST(DataPacker, PacksFineGrainedPayloads)
{
    EventQueue eq;
    PackerParams params; // enabled, 64 B flits, 4 B headers
    std::uint64_t sent_bytes = 0;
    DataPacker packer(eq, params,
                      [&](Bytes wire,
                          std::vector<DataPacker::Deliver> batch) {
                          sent_bytes += wire.value();
                          for (auto &d : batch)
                              d(eq.now());
                      });
    int delivered = 0;
    // 5 x (8+4) = 60 B staged; the 6th crosses 64 B and flushes.
    for (int i = 0; i < 6; ++i)
        packer.submit(Bytes{8}, true, [&](Tick) { ++delivered; });
    EXPECT_EQ(delivered, 6);
    EXPECT_EQ(sent_bytes, 128u); // 72 B rounded up to 2 flits
    EXPECT_EQ(packer.packedMessages(), 6u);
}

TEST(DataPacker, TimeoutFlushesPartialFlit)
{
    EventQueue eq;
    PackerParams params;
    std::uint64_t sent_bytes = 0;
    DataPacker packer(eq, params,
                      [&](Bytes wire,
                          std::vector<DataPacker::Deliver> batch) {
                          sent_bytes += wire.value();
                          for (auto &d : batch)
                              d(eq.now());
                      });
    Tick delivered_at = 0;
    packer.submit(Bytes{8}, true,
                  [&](Tick t) { delivered_at = t; });
    EXPECT_EQ(packer.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(delivered_at, params.flush_timeout);
    EXPECT_EQ(sent_bytes, 64u);
    EXPECT_EQ(packer.pendingCount(), 0u);
}

TEST(DataPacker, CoarsePayloadBypassesStaging)
{
    EventQueue eq;
    PackerParams params;
    std::uint64_t sent_bytes = 0;
    DataPacker packer(eq, params,
                      [&](Bytes wire,
                          std::vector<DataPacker::Deliver> batch) {
                          sent_bytes += wire.value();
                          for (auto &d : batch)
                              d(eq.now());
                      });
    int delivered = 0;
    packer.submit(Bytes{256}, false, [&](Tick) { ++delivered; });
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(sent_bytes, 320u); // 260 B framed -> 5 flits
    EXPECT_EQ(packer.unpackedMessages(), 1u);
}

struct PoolHarness
{
    EventQueue eq;
    StatRegistry stats;
    std::unique_ptr<PoolFabric> fabric;

    explicit PoolHarness(bool device_bias, bool packing = false,
                         bool ideal = false)
    {
        PoolParams params;
        params.num_switches = 2;
        params.dimms_per_switch = 4;
        params.device_bias = device_bias;
        params.packer.enabled = packing;
        params.ideal = ideal;
        fabric = std::make_unique<PoolFabric>("pool", eq, stats,
                                              params);
    }

    Tick
    roundTrip(NodeId a, NodeId b, Bytes bytes)
    {
        Tick arrive = 0;
        fabric->send(a, b, bytes, false,
                     [&](Tick t) { arrive = t; });
        eq.run();
        return arrive;
    }
};

TEST(PoolFabric, DeviceBiasSkipsHostForSameSwitch)
{
    PoolHarness biased(true);
    PoolHarness naive(false);
    const NodeId a = NodeId::dimmNode(0, 0);
    const NodeId b = NodeId::dimmNode(0, 1);
    const Tick t_biased = biased.roundTrip(a, b, Bytes{64});
    const Tick t_naive = naive.roundTrip(a, b, Bytes{64});
    EXPECT_LT(t_biased, t_naive);
    EXPECT_EQ(biased.fabric->hostLinkBytes(), Bytes{});
    EXPECT_GT(naive.fabric->hostLinkBytes(), Bytes{});
    EXPECT_EQ(biased.fabric->hostRoundTrips(), 0u);
    EXPECT_EQ(naive.fabric->hostRoundTrips(), 1u);
}

TEST(PoolFabric, CrossSwitchUsesHostLinksInBothModes)
{
    PoolHarness biased(true);
    const NodeId a = NodeId::dimmNode(0, 0);
    const NodeId b = NodeId::dimmNode(1, 2);
    biased.roundTrip(a, b, Bytes{64});
    EXPECT_GT(biased.fabric->hostLinkBytes(), Bytes{});
    // Device bias avoids the full coherence stall even cross-switch.
    EXPECT_EQ(biased.fabric->hostRoundTrips(), 0u);
}

TEST(PoolFabric, SwitchLogicPathsTouchOneBusOnly)
{
    PoolHarness h(true);
    const NodeId sw = NodeId::switchNode(0);
    const NodeId d = NodeId::dimmNode(0, 3);
    // 60 B payload + 4 B header = exactly one 64 B flit.
    h.roundTrip(sw, d, Bytes{60});
    EXPECT_EQ(h.fabric->switchBusBytes(), Bytes{64});
    EXPECT_EQ(h.fabric->dimmLinkBytes(), Bytes{64});
    EXPECT_EQ(h.fabric->hostLinkBytes(), Bytes{});
}

TEST(PoolFabric, SameSwitchDimmToDimmBusOnce)
{
    PoolHarness h(true);
    h.roundTrip(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                Bytes{60});
    EXPECT_EQ(h.fabric->switchBusBytes(), Bytes{64});
    EXPECT_EQ(h.fabric->dimmLinkBytes(), Bytes{128}); // up + down
}

TEST(PoolFabric, HostBiasSameSwitchBusTwice)
{
    PoolHarness h(false);
    h.roundTrip(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                Bytes{60});
    EXPECT_EQ(h.fabric->switchBusBytes(), Bytes{128});
    EXPECT_EQ(h.fabric->hostLinkBytes(), Bytes{128}); // up + down
}

TEST(PoolFabric, HostToDimmNeverCountsCoherenceTrip)
{
    PoolHarness h(false);
    h.roundTrip(NodeId::host(), NodeId::dimmNode(1, 1), Bytes{64});
    EXPECT_EQ(h.fabric->hostRoundTrips(), 0u);
    EXPECT_GT(h.fabric->hostLinkBytes(), Bytes{});
}

TEST(PoolFabric, IdealModeZeroLatency)
{
    PoolHarness h(false, false, true);
    const Tick t = h.roundTrip(NodeId::dimmNode(0, 0),
                               NodeId::dimmNode(1, 3), Bytes{4096});
    EXPECT_EQ(t, 0u);
}

TEST(PoolFabric, SelfSendDeliversImmediately)
{
    PoolHarness h(true);
    const Tick t = h.roundTrip(NodeId::dimmNode(0, 2),
                               NodeId::dimmNode(0, 2), Bytes{64});
    EXPECT_EQ(t, 0u);
    EXPECT_EQ(h.fabric->totalWireBytes(), Bytes{});
}

TEST(PoolFabric, PackingReducesWireBytes)
{
    PoolHarness packed(true, true);
    PoolHarness plain(true, false);
    const NodeId a = NodeId::dimmNode(0, 0);
    const NodeId b = NodeId::dimmNode(0, 1);
    int remaining = 2 * 16;
    for (int i = 0; i < 16; ++i) {
        packed.fabric->send(a, b, Bytes{8}, true,
                            [&](Tick) { --remaining; });
        plain.fabric->send(a, b, Bytes{8}, true,
                           [&](Tick) { --remaining; });
    }
    packed.eq.run();
    plain.eq.run();
    EXPECT_EQ(remaining, 0);
    EXPECT_LT(packed.fabric->totalWireBytes(),
              plain.fabric->totalWireBytes());
}

TEST(PoolFabric, PackerStreamsAreDestinationIsolated)
{
    // Payloads to different destinations must not share flits (a
    // packed flit travels one route); per-destination streams each
    // round up separately.
    PoolHarness h(true, true);
    const NodeId src = NodeId::dimmNode(0, 0);
    int remaining = 2;
    // Two 8 B payloads to two different DIMMs: 2 flits, not 1.
    h.fabric->send(src, NodeId::dimmNode(0, 1), Bytes{8}, true,
                   [&](Tick) { --remaining; });
    h.fabric->send(src, NodeId::dimmNode(0, 2), Bytes{8}, true,
                   [&](Tick) { --remaining; });
    h.eq.run();
    EXPECT_EQ(remaining, 0);
    EXPECT_EQ(h.fabric->dimmLinkBytes(), Bytes{4 * 64})
        << "one flit up + one down per destination stream";
}

TEST(PoolFabric, PackedBatchDeliversAllPayloadsTogether)
{
    PoolHarness h(true, true);
    const NodeId src = NodeId::dimmNode(0, 0);
    const NodeId dst = NodeId::dimmNode(0, 1);
    std::vector<Tick> arrivals;
    for (int i = 0; i < 5; ++i) {
        h.fabric->send(src, dst, Bytes{8}, true,
                       [&](Tick t) { arrivals.push_back(t); });
    }
    h.eq.run();
    ASSERT_EQ(arrivals.size(), 5u);
    for (Tick t : arrivals)
        EXPECT_EQ(t, arrivals.front())
            << "payloads sharing a flit arrive together";
}

TEST(DataPacker, PartialBatchDrainsWhenQueueRuns)
{
    EventQueue eq;
    PackerParams params; // enabled, 64 B flits, 4 B headers
    std::uint64_t sent_bytes = 0;
    DataPacker packer(eq, params,
                      [&](Bytes wire,
                          std::vector<DataPacker::Deliver> batch) {
                          sent_bytes += wire.value();
                          for (auto &d : batch)
                              d(eq.now());
                      });
    int delivered = 0;
    // 3 x (8+4) = 36 B stay below the 64 B flit boundary, so only
    // the flush timeout can move this batch.
    for (int i = 0; i < 3; ++i)
        packer.submit(Bytes{8}, true, [&](Tick) { ++delivered; });
    EXPECT_EQ(packer.pendingCount(), 3u);
    eq.run();
    EXPECT_EQ(delivered, 3);
    EXPECT_EQ(sent_bytes, 64u);
    EXPECT_EQ(packer.pendingCount(), 0u);
    EXPECT_EQ(packer.flitsFlushed(), 1u);
}

TEST(PoolFabricDeath, FinalizeCatchesStrandedPackerPayload)
{
    // Ending a run while a partially filled batch is still staged
    // (the event queue was never drained, so the flush timeout did
    // not fire) must be flagged, not silently dropped.
    PoolHarness h(true, /*packing=*/true);
    h.fabric->send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                   Bytes{8}, true, [](Tick) {});
    EXPECT_DEATH(h.fabric->finalizeCheck(), "stranded");
}

TEST(PoolFabric, FinalizePassesAfterQueueDrains)
{
    PoolHarness h(true, /*packing=*/true);
    int delivered = 0;
    h.fabric->send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                   Bytes{8}, true, [&](Tick) { ++delivered; });
    h.eq.run();
    EXPECT_EQ(delivered, 1);
    h.fabric->finalizeCheck(); // packers drained: no panic
}

TEST(NodeIdTest, KeysAndStrings)
{
    EXPECT_TRUE(NodeId::host().isHost());
    EXPECT_EQ(NodeId::dimmNode(1, 2).str(), "dimm1.2");
    EXPECT_EQ(NodeId::switchNode(3).str(), "switch3");
    EXPECT_NE(NodeId::dimmNode(0, 1).key(),
              NodeId::dimmNode(1, 0).key());
    EXPECT_NE(NodeId::switchNode(0).key(), NodeId::host().key());
    EXPECT_EQ(NodeId::dimmNode(2, 3), NodeId::dimmNode(2, 3));
}

} // namespace
} // namespace beacon
