/**
 * @file
 * Cross-workload protocol conformance: every workload's tasks must
 * (1) only touch data classes they declared, (2) stay within the
 * declared structure sizes, (3) finish without trailing operand
 * requests, and (4) be deterministic for a given (index, context).
 * Catching an out-of-bounds offset here is what keeps the address
 * mapping honest for every application at once.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "accel/extension_workloads.hh"
#include "accel/workload.hh"

namespace beacon
{
namespace
{

std::vector<std::unique_ptr<Workload>>
allWorkloads()
{
    std::vector<std::unique_ptr<Workload>> out;
    genomics::DatasetPreset preset = genomics::seedingPresets()[1];
    preset.genome.length = 1 << 14;
    preset.reads.num_reads = 24;
    out.push_back(std::make_unique<FmSeedingWorkload>(preset));
    out.push_back(std::make_unique<HashSeedingWorkload>(preset));
    genomics::DatasetPreset kp = genomics::kmerCountingPreset();
    kp.genome.length = 1 << 14;
    out.push_back(std::make_unique<KmerCountingWorkload>(
        kp, 21, 3, 1 << 12, 16));
    out.push_back(std::make_unique<PrealignWorkload>(preset));
    graph::GraphParams gp;
    gp.num_vertices = 1 << 10;
    out.push_back(
        std::make_unique<GraphBfsWorkload>(gp, 12, 64));
    out.push_back(
        std::make_unique<DbProbeWorkload>(1 << 10, 8, 12, 8));
    return out;
}

std::vector<WorkloadContext>
contextsFor(const Workload &workload)
{
    if (!workload.multiPassCapable())
        return {WorkloadContext{true, 0}};
    return {WorkloadContext{true, 0}, WorkloadContext{false, 0},
            WorkloadContext{false, 1}};
}

TEST(TaskProtocol, AccessesStayWithinDeclaredStructures)
{
    for (const auto &workload : allWorkloads()) {
        std::map<DataClass, std::uint64_t> declared;
        for (const StructureSpec &spec : workload->structures())
            declared[spec.cls] = spec.bytes.value();
        for (const WorkloadContext &ctx : contextsFor(*workload)) {
            for (std::size_t i = 0; i < workload->numTasks(); ++i) {
                TaskPtr task = workload->makeTask(i, ctx);
                for (int guard = 0; guard < 200000; ++guard) {
                    const TaskStep step = task->next();
                    for (const AccessRequest &a : step.accesses) {
                        auto it = declared.find(a.data_class);
                        ASSERT_NE(it, declared.end())
                            << workload->name()
                            << ": undeclared data class "
                            << unsigned(a.data_class);
                        EXPECT_LE(a.offset + a.bytes.value(),
                                  it->second)
                            << workload->name() << " task " << i
                            << " overruns class "
                            << unsigned(a.data_class);
                    }
                    if (step.done) {
                        EXPECT_TRUE(step.accesses.empty())
                            << workload->name();
                        break;
                    }
                    ASSERT_LT(guard, 199999)
                        << workload->name() << " task " << i
                        << " never finished";
                }
            }
        }
    }
}

TEST(TaskProtocol, WorkStepsChargeCompute)
{
    for (const auto &workload : allWorkloads()) {
        TaskPtr task =
            workload->makeTask(0, contextsFor(*workload).front());
        bool charged = false;
        for (int guard = 0; guard < 200000; ++guard) {
            const TaskStep step = task->next();
            charged |= step.compute_cycles > Cycles{};
            if (step.done)
                break;
        }
        EXPECT_TRUE(charged) << workload->name()
                             << " never charged PE cycles";
    }
}

TEST(TaskProtocol, TasksAreDeterministic)
{
    for (const auto &workload : allWorkloads()) {
        const WorkloadContext ctx = contextsFor(*workload).front();
        auto trace = [&](TaskPtr task) {
            std::vector<std::uint64_t> out;
            for (int guard = 0; guard < 200000; ++guard) {
                const TaskStep step = task->next();
                out.push_back(step.compute_cycles.value());
                for (const AccessRequest &a : step.accesses)
                    out.push_back(a.offset ^
                                  (a.bytes.value() << 48));
                if (step.done)
                    break;
            }
            return out;
        };
        EXPECT_EQ(trace(workload->makeTask(3, ctx)),
                  trace(workload->makeTask(3, ctx)))
            << workload->name();
    }
}

TEST(TaskProtocol, FootprintConsistentWithStructures)
{
    // Total bytes accessed can exceed structure sizes (re-reads),
    // but every workload must actually exercise its structures.
    for (const auto &workload : allWorkloads()) {
        const WorkloadFootprint fp = measureFootprint(
            *workload, contextsFor(*workload).front());
        EXPECT_GT(fp.accesses, 0u) << workload->name();
        EXPECT_GT(fp.compute_cycles, Cycles{}) << workload->name();
        EXPECT_EQ(fp.tasks, workload->numTasks());
    }
}

} // namespace
} // namespace beacon
