/**
 * @file
 * Shared golden-file comparison for determinism-gate tests.
 *
 * String tokens must match exactly; numeric tokens compare exactly
 * when both are integers and to 1e-9 relative tolerance otherwise
 * (tolerating residual libm variance across toolchains — the build
 * compiles with -ffp-contract=off so FMA contraction cannot move
 * results between build types).
 *
 * Goldens live in the source tree (BEACON_GOLDEN_DIR) so that
 * BEACON_UPDATE_GOLDEN=1 regenerates them in place.
 */

#ifndef BEACON_TESTS_GOLDEN_COMPARE_HH
#define BEACON_TESTS_GOLDEN_COMPARE_HH

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef BEACON_GOLDEN_DIR
#error "BEACON_GOLDEN_DIR must point at tests/golden"
#endif

namespace beacon::golden
{

inline std::string
goldenPath(const std::string &name)
{
    return std::string(BEACON_GOLDEN_DIR) + "/" + name;
}

inline bool
updateGoldens()
{
    const char *env = std::getenv("BEACON_UPDATE_GOLDEN");
    return env && env[0] && env[0] != '0';
}

// ---------------------------------------------------------------
// Numeric-tolerant comparison
// ---------------------------------------------------------------

inline bool
numberStartsAt(const std::string &s, std::size_t i)
{
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c)))
        return true;
    return c == '-' && i + 1 < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[i + 1]));
}

inline bool
isIntegerToken(const std::string &token)
{
    return token.find_first_of(".eE") == std::string::npos;
}

/**
 * Compare two JSON strings: non-numeric characters byte-for-byte,
 * numbers exactly when both tokens are integers, else to 1e-9
 * relative tolerance.
 */
inline void
expectJsonNear(const std::string &got, const std::string &want,
               const std::string &name)
{
    std::size_t i = 0, j = 0, numbers = 0;
    while (i < got.size() && j < want.size()) {
        if (numberStartsAt(got, i) && numberStartsAt(want, j)) {
            std::size_t ni = 0, nj = 0;
            const double a = std::stod(got.substr(i, 40), &ni);
            const double b = std::stod(want.substr(j, 40), &nj);
            const std::string ta = got.substr(i, ni);
            const std::string tb = want.substr(j, nj);
            if (isIntegerToken(ta) && isIntegerToken(tb)) {
                ASSERT_EQ(a, b)
                    << name << ": integer stat drifted near offset "
                    << i << " ('" << ta << "' vs golden '" << tb
                    << "')";
            } else {
                const double tol =
                    1e-9 * std::max(std::abs(a), std::abs(b));
                ASSERT_LE(std::abs(a - b), tol)
                    << name << ": stat drifted near offset " << i
                    << " ('" << ta << "' vs golden '" << tb << "')";
            }
            i += ni;
            j += nj;
            ++numbers;
        } else {
            ASSERT_EQ(got[i], want[j])
                << name << ": structural mismatch at offset " << i
                << "\ngot:    ..."
                << got.substr(i > 20 ? i - 20 : 0, 60)
                << "\ngolden: ..."
                << want.substr(j > 20 ? j - 20 : 0, 60);
            ++i;
            ++j;
        }
    }
    EXPECT_EQ(i, got.size()) << name << ": trailing output";
    EXPECT_EQ(j, want.size()) << name << ": golden has more content";
    EXPECT_GT(numbers, 0u) << name << ": no numbers compared";
}

/**
 * Compare @p got against the checked-in golden @p file, or rewrite
 * the golden in place under BEACON_UPDATE_GOLDEN=1.
 */
inline void
checkGoldenString(const std::string &got, const std::string &file)
{
    const std::string path = goldenPath(file);
    if (updateGoldens()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << got;
        std::printf("updated golden %s\n", path.c_str());
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " — regenerate with BEACON_UPDATE_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    expectJsonNear(got, want.str(), file);
}

} // namespace beacon::golden

#endif // BEACON_TESTS_GOLDEN_COMPARE_HH
