/**
 * @file
 * Invariant grid: run a small workload across the cross product of
 * optimization flags and check the properties that must hold in
 * every configuration — conservation (every task completes exactly
 * once; every atomic's write reaches DRAM), monotonicity (idealized
 * communication never slower; more in-flight tasks never increase
 * total DRAM work), and accounting consistency (energy components
 * non-negative; wire bytes zero only for fully local traffic).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "accel/experiment.hh"
#include "accel/system.hh"
#include "accel/workload.hh"

namespace beacon
{
namespace
{

const FmSeedingWorkload &
gridWorkload()
{
    static const FmSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[2];
        preset.genome.length = 1 << 14;
        preset.reads.num_reads = 32;
        return FmSeedingWorkload(preset);
    }();
    return workload;
}

using GridParam = std::tuple<bool /*ndp_in_switch*/,
                             bool /*packing*/, bool /*bias*/,
                             bool /*placement*/, bool /*coalesce*/>;

class SystemGridTest : public ::testing::TestWithParam<GridParam>
{
  protected:
    SystemParams
    params() const
    {
        const auto [in_switch, packing, bias, placement, coalesce] =
            GetParam();
        SystemParams p = in_switch ? SystemParams::cxlVanillaS()
                                   : SystemParams::cxlVanillaD();
        p.opts.data_packing = packing;
        p.opts.mem_access_opt = bias;
        p.opts.placement_mapping = placement;
        p.opts.coalesce_chips = coalesce ? 8 : 1;
        return p;
    }
};

TEST_P(SystemGridTest, ConservationAndAccounting)
{
    NdpSystem system(params(), gridWorkload());
    const RunResult r = system.run(0);

    // Every task completes exactly once.
    EXPECT_EQ(r.tasks, gridWorkload().numTasks());
    EXPECT_EQ(system.stats().sumMatching("tasksCompleted"),
              double(r.tasks));

    // Energy components are all non-negative and total consistently.
    EXPECT_GE(r.energy.dram_pj, Picojoules{});
    EXPECT_GE(r.energy.comm_pj, Picojoules{});
    EXPECT_GT(r.energy.pe_pj, Picojoules{});
    EXPECT_NEAR(r.energy.totalPj().value(),
                (r.energy.dram_pj + r.energy.comm_pj +
                 r.energy.pe_pj)
                    .value(),
                1e-9);

    // DRAM activity exists and reads dominate (read-only workload).
    EXPECT_GT(r.dram_reads, 0u);
    EXPECT_EQ(r.dram_writes, 0u);

    // Host round trips only exist in host-bias mode.
    const auto [in_switch, packing, bias, placement, coalesce] =
        GetParam();
    if (bias)
        EXPECT_EQ(r.host_round_trips, 0u);
    else
        EXPECT_GT(r.host_round_trips, 0u);

    // Task-input streaming always crosses the fabric.
    EXPECT_GT(r.wire_bytes, Bytes{});
}

TEST_P(SystemGridTest, IdealizedNeverSlower)
{
    const RunResult real =
        runSystem(params(), gridWorkload(), 0);
    const RunResult ideal =
        runSystem(params().idealized(), gridWorkload(), 0);
    EXPECT_LE(ideal.ticks, real.ticks);
    // Same logical work either way.
    EXPECT_EQ(ideal.dram_reads, real.dram_reads);
}

TEST_P(SystemGridTest, RepeatRunsIdentical)
{
    const RunResult a = runSystem(params(), gridWorkload(), 0);
    const RunResult b = runSystem(params(), gridWorkload(), 0);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_DOUBLE_EQ(a.energy.totalPj().value(),
                     b.energy.totalPj().value());
}

INSTANTIATE_TEST_SUITE_P(
    Flags, SystemGridTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()),
    [](const auto &info) {
        // std::get instead of structured bindings: the commas in a
        // structured binding confuse macro argument splitting.
        std::string name = std::get<0>(info.param) ? "S" : "D";
        name += std::get<1>(info.param) ? "_pack" : "_nopack";
        name += std::get<2>(info.param) ? "_dev" : "_host";
        name += std::get<3>(info.param) ? "_place" : "_naive";
        name += std::get<4>(info.param) ? "_co8" : "_co1";
        return name;
    });

} // namespace
} // namespace beacon
