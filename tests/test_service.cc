/**
 * @file
 * Multi-tenant service tests: scheduler policy behavior, orchestrator
 * admission control, per-tenant stat conservation against the
 * untagged machine totals (with every checker armed), and
 * determinism of the service report.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/system.hh"
#include "accel/workload.hh"
#include "check/checker_config.hh"
#include "service/orchestrator.hh"

namespace beacon
{
namespace
{

// ---------------------------------------------------------------
// Scheduler unit tests
// ---------------------------------------------------------------

SchedCandidate
candidate(unsigned tenant, std::uint64_t head_seq,
          unsigned priority, double weight)
{
    SchedCandidate c;
    c.tenant = TenantId{tenant};
    c.head_seq = head_seq;
    c.priority = priority;
    c.weight = weight;
    return c;
}

TEST(Scheduler, FcfsPicksOldestHead)
{
    auto sched = makeScheduler(SchedulerKind::Fcfs);
    const std::vector<SchedCandidate> ready = {
        candidate(1, 7, 0, 1), candidate(2, 3, 5, 1),
        candidate(3, 9, 9, 1)};
    EXPECT_EQ(sched->pick(ready), TenantId{2}) << "ignores priority";
}

TEST(Scheduler, PriorityPicksHighestThenOldest)
{
    auto sched = makeScheduler(SchedulerKind::Priority);
    const std::vector<SchedCandidate> ready = {
        candidate(1, 1, 0, 1), candidate(2, 8, 4, 1),
        candidate(3, 5, 4, 1)};
    EXPECT_EQ(sched->pick(ready), TenantId{3})
        << "highest priority, ties broken by arrival";
}

TEST(Scheduler, FairShareFollowsWeights)
{
    auto sched = makeScheduler(SchedulerKind::FairShare);
    const std::vector<SchedCandidate> ready = {
        candidate(1, 0, 0, 3.0), candidate(2, 1, 0, 1.0)};
    unsigned picks_heavy = 0;
    for (int i = 0; i < 40; ++i) {
        const TenantId picked = sched->pick(ready);
        if (picked == TenantId{1})
            ++picks_heavy;
        for (const SchedCandidate &c : ready)
            if (c.tenant == picked)
                sched->onDispatch(c, 100.0);
    }
    EXPECT_EQ(picks_heavy, 30u)
        << "weight 3 tenant gets 3/4 of the slots";
}

TEST(Scheduler, FairShareIdleTenantDoesNotBankCredit)
{
    auto sched = makeScheduler(SchedulerKind::FairShare);
    const SchedCandidate busy = candidate(1, 0, 0, 1.0);
    const SchedCandidate idle = candidate(2, 1, 0, 1.0);
    // Tenant 1 runs alone for a while (each dispatch goes through
    // pick(), as the orchestrator's dispatch loop does).
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(sched->pick({busy}), TenantId{1});
        sched->onDispatch(busy, 100.0);
    }
    // When tenant 2 shows up, its virtual clock jumps to the floor:
    // it may not monopolise the machine to "catch up".
    unsigned picks_idle = 0;
    for (int i = 0; i < 10; ++i) {
        const TenantId picked = sched->pick({busy, idle});
        if (picked == TenantId{2})
            ++picks_idle;
        sched->onDispatch(picked == TenantId{1} ? busy : idle,
                          100.0);
    }
    EXPECT_LE(picks_idle, 6u) << "no banked backlog burst";
    EXPECT_GE(picks_idle, 4u) << "still gets its fair half";
}

// ---------------------------------------------------------------
// Orchestrator integration
// ---------------------------------------------------------------

genomics::DatasetPreset
tinyPreset(std::size_t genome, std::size_t reads)
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[3];
    preset.genome.length = genome;
    preset.reads.num_reads = reads;
    return preset;
}

/** A narrow machine so tenants actually contend for slots. */
SystemParams
serviceParams()
{
    SystemParams params = SystemParams::beaconD();
    params.name = "service-test";
    params.pes_per_module = 4;
    params.max_inflight_tasks = 2;
    params.checkers = CheckerConfig::all();
    return params;
}

TenantSpec
bulkSpec(const Workload &workload)
{
    TenantSpec spec;
    spec.name = "bulk";
    spec.workload = &workload;
    spec.num_jobs = 6;
    spec.tasks_per_job = 4;
    spec.weight = 1.0;
    spec.scratch_bytes_per_job = Bytes{1 << 20};
    spec.arrival.concurrency = 3;
    return spec;
}

TenantSpec
smallTenantSpec(const Workload &workload)
{
    TenantSpec spec;
    spec.name = "small";
    spec.workload = &workload;
    spec.num_jobs = 4;
    spec.tasks_per_job = 2;
    spec.priority = 1;
    spec.weight = 4.0;
    spec.arrival.concurrency = 1;
    return spec;
}

ServiceReport
runMix(SchedulerKind policy, const Workload &bulk,
       const Workload &small)
{
    NdpSystem system(serviceParams());
    OrchestratorParams params;
    params.scheduler = policy;
    PoolOrchestrator orchestrator(system, params);
    EXPECT_NE(orchestrator.addTenant(bulkSpec(bulk)),
              untenanted_id)
        << orchestrator.lastError();
    EXPECT_NE(orchestrator.addTenant(smallTenantSpec(small)),
              untenanted_id)
        << orchestrator.lastError();
    return orchestrator.run();
}

TEST(Orchestrator, ConservationAcrossTenantsWithCheckersArmed)
{
    const FmSeedingWorkload bulk(tinyPreset(1 << 13, 16));
    const HashSeedingWorkload small(tinyPreset(1 << 12, 8));

    NdpSystem system(serviceParams());
    OrchestratorParams params;
    params.scheduler = SchedulerKind::FairShare;
    PoolOrchestrator orchestrator(system, params);
    ASSERT_NE(orchestrator.addTenant(bulkSpec(bulk)),
              untenanted_id);
    ASSERT_NE(orchestrator.addTenant(smallTenantSpec(small)),
              untenanted_id);
    const ServiceReport report = orchestrator.run();

    // The orchestrator already self-checks; re-derive the sums here
    // so a silently skipped internal check cannot hide a drift.
    const StatRegistry &reg = system.stats();
    // DRAM sums span the whole counter family: the lane-0 host
    // counter plus the partition twins ("system.part<p>.*") the
    // CXLG-DIMM lanes write for themselves.
    double fabric = reg.sumMatching("tenant0.usefulBytes");
    double pe = reg.sumMatching("tenant0.peBusyTicks");
    double dram = reg.sumMatching("tenant0.dramBytes");
    for (unsigned id = 1; id <= 2; ++id) {
        const std::string tag = "tenant" + std::to_string(id);
        fabric += reg.sumMatching(tag + ".usefulBytes");
        pe += reg.sumMatching(tag + ".peBusyTicks");
        dram += reg.sumMatching(tag + ".dramBytes");
    }
    EXPECT_DOUBLE_EQ(fabric, reg.sumMatching("usefulBytesTotal"));
    EXPECT_DOUBLE_EQ(pe, reg.sumMatching("peBusyTotalTicks"));
    EXPECT_DOUBLE_EQ(dram, reg.sumMatching("dramBytesTotal"));

    // Energy attribution never exceeds the machine total.
    double tenant_energy = 0;
    for (const TenantReport &tenant : report.tenants)
        tenant_energy += tenant.energy_pj.value();
    EXPECT_LE(tenant_energy,
              report.machine.energy.totalPj().value() + 1e-6);
}

TEST(Orchestrator, EveryTenantCompletesItsJobs)
{
    const FmSeedingWorkload bulk(tinyPreset(1 << 13, 16));
    const HashSeedingWorkload small(tinyPreset(1 << 12, 8));
    for (SchedulerKind policy :
         {SchedulerKind::Fcfs, SchedulerKind::Priority,
          SchedulerKind::FairShare}) {
        const ServiceReport report = runMix(policy, bulk, small);
        ASSERT_EQ(report.tenants.size(), 2u);
        EXPECT_EQ(report.tenants[0].jobs_completed, 6u);
        EXPECT_EQ(report.tenants[1].jobs_completed, 4u);
        EXPECT_EQ(report.tenants[0].jobs_rejected, 0u);
        EXPECT_GT(report.tenants[1].p99_latency_ms, 0.0);
        EXPECT_GE(report.tenants[1].p99_latency_ms,
                  report.tenants[1].p50_latency_ms);
    }
}

TEST(Orchestrator, PriorityAndFairShareProtectSmallTenant)
{
    const FmSeedingWorkload bulk(tinyPreset(1 << 13, 16));
    const HashSeedingWorkload small(tinyPreset(1 << 12, 8));
    const double fcfs_p99 =
        runMix(SchedulerKind::Fcfs, bulk, small)
            .tenants[1]
            .p99_latency_ms;
    const double prio_p99 =
        runMix(SchedulerKind::Priority, bulk, small)
            .tenants[1]
            .p99_latency_ms;
    const double fair_p99 =
        runMix(SchedulerKind::FairShare, bulk, small)
            .tenants[1]
            .p99_latency_ms;
    // Under FCFS the bulk tenant's queued tasks sit in front of the
    // small tenant's; both QoS policies bound that inflation.
    EXPECT_LT(prio_p99, fcfs_p99);
    EXPECT_LT(fair_p99, fcfs_p99);
}

TEST(Orchestrator, ServiceReportIsDeterministic)
{
    const FmSeedingWorkload bulk(tinyPreset(1 << 13, 16));
    const HashSeedingWorkload small(tinyPreset(1 << 12, 8));
    const ServiceReport a =
        runMix(SchedulerKind::FairShare, bulk, small);
    const ServiceReport b =
        runMix(SchedulerKind::FairShare, bulk, small);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    EXPECT_EQ(a.machine.ticks, b.machine.ticks);
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].p50_latency_ms,
                  b.tenants[i].p50_latency_ms);
        EXPECT_EQ(a.tenants[i].p99_latency_ms,
                  b.tenants[i].p99_latency_ms);
        EXPECT_EQ(a.tenants[i].energy_pj, b.tenants[i].energy_pj);
        EXPECT_EQ(a.tenants[i].dram_bytes, b.tenants[i].dram_bytes);
    }
}

// ---------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------

/** A workload whose only purpose is its memory quota. */
class QuotaWorkload : public Workload
{
  public:
    explicit QuotaWorkload(std::uint64_t bytes) : bytes(bytes) {}

    const std::string &name() const override { return name_; }
    EngineKind engine() const override { return EngineKind::FmIndex; }

    std::vector<StructureSpec>
    structures() const override
    {
        StructureSpec spec;
        spec.cls = DataClass::FmOcc;
        spec.bytes = Bytes{bytes};
        spec.read_only = true;
        spec.access_granule = 32;
        return {spec};
    }

    std::size_t numTasks() const override { return 1; }

    TaskPtr
    makeTask(std::size_t, const WorkloadContext &) const override
    {
        return nullptr; // admission-only workload; never dispatched
    }

  private:
    std::string name_ = "quota";
    std::uint64_t bytes;
};

TEST(Orchestrator, ZeroQuotaTenantRejectedAtAdmission)
{
    NdpSystem system(serviceParams());
    PoolOrchestrator orchestrator(system, {});
    const QuotaWorkload empty(0);
    TenantSpec spec;
    spec.name = "empty";
    spec.workload = &empty;
    EXPECT_EQ(orchestrator.addTenant(spec), untenanted_id);
    EXPECT_NE(orchestrator.lastError().find("no quota"),
              std::string::npos);
}

TEST(Orchestrator, OversizedTenantRejectedAtAdmission)
{
    NdpSystem system(serviceParams());
    PoolOrchestrator orchestrator(system, {});
    const QuotaWorkload huge(1ull << 50);
    TenantSpec spec;
    spec.name = "huge";
    spec.workload = &huge;
    EXPECT_EQ(orchestrator.addTenant(spec), untenanted_id);
    EXPECT_NE(orchestrator.lastError().find("capacity"),
              std::string::npos);
}

TEST(Orchestrator, OversizedScratchRejectsJobsNotTheRun)
{
    const FmSeedingWorkload workload(tinyPreset(1 << 13, 16));
    NdpSystem system(serviceParams());
    PoolOrchestrator orchestrator(system, {});
    TenantSpec spec = bulkSpec(workload);
    // A per-job scratch no DIMM can ever satisfy: every job is
    // rejected as a permanent failure, but the run still terminates.
    spec.scratch_bytes_per_job = Bytes{1ull << 50};
    ASSERT_NE(orchestrator.addTenant(spec), untenanted_id)
        << orchestrator.lastError();
    const ServiceReport report = orchestrator.run();
    EXPECT_EQ(report.tenants[0].jobs_completed, 0u);
    EXPECT_EQ(report.tenants[0].jobs_rejected, 6u);
}

TEST(Orchestrator, ScratchReleasedAfterRun)
{
    const FmSeedingWorkload workload(tinyPreset(1 << 13, 16));
    NdpSystem system(serviceParams());
    PoolOrchestrator orchestrator(system, {});
    ASSERT_NE(orchestrator.addTenant(bulkSpec(workload)),
              untenanted_id);
    // Tenant structures stay resident; job scratch must not.
    const Bytes free_after_admission =
        system.memoryFramework().poolFreeBytes();
    orchestrator.run();
    EXPECT_EQ(system.memoryFramework().poolFreeBytes(),
              free_after_admission);
}

TEST(Orchestrator, OpenPoissonArrivalsAllComplete)
{
    const HashSeedingWorkload workload(tinyPreset(1 << 12, 8));
    NdpSystem system(serviceParams());
    OrchestratorParams params;
    params.seed = 42;
    PoolOrchestrator orchestrator(system, params);
    TenantSpec spec = smallTenantSpec(workload);
    spec.arrival.kind = ArrivalKind::OpenPoisson;
    spec.arrival.jobs_per_second = 1e6; // ~1 us mean gap
    spec.num_jobs = 8;
    ASSERT_NE(orchestrator.addTenant(spec), untenanted_id)
        << orchestrator.lastError();
    const ServiceReport report = orchestrator.run();
    EXPECT_EQ(report.tenants[0].jobs_completed, 8u);
    EXPECT_GT(report.machine.ticks, 0u);
}

} // namespace
} // namespace beacon
