/**
 * @file
 * Topology fuzzing: the presets cover the paper's configuration;
 * this suite sweeps irregular pool shapes (1..3 switches, 1..4
 * DIMMs each, varying CXLG placement and PE counts) and checks that
 * every machine still completes its workload, conserves tasks, and
 * stays deterministic. Guards the system-composition code against
 * assumptions that only hold for the 2x4 preset.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "accel/experiment.hh"
#include "accel/sweep.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "check/checker_config.hh"
#include "common/rng.hh"
#include "rack/system.hh"

namespace beacon
{
namespace
{

const FmSeedingWorkload &
fuzzWorkload()
{
    static const FmSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[3];
        preset.genome.length = 1 << 13;
        preset.reads.num_reads = 16;
        return FmSeedingWorkload(preset);
    }();
    return workload;
}

SystemParams
randomPool(Rng &rng)
{
    SystemParams p = SystemParams::cxlVanillaD();
    p.num_groups = 1 + unsigned(rng.next(3));
    p.dimms_per_group = 1 + unsigned(rng.next(4));
    p.pool.num_switches = p.num_groups;
    p.pool.dimms_per_switch = p.dimms_per_group;

    const bool in_switch = rng.chance(0.4);
    p.ndp_in_switch = in_switch;
    p.cxlg_dimms.clear();
    if (!in_switch) {
        // One CXLG-DIMM per switch, at a random slot.
        for (unsigned s = 0; s < p.num_groups; ++s) {
            p.cxlg_dimms.push_back(
                s * p.dimms_per_group +
                unsigned(rng.next(p.dimms_per_group)));
        }
    }
    p.pes_per_module = 8u << rng.next(4); // 8..64
    p.max_inflight_tasks = 32u << rng.next(3);

    p.opts.data_packing = rng.chance(0.5);
    p.opts.mem_access_opt = rng.chance(0.5);
    p.opts.placement_mapping = rng.chance(0.5);
    p.opts.coalesce_chips = 1u << rng.next(4); // 1..8 (or 16)
    p.opts.kmc_single_pass = true;
    p.name = "fuzz";
    // Fuzzing is the validation harness: every run is shadow-checked
    // (DRAM protocol, link FIFO/bandwidth, NDP accounting).
    p.checkers = CheckerConfig::all();
    return p;
}

SystemParams
randomDdr(Rng &rng)
{
    SystemParams p = SystemParams::medal();
    p.num_groups = 1 + unsigned(rng.next(4));
    p.dimms_per_group = 1 + unsigned(rng.next(3));
    p.ddr.num_channels = p.num_groups;
    p.ddr.dimms_per_channel = p.dimms_per_group;
    p.cxlg_dimms.clear();
    for (unsigned d = 0; d < p.num_groups * p.dimms_per_group; ++d)
        p.cxlg_dimms.push_back(d);
    p.pes_per_module = 8u << rng.next(3);
    p.name = "fuzz-ddr";
    p.checkers = CheckerConfig::all();
    return p;
}

class TopologyFuzzTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TopologyFuzzTest, PoolShapeCompletesAndConserves)
{
    Rng rng(1000 + GetParam());
    const SystemParams params = randomPool(rng);
    NdpSystem system(params, fuzzWorkload());
    const RunResult r = system.run(0);
    EXPECT_EQ(r.tasks, fuzzWorkload().numTasks());
    EXPECT_GT(r.dram_reads, 0u);
    EXPECT_GT(r.energy.totalPj(), Picojoules{});
}

TEST_P(TopologyFuzzTest, PoolShapeDeterministic)
{
    Rng rng(2000 + GetParam());
    const SystemParams params = randomPool(rng);
    const RunResult a = runSystem(params, fuzzWorkload(), 8);
    const RunResult b = runSystem(params, fuzzWorkload(), 8);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
}

TEST_P(TopologyFuzzTest, DdrShapeCompletes)
{
    Rng rng(3000 + GetParam());
    const SystemParams params = randomDdr(rng);
    NdpSystem system(params, fuzzWorkload());
    const RunResult r = system.run(0);
    EXPECT_EQ(r.tasks, fuzzWorkload().numTasks());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyFuzzTest,
                         ::testing::Range(0u, 8u),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

/**
 * Sweep @p count random topologies through a SweepRunner with
 * @p workers workers. Each job draws its pool shape from the
 * runner-provided per-index Rng stream, so the sampled topologies —
 * not just their results — must be identical across worker counts.
 */
std::vector<SweepOutcome>
fuzzSweep(unsigned workers, unsigned count)
{
    SweepRunner runner(workers, /*base_seed=*/0xF022ull);
    for (unsigned i = 0; i < count; ++i)
        runner.enqueue(
            {"fuzz", "topo" + std::to_string(i)},
            [](RunContext &ctx) {
                const SystemParams params = randomPool(ctx.rng);
                SweepOutcome out;
                NdpSystem system(params, fuzzWorkload());
                out.result = system.run(8);
                out.stats.emplace_back(
                    "groups", double(params.num_groups));
                out.stats.emplace_back(
                    "dimms", double(params.dimms_per_group));
                return out;
            });
    return runner.run();
}

TEST(SweepDeterminismTest, SerialAndParallelSweepsAreBitIdentical)
{
    // The determinism property behind the bench harnesses: the same
    // base seed produces bit-identical RunResults (checkers armed)
    // whether the sweep runs on one worker or eight.
    const auto serial = fuzzSweep(1, 10);
    const auto parallel = fuzzSweep(8, 10);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        const RunResult &a = serial[i].result;
        const RunResult &b = parallel[i].result;
        EXPECT_EQ(serial[i].stats, parallel[i].stats);
        EXPECT_EQ(a.ticks, b.ticks);
        EXPECT_EQ(a.tasks, b.tasks);
        EXPECT_EQ(a.wire_bytes, b.wire_bytes);
        EXPECT_EQ(a.host_round_trips, b.host_round_trips);
        EXPECT_EQ(a.dram_reads, b.dram_reads);
        EXPECT_EQ(a.dram_writes, b.dram_writes);
        EXPECT_EQ(a.energy.dram_pj, b.energy.dram_pj);
        EXPECT_EQ(a.energy.comm_pj, b.energy.comm_pj);
        EXPECT_EQ(a.energy.pe_pj, b.energy.pe_pj);
        EXPECT_EQ(a.chip_accesses, b.chip_accesses);
        EXPECT_EQ(a.chip_access_cov, b.chip_access_cov);
    }

    // And the serialised form is byte-identical too.
    SweepReport ra, rb;
    ra.harness = rb.harness = "fuzz_sweep";
    ra.add(serial);
    rb.add(parallel);
    EXPECT_EQ(sweepJsonString(ra, /*include_runtime=*/false),
              sweepJsonString(rb, /*include_runtime=*/false));
}

// ---------------------------------------------------------------
// Serial-vs-sharded differential oracle
// ---------------------------------------------------------------

/**
 * The sharded engine's contract is bit-identity with the legacy
 * serial queue on every machine the composition code can build, not
 * just the presets. Each iteration draws a random pool shape, runs
 * it once on each engine, and compares the full stat registry dump
 * plus the final tick. BEACON_FUZZ_ITERS scales the sweep for
 * soak runs (default keeps CI fast).
 */
TEST(ShardedDifferentialFuzz, RandomPoolsMatchSerial)
{
    unsigned iters = 200;
    if (const char *env = std::getenv("BEACON_FUZZ_ITERS"))
        iters = unsigned(std::max(1, std::atoi(env)));

    const auto observe = [](SystemParams params,
                            const DesParams &des) {
        params.des = des;
        NdpSystem system(params, fuzzWorkload());
        const RunResult r = system.run(8);
        std::ostringstream os;
        system.stats().dump(os);
        return std::pair<std::string, Tick>(os.str(), r.ticks);
    };

    unsigned multi_lane = 0;
    for (unsigned i = 0; i < iters; ++i) {
        Rng rng(7000 + i);
        SystemParams params = randomPool(rng);
        // randomPool() arms the full checker fleet, and the CXL link
        // checker vetoes multi-lane execution; strip the checkers
        // from half the configs so the oracle also covers real
        // parallel windows, not just the collapsed path.
        if (i % 2 == 0)
            params.checkers = CheckerConfig{};

        DesParams des;
        des.force_sharded = true;
        des.shards = 2 + unsigned(rng.next(7)); // 2..8

        const auto serial = observe(params, DesParams{});
        const auto sharded = observe(params, des);
        SCOPED_TRACE("iter " + std::to_string(i) + " shards " +
                     std::to_string(des.shards));
        EXPECT_EQ(serial.second, sharded.second);
        ASSERT_EQ(serial.first, sharded.first)
            << "stat registry dump diverged";

        if (!params.checkers.cxl_link && params.num_groups > 0 &&
            params.cxlg_dimms.size() <
                params.num_groups * params.dimms_per_group)
            ++multi_lane;
    }
    EXPECT_GT(multi_lane, iters / 4)
        << "too few configs eligible for multi-lane execution";
}

// ---------------------------------------------------------------
// Rack-scale serial-vs-sharded differential oracle
// ---------------------------------------------------------------

const HashSeedingWorkload &
rackFuzzWorkload()
{
    static const HashSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[3];
        preset.genome.length = 1 << 13;
        preset.reads.num_reads = 16;
        return HashSeedingWorkload(preset);
    }();
    return workload;
}

/**
 * Same contract as RandomPoolsMatchSerial, one layer up: random rack
 * shapes (host count, tree depth, interleave ways, shared-segment
 * mix, write cadence) with mid-run hot-remove / hot-add / VCS-rebind
 * events must produce bit-identical stat registries on the serial
 * and sharded engines. This is the path with the most cross-lane
 * traffic in the tree: host caches and the fabric on lane 0, each
 * expander's directory on its own controller lane.
 */
TEST(RackDifferentialFuzz, RandomRacksMatchSerial)
{
    unsigned iters = 10;
    if (const char *env = std::getenv("BEACON_FUZZ_ITERS"))
        iters = std::max(1u, unsigned(std::atoi(env)) / 20);

    const auto observe = [](const rack::RackParams &params,
                            unsigned hot_case) {
        rack::RackSystem rk(params);
        for (unsigned h = 0; h < params.hosts; ++h) {
            TenantSpec spec;
            spec.name = "host" + std::to_string(h) + ".t0";
            spec.workload = &rackFuzzWorkload();
            spec.num_jobs = 3;
            spec.tasks_per_job = 2;
            spec.arrival.concurrency = 2;
            EXPECT_NE(rk.addTenant(h, spec), untenanted_id);
        }
        // The hot-plug mix: none / remove / remove+re-add / rebind.
        if (hot_case == 1 || hot_case == 2)
            rk.scheduleHotRemove(Tick{300000}, 9);
        if (hot_case == 2)
            rk.scheduleHotAdd(Tick{900000}, 9);
        if (hot_case == 3)
            rk.scheduleRebind(Tick{300000}, 10,
                              params.hosts - 1);
        const rack::RackReport r = rk.run();
        std::ostringstream os;
        rk.machine().stats().dump(os);
        return std::pair<std::string, Tick>(os.str(),
                                            r.machine.ticks);
    };

    for (unsigned i = 0; i < iters; ++i) {
        Rng rng(9000 + i);
        rack::RackParams params;
        params.hosts = 1 + unsigned(rng.next(4));
        params.switch_levels = 1 + unsigned(rng.next(2));
        params.interleave_ways = 1u << rng.next(3); // 1, 2, 4
        params.hdm_bytes_per_host = Bytes{1u << 19};
        params.segment_write_every =
            rng.chance(0.3) ? 0 : 2u << rng.next(3);
        params.seed = 100 + i;
        if (rng.chance(0.8)) {
            rack::SegmentParams seg;
            seg.name = "ref";
            seg.bytes = Bytes{1u << 15};
            seg.owner_dimm = 8;
            params.segments.push_back(seg);
        }
        if (rng.chance(0.3)) {
            rack::SegmentParams seg;
            seg.name = "index";
            seg.bytes = Bytes{1u << 14};
            seg.owner_dimm = 9;
            params.segments.push_back(seg);
        }
        // The CXL link checker vetoes multi-lane execution; arm the
        // checkers on half the configs so the oracle covers both the
        // collapsed and the genuinely parallel path.
        if (i % 2 != 0)
            params.base.checkers = CheckerConfig::all();
        const unsigned hot_case = unsigned(rng.next(4));

        rack::RackParams sharded_params = params;
        sharded_params.base.des.force_sharded = true;
        sharded_params.base.des.shards =
            2 + unsigned(rng.next(7)); // 2..8

        const auto serial = observe(params, hot_case);
        const auto sharded = observe(sharded_params, hot_case);
        SCOPED_TRACE("iter " + std::to_string(i) + " hosts " +
                     std::to_string(params.hosts) + " hot_case " +
                     std::to_string(hot_case) + " shards " +
                     std::to_string(sharded_params.base.des.shards));
        EXPECT_EQ(serial.second, sharded.second);
        ASSERT_EQ(serial.first, sharded.first)
            << "rack stat registry dump diverged";
    }
}

} // namespace
} // namespace beacon
