/**
 * @file
 * Telemetry subsystem tests: TraceSink ring/span/JSON behaviour,
 * tick-driven Sampler series, host-side self-profiling, the golden
 * time series of a small fig12-shaped run, and the guarantee that
 * turning tracing on does not perturb simulation results.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/report.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "obs/observability.hh"
#include "obs/sampler.hh"
#include "obs/self_profile.hh"
#include "obs/trace.hh"
#include "service/orchestrator.hh"

#include "golden_compare.hh"

namespace beacon
{
namespace
{

// ---------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------

TEST(TraceSink, RecordsEventsOldestFirst)
{
    EventQueue eq;
    obs::TraceSink sink(eq, 8);
    const obs::TrackId t = sink.track("t0");
    EXPECT_EQ(sink.track("t0"), t); // same name, same track
    sink.complete(t, "a", 0, 5);
    eq.schedule(10, [&] {
        sink.instant(t, "b");
        sink.counter(t, "depth", 3.0);
    });
    eq.run();

    const std::vector<obs::TraceEvent> evs = sink.snapshot();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].phase, 'X');
    EXPECT_EQ(evs[0].start, 0u);
    EXPECT_EQ(evs[0].dur, 5u);
    EXPECT_EQ(evs[1].phase, 'i');
    EXPECT_EQ(evs[1].start, 10u);
    EXPECT_EQ(evs[2].phase, 'C');
    EXPECT_DOUBLE_EQ(evs[2].value, 3.0);
    EXPECT_EQ(sink.numTracks(), 1u);
    EXPECT_EQ(sink.droppedEvents(), 0u);
}

TEST(TraceSink, RingOverflowDropsOldestAndCountsIt)
{
    EventQueue eq;
    obs::TraceSink sink(eq, 4);
    const obs::TrackId t = sink.track("t0");
    for (Tick i = 0; i < 6; ++i)
        sink.complete(t, "e", i, i + 1);

    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.capacity(), 4u);
    EXPECT_EQ(sink.droppedEvents(), 2u);
    // The ring keeps the most recent window: events 2..5 survive.
    const std::vector<obs::TraceEvent> evs = sink.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().start, 2u);
    EXPECT_EQ(evs.back().start, 5u);
}

TEST(TraceSpan, RaiiEmitsNestedSpans)
{
    EventQueue eq;
    obs::TraceSink sink(eq);
    const obs::TrackId t = sink.track("t0");
    {
        obs::TraceSpan outer(&sink, t, "outer");
        eq.schedule(10, [] {});
        eq.run();
        {
            obs::TraceSpan inner(&sink, t, "inner", 7);
            eq.schedule(20, [] {});
            eq.run();
        } // inner closes at 20
    }     // outer closes at 20

    const std::vector<obs::TraceEvent> evs = sink.snapshot();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].start, 10u); // inner emitted first
    EXPECT_EQ(evs[0].dur, 10u);
    EXPECT_TRUE(evs[0].has_id);
    EXPECT_EQ(evs[0].id, 7u);
    EXPECT_EQ(evs[1].start, 0u);
    EXPECT_EQ(evs[1].dur, 20u);
}

TEST(TraceSpan, MoveEmitsOnceAndAbandonEmitsNothing)
{
    EventQueue eq;
    obs::TraceSink sink(eq);
    const obs::TrackId t = sink.track("t0");
    {
        obs::TraceSpan a(&sink, t, "moved");
        obs::TraceSpan b(std::move(a));
        EXPECT_FALSE(a.active()); // NOLINT(bugprone-use-after-move)
        EXPECT_TRUE(b.active());
    }
    EXPECT_EQ(sink.size(), 1u);
    {
        obs::TraceSpan c(&sink, t, "dropped");
        c.abandon();
    }
    EXPECT_EQ(sink.size(), 1u);
    // A default-constructed / null-sink span is inert.
    obs::TraceSpan null_span(nullptr, 0, "x");
    null_span.close();
    EXPECT_EQ(sink.size(), 1u);
}

/** Brace/bracket balance outside string literals. */
void
expectBalancedJson(const std::string &json)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(TraceSink, JsonIsWellFormedChromeFormat)
{
    EventQueue eq;
    obs::TraceSink sink(eq);
    const obs::TrackId t0 = sink.track("dimm0.r0.bg1");
    const obs::TrackId t1 = sink.track("tenant1");
    sink.complete(t0, "RD", 100, 200);
    sink.completeWithId(t0, "flit", 200, 300, 42);
    sink.instantWithId(t1, "dispatch", 7);
    sink.counter(t1, "ready", 2.0);

    std::ostringstream os;
    sink.writeJson(os);
    const std::string json = os.str();
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Metadata names both tracks inside pid 1.
    EXPECT_NE(json.find("dimm0.r0.bg1"), std::string::npos);
    EXPECT_NE(json.find("tenant1"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    // All four phases present.
    for (const char *needle :
         {"\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"C\"",
          "\"ph\":\"M\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    // Ticks (ps) render as microseconds: 100 ps = 0.000100 us.
    EXPECT_NE(json.find("0.000100"), std::string::npos);
}

// ---------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------

TEST(Sampler, LevelsAndRatesPerInterval)
{
    EventQueue eq;
    obs::Sampler sampler(eq, 1000); // 1 ns interval
    double level = 1.0;
    double bytes = 0.0;
    sampler.addLevel("depth", [&] { return level; });
    sampler.addRate("gbps", [&] { return bytes; }, 1e-9);
    sampler.start();

    eq.schedule(500, [&] {
        bytes = 1000;
        level = 2;
    });
    eq.schedule(1500, [&] { bytes = 3000; });
    eq.run(3000);
    sampler.finish();

    ASSERT_EQ(sampler.numSeries(), 2u);
    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].tick, 1000u);
    EXPECT_DOUBLE_EQ(rows[0].values[0], 2.0);
    // 1000 bytes in 1 ns = 1000 GB/s at scale 1e-9.
    EXPECT_DOUBLE_EQ(rows[0].values[1], 1000.0);
    EXPECT_DOUBLE_EQ(rows[1].values[1], 2000.0);
    EXPECT_DOUBLE_EQ(rows[2].values[1], 0.0);
}

TEST(Sampler, FinishRecordsPartialIntervalOnce)
{
    EventQueue eq;
    obs::Sampler sampler(eq, 1000);
    double bytes = 0.0;
    sampler.addRate("gbps", [&] { return bytes; }, 1e-9);
    sampler.start();
    eq.run(1000); // one full interval
    eq.schedule(1700, [&] { bytes = 700; });
    while (eq.now() < 1700 && eq.runOne()) {
    }
    sampler.finish();
    sampler.finish(); // idempotent

    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1].tick, 1700u);
    // 700 bytes over the 0.7 ns partial interval = 1000 GB/s.
    EXPECT_DOUBLE_EQ(rows[1].values[0], 1000.0);
    // The cancelled self-reschedule must not linger in the queue.
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(Sampler, JsonAndCsvOutput)
{
    EventQueue eq;
    obs::Sampler sampler(eq, 1000);
    double v = 3.0;
    sampler.addLevel("depth", [&] { return v; });
    sampler.start();
    eq.run(2000);
    sampler.finish();

    std::ostringstream json;
    sampler.writeJson(json);
    expectBalancedJson(json.str());
    EXPECT_NE(json.str().find("\"beacon-timeseries-1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"depth\""), std::string::npos);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
              "tick,depth");
}

// ---------------------------------------------------------------
// Self-profiling
// ---------------------------------------------------------------

TEST(SelfProfiler, AttributesEventsPerCategory)
{
    EventQueue eq;
    obs::SelfProfiler prof;
    eq.setProfiler(&prof);
    eq.schedule(1, [] {}, EventCat::Dram);
    eq.schedule(2, [] {}, EventCat::Dram);
    eq.schedule(3, [] {}, EventCat::Cxl);
    eq.schedule(4, [] {}); // EventCat::Other
    eq.run();
    eq.setProfiler(nullptr);

    const obs::SelfProfileResult r = prof.result();
    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(r.events, 4u);
    EXPECT_EQ(r.by_cat[std::size_t(EventCat::Dram)].events, 2u);
    EXPECT_EQ(r.by_cat[std::size_t(EventCat::Cxl)].events, 1u);
    EXPECT_EQ(r.by_cat[std::size_t(EventCat::Other)].events, 1u);
    EXPECT_GE(r.wall_seconds, 0.0);
    const std::vector<std::string> top = r.topCategories();
    EXPECT_LE(top.size(), 3u);
    EXPECT_FALSE(top.empty());
}

// ---------------------------------------------------------------
// Whole-machine behaviour
// ---------------------------------------------------------------

genomics::DatasetPreset
smallPreset()
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[3];
    preset.genome.length = 1 << 13;
    preset.reads.num_reads = 16;
    return preset;
}

obs::ObsConfig
allOnConfig()
{
    obs::ObsConfig cfg;
    cfg.trace = true;
    cfg.sample_interval = 1000000; // 1 us
    cfg.self_profile = true;
    return cfg;
}

TEST(Observability, TracingDoesNotPerturbTheSimulation)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());

    SystemParams off = SystemParams::beaconD();
    off.obs = obs::ObsConfig{}; // everything disabled
    NdpSystem sys_off(off, workload);
    const RunResult r_off = sys_off.run(8);

    SystemParams on = SystemParams::beaconD();
    on.obs = allOnConfig();
    NdpSystem sys_on(on, workload);
    const RunResult r_on = sys_on.run(8);

    ASSERT_NE(sys_on.observability(), nullptr);
    EXPECT_EQ(sys_off.observability(), nullptr);
    EXPECT_GT(sys_on.observability()->trace()->size(), 0u);

    // Bit-identical results and stats either way.
    std::ostringstream json_off, json_on;
    writeRunResultJson(json_off, r_off, 0);
    writeRunResultJson(json_on, r_on, 0);
    EXPECT_EQ(json_on.str(), json_off.str());
    // Whole family: host total plus the per-partition twins (the
    // lane pinning under tracing must not change any counter).
    EXPECT_EQ(sys_on.stats().sumMatching("dramBytesTotal"),
              sys_off.stats().sumMatching("dramBytesTotal"));
    EXPECT_EQ(sys_on.stats().sumMatching(".bytes"),
              sys_off.stats().sumMatching(".bytes"));
}

TEST(Observability, Fig12SmallTimeseriesGolden)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());
    SystemParams params = SystemParams::beaconD();
    params.obs = obs::ObsConfig{};
    params.obs.sample_interval = 1000000; // 1 us
    NdpSystem system(params, workload);
    system.run(8);
    ASSERT_NE(system.observability(), nullptr);
    system.observability()->finish();

    std::ostringstream os;
    system.obsSampler()->writeJson(os);
    golden::checkGoldenString(os.str(),
                              "fig12_small_timeseries.json");
}

TEST(Observability, ShardedRunTelemetryIsByteIdentical)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());

    struct Telemetry
    {
        std::string trace;
        std::string timeseries;
        std::vector<std::uint64_t> events_by_cat;
    };
    const auto observe = [&](const DesParams &des) {
        SystemParams params = SystemParams::beaconD();
        // Narrow enough that the guarded drain loop opens real
        // parallel windows instead of degrading to runOne().
        params.max_inflight_tasks = 2;
        params.checkers = CheckerConfig{};
        params.obs = allOnConfig();
        params.des = des;
        NdpSystem system(params, workload);
        system.run(8);
        obs::Observability *o = system.observability();
        EXPECT_NE(o, nullptr);
        o->finish();
        Telemetry t;
        std::ostringstream trace, series;
        o->trace()->writeJson(trace);
        o->sampler()->writeJson(series);
        t.trace = trace.str();
        t.timeseries = series.str();
        // Per-category event counts are simulation facts (only the
        // wall-clock attributions may differ between engines).
        for (const auto &cat : o->selfProfile().by_cat)
            t.events_by_cat.push_back(cat.events);
        return t;
    };

    const Telemetry serial = observe(DesParams{});
    EXPECT_NE(serial.trace.find("\"traceEvents\""),
              std::string::npos);
    for (unsigned shards : {2u, 4u}) {
        DesParams des;
        des.force_sharded = true;
        des.shards = shards;
        const Telemetry sharded = observe(des);
        SCOPED_TRACE("shards " + std::to_string(shards));
        ASSERT_EQ(serial.trace, sharded.trace)
            << "trace JSON diverged";
        ASSERT_EQ(serial.timeseries, sharded.timeseries)
            << "time-series JSON diverged";
        EXPECT_EQ(serial.events_by_cat, sharded.events_by_cat);
    }
}

TEST(Observability, ServiceRunTracesTenants)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());
    SystemParams params = SystemParams::beaconD();
    params.name = "BEACON-D (service)";
    params.pes_per_module = 4;
    params.max_inflight_tasks = 2;
    params.obs = allOnConfig();
    NdpSystem system(params);

    OrchestratorParams op;
    op.seed = 0xBEACC0DEull;
    PoolOrchestrator orchestrator(system, op);
    TenantSpec spec;
    spec.name = "bulk";
    spec.workload = &workload;
    spec.num_jobs = 3;
    spec.tasks_per_job = 2;
    spec.arrival.concurrency = 2;
    ASSERT_NE(orchestrator.addTenant(spec), untenanted_id)
        << orchestrator.lastError();
    orchestrator.run();

    obs::Observability *o = system.observability();
    ASSERT_NE(o, nullptr);
    o->finish();

    std::ostringstream trace;
    o->trace()->writeJson(trace);
    expectBalancedJson(trace.str());
    // Tenant job spans live on per-tenant slot tracks; dispatch
    // instants on the tenant's own track.
    EXPECT_NE(trace.str().find("tenant1.job0"), std::string::npos);
    EXPECT_NE(trace.str().find("dispatch"), std::string::npos);

    const std::vector<std::string> labels = o->sampler()->labels();
    EXPECT_NE(std::find(labels.begin(), labels.end(),
                        "tenant1.queue_depth"),
              labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(),
                        "tenant1.dram_gbps"),
              labels.end());
    EXPECT_FALSE(o->sampler()->rows().empty());
    EXPECT_TRUE(o->selfProfiling());
    EXPECT_GT(o->selfProfile().events, 0u);
}

} // namespace
} // namespace beacon
