/**
 * @file
 * Telemetry subsystem tests: TraceSink ring/span/JSON behaviour,
 * tick-driven Sampler series, host-side self-profiling, the golden
 * time series of a small fig12-shaped run, and the guarantee that
 * turning tracing on does not perturb simulation results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "accel/report.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "obs/observability.hh"
#include "obs/request_trace.hh"
#include "obs/sampler.hh"
#include "obs/self_profile.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"
#include "service/orchestrator.hh"

#include "golden_compare.hh"

namespace beacon
{
namespace
{

// ---------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------

TEST(TraceSink, RecordsEventsOldestFirst)
{
    EventQueue eq;
    obs::TraceSink sink(eq, 8);
    const obs::TrackId t = sink.track("t0");
    EXPECT_EQ(sink.track("t0"), t); // same name, same track
    sink.complete(t, "a", 0, 5);
    eq.schedule(10, [&] {
        sink.instant(t, "b");
        sink.counter(t, "depth", 3.0);
    });
    eq.run();

    const std::vector<obs::TraceEvent> evs = sink.snapshot();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].phase, 'X');
    EXPECT_EQ(evs[0].start, 0u);
    EXPECT_EQ(evs[0].dur, 5u);
    EXPECT_EQ(evs[1].phase, 'i');
    EXPECT_EQ(evs[1].start, 10u);
    EXPECT_EQ(evs[2].phase, 'C');
    EXPECT_DOUBLE_EQ(evs[2].value, 3.0);
    EXPECT_EQ(sink.numTracks(), 1u);
    EXPECT_EQ(sink.droppedEvents(), 0u);
}

TEST(TraceSink, RingOverflowDropsOldestAndCountsIt)
{
    EventQueue eq;
    obs::TraceSink sink(eq, 4);
    const obs::TrackId t = sink.track("t0");
    for (Tick i = 0; i < 6; ++i)
        sink.complete(t, "e", i, i + 1);

    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.capacity(), 4u);
    EXPECT_EQ(sink.droppedEvents(), 2u);
    // The ring keeps the most recent window: events 2..5 survive.
    const std::vector<obs::TraceEvent> evs = sink.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().start, 2u);
    EXPECT_EQ(evs.back().start, 5u);
}

TEST(TraceSpan, RaiiEmitsNestedSpans)
{
    EventQueue eq;
    obs::TraceSink sink(eq);
    const obs::TrackId t = sink.track("t0");
    {
        obs::TraceSpan outer(&sink, t, "outer");
        eq.schedule(10, [] {});
        eq.run();
        {
            obs::TraceSpan inner(&sink, t, "inner", 7);
            eq.schedule(20, [] {});
            eq.run();
        } // inner closes at 20
    }     // outer closes at 20

    const std::vector<obs::TraceEvent> evs = sink.snapshot();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].start, 10u); // inner emitted first
    EXPECT_EQ(evs[0].dur, 10u);
    EXPECT_TRUE(evs[0].has_id);
    EXPECT_EQ(evs[0].id, 7u);
    EXPECT_EQ(evs[1].start, 0u);
    EXPECT_EQ(evs[1].dur, 20u);
}

TEST(TraceSpan, MoveEmitsOnceAndAbandonEmitsNothing)
{
    EventQueue eq;
    obs::TraceSink sink(eq);
    const obs::TrackId t = sink.track("t0");
    {
        obs::TraceSpan a(&sink, t, "moved");
        obs::TraceSpan b(std::move(a));
        EXPECT_FALSE(a.active()); // NOLINT(bugprone-use-after-move)
        EXPECT_TRUE(b.active());
    }
    EXPECT_EQ(sink.size(), 1u);
    {
        obs::TraceSpan c(&sink, t, "dropped");
        c.abandon();
    }
    EXPECT_EQ(sink.size(), 1u);
    // A default-constructed / null-sink span is inert.
    obs::TraceSpan null_span(nullptr, 0, "x");
    null_span.close();
    EXPECT_EQ(sink.size(), 1u);
}

/** Brace/bracket balance outside string literals. */
void
expectBalancedJson(const std::string &json)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(TraceSink, JsonIsWellFormedChromeFormat)
{
    EventQueue eq;
    obs::TraceSink sink(eq);
    const obs::TrackId t0 = sink.track("dimm0.r0.bg1");
    const obs::TrackId t1 = sink.track("tenant1");
    sink.complete(t0, "RD", 100, 200);
    sink.completeWithId(t0, "flit", 200, 300, 42);
    sink.instantWithId(t1, "dispatch", 7);
    sink.counter(t1, "ready", 2.0);

    std::ostringstream os;
    sink.writeJson(os);
    const std::string json = os.str();
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Metadata names both tracks inside pid 1.
    EXPECT_NE(json.find("dimm0.r0.bg1"), std::string::npos);
    EXPECT_NE(json.find("tenant1"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    // All four phases present.
    for (const char *needle :
         {"\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"C\"",
          "\"ph\":\"M\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    // Ticks (ps) render as microseconds: 100 ps = 0.000100 us.
    EXPECT_NE(json.find("0.000100"), std::string::npos);
}

// ---------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------

TEST(Sampler, LevelsAndRatesPerInterval)
{
    EventQueue eq;
    obs::Sampler sampler(eq, 1000); // 1 ns interval
    double level = 1.0;
    double bytes = 0.0;
    sampler.addLevel("depth", [&] { return level; });
    sampler.addRate("gbps", [&] { return bytes; }, 1e-9);
    sampler.start();

    eq.schedule(500, [&] {
        bytes = 1000;
        level = 2;
    });
    eq.schedule(1500, [&] { bytes = 3000; });
    eq.run(3000);
    sampler.finish();

    ASSERT_EQ(sampler.numSeries(), 2u);
    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].tick, 1000u);
    EXPECT_DOUBLE_EQ(rows[0].values[0], 2.0);
    // 1000 bytes in 1 ns = 1000 GB/s at scale 1e-9.
    EXPECT_DOUBLE_EQ(rows[0].values[1], 1000.0);
    EXPECT_DOUBLE_EQ(rows[1].values[1], 2000.0);
    EXPECT_DOUBLE_EQ(rows[2].values[1], 0.0);
}

TEST(Sampler, FinishRecordsPartialIntervalOnce)
{
    EventQueue eq;
    obs::Sampler sampler(eq, 1000);
    double bytes = 0.0;
    sampler.addRate("gbps", [&] { return bytes; }, 1e-9);
    sampler.start();
    eq.run(1000); // one full interval
    eq.schedule(1700, [&] { bytes = 700; });
    while (eq.now() < 1700 && eq.runOne()) {
    }
    sampler.finish();
    sampler.finish(); // idempotent

    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1].tick, 1700u);
    // 700 bytes over the 0.7 ns partial interval = 1000 GB/s.
    EXPECT_DOUBLE_EQ(rows[1].values[0], 1000.0);
    // The cancelled self-reschedule must not linger in the queue.
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(Sampler, JsonAndCsvOutput)
{
    EventQueue eq;
    obs::Sampler sampler(eq, 1000);
    double v = 3.0;
    sampler.addLevel("depth", [&] { return v; });
    sampler.start();
    eq.run(2000);
    sampler.finish();

    std::ostringstream json;
    sampler.writeJson(json);
    expectBalancedJson(json.str());
    EXPECT_NE(json.str().find("\"beacon-timeseries-1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"depth\""), std::string::npos);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
              "tick,depth");
}

// ---------------------------------------------------------------
// Self-profiling
// ---------------------------------------------------------------

TEST(SelfProfiler, AttributesEventsPerCategory)
{
    EventQueue eq;
    obs::SelfProfiler prof;
    eq.setProfiler(&prof);
    eq.schedule(1, [] {}, EventCat::Dram);
    eq.schedule(2, [] {}, EventCat::Dram);
    eq.schedule(3, [] {}, EventCat::Cxl);
    eq.schedule(4, [] {}); // EventCat::Other
    eq.run();
    eq.setProfiler(nullptr);

    const obs::SelfProfileResult r = prof.result();
    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(r.events, 4u);
    EXPECT_EQ(r.by_cat[std::size_t(EventCat::Dram)].events, 2u);
    EXPECT_EQ(r.by_cat[std::size_t(EventCat::Cxl)].events, 1u);
    EXPECT_EQ(r.by_cat[std::size_t(EventCat::Other)].events, 1u);
    EXPECT_GE(r.wall_seconds, 0.0);
    const std::vector<std::string> top = r.topCategories();
    EXPECT_LE(top.size(), 3u);
    EXPECT_FALSE(top.empty());
}

// ---------------------------------------------------------------
// Whole-machine behaviour
// ---------------------------------------------------------------

genomics::DatasetPreset
smallPreset()
{
    genomics::DatasetPreset preset = genomics::seedingPresets()[3];
    preset.genome.length = 1 << 13;
    preset.reads.num_reads = 16;
    return preset;
}

obs::ObsConfig
allOnConfig()
{
    obs::ObsConfig cfg;
    cfg.trace = true;
    cfg.sample_interval = 1000000; // 1 us
    cfg.self_profile = true;
    return cfg;
}

TEST(Observability, TracingDoesNotPerturbTheSimulation)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());

    SystemParams off = SystemParams::beaconD();
    off.obs = obs::ObsConfig{}; // everything disabled
    NdpSystem sys_off(off, workload);
    const RunResult r_off = sys_off.run(8);

    SystemParams on = SystemParams::beaconD();
    on.obs = allOnConfig();
    NdpSystem sys_on(on, workload);
    const RunResult r_on = sys_on.run(8);

    ASSERT_NE(sys_on.observability(), nullptr);
    EXPECT_EQ(sys_off.observability(), nullptr);
    EXPECT_GT(sys_on.observability()->trace()->size(), 0u);

    // Bit-identical results and stats either way.
    std::ostringstream json_off, json_on;
    writeRunResultJson(json_off, r_off, 0);
    writeRunResultJson(json_on, r_on, 0);
    EXPECT_EQ(json_on.str(), json_off.str());
    // Whole family: host total plus the per-partition twins (the
    // lane pinning under tracing must not change any counter).
    EXPECT_EQ(sys_on.stats().sumMatching("dramBytesTotal"),
              sys_off.stats().sumMatching("dramBytesTotal"));
    EXPECT_EQ(sys_on.stats().sumMatching(".bytes"),
              sys_off.stats().sumMatching(".bytes"));
}

TEST(Observability, Fig12SmallTimeseriesGolden)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());
    SystemParams params = SystemParams::beaconD();
    params.obs = obs::ObsConfig{};
    params.obs.sample_interval = 1000000; // 1 us
    NdpSystem system(params, workload);
    system.run(8);
    ASSERT_NE(system.observability(), nullptr);
    system.observability()->finish();

    std::ostringstream os;
    system.obsSampler()->writeJson(os);
    golden::checkGoldenString(os.str(),
                              "fig12_small_timeseries.json");
}

TEST(Observability, ShardedRunTelemetryIsByteIdentical)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());

    struct Telemetry
    {
        std::string trace;
        std::string timeseries;
        std::vector<std::uint64_t> events_by_cat;
    };
    const auto observe = [&](const DesParams &des) {
        SystemParams params = SystemParams::beaconD();
        // Narrow enough that the guarded drain loop opens real
        // parallel windows instead of degrading to runOne().
        params.max_inflight_tasks = 2;
        params.checkers = CheckerConfig{};
        params.obs = allOnConfig();
        params.des = des;
        NdpSystem system(params, workload);
        system.run(8);
        obs::Observability *o = system.observability();
        EXPECT_NE(o, nullptr);
        o->finish();
        Telemetry t;
        std::ostringstream trace, series;
        o->trace()->writeJson(trace);
        o->sampler()->writeJson(series);
        t.trace = trace.str();
        t.timeseries = series.str();
        // Per-category event counts are simulation facts (only the
        // wall-clock attributions may differ between engines).
        for (const auto &cat : o->selfProfile().by_cat)
            t.events_by_cat.push_back(cat.events);
        return t;
    };

    const Telemetry serial = observe(DesParams{});
    EXPECT_NE(serial.trace.find("\"traceEvents\""),
              std::string::npos);
    for (unsigned shards : {2u, 4u}) {
        DesParams des;
        des.force_sharded = true;
        des.shards = shards;
        const Telemetry sharded = observe(des);
        SCOPED_TRACE("shards " + std::to_string(shards));
        ASSERT_EQ(serial.trace, sharded.trace)
            << "trace JSON diverged";
        ASSERT_EQ(serial.timeseries, sharded.timeseries)
            << "time-series JSON diverged";
        EXPECT_EQ(serial.events_by_cat, sharded.events_by_cat);
    }
}

TEST(Observability, ServiceRunTracesTenants)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());
    SystemParams params = SystemParams::beaconD();
    params.name = "BEACON-D (service)";
    params.pes_per_module = 4;
    params.max_inflight_tasks = 2;
    params.obs = allOnConfig();
    NdpSystem system(params);

    OrchestratorParams op;
    op.seed = 0xBEACC0DEull;
    PoolOrchestrator orchestrator(system, op);
    TenantSpec spec;
    spec.name = "bulk";
    spec.workload = &workload;
    spec.num_jobs = 3;
    spec.tasks_per_job = 2;
    spec.arrival.concurrency = 2;
    ASSERT_NE(orchestrator.addTenant(spec), untenanted_id)
        << orchestrator.lastError();
    orchestrator.run();

    obs::Observability *o = system.observability();
    ASSERT_NE(o, nullptr);
    o->finish();

    std::ostringstream trace;
    o->trace()->writeJson(trace);
    expectBalancedJson(trace.str());
    // Tenant job spans live on per-tenant slot tracks; dispatch
    // instants on the tenant's own track.
    EXPECT_NE(trace.str().find("tenant1.job0"), std::string::npos);
    EXPECT_NE(trace.str().find("dispatch"), std::string::npos);

    const std::vector<std::string> labels = o->sampler()->labels();
    EXPECT_NE(std::find(labels.begin(), labels.end(),
                        "tenant1.queue_depth"),
              labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(),
                        "tenant1.dram_gbps"),
              labels.end());
    EXPECT_FALSE(o->sampler()->rows().empty());
    EXPECT_TRUE(o->selfProfiling());
    EXPECT_GT(o->selfProfile().events, 0u);
}

// ---------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------

/** The histogram's exact answer for quantile @p q of @p sorted:
 *  the bucket upper bound of the ceil-rank order statistic
 *  (rank = max(1, ceil(q/100 * n)), 1-based, integer arithmetic —
 *  the documented sim/stats.hh quantileSorted rule). */
std::uint64_t
histogramOracle(const std::vector<std::uint64_t> &sorted, unsigned q)
{
    const std::uint64_t n = sorted.size();
    std::uint64_t rank = (std::uint64_t(q) * n + 99) / 100;
    if (rank == 0)
        rank = 1;
    return obs::LogHistogram::bucketUpper(
        obs::LogHistogram::bucketIndex(sorted[rank - 1]));
}

TEST(LogHistogram, PercentileMatchesSortedOracleUnderFuzz)
{
    // Deterministic xorshift64 stream; no wall-clock seeding.
    std::uint64_t s = 0x9E3779B97F4A7C15ull;
    const auto next = [&s] {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    };
    for (int round = 0; round < 25; ++round) {
        obs::LogHistogram hist;
        std::vector<std::uint64_t> values;
        const std::size_t n = 1 + next() % 1500;
        for (std::size_t i = 0; i < n; ++i) {
            // Mixed magnitudes: exact small buckets, mid-range
            // latencies, and near-full-width outliers.
            std::uint64_t v = next();
            switch (next() % 4) {
              case 0: v %= 16; break;
              case 1: v %= 100000; break;
              case 2: v %= (std::uint64_t(1) << 40); break;
              default: break;
            }
            values.push_back(v);
            hist.add(v);
        }
        std::sort(values.begin(), values.end());
        ASSERT_EQ(hist.count(), values.size());
        for (unsigned q : {0u, 1u, 25u, 50u, 90u, 99u, 100u})
            EXPECT_EQ(hist.percentile(q), histogramOracle(values, q))
                << "round " << round << " q " << q << " n " << n;
        // Monotonicity of the bucket mapping: upper bound of the
        // bucket always covers the value it was derived from.
        for (std::uint64_t v : values)
            EXPECT_GE(obs::LogHistogram::bucketUpper(
                          obs::LogHistogram::bucketIndex(v)),
                      v);
    }
}

TEST(LogHistogram, MergeEqualsHistogramOfConcatenation)
{
    std::uint64_t s = 0xBEACC0DEDEADBEEFull;
    const auto next = [&s] {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    };
    for (int round = 0; round < 10; ++round) {
        obs::LogHistogram a, b, whole;
        std::vector<std::uint64_t> values;
        const std::size_t n = 2 + next() % 800;
        const std::size_t split = 1 + next() % (n - 1);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t v =
                next() % (std::uint64_t(1) << (8 + next() % 40));
            values.push_back(v);
            whole.add(v);
            (i < split ? a : b).add(v);
        }
        a.merge(b);
        ASSERT_EQ(a.count(), whole.count());
        EXPECT_EQ(a.buckets(), whole.buckets());
        std::sort(values.begin(), values.end());
        for (unsigned q : {1u, 50u, 99u}) {
            EXPECT_EQ(a.percentile(q), whole.percentile(q));
            EXPECT_EQ(a.percentile(q), histogramOracle(values, q));
        }
    }
}

// ---------------------------------------------------------------
// SloMonitor
// ---------------------------------------------------------------

TEST(SloMonitor, WindowedStatsAndBurnRate)
{
    EventQueue eq;
    obs::SloMonitor slo(eq, 1000); // 1 ns windows
    const unsigned fast = slo.addTenant("fast", 100);
    const unsigned slow = slo.addTenant("slow", 0); // no target
    slo.start();

    // Window 1: two fast-tenant jobs, one breaching.
    eq.schedule(200, [&] { slo.record(fast, 50); });
    eq.schedule(600, [&] { slo.record(fast, 250); });
    // Window 2: one clean job per tenant.
    eq.schedule(1500, [&] {
        slo.record(fast, 80);
        slo.record(slow, 1u << 20); // huge but untargeted
    });
    eq.run(2500);
    // Two full windows rolled (at 1000 and 2000).
    EXPECT_EQ(slo.windowsClosed(), 2u);
    EXPECT_EQ(slo.lastWindow(fast).jobs, 1u);
    EXPECT_EQ(slo.lastWindow(fast).breaches, 0u);
    EXPECT_DOUBLE_EQ(slo.burnRate(fast), 0.0);
    // The last-window percentile is the bucket-quantised latency.
    EXPECT_EQ(slo.lastWindow(fast).p99,
              obs::LogHistogram::bucketUpper(
                  obs::LogHistogram::bucketIndex(80)));
    EXPECT_EQ(slo.totalJobs(fast), 3u);
    EXPECT_EQ(slo.totalBreaches(fast), 1u);
    EXPECT_EQ(slo.totalBreaches(slow), 0u);

    // A partial window with one breach, closed by finish(). The
    // run is bounded: the monitor's self-reschedule never drains.
    eq.schedule(2600, [&] { slo.record(fast, 500); });
    eq.run(2900);
    slo.finish();
    slo.finish(); // idempotent
    EXPECT_EQ(slo.windowsClosed(), 3u);
    EXPECT_EQ(slo.lastWindow(fast).jobs, 1u);
    EXPECT_EQ(slo.lastWindow(fast).breaches, 1u);
    EXPECT_DOUBLE_EQ(slo.burnRate(fast), 1.0);
    EXPECT_EQ(slo.totalJobs(fast), 4u);
    EXPECT_EQ(slo.totalBreaches(fast), 2u);
    // No lingering self-reschedule event.
    EXPECT_EQ(eq.pending(), 0u);
}

// ---------------------------------------------------------------
// Request-scoped tracing (span trees, breakdown, byte-identity)
// ---------------------------------------------------------------

obs::ObsConfig
requestConfig()
{
    obs::ObsConfig cfg;
    cfg.trace = true;
    cfg.request_trace = true;
    cfg.slo_window = 1000000;     // 1 us
    cfg.sample_interval = 1000000; // 1 us
    return cfg;
}

/** A small two-tenant service run; returns the live system through
 *  @p run so callers can inspect telemetry before teardown. */
ServiceReport
runServiceWithRequests(const DesParams &des,
                       const Workload &workload,
                       const std::function<void(NdpSystem &)> &inspect)
{
    SystemParams params = SystemParams::beaconD();
    params.name = "BEACON-D (service)";
    params.pes_per_module = 4;
    params.max_inflight_tasks = 2;
    params.checkers = CheckerConfig{};
    params.obs = requestConfig();
    params.des = des;
    NdpSystem system(params);

    OrchestratorParams op;
    op.seed = 0xBEACC0DEull;
    PoolOrchestrator orchestrator(system, op);
    TenantSpec spec;
    spec.name = "bulk";
    spec.workload = &workload;
    spec.num_jobs = 3;
    spec.tasks_per_job = 2;
    spec.arrival.concurrency = 2;
    spec.slo_ms = 1e-3; // 1 us target in ms: some jobs breach
    EXPECT_NE(orchestrator.addTenant(spec), untenanted_id)
        << orchestrator.lastError();
    TenantSpec quick = spec;
    quick.name = "quick";
    quick.num_jobs = 2;
    quick.tasks_per_job = 1;
    quick.arrival.concurrency = 1;
    EXPECT_NE(orchestrator.addTenant(quick), untenanted_id)
        << orchestrator.lastError();
    const ServiceReport report = orchestrator.run();
    inspect(system);
    return report;
}

TEST(RequestTrace, SpanTreeIsWellFormedAndBreakdownSumsExactly)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());
    const ServiceReport report = runServiceWithRequests(
        DesParams{}, workload, [&](NdpSystem &system) {
            obs::Observability *o = system.observability();
            ASSERT_NE(o, nullptr);
            o->finish();
            obs::RequestTrace *rt = o->requestTrace();
            ASSERT_NE(rt, nullptr);

            // Every begun job ended; none were dropped.
            EXPECT_EQ(rt->openJobs(), 0u);
            EXPECT_EQ(rt->droppedJobs(), 0u);
            ASSERT_EQ(rt->records().size(), 5u); // 3 bulk + 2 quick

            std::uint64_t prev_end = 0;
            for (const obs::JobRecord &rec : rt->records()) {
                SCOPED_TRACE("job " + std::to_string(rec.job));
                EXPECT_GT(rec.job, 0u);
                EXPECT_GE(rec.end, rec.submit);
                // Records are stored in completion order.
                EXPECT_GE(rec.end, prev_end);
                prev_end = rec.end;
                // A job that ran work has component spans, and the
                // sweep attributed every tick exactly once: the
                // components sum to end-to-end latency, in ticks.
                EXPECT_GT(rec.n_spans, 0u);
                Tick sum = 0;
                for (const Tick c : rec.comp)
                    sum += c;
                EXPECT_EQ(sum, rec.latency());
            }

            // The per-tenant aggregation equals the per-job records.
            for (std::uint32_t tenant : {1u, 2u}) {
                const obs::TenantBreakdown agg =
                    rt->tenantBreakdown(tenant);
                std::uint64_t jobs = 0;
                Tick latency = 0;
                std::array<Tick, obs::num_span_kinds> comp{};
                for (const obs::JobRecord &rec : rt->records()) {
                    if (rec.tenant != tenant)
                        continue;
                    ++jobs;
                    latency += rec.latency();
                    for (std::size_t k = 0; k < comp.size(); ++k)
                        comp[k] += rec.comp[k];
                }
                EXPECT_EQ(agg.jobs, jobs);
                EXPECT_EQ(agg.total_latency, latency);
                EXPECT_EQ(agg.comp, comp);
            }

            // Flow events: one 's' (dispatch) and one 'f'
            // (completion) per job, with PE/DRAM 't' steps between,
            // every flow id a real job id.
            std::size_t n_s = 0, n_t = 0, n_f = 0;
            for (const obs::TraceEvent &ev : o->trace()->snapshot()) {
                if (ev.phase != 's' && ev.phase != 't' &&
                    ev.phase != 'f')
                    continue;
                EXPECT_TRUE(ev.has_id);
                EXPECT_GE(ev.id, 1u);
                EXPECT_LE(ev.id, 5u);
                n_s += ev.phase == 's';
                n_t += ev.phase == 't';
                n_f += ev.phase == 'f';
            }
            EXPECT_EQ(n_s, 5u);
            EXPECT_EQ(n_f, 5u);
            EXPECT_GT(n_t, 0u);

            // The reqtrace JSON is balanced and versioned.
            std::ostringstream os;
            rt->writeJson(os);
            expectBalancedJson(os.str());
            EXPECT_NE(os.str().find("\"beacon-reqtrace-1\""),
                      std::string::npos);

            // SLO monitor saw every completion.
            obs::SloMonitor *slo = o->slo();
            ASSERT_NE(slo, nullptr);
            ASSERT_EQ(slo->numTenants(), 2u);
            EXPECT_EQ(slo->totalJobs(0) + slo->totalJobs(1), 5u);
        });
    // The orchestrator report carries the same aggregates.
    ASSERT_EQ(report.tenants.size(), 2u);
    for (const TenantReport &tenant : report.tenants) {
        EXPECT_TRUE(tenant.has_breakdown);
        EXPECT_TRUE(tenant.has_slo);
        EXPECT_EQ(tenant.breakdown_jobs, tenant.jobs_completed);
        Tick sum = 0;
        for (const Tick c : tenant.breakdown_ticks)
            sum += c;
        EXPECT_EQ(sum, tenant.breakdown_total_ticks);
        EXPECT_EQ(tenant.slo_jobs, tenant.jobs_completed);
    }
}

TEST(RequestTrace, ShardedRequestTelemetryIsByteIdentical)
{
#if !BEACON_OBS_ENABLED
    GTEST_SKIP() << "telemetry compiled out (BEACON_OBS=OFF)";
#endif
    const FmSeedingWorkload workload(smallPreset());

    struct Artifacts
    {
        std::string reqtrace;
        std::string timeseries;
        std::string trace;
    };
    const auto observe = [&](const DesParams &des) {
        Artifacts a;
        runServiceWithRequests(des, workload, [&](NdpSystem &system) {
            obs::Observability *o = system.observability();
            ASSERT_NE(o, nullptr);
            o->finish();
            std::ostringstream rt, ts, tr;
            o->requestTrace()->writeJson(rt);
            o->sampler()->writeJson(ts);
            o->trace()->writeJson(tr);
            a.reqtrace = rt.str();
            a.timeseries = ts.str();
            a.trace = tr.str();
        });
        return a;
    };

    const Artifacts serial = observe(DesParams{});
    EXPECT_NE(serial.reqtrace.find("\"jobs\""), std::string::npos);
    // The SLO histogram series ride the sampler time series.
    EXPECT_NE(serial.timeseries.find("slo_p99_ms"),
              std::string::npos);
    for (unsigned shards : {2u, 4u}) {
        DesParams des;
        des.force_sharded = true;
        des.shards = shards;
        const Artifacts sharded = observe(des);
        SCOPED_TRACE("shards " + std::to_string(shards));
        ASSERT_EQ(serial.reqtrace, sharded.reqtrace)
            << "request-trace JSON diverged";
        ASSERT_EQ(serial.timeseries, sharded.timeseries)
            << "time-series (histogram/SLO) JSON diverged";
        ASSERT_EQ(serial.trace, sharded.trace)
            << "trace JSON diverged";
    }
}

} // namespace
} // namespace beacon
