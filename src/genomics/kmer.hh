/**
 * @file
 * k-mer extraction and canonicalisation.
 */

#ifndef BEACON_GENOMICS_KMER_HH
#define BEACON_GENOMICS_KMER_HH

#include <cstdint>

#include "common/logging.hh"
#include "genomics/dna.hh"

namespace beacon::genomics
{

/** Reverse complement of a 2-bit packed k-mer. */
inline std::uint64_t
reverseComplementKmer(std::uint64_t kmer, unsigned k)
{
    std::uint64_t out = 0;
    for (unsigned i = 0; i < k; ++i) {
        out = (out << 2) | (3 - (kmer & 3));
        kmer >>= 2;
    }
    return out;
}

/** Canonical form: min(kmer, reverse complement). */
inline std::uint64_t
canonicalKmer(std::uint64_t kmer, unsigned k)
{
    const std::uint64_t rc = reverseComplementKmer(kmer, k);
    return kmer < rc ? kmer : rc;
}

/**
 * Invoke @p fn(kmer, position) for every k-mer of @p seq in packed
 * 2-bit form (not canonicalised; callers canonicalise if needed).
 */
template <typename Fn>
void
forEachKmer(const DnaSequence &seq, unsigned k, Fn &&fn)
{
    BEACON_ASSERT(k >= 1 && k <= 32, "k must be in [1,32]");
    if (seq.size() < k)
        return;
    const std::uint64_t mask =
        k == 32 ? ~std::uint64_t{0}
                : ((std::uint64_t{1} << (2 * k)) - 1);
    std::uint64_t kmer = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        kmer = ((kmer << 2) | seq.at(i)) & mask;
        if (i + 1 >= k)
            fn(kmer, i + 1 - k);
    }
}

/** 64-bit mix hash (splitmix64 finaliser) for k-mer hashing. */
inline std::uint64_t
hashKmer(std::uint64_t x, std::uint64_t seed = 0)
{
    x += 0x9E3779B97F4A7C15ull + seed * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_KMER_HH
