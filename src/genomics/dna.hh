/**
 * @file
 * DNA alphabet, packed sequences, synthetic genomes, and reads.
 *
 * The paper evaluates on five NCBI genomes and human 50x reads; this
 * reproduction substitutes synthetic genomes with controlled repeat
 * structure (see DESIGN.md). The accelerators only observe the
 * memory-access pattern of the index structures, which synthetic
 * sequences with realistic repeat content exercise identically.
 */

#ifndef BEACON_GENOMICS_DNA_HH
#define BEACON_GENOMICS_DNA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace beacon::genomics
{

/** 2-bit DNA base codes. */
enum Base : std::uint8_t
{
    BaseA = 0,
    BaseC = 1,
    BaseG = 2,
    BaseT = 3,
};

/** Number of plain DNA symbols. */
constexpr unsigned alphabet_size = 4;

/** Convert 'A'/'C'/'G'/'T' (either case) to a Base code. */
Base baseFromChar(char c);

/** Convert a Base code to its upper-case character. */
char charFromBase(Base b);

/** Complement of a base (A<->T, C<->G). */
inline Base
complement(Base b)
{
    return Base(3 - b);
}

/**
 * A DNA sequence stored two bits per base.
 */
class DnaSequence
{
  public:
    DnaSequence() = default;

    /** Parse from an ACGT string. */
    explicit DnaSequence(const std::string &acgt);

    std::size_t size() const { return length; }
    bool empty() const { return length == 0; }

    Base
    at(std::size_t i) const
    {
        return Base((words[i >> 5] >> ((i & 31) * 2)) & 3);
    }

    void push_back(Base b);

    /** Extract the substring [pos, pos + len). */
    DnaSequence substr(std::size_t pos, std::size_t len) const;

    /** Reverse complement of the whole sequence. */
    DnaSequence reverseComplement() const;

    /** Render as an ACGT string (for tests and debugging). */
    std::string str() const;

    bool operator==(const DnaSequence &o) const;

  private:
    std::vector<std::uint64_t> words;
    std::size_t length = 0;
};

/** Parameters for the synthetic genome generator. */
struct GenomeParams
{
    std::size_t length = 1 << 20;
    /** Fraction of the genome covered by copied repeats. */
    double repeat_fraction = 0.3;
    /** Length of each injected repeat segment. */
    std::size_t repeat_length = 500;
    /** Per-base mutation rate applied to repeat copies. */
    double repeat_divergence = 0.02;
    /** GC bias in [0,1]; 0.5 is uniform. */
    double gc_content = 0.45;
    std::uint64_t seed = 1;
};

/**
 * Generate a synthetic genome: a random backbone with mutated copies
 * of earlier segments pasted over @p repeat_fraction of the length,
 * mimicking the repeat structure that makes conifer genomes (the
 * paper's Pt/Pg/Ss datasets) hard for seeding.
 */
DnaSequence makeGenome(const GenomeParams &params);

/** Parameters for the read simulator. */
struct ReadParams
{
    std::size_t read_length = 100;
    std::size_t num_reads = 1000;
    /** Per-base substitution error rate. */
    double error_rate = 0.01;
    /** Fraction of reads taken from the reverse-complement strand. */
    double reverse_fraction = 0.5;
    std::uint64_t seed = 2;
};

/**
 * Sample reads uniformly from @p genome with substitution errors,
 * emulating NGS short reads.
 */
std::vector<DnaSequence> makeReads(const DnaSequence &genome,
                                   const ReadParams &params);

/**
 * Named dataset presets standing in for the paper's five genomes
 * (Pt, Pg, Ss, Am, Nf). Sizes are scaled to simulator-tractable
 * values; relative sizes and repeat content differ per preset.
 */
struct DatasetPreset
{
    const char *name;
    GenomeParams genome;
    ReadParams reads;
};

/** The five seeding/pre-alignment presets used by the benches. */
std::vector<DatasetPreset> seedingPresets(std::size_t scale = 1);

/** The k-mer counting preset ("human 50x", scaled). */
DatasetPreset kmerCountingPreset(std::size_t scale = 1);

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_DNA_HH
