#include "spectrum.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "genomics/kmer.hh"

namespace beacon::genomics
{

unsigned
KmerSpectrum::coveragePeak() const
{
    unsigned peak = 2;
    std::uint64_t best = 0;
    for (unsigned m = 2; m < bins.size(); ++m) {
        if (bins[m] > best) {
            best = bins[m];
            peak = m;
        }
    }
    return peak;
}

std::uint64_t
KmerSpectrum::estimatedGenomeSize() const
{
    const unsigned peak = coveragePeak();
    if (peak == 0)
        return 0;
    // Exclude multiplicity-1 (error) k-mers from the mass.
    std::uint64_t mass = 0;
    for (unsigned m = 2; m < bins.size(); ++m)
        mass += bins[m] * m;
    return mass / peak;
}

double
KmerSpectrum::singletonFraction() const
{
    if (distinct_kmers == 0)
        return 0;
    return double(bins.size() > 1 ? bins[1] : 0) /
           double(distinct_kmers);
}

KmerSpectrum
computeKmerSpectrum(const std::vector<DnaSequence> &reads, unsigned k,
                    unsigned max_multiplicity)
{
    BEACON_ASSERT(max_multiplicity >= 1, "need at least one bin");
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    KmerSpectrum spectrum;
    for (const DnaSequence &read : reads) {
        forEachKmer(read, k, [&](std::uint64_t kmer, std::size_t) {
            ++counts[canonicalKmer(kmer, k)];
            ++spectrum.total_kmers;
        });
    }
    spectrum.bins.assign(max_multiplicity + 1, 0);
    spectrum.distinct_kmers = counts.size();
    // Iteration order is hash-seed-dependent, but the loop only
    // increments integer bins — a commutative reduction, so the
    // emitted spectrum is order-independent (regression-tested by
    // SpectrumDeterminism.* in tests/test_report_spectrum.cc).
    // beacon-lint: allow(determinism-unordered-iter)
    for (const auto &[kmer, count] : counts) {
        const unsigned bin =
            std::min<std::uint32_t>(count, max_multiplicity);
        ++spectrum.bins[bin];
    }
    return spectrum;
}

} // namespace beacon::genomics
