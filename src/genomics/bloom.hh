/**
 * @file
 * Counting Bloom filter for k-mer counting (BFCounter / NEST style).
 *
 * Each inserted k-mer increments h saturating 8-bit counters chosen
 * by independent hashes; the multiplicity estimate is the minimum of
 * the h counters (an upper bound on the true count). The counter
 * array is the memory structure the KMC engine updates with 1-byte
 * read-modify-write operations — the RMW data race the paper's
 * Atomic Engine resolves.
 */

#ifndef BEACON_GENOMICS_BLOOM_HH
#define BEACON_GENOMICS_BLOOM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "genomics/kmer.hh"

namespace beacon::genomics
{

/** Saturating counting Bloom filter. */
class CountingBloomFilter
{
  public:
    /**
     * @param num_counters number of 8-bit counters (any positive
     *        value; indices are taken modulo this)
     * @param num_hashes   counters touched per insert
     */
    CountingBloomFilter(std::size_t num_counters, unsigned num_hashes,
                        std::uint64_t seed = 7)
        : counters(num_counters, 0), hashes(num_hashes), seed(seed)
    {
        BEACON_ASSERT(num_counters > 0, "empty filter");
        BEACON_ASSERT(num_hashes >= 1, "need at least one hash");
    }

    std::size_t size() const { return counters.size(); }
    unsigned numHashes() const { return hashes; }

    /** Counter index touched by hash @p h of @p kmer. */
    std::size_t
    counterIndex(std::uint64_t kmer, unsigned h) const
    {
        return hashKmer(kmer, seed + h) % counters.size();
    }

    /** Insert one occurrence. */
    void
    add(std::uint64_t kmer)
    {
        for (unsigned h = 0; h < hashes; ++h) {
            std::uint8_t &c = counters[counterIndex(kmer, h)];
            if (c != 255)
                ++c;
        }
    }

    /** Upper-bound estimate of the k-mer's multiplicity. */
    std::uint8_t
    count(std::uint64_t kmer) const
    {
        std::uint8_t m = 255;
        for (unsigned h = 0; h < hashes; ++h)
            m = std::min(m, counters[counterIndex(kmer, h)]);
        return m;
    }

    /** Merge another filter (saturating elementwise add). */
    void
    merge(const CountingBloomFilter &other)
    {
        BEACON_ASSERT(other.counters.size() == counters.size() &&
                          other.hashes == hashes &&
                          other.seed == seed,
                      "merging incompatible filters");
        for (std::size_t i = 0; i < counters.size(); ++i) {
            const unsigned sum =
                unsigned(counters[i]) + unsigned(other.counters[i]);
            counters[i] = std::uint8_t(std::min(sum, 255u));
        }
    }

    /** Raw storage footprint in bytes. */
    std::size_t footprintBytes() const { return counters.size(); }

  private:
    std::vector<std::uint8_t> counters;
    unsigned hashes;
    std::uint64_t seed;
};

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_BLOOM_HH
