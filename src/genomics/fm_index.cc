#include "fm_index.hh"

#include "common/logging.hh"

namespace beacon::genomics
{

FmIndex::FmIndex(const DnaSequence &text, unsigned sa_sample_rate)
    : sample_rate(sa_sample_rate)
{
    BEACON_ASSERT(sa_sample_rate > 0, "sample rate must be positive");
    const std::vector<std::uint32_t> sa = buildSuffixArray(text);
    bwt = buildBwt(text, sa);
    n = bwt.size();

    // C array: number of symbols strictly smaller than each symbol.
    std::array<std::uint64_t, 5> freq{};
    for (std::size_t i = 0; i < n; ++i) {
        if (bwt[i] == 4)
            sentinel_pos = i;
        else
            ++freq[bwt[i]];
    }
    // Symbol order: sentinel < A < C < G < T.
    c_counts[0] = 1; // one sentinel precedes base A
    for (unsigned c = 1; c < 5; ++c)
        c_counts[c] = c_counts[c - 1] + freq[c - 1];

    // Occ checkpoints every block_symbols positions.
    const std::uint64_t blocks = numBlocks();
    checkpoints.resize(blocks);
    std::array<std::uint32_t, 4> running{};
    for (std::uint64_t i = 0; i < n; ++i) {
        if (i % block_symbols == 0)
            checkpoints[i / block_symbols] = running;
        if (bwt[i] != 4)
            ++running[bwt[i]];
    }
    // Tail checkpoint so occ(n) also has a block.
    if (n % block_symbols == 0)
        checkpoints[n / block_symbols] = running;
    else
        checkpoints[blocks - 1] = running;

    // SA samples for locate().
    for (std::uint64_t i = 0; i < n; ++i) {
        if (sa[i] % sample_rate == 0)
            sa_samples.emplace(i, sa[i]);
    }
}

std::uint64_t
FmIndex::occ(Base c, std::uint64_t i) const
{
    BEACON_ASSERT(i <= n, "occ index out of range");
    const std::uint64_t block = i / block_symbols;
    std::uint64_t count = checkpoints[block][c];
    for (std::uint64_t j = block * block_symbols; j < i; ++j) {
        if (bwt[j] == c)
            ++count;
    }
    return count;
}

SaRange
FmIndex::extend(const SaRange &range, Base c) const
{
    if (range.empty())
        return SaRange{0, 0};
    return SaRange{c_counts[c] + occ(c, range.lo),
                   c_counts[c] + occ(c, range.hi)};
}

SaRange
FmIndex::search(const DnaSequence &pattern) const
{
    SaRange range = wholeRange();
    for (std::size_t i = pattern.size(); i > 0 && !range.empty(); --i)
        range = extend(range, pattern.at(i - 1));
    return range;
}

std::uint64_t
FmIndex::lf(std::uint64_t i) const
{
    if (i == sentinel_pos)
        return 0;
    const Base c = Base(bwt[i]);
    return c_counts[c] + occ(c, i);
}

std::vector<std::uint32_t>
FmIndex::locate(const SaRange &range, std::size_t max_hits) const
{
    std::vector<std::uint32_t> hits;
    for (std::uint64_t i = range.lo;
         i < range.hi && hits.size() < max_hits; ++i) {
        std::uint64_t pos = i;
        std::uint32_t steps = 0;
        for (;;) {
            auto it = sa_samples.find(pos);
            if (it != sa_samples.end()) {
                hits.push_back(it->second + steps);
                break;
            }
            pos = lf(pos);
            ++steps;
        }
    }
    return hits;
}

} // namespace beacon::genomics
