#include "dna.hh"

#include "common/logging.hh"

namespace beacon::genomics
{

Base
baseFromChar(char c)
{
    switch (c) {
      case 'A': case 'a':
        return BaseA;
      case 'C': case 'c':
        return BaseC;
      case 'G': case 'g':
        return BaseG;
      case 'T': case 't':
        return BaseT;
      default:
        BEACON_FATAL("invalid DNA character '", c, "'");
    }
}

char
charFromBase(Base b)
{
    static const char table[4] = {'A', 'C', 'G', 'T'};
    return table[b & 3];
}

DnaSequence::DnaSequence(const std::string &acgt)
{
    words.reserve((acgt.size() + 31) / 32);
    for (char c : acgt)
        push_back(baseFromChar(c));
}

void
DnaSequence::push_back(Base b)
{
    if ((length & 31) == 0)
        words.push_back(0);
    words[length >> 5] |=
        std::uint64_t(b & 3) << ((length & 31) * 2);
    ++length;
}

DnaSequence
DnaSequence::substr(std::size_t pos, std::size_t len) const
{
    BEACON_ASSERT(pos + len <= length, "substr out of range");
    DnaSequence out;
    for (std::size_t i = 0; i < len; ++i)
        out.push_back(at(pos + i));
    return out;
}

DnaSequence
DnaSequence::reverseComplement() const
{
    DnaSequence out;
    for (std::size_t i = length; i > 0; --i)
        out.push_back(complement(at(i - 1)));
    return out;
}

std::string
DnaSequence::str() const
{
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        out.push_back(charFromBase(at(i)));
    return out;
}

bool
DnaSequence::operator==(const DnaSequence &o) const
{
    if (length != o.length)
        return false;
    for (std::size_t i = 0; i < length; ++i) {
        if (at(i) != o.at(i))
            return false;
    }
    return true;
}

DnaSequence
makeGenome(const GenomeParams &p)
{
    Rng rng(p.seed);
    DnaSequence genome;

    // Random backbone with the requested GC bias.
    const double p_gc = p.gc_content / 2.0;
    const double p_at = (1.0 - p.gc_content) / 2.0;
    for (std::size_t i = 0; i < p.length; ++i) {
        const double r = rng.nextDouble();
        Base b;
        if (r < p_at)
            b = BaseA;
        else if (r < 2 * p_at)
            b = BaseT;
        else if (r < 2 * p_at + p_gc)
            b = BaseC;
        else
            b = BaseG;
        genome.push_back(b);
    }

    if (p.repeat_fraction <= 0 || p.length < 4 * p.repeat_length)
        return genome;

    // Overwrite stretches with mutated copies of earlier segments.
    // Rebuild through a mutable buffer for simplicity.
    std::string buf = genome.str();
    const std::size_t target =
        std::size_t(double(p.length) * p.repeat_fraction);
    std::size_t copied = 0;
    while (copied < target) {
        const std::size_t src =
            rng.next(p.length - p.repeat_length);
        const std::size_t dst =
            rng.next(p.length - p.repeat_length);
        for (std::size_t i = 0; i < p.repeat_length; ++i) {
            char c = buf[src + i];
            if (rng.chance(p.repeat_divergence))
                c = charFromBase(Base(rng.next(4)));
            buf[dst + i] = c;
        }
        copied += p.repeat_length;
    }
    return DnaSequence(buf);
}

std::vector<DnaSequence>
makeReads(const DnaSequence &genome, const ReadParams &p)
{
    BEACON_ASSERT(genome.size() >= p.read_length,
                  "genome shorter than read length");
    Rng rng(p.seed);
    std::vector<DnaSequence> reads;
    reads.reserve(p.num_reads);
    for (std::size_t r = 0; r < p.num_reads; ++r) {
        const std::size_t pos =
            rng.next(genome.size() - p.read_length + 1);
        DnaSequence read = genome.substr(pos, p.read_length);
        if (rng.chance(p.reverse_fraction))
            read = read.reverseComplement();
        // Apply substitution errors.
        DnaSequence noisy;
        for (std::size_t i = 0; i < read.size(); ++i) {
            Base b = read.at(i);
            if (rng.chance(p.error_rate))
                b = Base((b + 1 + rng.next(3)) & 3);
            noisy.push_back(b);
        }
        reads.push_back(std::move(noisy));
    }
    return reads;
}

std::vector<DatasetPreset>
seedingPresets(std::size_t scale)
{
    // Names follow the paper's five genomes; sizes/repeat structure
    // differ per preset so that per-dataset bars are not identical.
    std::vector<DatasetPreset> out;
    const struct
    {
        const char *name;
        std::size_t len;
        double repeats;
        double gc;
        std::uint64_t seed;
    } defs[] = {
        {"Pt", 1u << 20, 0.45, 0.38, 11},
        {"Pg", 3u << 18, 0.40, 0.39, 12},
        {"Ss", 1u << 19, 0.35, 0.42, 13},
        {"Am", 3u << 17, 0.25, 0.46, 14},
        {"Nf", 1u << 18, 0.20, 0.44, 15},
    };
    for (const auto &d : defs) {
        DatasetPreset preset;
        preset.name = d.name;
        preset.genome.length = d.len * scale;
        preset.genome.repeat_fraction = d.repeats;
        preset.genome.gc_content = d.gc;
        preset.genome.seed = d.seed;
        preset.reads.read_length = 100;
        preset.reads.num_reads = 400;
        preset.reads.error_rate = 0.01;
        preset.reads.seed = d.seed + 100;
        out.push_back(preset);
    }
    return out;
}

DatasetPreset
kmerCountingPreset(std::size_t scale)
{
    DatasetPreset preset;
    preset.name = "human50x";
    preset.genome.length = (1u << 20) * scale;
    preset.genome.repeat_fraction = 0.30;
    preset.genome.gc_content = 0.41;
    preset.genome.seed = 21;
    preset.reads.read_length = 100;
    // 50x coverage over the genome.
    preset.reads.num_reads =
        preset.genome.length * 50 / preset.reads.read_length;
    preset.reads.error_rate = 0.01;
    preset.reads.seed = 121;
    return preset;
}

} // namespace beacon::genomics
