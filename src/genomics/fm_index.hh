/**
 * @file
 * FM-index with sampled occurrence table and SA samples.
 *
 * The layout mirrors what the FM-index engine in MEDAL/BEACON
 * accesses: the Occ structure is organised in 32-byte blocks (a
 * 16-byte checkpoint of four base counters plus 64 packed BWT
 * symbols), and one backward-search step fetches the blocks holding
 * the low and high pointers — the fine-grained 32 B accesses the
 * paper's Data Packer and multi-chip coalescing optimise.
 */

#ifndef BEACON_GENOMICS_FM_INDEX_HH
#define BEACON_GENOMICS_FM_INDEX_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "genomics/dna.hh"
#include "genomics/suffix_array.hh"

namespace beacon::genomics
{

/** Half-open suffix-array interval [lo, hi). */
struct SaRange
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool empty() const { return hi <= lo; }
    std::uint64_t count() const { return empty() ? 0 : hi - lo; }

    bool
    operator==(const SaRange &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/** FM-index over a DNA text. */
class FmIndex
{
  public:
    /** Occ checkpoint spacing in BWT symbols. */
    static constexpr unsigned block_symbols = 64;
    /** Bytes fetched per Occ block access (checkpoint + symbols). */
    static constexpr unsigned block_bytes = 32;

    /**
     * Build the index.
     * @param text the genome
     * @param sa_sample_rate keep SA[i] samples for text positions
     *        divisible by this rate (for locate()).
     */
    explicit FmIndex(const DnaSequence &text,
                     unsigned sa_sample_rate = 32);

    /** Size of the indexed text including the sentinel. */
    std::uint64_t size() const { return n; }

    /** The range covering every suffix. */
    SaRange wholeRange() const { return SaRange{0, n}; }

    /** Occurrences of base @p c in BWT[0, i). */
    std::uint64_t occ(Base c, std::uint64_t i) const;

    /** One backward-search step: prepend base @p c to the pattern. */
    SaRange extend(const SaRange &range, Base c) const;

    /** Full backward search; returns the range of exact matches. */
    SaRange search(const DnaSequence &pattern) const;

    /**
     * Text positions of matches in @p range (up to @p max_hits),
     * recovered by LF-stepping to the nearest SA sample.
     */
    std::vector<std::uint32_t> locate(const SaRange &range,
                                      std::size_t max_hits) const;

    /** Occ block holding BWT position @p i. */
    std::uint64_t blockOf(std::uint64_t i) const
    {
        return i / block_symbols;
    }

    /** Number of Occ blocks (the accelerator's index footprint). */
    std::uint64_t
    numBlocks() const
    {
        return (n + block_symbols - 1) / block_symbols + 1;
    }

    /** Total index bytes as laid out in accelerator memory. */
    std::uint64_t indexBytes() const { return numBlocks() * block_bytes; }

  private:
    /** LF mapping (one backward step for a single BWT position). */
    std::uint64_t lf(std::uint64_t i) const;

    std::uint64_t n = 0;             //!< text size + 1
    std::uint64_t sentinel_pos = 0;  //!< BWT index of the sentinel
    std::array<std::uint64_t, 5> c_counts{}; //!< C[] array
    std::vector<std::uint8_t> bwt;   //!< BWT symbols (0..3, 4=sentinel)
    /** Checkpoints: counts of each base before each block. */
    std::vector<std::array<std::uint32_t, 4>> checkpoints;
    unsigned sample_rate;
    std::unordered_map<std::uint64_t, std::uint32_t> sa_samples;
};

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_FM_INDEX_HH
