/**
 * @file
 * Hash-based seeding index (SMALT style).
 *
 * Maps every k-mer of the reference to its occurrence positions. The
 * flattened layout mirrors the accelerator's memory image: a bucket
 * table (one 8-byte descriptor per bucket: offset + length) and a
 * contiguous location array. Matching locations of one seed are
 * stored consecutively — the spatial locality the paper's data
 * placement scheme maps row-by-row into DRAM.
 */

#ifndef BEACON_GENOMICS_HASH_INDEX_HH
#define BEACON_GENOMICS_HASH_INDEX_HH

#include <cstdint>
#include <span>
#include <vector>

#include "genomics/dna.hh"
#include "genomics/kmer.hh"

namespace beacon::genomics
{

/** Hash-index over a reference genome. */
class HashIndex
{
  public:
    /**
     * @param genome reference to index
     * @param k seed length (<= 32)
     * @param buckets_log2 log2 of the bucket-table size
     * @param max_hits_per_seed drop ultra-repetitive seeds beyond
     *        this many occurrences (standard seeding practice)
     */
    HashIndex(const DnaSequence &genome, unsigned k = 15,
              unsigned buckets_log2 = 18,
              unsigned max_hits_per_seed = 64);

    unsigned k() const { return k_; }
    std::size_t numBuckets() const { return bucket_table.size(); }

    /** Bucket holding @p kmer (strand-invariant: canonical form). */
    std::size_t
    bucketOf(std::uint64_t kmer) const
    {
        return hashKmer(canonicalKmer(kmer, k_), 17) &
               (bucket_table.size() - 1);
    }

    /**
     * Positions whose k-mer hashes to the same bucket as @p kmer
     * (bucket-level collisions are possible, as in the real layout;
     * callers verify candidates downstream).
     */
    std::span<const std::uint32_t> lookup(std::uint64_t kmer) const;

    /** Number of locations stored for @p kmer's bucket. */
    std::size_t
    hitCount(std::uint64_t kmer) const
    {
        return lookup(kmer).size();
    }

    /** Bytes of the bucket descriptor table. */
    std::size_t
    bucketTableBytes() const
    {
        return bucket_table.size() * sizeof(BucketDesc);
    }

    /** Bytes of the flattened location array. */
    std::size_t
    locationBytes() const
    {
        return locations.size() * sizeof(std::uint32_t);
    }

    /** Byte offset of a bucket's locations in the location array. */
    std::uint64_t
    locationOffsetBytes(std::uint64_t kmer) const
    {
        return bucket_table[bucketOf(kmer)].offset *
               sizeof(std::uint32_t);
    }

  private:
    struct BucketDesc
    {
        std::uint32_t offset = 0;
        std::uint32_t length = 0;
    };

    unsigned k_;
    std::vector<BucketDesc> bucket_table;
    std::vector<std::uint32_t> locations;
};

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_HASH_INDEX_HH
