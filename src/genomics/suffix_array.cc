#include "suffix_array.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace beacon::genomics
{

namespace
{

/**
 * SA-IS core over an integer string that ends with a unique smallest
 * sentinel (value 0). Returns the suffix array of @p s.
 */
std::vector<std::uint32_t>
saisCore(const std::vector<std::uint32_t> &s, std::uint32_t alphabet)
{
    const std::size_t n = s.size();
    std::vector<std::uint32_t> sa(n, std::uint32_t(-1));
    if (n == 1) {
        sa[0] = 0;
        return sa;
    }

    // Suffix types: true = S-type (suffix smaller than successor).
    std::vector<bool> is_s(n);
    is_s[n - 1] = true;
    for (std::size_t i = n - 1; i-- > 0;) {
        is_s[i] =
            s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    auto is_lms = [&](std::size_t i) {
        return i > 0 && is_s[i] && !is_s[i - 1];
    };

    // Bucket boundaries per symbol.
    std::vector<std::uint32_t> counts(alphabet, 0);
    for (std::uint32_t c : s)
        ++counts[c];
    std::vector<std::uint32_t> heads(alphabet), tails(alphabet);
    auto reset_buckets = [&] {
        std::uint32_t sum = 0;
        for (std::uint32_t c = 0; c < alphabet; ++c) {
            heads[c] = sum;
            sum += counts[c];
            tails[c] = sum; // one past the end
        }
    };

    auto induce = [&] {
        // Induce L-type suffixes left to right.
        reset_buckets();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t j = sa[i];
            if (j == std::uint32_t(-1) || j == 0)
                continue;
            if (!is_s[j - 1])
                sa[heads[s[j - 1]]++] = j - 1;
        }
        // Induce S-type suffixes right to left.
        reset_buckets();
        for (std::size_t i = n; i-- > 0;) {
            const std::uint32_t j = sa[i];
            if (j == std::uint32_t(-1) || j == 0)
                continue;
            if (is_s[j - 1])
                sa[--tails[s[j - 1]]] = j - 1;
        }
    };

    // --- Step 1: approximately sort LMS suffixes ---
    reset_buckets();
    std::vector<std::uint32_t> lms_positions;
    for (std::size_t i = 1; i < n; ++i) {
        if (is_lms(i))
            lms_positions.push_back(std::uint32_t(i));
    }
    for (std::uint32_t p : lms_positions)
        sa[--tails[s[p]]] = p;
    induce();

    // Collect LMS suffixes in their induced order.
    std::vector<std::uint32_t> lms_sorted;
    lms_sorted.reserve(lms_positions.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (sa[i] != std::uint32_t(-1) && is_lms(sa[i]))
            lms_sorted.push_back(sa[i]);
    }

    // Name LMS substrings.
    std::vector<std::uint32_t> name_of(n, std::uint32_t(-1));
    std::uint32_t names = 0;
    std::uint32_t prev = std::uint32_t(-1);
    auto lms_equal = [&](std::uint32_t a, std::uint32_t b) {
        for (std::size_t k = 0;; ++k) {
            const bool a_end = k > 0 && is_lms(a + k);
            const bool b_end = k > 0 && is_lms(b + k);
            if (a_end && b_end)
                return true;
            if (a_end != b_end)
                return false;
            if (a + k >= n || b + k >= n)
                return false;
            if (s[a + k] != s[b + k] ||
                is_s[a + k] != is_s[b + k]) {
                return false;
            }
        }
    };
    for (std::uint32_t p : lms_sorted) {
        if (prev != std::uint32_t(-1) && !lms_equal(prev, p))
            ++names;
        name_of[p] = names;
        prev = p;
    }
    ++names; // count, not last index

    // --- Step 2: order LMS suffixes exactly ---
    std::vector<std::uint32_t> lms_order;
    if (names == lms_positions.size()) {
        // All names unique: the induced order is already exact.
        lms_order = lms_sorted;
    } else {
        // Recurse on the reduced string of LMS names.
        std::vector<std::uint32_t> reduced;
        reduced.reserve(lms_positions.size());
        for (std::uint32_t p : lms_positions)
            reduced.push_back(name_of[p]);
        const std::vector<std::uint32_t> sa1 =
            saisCore(reduced, names);
        lms_order.reserve(lms_positions.size());
        for (std::uint32_t r : sa1)
            lms_order.push_back(lms_positions[r]);
    }

    // --- Step 3: induce the full order from the sorted LMS set ---
    std::fill(sa.begin(), sa.end(), std::uint32_t(-1));
    reset_buckets();
    for (std::size_t i = lms_order.size(); i-- > 0;)
        sa[--tails[s[lms_order[i]]]] = lms_order[i];
    induce();
    return sa;
}

std::vector<std::uint32_t>
toIntString(const DnaSequence &seq)
{
    // Bases map to 1..4; the appended sentinel is 0.
    std::vector<std::uint32_t> s(seq.size() + 1);
    for (std::size_t i = 0; i < seq.size(); ++i)
        s[i] = seq.at(i) + 1;
    s[seq.size()] = 0;
    return s;
}

} // namespace

std::vector<std::uint32_t>
buildSuffixArray(const DnaSequence &seq)
{
    return saisCore(toIntString(seq), 5);
}

std::vector<std::uint32_t>
buildSuffixArrayDoubling(const DnaSequence &seq)
{
    const std::size_t n = seq.size() + 1; // with sentinel
    std::vector<std::uint32_t> sa(n);
    std::iota(sa.begin(), sa.end(), 0u);

    // Initial ranks: sentinel (position n-1) ranks 0, bases 1..4.
    std::vector<std::uint32_t> rank(n), tmp(n);
    for (std::size_t i = 0; i + 1 < n; ++i)
        rank[i] = seq.at(i) + 1;
    rank[n - 1] = 0;

    for (std::size_t k = 1;; k <<= 1) {
        auto cmp = [&](std::uint32_t a, std::uint32_t b) {
            if (rank[a] != rank[b])
                return rank[a] < rank[b];
            const std::uint32_t ra =
                a + k < n ? rank[a + k] + 1 : 0;
            const std::uint32_t rb =
                b + k < n ? rank[b + k] + 1 : 0;
            return ra < rb;
        };
        std::sort(sa.begin(), sa.end(), cmp);

        tmp[sa[0]] = 0;
        for (std::size_t i = 1; i < n; ++i) {
            tmp[sa[i]] =
                tmp[sa[i - 1]] + (cmp(sa[i - 1], sa[i]) ? 1 : 0);
        }
        rank.swap(tmp);
        if (rank[sa[n - 1]] == n - 1)
            break;
    }
    return sa;
}

std::vector<std::uint8_t>
buildBwt(const DnaSequence &seq,
         const std::vector<std::uint32_t> &sa)
{
    const std::size_t n = sa.size();
    BEACON_ASSERT(n == seq.size() + 1, "suffix array size mismatch");
    std::vector<std::uint8_t> bwt(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (sa[i] == 0)
            bwt[i] = 4; // sentinel
        else
            bwt[i] = seq.at(sa[i] - 1);
    }
    return bwt;
}

} // namespace beacon::genomics
