/**
 * @file
 * k-mer spectrum analysis.
 *
 * The downstream consumer of k-mer counting (the paper's third
 * application) is usually a spectrum: the histogram of k-mer
 * multiplicities, from which genome size and coverage are estimated
 * and sequencing errors separated (error k-mers pile up at
 * multiplicity 1, genomic k-mers peak near the coverage depth).
 */

#ifndef BEACON_GENOMICS_SPECTRUM_HH
#define BEACON_GENOMICS_SPECTRUM_HH

#include <cstdint>
#include <vector>

#include "genomics/dna.hh"

namespace beacon::genomics
{

/** Histogram of canonical k-mer multiplicities. */
struct KmerSpectrum
{
    /** spectrum[m] = number of distinct k-mers seen exactly m times
     *  (index 0 unused; the last bin saturates). */
    std::vector<std::uint64_t> bins;
    std::uint64_t distinct_kmers = 0;
    std::uint64_t total_kmers = 0;

    /** Multiplicity of the non-error peak (argmax for m >= 2). */
    unsigned coveragePeak() const;

    /** Genome-size estimate: total k-mers / peak multiplicity. */
    std::uint64_t estimatedGenomeSize() const;

    /** Fraction of distinct k-mers at multiplicity 1 (error-ish). */
    double singletonFraction() const;
};

/**
 * Exact spectrum of the canonical @p k-mers of @p reads, with
 * multiplicities capped at @p max_multiplicity.
 */
KmerSpectrum
computeKmerSpectrum(const std::vector<DnaSequence> &reads, unsigned k,
                    unsigned max_multiplicity = 255);

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_SPECTRUM_HH
