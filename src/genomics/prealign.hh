/**
 * @file
 * DNA pre-alignment filtering (Shouji style).
 *
 * A pre-alignment filter cheaply rejects (read, reference-window)
 * candidate pairs that cannot align within an edit-distance
 * threshold, sparing the expensive dynamic-programming aligner. The
 * Shouji algorithm builds one match bit-vector per diagonal of the
 * banded alignment matrix, then slides a 4-bit window and keeps the
 * best (most-matching) diagonal segment per window; the number of
 * zeros in the assembled vector lower-bounds the edit count.
 */

#ifndef BEACON_GENOMICS_PREALIGN_HH
#define BEACON_GENOMICS_PREALIGN_HH

#include <cstdint>
#include <vector>

#include "genomics/dna.hh"

namespace beacon::genomics
{

/** Result of the filter together with its edit lower bound. */
struct PrealignResult
{
    bool accepted = false;
    unsigned estimated_edits = 0;
};

/**
 * Shouji-style pre-alignment filter.
 *
 * @param read       the query sequence
 * @param ref_window a reference window of the same length
 * @param threshold  maximum tolerated edits
 *
 * Guarantee (tested): a pair whose true banded edit distance is
 * <= threshold is never rejected; pairs far beyond the threshold are
 * rejected with high probability.
 */
PrealignResult shoujiFilter(const DnaSequence &read,
                            const DnaSequence &ref_window,
                            unsigned threshold);

/**
 * Banded edit distance (Levenshtein) between @p a and @p b, exploring
 * +-@p band diagonals; values above @p band are reported as band + 1.
 * Used as ground truth in tests and by the CPU baseline model.
 */
unsigned bandedEditDistance(const DnaSequence &a, const DnaSequence &b,
                            unsigned band);

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_PREALIGN_HH
