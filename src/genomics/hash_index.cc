#include "hash_index.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace beacon::genomics
{

HashIndex::HashIndex(const DnaSequence &genome, unsigned k,
                     unsigned buckets_log2, unsigned max_hits_per_seed)
    : k_(k)
{
    BEACON_ASSERT(k >= 1 && k <= 32, "k out of range");
    BEACON_ASSERT(buckets_log2 >= 1 && buckets_log2 < 32,
                  "bucket table size out of range");
    const std::size_t num_buckets = std::size_t{1} << buckets_log2;
    bucket_table.resize(num_buckets);

    // Two passes: count per bucket, then fill.
    std::vector<std::uint32_t> counts(num_buckets, 0);
    forEachKmer(genome, k, [&](std::uint64_t kmer, std::size_t) {
        ++counts[bucketOf(kmer)];
    });

    std::uint32_t offset = 0;
    for (std::size_t b = 0; b < num_buckets; ++b) {
        const std::uint32_t len =
            std::min(counts[b], max_hits_per_seed);
        bucket_table[b].offset = offset;
        bucket_table[b].length = 0; // filled below
        offset += len;
        counts[b] = len;
    }
    locations.resize(offset);

    forEachKmer(genome, k, [&](std::uint64_t kmer, std::size_t pos) {
        BucketDesc &bucket = bucket_table[bucketOf(kmer)];
        if (bucket.length < counts[bucketOf(kmer)]) {
            locations[bucket.offset + bucket.length] =
                std::uint32_t(pos);
            ++bucket.length;
        }
    });
}

std::span<const std::uint32_t>
HashIndex::lookup(std::uint64_t kmer) const
{
    const BucketDesc &bucket = bucket_table[bucketOf(kmer)];
    return std::span<const std::uint32_t>(
        locations.data() + bucket.offset, bucket.length);
}

} // namespace beacon::genomics
