#include "io.hh"

#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace beacon::genomics
{

namespace
{

/** True for symbols we accept verbatim. */
bool
isPlainBase(char c)
{
    switch (c) {
      case 'A': case 'a': case 'C': case 'c':
      case 'G': case 'g': case 'T': case 't':
        return true;
      default:
        return false;
    }
}

/** Deterministic substitution for ambiguity codes (as indexers do). */
Base
substituteBase(char c, std::size_t position)
{
    // IUPAC codes map to one of their candidates; anything else
    // rotates by position so long N-runs don't create fake repeats.
    switch (c) {
      case 'R': case 'r':
        return position % 2 ? BaseA : BaseG;
      case 'Y': case 'y':
        return position % 2 ? BaseC : BaseT;
      case 'S': case 's':
        return position % 2 ? BaseG : BaseC;
      case 'W': case 'w':
        return position % 2 ? BaseA : BaseT;
      case 'K': case 'k':
        return position % 2 ? BaseG : BaseT;
      case 'M': case 'm':
        return position % 2 ? BaseA : BaseC;
      default:
        return Base(position & 3);
    }
}

[[noreturn]] void
malformed(std::size_t line, const std::string &what)
{
    throw std::runtime_error("line " + std::to_string(line) + ": " +
                             what);
}

void
appendSequenceLine(const std::string &text, std::size_t line_no,
                   DnaSequence &sequence,
                   std::uint64_t &substituted)
{
    for (char c : text) {
        if (c == '\r' || c == ' ' || c == '\t')
            continue;
        if (isPlainBase(c)) {
            sequence.push_back(baseFromChar(c));
        } else if (std::isalpha(static_cast<unsigned char>(c))) {
            sequence.push_back(substituteBase(c, sequence.size()));
            ++substituted;
        } else {
            malformed(line_no, std::string("invalid symbol '") + c +
                                   "' in sequence");
        }
    }
}

} // namespace

std::vector<FastaRecord>
parseFasta(std::istream &in)
{
    std::vector<FastaRecord> records;
    std::string line;
    std::size_t line_no = 0;
    bool in_record = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line == "\r")
            continue;
        if (line[0] == '>') {
            FastaRecord record;
            record.name = line.substr(1);
            while (!record.name.empty() &&
                   (record.name.back() == '\r')) {
                record.name.pop_back();
            }
            records.push_back(std::move(record));
            in_record = true;
            continue;
        }
        if (!in_record)
            malformed(line_no, "sequence data before any '>' header");
        appendSequenceLine(line, line_no, records.back().sequence,
                           records.back().substituted_bases);
    }
    for (const FastaRecord &record : records) {
        if (record.sequence.empty()) {
            throw std::runtime_error("record '" + record.name +
                                     "' has no sequence");
        }
    }
    return records;
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
           std::size_t width)
{
    for (const FastaRecord &record : records) {
        out << '>' << record.name << '\n';
        const std::string text = record.sequence.str();
        for (std::size_t i = 0; i < text.size(); i += width)
            out << text.substr(i, width) << '\n';
    }
}

std::vector<FastqRecord>
parseFastq(std::istream &in)
{
    std::vector<FastqRecord> records;
    std::string header, seq, plus, quality;
    std::size_t line_no = 0;
    while (std::getline(in, header)) {
        ++line_no;
        if (header.empty() || header == "\r")
            continue;
        if (header[0] != '@')
            malformed(line_no, "expected '@' record header");
        if (!std::getline(in, seq))
            malformed(line_no + 1, "missing sequence line");
        if (!std::getline(in, plus))
            malformed(line_no + 2, "missing '+' separator");
        if (plus.empty() || plus[0] != '+')
            malformed(line_no + 2, "expected '+' separator");
        if (!std::getline(in, quality))
            malformed(line_no + 3, "missing quality line");

        FastqRecord record;
        record.name = header.substr(1);
        while (!record.name.empty() && record.name.back() == '\r')
            record.name.pop_back();
        appendSequenceLine(seq, line_no + 1, record.sequence,
                           record.substituted_bases);
        record.quality = quality;
        while (!record.quality.empty() &&
               record.quality.back() == '\r') {
            record.quality.pop_back();
        }
        if (record.quality.size() != record.sequence.size()) {
            malformed(line_no + 3,
                      "quality length " +
                          std::to_string(record.quality.size()) +
                          " != sequence length " +
                          std::to_string(record.sequence.size()));
        }
        records.push_back(std::move(record));
        line_no += 3;
    }
    return records;
}

void
writeFastq(std::ostream &out, const std::vector<FastqRecord> &records)
{
    for (const FastqRecord &record : records) {
        out << '@' << record.name << '\n'
            << record.sequence.str() << '\n'
            << "+\n"
            << record.quality << '\n';
    }
}

std::vector<DnaSequence>
sequencesOf(const std::vector<FastqRecord> &records)
{
    std::vector<DnaSequence> out;
    out.reserve(records.size());
    for (const FastqRecord &record : records)
        out.push_back(record.sequence);
    return out;
}

} // namespace beacon::genomics
