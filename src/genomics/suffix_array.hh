/**
 * @file
 * Suffix-array construction over DNA sequences.
 */

#ifndef BEACON_GENOMICS_SUFFIX_ARRAY_HH
#define BEACON_GENOMICS_SUFFIX_ARRAY_HH

#include <cstdint>
#include <vector>

#include "genomics/dna.hh"

namespace beacon::genomics
{

/**
 * Build the suffix array of @p seq with an implicit sentinel that
 * sorts before every base (the returned array has size
 * seq.size() + 1 and position seq.size() — the empty suffix — first).
 *
 * Linear-time SA-IS (induced sorting).
 */
std::vector<std::uint32_t> buildSuffixArray(const DnaSequence &seq);

/**
 * Prefix-doubling construction, O(n log^2 n). Kept as an independent
 * oracle for property tests of the SA-IS implementation.
 */
std::vector<std::uint32_t>
buildSuffixArrayDoubling(const DnaSequence &seq);

/**
 * Burrows-Wheeler transform derived from a suffix array. Symbols are
 * 0..3 for bases and 4 for the sentinel.
 */
std::vector<std::uint8_t>
buildBwt(const DnaSequence &seq,
         const std::vector<std::uint32_t> &suffix_array);

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_SUFFIX_ARRAY_HH
