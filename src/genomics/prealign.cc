#include "prealign.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon::genomics
{

PrealignResult
shoujiFilter(const DnaSequence &read, const DnaSequence &ref_window,
             unsigned threshold)
{
    BEACON_ASSERT(read.size() == ref_window.size(),
                  "read/window length mismatch");
    const std::size_t len = read.size();
    const int band = int(threshold);

    // Match bit-vector per diagonal: match[d][i] == 1 when
    // read[i] == ref[i + d] for d in [-band, band].
    const unsigned diagonals = 2 * threshold + 1;
    std::vector<std::vector<std::uint8_t>> match(
        diagonals, std::vector<std::uint8_t>(len, 0));
    for (unsigned di = 0; di < diagonals; ++di) {
        const int d = int(di) - band;
        for (std::size_t i = 0; i < len; ++i) {
            const std::int64_t j = std::int64_t(i) + d;
            if (j >= 0 && j < std::int64_t(len) &&
                read.at(i) == ref_window.at(std::size_t(j))) {
                match[di][i] = 1;
            }
        }
    }

    // Sliding 4-bit window: keep, per window, the diagonal segment
    // with the most matches (Shouji's greedy common-subsequence
    // construction).
    constexpr std::size_t window = 4;
    std::vector<std::uint8_t> assembled(len, 0);
    for (std::size_t w = 0; w < len; w += window) {
        const std::size_t end = std::min(w + window, len);
        unsigned best_matches = 0;
        unsigned best_diag = 0;
        for (unsigned di = 0; di < diagonals; ++di) {
            unsigned m = 0;
            for (std::size_t i = w; i < end; ++i)
                m += match[di][i];
            if (m > best_matches) {
                best_matches = m;
                best_diag = di;
            }
        }
        for (std::size_t i = w; i < end; ++i)
            assembled[i] = match[best_diag][i];
    }

    // Count zeros; consecutive zeros within one window stem from a
    // single edit, so compress runs of up to `window` zeros into one.
    unsigned edits = 0;
    std::size_t i = 0;
    while (i < len) {
        if (assembled[i]) {
            ++i;
            continue;
        }
        std::size_t run = 0;
        while (i < len && !assembled[i] && run < window) {
            ++run;
            ++i;
        }
        ++edits;
    }

    PrealignResult result;
    result.estimated_edits = edits;
    result.accepted = edits <= threshold;
    return result;
}

unsigned
bandedEditDistance(const DnaSequence &a, const DnaSequence &b,
                   unsigned band)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const unsigned inf = band + 1;
    std::vector<unsigned> prev(m + 1, inf), cur(m + 1, inf);
    for (std::size_t j = 0; j <= std::min<std::size_t>(m, band); ++j)
        prev[j] = unsigned(j);
    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(cur.begin(), cur.end(), inf);
        const std::size_t lo =
            i > band ? i - band : 0;
        const std::size_t hi = std::min(m, i + band);
        if (lo == 0)
            cur[0] = unsigned(i) <= band ? unsigned(i) : inf;
        for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi;
             ++j) {
            const unsigned sub =
                prev[j - 1] + (a.at(i - 1) == b.at(j - 1) ? 0 : 1);
            const unsigned del = prev[j] == inf ? inf : prev[j] + 1;
            const unsigned ins = cur[j - 1] == inf ? inf : cur[j - 1] + 1;
            cur[j] = std::min({sub, del, ins, inf});
        }
        prev.swap(cur);
    }
    return std::min(prev[m], inf);
}

} // namespace beacon::genomics
