/**
 * @file
 * FASTA / FASTQ input and output.
 *
 * Lets the workloads run on real sequence data instead of the
 * synthetic generators. Non-ACGT symbols (N, IUPAC ambiguity codes)
 * are substituted deterministically and counted, as common aligners
 * do for indexing. Malformed records raise std::runtime_error with a
 * line-numbered message.
 */

#ifndef BEACON_GENOMICS_IO_HH
#define BEACON_GENOMICS_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/dna.hh"

namespace beacon::genomics
{

/** One FASTA record. */
struct FastaRecord
{
    std::string name;    //!< header without the leading '>'
    DnaSequence sequence;
    /** Non-ACGT symbols replaced during parsing. */
    std::uint64_t substituted_bases = 0;
};

/** One FASTQ record. */
struct FastqRecord
{
    std::string name;    //!< header without the leading '@'
    DnaSequence sequence;
    std::string quality; //!< Phred string, same length as sequence
    std::uint64_t substituted_bases = 0;
};

/**
 * Parse every record of a FASTA stream (multi-line sequences,
 * blank-line tolerant).
 * @throws std::runtime_error on malformed input.
 */
std::vector<FastaRecord> parseFasta(std::istream &in);

/** Write records in FASTA format with @p width bases per line. */
void writeFasta(std::ostream &out,
                const std::vector<FastaRecord> &records,
                std::size_t width = 70);

/**
 * Parse every record of a FASTQ stream (4-line records).
 * @throws std::runtime_error on malformed input.
 */
std::vector<FastqRecord> parseFastq(std::istream &in);

/** Write records in FASTQ format. */
void writeFastq(std::ostream &out,
                const std::vector<FastqRecord> &records);

/** Extract just the sequences (for the workload constructors). */
std::vector<DnaSequence>
sequencesOf(const std::vector<FastqRecord> &records);

} // namespace beacon::genomics

#endif // BEACON_GENOMICS_IO_HH
