/**
 * @file
 * Toggles for the runtime verification layer.
 *
 * Checkers are independent shadow models that re-validate what the
 * timing models already enforce; they cost time and exist to catch
 * simulator bugs, so they default to off and are switched on by the
 * fuzz/CI harnesses (or globally via the BEACON_CHECKERS environment
 * variable).
 */

#ifndef BEACON_CHECK_CHECKER_CONFIG_HH
#define BEACON_CHECK_CHECKER_CONFIG_HH

#include <cstdlib>

namespace beacon
{

/** Which checkers a component should instantiate. */
struct CheckerConfig
{
    /** Shadow-validate every DRAM command against JEDEC timings. */
    bool dram_protocol = false;
    /** FIFO ordering / bandwidth conservation on CXL links. */
    bool cxl_link = false;
    /** Task and access accounting invariants in NDP modules. */
    bool ndp_accounting = false;
    /** Command-history ring kept for violation dumps. */
    unsigned history_depth = 64;
    /**
     * Refreshes a rank may postpone before the checker flags a tREFI
     * violation (JEDEC DDR4 allows postponing up to 8).
     */
    unsigned max_postponed_refreshes = 8;

    /** True when any checker is requested. */
    bool
    any() const
    {
        return dram_protocol || cxl_link || ndp_accounting;
    }

    /** Every checker enabled. */
    static CheckerConfig
    all()
    {
        CheckerConfig c;
        c.dram_protocol = true;
        c.cxl_link = true;
        c.ndp_accounting = true;
        return c;
    }

    /** Everything off (the default-constructed state, spelled out). */
    static CheckerConfig
    none()
    {
        return CheckerConfig{};
    }

    /**
     * all() when the BEACON_CHECKERS environment variable is set to a
     * non-empty value other than "0", none() otherwise. Lets CI runs
     * arm every checker without touching individual harnesses.
     */
    static CheckerConfig
    fromEnv()
    {
        const char *v = std::getenv("BEACON_CHECKERS");
        if (v != nullptr && v[0] != '\0' &&
            !(v[0] == '0' && v[1] == '\0')) {
            return all();
        }
        return none();
    }
};

} // namespace beacon

#endif // BEACON_CHECK_CHECKER_CONFIG_HH
