/**
 * @file
 * Runtime checker for the CXL communication substrate.
 *
 * A CxlLinkChecker shadows every serial channel it is attached to (a
 * link direction or a switch bus) and re-derives, from the observed
 * (depart, bytes) stream alone, when each transfer must finish
 * serialising. It validates:
 *
 *   - FIFO ordering per channel: a transfer never overtakes an
 *     earlier one (serialisation completes in submit order, arrival
 *     ticks are monotonically non-decreasing);
 *   - bandwidth conservation: the channel's reported finish time and
 *     cumulative busy time exactly match the shadow reservation at
 *     the channel's fixed byte rate;
 *   - request/response balance at the fabric level: every message
 *     submitted to the fabric is eventually delivered, and a
 *     delivery never precedes its submission.
 */

#ifndef BEACON_CHECK_LINK_CHECKER_HH
#define BEACON_CHECK_LINK_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/checker_config.hh"
#include "common/units.hh"

namespace beacon
{

/** Shadow model of the pool's serial channels + message balance. */
class CxlLinkChecker
{
  public:
    explicit CxlLinkChecker(std::string name,
                            const CheckerConfig &config = {});

    /** Register one serial channel; @return its channel id. */
    unsigned registerChannel(const std::string &label);

    /**
     * Observe one transfer on @p channel: submitted at @p depart,
     * channel reports serialisation done at @p serialized and
     * delivery at @p arrive (>= serialized). Panics when the
     * reported times disagree with the shadow reservation.
     */
    void onTransfer(unsigned channel, Tick depart, Tick serialized,
                    Tick arrive, Bytes bytes, double rate_gbps,
                    bool ideal);

    /**
     * Compare a channel's cumulative busy time against the shadow
     * expectation (bandwidth conservation over the whole run).
     */
    void checkBusyTicks(unsigned channel, Tick actual_busy_ticks) const;

    /** A message entered the fabric. */
    void onSubmit(Tick now);

    /** A message left the fabric (reached its destination). */
    void onDeliver(Tick now);

    /** End-of-run: every submitted message must have been delivered. */
    void finalize() const;

    std::uint64_t submitted() const { return n_submitted; }
    std::uint64_t delivered() const { return n_delivered; }

  private:
    struct Channel
    {
        std::string label;
        Tick busy_until = 0;         //!< shadow reservation horizon
        Tick expected_busy_ticks = 0;
        Tick last_arrival = 0;
        bool has_arrival = false;
    };

    std::string name;
    CheckerConfig cfg;
    std::vector<Channel> channels;
    std::uint64_t n_submitted = 0;
    std::uint64_t n_delivered = 0;
};

} // namespace beacon

#endif // BEACON_CHECK_LINK_CHECKER_HH
