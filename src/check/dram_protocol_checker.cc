#include "dram_protocol_checker.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace beacon
{

DramProtocolChecker::DramProtocolChecker(std::string name_,
                                         const DimmGeometry &g,
                                         const DramTimingParams &t,
                                         const CheckerConfig &config)
    : name(std::move(name_)), geom(g), tp(t), cfg(config)
{
    bank_state.resize(std::size_t{geom.ranks} * geom.chips_per_rank *
                      geom.banksPerRank());
    chip_state.resize(std::size_t{geom.ranks} * geom.chips_per_rank);
    rank_state.resize(geom.ranks);
    const unsigned lanes = geom.per_rank_lanes
                               ? geom.ranks * geom.chips_per_rank
                               : geom.chips_per_rank;
    lane_data_end.assign(lanes, 0);
    const unsigned buses = geom.per_rank_cmd_bus ? geom.ranks : 1;
    bus_last_cmd.assign(buses, 0);
    bus_has_cmd.assign(buses, false);
}

DramProtocolChecker::ShadowBank &
DramProtocolChecker::bank(unsigned rank, unsigned chip_idx,
                          unsigned flat)
{
    return bank_state[(std::size_t{rank} * geom.chips_per_rank +
                       chip_idx) *
                          geom.banksPerRank() +
                      flat];
}

DramProtocolChecker::ShadowChip &
DramProtocolChecker::chip(unsigned rank, unsigned chip_idx)
{
    return chip_state[std::size_t{rank} * geom.chips_per_rank +
                      chip_idx];
}

void
DramProtocolChecker::record(const DramCommand &cmd)
{
    history.push_back(cmd);
    while (history.size() > cfg.history_depth)
        history.pop_front();
    ++n_commands;
}

std::string
DramProtocolChecker::historyDump() const
{
    std::ostringstream os;
    os << "last " << history.size() << " commands on " << name
       << " (oldest first):";
    for (const DramCommand &c : history) {
        os << "\n  t=" << c.tick << " " << dramCommandName(c.kind);
        if (c.kind == DramCommandKind::Refresh) {
            os << " rank=" << c.coord.rank;
        } else {
            os << " rank=" << c.coord.rank
               << " bg=" << c.coord.bank_group
               << " bank=" << c.coord.bank << " row=" << c.coord.row
               << " chips=[" << c.coord.chip_first << ","
               << c.coord.chip_first + c.coord.chip_count << ")";
        }
    }
    return os.str();
}

void
DramProtocolChecker::fail(const DramCommand &cmd,
                          const std::string &why)
{
    ++n_violations;
    BEACON_PANIC("DRAM protocol violation on ", name, ": ", why,
                 " (offending command: t=", cmd.tick, " ",
                 dramCommandName(cmd.kind), " rank=", cmd.coord.rank,
                 " bg=", cmd.coord.bank_group,
                 " bank=", cmd.coord.bank, " row=", cmd.coord.row,
                 ")\n", historyDump());
}

void
DramProtocolChecker::checkRankAvailable(const DramCommand &cmd)
{
    const ShadowRank &r = rank_state[cmd.coord.rank];
    if (r.has_ref && cmd.tick < r.ref_end) {
        fail(cmd, detail::formatMessage(
                      "command inside tRFC refresh window (refresh "
                      "started t=",
                      r.ref_start, ", rank blocked until t=",
                      r.ref_end, ")"));
    }
}

void
DramProtocolChecker::checkCmdBus(const DramCommand &cmd)
{
    const unsigned bus =
        geom.per_rank_cmd_bus ? cmd.coord.rank : 0;
    if (bus_has_cmd[bus] &&
        cmd.tick < bus_last_cmd[bus] + tp.t_ck_ps) {
        fail(cmd, detail::formatMessage(
                      "C/A bus conflict: previous command on bus ",
                      bus, " at t=", bus_last_cmd[bus],
                      " occupies the bus for one clock (",
                      tp.t_ck_ps, " ps)"));
    }
    bus_last_cmd[bus] = cmd.tick;
    bus_has_cmd[bus] = true;
}

void
DramProtocolChecker::checkAct(const DramCommand &cmd)
{
    const DramCoord &c = cmd.coord;
    const Tick t = cmd.tick;
    const unsigned flat = c.flatBank(geom.banks_per_group);
    for (unsigned i = 0; i < c.chip_count; ++i) {
        const unsigned ch = c.chip_first + i;
        ShadowBank &b = bank(c.rank, ch, flat);
        if (b.open_row != -1) {
            fail(cmd, detail::formatMessage(
                          "ACT to an open bank (chip ", ch,
                          " has row ", b.open_row, " open)"));
        }
        if (t < b.act_legal) {
            fail(cmd, detail::formatMessage(
                          "ACT violates tRP/tRC: earliest legal "
                          "ACT on chip ",
                          ch, " is t=", b.act_legal));
        }
        ShadowChip &cs = chip(c.rank, ch);
        if (cs.has_act) {
            const unsigned rrd = cs.last_act_bg == c.bank_group
                                     ? tp.t_rrd_l
                                     : tp.t_rrd_s;
            if (t < cs.last_act + ck(rrd)) {
                fail(cmd,
                     detail::formatMessage(
                         "ACT violates tRRD_",
                         cs.last_act_bg == c.bank_group ? "L" : "S",
                         ": previous ACT on chip ", ch, " at t=",
                         cs.last_act, ", minimum spacing ", ck(rrd),
                         " ps"));
            }
        }
        if (cs.act_times.size() >= 4 &&
            t < cs.act_times[cs.act_times.size() - 4] + ck(tp.t_faw)) {
            fail(cmd, detail::formatMessage(
                          "tFAW violation: fifth ACT on chip ", ch,
                          " within the four-activate window "
                          "(fourth-last ACT at t=",
                          cs.act_times[cs.act_times.size() - 4],
                          ", window ", ck(tp.t_faw), " ps)"));
        }
        b.open_row = std::int64_t{c.row.value()};
        b.last_act = t;
        b.has_act = true;
        b.act_legal = t + ck(tp.t_rc);
        b.pre_earliest = std::max(b.pre_earliest, t + ck(tp.t_ras));
        b.col_legal = t + ck(tp.t_rcd);
        cs.act_times.push_back(t);
        while (cs.act_times.size() > 4)
            cs.act_times.pop_front();
        cs.last_act = t;
        cs.last_act_bg = c.bank_group;
        cs.has_act = true;
    }
}

void
DramProtocolChecker::checkPre(const DramCommand &cmd)
{
    const DramCoord &c = cmd.coord;
    const Tick t = cmd.tick;
    const unsigned flat = c.flatBank(geom.banks_per_group);
    for (unsigned i = 0; i < c.chip_count; ++i) {
        const unsigned ch = c.chip_first + i;
        ShadowBank &b = bank(c.rank, ch, flat);
        if (b.open_row != -1 && t < b.pre_earliest) {
            fail(cmd, detail::formatMessage(
                          "PRE violates tRAS/tRTP/tWR: earliest "
                          "legal PRE on chip ",
                          ch, " is t=", b.pre_earliest));
        }
        b.open_row = -1;
        b.act_legal = std::max(b.act_legal, t + ck(tp.t_rp));
    }
}

void
DramProtocolChecker::checkColumn(const DramCommand &cmd)
{
    const DramCoord &c = cmd.coord;
    const Tick t = cmd.tick;
    const bool is_write = cmd.kind == DramCommandKind::Write ||
                          cmd.kind == DramCommandKind::WriteAp;
    const bool auto_pre = cmd.kind == DramCommandKind::ReadAp ||
                          cmd.kind == DramCommandKind::WriteAp;
    const unsigned flat = c.flatBank(geom.banks_per_group);
    const Tick data_start = t + ck(is_write ? tp.t_cwl : tp.t_cl);
    const Tick data_end = data_start + ck(tp.t_bl);

    ShadowRank &r = rank_state[c.rank];
    if (!is_write && r.has_wr && t < r.wr_data_end + ck(tp.t_wtr)) {
        fail(cmd, detail::formatMessage(
                      "READ violates tWTR: write data on rank ",
                      c.rank, " ends t=", r.wr_data_end,
                      ", turnaround ", ck(tp.t_wtr), " ps"));
    }
    if (is_write && r.has_rd) {
        // JEDEC DDR4 read-to-write turnaround on one rank:
        // CL - CWL + BL + 2 clocks between the commands.
        const unsigned gap_ck =
            tp.t_cl + tp.t_bl + 2 > tp.t_cwl
                ? tp.t_cl + tp.t_bl + 2 - tp.t_cwl
                : 0;
        if (t < r.last_rd + ck(gap_ck)) {
            fail(cmd, detail::formatMessage(
                          "WRITE violates read-to-write turnaround: "
                          "read on rank ",
                          c.rank, " at t=", r.last_rd,
                          ", minimum gap ", ck(gap_ck), " ps"));
        }
    }

    for (unsigned i = 0; i < c.chip_count; ++i) {
        const unsigned ch = c.chip_first + i;
        ShadowBank &b = bank(c.rank, ch, flat);
        if (b.open_row == -1) {
            fail(cmd, detail::formatMessage(
                          "column command to a precharged bank "
                          "(chip ",
                          ch, ")"));
        }
        if (b.open_row != std::int64_t{c.row.value()}) {
            fail(cmd, detail::formatMessage(
                          "column command to the wrong row: chip ",
                          ch, " has row ", b.open_row,
                          " open, command targets row ", c.row));
        }
        if (t < b.col_legal) {
            fail(cmd, detail::formatMessage(
                          "column command violates tRCD: chip ", ch,
                          " activated at t=", b.last_act,
                          ", earliest RD/WR t=", b.col_legal));
        }
        ShadowChip &cs = chip(c.rank, ch);
        if (cs.has_col) {
            const unsigned ccd = cs.last_col_bg == c.bank_group
                                     ? tp.t_ccd_l
                                     : tp.t_ccd_s;
            if (t < cs.last_col + ck(ccd)) {
                fail(cmd,
                     detail::formatMessage(
                         "column command violates tCCD_",
                         cs.last_col_bg == c.bank_group ? "L" : "S",
                         ": previous column command on chip ", ch,
                         " at t=", cs.last_col, ", minimum spacing ",
                         ck(ccd), " ps"));
            }
        }
        const unsigned lane =
            geom.per_rank_lanes
                ? c.rank * geom.chips_per_rank + ch
                : ch;
        if (data_start < lane_data_end[lane]) {
            fail(cmd, detail::formatMessage(
                          "data-lane overlap on lane ", lane,
                          ": previous burst ends t=",
                          lane_data_end[lane],
                          ", this burst starts t=", data_start));
        }
        lane_data_end[lane] = data_end;
        cs.last_col = t;
        cs.last_col_bg = c.bank_group;
        cs.has_col = true;
        if (is_write) {
            b.pre_earliest =
                std::max(b.pre_earliest, data_end + ck(tp.t_wr));
        } else {
            b.pre_earliest =
                std::max(b.pre_earliest, t + ck(tp.t_rtp));
        }
        if (auto_pre) {
            b.open_row = -1;
            b.act_legal = std::max(b.act_legal,
                                   b.pre_earliest + ck(tp.t_rp));
        }
    }

    if (is_write) {
        r.wr_data_end = data_end;
        r.has_wr = true;
    } else {
        r.last_rd = t;
        r.has_rd = true;
    }
}

void
DramProtocolChecker::checkRefresh(const DramCommand &cmd)
{
    const unsigned rk = cmd.coord.rank;
    const Tick t = cmd.tick;
    ShadowRank &r = rank_state[rk];
    if (r.has_ref && t < r.ref_end) {
        fail(cmd, detail::formatMessage(
                      "REF while the previous refresh is still in "
                      "progress (tRFC): previous REF at t=",
                      r.ref_start, ", done t=", r.ref_end));
    }
    const Tick window =
        Tick{1 + cfg.max_postponed_refreshes} * ck(tp.t_refi);
    const Tick due_from = r.has_ref ? r.ref_start : 0;
    if (t > due_from + window) {
        fail(cmd, detail::formatMessage(
                      "tREFI violation: rank ", rk,
                      " refreshed at t=", t, ", more than ",
                      1 + cfg.max_postponed_refreshes,
                      " x tREFI after ", due_from));
    }
    r.ref_start = t;
    r.ref_end = t + ck(tp.t_rfc);
    r.has_ref = true;
    // REF carries an implicit precharge-all in this model: every row
    // in the rank closes and ACT waits for the refresh to finish.
    for (unsigned ch = 0; ch < geom.chips_per_rank; ++ch) {
        for (unsigned b = 0; b < geom.banksPerRank(); ++b) {
            ShadowBank &bs = bank(rk, ch, b);
            bs.open_row = -1;
            bs.act_legal = std::max(bs.act_legal, r.ref_end);
        }
    }
}

void
DramProtocolChecker::observe(const DramCommand &cmd)
{
    record(cmd);
    if (cmd.kind == DramCommandKind::Refresh) {
        checkRefresh(cmd);
        return;
    }
    checkRankAvailable(cmd);
    checkCmdBus(cmd);
    switch (cmd.kind) {
      case DramCommandKind::Act:
        checkAct(cmd);
        break;
      case DramCommandKind::Pre:
        checkPre(cmd);
        break;
      case DramCommandKind::Read:
      case DramCommandKind::ReadAp:
      case DramCommandKind::Write:
      case DramCommandKind::WriteAp:
        checkColumn(cmd);
        break;
      case DramCommandKind::Refresh:
        break;
    }
}

void
DramProtocolChecker::finalize(Tick now) const
{
    const Tick window =
        Tick{1 + cfg.max_postponed_refreshes} *
        (Tick{tp.t_refi} * tp.t_ck_ps);
    for (unsigned rk = 0; rk < geom.ranks; ++rk) {
        const ShadowRank &r = rank_state[rk];
        const Tick due_from = r.has_ref ? r.ref_start : 0;
        BEACON_CHECK(now <= due_from + window,
                     "rank ", rk, " of ", name,
                     " is overdue for refresh at end of run (last "
                     "refresh t=",
                     due_from, ", now t=", now, ")");
    }
}

} // namespace beacon
