#include "link_checker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon
{

CxlLinkChecker::CxlLinkChecker(std::string name_,
                               const CheckerConfig &config)
    : name(std::move(name_)), cfg(config)
{
}

unsigned
CxlLinkChecker::registerChannel(const std::string &label)
{
    channels.emplace_back(label);
    return unsigned(channels.size() - 1);
}

void
CxlLinkChecker::onTransfer(unsigned channel, Tick depart,
                           Tick serialized, Tick arrive,
                           Bytes bytes, double rate_gbps,
                           bool ideal)
{
    BEACON_CHECK(channel < channels.size(), name,
                 ": transfer on unregistered channel ", channel);
    Channel &ch = channels[channel];

    BEACON_CHECK(serialized >= depart, name, " channel ", ch.label,
                 ": serialisation finished at t=", serialized,
                 " before the transfer departed at t=", depart);
    BEACON_CHECK(arrive >= serialized, name, " channel ", ch.label,
                 ": arrival t=", arrive,
                 " precedes serialisation end t=", serialized);

    if (ideal) {
        BEACON_CHECK(serialized == depart, name, " channel ",
                     ch.label,
                     ": ideal channel delayed serialisation (depart ",
                     depart, ", serialized ", serialized, ")");
    } else {
        // Shadow reservation: FIFO behind everything accepted
        // earlier, at the channel's fixed rate.
        const Tick start = std::max(depart, ch.busy_until);
        const Tick expect = start + transferTime(bytes, rate_gbps);
        BEACON_CHECK(serialized == expect, name, " channel ",
                     ch.label, ": bandwidth violation, transfer of ",
                     bytes, " B departing t=", depart,
                     " reported done t=", serialized,
                     " but the shadow reservation says t=", expect,
                     " (channel busy until t=", ch.busy_until, ")");
        ch.expected_busy_ticks += expect - start;
        ch.busy_until = expect;
    }

    // FIFO: arrivals on one channel never go backwards in time.
    if (ch.has_arrival) {
        BEACON_CHECK(arrive >= ch.last_arrival, name, " channel ",
                     ch.label, ": packet overtaking, arrival t=",
                     arrive, " precedes the previous arrival t=",
                     ch.last_arrival);
    }
    ch.last_arrival = arrive;
    ch.has_arrival = true;
}

void
CxlLinkChecker::checkBusyTicks(unsigned channel,
                               Tick actual_busy_ticks) const
{
    BEACON_CHECK(channel < channels.size(), name,
                 ": unknown channel ", channel);
    const Channel &ch = channels[channel];
    BEACON_CHECK(actual_busy_ticks == ch.expected_busy_ticks, name,
                 " channel ", ch.label,
                 ": bandwidth conservation broken, channel reports ",
                 actual_busy_ticks, " busy ticks, shadow expects ",
                 ch.expected_busy_ticks);
}

void
CxlLinkChecker::onSubmit(Tick)
{
    ++n_submitted;
}

void
CxlLinkChecker::onDeliver(Tick)
{
    ++n_delivered;
    BEACON_CHECK(n_delivered <= n_submitted, name,
                 ": more messages delivered (", n_delivered,
                 ") than submitted (", n_submitted, ")");
}

void
CxlLinkChecker::finalize() const
{
    BEACON_CHECK(n_delivered == n_submitted, name,
                 ": request/response imbalance at end of run, ",
                 n_submitted, " messages submitted but ", n_delivered,
                 " delivered");
}

} // namespace beacon
