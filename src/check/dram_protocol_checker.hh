/**
 * @file
 * Independent JEDEC protocol checker for DRAM command streams.
 *
 * The checker taps the DimmTimingModel command path and re-validates
 * every command against the timing parameters from scratch: it keeps
 * its own shadow of bank/chip/rank state derived only from the
 * observed command stream, never from the timing model's internal
 * bookkeeping. A controller bug that lets an illegal command through
 * therefore cannot hide: the shadow model panics with a dump of the
 * recent command history.
 *
 * Checked invariants (all in terms of the raw command ticks):
 *   - ACT only to a closed bank; tRC, tRP (after PRE), tRRD_S/L,
 *     tFAW (at most 4 ACTs per chip per rolling window);
 *   - PRE no earlier than tRAS after ACT, tRTP after RD,
 *     write-recovery (tCWL + tBL + tWR) after WR;
 *   - RD/WR only to the open row (never to a closed or mismatched
 *     row), no earlier than tRCD after ACT, tCCD_S/L after the
 *     previous column command on the chip, tWTR after write data,
 *     JEDEC read-to-write turnaround;
 *   - no data-lane overlap: consecutive bursts on one chip's DQ
 *     lanes must not overlap in time;
 *   - no command to a rank inside its tRFC refresh window; REF
 *     spacing between tRFC and (1 + max_postponed) * tREFI;
 *   - C/A bus occupancy: at most one command per bus clock per bus
 *     (REF excluded: the model treats it as a controller-internal
 *     operation with an implicit precharge-all).
 */

#ifndef BEACON_CHECK_DRAM_PROTOCOL_CHECKER_HH
#define BEACON_CHECK_DRAM_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "check/checker_config.hh"
#include "dram/timing.hh"
#include "dram/types.hh"

namespace beacon
{

/** Shadow model validating one DIMM's command stream. */
class DramProtocolChecker
{
  public:
    DramProtocolChecker(std::string name, const DimmGeometry &geom,
                        const DramTimingParams &timing,
                        const CheckerConfig &config = {});

    /** Observe one command; panics on a protocol violation. */
    void observe(const DramCommand &cmd);

    /**
     * End-of-run validation: every rank's refresh must not be
     * overdue at @p now.
     */
    void finalize(Tick now) const;

    /** Commands observed so far. */
    std::uint64_t commandsObserved() const { return n_commands; }

    /** Violations are fatal, so this is 0 unless panic is hooked. */
    std::uint64_t violations() const { return n_violations; }

  private:
    struct ShadowBank
    {
        std::int64_t open_row = -1;
        Tick last_act = 0;      //!< most recent ACT (valid: has_act)
        Tick act_legal = 0;     //!< earliest next ACT (tRP / tRC)
        Tick pre_earliest = 0;  //!< earliest legal PRE (tRAS etc.)
        Tick col_legal = 0;     //!< earliest RD/WR (tRCD)
        bool has_act = false;
    };

    struct ShadowChip
    {
        std::deque<Tick> act_times; //!< recent ACTs (tFAW window)
        Tick last_act = 0;
        unsigned last_act_bg = 0;
        bool has_act = false;
        Tick last_col = 0;
        unsigned last_col_bg = 0;
        bool has_col = false;
    };

    struct ShadowRank
    {
        Tick ref_start = 0;
        Tick ref_end = 0;       //!< rank blocked until here
        bool has_ref = false;
        Tick wr_data_end = 0;   //!< for tWTR
        bool has_wr = false;
        Tick last_rd = 0;       //!< for read-to-write turnaround
        bool has_rd = false;
    };

    ShadowBank &bank(unsigned rank, unsigned chip, unsigned flat);
    ShadowChip &chip(unsigned rank, unsigned chip);
    ShadowRank &rank(unsigned r) { return rank_state[r]; }

    void checkAct(const DramCommand &cmd);
    void checkPre(const DramCommand &cmd);
    void checkColumn(const DramCommand &cmd);
    void checkRefresh(const DramCommand &cmd);

    /** Common per-command gates: refresh window, C/A bus spacing. */
    void checkRankAvailable(const DramCommand &cmd);
    void checkCmdBus(const DramCommand &cmd);

    /** Record @p cmd in the history ring. */
    void record(const DramCommand &cmd);

    /** Panic with @p why and the recent command history. */
    [[noreturn]] void fail(const DramCommand &cmd,
                           const std::string &why);

    std::string historyDump() const;

    /** nCK parameter @p ncycles in ticks. */
    Tick ck(unsigned ncycles) const { return Tick{ncycles} * tp.t_ck_ps; }

    std::string name;
    DimmGeometry geom;
    DramTimingParams tp;
    CheckerConfig cfg;

    std::vector<ShadowBank> bank_state; //!< [rank][chip][flat_bank]
    std::vector<ShadowChip> chip_state; //!< [rank][chip]
    std::vector<ShadowRank> rank_state; //!< [rank]
    std::vector<Tick> lane_data_end;    //!< [lane]
    std::vector<Tick> bus_last_cmd;     //!< [bus]
    std::vector<bool> bus_has_cmd;      //!< [bus]

    std::deque<DramCommand> history;
    std::uint64_t n_commands = 0;
    std::uint64_t n_violations = 0;
};

} // namespace beacon

#endif // BEACON_CHECK_DRAM_PROTOCOL_CHECKER_HH
