/**
 * @file
 * Architecture- and data-aware address mapping (Fig. 10).
 *
 * Maps a per-DIMM granule index to DRAM coordinates under two
 * ordering principles from the paper:
 *
 *  1. interleave according to the DIMM architecture — chip-level
 *     groups on CXLG-DIMMs (individual chip select), rank-level
 *     groups on unmodified CXL-DIMMs;
 *  2. place spatially local data row-by-row so multi-element reads
 *     stay inside one DRAM row.
 *
 * Non-spatial (random) data instead spreads consecutive granules
 * across bank groups and banks to maximise bank-level parallelism.
 */

#ifndef BEACON_MEMMGMT_MAPPER_HH
#define BEACON_MEMMGMT_MAPPER_HH

#include <cstdint>

#include "dram/timing.hh"
#include "dram/types.hh"

namespace beacon
{

/** Address-mapping policy for one data structure on one DIMM kind. */
struct MappingPolicy
{
    /** Chips accessed together; chips_per_rank = rank-level. */
    unsigned chip_group = 16;
    /** Bytes covered by one granule (one mapped unit). */
    std::uint32_t granule_bytes = 64;
    /** Row-major (spatial) ordering instead of bank-interleaved. */
    bool row_major = false;
    /** Row offset to decorrelate co-resident structures. */
    unsigned base_row = 0;
};

/** Granule-index to DRAM-coordinate mapper for one DIMM. */
class DimmAddressMapper
{
  public:
    DimmAddressMapper(const DimmGeometry &geom,
                      const MappingPolicy &policy);

    /** Bursts needed to move @p bytes with this chip group. */
    unsigned burstsFor(std::uint32_t bytes) const;

    /** Bursts needed for one full granule. */
    unsigned burstsPerGranule() const { return bursts_per_granule; }

    /** Granule slots per row within one chip group. */
    unsigned slotsPerRow() const { return slots_per_row; }

    /** Total granules addressable on the DIMM. */
    std::uint64_t granuleCapacity() const;

    /**
     * Coordinates of granule @p granule_idx. chip_count is the
     * policy's chip group; the column points at the granule's first
     * burst.
     */
    DramCoord mapGranule(std::uint64_t granule_idx) const;

  private:
    DimmGeometry geom;
    MappingPolicy p;
    unsigned groups_per_rank;
    unsigned bursts_per_granule;
    unsigned slots_per_row;
};

} // namespace beacon

#endif // BEACON_MEMMGMT_MAPPER_HH
