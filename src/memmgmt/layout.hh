/**
 * @file
 * Pool-level data placement (Section IV-C).
 *
 * The memory-management framework manages memory at CXL-DIMM
 * granularity and decides, per data structure, which DIMMs hold it
 * and how its granules map to DRAM coordinates:
 *
 *  - naive placement (CXL-vanilla): one copy of every structure,
 *    striped over all DIMMs of the pool in 64-byte granules with
 *    rank-level access;
 *  - proximity-aware placement (the paper's "data placement and
 *    address mapping"): read-only index structures are replicated
 *    per NDP partition onto the DIMMs nearest the NDP module (the
 *    same CXL-Switch — the pool's capacity dwarfs the index), with
 *    architecture- and data-aware mapping: chip-level granules on
 *    CXLG-DIMMs, row-major layout for spatially local data. Writable
 *    structures (Bloom counters) keep a single global copy.
 *
 * Multi-chip coalescing widens the chip group of fine-grained
 * structures on CXLG-DIMMs from 1 chip to `coalesce_chips`.
 */

#ifndef BEACON_MEMMGMT_LAYOUT_HH
#define BEACON_MEMMGMT_LAYOUT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "cxl/node.hh"
#include "dram/timing.hh"
#include "dram/types.hh"
#include "memmgmt/mapper.hh"
#include "ndp/task.hh"

namespace beacon
{

/** Kind of a pooled DIMM. */
enum class DimmKind : std::uint8_t
{
    Cxlg,       //!< computation + fine-grained access enabled
    Unmodified, //!< stock CXL-DIMM
};

/** One DIMM in the pool inventory. */
struct PoolDimm
{
    NodeId node;
    DimmKind kind = DimmKind::Unmodified;
    DimmGeometry geom;
};

/** Declared properties of one application data structure. */
struct StructureSpec
{
    DataClass cls = DataClass::FmOcc;
    Bytes bytes;
    bool spatial = false;    //!< benefits from row-major layout
    bool read_only = true;   //!< replicable per partition
    std::uint32_t access_granule = 32; //!< typical access size
    /**
     * Algorithmically partition-private data (e.g., the per-DIMM
     * counting Bloom filters of multi-pass k-mer counting): each
     * partition's copy lives on its primary DIMM(s) regardless of
     * the placement policy.
     */
    bool partition_local = false;
};

/** Placement/mapping policy knobs (the paper's optimizations). */
struct PlacementPolicy
{
    /** Proximity placement + architecture/data-aware mapping. */
    bool placement_opt = false;
    /**
     * Replicate read-only structures per partition (BEACON's pool
     * has capacity to spare; the DDR baselines keep a single copy
     * striped across their DIMMs and pay the remote traffic).
     */
    bool replicate_read_only = false;
    /** Chip group for fine-grained structures on CXLG-DIMMs
     *  (1 = per-chip fine-grained; >1 = multi-chip coalescing). */
    unsigned coalesce_chips = 1;
    /**
     * Stripe weight of a CXLG-DIMM in proximity placement: the
     * paper's data-migration policy keeps frequently accessed data
     * closest to the NDP module, so the module's own DIMM receives
     * this many stripe slots for every one slot of a same-switch
     * unmodified DIMM.
     */
    unsigned cxlg_stripe_weight = 5;
    /**
     * Row offset of this application's region on every DIMM. The
     * framework sets it from the pool's current occupancy so
     * concurrent tenants land in disjoint row ranges instead of
     * aliasing each other's rows.
     */
    unsigned region_row_offset = 0;
    /**
     * Pool DIMM indices excluded from tenant data placement. The
     * rack layer reserves its hot-pluggable expansion DIMMs this way
     * so tenant structures never land on a DIMM that may be drained
     * and removed mid-run; reserved capacity is managed through the
     * framework's explicit reserveOn()/releaseOn() bookkeeping
     * instead. Empty (the default) keeps historical placement.
     */
    std::vector<unsigned> reserved_dimms;
    /** Number of NDP partitions (modules). */
    unsigned partitions = 1;
    /** Home switch of each partition's NDP module. */
    std::vector<unsigned> partition_switch;
    /** Primary DIMM indices of each partition (for partition-local
     *  structures; the NDP module's own DIMM(s)). */
    std::vector<std::vector<unsigned>> partition_primary;
};

/** A physical piece of one logical access. */
struct ResolvedAccess
{
    unsigned dimm_index = 0; //!< index into the pool inventory
    NodeId node;             //!< the DIMM's node id
    DramCoord coord;
    unsigned bursts = 1;
    Bytes bytes;
};

/**
 * Placement and mapping decisions for one application run.
 */
class MemoryLayout
{
  public:
    MemoryLayout(std::vector<PoolDimm> dimms,
                 std::vector<StructureSpec> structures,
                 PlacementPolicy policy);

    /**
     * Resolve a logical access by partition @p partition's NDP
     * module into physical pieces (an access that straddles stripe
     * granules yields several pieces).
     */
    std::vector<ResolvedAccess> resolve(DataClass cls,
                                        std::uint64_t offset,
                                        Bytes bytes,
                                        unsigned partition) const;

    /** Switch owning the (single-copy) word for atomic routing. */
    unsigned
    homeSwitch(DataClass cls, std::uint64_t offset) const;

    const PlacementPolicy &policy() const { return pol; }
    const std::vector<PoolDimm> &dimms() const { return pool; }

  private:
    /** One stripe slot: a DIMM and its occurrence rank within the
     *  stripe list (weighted DIMMs occupy several slots). */
    struct StripeSlot
    {
        unsigned dimm = 0;
        unsigned occurrence = 0;
    };

    struct StructurePlan
    {
        StructureSpec spec;
        /** Effective stripe granule in bytes. */
        std::uint32_t granule = 64;
        /** Stripe slots per partition. */
        std::vector<std::vector<StripeSlot>> partition_slots;
        /** Occurrences of each DIMM in a partition's stripe list. */
        std::vector<std::map<unsigned, unsigned>> partition_counts;
        /** Mapper per DIMM kind. */
        std::map<unsigned, DimmAddressMapper> mappers; //!< by dimm idx
    };

    const StructurePlan &planFor(DataClass cls) const;

    std::vector<PoolDimm> pool;
    PlacementPolicy pol;
    std::map<DataClass, StructurePlan> plans;
};

} // namespace beacon

#endif // BEACON_MEMMGMT_LAYOUT_HH
