#include "framework.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon
{

MemoryFramework::MemoryFramework(std::vector<PoolDimm> dimms)
    : pool(std::move(dimms)),
      usage(pool.size()),
      non_cacheable(pool.size(), false)
{
    BEACON_ASSERT(!pool.empty(), "empty pool");
}

Bytes
MemoryFramework::replicatedBytes(const AllocationRequest &request)
{
    Bytes ro;
    Bytes rw;
    for (const StructureSpec &s : request.structures) {
        if (s.read_only)
            ro += s.bytes;
        else
            rw += s.bytes;
    }
    const unsigned copies = request.policy.placement_opt
                                ? request.policy.partitions
                                : 1;
    return ro * copies + rw;
}

AllocationResponse
MemoryFramework::allocate(const AllocationRequest &request)
{
    AllocationResponse response;
    if (request.app.empty()) {
        response.error = "missing application name";
        return response;
    }
    for (const auto &per_dimm : usage) {
        if (per_dimm.count(request.app)) {
            response.error =
                "application '" + request.app + "' already allocated";
            return response;
        }
    }
    if (replicatedBytes(request) == Bytes{}) {
        response.error = "zero-byte allocation for '" + request.app +
                         "' (no quota)";
        return response;
    }

    // Offset the application's region past the rows already resident
    // so co-tenants occupy disjoint row ranges on shared DIMMs. An
    // empty pool yields offset 0, preserving single-tenant layouts.
    PlacementPolicy policy = request.policy;
    for (unsigned i = 0; i < pool.size(); ++i) {
        const std::uint64_t rank_row_bytes =
            pool[i].geom.rowBytesPerChip() * pool[i].geom.chips_per_rank;
        const std::uint64_t rows_used =
            (residentBytes(i).value() + rank_row_bytes - 1) / rank_row_bytes;
        policy.region_row_offset = std::max(
            policy.region_row_offset,
            unsigned(rows_used % pool[i].geom.rows));
    }

    // Build the layout first: it decides which DIMMs are touched.
    auto layout = std::make_shared<MemoryLayout>(
        pool, request.structures, policy);

    // Which DIMMs participate, and the footprint per DIMM.
    std::vector<std::uint64_t> needed(pool.size(), 0);
    const std::uint64_t total = replicatedBytes(request).value();
    std::vector<bool> touched(pool.size(), false);
    // Approximate an even spread over every DIMM any partition uses.
    unsigned touched_count = 0;
    for (unsigned part = 0; part < request.policy.partitions; ++part) {
        for (const StructureSpec &s : request.structures) {
            // One probe access discovers the partition's DIMM list.
            for (const ResolvedAccess &acc : layout->resolve(
                     s.cls, 0, Bytes{1}, part)) {
                if (!touched[acc.dimm_index]) {
                    touched[acc.dimm_index] = true;
                    ++touched_count;
                }
            }
        }
    }
    // The stripe touches every DIMM in each partition list; refine
    // by marking the full lists via per-granule probing.
    for (unsigned part = 0; part < request.policy.partitions; ++part) {
        for (const StructureSpec &s : request.structures) {
            for (std::uint64_t probe = 0; probe < 64; ++probe) {
                const std::uint64_t off =
                    probe * 64 % std::max<std::uint64_t>(s.bytes.value(), 1);
                for (const ResolvedAccess &acc :
                     layout->resolve(s.cls, off, Bytes{1}, part)) {
                    if (!touched[acc.dimm_index]) {
                        touched[acc.dimm_index] = true;
                        ++touched_count;
                    }
                }
            }
        }
    }
    BEACON_ASSERT(touched_count > 0, "allocation touched no DIMM");
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (touched[i])
            needed[i] = total / touched_count;
    }

    // Capacity check and memory clean.
    std::uint64_t migrated = 0;
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (!touched[i])
            continue;
        const std::uint64_t capacity = pool[i].geom.capacityBytes();
        std::uint64_t resident = 0;
        for (const auto &[app, bytes] : usage[i])
            resident += bytes.value();
        if (needed[i] > capacity) {
            response.error = "insufficient capacity on " +
                             pool[i].node.str();
            return response;
        }
        if (resident + needed[i] > capacity) {
            if (!request.allow_clean) {
                response.error = "insufficient free capacity on " +
                                 pool[i].node.str() +
                                 " (memory clean disallowed)";
                return response;
            }
            // Memory clean: migrate other applications' data away.
            migrated += resident;
            usage[i].clear();
        }
    }

    for (unsigned i = 0; i < pool.size(); ++i) {
        if (touched[i]) {
            usage[i][request.app] = Bytes{needed[i]};
            non_cacheable[i] = true;
            response.allocated_dimms.push_back(i);
        }
    }

    response.success = true;
    response.layout = std::move(layout);
    response.migrated_bytes = Bytes{migrated};
    return response;
}

bool
MemoryFramework::deallocate(const std::string &app)
{
    bool found = false;
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (usage[i].erase(app))
            found = true;
        if (usage[i].empty())
            non_cacheable[i] = false;
    }
    return found;
}

bool
MemoryFramework::isNonCacheable(unsigned dimm_index) const
{
    return non_cacheable.at(dimm_index);
}

Bytes
MemoryFramework::residentBytes(unsigned dimm_index) const
{
    Bytes total;
    for (const auto &[app, bytes] : usage.at(dimm_index))
        total += bytes;
    return total;
}

Bytes
MemoryFramework::freeBytes(unsigned dimm_index) const
{
    const std::uint64_t capacity =
        pool.at(dimm_index).geom.capacityBytes();
    const std::uint64_t resident = residentBytes(dimm_index).value();
    return Bytes{capacity > resident ? capacity - resident : 0};
}

Bytes
MemoryFramework::poolFreeBytes() const
{
    Bytes total;
    for (unsigned i = 0; i < pool.size(); ++i)
        total += freeBytes(i);
    return total;
}

} // namespace beacon
