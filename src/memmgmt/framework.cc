#include "framework.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon
{

MemoryFramework::MemoryFramework(std::vector<PoolDimm> dimms)
    : pool(std::move(dimms)),
      usage(pool.size()),
      non_cacheable(pool.size(), false)
{
    BEACON_ASSERT(!pool.empty(), "empty pool");
}

Bytes
MemoryFramework::replicatedBytes(const AllocationRequest &request)
{
    Bytes ro;
    Bytes rw;
    for (const StructureSpec &s : request.structures) {
        if (s.read_only)
            ro += s.bytes;
        else
            rw += s.bytes;
    }
    const unsigned copies = request.policy.placement_opt
                                ? request.policy.partitions
                                : 1;
    return ro * copies + rw;
}

AllocationResponse
MemoryFramework::allocate(const AllocationRequest &request)
{
    AllocationResponse response;
    if (request.app.empty()) {
        response.error = "missing application name";
        return response;
    }
    for (const auto &per_dimm : usage) {
        if (per_dimm.count(request.app)) {
            response.error =
                "application '" + request.app + "' already allocated";
            return response;
        }
    }
    if (replicatedBytes(request) == Bytes{}) {
        response.error = "zero-byte allocation for '" + request.app +
                         "' (no quota)";
        return response;
    }

    // Offset the application's region past the rows already resident
    // so co-tenants occupy disjoint row ranges on shared DIMMs. An
    // empty pool yields offset 0, preserving single-tenant layouts.
    PlacementPolicy policy = request.policy;
    for (unsigned i = 0; i < pool.size(); ++i) {
        const std::uint64_t rank_row_bytes =
            pool[i].geom.rowBytesPerChip() * pool[i].geom.chips_per_rank;
        const std::uint64_t rows_used =
            (residentBytes(i).value() + rank_row_bytes - 1) / rank_row_bytes;
        policy.region_row_offset = std::max(
            policy.region_row_offset,
            unsigned(rows_used % pool[i].geom.rows));
    }

    // Build the layout first: it decides which DIMMs are touched.
    auto layout = std::make_shared<MemoryLayout>(
        pool, request.structures, policy);

    // Which DIMMs participate, and the footprint per DIMM.
    std::vector<std::uint64_t> needed(pool.size(), 0);
    const std::uint64_t total = replicatedBytes(request).value();
    std::vector<bool> touched(pool.size(), false);
    // Approximate an even spread over every DIMM any partition uses.
    unsigned touched_count = 0;
    for (unsigned part = 0; part < request.policy.partitions; ++part) {
        for (const StructureSpec &s : request.structures) {
            // One probe access discovers the partition's DIMM list.
            for (const ResolvedAccess &acc : layout->resolve(
                     s.cls, 0, Bytes{1}, part)) {
                if (!touched[acc.dimm_index]) {
                    touched[acc.dimm_index] = true;
                    ++touched_count;
                }
            }
        }
    }
    // The stripe touches every DIMM in each partition list; refine
    // by marking the full lists via per-granule probing.
    for (unsigned part = 0; part < request.policy.partitions; ++part) {
        for (const StructureSpec &s : request.structures) {
            for (std::uint64_t probe = 0; probe < 64; ++probe) {
                const std::uint64_t off =
                    probe * 64 % std::max<std::uint64_t>(s.bytes.value(), 1);
                for (const ResolvedAccess &acc :
                     layout->resolve(s.cls, off, Bytes{1}, part)) {
                    if (!touched[acc.dimm_index]) {
                        touched[acc.dimm_index] = true;
                        ++touched_count;
                    }
                }
            }
        }
    }
    BEACON_ASSERT(touched_count > 0, "allocation touched no DIMM");
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (touched[i])
            needed[i] = total / touched_count;
    }

    // Capacity check and memory clean.
    std::uint64_t migrated = 0;
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (!touched[i])
            continue;
        const std::uint64_t capacity = pool[i].geom.capacityBytes();
        std::uint64_t resident = 0;
        for (const auto &[app, bytes] : usage[i])
            resident += bytes.value();
        if (needed[i] > capacity) {
            response.error = "insufficient capacity on " +
                             pool[i].node.str();
            return response;
        }
        if (resident + needed[i] > capacity) {
            if (!request.allow_clean) {
                response.error = "insufficient free capacity on " +
                                 pool[i].node.str() +
                                 " (memory clean disallowed)";
                return response;
            }
            // Memory clean: migrate other applications' data away.
            migrated += resident;
            usage[i].clear();
        }
    }

    for (unsigned i = 0; i < pool.size(); ++i) {
        if (touched[i]) {
            usage[i][request.app] = Bytes{needed[i]};
            non_cacheable[i] = true;
            response.allocated_dimms.push_back(i);
        }
    }

    response.success = true;
    response.layout = std::move(layout);
    response.migrated_bytes = Bytes{migrated};
    return response;
}

bool
MemoryFramework::deallocate(const std::string &app)
{
    bool found = false;
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (usage[i].erase(app))
            found = true;
        if (usage[i].empty())
            non_cacheable[i] = false;
    }
    return found;
}

bool
MemoryFramework::reserveOn(const std::string &app, unsigned dimm_index,
                           Bytes bytes, std::string *error)
{
    BEACON_ASSERT(dimm_index < pool.size(), "bad DIMM index ",
                  dimm_index);
    if (app.empty()) {
        if (error)
            *error = "missing application name";
        return false;
    }
    if (bytes == Bytes{}) {
        if (error)
            *error = "zero-byte reservation for '" + app + "'";
        return false;
    }
    if (bytes.value() > freeBytes(dimm_index).value()) {
        if (error) {
            *error = "insufficient free capacity on " +
                     pool[dimm_index].node.str();
        }
        return false;
    }
    usage[dimm_index][app] += bytes;
    non_cacheable[dimm_index] = true;
    return true;
}

bool
MemoryFramework::releaseOn(const std::string &app, unsigned dimm_index)
{
    BEACON_ASSERT(dimm_index < pool.size(), "bad DIMM index ",
                  dimm_index);
    const bool found = usage[dimm_index].erase(app) != 0;
    if (usage[dimm_index].empty())
        non_cacheable[dimm_index] = false;
    return found;
}

bool
MemoryFramework::evacuate(unsigned dimm_index,
                          std::vector<RegionMove> *moves,
                          std::string *error,
                          const std::vector<unsigned> *candidates)
{
    BEACON_ASSERT(dimm_index < pool.size(), "bad DIMM index ",
                  dimm_index);
    const auto eligible = [&](unsigned i) {
        if (i == dimm_index)
            return false;
        if (!candidates)
            return true;
        return std::find(candidates->begin(), candidates->end(), i) !=
               candidates->end();
    };
    Bytes absorbable;
    for (unsigned i = 0; i < pool.size(); ++i) {
        if (eligible(i))
            absorbable += freeBytes(i);
    }
    if (residentBytes(dimm_index).value() > absorbable.value()) {
        if (error) {
            *error = "pool cannot absorb resident bytes of " +
                     pool[dimm_index].node.str();
        }
        return false;
    }

    // The capacity pre-check above guarantees the greedy fill below
    // cannot run out of room, so the tables are only rewritten on
    // success. Iterate a copy: the loop erases from the live map.
    // The source map is std::map, so apps evacuate in name order.
    std::vector<RegionMove> plan;
    auto source = usage[dimm_index];
    for (const auto &[app, bytes] : source) {
        std::uint64_t remaining = bytes.value();
        while (remaining > 0) {
            // Lowest-utilization target first; ties break on index.
            unsigned best = pool.size();
            std::uint64_t best_free = 0;
            for (unsigned i = 0; i < pool.size(); ++i) {
                if (!eligible(i))
                    continue;
                const std::uint64_t avail = freeBytes(i).value();
                if (avail > best_free) {
                    best_free = avail;
                    best = i;
                }
            }
            if (best == pool.size()) {
                if (error) {
                    *error = "pool cannot absorb resident bytes of " +
                             pool[dimm_index].node.str();
                }
                return false;
            }
            const std::uint64_t chunk = std::min(remaining, best_free);
            usage[best][app] += Bytes{chunk};
            non_cacheable[best] = true;
            usage[dimm_index][app] -= Bytes{chunk};
            plan.push_back({app, dimm_index, best, Bytes{chunk}});
            remaining -= chunk;
        }
        usage[dimm_index].erase(app);
    }
    non_cacheable[dimm_index] = false;
    if (moves)
        *moves = std::move(plan);
    return true;
}

Bytes
MemoryFramework::appBytesOn(const std::string &app,
                            unsigned dimm_index) const
{
    const auto &per_dimm = usage.at(dimm_index);
    const auto it = per_dimm.find(app);
    return it == per_dimm.end() ? Bytes{} : it->second;
}

bool
MemoryFramework::isNonCacheable(unsigned dimm_index) const
{
    return non_cacheable.at(dimm_index);
}

Bytes
MemoryFramework::residentBytes(unsigned dimm_index) const
{
    Bytes total;
    for (const auto &[app, bytes] : usage.at(dimm_index))
        total += bytes;
    return total;
}

Bytes
MemoryFramework::freeBytes(unsigned dimm_index) const
{
    const std::uint64_t capacity =
        pool.at(dimm_index).geom.capacityBytes();
    const std::uint64_t resident = residentBytes(dimm_index).value();
    return Bytes{capacity > resident ? capacity - resident : 0};
}

Bytes
MemoryFramework::poolFreeBytes() const
{
    Bytes total;
    for (unsigned i = 0; i < pool.size(); ++i)
        total += freeBytes(i);
    return total;
}

} // namespace beacon
