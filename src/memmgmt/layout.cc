#include "layout.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace beacon
{

namespace
{

/** Deterministic per-structure row offset to decorrelate layouts. */
unsigned
structureBaseRow(DataClass cls, unsigned rows)
{
    return (unsigned(cls) * 7919u + 131u) % rows;
}

} // namespace

MemoryLayout::MemoryLayout(std::vector<PoolDimm> dimms,
                           std::vector<StructureSpec> structures,
                           PlacementPolicy policy)
    : pool(std::move(dimms)), pol(std::move(policy))
{
    BEACON_ASSERT(!pool.empty(), "empty pool");
    BEACON_ASSERT(pol.partitions >= 1, "need at least one partition");
    if (pol.placement_opt) {
        BEACON_ASSERT(pol.partition_switch.size() == pol.partitions,
                      "partition switch map size mismatch");
    }

    const auto reserved = [this](unsigned dimm_idx) {
        return std::find(pol.reserved_dimms.begin(),
                         pol.reserved_dimms.end(),
                         dimm_idx) != pol.reserved_dimms.end();
    };

    for (const StructureSpec &spec : structures) {
        StructurePlan plan;
        plan.spec = spec;

        // --- Which DIMMs hold the structure, per partition ---
        plan.partition_slots.resize(pol.partitions);
        plan.partition_counts.resize(pol.partitions);
        for (unsigned part = 0; part < pol.partitions; ++part) {
            std::vector<unsigned> list;
            if (spec.partition_local) {
                BEACON_ASSERT(part < pol.partition_primary.size(),
                              "partition-local structure without "
                              "primary DIMM map");
                list = pol.partition_primary[part];
            } else if (pol.placement_opt && pol.replicate_read_only &&
                       spec.read_only) {
                // Replicate near the partition's NDP module: every
                // DIMM on its switch. CXLG-DIMMs receive extra
                // stripe slots (hot data migrates closest to the
                // NDP module).
                const unsigned home_sw = pol.partition_switch[part];
                for (unsigned i = 0; i < pool.size(); ++i) {
                    if (pool[i].node.sw == home_sw &&
                        pool[i].kind == DimmKind::Cxlg &&
                        !reserved(i)) {
                        for (unsigned w = 0;
                             w < std::max(1u, pol.cxlg_stripe_weight);
                             ++w) {
                            list.push_back(i);
                        }
                    }
                }
                for (unsigned i = 0; i < pool.size(); ++i) {
                    if (pool[i].node.sw == home_sw &&
                        pool[i].kind == DimmKind::Unmodified &&
                        !reserved(i)) {
                        list.push_back(i);
                    }
                }
            } else {
                // Single copy striped over the whole pool (minus
                // reserved DIMMs, which hold no tenant data).
                for (unsigned i = 0; i < pool.size(); ++i) {
                    if (!reserved(i))
                        list.push_back(i);
                }
            }
            BEACON_ASSERT(!list.empty(),
                          "no DIMMs available for a partition");
            std::map<unsigned, unsigned> &counts =
                plan.partition_counts[part];
            for (unsigned dimm : list) {
                plan.partition_slots[part].push_back(
                    StripeSlot{dimm, counts[dimm]});
                ++counts[dimm];
            }
        }

        // --- Stripe granule and per-DIMM mapping ---
        const DimmGeometry &geom0 = pool.front().geom;
        const std::uint64_t rank_row_bytes =
            geom0.rowBytesPerChip() * geom0.chips_per_rank;
        if (!pol.placement_opt) {
            plan.granule = 64;
        } else if (spec.spatial) {
            // Whole rows per DIMM: multi-element reads stay in one
            // row buffer.
            plan.granule = std::uint32_t(rank_row_bytes);
        } else {
            // Fine-grained: one access granule per stripe unit,
            // rounded up to the chip-group burst size.
            plan.granule = std::max<std::uint32_t>(
                spec.access_granule,
                std::uint32_t(geom0.device_width_bits)); // >= 4 B
        }

        for (unsigned i = 0; i < pool.size(); ++i) {
            const PoolDimm &dimm = pool[i];
            MappingPolicy mp;
            mp.granule_bytes = plan.granule;
            mp.base_row =
                (structureBaseRow(spec.cls, dimm.geom.rows) +
                 pol.region_row_offset) %
                dimm.geom.rows;
            if (!pol.placement_opt) {
                mp.chip_group = dimm.geom.chips_per_rank;
                mp.row_major = false;
            } else if (spec.spatial) {
                mp.chip_group = dimm.geom.chips_per_rank;
                mp.row_major = true;
            } else if (dimm.kind == DimmKind::Cxlg) {
                mp.chip_group =
                    std::max(1u, std::min(pol.coalesce_chips,
                                          dimm.geom.chips_per_rank));
                mp.row_major = false;
            } else {
                mp.chip_group = dimm.geom.chips_per_rank;
                mp.row_major = false;
            }
            // Granule must not exceed one row of the chip group.
            const std::uint64_t group_row_bytes =
                dimm.geom.rowBytesPerChip() * mp.chip_group;
            mp.granule_bytes = std::uint32_t(std::min<std::uint64_t>(
                mp.granule_bytes, group_row_bytes));
            plan.mappers.emplace(
                i, DimmAddressMapper(dimm.geom, mp));
        }

        plans.emplace(spec.cls, std::move(plan));
    }
}

const MemoryLayout::StructurePlan &
MemoryLayout::planFor(DataClass cls) const
{
    auto it = plans.find(cls);
    BEACON_ASSERT(it != plans.end(), "unplanned data class ",
                  unsigned(cls));
    return it->second;
}

std::vector<ResolvedAccess>
MemoryLayout::resolve(DataClass cls, std::uint64_t offset,
                      Bytes bytes, unsigned partition) const
{
    BEACON_ASSERT(partition < pol.partitions, "bad partition");
    BEACON_ASSERT(bytes.value() > 0, "zero-byte access");
    const StructurePlan &plan = planFor(cls);
    const std::vector<StripeSlot> &slots =
        plan.partition_slots[partition];
    const std::map<unsigned, unsigned> &counts =
        plan.partition_counts[partition];

    std::vector<ResolvedAccess> pieces;
    std::uint64_t cur = offset;
    std::uint64_t end = offset + bytes.value();
    while (cur < end) {
        const std::uint64_t granule_idx = cur / plan.granule;
        const std::uint64_t granule_end =
            (granule_idx + 1) * std::uint64_t{plan.granule};
        const std::uint32_t piece =
            std::uint32_t(std::min<std::uint64_t>(end, granule_end) -
                          cur);

        const StripeSlot &slot =
            slots[std::size_t(granule_idx % slots.size())];
        const unsigned dimm_idx = slot.dimm;
        // Collision-free per-DIMM index: a DIMM with k stripe slots
        // takes k local granules per full stripe round.
        const std::uint64_t local_idx =
            (granule_idx / slots.size()) * counts.at(dimm_idx) +
            slot.occurrence;
        const DimmAddressMapper &mapper = plan.mappers.at(dimm_idx);

        ResolvedAccess acc;
        acc.dimm_index = dimm_idx;
        acc.node = pool[dimm_idx].node;
        acc.coord = mapper.mapGranule(local_idx);
        acc.bursts = mapper.burstsFor(piece);
        acc.bytes = Bytes{piece};
        pieces.push_back(acc);

        cur += piece;
    }
    return pieces;
}

unsigned
MemoryLayout::homeSwitch(DataClass cls, std::uint64_t offset) const
{
    const StructurePlan &plan = planFor(cls);
    // Writable structures have one copy shared by every partition,
    // so partition 0's list is authoritative.
    const std::vector<StripeSlot> &slots = plan.partition_slots[0];
    const std::uint64_t granule_idx = offset / plan.granule;
    const unsigned dimm_idx =
        slots[std::size_t(granule_idx % slots.size())].dimm;
    return pool[dimm_idx].node.sw;
}

} // namespace beacon
