#include "mapper.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace beacon
{

DimmAddressMapper::DimmAddressMapper(const DimmGeometry &g,
                                     const MappingPolicy &policy)
    : geom(g), p(policy)
{
    BEACON_ASSERT(p.chip_group >= 1 &&
                      p.chip_group <= geom.chips_per_rank &&
                      geom.chips_per_rank % p.chip_group == 0,
                  "chip group must evenly divide the rank");
    BEACON_ASSERT(p.granule_bytes > 0, "zero granule");
    groups_per_rank = geom.chips_per_rank / p.chip_group;
    bursts_per_granule = burstsFor(p.granule_bytes);
    // Each burst consumes 8 column addresses (BL8).
    const unsigned columns_per_granule = bursts_per_granule * 8;
    BEACON_ASSERT(columns_per_granule <= geom.columns,
                  "granule larger than a row");
    slots_per_row = geom.columns / columns_per_granule;
}

unsigned
DimmAddressMapper::burstsFor(std::uint32_t bytes) const
{
    const std::uint32_t bytes_per_burst =
        p.chip_group * geom.device_width_bits * 8 / 8;
    return divCeil(bytes, bytes_per_burst);
}

std::uint64_t
DimmAddressMapper::granuleCapacity() const
{
    return std::uint64_t{slots_per_row} * geom.bank_groups *
           geom.banks_per_group * groups_per_rank * geom.ranks *
           geom.rows;
}

DramCoord
DimmAddressMapper::mapGranule(std::uint64_t granule_idx) const
{
    const std::uint64_t idx = granule_idx % granuleCapacity();
    const unsigned bg_count = geom.bank_groups;
    const unsigned bank_count = geom.banks_per_group;

    std::uint64_t rest = idx;
    unsigned slot, bg, bank, group, rank;
    std::uint64_t row;
    if (p.row_major) {
        // Fill a row before moving to the next bank: spatial data
        // keeps consecutive granules inside one row buffer.
        slot = unsigned(rest % slots_per_row);
        rest /= slots_per_row;
        bg = unsigned(rest % bg_count);
        rest /= bg_count;
        bank = unsigned(rest % bank_count);
        rest /= bank_count;
        group = unsigned(rest % groups_per_rank);
        rest /= groups_per_rank;
        rank = unsigned(rest % geom.ranks);
        rest /= geom.ranks;
        row = rest;
    } else {
        // Spread consecutive granules across bank groups, banks, and
        // ranks first: random fine-grained accesses gain bank-level
        // parallelism.
        bg = unsigned(rest % bg_count);
        rest /= bg_count;
        bank = unsigned(rest % bank_count);
        rest /= bank_count;
        rank = unsigned(rest % geom.ranks);
        rest /= geom.ranks;
        group = unsigned(rest % groups_per_rank);
        rest /= groups_per_rank;
        slot = unsigned(rest % slots_per_row);
        rest /= slots_per_row;
        row = rest;
    }

    DramCoord coord;
    coord.rank = rank;
    coord.bank_group = bg;
    coord.bank = bank;
    coord.row = RowId{unsigned((row + p.base_row) % geom.rows)};
    coord.column = slot * bursts_per_granule * 8;
    coord.chip_first = group * p.chip_group;
    coord.chip_count = p.chip_group;
    return coord;
}

} // namespace beacon
