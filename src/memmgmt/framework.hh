/**
 * @file
 * Host-facing memory-management framework (Fig. 8).
 *
 * The host sends an allocation request describing the application,
 * its data structures, and the desired policy; the framework (the
 * CXL-Switches in the paper) chooses DIMMs, performs memory clean
 * (migrating other applications' resident data off the chosen
 * DIMMs), marks the region non-cacheable for the host, and returns a
 * MemoryLayout the accelerator uses for address translation.
 */

#ifndef BEACON_MEMMGMT_FRAMEWORK_HH
#define BEACON_MEMMGMT_FRAMEWORK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "memmgmt/layout.hh"

namespace beacon
{

/** Allocation request sent over the framework interface. */
struct AllocationRequest
{
    std::string app;
    std::vector<StructureSpec> structures;
    PlacementPolicy policy;
    /**
     * Permit memory clean (migrating other applications off the
     * chosen DIMMs) to make room. Single-workload runs keep the
     * paper's default; a multi-tenant admission controller sets this
     * false so an oversubscribed request fails instead of evicting a
     * co-tenant.
     */
    bool allow_clean = true;
};

/** Framework response. */
struct AllocationResponse
{
    bool success = false;
    std::string error;
    std::shared_ptr<MemoryLayout> layout;
    /** Bytes of other applications' data migrated (memory clean). */
    Bytes migrated_bytes;
    /** DIMMs now dedicated (non-cacheable for the host). */
    std::vector<unsigned> allocated_dimms;
};

/**
 * One region relocation produced by evacuate(): @p bytes of
 * application @p app move from DIMM @p from to DIMM @p to. The caller
 * (the rack hot-remove path) is responsible for simulating the actual
 * data transfer; the framework only rewrites its bookkeeping.
 */
struct RegionMove
{
    std::string app;
    unsigned from = 0;
    unsigned to = 0;
    Bytes bytes;
};

/** The memory-management framework. */
class MemoryFramework
{
  public:
    explicit MemoryFramework(std::vector<PoolDimm> dimms);

    /** Allocate memory for an application (Fig. 8 left flow). */
    AllocationResponse allocate(const AllocationRequest &request);

    /** De-allocate an application (Fig. 8 right flow). */
    bool deallocate(const std::string &app);

    /**
     * Reserve @p bytes for @p app directly on DIMM @p dimm_index,
     * bypassing layout construction. Rack hosts use this for
     * HDM-decoded private regions whose placement the HdmDecoder —
     * not the placement policy — already fixed. Stacks with other
     * reservations by the same app on the same DIMM. Fails (returns
     * false and fills @p error) when the DIMM lacks free capacity.
     */
    bool reserveOn(const std::string &app, unsigned dimm_index,
                   Bytes bytes, std::string *error = nullptr);

    /** Release bytes previously taken via reserveOn (all of them). */
    bool releaseOn(const std::string &app, unsigned dimm_index);

    /**
     * Plan the evacuation of every region resident on @p dimm_index
     * (hot-remove): greedily re-home each application's bytes onto
     * the other DIMMs with free capacity (lowest-utilization first,
     * index-ordered on ties — deterministic) and rewrite the usage
     * tables accordingly. Fails without side effects when the rest of
     * the pool cannot absorb the resident bytes.
     *
     * When @p candidates is non-null, only the listed DIMM indices
     * receive evacuated bytes (the rack layer restricts migration to
     * its online expansion DIMMs); otherwise every other DIMM is a
     * candidate.
     */
    bool evacuate(unsigned dimm_index, std::vector<RegionMove> *moves,
                  std::string *error = nullptr,
                  const std::vector<unsigned> *candidates = nullptr);

    /** Bytes of @p app currently resident on DIMM @p dimm_index. */
    Bytes appBytesOn(const std::string &app,
                     unsigned dimm_index) const;

    /** Host-visible cacheability of a DIMM. */
    bool isNonCacheable(unsigned dimm_index) const;

    /** Bytes currently resident on a DIMM (all applications). */
    Bytes residentBytes(unsigned dimm_index) const;

    /** Unused capacity remaining on a DIMM. */
    Bytes freeBytes(unsigned dimm_index) const;

    /** Unused capacity summed over the whole pool. */
    Bytes poolFreeBytes() const;

    const std::vector<PoolDimm> &dimms() const { return pool; }

  private:
    /** Footprint each structure set needs per partition copy. */
    static Bytes
    replicatedBytes(const AllocationRequest &request);

    std::vector<PoolDimm> pool;
    /** Per DIMM: bytes used by each application. */
    std::vector<std::map<std::string, Bytes>> usage;
    std::vector<bool> non_cacheable;
};

} // namespace beacon

#endif // BEACON_MEMMGMT_FRAMEWORK_HH
