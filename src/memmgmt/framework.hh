/**
 * @file
 * Host-facing memory-management framework (Fig. 8).
 *
 * The host sends an allocation request describing the application,
 * its data structures, and the desired policy; the framework (the
 * CXL-Switches in the paper) chooses DIMMs, performs memory clean
 * (migrating other applications' resident data off the chosen
 * DIMMs), marks the region non-cacheable for the host, and returns a
 * MemoryLayout the accelerator uses for address translation.
 */

#ifndef BEACON_MEMMGMT_FRAMEWORK_HH
#define BEACON_MEMMGMT_FRAMEWORK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "memmgmt/layout.hh"

namespace beacon
{

/** Allocation request sent over the framework interface. */
struct AllocationRequest
{
    std::string app;
    std::vector<StructureSpec> structures;
    PlacementPolicy policy;
    /**
     * Permit memory clean (migrating other applications off the
     * chosen DIMMs) to make room. Single-workload runs keep the
     * paper's default; a multi-tenant admission controller sets this
     * false so an oversubscribed request fails instead of evicting a
     * co-tenant.
     */
    bool allow_clean = true;
};

/** Framework response. */
struct AllocationResponse
{
    bool success = false;
    std::string error;
    std::shared_ptr<MemoryLayout> layout;
    /** Bytes of other applications' data migrated (memory clean). */
    Bytes migrated_bytes;
    /** DIMMs now dedicated (non-cacheable for the host). */
    std::vector<unsigned> allocated_dimms;
};

/** The memory-management framework. */
class MemoryFramework
{
  public:
    explicit MemoryFramework(std::vector<PoolDimm> dimms);

    /** Allocate memory for an application (Fig. 8 left flow). */
    AllocationResponse allocate(const AllocationRequest &request);

    /** De-allocate an application (Fig. 8 right flow). */
    bool deallocate(const std::string &app);

    /** Host-visible cacheability of a DIMM. */
    bool isNonCacheable(unsigned dimm_index) const;

    /** Bytes currently resident on a DIMM (all applications). */
    Bytes residentBytes(unsigned dimm_index) const;

    /** Unused capacity remaining on a DIMM. */
    Bytes freeBytes(unsigned dimm_index) const;

    /** Unused capacity summed over the whole pool. */
    Bytes poolFreeBytes() const;

    const std::vector<PoolDimm> &dimms() const { return pool; }

  private:
    /** Footprint each structure set needs per partition copy. */
    static Bytes
    replicatedBytes(const AllocationRequest &request);

    std::vector<PoolDimm> pool;
    /** Per DIMM: bytes used by each application. */
    std::vector<std::map<std::string, Bytes>> usage;
    std::vector<bool> non_cacheable;
};

} // namespace beacon

#endif // BEACON_MEMMGMT_FRAMEWORK_HH
