/**
 * @file
 * Parallel experiment sweep engine.
 *
 * The paper's evaluation is a grid of independent simulations
 * (dataset preset x optimization-ladder rung x machine). SweepRunner
 * executes those points concurrently on a thread pool, each in a
 * fully isolated run context: every job constructs its own NdpSystem
 * (and with it a private EventQueue and StatRegistry) and receives a
 * private Rng stream seeded from (base seed, submission index).
 * Results are merged by submission index, so the outcome vector —
 * and any JSON serialised from it — is bit-identical to a serial run
 * regardless of the worker count.
 *
 * The worker count comes from BEACON_BENCH_JOBS (default: hardware
 * concurrency); jobs=1 degenerates to a plain serial loop.
 */

#ifndef BEACON_ACCEL_SWEEP_HH
#define BEACON_ACCEL_SWEEP_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <regex>
#include <string>
#include <utility>
#include <vector>

#include "accel/system.hh"
#include "accel/workload.hh"
#include "common/rng.hh"
#include "obs/self_profile.hh"

namespace beacon
{

/** Identity of one sweep point, echoed into reports and JSON. */
struct SweepKey
{
    std::string dataset; //!< preset / workload name ("" when n/a)
    std::string label;   //!< ladder rung or configuration label
};

/** Result of one sweep point. */
struct SweepOutcome
{
    SweepKey key;
    RunResult result;
    /** Extracted StatRegistry values (insertion-ordered). */
    std::vector<std::pair<std::string, double>> stats;
    /** Host wall-clock of this job (non-deterministic; excluded
     *  from determinism-compared JSON). */
    double wall_seconds = 0;
    /** True when the job was cancelled before it ran (a previously
     *  submitted job threw). */
    bool skipped = false;
    /** Telemetry artefacts written by this point ("" = none).
     *  Deterministic paths: emitted even in no-wall JSON. */
    std::string trace_file;
    std::string timeseries_file;
    std::string reqtrace_file;
    /** Host-side event-loop profile (enabled=false when off;
     *  wall-clock based, reported only with include_runtime). */
    obs::SelfProfileResult self_profile;
};

/**
 * Per-job isolated context. The Rng stream depends only on the
 * runner's base seed and the job's submission index, never on the
 * worker that happens to execute the job.
 */
struct RunContext
{
    std::size_t index = 0; //!< submission index
    Rng rng;               //!< private deterministic stream
};

/** Thread-pooled runner for independent simulation jobs. */
class SweepRunner
{
  public:
    using JobFn = std::function<SweepOutcome(RunContext &)>;

    explicit SweepRunner(unsigned jobs = jobsFromEnv(),
                         std::uint64_t base_seed = 0xBEACC0DEull);

    /**
     * Worker count from BEACON_BENCH_JOBS, or hardware concurrency
     * when the variable is unset/invalid; always >= 1.
     */
    static unsigned jobsFromEnv();

    unsigned jobs() const { return num_jobs; }

    /** Enqueue an arbitrary job. @return its submission index. */
    std::size_t enqueue(SweepKey key, JobFn fn);

    /**
     * Enqueue one NdpSystem simulation: builds the system inside the
     * job (own EventQueue + StatRegistry), runs @p tasks tasks, and
     * extracts sumMatching() of every name in @p stat_keys from the
     * run's registry. @p workload must outlive run() and is shared
     * read-only across workers.
     */
    std::size_t enqueueRun(SweepKey key, const SystemParams &params,
                           const Workload &workload,
                           std::size_t tasks = 0,
                           std::vector<std::string> stat_keys = {});

    /**
     * Execute every queued job and return the outcomes in submission
     * order. If any job throws, the remaining unstarted jobs are
     * cancelled, all workers are joined, and the recorded exception
     * with the lowest submission index is rethrown — exactly what a
     * serial loop would have surfaced.
     */
    std::vector<SweepOutcome> run();

    /**
     * List mode: run() prints every queued point as one
     * "dataset/label" line and returns all outcomes skipped, without
     * executing anything.
     */
    void setListOnly(bool on) { list_only = on; }
    bool listOnly() const { return list_only; }

    /**
     * Only execute points whose "dataset/label" identity matches
     * @p pattern (ECMAScript regex, partial match); everything else
     * is returned skipped. The outcome vector keeps its shape, so
     * positional consumers (ladder panels) stay valid.
     */
    void setFilter(const std::string &pattern);

  private:
    struct Pending
    {
        SweepKey key;
        JobFn fn;
    };

    unsigned num_jobs;
    std::uint64_t base_seed;
    std::vector<Pending> pending;
    bool list_only = false;
    bool have_filter = false;
    std::regex filter;
};

/**
 * A harness-level report: every sweep outcome plus derived scalars,
 * serialisable as JSON (the BENCH_*.json schema; see
 * EXPERIMENTS.md).
 */
struct SweepReport
{
    std::string harness;     //!< e.g. "fig12_fm_seeding"
    unsigned bench_scale = 1;
    unsigned jobs = 1;       //!< worker count used
    /** Whole-harness wall-clock (non-deterministic). */
    double wall_seconds = 0;
    std::vector<SweepOutcome> records;
    /** Derived scalars (geomeans, shares), insertion-ordered. */
    std::vector<std::pair<std::string, double>> derived;

    void
    add(const std::vector<SweepOutcome> &outcomes)
    {
        records.insert(records.end(), outcomes.begin(),
                       outcomes.end());
    }

    void
    derive(std::string key, double value)
    {
        derived.emplace_back(std::move(key), value);
    }
};

/**
 * Serialise a report. With @p include_runtime false the execution
 * metadata (worker count, every wall-clock field) is omitted, making
 * the output a pure function of the simulated runs — byte-identical
 * across worker counts and reruns.
 */
void writeSweepJson(std::ostream &os, const SweepReport &report,
                    bool include_runtime = true);

/** writeSweepJson into a string (tests, golden comparisons). */
std::string sweepJsonString(const SweepReport &report,
                            bool include_runtime = true);

} // namespace beacon

#endif // BEACON_ACCEL_SWEEP_HH
