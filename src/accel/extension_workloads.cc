#include "extension_workloads.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "genomics/kmer.hh" // hashKmer doubles as a mix hash

namespace beacon
{

// ---------------------------------------------------------------
// Graph BFS
// ---------------------------------------------------------------

namespace
{

class GraphBfsTask : public Task
{
  public:
    GraphBfsTask(const graph::CsrGraph &csr, std::uint32_t source,
                 std::size_t max_visits)
        : csr(csr), max_visits(max_visits)
    {
        visited.assign(csr.numVertices(), false);
        visited[source] = true;
        frontier.push_back(source);
    }

    EngineKind engine() const override
    {
        return EngineKind::GraphTraversal;
    }

    TaskStep
    next() override
    {
        TaskStep step;
        if (phase == Phase::FetchOffsets) {
            if (frontier.empty() || visits >= max_visits) {
                step.done = true;
                return step;
            }
            current = frontier.front();
            frontier.pop_front();
            ++visits;
            step.compute_cycles =
                engineStepCycles(EngineKind::GraphTraversal);
            AccessRequest req;
            req.data_class = DataClass::GraphOffsets;
            req.offset = csr.offsetSlotBytes(current);
            req.bytes = Bytes{8};
            step.accesses.push_back(req);
            phase = Phase::FetchEdges;
            return step;
        }
        // Edges phase: pull the adjacency list, advance the BFS
        // functionally, and continue with the next frontier vertex.
        step.compute_cycles =
            engineStepCycles(EngineKind::GraphTraversal);
        const std::uint32_t deg = csr.degree(current);
        if (deg > 0) {
            AccessRequest req;
            req.data_class = DataClass::GraphEdges;
            req.offset = csr.edgeSlotBytes(current);
            req.bytes = Bytes{std::min<std::uint32_t>(deg * 4, 512)};
            step.accesses.push_back(req);
            const std::uint32_t *nbrs = csr.neighbors(current);
            for (std::uint32_t i = 0; i < deg; ++i) {
                const std::uint32_t u = nbrs[i];
                if (!visited[u]) {
                    visited[u] = true;
                    frontier.push_back(u);
                }
            }
        }
        phase = Phase::FetchOffsets;
        if (step.accesses.empty() &&
            (frontier.empty() || visits >= max_visits)) {
            step.done = true;
        }
        return step;
    }

  private:
    enum class Phase { FetchOffsets, FetchEdges };

    const graph::CsrGraph &csr;
    std::size_t max_visits;
    std::vector<bool> visited;
    std::deque<std::uint32_t> frontier;
    std::uint32_t current = 0;
    std::size_t visits = 0;
    Phase phase = Phase::FetchOffsets;
};

} // namespace

GraphBfsWorkload::GraphBfsWorkload(const graph::GraphParams &params,
                                   std::size_t num_sources,
                                   std::size_t max_visits)
    : name_("graph-bfs"), csr(graph::makeGraph(params)),
      max_visits(max_visits)
{
    Rng rng(params.seed + 1);
    for (std::size_t i = 0; i < num_sources; ++i)
        sources.push_back(
            std::uint32_t(rng.next(csr.numVertices())));
}

std::vector<StructureSpec>
GraphBfsWorkload::structures() const
{
    StructureSpec offsets;
    offsets.cls = DataClass::GraphOffsets;
    offsets.bytes = Bytes{csr.offsetArrayBytes()};
    offsets.spatial = false;
    offsets.read_only = true;
    offsets.access_granule = 8;

    StructureSpec edges;
    edges.cls = DataClass::GraphEdges;
    edges.bytes = Bytes{std::max<std::uint64_t>(csr.edgeArrayBytes(), 64)};
    edges.spatial = true;
    edges.read_only = true;
    edges.access_granule = 64;
    return {offsets, edges};
}

TaskPtr
GraphBfsWorkload::makeTask(std::size_t idx,
                           const WorkloadContext &) const
{
    return std::make_unique<GraphBfsTask>(
        csr, sources.at(idx % sources.size()), max_visits);
}

// ---------------------------------------------------------------
// Database index probing
// ---------------------------------------------------------------

namespace
{

class DbProbeTask : public Task
{
  public:
    /** One chain walk: bucket head access then node accesses. */
    struct Probe
    {
        std::uint64_t bucket;
        std::vector<std::uint32_t> chain; //!< node ids to visit
    };

    explicit DbProbeTask(std::vector<Probe> probes)
        : probes(std::move(probes))
    {}

    EngineKind engine() const override
    {
        return EngineKind::IndexProbe;
    }

    TaskStep
    next() override
    {
        TaskStep step;
        if (probe_idx >= probes.size()) {
            step.done = true;
            return step;
        }
        const Probe &probe = probes[probe_idx];
        step.compute_cycles =
            engineStepCycles(EngineKind::IndexProbe);
        if (chain_pos == 0) {
            AccessRequest req;
            req.data_class = DataClass::IndexBuckets;
            req.offset = probe.bucket * 8;
            req.bytes = Bytes{8};
            step.accesses.push_back(req);
            if (probe.chain.empty()) {
                ++probe_idx; // empty bucket: probe resolved
            } else {
                chain_pos = 1;
            }
            return step;
        }
        // Chase the next chain node.
        AccessRequest req;
        req.data_class = DataClass::IndexNodes;
        req.offset =
            std::uint64_t(probe.chain[chain_pos - 1]) * 16;
        req.bytes = Bytes{16};
        step.accesses.push_back(req);
        if (chain_pos >= probe.chain.size()) {
            chain_pos = 0;
            ++probe_idx;
        } else {
            ++chain_pos;
        }
        return step;
    }

  private:
    std::vector<Probe> probes;
    std::size_t probe_idx = 0;
    std::size_t chain_pos = 0;
};

} // namespace

DbProbeWorkload::DbProbeWorkload(std::size_t num_tuples,
                                 unsigned buckets_log2,
                                 std::size_t num_tasks,
                                 unsigned probes_per_task,
                                 std::uint64_t seed)
    : name_("db-probe"), num_buckets(std::size_t{1} << buckets_log2),
      num_tasks(num_tasks), probes_per_task(probes_per_task),
      seed(seed)
{
    buckets.resize(num_buckets);
    node_keys.reserve(num_tuples);
    Rng rng(seed);
    for (std::size_t i = 0; i < num_tuples; ++i) {
        const std::uint64_t key = rng();
        const std::size_t b =
            genomics::hashKmer(key, 3) % num_buckets;
        buckets[b].push_back(std::uint32_t(node_keys.size()));
        node_keys.push_back(key);
    }
}

unsigned
DbProbeWorkload::chainLength(std::uint64_t key) const
{
    return unsigned(
        buckets[genomics::hashKmer(key, 3) % num_buckets].size());
}

bool
DbProbeWorkload::contains(std::uint64_t key) const
{
    for (std::uint32_t node :
         buckets[genomics::hashKmer(key, 3) % num_buckets]) {
        if (node_keys[node] == key)
            return true;
    }
    return false;
}

std::vector<StructureSpec>
DbProbeWorkload::structures() const
{
    StructureSpec bucket_heads;
    bucket_heads.cls = DataClass::IndexBuckets;
    bucket_heads.bytes = Bytes{num_buckets * 8};
    bucket_heads.spatial = false;
    bucket_heads.read_only = true;
    bucket_heads.access_granule = 8;

    StructureSpec nodes;
    nodes.cls = DataClass::IndexNodes;
    nodes.bytes = Bytes{std::max<std::uint64_t>(node_keys.size() * 16, 64)};
    nodes.spatial = false;
    nodes.read_only = true;
    nodes.access_granule = 16;
    return {bucket_heads, nodes};
}

TaskPtr
DbProbeWorkload::makeTask(std::size_t idx,
                          const WorkloadContext &) const
{
    Rng rng(seed ^ (idx * 0x9E3779B97F4A7C15ull));
    std::vector<DbProbeTask::Probe> probes;
    probes.reserve(probes_per_task);
    for (unsigned i = 0; i < probes_per_task; ++i) {
        // Half the probes re-use stored keys (hits), half are fresh
        // draws (mostly misses) — a typical join selectivity mix.
        std::uint64_t key;
        if (!node_keys.empty() && rng.chance(0.5))
            key = node_keys[rng.next(node_keys.size())];
        else
            key = rng();
        DbProbeTask::Probe probe;
        probe.bucket = genomics::hashKmer(key, 3) % num_buckets;
        // The walker visits chain nodes until the key matches.
        for (std::uint32_t node : buckets[probe.bucket]) {
            probe.chain.push_back(node);
            if (node_keys[node] == key)
                break;
        }
        probes.push_back(std::move(probe));
    }
    return std::make_unique<DbProbeTask>(std::move(probes));
}

} // namespace beacon
