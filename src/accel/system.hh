/**
 * @file
 * Composed accelerator systems.
 *
 * NdpSystem instantiates a full machine — fabric (CXL pool or DDR
 * channels), one DRAM controller per DIMM, NDP modules (on
 * CXLG-DIMMs, in switches, or per DDR-DIMM), atomic engines, and the
 * memory-management framework — then drives a Workload through it
 * and reports time, energy, and activity statistics.
 *
 * The same class realises every evaluated configuration:
 *   MEDAL / NEST          (DDR fabric, NDP in every customised DIMM)
 *   CXL-vanilla           (pool fabric, all optimizations off)
 *   BEACON-D / BEACON-S   (pool fabric, optimizations per flags)
 * and each system's idealized-communication twin.
 */

#ifndef BEACON_ACCEL_SYSTEM_HH
#define BEACON_ACCEL_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "accel/ddr_fabric.hh"
#include "accel/energy_model.hh"
#include "accel/workload.hh"
#include "check/checker_config.hh"
#include "cxl/pool.hh"
#include "dram/controller.hh"
#include "dram/energy.hh"
#include "memmgmt/framework.hh"
#include "ndp/atomic_engine.hh"
#include "ndp/ndp_module.hh"
#include "obs/observability.hh"
#include "sim/sharded_event_queue.hh"

namespace beacon
{

/** The paper's cumulative optimization switches. */
struct OptimizationFlags
{
    bool data_packing = false;      //!< Data Packers active
    bool mem_access_opt = false;    //!< device-bias routing (Fig. 9)
    bool placement_mapping = false; //!< placement + address mapping
    unsigned coalesce_chips = 1;    //!< >1 enables multi-chip coalescing
    bool kmc_single_pass = false;   //!< single-pass k-mer counting
    /** Stripe weight of a CXLG-DIMM under proximity placement (how
     *  much hot data migrates onto the NDP module's own DIMM). */
    unsigned cxlg_stripe_weight = 5;
    /**
     * Function shipping (MEDAL-style task forwarding): a remote read
     * whose target DIMM has NDP capability executes the consuming
     * step there and returns only the 8-byte result instead of the
     * operand block. Halves fine-grained response traffic at the
     * cost of remote PE work.
     */
    bool function_shipping = false;
};

/** Full machine description. */
struct SystemParams
{
    std::string name = "system";
    /** DDR-channel fabric (MEDAL/NEST) instead of the CXL pool. */
    bool ddr_fabric = false;
    /** NDP modules in the CXL-Switches (BEACON-S) instead of DIMMs. */
    bool ndp_in_switch = false;
    /** Switches (pool) or channels (DDR). */
    unsigned num_groups = 2;
    /** DIMMs per switch/channel. */
    unsigned dimms_per_group = 4;
    /** Global indices of customised (NDP-capable) DIMMs. */
    std::vector<unsigned> cxlg_dimms;
    /** PEs per NDP module. */
    unsigned pes_per_module = 128;
    /** Max in-flight tasks per NDP module. */
    unsigned max_inflight_tasks = 256;
    /** Which Table II PE row prices the PEs. */
    std::string pe_architecture = "BEACON";
    /** Row-buffer policy of every DRAM controller. */
    PagePolicy page_policy = PagePolicy::Open;

    OptimizationFlags opts;
    /** Idealized communication (infinite bandwidth, zero latency). */
    bool ideal_comm = false;

    /**
     * Runtime verification (src/check): defaults to the
     * BEACON_CHECKERS environment toggle so CI can arm every
     * checker fleet-wide; harnesses may also set it explicitly.
     */
    CheckerConfig checkers = CheckerConfig::fromEnv();

    /**
     * Telemetry (src/obs): tracing, time-series sampling, and
     * self-profiling. Defaults to the BEACON_TRACE /
     * BEACON_TIMESERIES_NS / BEACON_SELF_PROFILE environment
     * toggles; all-off (the default) builds no obs machinery.
     */
    obs::ObsConfig obs = obs::ObsConfig::fromEnv();

    /**
     * Discrete-event engine: the legacy serial queue by default, the
     * sharded parallel queue when shards > 1 (or force_sharded).
     * Bit-identical results either way; BEACON_DES_SHARDS /
     * BEACON_DES_THREADS select it fleet-wide (CI's sharded leg).
     */
    DesParams des = DesParams::fromEnv();

    PoolParams pool;          //!< used when !ddr_fabric
    DdrFabricParams ddr;      //!< used when ddr_fabric

    /**
     * Global DIMM indices reserved for the rack layer (src/rack):
     * excluded from every tenant layout's stripe lists so the rack's
     * hot-pluggable expansion DIMMs never hold tenant structures.
     * Capacity on them is tracked via MemoryFramework::reserveOn().
     * Empty (the default) for every preset — no placement change.
     */
    std::vector<unsigned> rack_reserved_dimms;
    CommEnergyParams comm_energy;
    DramEnergyParams dram_energy;

    /** @name Factory presets (Table I topologies) @{ */
    static SystemParams medal();
    static SystemParams nest();
    static SystemParams cxlVanillaD();
    static SystemParams cxlVanillaS();
    static SystemParams beaconD();
    static SystemParams beaconS();
    /** @} */

    /** Copy with idealized communication enabled. */
    SystemParams idealized() const;
};

/** Result of one workload run. */
struct RunResult
{
    std::string system;
    std::string workload;
    Tick ticks = 0;
    double seconds = 0;
    std::uint64_t tasks = 0;
    double tasks_per_second = 0;
    SystemEnergy energy;
    Bytes wire_bytes;
    std::uint64_t host_round_trips = 0;
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writes = 0;
    /** Per-chip-position access counts summed over DIMMs (Fig 13). */
    std::vector<double> chip_accesses;
    /** Coefficient of variation of per-chip accesses. */
    double chip_access_cov = 0;
};

/**
 * One fully instantiated machine.
 *
 * Two modes of operation:
 *  - bound to one Workload (the classic construction): run() drives
 *    the workload's tasks to completion and reports metrics;
 *  - service mode (workload-less construction): an external
 *    orchestrator (src/service) admits tenants through the memory
 *    framework, registers their layouts, and dispatches tasks via
 *    serveTask() — many concurrent jobs share this one machine.
 */
class NdpSystem
{
  public:
    NdpSystem(const SystemParams &params, const Workload &workload);

    /**
     * Service mode: build the machine with no bound workload. Tasks
     * arrive through serveTask() and memory through per-tenant
     * allocations (see placementPolicy() / setTenantLayout()).
     */
    explicit NdpSystem(const SystemParams &params);

    ~NdpSystem();

    /**
     * Run @p num_tasks tasks (0 = all of the workload's tasks) to
     * completion and report metrics. Multi-pass k-mer counting runs
     * both passes plus the filter merge.
     */
    RunResult run(std::size_t num_tasks = 0);

    /** Statistic registry (inspectable after run()). */
    const StatRegistry &stats() const { return registry; }

    /** DRAM controller of a DIMM (tests). */
    const DramController &dimmController(unsigned index) const
    {
        return *controllers.at(index);
    }

    /** The placement decisions in effect. */
    const MemoryLayout &layout() const { return *mem_layout; }

    unsigned numPartitions() const { return unsigned(ndps.size()); }

    /** @name Service mode (multi-tenant orchestration) @{ */

    /** The memory framework, for tenant admission decisions. */
    MemoryFramework &memoryFramework() { return *framework; }

    /** Event queue, for orchestrators driving the loop directly. */
    EventQueue &eventQueue() { return eq; }

    /** The sharded engine, or nullptr when running the legacy one. */
    ShardedEventQueue *shardedQueue() { return eq.sharded(); }

    /** Mutable registry access (orchestrator-level statistics). */
    StatRegistry &statsMutable() { return registry; }

    /**
     * Placement-policy prototype matching this machine's topology
     * and optimization flags; tenants start from it when building
     * their AllocationRequests so every tenant layout agrees with
     * the machine on partition count and NDP placement.
     */
    const PlacementPolicy &placementPolicy() const
    {
        return policy_proto;
    }

    /** Register / drop the layout backing a tenant's accesses. */
    void setTenantLayout(TenantId tenant,
                         std::shared_ptr<MemoryLayout> layout);
    void dropTenantLayout(TenantId tenant);

    /** True when some NDP module can accept another task. */
    bool hasFreeSlot() const;

    /**
     * Dispatch one externally built task: input streaming from the
     * host (tagged with the task's tenant) followed by submission to
     * an NDP module with room. @p on_done fires at task completion.
     * Returns false — without consuming the task's slot — when every
     * module is full.
     */
    bool serveTask(TaskPtr task, NdpModule::TaskDoneFn on_done);

    /** Observer invoked whenever a task slot frees up. */
    void setSlotFreedFn(std::function<void()> fn)
    {
        slot_freed = std::move(fn);
    }

    /**
     * Machine-level metrics as of @p end, including end-of-run
     * checker finalization. run() uses this internally; service-mode
     * orchestrators call it once their job mix has drained.
     */
    RunResult machineResult(Tick end);

    unsigned maxInflightTasks() const { return p.max_inflight_tasks; }
    Tick peClockPs() const { return pe_clock_ps; }
    const SystemParams &params() const { return p; }

    /** Telemetry bundle, or nullptr when ObsConfig is all-off. */
    obs::Observability *observability()
    {
        return observability_.get();
    }

    /** Time-series sampler, or nullptr when sampling is off. */
    obs::Sampler *
    obsSampler()
    {
        return observability_ ? observability_->sampler() : nullptr;
    }

    /** Request trace, or nullptr when request tracing is off. */
    obs::RequestTrace *
    obsRequestTrace()
    {
        return observability_ ? observability_->requestTrace()
                              : nullptr;
    }

    /** Live SLO monitor, or nullptr when no SLO window is set. */
    obs::SloMonitor *
    obsSlo()
    {
        return observability_ ? observability_->slo() : nullptr;
    }

    /** NDP module of a partition (per-tenant stat inspection). */
    const NdpModule &ndpModule(unsigned partition) const
    {
        return *ndps.at(partition);
    }

    /** @} */

    /** @name Rack integration (src/rack) @{ */

    /**
     * The CXL pool fabric; hard-fails on DDR machines. Rack layers
     * use it to register extra hosts, send HDM/segment traffic, and
     * drive hot-plug (un)registration.
     */
    PoolFabric &poolFabric();

    /** Total DIMMs in the machine. */
    unsigned numDimms() const { return unsigned(controllers.size()); }

    /** Node id of DIMM @p index in the pool inventory. */
    NodeId dimmNodeId(unsigned index) const
    {
        return dimm_nodes.at(index);
    }

    /**
     * Enqueue one DRAM access on DIMM @p index (no fabric hop).
     * Rack segment and HDM traffic lands here after its fabric
     * delivery; the call must therefore execute on the DIMM
     * controller's lane — i.e. from inside a delivery callback of a
     * message destined to that DIMM — exactly like the remote-read
     * path of issuePiece(). Completions re-home to the default lane
     * (hint 0): rack completion callbacks touch rack-owned state.
     */
    void
    dimmDram(unsigned index, const ResolvedAccess &piece,
             bool is_write, std::function<void(Tick)> done,
             std::uint64_t job = 0)
    {
        localDram(index, piece, is_write, std::move(done), 0, job);
    }

    /**
     * Account @p bytes of logical DRAM traffic to @p tenant and the
     * untagged total (conservation holds by construction). For rack
     * accesses that bypass issueAccess(); lane-0 callers only — the
     * NDP partitions write their own "system.part<p>.*" counters.
     */
    void
    accountDramBytes(TenantId tenant, Bytes bytes)
    {
        *stat_dram_bytes += double(bytes.value());
        tenantDramStat(tenant) += double(bytes.value());
    }

    /** @} */

  private:
    /**
     * Select and build the discrete-event engine for @p params: the
     * legacy serial queue, or the sharded queue sized to the
     * machine's shardable components (see buildMachine's plan).
     */
    static std::unique_ptr<EventQueue>
    makeQueue(const SystemParams &params);

    /** True when the topology supports a multi-lane shard plan. */
    static bool shardingEligible(const SystemParams &params);

    /** Conservative lookahead of @p params' topology, in ticks. */
    static Tick shardLookahead(const SystemParams &params);

    /** Instantiate fabric, DRAM, NDP modules, engines, framework. */
    void buildMachine();

    /** The layout backing accesses of @p tenant. */
    const MemoryLayout &layoutFor(TenantId tenant) const;

    /** Lazily created per-tenant logical DRAM byte counter (the
     *  host-side "system.tenant<k>.dramBytes"; lane-0 writers). */
    Counter &tenantDramStat(TenantId tenant);

    /** Lazily created "system.part<p>.tenant<k>.dramBytes" counter;
     *  written only on partition @p p's lane. */
    Counter &partTenantDramStat(unsigned partition, TenantId tenant);

    /** NodeId hosting partition @p p's NDP module. */
    NodeId ndpNode(unsigned partition) const;

    /** Event-queue home hint of partition @p p (0 = default lane). */
    std::uint32_t
    partitionHint(unsigned partition) const
    {
        return part_hints.empty() ? 0 : part_hints.at(partition);
    }

    /**
     * Deliver an outbound fabric send of a DIMM-resident NDP
     * partition: the message crosses the DIMM-link interface
     * (egress_delay_, >= the shard lookahead) before entering the
     * fabric — which also re-homes the send() call onto the default
     * lane owning the fabric's state. Zero delay (DDR, in-switch,
     * idealized systems) sends synchronously, as before. The delay
     * is a model parameter: identical timing at every shard count.
     */
    void stageEgress(std::function<void()> send);

    /** Translate + route one logical access for partition @p p. */
    void issueAccess(unsigned partition, const AccessRequest &request,
                     std::function<void(Tick)> done);

    /** Route one resolved piece. */
    void issuePiece(unsigned partition, const AccessRequest &request,
                    const ResolvedAccess &piece,
                    std::function<void(Tick)> done);

    /** Local DRAM access on @p dimm (no fabric); the completion
     *  callback is homed onto @p completion_hint's lane. @p job is
     *  the request context carried into the MemRequest (0 = none). */
    void localDram(unsigned dimm, const ResolvedAccess &piece,
                   bool is_write, std::function<void(Tick)> done,
                   std::uint32_t completion_hint,
                   std::uint64_t job = 0);

    /** Atomic RMW via the home switch's Atomic Engine. */
    void atomicAccess(unsigned partition, const AccessRequest &request,
                      const ResolvedAccess &piece,
                      std::function<void(Tick)> done);

    /** Submit up to capacity from the pending task list. */
    void pump();

    /** Run the event loop until @p target tasks completed. */
    void drainUntil(std::uint64_t target);

    /** Ring-broadcast the partition-local filters (multi-pass). */
    void mergeFilters();

    SystemParams p;
    /** Bound workload; nullptr in service mode. */
    const Workload *workload = nullptr;
    WorkloadContext ctx;

    /** The engine (legacy or sharded, see DesParams); eq is the
     *  stable reference every component binds to. */
    std::unique_ptr<EventQueue> eq_store;
    EventQueue &eq;
    StatRegistry registry;

    /** Telemetry; constructed before any component so the trace
     *  sink is attached when components cache it. */
    std::unique_ptr<obs::Observability> observability_;

    std::unique_ptr<PoolFabric> pool_fabric;
    std::unique_ptr<DdrFabric> ddr_fabric;
    Fabric *fabric = nullptr;

    std::vector<std::unique_ptr<DramController>> controllers;
    std::vector<NodeId> dimm_nodes;
    std::vector<std::unique_ptr<NdpModule>> ndps;
    std::vector<NodeId> ndp_nodes;
    std::vector<std::unique_ptr<AtomicEngine>> atomic_engines;

    std::unique_ptr<MemoryFramework> framework;
    std::shared_ptr<MemoryLayout> mem_layout;
    /** Topology-derived policy prototype (see placementPolicy()). */
    PlacementPolicy policy_proto;
    /** Layouts registered by service-mode tenants. Guarded: the
     *  orchestrator registers layouts on lane 0 while partitions
     *  resolve accesses on their own lanes (admission and a tenant's
     *  first access are always >= one link traversal apart, so the
     *  lock never decides an outcome — it only keeps the map's
     *  rebalancing race-free). */
    mutable std::shared_mutex layout_mutex;
    std::map<TenantId, std::shared_ptr<MemoryLayout>> tenant_layouts;
    /** Logical bytes requested of DRAM. Host/rack-side traffic lands
     *  in "system.dramBytesTotal" + "system.tenant<k>.dramBytes"
     *  (lane-0 writers); each NDP partition writes its own
     *  "system.part<p>[.tenant<k>]" twins from its lane. Conservation
     *  (per-tenant sums == totals) holds over sumMatching() of the
     *  whole family. */
    Counter *stat_dram_bytes = nullptr;
    std::map<TenantId, Counter *> tenant_dram_stats;
    std::vector<Counter *> part_dram_bytes;
    std::vector<std::map<TenantId, Counter *>> part_tenant_dram_stats;
    /** Home hint per partition (0 = default lane; see buildMachine). */
    std::vector<std::uint32_t> part_hints;
    /** Model delays of the DIMM-resident NDP completion/egress paths
     *  (0 on DDR / in-switch / idealized systems). */
    Tick done_notify_delay_ = 0;
    Tick egress_delay_ = 0;
    /** Service-mode observer: a module slot became free. */
    std::function<void()> slot_freed;

    // Task driver state.
    std::size_t next_task = 0;
    std::size_t target_tasks = 0;
    std::uint64_t completed_tasks = 0;
    unsigned next_partition = 0;
    /** Tasks dispatched (including in-flight input messages) and not
     *  yet completed, per partition. */
    std::vector<unsigned> inflight;

    Tick pe_clock_ps = 1250;
};

} // namespace beacon

#endif // BEACON_ACCEL_SYSTEM_HH
