#include "experiment.hh"

#include <cstdio>

namespace beacon
{

std::vector<LadderStep>
beaconDLadder(bool with_coalescing)
{
    std::vector<LadderStep> ladder;

    SystemParams params = SystemParams::cxlVanillaD();
    ladder.push_back({"CXL-vanilla", params});

    params.opts.data_packing = true;
    params.name = "+data packing";
    ladder.push_back({"+data packing", params});

    params.opts.mem_access_opt = true;
    params.name = "+mem access opt";
    ladder.push_back({"+mem access opt", params});

    params.opts.placement_mapping = true;
    params.name = "+placement/mapping";
    ladder.push_back({"+placement/mapping", params});

    if (with_coalescing) {
        params.opts.coalesce_chips = 8;
        params.name = "BEACON-D";
        ladder.push_back({"+multi-chip coalescing", params});
    } else {
        ladder.back().params.name = "BEACON-D";
    }
    return ladder;
}

std::vector<LadderStep>
beaconSLadder(bool with_single_pass)
{
    std::vector<LadderStep> ladder;

    SystemParams params = SystemParams::cxlVanillaS();
    params.opts.kmc_single_pass = false;
    ladder.push_back({"CXL-vanilla", params});

    params.opts.data_packing = true;
    params.name = "+data packing";
    ladder.push_back({"+data packing", params});

    params.opts.mem_access_opt = true;
    params.name = "+mem access opt";
    ladder.push_back({"+mem access opt", params});

    params.opts.placement_mapping = true;
    params.name = "+placement/mapping";
    ladder.push_back({"+placement/mapping", params});

    if (with_single_pass) {
        params.opts.kmc_single_pass = true;
        params.name = "BEACON-S";
        ladder.push_back({"+single-pass KMC", params});
    } else {
        ladder.back().params.name = "BEACON-S";
    }
    return ladder;
}

RunResult
runSystem(const SystemParams &params, const Workload &workload,
          std::size_t tasks)
{
    NdpSystem system(params, workload);
    return system.run(tasks);
}

std::string
formatX(double factor)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", factor);
    return buf;
}

} // namespace beacon
