#include "workload.hh"

#include <algorithm>

#include "common/logging.hh"
#include "genomics/kmer.hh"

namespace beacon
{

using genomics::Base;
using genomics::DnaSequence;
using genomics::FmIndex;
using genomics::HashIndex;
using genomics::SaRange;

WorkloadFootprint
measureFootprint(const Workload &workload, const WorkloadContext &ctx)
{
    WorkloadFootprint fp;
    fp.tasks = workload.numTasks();
    for (std::size_t i = 0; i < workload.numTasks(); ++i) {
        TaskPtr task = workload.makeTask(i, ctx);
        for (;;) {
            const TaskStep step = task->next();
            ++fp.steps;
            fp.compute_cycles += step.compute_cycles;
            for (const AccessRequest &a : step.accesses) {
                ++fp.accesses;
                fp.access_bytes += a.bytes;
            }
            if (step.done)
                break;
        }
    }
    return fp;
}

// ---------------------------------------------------------------
// FM-index based DNA seeding
// ---------------------------------------------------------------

namespace
{

/**
 * Backward search over the read, restarting after a mismatch (greedy
 * exact-match seed extraction, as in MEDAL's seeding stage). One
 * step = one backward extension = two Occ-block fetches.
 *
 * The first `lookup_k` extensions of each seed are resolved from a
 * k-mer lookup table in engine SRAM (as BWA's and MEDAL's seeders
 * do); without it every seed would hammer the handful of Occ blocks
 * around the whole-range boundaries.
 */
class FmSeedingTask : public Task
{
  public:
    static constexpr unsigned lookup_k = 8;

    FmSeedingTask(const FmIndex &index, const DnaSequence &read)
        : fm(index), read(read), pos(read.size()),
          range(index.wholeRange())
    {
        seedFromLookup();
    }

    EngineKind engine() const override { return EngineKind::FmIndex; }

    TaskStep
    next() override
    {
        TaskStep step;
        if (pos == 0) {
            step.done = true;
            return step;
        }
        const Base c = read.at(pos - 1);
        const SaRange next_range = fm.extend(range, c);

        step.compute_cycles = engineStepCycles(EngineKind::FmIndex);
        // The engine fetches the Occ blocks holding both interval
        // pointers (the same block counts once).
        const std::uint64_t blk_lo = fm.blockOf(range.lo);
        const std::uint64_t blk_hi = fm.blockOf(range.hi);
        AccessRequest req;
        req.data_class = DataClass::FmOcc;
        req.offset = blk_lo * FmIndex::block_bytes;
        req.bytes = Bytes{FmIndex::block_bytes};
        step.accesses.push_back(req);
        if (blk_hi != blk_lo) {
            req.offset = blk_hi * FmIndex::block_bytes;
            step.accesses.push_back(req);
        }

        --pos;
        if (next_range.empty()) {
            // Seed ended: restart the search after the mismatch,
            // resolving the first extensions from the SRAM table.
            seedFromLookup();
        } else {
            range = next_range;
        }
        return step;
    }

  private:
    /**
     * Re-seed via the k-mer lookup table: consume up to lookup_k
     * bases functionally (no DRAM traffic). Advances past bases
     * whose k-mer is absent from the reference.
     */
    void
    seedFromLookup()
    {
        while (pos >= lookup_k) {
            SaRange r = fm.wholeRange();
            for (unsigned i = 0; i < lookup_k && !r.empty(); ++i)
                r = fm.extend(r, read.at(pos - 1 - i));
            if (r.empty()) {
                --pos; // k-mer absent: slide the seed window
                continue;
            }
            range = r;
            pos -= lookup_k;
            return;
        }
        // Tail shorter than the table's k: nothing left to seed.
        pos = 0;
    }

    const FmIndex &fm;
    const DnaSequence &read;
    std::size_t pos;
    SaRange range;
};

} // namespace

FmSeedingWorkload::FmSeedingWorkload(
    const genomics::DatasetPreset &preset)
    : name_(std::string("fm-seeding/") + preset.name)
{
    genome = genomics::makeGenome(preset.genome);
    reads = genomics::makeReads(genome, preset.reads);
    fm = std::make_unique<FmIndex>(genome);
}

std::vector<StructureSpec>
FmSeedingWorkload::structures() const
{
    StructureSpec occ;
    occ.cls = DataClass::FmOcc;
    occ.bytes = Bytes{fm->indexBytes()};
    occ.spatial = false;
    occ.read_only = true;
    occ.access_granule = FmIndex::block_bytes;
    return {occ};
}

TaskPtr
FmSeedingWorkload::makeTask(std::size_t idx,
                            const WorkloadContext &) const
{
    return std::make_unique<FmSeedingTask>(*fm,
                                           reads.at(idx % reads.size()));
}

// ---------------------------------------------------------------
// Hash-index based DNA seeding
// ---------------------------------------------------------------

namespace
{

class HashSeedingTask : public Task
{
  public:
    HashSeedingTask(const HashIndex &index, const DnaSequence &read)
        : hidx(index), read(read)
    {
        // Non-overlapping seeds across the read.
        const unsigned k = hidx.k();
        for (std::size_t p = 0; p + k <= read.size(); p += k) {
            std::uint64_t kmer = 0;
            for (unsigned i = 0; i < k; ++i)
                kmer = (kmer << 2) | read.at(p + i);
            seeds.push_back(kmer);
        }
    }

    EngineKind engine() const override
    {
        return EngineKind::HashIndex;
    }

    TaskStep
    next() override
    {
        TaskStep step;
        if (phase == Phase::Bucket) {
            if (seed_idx >= seeds.size()) {
                step.done = true;
                return step;
            }
            const std::uint64_t kmer = seeds[seed_idx];
            step.compute_cycles =
                engineStepCycles(EngineKind::HashIndex);
            AccessRequest req;
            req.data_class = DataClass::HashBucket;
            req.offset = hidx.bucketOf(kmer) * 8;
            req.bytes = Bytes{8};
            step.accesses.push_back(req);
            phase = Phase::Locations;
            return step;
        }
        // Locations phase: fetch the matching locations, if any.
        const std::uint64_t kmer = seeds[seed_idx];
        const std::size_t hits = hidx.hitCount(kmer);
        ++seed_idx;
        phase = Phase::Bucket;
        step.compute_cycles = engineStepCycles(EngineKind::HashIndex);
        if (hits > 0) {
            AccessRequest req;
            req.data_class = DataClass::HashLocations;
            req.offset = hidx.locationOffsetBytes(kmer);
            req.bytes = Bytes{hits * 4};
            step.accesses.push_back(req);
        }
        if (step.accesses.empty() && seed_idx >= seeds.size())
            step.done = true;
        return step;
    }

  private:
    enum class Phase { Bucket, Locations };

    const HashIndex &hidx;
    const DnaSequence &read;
    std::vector<std::uint64_t> seeds;
    std::size_t seed_idx = 0;
    Phase phase = Phase::Bucket;
};

} // namespace

HashSeedingWorkload::HashSeedingWorkload(
    const genomics::DatasetPreset &preset, unsigned k)
    : name_(std::string("hash-seeding/") + preset.name)
{
    genome = genomics::makeGenome(preset.genome);
    reads = genomics::makeReads(genome, preset.reads);
    hidx = std::make_unique<HashIndex>(genome, k);
}

std::vector<StructureSpec>
HashSeedingWorkload::structures() const
{
    StructureSpec buckets;
    buckets.cls = DataClass::HashBucket;
    buckets.bytes = Bytes{hidx->bucketTableBytes()};
    buckets.spatial = false;
    buckets.read_only = true;
    buckets.access_granule = 8;

    StructureSpec locations;
    locations.cls = DataClass::HashLocations;
    locations.bytes =
        Bytes{std::max<std::uint64_t>(hidx->locationBytes(), 64)};
    locations.spatial = true;
    locations.read_only = true;
    locations.access_granule = 64;
    return {buckets, locations};
}

TaskPtr
HashSeedingWorkload::makeTask(std::size_t idx,
                              const WorkloadContext &) const
{
    return std::make_unique<HashSeedingTask>(
        *hidx, reads.at(idx % reads.size()));
}

// ---------------------------------------------------------------
// k-mer counting
// ---------------------------------------------------------------

namespace
{

/**
 * One task processes one read: for every canonical k-mer, one
 * compute step plus the Bloom-filter counter updates.
 *
 *  - single-pass: atomic increments on the global filter;
 *  - multi-pass pass 0: atomic increments on the partition-local
 *    filter;
 *  - multi-pass pass 1: plain reads of the partition-local filter
 *    (counting against the merged filter).
 */
class KmerCountTask : public Task
{
  public:
    KmerCountTask(std::vector<std::uint64_t> kmers, unsigned hashes,
                  std::size_t counters, bool single_pass,
                  unsigned pass)
        : kmers(std::move(kmers)), num_hashes(hashes),
          num_counters(counters), single_pass(single_pass), pass(pass)
    {}

    EngineKind engine() const override
    {
        return EngineKind::KmerCounting;
    }

    TaskStep
    next() override
    {
        TaskStep step;
        if (idx >= kmers.size()) {
            step.done = true;
            return step;
        }
        const std::uint64_t kmer = kmers[idx++];
        step.compute_cycles =
            engineStepCycles(EngineKind::KmerCounting);
        const bool update = single_pass || pass == 0;
        for (unsigned h = 0; h < num_hashes; ++h) {
            AccessRequest req;
            req.data_class = single_pass ? DataClass::BloomCounter
                                         : DataClass::BloomLocal;
            req.offset =
                genomics::hashKmer(kmer, 7 + h) % num_counters;
            req.bytes = Bytes{1};
            req.is_write = update;
            req.is_atomic = update;
            step.accesses.push_back(req);
        }
        if (idx >= kmers.size() && step.accesses.empty())
            step.done = true;
        return step;
    }

  private:
    std::vector<std::uint64_t> kmers;
    unsigned num_hashes;
    std::size_t num_counters;
    bool single_pass;
    unsigned pass;
    std::size_t idx = 0;
};

} // namespace

KmerCountingWorkload::KmerCountingWorkload(
    const genomics::DatasetPreset &preset, unsigned k,
    unsigned num_hashes, std::size_t filter_counters,
    std::size_t max_reads)
    : name_(std::string("kmer-counting/") + preset.name), k_(k),
      num_hashes(num_hashes), filter_counters(filter_counters)
{
    genome = genomics::makeGenome(preset.genome);
    genomics::ReadParams rp = preset.reads;
    rp.num_reads = std::min(rp.num_reads, max_reads);
    reads = genomics::makeReads(genome, rp);
    // The filter is proportioned to the sampled input (see the
    // constructor doc), so per-run constants such as the filter
    // merge are NOT additionally scaled down.
    sample_fraction = 1.0;
}

std::vector<StructureSpec>
KmerCountingWorkload::structures() const
{
    StructureSpec global;
    global.cls = DataClass::BloomCounter;
    global.bytes = Bytes{filter_counters};
    global.spatial = false;
    global.read_only = false;
    global.access_granule = 8;

    StructureSpec local = global;
    local.cls = DataClass::BloomLocal;
    local.partition_local = true;
    return {global, local};
}

TaskPtr
KmerCountingWorkload::makeTask(std::size_t idx,
                               const WorkloadContext &ctx) const
{
    const DnaSequence &read = reads.at(idx % reads.size());
    std::vector<std::uint64_t> kmers;
    genomics::forEachKmer(read, k_,
                          [&](std::uint64_t kmer, std::size_t) {
                              kmers.push_back(
                                  genomics::canonicalKmer(kmer, k_));
                          });
    return std::make_unique<KmerCountTask>(
        std::move(kmers), num_hashes, filter_counters,
        ctx.kmc_single_pass, ctx.pass);
}

genomics::CountingBloomFilter
KmerCountingWorkload::buildReferenceFilter() const
{
    genomics::CountingBloomFilter filter(filter_counters, num_hashes);
    for (const DnaSequence &read : reads) {
        genomics::forEachKmer(
            read, k_, [&](std::uint64_t kmer, std::size_t) {
                filter.add(genomics::canonicalKmer(kmer, k_));
            });
    }
    return filter;
}

// ---------------------------------------------------------------
// DNA pre-alignment
// ---------------------------------------------------------------

namespace
{

class PrealignTask : public Task
{
  public:
    PrealignTask(std::uint64_t window_offset, std::uint32_t window_bytes)
        : window_offset(window_offset), window_bytes(window_bytes)
    {}

    EngineKind engine() const override
    {
        return EngineKind::Prealign;
    }

    TaskStep
    next() override
    {
        TaskStep step;
        switch (phase) {
          case 0: {
            // Fetch the candidate reference window.
            AccessRequest req;
            req.data_class = DataClass::RefWindow;
            req.offset = window_offset;
            req.bytes = Bytes{window_bytes};
            step.compute_cycles = Cycles{4};
            step.accesses.push_back(req);
            phase = 1;
            return step;
          }
          case 1:
          default:
            // Build the bit-vectors and decide.
            step.compute_cycles =
                engineStepCycles(EngineKind::Prealign);
            step.done = true;
            return step;
        }
    }

  private:
    std::uint64_t window_offset;
    std::uint32_t window_bytes;
    unsigned phase = 0;
};

} // namespace

PrealignWorkload::PrealignWorkload(
    const genomics::DatasetPreset &preset, unsigned edit_threshold,
    unsigned candidates_per_read)
    : name_(std::string("prealign/") + preset.name),
      threshold(edit_threshold), cands_per_read(candidates_per_read)
{
    genome = genomics::makeGenome(preset.genome);
    reads = genomics::makeReads(genome, preset.reads);
    candidates = reads.size() * cands_per_read;
}

std::vector<StructureSpec>
PrealignWorkload::structures() const
{
    StructureSpec ref;
    ref.cls = DataClass::RefWindow;
    // 2-bit packed reference.
    ref.bytes = Bytes{std::max<std::uint64_t>(genome.size() / 4, 64)};
    ref.spatial = true;
    ref.read_only = true;
    ref.access_granule = 64;
    return {ref};
}

TaskPtr
PrealignWorkload::makeTask(std::size_t idx,
                           const WorkloadContext &) const
{
    const std::size_t read_idx = (idx / cands_per_read) % reads.size();
    const DnaSequence &read = reads[read_idx];
    // Candidate windows spread deterministically over the genome.
    const std::uint64_t hash =
        genomics::hashKmer(idx * 2654435761ull + read_idx);
    const std::uint64_t window_pos =
        hash % std::max<std::uint64_t>(genome.size() - read.size(), 1);
    const std::uint64_t offset = window_pos / 4; // 2-bit packed
    const std::uint32_t bytes =
        std::uint32_t(read.size() / 4 + 1);
    return std::make_unique<PrealignTask>(offset, bytes);
}

} // namespace beacon
