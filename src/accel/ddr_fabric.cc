#include "ddr_fabric.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace beacon
{

DdrFabric::DdrFabric(const std::string &name, EventQueue &eq,
                     StatRegistry &stats,
                     const DdrFabricParams &params)
    : SimObject(name, eq, stats),
      p(params),
      stat_messages(stat("messages")),
      stat_useful_bytes(stat("usefulBytesTotal"))
{
    for (unsigned c = 0; c < p.num_channels; ++c) {
        channels.push_back(std::make_unique<BandwidthServer>(
            p.ideal ? -1.0 : p.channel_gb_per_s));
    }
}

Bytes
DdrFabric::totalWireBytes() const
{
    Bytes total;
    for (const auto &ch : channels)
        total += ch->totalBytes();
    return total;
}

Bytes
DdrFabric::channelBytes(unsigned channel) const
{
    return channels.at(channel)->totalBytes();
}

void
DdrFabric::hopChannel(unsigned channel, Bytes bytes,
                      std::function<void()> next)
{
    const Tick done = channels.at(channel)->accept(curTick(), bytes);
    const Tick latency = p.ideal ? 0 : p.channel_latency;
    eq.schedule(done + latency, [fn = std::move(next)] { fn(); },
                EventCat::Cxl);
}

Counter &
DdrFabric::tenantBytesStat(TenantId tenant)
{
    auto it = tenant_bytes_stats.find(tenant);
    if (it == tenant_bytes_stats.end()) {
        Counter &counter =
            stat("tenant" + std::to_string(tenant.value()) + ".usefulBytes");
        it = tenant_bytes_stats.emplace(tenant, &counter).first;
    }
    return *it->second;
}

void
DdrFabric::sendTagged(NodeId src, NodeId dst,
                      Bytes useful_bytes,
                      bool /*fine_grained*/, TenantId tenant,
                      Deliver deliver)
{
    BEACON_ASSERT(!src.isSwitch() && !dst.isSwitch(),
                  "DDR fabric has no switches");
    ++stat_messages;
    stat_useful_bytes += double(useful_bytes.value());
    tenantBytesStat(tenant) += double(useful_bytes.value());
    const Bytes wire = Bytes{
        roundUp<std::uint64_t>(useful_bytes.value(), p.granule_bytes)};
    auto finish = [this, deliver = std::move(deliver)]() {
        deliver(curTick());
    };

    if (src == dst) {
        eq.scheduleIn(0, finish, EventCat::Cxl);
        return;
    }

    const Tick host_fwd = p.ideal ? 0 : p.host_forward_latency;
    if (src.isHost()) {
        hopChannel(dst.sw, wire, std::move(finish));
        return;
    }
    if (dst.isHost()) {
        hopChannel(src.sw, wire, std::move(finish));
        return;
    }
    // DIMM-to-DIMM: up src's channel, host store-forward, down
    // dst's channel (the same channel twice when they share it).
    hopChannel(src.sw, wire,
               [this, dst, wire, host_fwd,
                fn = std::move(finish)]() mutable {
                   eq.scheduleIn(host_fwd,
                                 [this, dst, wire,
                                  fn = std::move(fn)]() mutable {
                       hopChannel(dst.sw, wire, std::move(fn));
                   }, EventCat::Cxl);
               });
}

} // namespace beacon
