/**
 * @file
 * Analytic 48-thread CPU baseline (Table I: Xeon E5-2680 v3).
 *
 * The paper normalises every result to software baselines (BWA-MEM,
 * SMALT, BFCounter, Shouji) on a 48-thread Xeon. We model the CPU as
 * bound by its dependent random-access chains plus per-step software
 * overhead (instruction stream, cache/TLB pressure). The constant
 * only sets the normalisation scale; the NDP-vs-NDP ratios — the
 * paper's claims under test — are independent of it (see DESIGN.md).
 */

#ifndef BEACON_ACCEL_CPU_BASELINE_HH
#define BEACON_ACCEL_CPU_BASELINE_HH

#include "accel/workload.hh"

namespace beacon
{

/** CPU model parameters. */
struct CpuBaselineParams
{
    unsigned threads = 48;
    /** Effective latency of one dependent random DRAM access. */
    double random_access_ns = 100.0;
    /** Memory-level parallelism of the access chains (FM-index
     *  backward search is fully dependent). */
    double mlp = 1.0;
    /** Software overhead per algorithm step. */
    double per_step_ns = 1500.0;
    /** Package power of the two-socket system. */
    double power_w = 240.0;
};

/** Result of the analytic model. */
struct CpuBaselineResult
{
    double seconds = 0;
    Picojoules energy_pj;
    double tasks_per_second = 0;
};

/** Estimate the CPU baseline for a measured workload footprint. */
CpuBaselineResult cpuBaseline(const WorkloadFootprint &footprint,
                              const CpuBaselineParams &params = {});

} // namespace beacon

#endif // BEACON_ACCEL_CPU_BASELINE_HH
