#include "cpu_baseline.hh"

namespace beacon
{

CpuBaselineResult
cpuBaseline(const WorkloadFootprint &footprint,
            const CpuBaselineParams &p)
{
    const double access_ns = double(footprint.accesses) *
                             p.random_access_ns / p.mlp;
    const double step_ns = double(footprint.steps) * p.per_step_ns;
    const double total_ns = (access_ns + step_ns) / double(p.threads);

    CpuBaselineResult out;
    out.seconds = total_ns * 1e-9;
    // W x s = J = 1e12 pJ.
    out.energy_pj = Picojoules{p.power_w * out.seconds * 1e12};
    out.tasks_per_second =
        out.seconds > 0 ? double(footprint.tasks) / out.seconds : 0;
    return out;
}

} // namespace beacon
