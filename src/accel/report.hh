/**
 * @file
 * Machine-readable run reports.
 *
 * Serialises RunResult (and batches of them) as JSON so plotting
 * scripts can regenerate the paper's figures from bench output, and
 * as CSV for spreadsheet work. The JSON writer is deliberately
 * minimal — flat objects, numbers, strings — so it has no external
 * dependency.
 */

#ifndef BEACON_ACCEL_REPORT_HH
#define BEACON_ACCEL_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "accel/system.hh"

namespace beacon
{

/** Write one result as a JSON object. */
void writeRunResultJson(std::ostream &out, const RunResult &result,
                        unsigned indent = 0);

/** Write a batch as a JSON array. */
void writeRunResultsJson(std::ostream &out,
                         const std::vector<RunResult> &results);

/** CSV header matching writeRunResultCsv rows. */
std::string runResultCsvHeader();

/** Write one result as a CSV row. */
void writeRunResultCsv(std::ostream &out, const RunResult &result);

/** Escape a string for inclusion in JSON. */
std::string jsonEscape(const std::string &text);

} // namespace beacon

#endif // BEACON_ACCEL_REPORT_HH
