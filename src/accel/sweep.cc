#include "sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <ostream>
#include <sstream>

#include "accel/report.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace beacon
{

namespace
{

// Wall-clock elapsed time feeds only the wall_seconds field, which
// the golden gate and cross-worker-count diffs exclude
// (BEACON_BENCH_JSON_NO_WALL).
double
// beacon-lint: allow(determinism-wallclock)
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               // beacon-lint: allow(determinism-wallclock)
               std::chrono::steady_clock::now() - since)
        .count();
}

/** splitmix64 finaliser decorrelating per-job seeds. */
std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

SweepRunner::SweepRunner(unsigned jobs, std::uint64_t seed)
    : num_jobs(jobs ? jobs : 1), base_seed(seed)
{
}

unsigned
SweepRunner::jobsFromEnv()
{
    const char *env = std::getenv("BEACON_BENCH_JOBS");
    if (env) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return unsigned(v);
        BEACON_WARN("ignoring invalid BEACON_BENCH_JOBS='", env,
                    "'");
    }
    return ThreadPool::defaultThreads();
}

std::size_t
SweepRunner::enqueue(SweepKey key, JobFn fn)
{
    pending.push_back({std::move(key), std::move(fn)});
    return pending.size() - 1;
}

std::size_t
SweepRunner::enqueueRun(SweepKey key, const SystemParams &params,
                        const Workload &workload, std::size_t tasks,
                        std::vector<std::string> stat_keys)
{
    return enqueue(
        std::move(key),
        [params, &workload, tasks,
         stat_keys = std::move(stat_keys)](RunContext &) {
            SweepOutcome out;
            NdpSystem system(params, workload);
            out.result = system.run(tasks);
            for (const std::string &stat : stat_keys)
                out.stats.emplace_back(
                    stat, system.stats().sumMatching(stat));
            return out;
        });
}

void
SweepRunner::setFilter(const std::string &pattern)
{
    filter = std::regex(pattern);
    have_filter = true;
}

std::vector<SweepOutcome>
SweepRunner::run()
{
    std::vector<Pending> jobs_to_run;
    jobs_to_run.swap(pending);

    std::vector<SweepOutcome> outcomes(jobs_to_run.size());

    if (list_only) {
        // Enumerate without executing: every point one stdout line,
        // every outcome skipped.
        for (std::size_t i = 0; i < jobs_to_run.size(); ++i) {
            outcomes[i].key = jobs_to_run[i].key;
            outcomes[i].skipped = true;
            std::printf("%s/%s\n",
                        jobs_to_run[i].key.dataset.c_str(),
                        jobs_to_run[i].key.label.c_str());
        }
        return outcomes;
    }

    // Filter decisions are made serially up front so worker threads
    // never touch the shared regex.
    std::vector<char> filtered_out(jobs_to_run.size(), 0);
    if (have_filter) {
        for (std::size_t i = 0; i < jobs_to_run.size(); ++i) {
            const std::string identity = jobs_to_run[i].key.dataset +
                                         "/" +
                                         jobs_to_run[i].key.label;
            filtered_out[i] = !std::regex_search(identity, filter);
        }
    }

    std::vector<std::exception_ptr> errors(jobs_to_run.size());
    std::atomic<bool> cancelled{false};

    auto execute = [&](std::size_t i) {
        outcomes[i].key = jobs_to_run[i].key;
        if (filtered_out[i] ||
            cancelled.load(std::memory_order_acquire)) {
            outcomes[i].skipped = true;
            return;
        }
        // beacon-lint: allow(determinism-wallclock) wall_seconds only
        const auto start = std::chrono::steady_clock::now();
        RunContext ctx;
        ctx.index = i;
        ctx.rng = Rng(mixSeed(base_seed, i));
        try {
            SweepOutcome out = jobs_to_run[i].fn(ctx);
            out.key = jobs_to_run[i].key;
            out.wall_seconds = elapsedSeconds(start);
            outcomes[i] = std::move(out);
        } catch (...) {
            errors[i] = std::current_exception();
            cancelled.store(true, std::memory_order_release);
        }
    };

    const unsigned workers = unsigned(std::min<std::size_t>(
        num_jobs, std::max<std::size_t>(jobs_to_run.size(), 1)));
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs_to_run.size(); ++i)
            execute(i);
    } else {
        // The pool joins before run() returns: no detached threads
        // survive a sweep, even one aborted by a worker exception.
        ThreadPool pool(workers);
        std::vector<std::future<void>> done;
        done.reserve(jobs_to_run.size());
        for (std::size_t i = 0; i < jobs_to_run.size(); ++i)
            done.push_back(pool.submit([&execute, i] { execute(i); }));
        for (auto &future : done)
            future.get();
    }

    // Serial-equivalent error surfacing: the recorded failure with
    // the lowest submission index wins.
    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
    return outcomes;
}

// ---------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------

namespace
{

/** Shortest round-trippable decimal form of @p v. */
std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeStatPairs(
    std::ostream &os,
    const std::vector<std::pair<std::string, double>> &pairs,
    const std::string &pad)
{
    os << "{";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (i)
            os << ",";
        os << "\n" << pad << "  \"" << jsonEscape(pairs[i].first)
           << "\": " << jsonNumber(pairs[i].second);
    }
    if (!pairs.empty())
        os << "\n" << pad;
    os << "}";
}

/**
 * One record's "self_profile" object: totals, throughput, and the
 * non-empty per-category breakdown (all wall-clock based, so only
 * ever emitted under include_runtime).
 */
void
writeSelfProfileJson(std::ostream &os, const obs::SelfProfileResult &sp)
{
    os << "      \"self_profile\": {\n";
    os << "        \"events\": " << sp.events << ",\n";
    os << "        \"wall_seconds\": "
       << jsonNumber(sp.wall_seconds) << ",\n";
    os << "        \"events_per_second\": "
       << jsonNumber(sp.eventsPerSecond()) << ",\n";
    os << "        \"top_categories\": [";
    const std::vector<std::string> top = sp.topCategories();
    for (std::size_t i = 0; i < top.size(); ++i)
        os << (i ? ", " : "") << "\"" << top[i] << "\"";
    os << "],\n";
    os << "        \"categories\": {";
    bool first = true;
    for (std::size_t c = 0; c < sp.by_cat.size(); ++c) {
        const obs::SelfProfileCat &cat = sp.by_cat[c];
        if (!cat.events)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n          \"" << eventCatName(EventCat(c))
           << "\": {\"events\": " << cat.events
           << ", \"wall_seconds\": " << jsonNumber(cat.wall_seconds)
           << ", \"max_event_seconds\": "
           << jsonNumber(cat.max_event_seconds) << "}";
    }
    if (!first)
        os << "\n        ";
    os << "}\n      },\n";
}

} // namespace

void
writeSweepJson(std::ostream &os, const SweepReport &report,
               bool include_runtime)
{
    // writeRunResultJson prints doubles via operator<<; raise the
    // stream precision so values round-trip exactly.
    const auto saved_precision = os.precision(17);

    os << "{\n";
    os << "  \"schema\": \"beacon-bench-3\",\n";
    os << "  \"harness\": \"" << jsonEscape(report.harness)
       << "\",\n";
    os << "  \"bench_scale\": " << report.bench_scale << ",\n";
    if (include_runtime) {
        os << "  \"jobs\": " << report.jobs << ",\n";
        os << "  \"wall_seconds\": "
           << jsonNumber(report.wall_seconds) << ",\n";
    }
    os << "  \"records\": [";
    for (std::size_t i = 0; i < report.records.size(); ++i) {
        const SweepOutcome &rec = report.records[i];
        if (i)
            os << ",";
        os << "\n    {\n";
        os << "      \"dataset\": \"" << jsonEscape(rec.key.dataset)
           << "\",\n";
        os << "      \"label\": \"" << jsonEscape(rec.key.label)
           << "\",\n";
        // Emitted only when set, so pre-existing golden files keep
        // their exact byte shape.
        if (rec.skipped)
            os << "      \"skipped\": true,\n";
        if (!rec.trace_file.empty())
            os << "      \"trace_file\": \""
               << jsonEscape(rec.trace_file) << "\",\n";
        if (!rec.timeseries_file.empty())
            os << "      \"timeseries_file\": \""
               << jsonEscape(rec.timeseries_file) << "\",\n";
        if (!rec.reqtrace_file.empty())
            os << "      \"reqtrace_file\": \""
               << jsonEscape(rec.reqtrace_file) << "\",\n";
        if (include_runtime) {
            os << "      \"wall_seconds\": "
               << jsonNumber(rec.wall_seconds) << ",\n";
            if (rec.self_profile.enabled)
                writeSelfProfileJson(os, rec.self_profile);
        }
        os << "      \"stats\": ";
        writeStatPairs(os, rec.stats, "      ");
        os << ",\n";
        os << "      \"run\":\n";
        writeRunResultJson(os, rec.result, 6);
        os << "\n    }";
    }
    if (!report.records.empty())
        os << "\n  ";
    os << "],\n";
    os << "  \"derived\": ";
    writeStatPairs(os, report.derived, "  ");
    os << "\n}\n";

    os.precision(saved_precision);
}

std::string
sweepJsonString(const SweepReport &report, bool include_runtime)
{
    std::ostringstream os;
    writeSweepJson(os, report, include_runtime);
    return os.str();
}

} // namespace beacon
