/**
 * @file
 * Section V extension workloads: BEACON as a general NDP platform.
 *
 * The paper argues BEACON extends to other memory-bound applications
 * "by replacing the PEs within the NDP module" (graph processing,
 * database searching). These workloads exercise that claim with the
 * same machinery the genomics applications use:
 *
 *  - GraphBfsWorkload: breadth-first traversal over a real CSR
 *    graph (offset array fine-grained + edge lists spatial);
 *  - DbProbeWorkload: hash-join index probing in the style of "Meet
 *    the Walkers" (bucket heads + pointer-chased chain nodes).
 */

#ifndef BEACON_ACCEL_EXTENSION_WORKLOADS_HH
#define BEACON_ACCEL_EXTENSION_WORKLOADS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/workload.hh"
#include "graph/csr.hh"

namespace beacon
{

/** BFS over a synthetic power-law graph. */
class GraphBfsWorkload : public Workload
{
  public:
    /**
     * @param params graph shape
     * @param num_sources one task per BFS source
     * @param max_visits traversal budget per task
     */
    explicit GraphBfsWorkload(const graph::GraphParams &params,
                              std::size_t num_sources = 64,
                              std::size_t max_visits = 512);

    const std::string &name() const override { return name_; }
    EngineKind engine() const override
    {
        return EngineKind::GraphTraversal;
    }
    std::vector<StructureSpec> structures() const override;
    std::size_t numTasks() const override { return sources.size(); }
    TaskPtr makeTask(std::size_t idx,
                     const WorkloadContext &ctx) const override;

    const graph::CsrGraph &graphData() const { return csr; }

  private:
    std::string name_;
    graph::CsrGraph csr;
    std::vector<std::uint32_t> sources;
    std::size_t max_visits;
};

/** Hash-join index probing over a chained hash table. */
class DbProbeWorkload : public Workload
{
  public:
    /**
     * @param num_tuples rows in the build-side table
     * @param buckets_log2 hash-bucket count (log2)
     * @param num_tasks probe batches (one task per batch)
     * @param probes_per_task keys probed by each task
     */
    DbProbeWorkload(std::size_t num_tuples = 1 << 16,
                    unsigned buckets_log2 = 14,
                    std::size_t num_tasks = 256,
                    unsigned probes_per_task = 32,
                    std::uint64_t seed = 99);

    const std::string &name() const override { return name_; }
    EngineKind engine() const override
    {
        return EngineKind::IndexProbe;
    }
    std::vector<StructureSpec> structures() const override;
    std::size_t numTasks() const override { return num_tasks; }
    TaskPtr makeTask(std::size_t idx,
                     const WorkloadContext &ctx) const override;

    /** Chain length for a key (0 = empty bucket), for tests. */
    unsigned chainLength(std::uint64_t key) const;

    /** Reference probe: does @p key hit a stored tuple? */
    bool contains(std::uint64_t key) const;

  private:
    std::string name_;
    std::size_t num_buckets;
    std::size_t num_tasks;
    unsigned probes_per_task;
    std::uint64_t seed;
    /** bucket -> list of node ids; node id -> key. */
    std::vector<std::vector<std::uint32_t>> buckets;
    std::vector<std::uint64_t> node_keys;
};

} // namespace beacon

#endif // BEACON_ACCEL_EXTENSION_WORKLOADS_HH
