/**
 * @file
 * DDR-channel fabric for the MEDAL/NEST baselines.
 *
 * The previous DDR-DIMM NDP accelerators (Fig. 1) communicate over
 * the host's DDR memory channels: a message from DIMM A to DIMM B
 * occupies A's channel up to the host memory controller, is
 * store-forwarded there, and then occupies B's channel (the same
 * physical channel when both DIMMs share it — the communication
 * bottleneck the paper identifies). There is no packing: transfers
 * move in 64-byte granules.
 *
 * NodeId reuse: `sw` is the channel index, `dimm` the DIMM's slot on
 * the channel; Switch nodes are not used.
 */

#ifndef BEACON_ACCEL_DDR_FABRIC_HH
#define BEACON_ACCEL_DDR_FABRIC_HH

#include <map>
#include <memory>
#include <vector>

#include "cxl/bandwidth_server.hh"
#include "cxl/fabric.hh"
#include "sim/sim_object.hh"

namespace beacon
{

/** DDR fabric configuration. */
struct DdrFabricParams
{
    unsigned num_channels = 4;
    unsigned dimms_per_channel = 2;
    double channel_gb_per_s = 12.8;  //!< DDR4-1600, 64-bit bus
    Tick channel_latency = 30000;    //!< 30 ns bus + protocol
    Tick host_forward_latency = 50000; //!< host MC store-forward
    /** The customised NDP-DIMM protocol moves fine-grained payloads
     *  in burst-chopped 32 B slots on the DDR bus. */
    unsigned granule_bytes = 32;
    /** Idealized communication (Fig. 3). */
    bool ideal = false;
};

/** Host-mastered DDR-channel fabric. */
class DdrFabric : public SimObject, public Fabric
{
  public:
    DdrFabric(const std::string &name, EventQueue &eq,
              StatRegistry &stats, const DdrFabricParams &params);

    void sendTagged(NodeId src, NodeId dst,
                    Bytes useful_bytes, bool fine_grained,
                    TenantId tenant, Deliver deliver) override;

    Bytes totalWireBytes() const override;

    const DdrFabricParams &params() const { return p; }

    /** Bytes moved on one channel. */
    Bytes channelBytes(unsigned channel) const;

  private:
    /** One hop over a channel; @p next runs at arrival. */
    void hopChannel(unsigned channel, Bytes bytes,
                    std::function<void()> next);

    DdrFabricParams p;
    std::vector<std::unique_ptr<BandwidthServer>> channels;
    Counter &stat_messages;
    Counter &stat_useful_bytes;
    Counter &tenantBytesStat(TenantId tenant);
    std::map<TenantId, Counter *> tenant_bytes_stats;
};

} // namespace beacon

#endif // BEACON_ACCEL_DDR_FABRIC_HH
