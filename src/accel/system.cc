#include "system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace beacon
{

// ---------------------------------------------------------------
// Presets (Table I)
// ---------------------------------------------------------------

namespace
{

std::vector<unsigned>
allDimms(unsigned groups, unsigned per_group)
{
    std::vector<unsigned> out(groups * per_group);
    for (unsigned i = 0; i < out.size(); ++i)
        out[i] = i;
    return out;
}

} // namespace

SystemParams
SystemParams::medal()
{
    SystemParams p;
    p.name = "MEDAL";
    p.ddr_fabric = true;
    p.num_groups = 4;       // DDR channels
    p.dimms_per_group = 2;  // DIMMs per channel
    p.cxlg_dimms = allDimms(4, 2);
    p.pes_per_module = 32;  // 8 x 32 = 256 PEs, equal area
    p.pe_architecture = "MEDAL";
    p.opts.placement_mapping = true; // MEDAL's fine-grained mapping
    p.ddr.num_channels = 4;
    p.ddr.dimms_per_channel = 2;
    return p;
}

SystemParams
SystemParams::nest()
{
    SystemParams p = medal();
    p.name = "NEST";
    p.pe_architecture = "NEST";
    return p;
}

SystemParams
SystemParams::cxlVanillaD()
{
    SystemParams p;
    p.name = "CXL-vanilla-D";
    p.ddr_fabric = false;
    p.num_groups = 2;       // CXL-Switches
    p.dimms_per_group = 4;
    p.cxlg_dimms = {0, 4};  // one CXLG-DIMM per switch
    p.pes_per_module = 128;
    p.pe_architecture = "BEACON";
    p.pool.num_switches = 2;
    p.pool.dimms_per_switch = 4;
    // NDP-in-DIMM pool systems count k-mers against the global
    // distributed filter directly: their filter spans unmodified
    // DIMMs, so NEST-style per-DIMM localization does not apply.
    p.opts.kmc_single_pass = true;
    return p;
}

SystemParams
SystemParams::cxlVanillaS()
{
    SystemParams p = cxlVanillaD();
    p.name = "CXL-vanilla-S";
    p.ndp_in_switch = true;
    p.cxlg_dimms.clear(); // no DIMM is customised
    p.pes_per_module = 256;
    return p;
}

SystemParams
SystemParams::beaconD()
{
    SystemParams p = cxlVanillaD();
    p.name = "BEACON-D";
    p.opts.data_packing = true;
    p.opts.mem_access_opt = true;
    p.opts.placement_mapping = true;
    p.opts.coalesce_chips = 8;
    return p;
}

SystemParams
SystemParams::beaconS()
{
    SystemParams p = cxlVanillaS();
    p.name = "BEACON-S";
    p.opts.data_packing = true;
    p.opts.mem_access_opt = true;
    p.opts.placement_mapping = true;
    p.opts.kmc_single_pass = true;
    return p;
}

SystemParams
SystemParams::idealized() const
{
    SystemParams p = *this;
    p.name += "-ideal";
    p.ideal_comm = true;
    return p;
}

// ---------------------------------------------------------------
// Construction
// ---------------------------------------------------------------

bool
NdpSystem::shardingEligible(const SystemParams &params)
{
    // Multi-lane sharding needs the CXL pool's re-homed deliveries
    // (the DDR fabric delivers on the caller's shard), a non-zero
    // link latency to derive the lookahead from, and an unarmed link
    // checker (its shadow model is mutated from delivery callbacks).
    // Ineligible machines still run the sharded engine when asked,
    // collapsed to one lane — same code path, serial speed.
    return !params.ddr_fabric && !params.ideal_comm &&
           !params.checkers.cxl_link;
}

Tick
NdpSystem::shardLookahead(const SystemParams &params)
{
    // An in-window event may touch another shard no sooner than the
    // cheapest cross-shard path: a CXL link hop (towards either a
    // DIMM or the host) or a DRAM completion's CAS-to-data-end gap.
    const DramTimingParams timing = DramTimingParams::ddr4_1600_22();
    Tick la = timing.minCompletionGapTicks();
    la = std::min(la, params.pool.dimm_link.latency);
    la = std::min(la, params.pool.host_link.latency);
    return la;
}

std::unique_ptr<EventQueue>
NdpSystem::makeQueue(const SystemParams &params)
{
    if (!params.des.sharded())
        return std::make_unique<EventQueue>();
    ShardedEventQueue::Params qp;
    qp.threads = params.des.threads;
    if (shardingEligible(params)) {
        // One lane per DIMM plus the default lane holding everything
        // else. An unmodified DIMM's shard is its controller; a
        // CXLG-DIMM's shard is the whole DIMM-local pipeline —
        // controller, NDP module, and partition atomic engine advance
        // together (their mutual calls are synchronous), decoupled
        // from lane 0 by the egress/done-notify model delays.
        const unsigned num_dimms =
            params.num_groups * params.dimms_per_group;
        qp.lanes = std::min(params.des.shards, 1 + num_dimms);
        qp.lookahead = shardLookahead(params);
    }
    return std::make_unique<ShardedEventQueue>(qp);
}

NdpSystem::NdpSystem(const SystemParams &params, const Workload &wl)
    : p(params), workload(&wl), eq_store(makeQueue(p)), eq(*eq_store)
{
    buildMachine();

    AllocationRequest request;
    request.app = workload->name();
    request.structures = workload->structures();
    request.policy = policy_proto;

    AllocationResponse response = framework->allocate(request);
    if (!response.success)
        BEACON_FATAL("allocation failed: ", response.error);
    mem_layout = response.layout;

    ctx.kmc_single_pass = p.opts.kmc_single_pass;
    ctx.pass = 0;
}

NdpSystem::NdpSystem(const SystemParams &params)
    : p(params), eq_store(makeQueue(p)), eq(*eq_store)
{
    buildMachine();
    ctx.kmc_single_pass = p.opts.kmc_single_pass;
    ctx.pass = 0;
}

void
NdpSystem::buildMachine()
{
    const unsigned num_dimms = p.num_groups * p.dimms_per_group;
    auto is_cxlg = [&](unsigned dimm) {
        return std::find(p.cxlg_dimms.begin(), p.cxlg_dimms.end(),
                         dimm) != p.cxlg_dimms.end();
    };

    // DIMM-resident pool NDP (BEACON-D / CXL-vanilla-D): the module's
    // completion notify crosses the host link back to the driver and
    // its outbound fabric messages cross the DIMM-link interface.
    // Both delays are model parameters — identical timing at every
    // shard count — and both are >= the shard lookahead, which is
    // what lets the whole CXLG-DIMM pipeline live on its own lane.
    const bool dimm_ndp = !p.ddr_fabric && !p.ndp_in_switch;
    if (dimm_ndp && !p.ideal_comm) {
        done_notify_delay_ = p.pool.host_link.latency;
        egress_delay_ = p.pool.dimm_link.latency;
    }

    // Lane pinning: tracing creates track ids lazily from submit /
    // slot-acquire paths, which must stay on the default lane. The
    // pin only changes event *homes*, never the model delays above,
    // so traced and untraced runs stay byte-identical.
    const bool pin_cxlg_lane0 = p.obs.trace;
    part_hints.clear();

    // Shard plan first: it must be installed before anything (the
    // telemetry sampler, controller refresh events) schedules. Every
    // DIMM homes to hint 1 + index; hints round-robin over the
    // worker lanes. Everything else stays on the default lane 0.
    ShardedEventQueue *sq = eq.sharded();
    if (sq && sq->lanes() > 1) {
        ShardPlan shard_plan;
        shard_plan.lanes = sq->lanes();
        unsigned next = 0;
        for (unsigned d = 0; d < num_dimms; ++d) {
            if (is_cxlg(d) && (!dimm_ndp || pin_cxlg_lane0))
                continue;
            shard_plan.home_lane[1 + d] =
                1 + (next % (shard_plan.lanes - 1));
            ++next;
        }
        sq->setPlan(std::move(shard_plan));
    }

    // Telemetry next: the trace sink must be attached to the queue
    // before components construct (they cache the sink pointer).
    if (p.obs.enabled())
        observability_ =
            std::make_unique<obs::Observability>(eq, p.obs);

    // --- Fabric ---
    if (p.ddr_fabric) {
        DdrFabricParams dp = p.ddr;
        dp.num_channels = p.num_groups;
        dp.dimms_per_channel = p.dimms_per_group;
        dp.ideal = p.ideal_comm;
        ddr_fabric = std::make_unique<DdrFabric>("ddrFabric", eq,
                                                 registry, dp);
        fabric = ddr_fabric.get();
    } else {
        PoolParams pp = p.pool;
        pp.num_switches = p.num_groups;
        pp.dimms_per_switch = p.dimms_per_group;
        pp.device_bias = p.opts.mem_access_opt;
        pp.packer.enabled = p.opts.data_packing;
        pp.ideal = p.ideal_comm;
        pp.checkers = p.checkers;
        pool_fabric = std::make_unique<PoolFabric>("pool", eq,
                                                   registry, pp);
        fabric = pool_fabric.get();
    }

    // --- DRAM controllers ---
    const DramTimingParams timing = DramTimingParams::ddr4_1600_22();
    for (unsigned d = 0; d < num_dimms; ++d) {
        const unsigned group = d / p.dimms_per_group;
        const unsigned slot = d % p.dimms_per_group;
        DimmGeometry geom;
        geom.per_rank_lanes = is_cxlg(d);
        geom.per_rank_cmd_bus = is_cxlg(d);
        DramControllerParams ctrl_params;
        ctrl_params.page_policy = p.page_policy;
        ctrl_params.checkers = p.checkers;
        // Every DIMM homes its controller (and its fabric deliveries)
        // to hint 1 + d; inert unless the shard plan maps the hint to
        // a worker lane. A CXLG-DIMM shares the hint with its NDP
        // module and partition engine (they call each other
        // synchronously, so they must be co-homed); under tracing
        // the CXLG pipeline stays pinned to the default lane.
        const bool home_dimm =
            !is_cxlg(d) || (dimm_ndp && !pin_cxlg_lane0);
        if (home_dimm) {
            ctrl_params.home_hint = 1 + d;
            if (pool_fabric) {
                pool_fabric->setNodeHome(NodeId::dimmNode(group, slot),
                                         1 + d);
            }
        }
        controllers.push_back(std::make_unique<DramController>(
            "dimm" + std::to_string(d), eq, registry, geom, timing,
            ctrl_params));
        dimm_nodes.push_back(NodeId::dimmNode(group, slot));
    }

    // --- NDP modules ---
    NdpModuleParams np;
    np.num_pes = p.pes_per_module;
    np.pe_clock_ps = timing.t_ck_ps;
    np.max_inflight_tasks = p.max_inflight_tasks;
    np.checkers = p.checkers;
    pe_clock_ps = timing.t_ck_ps;

    std::vector<unsigned> partition_group;
    std::vector<std::vector<unsigned>> partition_primary;
    if (p.ddr_fabric) {
        // One NDP module per (customised) DIMM.
        for (unsigned d = 0; d < num_dimms; ++d) {
            ndp_nodes.push_back(dimm_nodes[d]);
            partition_group.push_back(d / p.dimms_per_group);
            partition_primary.push_back({d});
        }
    } else if (p.ndp_in_switch) {
        for (unsigned s = 0; s < p.num_groups; ++s) {
            ndp_nodes.push_back(NodeId::switchNode(s));
            partition_group.push_back(s);
            std::vector<unsigned> prim;
            for (unsigned d = 0; d < p.dimms_per_group; ++d)
                prim.push_back(s * p.dimms_per_group + d);
            partition_primary.push_back(std::move(prim));
        }
    } else {
        BEACON_ASSERT(!p.cxlg_dimms.empty(),
                      "BEACON-D style system needs CXLG-DIMMs");
        for (unsigned d : p.cxlg_dimms) {
            ndp_nodes.push_back(dimm_nodes.at(d));
            const unsigned sw = d / p.dimms_per_group;
            partition_group.push_back(sw);
            // Partition-local structures (multi-pass Bloom filters)
            // spread over the partition's whole switch: they exceed
            // a single DIMM at production scale (SMUFIN: ~2 TB).
            std::vector<unsigned> prim;
            for (unsigned i = 0; i < p.dimms_per_group; ++i)
                prim.push_back(sw * p.dimms_per_group + i);
            partition_primary.push_back(std::move(prim));
        }
    }
    // Partition -> home hint. A DIMM-resident module homes with its
    // CXLG-DIMM's controller (hint 1 + dimm); switch modules and the
    // DDR baselines keep the default lane.
    inflight.assign(ndp_nodes.size(), 0);
    part_hints.assign(ndp_nodes.size(), 0);
    if (dimm_ndp && !pin_cxlg_lane0) {
        for (unsigned part = 0; part < p.cxlg_dimms.size(); ++part)
            part_hints[part] = 1 + p.cxlg_dimms[part];
    }
    np.done_notify_delay = done_notify_delay_;
    for (unsigned part = 0; part < ndp_nodes.size(); ++part) {
        np.home_hint = part_hints[part];
        ndps.push_back(std::make_unique<NdpModule>(
            "ndp" + std::to_string(part), eq, registry, np,
            [this, part](const AccessRequest &req,
                         std::function<void(Tick)> cb) {
                issueAccess(part, req, std::move(cb));
            }));
        ndps.back()->setTaskDoneFn([this, part] {
            ++completed_tasks;
            BEACON_ASSERT(inflight[part] > 0, "inflight underflow");
            --inflight[part];
            pump();
            if (slot_freed)
                slot_freed();
        });
    }

    // --- Atomic engines: one per switch/channel group, plus one
    //     local engine per partition (homed with its partition) ---
    for (unsigned s = 0; s < p.num_groups; ++s) {
        atomic_engines.push_back(std::make_unique<AtomicEngine>(
            "atomicSw" + std::to_string(s), eq, registry));
    }
    for (unsigned part = 0; part < ndps.size(); ++part) {
        AtomicEngineParams ap;
        ap.home_hint = part_hints[part];
        atomic_engines.push_back(std::make_unique<AtomicEngine>(
            "atomicNdp" + std::to_string(part), eq, registry, ap));
    }

    // --- Memory-management framework + layout ---
    std::vector<PoolDimm> inventory;
    for (unsigned d = 0; d < num_dimms; ++d) {
        PoolDimm dimm;
        dimm.node = dimm_nodes[d];
        dimm.kind =
            is_cxlg(d) ? DimmKind::Cxlg : DimmKind::Unmodified;
        dimm.geom = controllers[d]->device().geometry();
        inventory.push_back(dimm);
    }
    framework = std::make_unique<MemoryFramework>(inventory);

    policy_proto.placement_opt = p.opts.placement_mapping;
    // Replication rides on the pool's spare capacity; the DDR
    // baselines keep single copies (their design cannot lean on
    // unmodified-DIMM expansion, Section III).
    policy_proto.replicate_read_only =
        p.opts.placement_mapping && !p.ddr_fabric;
    policy_proto.coalesce_chips = std::max(1u, p.opts.coalesce_chips);
    policy_proto.cxlg_stripe_weight =
        std::max(1u, p.opts.cxlg_stripe_weight);
    policy_proto.reserved_dimms = p.rack_reserved_dimms;
    policy_proto.partitions = unsigned(ndps.size());
    policy_proto.partition_switch = partition_group;
    policy_proto.partition_primary = partition_primary;

    // Logical DRAM byte counters: the host/rack total plus one
    // single-writer twin per partition (each written only from its
    // partition's lane). Queries sum the family by substring.
    stat_dram_bytes = &registry.counter("system.dramBytesTotal");
    part_dram_bytes.clear();
    for (unsigned part = 0; part < ndps.size(); ++part) {
        part_dram_bytes.push_back(&registry.counter(
            "system.part" + std::to_string(part) +
            ".dramBytesTotal"));
    }
    part_tenant_dram_stats.assign(ndps.size(), {});

    // Machine-level time series (per-tenant series are registered
    // by setTenantLayout / the orchestrator as tenants arrive).
    if (obs::Sampler *sampler = obsSampler()) {
        // Probe registration happens at construction time, before
        // any parallel window can open — safe by phase ordering.
        // Every link byte counter is named "<link>.bytes"; the sum
        // over them is total fabric traffic.
        // beacon-lint: shared-state(Sampler.addCounterRate, direct-mutation)
        sampler->addCounterRate("fabric_gbps", registry, ".bytes",
                                1e-9);
        // Matches the host total and every per-partition twin.
        // beacon-lint: shared-state(Sampler.addCounterRate, direct-mutation)
        sampler->addCounterRate("dram_gbps", registry,
                                "dramBytesTotal", 1e-9);
        // peBusyTotalTicks advances by (busy PEs * ps); divided by
        // the interval and the PE count it is mean utilisation.
        const double total_pes =
            double(ndps.size()) * double(p.pes_per_module);
        // beacon-lint: shared-state(Sampler.addCounterRate, direct-mutation)
        sampler->addCounterRate("pe_util", registry,
                                "peBusyTotalTicks",
                                1e-12 / std::max(1.0, total_pes));
    }
}

NdpSystem::~NdpSystem() = default;

PoolFabric &
NdpSystem::poolFabric()
{
    BEACON_ASSERT(pool_fabric,
                  "rack integration needs the CXL pool fabric");
    return *pool_fabric;
}

NodeId
NdpSystem::ndpNode(unsigned partition) const
{
    return ndp_nodes.at(partition);
}

// ---------------------------------------------------------------
// Memory path
// ---------------------------------------------------------------

void
NdpSystem::localDram(unsigned dimm, const ResolvedAccess &piece,
                     bool is_write, std::function<void(Tick)> done,
                     std::uint32_t completion_hint,
                     std::uint64_t job)
{
    MemRequest req;
    req.coord = piece.coord;
    req.is_write = is_write;
    req.bytes = piece.bytes;
    req.bursts = std::max(1u, piece.bursts);
    req.job = job;
    req.on_complete = std::move(done);
    // Home the DRAM completion onto the lane owning the callback's
    // state: the issuing partition's lane for operand completions,
    // lane 0 for callbacks that re-enter the fabric. Legal at any
    // hint because the CAS-to-data-end gap >= the shard lookahead.
    req.completion_hint = completion_hint;
    controllers.at(dimm)->enqueue(std::move(req));
}

const MemoryLayout &
NdpSystem::layoutFor(TenantId tenant) const
{
    if (tenant != untenanted_id) {
        std::shared_lock<std::shared_mutex> guard(layout_mutex);
        auto it = tenant_layouts.find(tenant);
        BEACON_ASSERT(it != tenant_layouts.end(),
                      "access from unregistered tenant ", tenant);
        return *it->second;
    }
    BEACON_ASSERT(mem_layout,
                  "untenanted access without a workload layout");
    return *mem_layout;
}

Counter &
NdpSystem::tenantDramStat(TenantId tenant)
{
    auto it = tenant_dram_stats.find(tenant);
    if (it == tenant_dram_stats.end()) {
        Counter &counter = registry.counter(
            "system.tenant" + std::to_string(tenant.value()) +
                ".dramBytes");
        it = tenant_dram_stats.emplace(tenant, &counter).first;
    }
    return *it->second;
}

Counter &
NdpSystem::partTenantDramStat(unsigned partition, TenantId tenant)
{
    auto &stats = part_tenant_dram_stats.at(partition);
    auto it = stats.find(tenant);
    if (it == stats.end()) {
        Counter &counter = registry.counter(
            "system.part" + std::to_string(partition) + ".tenant" +
            std::to_string(tenant.value()) + ".dramBytes");
        it = stats.emplace(tenant, &counter).first;
    }
    return *it->second;
}

void
NdpSystem::setTenantLayout(TenantId tenant,
                           std::shared_ptr<MemoryLayout> layout)
{
    BEACON_ASSERT(tenant != untenanted_id,
                  "tenant 0 is the untenanted default");
    bool known = false;
    {
        std::unique_lock<std::shared_mutex> guard(layout_mutex);
        known = tenant_layouts.count(tenant) != 0;
        tenant_layouts[tenant] = std::move(layout);
    }
    if (obs::Sampler *sampler = obsSampler(); sampler && !known) {
        const std::string key = std::to_string(tenant.value());
        // Registered from ambient (non-window) context when a tenant
        // first appears; matches the host counter and every
        // per-partition twin.
        // beacon-lint: shared-state(Sampler.addCounterRate, direct-mutation)
        sampler->addCounterRate("tenant" + key + ".dram_gbps",
                                registry,
                                "tenant" + key + ".dramBytes",
                                1e-9);
    }
}

void
NdpSystem::dropTenantLayout(TenantId tenant)
{
    std::unique_lock<std::shared_mutex> guard(layout_mutex);
    tenant_layouts.erase(tenant);
}

void
NdpSystem::stageEgress(std::function<void()> send)
{
    if (egress_delay_ == 0) {
        send();
        return;
    }
    eq.scheduleIn(egress_delay_, std::move(send), EventCat::Ndp);
}

void
NdpSystem::issueAccess(unsigned partition, const AccessRequest &req,
                       std::function<void(Tick)> done)
{
    *part_dram_bytes.at(partition) += double(req.bytes.value());
    partTenantDramStat(partition, req.tenant) +=
        double(req.bytes.value());
    const std::vector<ResolvedAccess> pieces =
        layoutFor(req.tenant).resolve(req.data_class, req.offset,
                                      req.bytes, partition);
    BEACON_ASSERT(!pieces.empty(), "access resolved to nothing");
    if (pieces.size() == 1) {
        issuePiece(partition, req, pieces[0], std::move(done));
        return;
    }
    auto remaining = std::make_shared<std::size_t>(pieces.size());
    auto cb = std::make_shared<std::function<void(Tick)>>(
        std::move(done));
    for (const ResolvedAccess &piece : pieces) {
        issuePiece(partition, req, piece,
                   [remaining, cb](Tick t) {
                       if (--*remaining == 0)
                           (*cb)(t);
                   });
    }
}

void
NdpSystem::issuePiece(unsigned partition, const AccessRequest &req,
                      const ResolvedAccess &piece,
                      std::function<void(Tick)> done)
{
    if (req.is_atomic) {
        atomicAccess(partition, req, piece, std::move(done));
        return;
    }
    const NodeId src = ndpNode(partition);
    const NodeId dst = piece.node;
    const bool fine = piece.bytes < Bytes{64};
    // Operand completions come home to the issuing partition's lane;
    // intermediate DRAM steps whose callbacks re-enter the fabric
    // complete on the default lane, which owns the fabric's state.
    const std::uint32_t operand_hint = partitionHint(partition);

    if (src == dst) {
        // BEACON-D/MEDAL local access: straight to the on-DIMM MC.
        localDram(piece.dimm_index, piece, req.is_write,
                  std::move(done), operand_hint, req.job);
        return;
    }
    if (req.is_write) {
        // Command + data one way; complete at DRAM write completion.
        auto cb = std::make_shared<std::function<void(Tick)>>(
            std::move(done));
        stageEgress([this, src, dst, piece, fine, operand_hint,
                     job = req.job, cb] {
            fabric->sendCtx(
                src, dst, Bytes{16} + piece.bytes, fine,
                untenanted_id, job,
                [this, piece, operand_hint, job, cb](Tick) {
                    localDram(piece.dimm_index, piece, true,
                              [cb](Tick t) { (*cb)(t); },
                              operand_hint, job);
                });
        });
        return;
    }
    // Function shipping: execute the consuming step at the data and
    // return only its 8-byte result (possible when the target DIMM
    // itself hosts NDP logic, i.e., every DIMM of the DDR baselines
    // and the CXLG-DIMMs of BEACON-D).
    const bool target_has_ndp =
        std::find(p.cxlg_dimms.begin(), p.cxlg_dimms.end(),
                  piece.dimm_index) != p.cxlg_dimms.end();
    if (p.opts.function_shipping && target_has_ndp && fine &&
        workload) {
        auto cb = std::make_shared<std::function<void(Tick)>>(
            std::move(done));
        const Tick remote_compute =
            cyclesToTicks(engineStepCycles(workload->engine()),
                          pe_clock_ps);
        // The inner DRAM read completes on the default lane (hint 0):
        // its continuation re-enters the fabric for the result hop.
        stageEgress([this, src, dst, piece, remote_compute,
                     job = req.job, cb] {
            fabric->sendCtx(src, dst, Bytes{24}, true, untenanted_id,
                            job, [this, src, dst, piece,
                                  remote_compute, job, cb](Tick) {
                localDram(piece.dimm_index, piece, false,
                          [this, src, dst, remote_compute, job,
                           cb](Tick) {
                              eq.scheduleIn(remote_compute, [this, src,
                                                             dst, job,
                                                             cb] {
                                  fabric->sendCtx(dst, src, Bytes{8},
                                                  true, untenanted_id,
                                                  job, [cb](Tick t) {
                                                      (*cb)(t);
                                                  });
                              }, EventCat::Ndp);
                          }, 0, job);
            });
        });
        return;
    }
    // Remote read: request message, DRAM read, data response. The
    // DRAM read completes on the default lane (hint 0) because its
    // continuation sends the response through the fabric; the
    // response delivery re-homes onto the requester's lane.
    auto cb =
        std::make_shared<std::function<void(Tick)>>(std::move(done));
    stageEgress([this, src, dst, piece, fine, job = req.job, cb] {
        fabric->sendCtx(src, dst, Bytes{16}, true, untenanted_id, job,
                        [this, src, dst, piece, fine, job, cb](Tick) {
            localDram(piece.dimm_index, piece, false,
                      [this, src, dst, piece, fine, job, cb](Tick) {
                          fabric->sendCtx(dst, src,
                                          std::max(piece.bytes,
                                                   Bytes{1}),
                                          fine, untenanted_id, job,
                                          [cb](Tick t) { (*cb)(t); });
                      }, 0, job);
        });
    });
}

void
NdpSystem::atomicAccess(unsigned partition, const AccessRequest &req,
                        const ResolvedAccess &piece,
                        std::function<void(Tick)> done)
{
    const NodeId src = ndpNode(partition);
    const NodeId dimm_node = piece.node;
    // A unique key per logical word serialises racing updates.
    const std::uint64_t word_key =
        (std::uint64_t(unsigned(req.data_class)) << 56) ^ req.offset;

    auto cb =
        std::make_shared<std::function<void(Tick)>>(std::move(done));

    // Local RMW: the partition's own engine, no fabric involved —
    // the whole read/compute/write/ack chain stays on the
    // partition's lane.
    if (src == dimm_node) {
        const std::uint32_t hint = partitionHint(partition);
        AtomicEngine &engine =
            *atomic_engines.at(p.num_groups + partition);
        // Same lane by construction: this path only runs from the
        // partition's own NDP events, and the engine is homed with
        // the partition (checkLaneTouch verifies at runtime).
        // beacon-lint: lane(AtomicEngine.perform) beacon-lint: shared-state(AtomicEngine.perform, event-queue-mediated)
        engine.perform(
            word_key,
            [this, piece, hint,
             job = req.job](std::function<void(Tick)> k) {
                localDram(piece.dimm_index, piece, false,
                          std::move(k), hint, job);
            },
            [this, piece, hint,
             job = req.job](std::function<void(Tick)> k) {
                localDram(piece.dimm_index, piece, true,
                          std::move(k), hint, job);
            },
            [cb](Tick t) { (*cb)(t); });
        return;
    }

    if (p.ddr_fabric) {
        // Ship the op to the owning DIMM's NDP module, RMW locally
        // there, acknowledge back.
        fabric->send(src, dimm_node, Bytes{16}, true, [this, src,
                                                       dimm_node,
                                                piece, word_key,
                                                job = req.job,
                                                cb](Tick) {
            AtomicEngine &engine = *atomic_engines.at(
                p.num_groups + piece.dimm_index % ndps.size());
            // Runs inside the fabric delivery event at the owning
            // DIMM, not on the caller's stack; the engine's own
            // checkLaneTouch guards the residual risk.
            // beacon-lint: lane(AtomicEngine.perform) beacon-lint: shared-state(AtomicEngine.perform, event-queue-mediated) beacon-lint: shared-state(AtomicEngine.perform, event-queue-mediated)
            engine.perform(
                word_key,
                [this, piece, job](std::function<void(Tick)> k) {
                    localDram(piece.dimm_index, piece, false,
                              std::move(k), 0, job);
                },
                [this, piece, job](std::function<void(Tick)> k) {
                    localDram(piece.dimm_index, piece, true,
                              std::move(k), 0, job);
                },
                [this, src, dimm_node, cb](Tick) {
                    fabric->send(dimm_node, src, Bytes{8}, true,
                                 [cb](Tick t) { (*cb)(t); });
                });
        });
        return;
    }

    // CXL pool: the home switch's Atomic Engine performs the RMW
    // (Fig. 7); the switch's MC reaches the DIMM over its link.
    const unsigned home_sw = dimm_node.sw;
    const NodeId sw_node = NodeId::switchNode(home_sw);
    AtomicEngine &engine = *atomic_engines.at(home_sw);

    auto perform = [this, sw_node, piece, word_key, src, cb,
                    job = req.job, &engine]() {
        const bool co_located = src == sw_node;
        // Switch engines are lane-0 residents (default hint) and
        // this lambda fires from lane-0 fabric events; the engine's
        // checkLaneTouch guards the pairing at runtime.
        // beacon-lint: lane(AtomicEngine.perform) beacon-lint: shared-state(AtomicEngine.perform, event-queue-mediated)
        engine.perform(
            word_key,
            [this, sw_node, piece, job](std::function<void(Tick)> k) {
                auto kk =
                    std::make_shared<std::function<void(Tick)>>(
                        std::move(k));
                fabric->sendCtx(
                    sw_node, piece.node, Bytes{8}, true,
                    untenanted_id, job,
                    [this, piece, sw_node, job, kk](Tick) {
                        localDram(
                            piece.dimm_index, piece, false,
                            [this, piece, sw_node, job, kk](Tick) {
                                fabric->sendCtx(piece.node, sw_node,
                                                piece.bytes, true,
                                                untenanted_id, job,
                                                [kk](Tick t) {
                                                    (*kk)(t);
                                                });
                            }, 0, job);
                    });
            },
            [this, sw_node, piece, job](std::function<void(Tick)> k) {
                auto kk =
                    std::make_shared<std::function<void(Tick)>>(
                        std::move(k));
                fabric->sendCtx(sw_node, piece.node,
                                Bytes{8} + piece.bytes, true,
                                untenanted_id, job,
                                [this, piece, job, kk](Tick) {
                                    localDram(piece.dimm_index, piece,
                                              true, [kk](Tick t) {
                                                  (*kk)(t);
                                              }, 0, job);
                                });
            },
            [this, sw_node, src, co_located, cb](Tick t) {
                if (co_located) {
                    (*cb)(t);
                } else {
                    fabric->send(sw_node, src, Bytes{8}, true,
                                 [cb](Tick tt) { (*cb)(tt); });
                }
            });
    };

    if (src == sw_node) {
        perform();
    } else {
        stageEgress([this, src, sw_node, perform] {
            fabric->send(src, sw_node, Bytes{16}, true,
                         [perform](Tick) { perform(); });
        });
    }
}

// ---------------------------------------------------------------
// Task driver
// ---------------------------------------------------------------

void
NdpSystem::pump()
{
    while (next_task < target_tasks) {
        // Find a partition with room, round-robin.
        bool found = false;
        for (unsigned probe = 0; probe < ndps.size(); ++probe) {
            const unsigned part =
                (next_partition + probe) % unsigned(ndps.size());
            if (inflight[part] < p.max_inflight_tasks) {
                ++inflight[part];
                next_partition = (part + 1) % unsigned(ndps.size());
                TaskPtr task = workload->makeTask(next_task, ctx);
                ++next_task;
                // Input streaming: the task (read + metadata)
                // arrives from the host before it can start.
                auto shared_task =
                    std::make_shared<TaskPtr>(std::move(task));
                NdpModule *module = ndps[part].get();
                fabric->send(NodeId::host(), ndp_nodes[part],
                             Bytes{32}, false,
                             [module, shared_task](Tick) {
                                 // Runs inside the fabric delivery
                                 // callback, so the mutation is
                                 // already event-mediated.
                                 // beacon-lint: shared-state(NdpModule.submit, event-queue-mediated) beacon-lint: lane(NdpModule.submit)
                                 module->submit(
                                     std::move(*shared_task));
                             });
                found = true;
                break;
            }
        }
        if (!found)
            return;
    }
}

bool
NdpSystem::hasFreeSlot() const
{
    for (unsigned part = 0; part < ndps.size(); ++part) {
        if (inflight[part] < p.max_inflight_tasks)
            return true;
    }
    return false;
}

bool
NdpSystem::serveTask(TaskPtr task, NdpModule::TaskDoneFn on_done)
{
    for (unsigned probe = 0; probe < ndps.size(); ++probe) {
        const unsigned part =
            (next_partition + probe) % unsigned(ndps.size());
        if (inflight[part] >= p.max_inflight_tasks)
            continue;
        ++inflight[part];
        next_partition = (part + 1) % unsigned(ndps.size());
        const TenantId tenant = task->tenant();
        // Input streaming, as in pump(), but attributed to the
        // task's tenant.
        auto shared_task = std::make_shared<TaskPtr>(std::move(task));
        auto shared_done =
            std::make_shared<NdpModule::TaskDoneFn>(
                std::move(on_done));
        NdpModule *module = ndps[part].get();
        fabric->sendCtx(
            NodeId::host(), ndp_nodes[part], Bytes{32}, false,
            tenant, (*shared_task)->jobId(),
            [module, shared_task, shared_done](Tick) {
                // Event-mediated: executes from the fabric
                // delivery callback, not from the caller's stack.
                // beacon-lint: shared-state(NdpModule.submit, event-queue-mediated) beacon-lint: lane(NdpModule.submit)
                module->submit(std::move(*shared_task),
                               std::move(*shared_done));
            });
        return true;
    }
    return false;
}

void
NdpSystem::drainUntil(std::uint64_t target)
{
    ShardedEventQueue *sq = eq.sharded();
    while (completed_tasks < target) {
        // Parallel windows are legal only while the stop predicate
        // provably cannot flip inside one: every in-window completion
        // comes from a task in flight at window start (a task
        // dispatched inside the window needs its input streamed over
        // at least one link hop >= the lookahead), so as long as even
        // completing all of them leaves the target unmet, a whole
        // window is safe. The tail runs serial-canonical runOne().
        if (sq) {
            std::uint64_t in_flight = 0;
            for (unsigned n : inflight)
                in_flight += n;
            if (completed_tasks + in_flight < target &&
                sq->runWindow()) {
                BEACON_CHECK(completed_tasks < target,
                             "stop predicate flipped inside a "
                             "window: ", completed_tasks, "/", target);
                continue;
            }
        }
        if (!eq.runOne())
            BEACON_PANIC("event queue drained with ",
                         completed_tasks, "/", target,
                         " tasks complete");
    }
}

void
NdpSystem::mergeFilters()
{
    // Ring all-reduce of the partition-local filters: P-1 rounds of
    // filter-sized transfers between neighbouring partitions. The
    // filter size is scaled by the workload's sampling fraction so
    // subsampled runs keep the merge in proportion.
    const unsigned parts = unsigned(ndps.size());
    if (parts <= 1)
        return;
    std::uint64_t filter_bytes = 0;
    for (const StructureSpec &s : workload->structures()) {
        if (s.cls == DataClass::BloomLocal)
            filter_bytes = s.bytes.value();
    }
    if (filter_bytes == 0)
        return;
    filter_bytes = std::max<std::uint64_t>(
        1, std::uint64_t(double(filter_bytes) *
                         workload->sampleFraction()));

    unsigned pending = 0;
    bool done = false;
    auto on_done = [&pending, &done](Tick) {
        if (--pending == 0)
            done = true;
    };
    for (unsigned round = 1; round < parts; ++round) {
        for (unsigned part = 0; part < parts; ++part) {
            const unsigned next = (part + round) % parts;
            ++pending;
            fabric->send(ndp_nodes[part], ndp_nodes[next],
                         Bytes{filter_bytes}, false, on_done);
        }
    }
    while (!done) {
        if (!eq.runOne())
            BEACON_PANIC("filter merge stalled");
    }
}

RunResult
NdpSystem::run(std::size_t num_tasks)
{
    BEACON_ASSERT(workload,
                  "run() needs a bound workload; service-mode "
                  "systems are driven through serveTask()");
    const std::size_t total =
        num_tasks == 0 ? workload->numTasks()
                       : std::min(num_tasks, workload->numTasks());
    target_tasks = total;

    const bool multi_pass =
        workload->multiPassCapable() && !p.opts.kmc_single_pass;

    ctx.pass = 0;
    next_task = 0;
    completed_tasks = 0;
    pump();
    drainUntil(total);

    if (multi_pass) {
        mergeFilters();
        ctx.pass = 1;
        next_task = 0;
        completed_tasks = 0;
        pump();
        drainUntil(total);
    }

    const Tick end = eq.now();

    RunResult result = machineResult(end);
    result.workload = workload->name();
    result.tasks = total;
    result.tasks_per_second =
        result.seconds > 0 ? double(total) / result.seconds : 0;
    return result;
}

RunResult
NdpSystem::machineResult(Tick end)
{
    // End-of-run verification: the run must leave every checker's
    // shadow model balanced.
    if (p.checkers.any()) {
        for (const auto &ctrl : controllers)
            ctrl->finalizeCheck();
        if (pool_fabric)
            pool_fabric->finalizeCheck();
        for (const auto &ndp : ndps)
            ndp->finalizeCheck();
    }

    RunResult result;
    result.system = p.name;
    result.ticks = end;
    result.seconds = ticksToSeconds(end);

    // --- Energy ---
    for (const auto &ctrl : controllers) {
        result.energy.dram_pj +=
            computeDramEnergy(ctrl->device(), end, p.dram_energy)
                .totalPj();
        result.dram_reads += ctrl->readsCompleted();
        result.dram_writes += ctrl->writesCompleted();
    }
    if (!p.ideal_comm) {
        if (pool_fabric) {
            result.energy.comm_pj +=
                commEnergyPj(pool_fabric->dimmLinkBytes() +
                                 pool_fabric->hostLinkBytes(),
                             p.comm_energy.cxl_pj_per_bit);
            result.energy.comm_pj +=
                commEnergyPj(pool_fabric->switchBusBytes(),
                             p.comm_energy.bus_pj_per_bit);
        } else {
            result.energy.comm_pj += commEnergyPj(
                ddr_fabric->totalWireBytes(),
                p.comm_energy.ddr_pj_per_bit);
        }
    }
    Tick pe_busy = 0;
    for (const auto &ndp : ndps)
        pe_busy += ndp->peBusyTicks();
    result.energy.pe_pj = peEnergyPj(
        peOverheadFor(p.pe_architecture), pe_busy, end,
        p.pes_per_module * unsigned(ndps.size()));

    result.wire_bytes = fabric->totalWireBytes();
    result.host_round_trips =
        pool_fabric ? pool_fabric->hostRoundTrips() : 0;

    // --- Per-chip access distribution (Fig. 13) ---
    const bool have_cxlg = !p.cxlg_dimms.empty();
    std::vector<double> chips;
    for (unsigned d = 0; d < controllers.size(); ++d) {
        const bool custom =
            std::find(p.cxlg_dimms.begin(), p.cxlg_dimms.end(), d) !=
            p.cxlg_dimms.end();
        if (have_cxlg && !custom)
            continue;
        const auto &per_chip =
            controllers[d]->device().chipAccesses();
        if (chips.size() < per_chip.size())
            chips.resize(per_chip.size(), 0);
        for (std::size_t c = 0; c < per_chip.size(); ++c)
            chips[c] += double(per_chip[c]);
    }
    result.chip_accesses = chips;
    double mean = 0;
    for (double v : chips)
        mean += v;
    mean = chips.empty() ? 0 : mean / double(chips.size());
    if (mean > 0) {
        double acc = 0;
        for (double v : chips)
            acc += (v - mean) * (v - mean);
        result.chip_access_cov =
            std::sqrt(acc / double(chips.size())) / mean;
    }
    return result;
}

} // namespace beacon
