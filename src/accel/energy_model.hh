/**
 * @file
 * System-level energy model and Table II constants.
 *
 * Energy = DRAM (command-counting, src/dram/energy) + communication
 * (wire bytes x pJ/bit per medium, following CACTI-IO/Keckler-style
 * constants) + PE (synthesis numbers the paper reports in Table II).
 */

#ifndef BEACON_ACCEL_ENERGY_MODEL_HH
#define BEACON_ACCEL_ENERGY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace beacon
{

/** Interconnect energy constants (pJ per bit). */
struct CommEnergyParams
{
    double ddr_pj_per_bit = 15.0;   //!< DDR channel I/O
    double cxl_pj_per_bit = 6.0;    //!< PCIe5/CXL SerDes
    double bus_pj_per_bit = 1.0;    //!< switch-internal bus
};

/** Table II: per-PE synthesis results (28 nm). */
struct PeOverhead
{
    std::string architecture;
    double area_um2;
    double dynamic_power_mw;
    double leakage_power_uw;
};

/** The paper's Table II rows. */
std::vector<PeOverhead> peOverheadTable();

/** Row for a given architecture name ("MEDAL", "NEST", "BEACON"). */
const PeOverhead &peOverheadFor(const std::string &architecture);

/** Energy broken out by source. */
struct SystemEnergy
{
    Picojoules dram_pj;
    Picojoules comm_pj;
    Picojoules pe_pj;

    Picojoules totalPj() const { return dram_pj + comm_pj + pe_pj; }

    double
    commFraction() const
    {
        const double t = totalPj().value();
        return t > 0 ? comm_pj.value() / t : 0;
    }

    double
    peFraction() const
    {
        const double t = totalPj().value();
        return t > 0 ? pe_pj.value() / t : 0;
    }
};

/**
 * PE energy over a run: dynamic power while busy plus leakage for
 * the whole population over the elapsed time.
 */
Picojoules peEnergyPj(const PeOverhead &pe, Tick busy_ticks,
                      Tick elapsed, unsigned total_pes);

/** Communication energy for @p bytes over a medium. */
inline Picojoules
commEnergyPj(Bytes bytes, double pj_per_bit)
{
    return Picojoules{double(bytes.value()) * 8.0 * pj_per_bit};
}

} // namespace beacon

#endif // BEACON_ACCEL_ENERGY_MODEL_HH
