/**
 * @file
 * Application workloads: each builds the real genomics data
 * structures (FM-index, hash index, Bloom filters, reference) and
 * manufactures the Tasks whose memory accesses drive the simulated
 * accelerators.
 */

#ifndef BEACON_ACCEL_WORKLOAD_HH
#define BEACON_ACCEL_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "genomics/bloom.hh"
#include "genomics/dna.hh"
#include "genomics/fm_index.hh"
#include "genomics/hash_index.hh"
#include "memmgmt/layout.hh"
#include "ndp/task.hh"

namespace beacon
{

/** Per-run task-behaviour switches supplied by the system. */
struct WorkloadContext
{
    /** Single-pass k-mer counting (BEACON-S optimization). */
    bool kmc_single_pass = true;
    /** Pass index for multi-pass k-mer counting (0 or 1). */
    unsigned pass = 0;
};

/** Functional totals used by the CPU baseline model. */
struct WorkloadFootprint
{
    std::uint64_t tasks = 0;
    std::uint64_t steps = 0;
    std::uint64_t accesses = 0;
    Bytes access_bytes;
    Cycles compute_cycles;
};

/** An application workload bound to one dataset. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;
    virtual EngineKind engine() const = 0;

    /** Data structures the memory framework must place. */
    virtual std::vector<StructureSpec> structures() const = 0;

    /** Number of independent tasks (one per read / candidate). */
    virtual std::size_t numTasks() const = 0;

    /** Build task @p idx for a run with behaviour @p ctx. */
    virtual TaskPtr makeTask(std::size_t idx,
                             const WorkloadContext &ctx) const = 0;

    /** True when the workload supports multi-pass execution. */
    virtual bool multiPassCapable() const { return false; }

    /**
     * Fraction of the full dataset this workload simulates; constant
     * per-run costs (e.g., multi-pass filter merge) are scaled by it
     * so subsampled runs stay representative.
     */
    virtual double sampleFraction() const { return 1.0; }
};

/** Dry-run every task functionally and accumulate totals. */
WorkloadFootprint measureFootprint(const Workload &workload,
                                   const WorkloadContext &ctx);

/** FM-index based DNA seeding (BWA-MEM style backward search). */
class FmSeedingWorkload : public Workload
{
  public:
    explicit FmSeedingWorkload(const genomics::DatasetPreset &preset);

    const std::string &name() const override { return name_; }
    EngineKind engine() const override { return EngineKind::FmIndex; }
    std::vector<StructureSpec> structures() const override;
    std::size_t numTasks() const override { return reads.size(); }
    TaskPtr makeTask(std::size_t idx,
                     const WorkloadContext &ctx) const override;

    const genomics::FmIndex &index() const { return *fm; }

  private:
    std::string name_;
    genomics::DnaSequence genome;
    std::vector<genomics::DnaSequence> reads;
    std::unique_ptr<genomics::FmIndex> fm;
};

/** Hash-index based DNA seeding (SMALT style). */
class HashSeedingWorkload : public Workload
{
  public:
    explicit HashSeedingWorkload(const genomics::DatasetPreset &preset,
                                 unsigned k = 15);

    const std::string &name() const override { return name_; }
    EngineKind engine() const override
    {
        return EngineKind::HashIndex;
    }
    std::vector<StructureSpec> structures() const override;
    std::size_t numTasks() const override { return reads.size(); }
    TaskPtr makeTask(std::size_t idx,
                     const WorkloadContext &ctx) const override;

    const genomics::HashIndex &index() const { return *hidx; }

  private:
    std::string name_;
    genomics::DnaSequence genome;
    std::vector<genomics::DnaSequence> reads;
    std::unique_ptr<genomics::HashIndex> hidx;
};

/** k-mer counting with a counting Bloom filter (BFCounter style). */
class KmerCountingWorkload : public Workload
{
  public:
    /**
     * @param filter_counters counting-Bloom size; the default is
     *        proportioned to the sampled input (about 4 counters per
     *        distinct k-mer), keeping the multi-pass merge cost in
     *        the same ratio to the counting work as at full scale.
     */
    KmerCountingWorkload(const genomics::DatasetPreset &preset,
                         unsigned k = 21, unsigned num_hashes = 3,
                         std::size_t filter_counters = 1u << 16,
                         std::size_t max_reads = 256);

    const std::string &name() const override { return name_; }
    EngineKind engine() const override
    {
        return EngineKind::KmerCounting;
    }
    std::vector<StructureSpec> structures() const override;
    std::size_t numTasks() const override { return reads.size(); }
    TaskPtr makeTask(std::size_t idx,
                     const WorkloadContext &ctx) const override;
    bool multiPassCapable() const override { return true; }
    double sampleFraction() const override { return sample_fraction; }

    unsigned k() const { return k_; }
    unsigned numHashes() const { return num_hashes; }
    std::size_t filterCounters() const { return filter_counters; }

    /** Reference filter for correctness checks in tests. */
    genomics::CountingBloomFilter buildReferenceFilter() const;

  private:
    std::string name_;
    genomics::DnaSequence genome;
    std::vector<genomics::DnaSequence> reads;
    unsigned k_;
    unsigned num_hashes;
    std::size_t filter_counters;
    double sample_fraction = 1.0;
};

/** DNA pre-alignment filtering (Shouji style). */
class PrealignWorkload : public Workload
{
  public:
    explicit PrealignWorkload(const genomics::DatasetPreset &preset,
                              unsigned edit_threshold = 5,
                              unsigned candidates_per_read = 4);

    const std::string &name() const override { return name_; }
    EngineKind engine() const override
    {
        return EngineKind::Prealign;
    }
    std::vector<StructureSpec> structures() const override;
    std::size_t numTasks() const override { return candidates; }
    TaskPtr makeTask(std::size_t idx,
                     const WorkloadContext &ctx) const override;

  private:
    std::string name_;
    genomics::DnaSequence genome;
    std::vector<genomics::DnaSequence> reads;
    unsigned threshold;
    std::size_t candidates;
    unsigned cands_per_read;
};

} // namespace beacon

#endif // BEACON_ACCEL_WORKLOAD_HH
