#include "report.hh"

#include <ostream>
#include <sstream>

namespace beacon
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeRunResultJson(std::ostream &out, const RunResult &r,
                   unsigned indent)
{
    const std::string pad(indent, ' ');
    const std::string field(indent + 2, ' ');
    out << pad << "{\n";
    out << field << "\"system\": \"" << jsonEscape(r.system)
        << "\",\n";
    out << field << "\"workload\": \"" << jsonEscape(r.workload)
        << "\",\n";
    out << field << "\"ticks\": " << r.ticks << ",\n";
    out << field << "\"seconds\": " << r.seconds << ",\n";
    out << field << "\"tasks\": " << r.tasks << ",\n";
    out << field << "\"tasks_per_second\": " << r.tasks_per_second
        << ",\n";
    out << field << "\"energy_pj\": {\"dram\": " << r.energy.dram_pj
        << ", \"comm\": " << r.energy.comm_pj
        << ", \"pe\": " << r.energy.pe_pj
        << ", \"total\": " << r.energy.totalPj() << "},\n";
    out << field << "\"wire_bytes\": " << r.wire_bytes << ",\n";
    out << field << "\"host_round_trips\": " << r.host_round_trips
        << ",\n";
    out << field << "\"dram_reads\": " << r.dram_reads << ",\n";
    out << field << "\"dram_writes\": " << r.dram_writes << ",\n";
    out << field << "\"chip_access_cov\": " << r.chip_access_cov
        << ",\n";
    out << field << "\"chip_accesses\": [";
    for (std::size_t i = 0; i < r.chip_accesses.size(); ++i) {
        if (i)
            out << ", ";
        out << r.chip_accesses[i];
    }
    out << "]\n" << pad << "}";
}

void
writeRunResultsJson(std::ostream &out,
                    const std::vector<RunResult> &results)
{
    out << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        writeRunResultJson(out, results[i], 2);
        if (i + 1 < results.size())
            out << ",";
        out << "\n";
    }
    out << "]\n";
}

std::string
runResultCsvHeader()
{
    return "system,workload,seconds,tasks,tasks_per_second,"
           "energy_dram_pj,energy_comm_pj,energy_pe_pj,"
           "energy_total_pj,wire_bytes,host_round_trips,"
           "dram_reads,dram_writes,chip_access_cov";
}

void
writeRunResultCsv(std::ostream &out, const RunResult &r)
{
    // System/workload names never contain commas by construction.
    out << r.system << ',' << r.workload << ',' << r.seconds << ','
        << r.tasks << ',' << r.tasks_per_second << ','
        << r.energy.dram_pj << ',' << r.energy.comm_pj << ','
        << r.energy.pe_pj << ',' << r.energy.totalPj() << ','
        << r.wire_bytes << ',' << r.host_round_trips << ','
        << r.dram_reads << ',' << r.dram_writes << ','
        << r.chip_access_cov << '\n';
}

} // namespace beacon
