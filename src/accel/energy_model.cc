#include "energy_model.hh"

#include "common/logging.hh"

namespace beacon
{

std::vector<PeOverhead>
peOverheadTable()
{
    return {
        {"MEDAL", 8941.39, 10.57, 36.16},
        {"NEST", 16721.12, 8.12, 24.83},
        {"BEACON", 14090.23, 9.48, 18.97},
    };
}

const PeOverhead &
peOverheadFor(const std::string &architecture)
{
    static const std::vector<PeOverhead> table = peOverheadTable();
    for (const PeOverhead &row : table) {
        if (row.architecture == architecture)
            return row;
    }
    BEACON_FATAL("unknown architecture '", architecture, "'");
}

Picojoules
peEnergyPj(const PeOverhead &pe, Tick busy_ticks, Tick elapsed,
           unsigned total_pes)
{
    // mW x ps = 1e-3 pJ; uW x ps = 1e-6 pJ.
    const double dynamic =
        pe.dynamic_power_mw * double(busy_ticks) * 1e-3;
    const double leakage = pe.leakage_power_uw * double(elapsed) *
                           double(total_pes) * 1e-6;
    return Picojoules{dynamic + leakage};
}

} // namespace beacon
