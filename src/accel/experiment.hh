/**
 * @file
 * Experiment helpers shared by the benchmark harnesses: the
 * step-by-step optimization ladders of Figs. 12/14/15 and small
 * utilities for normalised reporting.
 */

#ifndef BEACON_ACCEL_EXPERIMENT_HH
#define BEACON_ACCEL_EXPERIMENT_HH

#include <string>
#include <vector>

#include "accel/cpu_baseline.hh"
#include "accel/system.hh"
#include "accel/workload.hh"

namespace beacon
{

/** One rung of an optimization ladder. */
struct LadderStep
{
    std::string label;
    SystemParams params;
};

/**
 * Cumulative BEACON-D ladder:
 *   CXL-vanilla -> +data packing -> +memory access optimization
 *   -> +placement & address mapping [-> +multi-chip coalescing].
 * @param with_coalescing include the final rung (FM-index only).
 */
std::vector<LadderStep> beaconDLadder(bool with_coalescing);

/**
 * Cumulative BEACON-S ladder:
 *   CXL-vanilla -> +data packing -> +memory access optimization
 *   -> +placement & address mapping [-> +single-pass k-mer
 *   counting].
 */
std::vector<LadderStep> beaconSLadder(bool with_single_pass);

/** Run @p params against @p workload with @p tasks tasks. */
RunResult runSystem(const SystemParams &params,
                    const Workload &workload, std::size_t tasks);

/** Format a speedup factor for the report tables. */
std::string formatX(double factor);

} // namespace beacon

#endif // BEACON_ACCEL_EXPERIMENT_HH
