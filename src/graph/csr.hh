/**
 * @file
 * Compressed-sparse-row graph substrate.
 *
 * Supports the paper's Section V claim that BEACON extends to other
 * memory-bound applications (graph processing) by replacing the PEs:
 * the GraphBfs extension workload traverses a real CSR graph and
 * replays its offset/edge accesses through the pool.
 */

#ifndef BEACON_GRAPH_CSR_HH
#define BEACON_GRAPH_CSR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace beacon::graph
{

/** Immutable CSR directed graph. */
class CsrGraph
{
  public:
    CsrGraph(std::vector<std::uint32_t> offsets,
             std::vector<std::uint32_t> edges);

    std::uint32_t numVertices() const
    {
        return std::uint32_t(offsets.size() - 1);
    }
    std::uint64_t numEdges() const { return edges.size(); }

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return offsets[v + 1] - offsets[v];
    }

    /** Neighbour list of @p v. */
    const std::uint32_t *
    neighbors(std::uint32_t v) const
    {
        return edges.data() + offsets[v];
    }

    /** Byte offset of v's slot in the offset array (8 B slots). */
    std::uint64_t
    offsetSlotBytes(std::uint32_t v) const
    {
        return std::uint64_t(v) * 8;
    }

    /** Byte offset / length of v's edge list (4 B per edge). */
    std::uint64_t
    edgeSlotBytes(std::uint32_t v) const
    {
        return std::uint64_t(offsets[v]) * 4;
    }

    std::uint64_t offsetArrayBytes() const
    {
        return std::uint64_t(offsets.size()) * 8;
    }
    std::uint64_t edgeArrayBytes() const
    {
        return std::uint64_t(edges.size()) * 4;
    }

    /** Reference BFS: distance per vertex (UINT32_MAX if unreached). */
    std::vector<std::uint32_t> bfs(std::uint32_t source) const;

  private:
    std::vector<std::uint32_t> offsets; //!< size numVertices + 1
    std::vector<std::uint32_t> edges;
};

/** Synthetic graph parameters (power-law-ish degree skew). */
struct GraphParams
{
    std::uint32_t num_vertices = 1 << 14;
    double avg_degree = 8.0;
    /** Fraction of edges attached preferentially (hub formation). */
    double hub_bias = 0.5;
    std::uint64_t seed = 33;
};

/** Generate a connected-ish synthetic graph. */
CsrGraph makeGraph(const GraphParams &params);

} // namespace beacon::graph

#endif // BEACON_GRAPH_CSR_HH
