#include "csr.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace beacon::graph
{

CsrGraph::CsrGraph(std::vector<std::uint32_t> offs,
                   std::vector<std::uint32_t> edgs)
    : offsets(std::move(offs)), edges(std::move(edgs))
{
    BEACON_ASSERT(!offsets.empty(), "offsets must have n+1 entries");
    BEACON_ASSERT(offsets.front() == 0 &&
                      offsets.back() == edges.size(),
                  "malformed CSR offsets");
    for (std::size_t i = 1; i < offsets.size(); ++i)
        BEACON_ASSERT(offsets[i - 1] <= offsets[i],
                      "offsets must be non-decreasing");
    for (std::uint32_t e : edges)
        BEACON_ASSERT(e < numVertices(), "edge endpoint out of range");
}

std::vector<std::uint32_t>
CsrGraph::bfs(std::uint32_t source) const
{
    std::vector<std::uint32_t> dist(numVertices(),
                                    std::uint32_t(-1));
    std::deque<std::uint32_t> frontier;
    dist[source] = 0;
    frontier.push_back(source);
    while (!frontier.empty()) {
        const std::uint32_t v = frontier.front();
        frontier.pop_front();
        const std::uint32_t deg = degree(v);
        const std::uint32_t *nbrs = neighbors(v);
        for (std::uint32_t i = 0; i < deg; ++i) {
            const std::uint32_t u = nbrs[i];
            if (dist[u] == std::uint32_t(-1)) {
                dist[u] = dist[v] + 1;
                frontier.push_back(u);
            }
        }
    }
    return dist;
}

CsrGraph
makeGraph(const GraphParams &p)
{
    BEACON_ASSERT(p.num_vertices >= 2, "graph too small");
    Rng rng(p.seed);
    const std::uint64_t target_edges = std::uint64_t(
        double(p.num_vertices) * std::max(1.0, p.avg_degree));

    std::vector<std::vector<std::uint32_t>> adjacency(
        p.num_vertices);
    // A ring backbone keeps the graph connected.
    for (std::uint32_t v = 0; v < p.num_vertices; ++v)
        adjacency[v].push_back((v + 1) % p.num_vertices);

    // Remaining edges: uniform or hub-biased endpoints.
    std::vector<std::uint32_t> hubs;
    for (unsigned i = 0; i < 32; ++i)
        hubs.push_back(std::uint32_t(rng.next(p.num_vertices)));
    for (std::uint64_t e = p.num_vertices; e < target_edges; ++e) {
        const std::uint32_t src =
            std::uint32_t(rng.next(p.num_vertices));
        std::uint32_t dst;
        if (rng.chance(p.hub_bias))
            dst = hubs[rng.next(hubs.size())];
        else
            dst = std::uint32_t(rng.next(p.num_vertices));
        adjacency[src].push_back(dst);
    }

    std::vector<std::uint32_t> offsets(p.num_vertices + 1, 0);
    for (std::uint32_t v = 0; v < p.num_vertices; ++v)
        offsets[v + 1] = offsets[v] +
                         std::uint32_t(adjacency[v].size());
    std::vector<std::uint32_t> edges;
    edges.reserve(offsets.back());
    for (std::uint32_t v = 0; v < p.num_vertices; ++v)
        edges.insert(edges.end(), adjacency[v].begin(),
                     adjacency[v].end());
    return CsrGraph(std::move(offsets), std::move(edges));
}

} // namespace beacon::graph
