#include "pool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/request_trace.hh"

namespace beacon
{

PoolFabric::PoolFabric(const std::string &name, EventQueue &eq,
                       StatRegistry &stats, const PoolParams &params)
    : SimObject(name, eq, stats),
      p(params),
      stat_messages(stat("messages")),
      stat_host_round_trips(stat("hostRoundTrips")),
      stat_useful_bytes(stat("usefulBytesTotal"))
{
    if (p.ideal) {
        p.dimm_link.ideal = true;
        p.host_link.ideal = true;
        p.switch_latency = 0;
        p.host_latency = 0;
    }
    if (p.checkers.cxl_link) {
        link_checker =
            std::make_unique<CxlLinkChecker>(name, p.checkers);
    }
    switches.resize(p.num_switches);
    for (unsigned s = 0; s < p.num_switches; ++s) {
        SwitchState &sw = switches[s];
        sw.bus = std::make_unique<BandwidthServer>(
            p.ideal ? -1.0 : p.switch_bus_gbps);
        sw.host_link = std::make_unique<CxlLink>(
            name + ".hostLink" + std::to_string(s), eq, stats,
            p.host_link);
        for (unsigned d = 0; d < p.dimms_per_switch; ++d) {
            sw.dimm_links.push_back(std::make_unique<CxlLink>(
                name + ".sw" + std::to_string(s) + ".dimmLink" +
                    std::to_string(d),
                eq, stats, p.dimm_link));
        }
        if (link_checker) {
            sw.host_link->attachChecker(*link_checker);
            for (auto &link : sw.dimm_links)
                link->attachChecker(*link_checker);
            bus_channels.push_back(link_checker->registerChannel(
                name + ".sw" + std::to_string(s) + ".bus"));
        }
    }
    registerNode(NodeId::host());
    for (unsigned s = 0; s < p.num_switches; ++s) {
        registerNode(NodeId::switchNode(s));
        for (unsigned d = 0; d < p.dimms_per_switch; ++d)
            registerNode(NodeId::dimmNode(s, d));
    }
}

void
PoolFabric::registerNode(NodeId node)
{
    const auto [it, inserted] = registered_nodes.insert(node.key());
    (void)it;
    BEACON_CHECK(inserted, "duplicate fabric registration of node ",
                 node.str());
}

void
PoolFabric::unregisterNode(NodeId node)
{
    BEACON_CHECK(registered_nodes.erase(node.key()) == 1,
                 "unregistering unknown fabric node ", node.str());
    node_homes.erase(node.key());
}

void
PoolFabric::setNodeHome(NodeId node, std::uint32_t hint)
{
    BEACON_CHECK(isRegistered(node),
                 "binding event-queue home of unregistered fabric "
                 "node ", node.str());
    node_homes[node.key()] = hint;
}

const CxlLink &
PoolFabric::dimmLink(unsigned sw, unsigned dimm) const
{
    return *switches.at(sw).dimm_links.at(dimm);
}

const CxlLink &
PoolFabric::hostLink(unsigned sw) const
{
    return *switches.at(sw).host_link;
}

Bytes
PoolFabric::dimmLinkBytes() const
{
    Bytes total;
    for (const SwitchState &sw : switches)
        for (const auto &link : sw.dimm_links)
            total += link->totalBytes();
    return total;
}

Bytes
PoolFabric::hostLinkBytes() const
{
    Bytes total;
    for (const SwitchState &sw : switches)
        total += sw.host_link->totalBytes();
    return total;
}

Bytes
PoolFabric::switchBusBytes() const
{
    Bytes total;
    for (const SwitchState &sw : switches)
        total += sw.bus->totalBytes();
    return total;
}

Bytes
PoolFabric::totalWireBytes() const
{
    return dimmLinkBytes() + hostLinkBytes() + switchBusBytes();
}

DataPacker &
PoolFabric::packerFor(NodeId src, NodeId dst)
{
    const std::uint64_t key =
        (std::uint64_t(src.key()) << 32) | dst.key();
    auto it = packers.find(key);
    if (it == packers.end()) {
        auto packer = std::make_unique<DataPacker>(
            eq, p.packer,
            [this, src, dst](Bytes wire,
                             std::vector<Deliver> batch) {
                routeWire(src, dst, wire, std::move(batch));
            });
        it = packers.emplace(key, std::move(packer)).first;
    }
    return *it->second;
}

Counter &
PoolFabric::tenantBytesStat(TenantId tenant)
{
    auto it = tenant_bytes_stats.find(tenant);
    if (it == tenant_bytes_stats.end()) {
        Counter &counter =
            stat("tenant" + std::to_string(tenant.value()) + ".usefulBytes");
        it = tenant_bytes_stats.emplace(tenant, &counter).first;
    }
    return *it->second;
}

void
PoolFabric::sendTagged(NodeId src, NodeId dst,
                       Bytes useful_bytes, bool fine_grained,
                       TenantId tenant, Deliver deliver)
{
    sendCtx(src, dst, useful_bytes, fine_grained, tenant, 0,
            std::move(deliver));
}

void
PoolFabric::sendCtx(NodeId src, NodeId dst, Bytes useful_bytes,
                    bool fine_grained, TenantId tenant,
                    std::uint64_t job, Deliver deliver)
{
    ++stat_messages;
    stat_useful_bytes += double(useful_bytes.value());
    tenantBytesStat(tenant) += double(useful_bytes.value());
    if (link_checker) {
        link_checker->onSubmit(curTick());
        // Wrap the delivery so the checker sees the matching exit.
        deliver = [this, inner = std::move(deliver)](Tick t) {
            link_checker->onDeliver(t);
            inner(t);
        };
    }
    if (BEACON_REQUEST_TRACE(eq) != nullptr) {
        // One FIFO entry per staged payload, popped by routeWire()
        // per flushed Deliver — alignment holds because EVERY submit
        // funnels through here while the trace is attached.
        const std::uint64_t key =
            (std::uint64_t(src.key()) << 32) | dst.key();
        pending_jobs[key].push_back(job);
    }
    packerFor(src, dst).submit(useful_bytes, fine_grained,
                               std::move(deliver));
}

void
PoolFabric::hopBus(unsigned sw, Bytes bytes,
                   std::function<void()> next)
{
    const Tick depart = curTick();
    const Tick done = switches[sw].bus->accept(depart, bytes);
    if (link_checker) {
        link_checker->onTransfer(bus_channels[sw], depart, done,
                                 done + p.switch_latency, bytes,
                                 switches[sw].bus->rateGBps(),
                                 switches[sw].bus->ideal());
    }
    eq.schedule(done + p.switch_latency,
                [fn = std::move(next)] { fn(); }, EventCat::Cxl);
}

void
PoolFabric::finalizeCheck() const
{
    // A drained event queue must leave no payload staged in any Data
    // Packer: the flush timeout is a scheduled event, so a stranded
    // payload means the timeout was lost (or the run ended before
    // the queue drained) and its delivery callback never fired.
    for (const auto &[key, packer] : packers) {
        BEACON_ASSERT(packer->pendingCount() == 0,
                      "Data Packer stranded ", packer->pendingCount(),
                      " staged payload(s) at end of run");
    }
    if (!link_checker)
        return;
    link_checker->finalize();
    for (unsigned s = 0; s < switches.size(); ++s) {
        const SwitchState &sw = switches[s];
        sw.host_link->checkConservation();
        for (const auto &link : sw.dimm_links)
            link->checkConservation();
        if (!sw.bus->ideal()) {
            link_checker->checkBusyTicks(bus_channels[s],
                                         sw.bus->busyTicks());
        }
    }
}

void
PoolFabric::hopLink(CxlLink &link, LinkDir dir, Bytes bytes,
                    std::function<void()> next,
                    std::uint32_t arrival_home)
{
    link.send(dir, bytes, [fn = std::move(next)](Tick) { fn(); },
              arrival_home);
}

void
PoolFabric::routeWire(NodeId src, NodeId dst, Bytes wire,
                      std::vector<Deliver> batch)
{
    // Claim this wire unit's request contexts: one FIFO entry per
    // batched payload (see pending_jobs). Unique nonzero ids get a
    // component span per hop below; popping happens even on the
    // loopback path so the FIFO stays aligned.
    std::vector<std::uint64_t> jobs;
    if (BEACON_REQUEST_TRACE(eq) != nullptr) {
        const std::uint64_t key =
            (std::uint64_t(src.key()) << 32) | dst.key();
        auto &fifo = pending_jobs[key];
        for (std::size_t i = 0; i < batch.size() && !fifo.empty();
             ++i) {
            const std::uint64_t job = fifo.front();
            fifo.pop_front();
            if (job != 0 &&
                std::find(jobs.begin(), jobs.end(), job) ==
                    jobs.end()) {
                jobs.push_back(job);
            }
        }
    }

    auto deliver_all = [this, batch = std::move(batch)]() {
        const Tick t = curTick();
        for (const Deliver &d : batch)
            d(t);
    };

    if (src == dst) {
        // Loopback delivery still re-homes onto the destination's
        // shard so the Deliver callbacks touch only lane-owned state.
        eq.scheduleIn(0, deliver_all, EventCat::Cxl, homeOf(dst));
        return;
    }

    const bool src_is_host = src.isHost();
    const bool dst_is_host = dst.isHost();
    const unsigned ssw = src_is_host ? 0 : src.sw;
    const unsigned dsw = dst_is_host ? 0 : dst.sw;
    const bool cross_fabric =
        src_is_host || dst_is_host || ssw != dsw;
    // The host is involved whenever the message leaves its switch, or
    // (host-bias mode) whenever it targets pooled device memory and
    // the host must resolve coherence (Fig. 9 a/c).
    const bool needs_host_hop = !src_is_host && !dst_is_host &&
                                (!p.device_bias || ssw != dsw);
    const bool full_coherence = needs_host_hop && !p.device_bias;

    // Build the ordered hop plan. Each entry reserves one resource.
    struct Hop
    {
        enum class Kind { Link, Bus, Delay } kind;
        CxlLink *link = nullptr;
        LinkDir dir = LinkDir::Downstream;
        unsigned sw = 0;
        Tick delay = 0;
        /** Arrival home of the hop's completion event (final hop
         *  towards a DIMM re-homes delivery onto its shard). */
        std::uint32_t home = 0;
    };
    std::vector<Hop> plan;

    if (src.isDimm()) {
        plan.push_back({Hop::Kind::Link,
                        switches[ssw].dimm_links[src.dimm].get(),
                        LinkDir::Upstream, 0, 0});
    }
    if (!src_is_host)
        plan.push_back({Hop::Kind::Bus, nullptr, LinkDir::Upstream,
                        ssw, 0});
    if (cross_fabric || needs_host_hop) {
        if (!src_is_host) {
            plan.push_back({Hop::Kind::Link,
                            switches[ssw].host_link.get(),
                            LinkDir::Upstream, 0, 0});
        }
        // Host processing: full coherence resolution latency when the
        // host owns the access, pure forwarding latency otherwise.
        plan.push_back({Hop::Kind::Delay, nullptr, LinkDir::Upstream,
                        0,
                        full_coherence ? p.host_latency
                                       : p.host_latency / 4});
        if (full_coherence) {
            ++host_round_trips;
            ++stat_host_round_trips;
        }
        if (!dst_is_host) {
            plan.push_back({Hop::Kind::Link,
                            switches[dsw].host_link.get(),
                            LinkDir::Downstream, 0, 0});
            plan.push_back({Hop::Kind::Bus, nullptr,
                            LinkDir::Downstream, dsw, 0});
        }
    }
    if (dst.isDimm()) {
        // Final hop: the link's propagation latency (>= the sharded
        // queue's lookahead) covers the cross-shard re-homing.
        plan.push_back({Hop::Kind::Link,
                        switches[dsw].dimm_links[dst.dimm].get(),
                        LinkDir::Downstream, 0, 0, homeOf(dst)});
    }

    // Execute the plan hop by hop. The stored function must not hold
    // a strong reference to itself (that cycle would leak the whole
    // state machine); instead each pending continuation owns the
    // strong reference, so the machine lives exactly as long as a
    // hop is in flight.
    auto plan_ptr = std::make_shared<std::vector<Hop>>(std::move(plan));
    auto step = std::make_shared<std::function<void(std::size_t)>>();
    std::weak_ptr<std::function<void(std::size_t)>> weak_step = step;
    *step = [this, plan_ptr, wire, weak_step, jobs,
             done = std::move(deliver_all)](std::size_t i) {
        if (i >= plan_ptr->size()) {
            done();
            return;
        }
        const Hop &hop = (*plan_ptr)[i];
        std::function<void()> next = [self = weak_step.lock(), i]() {
            (*self)(i + 1);
        };
        if (!jobs.empty()) {
            // Request-scoped attribution: the hop's full residency
            // (queueing + serialisation + propagation) becomes a
            // Link or Switch component span for every riding job.
            // recordSpan stages per lane, so a final hop completing
            // on the destination DIMM's shard is still applied in
            // canonical order.
            const Tick hop_start = curTick();
            const obs::SpanKind kind = hop.kind == Hop::Kind::Link
                                           ? obs::SpanKind::Link
                                           : obs::SpanKind::Switch;
            next = [this, jobs, hop_start, kind,
                    self = weak_step.lock(), i]() {
                if (obs::RequestTrace *rt = BEACON_REQUEST_TRACE(eq)) {
                    for (const std::uint64_t job : jobs) {
                        rt->recordSpan(job, kind, hop_start,
                                       curTick());
                    }
                }
                (*self)(i + 1);
            };
        }
        switch (hop.kind) {
          case Hop::Kind::Link:
            hopLink(*hop.link, hop.dir, wire, std::move(next),
                    hop.home);
            break;
          case Hop::Kind::Bus:
            hopBus(hop.sw, wire, std::move(next));
            break;
          case Hop::Kind::Delay:
            eq.scheduleIn(hop.delay, std::move(next), EventCat::Cxl);
            break;
        }
    };
    (*step)(0);
}

} // namespace beacon
