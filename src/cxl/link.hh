/**
 * @file
 * Full-duplex point-to-point link (CXL lane bundle or DDR channel).
 */

#ifndef BEACON_CXL_LINK_HH
#define BEACON_CXL_LINK_HH

#include <cstdint>
#include <functional>
#include <string>

#include "check/link_checker.hh"
#include "cxl/bandwidth_server.hh"
#include "obs/trace.hh"
#include "sim/sim_object.hh"

namespace beacon
{

/** Direction over a full-duplex link. */
enum class LinkDir
{
    Downstream, //!< towards the device / DIMM
    Upstream,   //!< towards the host / switch root
};

/** Link configuration. */
struct LinkParams
{
    double gb_per_s = 32.0;  //!< per-direction bandwidth
    Tick latency = 25000;    //!< propagation + PHY latency (25 ns)
    /** Idealized communication: infinite bandwidth, zero latency. */
    bool ideal = false;
};

/**
 * A full-duplex link with independent per-direction occupancy.
 *
 * send() reserves the direction's bandwidth and invokes the callback
 * at arrival time (serialisation + propagation latency).
 */
class CxlLink : public SimObject
{
  public:
    CxlLink(const std::string &name, EventQueue &eq,
            StatRegistry &stats, const LinkParams &params)
        : SimObject(name, eq, stats),
          p(params),
          down(params.ideal ? -1.0 : params.gb_per_s),
          up(params.ideal ? -1.0 : params.gb_per_s),
          stat_bytes(stat("bytes")),
          stat_transfers(stat("transfers"))
    {
        if (obs::TraceSink *sink = BEACON_TRACE_SINK(eq)) {
            trace = sink;
            trace_down = sink->track(name + ".down");
            trace_up = sink->track(name + ".up");
        }
    }

    /**
     * Transfer @p bytes in direction @p dir; @p on_arrival fires when
     * the last byte arrives at the far end. @p arrival_home names the
     * component shard of the receiving endpoint (the arrival event's
     * home hint, see EventQueue::schedule): the link's own state is
     * mutated here at call time, only the callback is re-homed.
     */
    void
    send(LinkDir dir, Bytes bytes,
         std::function<void(Tick)> on_arrival,
         std::uint32_t arrival_home = 0)
    {
        BandwidthServer &server =
            dir == LinkDir::Downstream ? down : up;
        const Tick depart = curTick();
        const Tick serialized = server.accept(depart, bytes);
        const Tick arrive = serialized + (p.ideal ? 0 : p.latency);
        if (checker) {
            checker->onTransfer(dir == LinkDir::Downstream
                                    ? checker_chan_down
                                    : checker_chan_up,
                                depart, serialized, arrive, bytes,
                                server.rateGBps(), server.ideal());
        }
        stat_bytes += double(bytes.value());
        ++stat_transfers;
        if (trace) {
            // Wire-occupancy span: the window the flit serialises
            // over the lane bundle (zero length on ideal links).
            const Tick busy_start =
                server.ideal()
                    ? serialized
                    : serialized -
                          transferTime(bytes, server.rateGBps());
            trace->completeWithId(dir == LinkDir::Downstream
                                      ? trace_down
                                      : trace_up,
                                  "flit", busy_start, serialized,
                                  bytes.value());
        }
        eq.schedule(arrive,
                    [cb = std::move(on_arrival), arrive] { cb(arrive); },
                    EventCat::Cxl, arrival_home);
    }

    /**
     * Attach the verification layer: both directions register as
     * shadow channels and every transfer is cross-checked.
     */
    void
    attachChecker(CxlLinkChecker &link_checker)
    {
        checker = &link_checker;
        checker_chan_down = link_checker.registerChannel(name() + ".down");
        checker_chan_up = link_checker.registerChannel(name() + ".up");
    }

    /** Re-validate cumulative per-direction busy time (end of run). */
    void
    checkConservation() const
    {
        if (!checker || p.ideal)
            return;
        checker->checkBusyTicks(checker_chan_down, down.busyTicks());
        checker->checkBusyTicks(checker_chan_up, up.busyTicks());
    }

    /** Earliest tick a new transfer in @p dir would finish arriving. */
    Tick
    nextArrival(LinkDir dir, Bytes bytes) const
    {
        const BandwidthServer &server =
            dir == LinkDir::Downstream ? down : up;
        if (server.ideal())
            return curTick();
        const Tick start = std::max(curTick(), server.busyUntil());
        return start + transferTime(bytes, server.rateGBps()) +
               p.latency;
    }

    const LinkParams &params() const { return p; }
    const BandwidthServer &downstream() const { return down; }
    const BandwidthServer &upstream() const { return up; }

    /** Total bytes moved in both directions. */
    Bytes
    totalBytes() const
    {
        return down.totalBytes() + up.totalBytes();
    }

  private:
    LinkParams p;
    BandwidthServer down;
    BandwidthServer up;
    CxlLinkChecker *checker = nullptr;
    unsigned checker_chan_down = 0;
    unsigned checker_chan_up = 0;
    obs::TraceSink *trace = nullptr;
    obs::TrackId trace_down = 0;
    obs::TrackId trace_up = 0;
    Counter &stat_bytes;
    Counter &stat_transfers;
};

} // namespace beacon

#endif // BEACON_CXL_LINK_HH
