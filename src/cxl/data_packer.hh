/**
 * @file
 * Data Packer model (Section IV-B of the paper).
 *
 * Genome-analysis kernels issue fine-grained accesses (32 B seeding
 * fetches, single-counter Bloom updates) while CXL moves data in 64 B
 * flits. The Data Packer batches fine-grained payloads heading to the
 * same destination into shared flits: wire traffic shrinks from one
 * flit per payload to ceil(sum(payload + header) / flit).
 *
 * The packer flushes when a flit fills or when a timeout expires
 * after the first pending payload, so packing trades a bounded
 * staging delay for bandwidth.
 */

#ifndef BEACON_CXL_DATA_PACKER_HH
#define BEACON_CXL_DATA_PACKER_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/intmath.hh"
#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace beacon
{

/** Data Packer tunables. */
struct PackerParams
{
    unsigned flit_bytes = 64;
    unsigned header_bytes = 4;   //!< routing tag per packed payload
    Tick flush_timeout = 15000;  //!< 15 ns staging bound
    bool enabled = true;
};

/**
 * Batches fine-grained payloads into flits.
 *
 * The packer is transport-agnostic: when a batch is ready it hands
 * (wire_bytes, delivery callbacks) to the flush function supplied by
 * its owner, which routes the packed unit and invokes every delivery
 * callback when it arrives.
 */
class DataPacker
{
  public:
    using Deliver = std::function<void(Tick)>;
    using FlushFn =
        std::function<void(Bytes wire_bytes,
                           std::vector<Deliver> batch)>;

    DataPacker(EventQueue &eq, const PackerParams &params,
               FlushFn flush_fn)
        : eq(eq), p(params), flush(std::move(flush_fn))
    {}

    /**
     * Submit one payload of @p useful_bytes. Non-fine-grained
     * payloads, or any payload when packing is disabled, are flushed
     * immediately at full-flit granularity.
     */
    void
    submit(Bytes useful_bytes, bool fine_grained,
           Deliver deliver)
    {
        const Bytes framed = useful_bytes + Bytes{p.header_bytes};
        if (!p.enabled || !fine_grained) {
            std::vector<Deliver> batch;
            batch.push_back(std::move(deliver));
            flush(Bytes{roundUp<std::uint64_t>(framed.value(),
                                               p.flit_bytes)},
                  std::move(batch));
            ++unpacked_messages;
            return;
        }
        pending.push_back(std::move(deliver));
        pending_bytes += framed;
        ++packed_messages;
        if (pending_bytes >= Bytes{p.flit_bytes}) {
            flushNow();
        } else if (!timeout_armed) {
            timeout_armed = true;
            timeout_ev = eq.scheduleIn(
                p.flush_timeout,
                [this] {
                    timeout_armed = false;
                    if (!pending.empty())
                        flushNow();
                },
                EventCat::Cxl);
        }
    }

    /** Payloads currently staged. */
    std::size_t pendingCount() const { return pending.size(); }

    std::uint64_t packedMessages() const { return packed_messages; }
    std::uint64_t unpackedMessages() const { return unpacked_messages; }
    std::uint64_t flitsFlushed() const { return flits_flushed; }

  private:
    void
    flushNow()
    {
        if (timeout_armed) {
            eq.cancel(timeout_ev);
            timeout_armed = false;
        }
        const Bytes wire = Bytes{
            roundUp<std::uint64_t>(pending_bytes.value(), p.flit_bytes)};
        flits_flushed += wire.value() / p.flit_bytes;
        flush(wire, std::move(pending));
        pending.clear();
        pending_bytes = Bytes{};
    }

    EventQueue &eq;
    PackerParams p;
    FlushFn flush;

    std::vector<Deliver> pending;
    Bytes pending_bytes;
    bool timeout_armed = false;
    EventId timeout_ev = 0;

    std::uint64_t packed_messages = 0;
    std::uint64_t unpacked_messages = 0;
    std::uint64_t flits_flushed = 0;
};

} // namespace beacon

#endif // BEACON_CXL_DATA_PACKER_HH
