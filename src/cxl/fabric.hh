/**
 * @file
 * Abstract communication fabric interface.
 *
 * Both the CXL pool fabric (PoolFabric) and the DDR-channel fabric
 * used by the MEDAL/NEST baselines (DdrFabric) implement this
 * interface, so the accelerator systems are fabric-agnostic.
 */

#ifndef BEACON_CXL_FABRIC_HH
#define BEACON_CXL_FABRIC_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "common/units.hh"
#include "cxl/node.hh"

namespace beacon
{

/** Message-passing interface of a fabric. */
class Fabric
{
  public:
    using Deliver = std::function<void(Tick)>;

    virtual ~Fabric() = default;

    /**
     * Move @p useful_bytes from @p src to @p dst; @p deliver fires at
     * full arrival. @p fine_grained marks payloads eligible for data
     * packing (where the fabric supports it). Traffic submitted this
     * way is accounted to tenant 0 (untenanted).
     */
    void
    send(NodeId src, NodeId dst, Bytes useful_bytes,
         bool fine_grained, Deliver deliver)
    {
        sendTagged(src, dst, useful_bytes, fine_grained,
                   untenanted_id, std::move(deliver));
    }

    /**
     * send() with per-tenant attribution: the fabric accounts
     * @p useful_bytes to @p tenant at the injection point, so
     * multi-tenant runs can split link occupancy (and with it
     * communication energy) by tenant. Timing is identical to an
     * untagged send.
     */
    virtual void sendTagged(NodeId src, NodeId dst,
                            Bytes useful_bytes,
                            bool fine_grained, TenantId tenant,
                            Deliver deliver) = 0;

    /**
     * sendTagged() carrying a request context: @p job is the
     * orchestrator job this transfer serves (obs::RequestContext;
     * 0 = none). Fabrics that support request tracing record per-hop
     * Link/Switch component spans for the job; the default forwards
     * to sendTagged() and drops the id. Timing and accounting are
     * identical to sendTagged() in all cases.
     */
    virtual void
    sendCtx(NodeId src, NodeId dst, Bytes useful_bytes,
            bool fine_grained, TenantId tenant, std::uint64_t job,
            Deliver deliver)
    {
        (void)job;
        sendTagged(src, dst, useful_bytes, fine_grained, tenant,
                   std::move(deliver));
    }

    /** Total wire bytes moved (for communication energy). */
    virtual Bytes totalWireBytes() const = 0;
};

} // namespace beacon

#endif // BEACON_CXL_FABRIC_HH
