/**
 * @file
 * Node addressing within the CXL memory pool.
 */

#ifndef BEACON_CXL_NODE_HH
#define BEACON_CXL_NODE_HH

#include <cstdint>
#include <functional>
#include <string>

namespace beacon
{

/**
 * Identifies an endpoint in the pool: the host, one CXL-Switch, or
 * one DIMM (addressed as switch-local index).
 */
struct NodeId
{
    enum class Kind : std::uint8_t { Host, Switch, Dimm };

    Kind kind = Kind::Host;
    std::uint16_t sw = 0;    //!< switch index (Switch and Dimm kinds)
    std::uint16_t dimm = 0;  //!< DIMM index within the switch

    static NodeId host() { return NodeId{Kind::Host, 0, 0}; }

    static NodeId
    switchNode(unsigned s)
    {
        return NodeId{Kind::Switch, std::uint16_t(s), 0};
    }

    static NodeId
    dimmNode(unsigned s, unsigned d)
    {
        return NodeId{Kind::Dimm, std::uint16_t(s), std::uint16_t(d)};
    }

    bool
    operator==(const NodeId &o) const
    {
        return kind == o.kind && sw == o.sw && dimm == o.dimm;
    }

    bool isHost() const { return kind == Kind::Host; }
    bool isSwitch() const { return kind == Kind::Switch; }
    bool isDimm() const { return kind == Kind::Dimm; }

    /** Compact key usable in hash maps. */
    std::uint32_t
    key() const
    {
        return (std::uint32_t(kind) << 24) | (std::uint32_t(sw) << 12) |
               dimm;
    }

    std::string
    str() const
    {
        switch (kind) {
          case Kind::Host:
            return "host";
          case Kind::Switch:
            return "switch" + std::to_string(sw);
          case Kind::Dimm:
            return "dimm" + std::to_string(sw) + "." +
                   std::to_string(dimm);
        }
        return "?";
    }
};

} // namespace beacon

#endif // BEACON_CXL_NODE_HH
