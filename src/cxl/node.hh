/**
 * @file
 * Node addressing within the CXL memory pool.
 */

#ifndef BEACON_CXL_NODE_HH
#define BEACON_CXL_NODE_HH

#include <cstdint>
#include <functional>
#include <string>

namespace beacon
{

/**
 * Identifies an endpoint in the pool: a host, one CXL-Switch, or
 * one DIMM (addressed as switch-local index).
 *
 * Rack-scale machines (src/rack) attach several hosts to one pool;
 * host h reuses the `sw` field as its host index. Every host enters
 * the pool fabric at the same root port, so the fabric routes all
 * Host-kind nodes identically — the index only distinguishes their
 * packers, homes, and statistics.
 */
struct NodeId
{
    enum class Kind : std::uint8_t { Host, Switch, Dimm };

    Kind kind = Kind::Host;
    std::uint16_t sw = 0;    //!< switch index (Switch and Dimm kinds)
    std::uint16_t dimm = 0;  //!< DIMM index within the switch

    static NodeId host() { return NodeId{Kind::Host, 0, 0}; }

    /** Host @p h of a multi-host rack (host 0 == host()). */
    static NodeId
    hostNode(unsigned h)
    {
        return NodeId{Kind::Host, std::uint16_t(h), 0};
    }

    static NodeId
    switchNode(unsigned s)
    {
        return NodeId{Kind::Switch, std::uint16_t(s), 0};
    }

    static NodeId
    dimmNode(unsigned s, unsigned d)
    {
        return NodeId{Kind::Dimm, std::uint16_t(s), std::uint16_t(d)};
    }

    bool
    operator==(const NodeId &o) const
    {
        return kind == o.kind && sw == o.sw && dimm == o.dimm;
    }

    bool isHost() const { return kind == Kind::Host; }
    bool isSwitch() const { return kind == Kind::Switch; }
    bool isDimm() const { return kind == Kind::Dimm; }

    /** Compact key usable in hash maps. */
    std::uint32_t
    key() const
    {
        return (std::uint32_t(kind) << 24) | (std::uint32_t(sw) << 12) |
               dimm;
    }

    std::string
    str() const
    {
        switch (kind) {
          case Kind::Host:
            // Host 0 keeps the historical bare name so single-host
            // stat keys and goldens are unchanged.
            return sw == 0 ? "host" : "host" + std::to_string(sw);
          case Kind::Switch:
            return "switch" + std::to_string(sw);
          case Kind::Dimm:
            return "dimm" + std::to_string(sw) + "." +
                   std::to_string(dimm);
        }
        return "?";
    }
};

} // namespace beacon

#endif // BEACON_CXL_NODE_HH
