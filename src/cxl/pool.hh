/**
 * @file
 * The CXL memory-pool fabric.
 *
 * Models the communication substrate of Fig. 4: the host connects to
 * CXL-Switches over x16 links; each switch connects to its DIMMs over
 * x8 links and contains a Switch-Bus (managed by the Bus Controller)
 * for in-switch routing between ports and the Switch-Logic.
 *
 * Two coherence routings are supported (Fig. 9):
 *  - host bias (naive): every access to an unmodified CXL-DIMM makes
 *    a round trip through the host for coherence resolution;
 *  - device bias (the paper's "memory access optimization"): the
 *    switch routes directly between its ports.
 *
 * Data Packers sit at every injection endpoint (CXL-Interface of a
 * CXLG-DIMM, Switch-Logic, host interface) and batch fine-grained
 * payloads per destination before the transfer.
 */

#ifndef BEACON_CXL_POOL_HH
#define BEACON_CXL_POOL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "check/checker_config.hh"
#include "check/link_checker.hh"
#include "cxl/bandwidth_server.hh"
#include "cxl/data_packer.hh"
#include "cxl/fabric.hh"
#include "cxl/link.hh"
#include "cxl/node.hh"
#include "sim/sim_object.hh"

namespace beacon
{

/** Topology and policy knobs for the pool fabric. */
struct PoolParams
{
    unsigned num_switches = 2;
    unsigned dimms_per_switch = 4;

    LinkParams dimm_link{32.0, 25000, false};  //!< x8 PCIe5 per DIMM
    LinkParams host_link{64.0, 30000, false};  //!< x16 PCIe5 per switch

    double switch_bus_gbps = 256.0;  //!< Switch-Bus aggregate rate
    Tick switch_latency = 15000;     //!< in-switch routing, 15 ns
    Tick host_latency = 80000;       //!< host coherence engine, 80 ns

    /** Memory access optimization (Fig. 9 b/d) when true. */
    bool device_bias = false;

    PackerParams packer;

    /** Idealized communication: infinite bandwidth, zero latency. */
    bool ideal = false;

    /** Verification toggles; cxl_link arms the link checker. */
    CheckerConfig checkers;
};

/**
 * The pool fabric: owns every link, switch bus, and packer, and
 * routes messages between endpoints.
 */
class PoolFabric : public SimObject, public Fabric
{
  public:
    using Deliver = Fabric::Deliver;

    PoolFabric(const std::string &name, EventQueue &eq,
               StatRegistry &stats, const PoolParams &params);

    const PoolParams &params() const { return p; }

    /** Total number of DIMMs in the pool. */
    unsigned
    numDimms() const
    {
        return p.num_switches * p.dimms_per_switch;
    }

    /**
     * Send @p useful_bytes from @p src to @p dst, accounted to
     * @p tenant at the injection point. Fine-grained payloads are
     * eligible for packing. @p deliver fires when the payload has
     * fully arrived.
     */
    void sendTagged(NodeId src, NodeId dst,
                    Bytes useful_bytes, bool fine_grained,
                    TenantId tenant, Deliver deliver) override;

    /**
     * sendTagged() carrying a request context: when a RequestTrace
     * is attached to the event queue, every hop of the routed wire
     * unit records a Link/Switch component span for @p job (and for
     * every other job whose payload the Data Packer batched into the
     * same unit). Zero extra work when request tracing is off.
     */
    void sendCtx(NodeId src, NodeId dst, Bytes useful_bytes,
                 bool fine_grained, TenantId tenant,
                 std::uint64_t job, Deliver deliver) override;

    /** Bytes moved over DIMM links, host links, and switch buses. */
    Bytes dimmLinkBytes() const;
    Bytes hostLinkBytes() const;
    Bytes switchBusBytes() const;
    Bytes totalWireBytes() const override;

    /** Messages that traversed the host for coherence resolution. */
    std::uint64_t hostRoundTrips() const { return host_round_trips; }

    /** Access to a link for inspection in tests. */
    const CxlLink &dimmLink(unsigned sw, unsigned dimm) const;
    const CxlLink &hostLink(unsigned sw) const;

    /** The link checker, or nullptr when not armed. */
    const CxlLinkChecker *checker() const { return link_checker.get(); }

    /**
     * Register an endpoint with the fabric. The constructor registers
     * the built-in topology (host 0, every switch, every DIMM); rack
     * machines register extra hosts and re-register hot-added DIMMs.
     * Registering a node that is already present is a hard error.
     */
    void registerNode(NodeId node);

    /**
     * Remove an endpoint (hot-remove path). The node must currently
     * be registered; its delivery home mapping is dropped with it.
     */
    void unregisterNode(NodeId node);

    /** True when @p node is currently registered with the fabric. */
    bool
    isRegistered(NodeId node) const
    {
        return registered_nodes.count(node.key()) != 0;
    }

    /**
     * Declare the event-queue home of a destination endpoint: the
     * final hop of any message towards @p node re-homes its arrival
     * event (and thus the delivery callbacks) onto that shard. All
     * intermediate hops and the fabric's own state stay on the
     * default shard. Unmapped nodes deliver on shard hint 0.
     *
     * The node must be registered: binding a home for an endpoint the
     * fabric does not know about (e.g. a hot-removed DIMM) is a hard
     * error.
     */
    void setNodeHome(NodeId node, std::uint32_t hint);

    /** The delivery home hint of @p node (0 when unmapped). */
    std::uint32_t
    homeOf(NodeId node) const
    {
        auto it = node_homes.find(node.key());
        return it == node_homes.end() ? 0 : it->second;
    }

    /**
     * End-of-run validation: message balance and per-channel
     * bandwidth conservation. No-op when the checker is off.
     */
    void finalizeCheck() const;

  private:
    struct SwitchState
    {
        std::unique_ptr<BandwidthServer> bus;
        std::vector<std::unique_ptr<CxlLink>> dimm_links;
        std::unique_ptr<CxlLink> host_link;
    };

    /** Route an already-packed wire unit along the physical path. */
    void routeWire(NodeId src, NodeId dst, Bytes wire_bytes,
                   std::vector<Deliver> batch);

    /** Hop helpers: schedule continuation after a resource. */
    void hopBus(unsigned sw, Bytes bytes,
                std::function<void()> next);
    void hopLink(CxlLink &link, LinkDir dir, Bytes bytes,
                 std::function<void()> next,
                 std::uint32_t arrival_home = 0);

    DataPacker &packerFor(NodeId src, NodeId dst);

    /**
     * Per-(src, dst) FIFO of job ids, parallel to the Data Packer's
     * staged payloads: sendCtx() pushes one entry per submitted
     * payload (0 = no context) and routeWire() pops one per Deliver
     * in the flushed batch, so batching never misattributes a span.
     * Lane-0 state like the packers (every fabric submit and flush
     * runs on the default shard); only populated while a
     * RequestTrace is attached.
     */
    // beacon-lint: shared-state(PoolFabric.pending_jobs, event-queue-mediated)
    std::map<std::uint64_t, std::deque<std::uint64_t>> pending_jobs;

    PoolParams p;
    std::vector<SwitchState> switches;
    std::map<std::uint64_t, std::unique_ptr<DataPacker>> packers;
    std::map<std::uint32_t, std::uint32_t> node_homes;
    std::set<std::uint32_t> registered_nodes;
    std::unique_ptr<CxlLinkChecker> link_checker;
    std::vector<unsigned> bus_channels; //!< checker id per switch bus

    std::uint64_t host_round_trips = 0;
    Counter &stat_messages;
    Counter &stat_host_round_trips;
    /** Untenanted ingress total; per-tenant counters must sum to
     *  exactly this value (conservation, test-enforced). */
    Counter &stat_useful_bytes;
    Counter &tenantBytesStat(TenantId tenant);
    std::map<TenantId, Counter *> tenant_bytes_stats;
};

} // namespace beacon

#endif // BEACON_CXL_POOL_HH
