/**
 * @file
 * Occupancy-based bandwidth server.
 *
 * Models any serial resource with a fixed byte rate (a CXL link
 * direction, a switch-internal bus, a DDR command/data channel): a
 * transfer of B bytes occupies the resource for B / bandwidth and
 * transfers queue behind each other in arrival order.
 */

#ifndef BEACON_CXL_BANDWIDTH_SERVER_HH
#define BEACON_CXL_BANDWIDTH_SERVER_HH

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "common/units.hh"

namespace beacon
{

/** A FIFO resource with a fixed service rate in GB/s. */
class BandwidthServer
{
  public:
    /**
     * @param gb_per_s service rate; <= 0 means infinite bandwidth
     *        (used for the paper's idealized-communication mode).
     */
    explicit BandwidthServer(double gb_per_s)
        : rate(gb_per_s)
    {}

    /** True when this server models idealized (infinite) bandwidth. */
    bool ideal() const { return rate <= 0; }

    double rateGBps() const { return rate; }

    /**
     * Reserve the server for @p bytes starting no earlier than
     * @p ready.
     * @return the tick at which the last byte has been serviced.
     */
    Tick
    accept(Tick ready, Bytes bytes)
    {
        total_bytes += bytes;
        ++transfers;
        if (ideal())
            return ready;
        const Tick start = std::max(ready, busy_until);
        const Tick duration = transferTime(bytes, rate);
        busy_until = start + duration;
        busy_ticks += duration;
        return busy_until;
    }

    /** Tick at which the server next becomes free. */
    Tick busyUntil() const { return busy_until; }

    Bytes totalBytes() const { return total_bytes; }
    std::uint64_t totalTransfers() const { return transfers; }
    Tick busyTicks() const { return busy_ticks; }

  private:
    double rate;
    Tick busy_until = 0;
    Tick busy_ticks = 0;
    Bytes total_bytes;
    std::uint64_t transfers = 0;
};

} // namespace beacon

#endif // BEACON_CXL_BANDWIDTH_SERVER_HH
