/**
 * @file
 * Multi-tenant job model.
 *
 * A tenant is one customer of the shared pool: it brings a genomics
 * workload (its index structures get a dedicated, disjoint region of
 * pool memory at admission) and submits jobs — batches of that
 * workload's tasks — according to an arrival process. The
 * orchestrator (orchestrator.hh) schedules ready tasks from every
 * admitted tenant onto one shared NdpSystem.
 */

#ifndef BEACON_SERVICE_JOB_HH
#define BEACON_SERVICE_JOB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "accel/workload.hh"
#include "ndp/task.hh"

namespace beacon
{

/** How a tenant's jobs arrive. */
enum class ArrivalKind : std::uint8_t
{
    /** Keep @p concurrency jobs outstanding until num_jobs ran. */
    ClosedLoop,
    /** Poisson arrivals at @p jobs_per_second, drawn from the
     *  orchestrator's deterministic Rng. */
    OpenPoisson,
};

/** Arrival-process description of one tenant. */
struct ArrivalProcess
{
    ArrivalKind kind = ArrivalKind::ClosedLoop;
    /** Outstanding-job target (closed loop). */
    unsigned concurrency = 1;
    /** Mean arrival rate (open-loop Poisson). */
    double jobs_per_second = 0;
};

/** Everything the orchestrator needs to admit and run one tenant. */
struct TenantSpec
{
    std::string name;
    /** The tenant's workload; its structures() define the memory
     *  quota requested at admission. Must outlive the orchestrator. */
    const Workload *workload = nullptr;
    /** Total jobs the tenant submits over the run. */
    unsigned num_jobs = 1;
    /** Workload tasks per job (job completes when all retire). */
    unsigned tasks_per_job = 4;
    /** Strict-priority level; higher is more urgent. */
    unsigned priority = 0;
    /** Fair-share weight (PE-slot proportional share). */
    double weight = 1.0;
    /**
     * Transient per-job scratch footprint the admission controller
     * reserves from pool capacity for each in-flight job and
     * releases at job completion; zero disables per-job gating.
     */
    Bytes scratch_bytes_per_job;
    /**
     * Latency SLO target for one job, in milliseconds; 0 disables
     * SLO accounting for the tenant. Jobs completing above the
     * target count as breaches in the live SLO monitor
     * (obs::SloMonitor) and the per-tenant burn-rate series.
     */
    double slo_ms = 0;
    ArrivalProcess arrival;
};

/**
 * Tags an application task with its owning tenant. Pure pass-through
 * otherwise, so timing is identical to the untenanted task.
 */
class TenantTask : public Task
{
  public:
    TenantTask(TaskPtr inner_task, TenantId tenant,
               std::uint64_t job = 0)
        : inner(std::move(inner_task)), tid(tenant), job_id(job)
    {
    }

    EngineKind engine() const override { return inner->engine(); }
    TaskStep next() override { return inner->next(); }
    TenantId tenant() const override { return tid; }
    std::uint64_t jobId() const override { return job_id; }

  private:
    TaskPtr inner;
    TenantId tid;
    std::uint64_t job_id;
};

} // namespace beacon

#endif // BEACON_SERVICE_JOB_HH
