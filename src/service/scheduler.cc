#include "scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon
{

void
Scheduler::onDispatch(const SchedCandidate &, double)
{
}

const char *
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fcfs:
        return "fcfs";
      case SchedulerKind::Priority:
        return "priority";
      case SchedulerKind::FairShare:
        return "fair";
    }
    return "unknown";
}

namespace
{

/** Global FIFO: the oldest ready task goes first, whoever owns it. */
class FcfsScheduler : public Scheduler
{
  public:
    SchedulerKind kind() const override { return SchedulerKind::Fcfs; }

    TenantId
    pick(const std::vector<SchedCandidate> &ready) override
    {
        BEACON_ASSERT(!ready.empty(), "pick() with no candidates");
        const SchedCandidate *best = &ready.front();
        for (const SchedCandidate &c : ready) {
            if (c.head_seq < best->head_seq)
                best = &c;
        }
        return best->tenant;
    }
};

/** Strict priority levels; FIFO among equals. */
class PriorityScheduler : public Scheduler
{
  public:
    SchedulerKind kind() const override
    {
        return SchedulerKind::Priority;
    }

    TenantId
    pick(const std::vector<SchedCandidate> &ready) override
    {
        BEACON_ASSERT(!ready.empty(), "pick() with no candidates");
        const SchedCandidate *best = &ready.front();
        for (const SchedCandidate &c : ready) {
            if (c.priority > best->priority ||
                (c.priority == best->priority &&
                 c.head_seq < best->head_seq)) {
                best = &c;
            }
        }
        return best->tenant;
    }
};

/**
 * Weighted fair queueing at PE-slot granularity: each tenant
 * accumulates virtual service (dispatched task cost divided by its
 * weight); the tenant with the least virtual service goes next. A
 * monotone virtual clock tracks the least-served backlogged tenant,
 * and a tenant re-entering after an idle stretch is lifted to that
 * clock first — the standard start-time fairness correction, so
 * idleness does not bank a catch-up burst.
 */
class FairShareScheduler : public Scheduler
{
  public:
    SchedulerKind kind() const override
    {
        return SchedulerKind::FairShare;
    }

    TenantId
    pick(const std::vector<SchedCandidate> &ready) override
    {
        BEACON_ASSERT(!ready.empty(), "pick() with no candidates");
        const SchedCandidate *best = nullptr;
        double best_service = 0;
        double next_clock = -1;
        for (const SchedCandidate &c : ready) {
            double &s = virtual_service[c.tenant];
            s = std::max(s, clock);
            if (next_clock < 0 || s < next_clock)
                next_clock = s;
            if (!best || s < best_service ||
                (s == best_service && c.head_seq < best->head_seq)) {
                best = &c;
                best_service = s;
            }
        }
        clock = next_clock; // >= old clock: every s was lifted first
        return best->tenant;
    }

    void
    onDispatch(const SchedCandidate &picked, double cost) override
    {
        virtual_service[picked.tenant] +=
            cost / std::max(1e-9, picked.weight);
    }

  private:
    std::map<TenantId, double> virtual_service;
    double clock = 0;
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::Priority:
        return std::make_unique<PriorityScheduler>();
      case SchedulerKind::FairShare:
        return std::make_unique<FairShareScheduler>();
    }
    BEACON_PANIC("unknown scheduler kind");
}

} // namespace beacon
