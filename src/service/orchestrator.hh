/**
 * @file
 * Pool orchestrator: many concurrent genomics jobs on one shared
 * NdpSystem.
 *
 * The orchestrator plays the role of the pool's service frontend:
 *  - admission: each tenant's index structures are allocated through
 *    the memory-management framework with memory clean disabled, so
 *    a tenant that does not fit is rejected instead of evicting a
 *    co-tenant; per-job scratch reservations additionally gate job
 *    concurrency on remaining pool capacity;
 *  - scheduling: whenever the machine has a free task slot, a
 *    pluggable policy (scheduler.hh) picks which tenant's ready task
 *    runs next;
 *  - attribution: every dispatched task is tagged with its tenant id
 *    (job.hh), so the fabric, the DRAM path, and the NDP modules
 *    split their counters by tenant — the per-tenant values must sum
 *    to the untagged totals (conservation, test-enforced);
 *  - reporting: per-tenant job-completion latency percentiles,
 *    throughput, queueing delay, and energy shares.
 *
 * Determinism: every decision derives from the event-queue order and
 * one seed, so runs are bit-identical across hosts and thread counts
 * (the orchestrator itself is single-threaded; SweepRunner provides
 * the parallelism across sweep points).
 */

#ifndef BEACON_SERVICE_ORCHESTRATOR_HH
#define BEACON_SERVICE_ORCHESTRATOR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/system.hh"
#include "obs/request_context.hh"
#include "obs/trace.hh"
#include "service/job.hh"
#include "service/scheduler.hh"

namespace beacon
{

namespace obs
{
class RequestTrace;
class SloMonitor;
} // namespace obs

/** Orchestrator configuration. */
struct OrchestratorParams
{
    SchedulerKind scheduler = SchedulerKind::Fcfs;
    /** Seeds the arrival processes (open-loop Poisson draws). */
    std::uint64_t seed = 1;
    /**
     * Offset added to this orchestrator's dense local tenant ids. A
     * single-host run keeps 0 (tenants are 1..N, as always); a rack
     * machine gives each host a disjoint base so every tenant id —
     * and thus every tagged counter — is globally unique on the
     * shared pool.
     */
    unsigned tenant_id_base = 0;
    /**
     * Optional job-ingress hook. When set, submitJob() defers
     * admission (scratch reservation and task enqueue) until the
     * hook invokes the passed continuation; the job counts as
     * outstanding from submission, and its queue wait includes the
     * ingress delay. Rack hosts use this to stream each job's input
     * over their rack uplink and scatter it through the HDM decoder
     * before the job becomes runnable; the job id (second argument)
     * lets the transfer carry the request context for hop-level
     * trace attribution. The continuation must be called exactly
     * once, from an event-queue callback on the default (lane-0)
     * shard.
     */
    std::function<void(TenantId, std::uint64_t,
                       std::function<void()>)>
        ingress;
};

/** Per-tenant outcome of a service run. */
struct TenantReport
{
    TenantId tenant;
    std::string name;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_rejected = 0;
    std::uint64_t tasks_completed = 0;
    /** Job-completion latency (submission to last task retired). */
    double p50_latency_ms = 0;
    double p99_latency_ms = 0;
    double mean_latency_ms = 0;
    /** Mean wait from submission to first task dispatch. */
    double mean_queue_ms = 0;
    double jobs_per_second = 0;
    /** Attribution pulled from the tenant-tagged counters. */
    Tick pe_busy_ticks = 0;
    Bytes fabric_bytes;
    Bytes dram_bytes;
    /** Energy share: each component split by the tenant's fraction
     *  of PE busy time / fabric bytes / DRAM bytes. */
    Picojoules energy_pj;
    /**
     * Request-scoped latency breakdown, summed over the tenant's
     * completed jobs (obs::RequestTrace; only filled — has_breakdown
     * — when request tracing was on). Component ticks sum exactly to
     * breakdown_total_ticks, which is the sum of end-to-end job
     * latencies in ticks.
     */
    bool has_breakdown = false;
    std::uint64_t breakdown_jobs = 0;
    Tick breakdown_total_ticks = 0;
    std::array<Tick, obs::num_span_kinds> breakdown_ticks{};
    /** Live SLO accounting (obs::SloMonitor; has_slo gates). */
    bool has_slo = false;
    std::uint64_t slo_jobs = 0;
    std::uint64_t slo_breaches = 0;
    /** Lifetime breach fraction (breaches / jobs, 0 when idle). */
    double slo_burn = 0;
    /** Last closed window's breach fraction (the live burn rate). */
    double slo_window_burn = 0;
};

/** Whole-run outcome: the machine plus every tenant. */
struct ServiceReport
{
    RunResult machine;
    std::vector<TenantReport> tenants;
};

/** The orchestrator; owns scheduling state, not the machine. */
class PoolOrchestrator
{
  public:
    PoolOrchestrator(NdpSystem &system,
                     const OrchestratorParams &params);
    ~PoolOrchestrator();

    /**
     * Admit a tenant: allocate its workload's structures in a
     * disjoint pool region (no memory clean) and register the layout
     * with the machine. Returns the tenant id, or 0 when admission
     * fails — see lastError().
     */
    TenantId addTenant(const TenantSpec &spec);

    /** Failure reason of the last rejected addTenant() call. */
    const std::string &lastError() const { return last_error; }

    /**
     * Run every admitted tenant's job mix to completion and report.
     * Call once.
     */
    ServiceReport run();

    // ------------------------------------------------------------
    // Cooperative API. run() is built from these pieces; an external
    // driver that multiplexes several orchestrators over one machine
    // (src/rack) calls them directly: start() every host, install a
    // combined slot-freed observer that fans out to every host's
    // dispatch(), drive the shared event queue until every host
    // finished(), then collectReport() each host once.
    // ------------------------------------------------------------

    /**
     * Register sampler series, schedule open-loop arrivals, submit
     * initial closed-loop jobs, and dispatch. Does NOT install the
     * machine's slot-freed observer — run() (or the external driver)
     * owns that. Call once, before any event executes.
     */
    void start();

    /** Completed-or-rejected jobs across all tenants. */
    std::uint64_t doneJobs() const;

    /** Total job budget across all tenants (valid after start()). */
    std::uint64_t targetJobs() const { return target_jobs; }

    /** Jobs submitted but not yet completed or rejected. */
    std::uint64_t outstandingJobs() const { return jobs_outstanding; }

    /** True once every job completed or was rejected. */
    bool finished() const { return doneJobs() >= target_jobs; }

    /**
     * Open-loop arrivals with tick in [t0, w_end). Advances the
     * arrival cursor past ticks below @p t0, so calls must use
     * non-decreasing @p t0 (the drive loop's window starts do).
     */
    std::uint64_t arrivalsBetween(Tick t0, Tick w_end);

    /** Move ready tasks onto the machine while slots are free. */
    void dispatch();

    /** Ids of every admitted tenant, in admission order. */
    std::vector<TenantId> tenantIds() const;

    /**
     * Build the per-tenant report against an already-computed
     * machine result. Call once, after the run finished.
     */
    ServiceReport collectReport(const RunResult &machine);

  private:
    struct Job
    {
        std::uint64_t id = 0;
        Tick submit_tick = 0;
        Tick first_dispatch_tick = 0;
        bool dispatched_any = false;
        unsigned tasks_remaining = 0;
        /** Scratch reservation held until completion ("" = none). */
        std::string scratch_app;
        /** Queued -> completed trace span (no-op when off). */
        obs::TraceSpan span;
        unsigned slot = 0;
    };

    /** One ready task: generator index plus owning job. */
    struct ReadyTask
    {
        std::uint64_t seq = 0;       //!< global arrival sequence
        std::size_t workload_index = 0;
        std::shared_ptr<Job> job;
    };

    struct TenantState
    {
        TenantSpec spec;
        TenantId id;
        std::uint64_t jobs_submitted = 0;
        std::uint64_t jobs_completed = 0;
        std::uint64_t jobs_rejected = 0;
        std::uint64_t tasks_completed = 0;
        std::size_t next_workload_task = 0;
        std::deque<ReadyTask> ready;
        /** Jobs waiting for a scratch reservation. */
        std::deque<std::shared_ptr<Job>> admission_wait;
        std::vector<Tick> job_latencies;
        std::vector<Tick> queue_waits;
        /** Streaming latency histogram (registry-owned), feeding
         *  live percentile series without retaining every sample. */
        SampleStat *latency_ms_stat = nullptr;
        // Tracing: a tenant summary track (queue-depth counter,
        // dispatch instants) plus numbered job-slot tracks so
        // concurrent job spans never overlap within one track.
        obs::TrackId track = 0;
        std::vector<char> slot_busy;
        std::vector<obs::TrackId> slot_tracks;
        /** Tenant index in the machine's SLO monitor (slo != null). */
        unsigned slo_idx = 0;
    };

    /** Submit one job of @p tenant at the current tick. */
    void submitJob(TenantState &tenant);

    /** Try to reserve @p job's scratch; queue the tasks on success. */
    bool admitJob(TenantState &tenant,
                  const std::shared_ptr<Job> &job);

    /** Admission tail of submitJob(), run after ingress (if any). */
    void completeSubmission(TenantId tenant,
                            const std::shared_ptr<Job> &job);

    /** One task of @p tenant's @p job retired. */
    void onTaskDone(TenantId tenant, const std::shared_ptr<Job> &job);

    /** Closed-loop tenants top up their outstanding jobs. */
    void replenishClosedLoop(TenantState &tenant);

    /** Retry admission-blocked jobs after capacity was released. */
    void retryAdmissions();

    /** All counters by tenant must sum to the untagged totals. */
    void verifyConservation() const;

    /** Lowest free job-slot track of @p tenant (tracing only). */
    unsigned acquireJobSlot(TenantState &tenant);

    TenantState &stateOf(TenantId tenant);

    NdpSystem &system;
    OrchestratorParams p;
    /** Index = tenant id - tenant_id_base - 1. */
    std::vector<TenantState> tenants;
    std::string last_error;
    std::uint64_t next_seq = 0;
    /** Job ids start at 1; 0 is the "no request context" sentinel
     *  carried by untenanted traffic (obs::RequestContext). */
    std::uint64_t next_job_id = 1;
    std::uint64_t jobs_outstanding = 0;
    std::uint64_t target_jobs = 0;
    /**
     * Every open-loop arrival tick, pre-drawn and sorted; the cursor
     * trails the clock. The windowed drive loop counts arrivals
     * inside a prospective window to bound how far the finished-jobs
     * counter can advance (each arrival submits at most one job,
     * which can be rejected on the spot).
     */
    std::vector<Tick> arrival_ticks;
    std::size_t arrival_cursor = 0;
    bool ran = false;
    std::unique_ptr<Scheduler> scheduler;
    /** Machine's trace sink (null when tracing is off). */
    obs::TraceSink *trace = nullptr;
    /** Machine's request trace (null when request tracing is off). */
    obs::RequestTrace *reqtrace = nullptr;
    /** Machine's live SLO monitor (null when no SLO window set). */
    obs::SloMonitor *slo = nullptr;
};

} // namespace beacon

#endif // BEACON_SERVICE_ORCHESTRATOR_HH
