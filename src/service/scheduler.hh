/**
 * @file
 * Pluggable task schedulers for the pool orchestrator.
 *
 * Whenever the shared machine has a free PE slot, the orchestrator
 * builds one Candidate per tenant with ready tasks and asks the
 * scheduler to pick. All three policies are deterministic: ties
 * break on the head task's global arrival sequence, then on the
 * tenant id, so a run is reproducible from its seed alone.
 */

#ifndef BEACON_SERVICE_SCHEDULER_HH
#define BEACON_SERVICE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ndp/task.hh"

namespace beacon
{

/** One tenant eligible for the next free task slot. */
struct SchedCandidate
{
    TenantId tenant;
    /** Global arrival sequence of the tenant's oldest ready task. */
    std::uint64_t head_seq = 0;
    /** Strict-priority level (higher first). */
    unsigned priority = 0;
    /** Fair-share weight. */
    double weight = 1.0;
};

/** The selectable policies. */
enum class SchedulerKind : std::uint8_t
{
    Fcfs,      //!< global first-come-first-served over tasks
    Priority,  //!< strict priority, FIFO within a level
    FairShare, //!< weighted fair queueing over PE-slot service
};

/** Human-readable policy name ("fcfs" / "priority" / "fair"). */
const char *schedulerName(SchedulerKind kind);

/** Scheduling-policy interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual SchedulerKind kind() const = 0;

    /**
     * Choose the tenant whose head task takes the next free slot.
     * @p ready is non-empty and sorted by tenant id.
     */
    virtual TenantId pick(const std::vector<SchedCandidate> &ready) = 0;

    /**
     * Account one dispatched task of the candidate chosen by the
     * last pick(), costing @p cost nominal PE cycles. Only the
     * fair-share policy uses it.
     */
    virtual void onDispatch(const SchedCandidate &picked, double cost);
};

/** Build a scheduler of the requested policy. */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind);

} // namespace beacon

#endif // BEACON_SERVICE_SCHEDULER_HH
