#include "orchestrator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/request_trace.hh"
#include "obs/sampler.hh"
#include "obs/slo.hh"

namespace beacon
{

namespace
{

/**
 * Latency quantile of an ascending Tick sample set via the shared
 * exact ceil-rank rule (quantileSorted, sim/stats.hh).
 */
double
quantileMs(const std::vector<Tick> &sorted, double q)
{
    std::vector<double> as_double(sorted.begin(), sorted.end());
    return quantileSorted(as_double, q) * 1e-9; // ps -> ms
}

double
meanMs(const std::vector<Tick> &samples)
{
    if (samples.empty())
        return 0;
    double sum = 0;
    for (Tick t : samples)
        sum += double(t);
    return sum / double(samples.size()) * 1e-9;
}

} // namespace

PoolOrchestrator::PoolOrchestrator(NdpSystem &sys,
                                   const OrchestratorParams &params)
    : system(sys), p(params), scheduler(makeScheduler(p.scheduler)),
      trace(BEACON_TRACE_SINK(sys.eventQueue())),
      reqtrace(BEACON_REQUEST_TRACE(sys.eventQueue())),
      slo(sys.obsSlo())
{
}

PoolOrchestrator::~PoolOrchestrator()
{
    // The machine may outlive us; never leave it a dangling observer.
    system.setSlotFreedFn(nullptr);
}

PoolOrchestrator::TenantState &
PoolOrchestrator::stateOf(TenantId tenant)
{
    BEACON_ASSERT(tenant.value() >= p.tenant_id_base + 1 &&
                      tenant.value() <=
                          p.tenant_id_base + tenants.size(),
                  "unknown tenant ", tenant);
    return tenants[tenant.value() - p.tenant_id_base - 1];
}

std::vector<TenantId>
PoolOrchestrator::tenantIds() const
{
    std::vector<TenantId> ids;
    ids.reserve(tenants.size());
    for (const TenantState &tenant : tenants)
        ids.push_back(tenant.id);
    return ids;
}

TenantId
PoolOrchestrator::addTenant(const TenantSpec &spec)
{
    BEACON_ASSERT(!ran, "tenants must be admitted before run()");
    BEACON_ASSERT(spec.workload, "tenant without a workload");
    const TenantId id =
        TenantId(p.tenant_id_base + tenants.size() + 1);

    AllocationRequest request;
    request.app = spec.name.empty()
                      ? "tenant" + std::to_string(id.value())
                      : spec.name;
    request.structures = spec.workload->structures();
    request.policy = system.placementPolicy();
    // A tenant that does not fit must be rejected, not squeezed in
    // by migrating a co-tenant's resident data.
    request.allow_clean = false;

    AllocationResponse response =
        system.memoryFramework().allocate(request);
    if (!response.success) {
        last_error = response.error;
        return untenanted_id;
    }
    system.setTenantLayout(id, response.layout);

    TenantState state;
    state.spec = spec;
    state.spec.name = request.app;
    state.id = id;
    const std::string tag = "tenant" + std::to_string(id.value());
    state.latency_ms_stat = &system.statsMutable().sampleStat(
        "service." + tag + ".jobLatencyMs");
    if (trace)
        state.track = trace->track(tag);
    if (slo) {
        // ms -> ps; slo_ms == 0 keeps target 0 (never breaches).
        state.slo_idx = slo->addTenant(
            request.app, Tick(spec.slo_ms * 1e9));
    }
    tenants.push_back(std::move(state));
    return id;
}

bool
PoolOrchestrator::admitJob(TenantState &tenant,
                           const std::shared_ptr<Job> &job)
{
    if (tenant.spec.scratch_bytes_per_job > Bytes{}) {
        AllocationRequest request;
        request.app = tenant.spec.name + ".job" +
                      std::to_string(job->id);
        StructureSpec scratch;
        scratch.cls = DataClass::ReadData;
        scratch.bytes = tenant.spec.scratch_bytes_per_job;
        scratch.spatial = true;
        scratch.read_only = false;
        request.structures = {scratch};
        request.policy = system.placementPolicy();
        request.allow_clean = false;

        AllocationResponse response =
            system.memoryFramework().allocate(request);
        if (!response.success) {
            last_error = response.error;
            return false;
        }
        job->scratch_app = request.app;
    }

    // Admitted: the job's tasks become schedulable now.
    for (unsigned i = 0; i < tenant.spec.tasks_per_job; ++i) {
        ReadyTask ready;
        ready.seq = next_seq++;
        ready.workload_index =
            tenant.next_workload_task %
            std::max<std::size_t>(1, tenant.spec.workload->numTasks());
        ++tenant.next_workload_task;
        ready.job = job;
        tenant.ready.push_back(std::move(ready));
    }
    return true;
}

void
PoolOrchestrator::submitJob(TenantState &tenant)
{
    auto job = std::make_shared<Job>();
    job->id = next_job_id++;
    job->submit_tick = system.eventQueue().now();
    job->tasks_remaining = tenant.spec.tasks_per_job;
    ++tenant.jobs_submitted;
    ++jobs_outstanding;
    if (trace) {
        job->slot = acquireJobSlot(tenant);
        job->span = obs::TraceSpan(
            trace, tenant.slot_tracks[job->slot], "job", job->id);
    }
    if (reqtrace)
        reqtrace->jobBegin(job->id, tenant.id.value());

    if (p.ingress) {
        // Admission waits for the host's ingress transfer. The job
        // already counts as outstanding, so the drive loop's window
        // bound holds while the transfer is in flight.
        p.ingress(tenant.id, job->id, [this, id = tenant.id, job] {
            completeSubmission(id, job);
            dispatch();
        });
        return;
    }
    completeSubmission(tenant.id, job);
}

void
PoolOrchestrator::completeSubmission(TenantId tenant_id,
                                     const std::shared_ptr<Job> &job)
{
    TenantState &tenant = stateOf(tenant_id);
    if (admitJob(tenant, job)) {
        if (trace)
            trace->counter(tenant.track, "ready",
                           double(tenant.ready.size()));
        return;
    }
    // "memory clean disallowed" means a co-tenant's transient
    // reservation is in the way: wait for a release. Anything else
    // (the scratch quota alone exceeds a DIMM) can never succeed.
    if (last_error.find("memory clean disallowed") !=
        std::string::npos) {
        tenant.admission_wait.push_back(job);
    } else {
        ++tenant.jobs_rejected;
        --jobs_outstanding;
        if (trace) {
            // Rejected jobs never ran: no span, free the slot, but
            // leave an instant carrying the rejection reason so the
            // job does not vanish from the trace silently.
            trace->instantReason(tenant.track, "reject", job->id,
                                 "scratch quota infeasible");
            job->span.abandon();
            tenant.slot_busy[job->slot] = 0;
        }
        if (reqtrace)
            reqtrace->jobReject(job->id);
    }
}

unsigned
PoolOrchestrator::acquireJobSlot(TenantState &tenant)
{
    for (unsigned i = 0; i < tenant.slot_busy.size(); ++i) {
        if (!tenant.slot_busy[i]) {
            tenant.slot_busy[i] = 1;
            return i;
        }
    }
    tenant.slot_busy.push_back(1);
    tenant.slot_tracks.push_back(trace->track(
        "tenant" + std::to_string(tenant.id.value()) + ".job" +
        std::to_string(tenant.slot_busy.size() - 1)));
    return unsigned(tenant.slot_busy.size() - 1);
}

void
PoolOrchestrator::retryAdmissions()
{
    for (TenantState &tenant : tenants) {
        while (!tenant.admission_wait.empty()) {
            if (!admitJob(tenant, tenant.admission_wait.front()))
                break;
            tenant.admission_wait.pop_front();
        }
    }
}

void
PoolOrchestrator::replenishClosedLoop(TenantState &tenant)
{
    if (tenant.spec.arrival.kind != ArrivalKind::ClosedLoop)
        return;
    const unsigned concurrency =
        std::max(1u, tenant.spec.arrival.concurrency);
    while (tenant.jobs_submitted < tenant.spec.num_jobs &&
           tenant.jobs_submitted - tenant.jobs_completed -
                   tenant.jobs_rejected <
               concurrency) {
        submitJob(tenant);
    }
}

void
PoolOrchestrator::dispatch()
{
    while (system.hasFreeSlot()) {
        std::vector<SchedCandidate> candidates;
        for (const TenantState &tenant : tenants) {
            if (tenant.ready.empty())
                continue;
            SchedCandidate c;
            c.tenant = tenant.id;
            c.head_seq = tenant.ready.front().seq;
            c.priority = tenant.spec.priority;
            c.weight = tenant.spec.weight;
            candidates.push_back(c);
        }
        if (candidates.empty())
            return;

        const TenantId picked_id = scheduler->pick(candidates);
        const SchedCandidate *picked = nullptr;
        for (const SchedCandidate &c : candidates) {
            if (c.tenant == picked_id)
                picked = &c;
        }
        BEACON_ASSERT(picked, "scheduler picked a non-candidate");

        TenantState &tenant = stateOf(picked_id);
        ReadyTask ready = std::move(tenant.ready.front());
        tenant.ready.pop_front();

        const Workload &wl = *tenant.spec.workload;
        scheduler->onDispatch(
            *picked,
            double(engineStepCycles(wl.engine()).value()));

        if (!ready.job->dispatched_any) {
            ready.job->dispatched_any = true;
            ready.job->first_dispatch_tick =
                system.eventQueue().now();
            tenant.queue_waits.push_back(
                ready.job->first_dispatch_tick -
                ready.job->submit_tick);
            if (trace) {
                trace->instantWithId(tenant.track, "dispatch",
                                     ready.job->id);
                // Flow start: binds to the open "job" slice on the
                // slot track; DRAM/PE steps ('t') and the completion
                // ('f') continue the arrow chain.
                trace->flow(tenant.slot_tracks[ready.job->slot],
                            "job", ready.job->id, 's');
            }
        }
        if (trace)
            trace->counter(tenant.track, "ready",
                           double(tenant.ready.size()));

        WorkloadContext ctx;
        ctx.kmc_single_pass = true; // multi-pass is single-tenant only
        ctx.pass = 0;
        auto task = std::make_unique<TenantTask>(
            wl.makeTask(ready.workload_index, ctx), picked_id,
            ready.job->id);
        const bool served = system.serveTask(
            std::move(task),
            [this, id = picked_id, job = ready.job] {
                onTaskDone(id, job);
            });
        BEACON_ASSERT(served, "free slot vanished mid-dispatch");
    }
}

void
PoolOrchestrator::onTaskDone(TenantId tenant_id,
                             const std::shared_ptr<Job> &job)
{
    TenantState &tenant = stateOf(tenant_id);
    ++tenant.tasks_completed;
    BEACON_ASSERT(job->tasks_remaining > 0, "job task underflow");
    if (--job->tasks_remaining > 0)
        return;

    // Job complete.
    const Tick now = system.eventQueue().now();
    const Tick latency = now - job->submit_tick;
    tenant.job_latencies.push_back(latency);
    tenant.latency_ms_stat->sample(double(latency) * 1e-9);
    if (trace) {
        // Flow finish lands on the still-open job slice.
        trace->flow(tenant.slot_tracks[job->slot], "job", job->id,
                    'f');
        job->span.close();
        tenant.slot_busy[job->slot] = 0;
    }
    if (reqtrace)
        reqtrace->jobEnd(job->id);
    if (slo)
        slo->record(tenant.slo_idx, latency);
    ++tenant.jobs_completed;
    --jobs_outstanding;
    if (!job->scratch_app.empty())
        system.memoryFramework().deallocate(job->scratch_app);
    retryAdmissions();
    replenishClosedLoop(tenant);
    // New tasks are picked up by the machine's slot-freed observer,
    // which fires right after this callback.
}

void
PoolOrchestrator::start()
{
    BEACON_ASSERT(!ran, "start() may only be called once");
    ran = true;
    BEACON_ASSERT(!tenants.empty(), "no admitted tenants");

    EventQueue &eq = system.eventQueue();

    // Per-tenant time series: ready-queue depth (level) and a live
    // p99 estimate from the streaming latency histogram. Registered
    // here, before the first sampling interval can elapse.
    if (obs::Sampler *sampler = system.obsSampler()) {
        for (TenantState &tenant : tenants) {
            const std::string tag =
                "tenant" + std::to_string(tenant.id.value());
            // Setup-time probe registration, before the run.
            // beacon-lint: shared-state(Sampler.addLevel, direct-mutation)
            sampler->addLevel(tag + ".queue_depth",
                              [this, id = tenant.id] {
                                  return double(
                                      stateOf(id).ready.size());
                              });
            // beacon-lint: shared-state(Sampler.addLevel, direct-mutation)
            sampler->addLevel(tag + ".p99_ms",
                              [stat = tenant.latency_ms_stat] {
                                  return stat->percentile(0.99);
                              });
            if (slo) {
                // Windowed SLO series from the live monitor. Window
                // rolls and sampler ticks are both barrier-lane
                // EventCat::Sampler events, so the values read here
                // are quiesced and canonically ordered — the series
                // is byte-identical across shard counts.
                const unsigned si = tenant.slo_idx;
                // beacon-lint: shared-state(Sampler.addLevel, direct-mutation)
                sampler->addLevel(
                    tag + ".slo_p50_ms", [this, si] {
                        return double(slo->lastWindow(si).p50) *
                               1e-9;
                    });
                // beacon-lint: shared-state(Sampler.addLevel, direct-mutation)
                sampler->addLevel(
                    tag + ".slo_p99_ms", [this, si] {
                        return double(slo->lastWindow(si).p99) *
                               1e-9;
                    });
                // beacon-lint: shared-state(Sampler.addLevel, direct-mutation)
                sampler->addLevel(tag + ".slo_burn", [this, si] {
                    return slo->burnRate(si);
                });
            }
        }
    }

    target_jobs = 0;
    for (TenantState &tenant : tenants) {
        target_jobs += tenant.spec.num_jobs;
        if (tenant.spec.arrival.kind == ArrivalKind::ClosedLoop) {
            replenishClosedLoop(tenant);
        } else {
            const double rate = tenant.spec.arrival.jobs_per_second;
            BEACON_ASSERT(rate > 0,
                          "open-loop tenant needs a positive rate");
            // Pre-draw every exponential gap from a per-tenant
            // stream, so arrivals are independent of execution
            // interleaving.
            Rng arrivals(p.seed ^
                         (0x9E3779B97F4A7C15ull *
                          (tenant.id.value() + 1)));
            Tick at = 0;
            for (unsigned j = 0; j < tenant.spec.num_jobs; ++j) {
                const double u = arrivals.nextDouble();
                const double gap_s = -std::log1p(-u) / rate;
                at += Tick(gap_s * 1e12);
                arrival_ticks.push_back(at);
                eq.schedule(at, [this, id = tenant.id] {
                    submitJob(stateOf(id));
                    dispatch();
                }, EventCat::Service);
            }
        }
    }
    std::sort(arrival_ticks.begin(), arrival_ticks.end());
    dispatch();
}

std::uint64_t
PoolOrchestrator::doneJobs() const
{
    std::uint64_t done = 0;
    for (const TenantState &tenant : tenants)
        done += tenant.jobs_completed + tenant.jobs_rejected;
    return done;
}

std::uint64_t
PoolOrchestrator::arrivalsBetween(Tick t0, Tick w_end)
{
    while (arrival_cursor < arrival_ticks.size() &&
           arrival_ticks[arrival_cursor] < t0) {
        ++arrival_cursor;
    }
    std::uint64_t window_arrivals = 0;
    for (std::size_t i = arrival_cursor;
         i < arrival_ticks.size() && arrival_ticks[i] < w_end;
         ++i) {
        ++window_arrivals;
    }
    return window_arrivals;
}

ServiceReport
PoolOrchestrator::run()
{
    EventQueue &eq = system.eventQueue();
    system.setSlotFreedFn([this] { dispatch(); });
    start();

    // Drive loop. On the sharded engine, advance whole conservative-
    // lookahead windows while the finished predicate provably cannot
    // flip inside one; fall back to serial-canonical runOne() for the
    // tail (and on the legacy engine). The in-window advance of the
    // finished-jobs counter is bounded by
    //   - completions: at most jobs_outstanding (a job submitted
    //     inside the window needs its input streamed over at least
    //     one link hop >= the lookahead before any task can retire);
    //   - rejections: one per open-loop arrival tick inside the
    //     window. Closed-loop tenants never reject mid-run: a
    //     rejection needs a structurally infeasible scratch quota
    //     (occupancy-independent), which rejects that tenant's whole
    //     job budget during setup, before the first window.
    ShardedEventQueue *sq = eq.sharded();
    while (!finished()) {
        if (sq != nullptr && sq->lookahead() > 0) {
            const Tick t0 = sq->nextPendingTick();
            if (t0 != max_tick && t0 < max_tick - sq->lookahead()) {
                const Tick w_end = t0 + sq->lookahead();
                const std::uint64_t window_arrivals =
                    arrivalsBetween(t0, w_end);
                if (doneJobs() + jobs_outstanding + window_arrivals <
                        target_jobs &&
                    sq->runWindow()) {
                    BEACON_CHECK(!finished(),
                                 "finished predicate flipped inside "
                                 "a service window");
                    continue;
                }
            }
        }
        if (!eq.runOne()) {
            BEACON_PANIC("service run stalled with ",
                         jobs_outstanding,
                         " jobs outstanding (admission deadlock?)");
        }
    }

    const Tick end = eq.now();
    const RunResult machine = system.machineResult(end);

    if (system.params().checkers.any())
        verifyConservation();

    ServiceReport report = collectReport(machine);
    system.setSlotFreedFn(nullptr);
    return report;
}

ServiceReport
PoolOrchestrator::collectReport(const RunResult &machine)
{
    ServiceReport report;
    report.machine = machine;

    // Close the final partial SLO window so lifetime totals cover
    // every completed job (idempotent; the run has ended).
    if (slo)
        slo->finish();

    // Machine-wide denominators for the energy split.
    const StatRegistry &reg = system.stats();
    double total_pe = 0;
    for (unsigned part = 0; part < system.numPartitions(); ++part)
        total_pe += double(system.ndpModule(part).peBusyTicks());
    const double total_fabric = reg.sumMatching("usefulBytesTotal");
    // The host total plus the partition-local twins the CXLG lanes
    // write ("system.part<p>.dramBytesTotal").
    const double total_dram = reg.sumMatching("dramBytesTotal");

    for (TenantState &tenant : tenants) {
        TenantReport out;
        out.tenant = tenant.id;
        out.name = tenant.spec.name;
        out.jobs_completed = tenant.jobs_completed;
        out.jobs_rejected = tenant.jobs_rejected;
        out.tasks_completed = tenant.tasks_completed;

        std::sort(tenant.job_latencies.begin(),
                  tenant.job_latencies.end());
        out.p50_latency_ms = quantileMs(tenant.job_latencies, 0.50);
        out.p99_latency_ms = quantileMs(tenant.job_latencies, 0.99);
        out.mean_latency_ms = meanMs(tenant.job_latencies);
        out.mean_queue_ms = meanMs(tenant.queue_waits);
        out.jobs_per_second =
            report.machine.seconds > 0
                ? double(tenant.jobs_completed) /
                      report.machine.seconds
                : 0;

        const std::string tag =
            "tenant" + std::to_string(tenant.id.value());
        for (unsigned part = 0; part < system.numPartitions();
             ++part) {
            const auto &by_tenant =
                system.ndpModule(part).peBusyByTenant();
            auto it = by_tenant.find(tenant.id);
            if (it != by_tenant.end())
                out.pe_busy_ticks += it->second;
        }
        out.fabric_bytes = Bytes{std::uint64_t(
            reg.sumMatching(tag + ".usefulBytes"))};
        out.dram_bytes = Bytes{std::uint64_t(
            reg.sumMatching(tag + ".dramBytes"))};

        const SystemEnergy &energy = report.machine.energy;
        if (total_pe > 0) {
            out.energy_pj += energy.pe_pj *
                             double(out.pe_busy_ticks) / total_pe;
        }
        if (total_fabric > 0) {
            out.energy_pj +=
                energy.comm_pj *
                (double(out.fabric_bytes.value()) / total_fabric);
        }
        if (total_dram > 0) {
            out.energy_pj +=
                energy.dram_pj *
                (double(out.dram_bytes.value()) / total_dram);
        }

        if (reqtrace) {
            const obs::TenantBreakdown bd =
                reqtrace->tenantBreakdown(tenant.id.value());
            out.has_breakdown = true;
            out.breakdown_jobs = bd.jobs;
            out.breakdown_total_ticks = bd.total_latency;
            for (std::size_t k = 0; k < obs::num_span_kinds; ++k)
                out.breakdown_ticks[k] = bd.comp[k];
        }
        if (slo) {
            out.has_slo = true;
            out.slo_jobs = slo->totalJobs(tenant.slo_idx);
            out.slo_breaches = slo->totalBreaches(tenant.slo_idx);
            out.slo_burn =
                out.slo_jobs ? double(out.slo_breaches) /
                                   double(out.slo_jobs)
                             : 0;
            out.slo_window_burn = slo->burnRate(tenant.slo_idx);
        }
        report.tenants.push_back(std::move(out));
    }

    return report;
}

void
PoolOrchestrator::verifyConservation() const
{
    const StatRegistry &reg = system.stats();
    auto check = [](double total, double by_tenant,
                    const char *what) {
        BEACON_ASSERT(std::abs(total - by_tenant) <= 1e-6,
                      "per-tenant ", what,
                      " do not sum to the untagged total: ",
                      by_tenant, " vs ", total);
    };

    double fabric_by_tenant =
        reg.sumMatching("tenant0.usefulBytes");
    double pe_by_tenant = reg.sumMatching("tenant0.peBusyTicks");
    double dram_by_tenant = reg.sumMatching("tenant0.dramBytes");
    for (const TenantState &tenant : tenants) {
        const std::string tag =
            "tenant" + std::to_string(tenant.id.value());
        fabric_by_tenant += reg.sumMatching(tag + ".usefulBytes");
        pe_by_tenant += reg.sumMatching(tag + ".peBusyTicks");
        dram_by_tenant += reg.sumMatching(tag + ".dramBytes");
    }
    check(reg.sumMatching("usefulBytesTotal"), fabric_by_tenant,
          "fabric bytes");
    check(reg.sumMatching("peBusyTotalTicks"), pe_by_tenant,
          "PE busy ticks");
    check(reg.sumMatching("dramBytesTotal"), dram_by_tenant,
          "DRAM bytes");
}

} // namespace beacon
