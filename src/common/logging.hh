/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can inspect the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with code 1.
 * warn()   - something is approximate or suspicious but survivable.
 * inform() - plain status output.
 */

#ifndef BEACON_COMMON_LOGGING_HH
#define BEACON_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace beacon
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Global log level; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global log level (e.g., from a command-line flag). */
void setLogLevel(LogLevel level);

namespace detail
{

/** Fold any set of streamable arguments into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Hook invoked (once, with the formatted message) before panicImpl
 * aborts. The one installer is obs::FlightRecorder::dumpAll, which
 * writes post-mortem ring dumps so CI failures reproduce with
 * context. The hook is cleared for the duration of the call, so a
 * panic raised inside the hook cannot recurse.
 */
using PanicHook = void (*)(const std::string &msg);
void setPanicHook(PanicHook hook);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace beacon

/** Abort with a message; use for internal invariant violations. */
#define BEACON_PANIC(...)                                                  \
    ::beacon::detail::panicImpl(                                           \
        __FILE__, __LINE__, ::beacon::detail::formatMessage(__VA_ARGS__))

/** Exit with a message; use for user-caused unrecoverable errors. */
#define BEACON_FATAL(...)                                                  \
    ::beacon::detail::fatalImpl(                                           \
        __FILE__, __LINE__, ::beacon::detail::formatMessage(__VA_ARGS__))

/** Emit a warning (does not stop the simulation). */
#define BEACON_WARN(...)                                                   \
    ::beacon::detail::warnImpl(::beacon::detail::formatMessage(__VA_ARGS__))

/** Emit an informational status message. */
#define BEACON_INFORM(...)                                                 \
    ::beacon::detail::informImpl(                                          \
        ::beacon::detail::formatMessage(__VA_ARGS__))

/** Panic if a simulator-internal invariant does not hold. */
#define BEACON_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            BEACON_PANIC("assertion '", #cond, "' failed: ",               \
                         ::beacon::detail::formatMessage(__VA_ARGS__));    \
        }                                                                  \
    } while (0)

/**
 * Always-on invariant check. Unlike BEACON_ASSERT (whose wording
 * targets internal simulator bugs), BEACON_CHECK is the macro of the
 * verification layer (src/check): protocol checkers use it so that a
 * JEDEC/CXL violation aborts with a diagnosable message in every
 * build type, including Release.
 */
#define BEACON_CHECK(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            BEACON_PANIC("check '", #cond, "' failed: ",                   \
                         ::beacon::detail::formatMessage(__VA_ARGS__));    \
        }                                                                  \
    } while (0)

/**
 * Debug-only invariant check; compiled out (condition not evaluated)
 * when NDEBUG is defined, so hot-path checks cost nothing in
 * Release/RelWithDebInfo builds.
 */
#ifdef NDEBUG
#define BEACON_DCHECK(cond, ...)                                           \
    do {                                                                   \
    } while (0)
#else
#define BEACON_DCHECK(cond, ...) BEACON_CHECK(cond, __VA_ARGS__)
#endif

#endif // BEACON_COMMON_LOGGING_HH
