/**
 * @file
 * Size and time unit helpers.
 *
 * The simulation kernel counts time in integer picoseconds (Tick);
 * capacities are counted in bytes.
 */

#ifndef BEACON_COMMON_UNITS_HH
#define BEACON_COMMON_UNITS_HH

#include <cstdint>

namespace beacon
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no deadline / never". */
constexpr Tick max_tick = ~Tick{0};

constexpr Tick
picoseconds(std::uint64_t n)
{
    return n;
}

constexpr Tick
nanoseconds(double n)
{
    return static_cast<Tick>(n * 1e3);
}

constexpr Tick
microseconds(double n)
{
    return static_cast<Tick>(n * 1e6);
}

constexpr Tick
milliseconds(double n)
{
    return static_cast<Tick>(n * 1e9);
}

/** Convert ticks to seconds for reporting. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

constexpr std::uint64_t operator""_KiB(unsigned long long n)
{
    return n << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long n)
{
    return n << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long n)
{
    return n << 30;
}

/**
 * Serialisation time of @p bytes over a link of @p gbps gigabytes per
 * second, in ticks (picoseconds).
 */
constexpr Tick
transferTime(std::uint64_t bytes, double gb_per_s)
{
    // bytes / (GB/s) = ns; x1000 -> ps.
    return static_cast<Tick>(
        static_cast<double>(bytes) / gb_per_s * 1e3 + 0.5);
}

} // namespace beacon

#endif // BEACON_COMMON_UNITS_HH
