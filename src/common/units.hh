/**
 * @file
 * Size, time, energy, and identifier unit types.
 *
 * The simulation kernel counts time in integer picoseconds (Tick);
 * all other bookkeeping quantities are strong types so that mixing
 * dimensions (cycles + bytes, tenant-id vs row-id, ...) is a
 * compile-time error instead of a silently wrong statistic:
 *
 *  - Cycles      clock cycles within some clock domain
 *  - Bytes       data sizes / capacities / traffic volumes
 *  - Picojoules  accumulated energy
 *  - RowId       a DRAM row address within a bank
 *  - TenantId    a tenant of the multi-tenant pool service
 *
 * Quantities (Cycles, Bytes, Picojoules) support same-type additive
 * arithmetic and dimensionless scaling; identifiers (RowId, TenantId)
 * support only comparison and hashing. Every type exposes the raw
 * representation via value() for boundary code (JSON emission,
 * dimension-crossing math) — the lint check `unit-mix`
 * (tools/beacon-lint) keeps value() escapes from spreading back into
 * the model layers.
 */

#ifndef BEACON_COMMON_UNITS_HH
#define BEACON_COMMON_UNITS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

namespace beacon
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no deadline / never". */
constexpr Tick max_tick = ~Tick{0};

constexpr Tick
picoseconds(std::uint64_t n)
{
    return n;
}

constexpr Tick
nanoseconds(double n)
{
    return static_cast<Tick>(n * 1e3);
}

constexpr Tick
microseconds(double n)
{
    return static_cast<Tick>(n * 1e6);
}

constexpr Tick
milliseconds(double n)
{
    return static_cast<Tick>(n * 1e9);
}

/** Convert ticks to seconds for reporting. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

namespace detail
{

/**
 * CRTP base of an additive physical quantity. @p Derived is its own
 * tag: two distinct Derived types never interoperate, so a
 * `Cycles + Bytes` expression has no viable operator and fails to
 * compile.
 */
template <class Derived, class Rep>
class Quantity
{
  public:
    using rep = Rep;

    constexpr Quantity() = default;
    constexpr explicit Quantity(Rep v) : _v(v) {}

    /** Raw representation, for boundary code only. */
    constexpr Rep value() const { return _v; }

    /** @name Same-dimension additive arithmetic @{ */
    friend constexpr Derived
    operator+(Derived a, Derived b)
    {
        return Derived{static_cast<Rep>(a._v + b._v)};
    }

    friend constexpr Derived
    operator-(Derived a, Derived b)
    {
        return Derived{static_cast<Rep>(a._v - b._v)};
    }

    constexpr Derived &
    operator+=(Derived other)
    {
        _v = static_cast<Rep>(_v + other._v);
        return derived();
    }

    constexpr Derived &
    operator-=(Derived other)
    {
        _v = static_cast<Rep>(_v - other._v);
        return derived();
    }
    /** @} */

    /** @name Dimensionless scaling @{ */
    template <class Scalar,
              class = std::enable_if_t<std::is_arithmetic_v<Scalar>>>
    friend constexpr Derived
    operator*(Derived a, Scalar s)
    {
        return Derived{static_cast<Rep>(a._v * s)};
    }

    template <class Scalar,
              class = std::enable_if_t<std::is_arithmetic_v<Scalar>>>
    friend constexpr Derived
    operator*(Scalar s, Derived a)
    {
        return Derived{static_cast<Rep>(s * a._v)};
    }

    template <class Scalar,
              class = std::enable_if_t<std::is_arithmetic_v<Scalar>>>
    friend constexpr Derived
    operator/(Derived a, Scalar s)
    {
        return Derived{static_cast<Rep>(a._v / s)};
    }
    /** @} */

    /** Dimensionless ratio of two same-unit quantities. */
    friend constexpr double
    ratio(Derived a, Derived b)
    {
        return static_cast<double>(a._v) / static_cast<double>(b._v);
    }

    friend constexpr bool
    operator==(Derived a, Derived b)
    {
        return a._v == b._v;
    }

    friend constexpr bool
    operator!=(Derived a, Derived b)
    {
        return a._v != b._v;
    }

    friend constexpr bool
    operator<(Derived a, Derived b)
    {
        return a._v < b._v;
    }

    friend constexpr bool
    operator<=(Derived a, Derived b)
    {
        return a._v <= b._v;
    }

    friend constexpr bool
    operator>(Derived a, Derived b)
    {
        return a._v > b._v;
    }

    friend constexpr bool
    operator>=(Derived a, Derived b)
    {
        return a._v >= b._v;
    }

    /** Prints the bare number (keeps report output byte-stable). */
    friend std::ostream &
    operator<<(std::ostream &out, Derived q)
    {
        return out << q._v;
    }

  private:
    constexpr Derived &derived() { return static_cast<Derived &>(*this); }

    Rep _v{};
};

/**
 * CRTP base of an opaque identifier: comparable and hashable, no
 * arithmetic. Construction from the raw representation is explicit,
 * so a loop index or a RowId cannot silently become a TenantId.
 */
template <class Derived, class Rep>
class Identifier
{
  public:
    using rep = Rep;

    constexpr Identifier() = default;
    constexpr explicit Identifier(Rep v) : _v(v) {}

    /** Raw representation, for boundary code only. */
    constexpr Rep value() const { return _v; }

    friend constexpr bool
    operator==(Derived a, Derived b)
    {
        return a._v == b._v;
    }

    friend constexpr bool
    operator!=(Derived a, Derived b)
    {
        return a._v != b._v;
    }

    /** Ordering so the type can key a std::map (deterministic
     *  iteration, unlike the unordered containers beacon-lint
     *  flags on emission paths). */
    friend constexpr bool
    operator<(Derived a, Derived b)
    {
        return a._v < b._v;
    }

    friend std::ostream &
    operator<<(std::ostream &out, Derived id)
    {
        return out << id._v;
    }

  private:
    Rep _v{};
};

} // namespace detail

/** Cycle count within a clock domain. */
class Cycles : public detail::Quantity<Cycles, std::uint64_t>
{
    using Quantity::Quantity;
};

/** Byte count: sizes, capacities, traffic volumes. */
class Bytes : public detail::Quantity<Bytes, std::uint64_t>
{
    using Quantity::Quantity;
};

/** Accumulated energy in picojoules. */
class Picojoules : public detail::Quantity<Picojoules, double>
{
    using Quantity::Quantity;
};

/** DRAM row address within a bank. */
class RowId : public detail::Identifier<RowId, std::uint32_t>
{
    using Identifier::Identifier;
};

/**
 * Identifies a tenant of the multi-tenant pool service. The
 * default-constructed id is the untenanted tenant 0 used by
 * single-workload runs and infrastructure traffic.
 */
class TenantId : public detail::Identifier<TenantId, std::uint32_t>
{
    using Identifier::Identifier;
};

/** Tenant 0: single-workload runs and infrastructure traffic. */
inline constexpr TenantId untenanted_id{};

/**
 * Duration of @p n cycles of a clock with period @p period_ps — the
 * one sanctioned Cycles -> Tick crossing outside ClockDomain.
 */
constexpr Tick
cyclesToTicks(Cycles n, Tick period_ps)
{
    return n.value() * period_ps;
}

constexpr Bytes operator""_KiB(unsigned long long n)
{
    return Bytes{n << 10};
}

constexpr Bytes operator""_MiB(unsigned long long n)
{
    return Bytes{n << 20};
}

constexpr Bytes operator""_GiB(unsigned long long n)
{
    return Bytes{n << 30};
}

/**
 * Serialisation time of @p bytes over a link of @p gbps gigabytes per
 * second, in ticks (picoseconds).
 */
constexpr Tick
transferTime(Bytes bytes, double gb_per_s)
{
    // bytes / (GB/s) = ns; x1000 -> ps.
    return static_cast<Tick>(
        static_cast<double>(bytes.value()) / gb_per_s * 1e3 + 0.5);
}

} // namespace beacon

namespace std
{

template <>
struct hash<beacon::RowId>
{
    size_t
    operator()(beacon::RowId id) const noexcept
    {
        return hash<beacon::RowId::rep>{}(id.value());
    }
};

template <>
struct hash<beacon::TenantId>
{
    size_t
    operator()(beacon::TenantId id) const noexcept
    {
        return hash<beacon::TenantId::rep>{}(id.value());
    }
};

} // namespace std

#endif // BEACON_COMMON_UNITS_HH
