/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator and the synthetic dataset
 * generators draws from this xoshiro256** implementation so that runs
 * are reproducible from a single seed, independent of the standard
 * library implementation.
 */

#ifndef BEACON_COMMON_RNG_HH
#define BEACON_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace beacon
{

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with standard distributions when convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform integer in [0, bound); @p bound must be non-zero. */
    std::uint64_t next(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

  private:
    std::array<std::uint64_t, 4> state;
};

} // namespace beacon

#endif // BEACON_COMMON_RNG_HH
