#include "logging.hh"

#include <atomic>
#include <cstdlib>

namespace beacon
{

namespace
{

// Atomic: parallel sweep workers (accel/sweep.hh) may warn while
// another thread adjusts verbosity; a plain global would race.
std::atomic<LogLevel> global_log_level{LogLevel::Inform};

} // namespace

LogLevel
logLevel()
{
    return global_log_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_log_level.store(level, std::memory_order_relaxed);
}

namespace detail
{

namespace
{

// Atomic: a worker-lane BEACON_CHECK may fire while the coordinator
// constructs/destroys an Observability bundle.
std::atomic<PanicHook> panic_hook{nullptr};

} // namespace

void
setPanicHook(PanicHook hook)
{
    panic_hook.store(hook, std::memory_order_release);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    // Give the flight recorder (or any other installed hook) a
    // chance to persist post-mortem state; swap the hook out first
    // so a panic inside the hook aborts instead of recursing.
    if (PanicHook hook =
            panic_hook.exchange(nullptr, std::memory_order_acq_rel))
        hook(msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace beacon
