#include "logging.hh"

#include <cstdlib>

namespace beacon
{

namespace
{

LogLevel global_log_level = LogLevel::Inform;

} // namespace

LogLevel
logLevel()
{
    return global_log_level;
}

void
setLogLevel(LogLevel level)
{
    global_log_level = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (global_log_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (global_log_level >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace beacon
