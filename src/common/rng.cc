#include "rng.hh"

#include "logging.hh"

namespace beacon
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::next(std::uint64_t bound)
{
    BEACON_ASSERT(bound != 0, "bound must be non-zero");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    BEACON_ASSERT(lo <= hi, "empty range");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(next(span));
}

double
Rng::nextDouble()
{
    return ((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

} // namespace beacon
