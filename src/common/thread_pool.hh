/**
 * @file
 * Fixed-size worker-thread pool.
 *
 * The pool is the execution substrate of the parallel experiment
 * sweeps (accel/sweep.hh): workers pull submitted tasks from a FIFO
 * queue; submit() returns a std::future carrying the task's result
 * or exception. The destructor drains every queued task and joins
 * all workers, so a pool can never leave detached threads behind.
 */

#ifndef BEACON_COMMON_THREAD_POOL_HH
#define BEACON_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace beacon
{

/** A fixed set of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers; @p threads must be >= 1. */
    explicit ThreadPool(unsigned threads)
    {
        BEACON_ASSERT(threads >= 1,
                      "thread pool needs at least one worker");
        workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drain the queue, then join every worker. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            stopping = true;
        }
        cv.notify_all();
        for (std::thread &worker : workers)
            worker.join();
    }

    unsigned size() const { return unsigned(workers.size()); }

    /**
     * Enqueue @p fn; the returned future delivers its result (or
     * rethrows whatever it threw).
     */
    template <typename F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::move(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mtx);
            BEACON_ASSERT(!stopping,
                          "submit() on a stopping thread pool");
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notify_one();
        return result;
    }

    /** hardware_concurrency, clamped to at least one. */
    static unsigned
    defaultThreads()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mtx);
                cv.wait(lock, [this] {
                    return stopping || !queue.empty();
                });
                if (queue.empty())
                    return; // stopping and drained
                task = std::move(queue.front());
                queue.pop_front();
            }
            task();
        }
    }

    std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace beacon

#endif // BEACON_COMMON_THREAD_POOL_HH
