/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef BEACON_COMMON_INTMATH_HH
#define BEACON_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace beacon
{

/** True if @p n is a power of two (0 is not). */
template <typename T>
constexpr bool
isPowerOf2(T n)
{
    static_assert(std::is_unsigned_v<T>);
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); @p n must be non-zero. */
template <typename T>
constexpr unsigned
floorLog2(T n)
{
    static_assert(std::is_unsigned_v<T>);
    return std::bit_width(n) - 1;
}

/** Ceiling of log2(n); @p n must be non-zero. */
template <typename T>
constexpr unsigned
ceilLog2(T n)
{
    static_assert(std::is_unsigned_v<T>);
    return n <= 1 ? 0 : std::bit_width(n - 1);
}

/** Ceiling division: divCeil(7, 2) == 4. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p align. */
template <typename T>
constexpr T
roundUp(T a, T align)
{
    return divCeil(a, align) * align;
}

/** Round @p a down to a multiple of @p align. */
template <typename T>
constexpr T
roundDown(T a, T align)
{
    return (a / align) * align;
}

/** Extract bits [first, last] (inclusive, last >= first) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (value >> first) & mask;
}

/** Insert @p field into bits [first, last] of @p value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned last, unsigned first,
           std::uint64_t field)
{
    const unsigned nbits = last - first + 1;
    const std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (value & ~(mask << first)) | ((field & mask) << first);
}

} // namespace beacon

#endif // BEACON_COMMON_INTMATH_HH
