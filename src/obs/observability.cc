#include "observability.hh"

#include <cstdlib>
#include <fstream>

#include "common/logging.hh"

namespace beacon::obs
{

namespace
{

bool
envFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env && env[0] && !(env[0] == '0' && env[1] == '\0');
}

} // namespace

ObsConfig
ObsConfig::fromEnv()
{
    ObsConfig cfg;
    cfg.trace = envFlag("BEACON_TRACE");
    cfg.self_profile = envFlag("BEACON_SELF_PROFILE");
    cfg.request_trace = envFlag("BEACON_REQUEST_TRACE");
    if (const char *env = std::getenv("BEACON_TIMESERIES_NS")) {
        const long long ns = std::strtoll(env, nullptr, 10);
        if (ns > 0)
            cfg.sample_interval = std::uint64_t(ns) * 1000; // ns->ps
        else
            BEACON_WARN("ignoring invalid BEACON_TIMESERIES_NS='",
                        env, "'");
    }
    if (const char *env = std::getenv("BEACON_SLO_WINDOW_NS")) {
        const long long ns = std::strtoll(env, nullptr, 10);
        if (ns > 0)
            cfg.slo_window = std::uint64_t(ns) * 1000; // ns->ps
        else
            BEACON_WARN("ignoring invalid BEACON_SLO_WINDOW_NS='",
                        env, "'");
    }
    if (const char *env = std::getenv("BEACON_FLIGHT_RECORDER")) {
        if (env[0] == '0' && env[1] == '\0') {
            // explicit off
        } else if (env[0] == '1' && env[1] == '\0') {
            cfg.flight_recorder_path = "beacon-flightrec.json";
        } else if (env[0]) {
            cfg.flight_recorder_path = env;
        }
    }
    return cfg;
}

Observability::Observability(EventQueue &eq, const ObsConfig &cfg)
    : eq(eq), cfg(cfg)
{
#if BEACON_OBS_ENABLED
    if (cfg.trace) {
        sink_ = std::make_unique<TraceSink>(eq,
                                            cfg.trace_buffer_events);
        eq.setTraceSink(sink_.get());
    }
    if (cfg.request_trace) {
        reqtrace_ = std::make_unique<RequestTrace>(eq);
        eq.setRequestTrace(reqtrace_.get());
    }
    // Sharded engine: lane-emitted events/ops are staged per lane
    // and flushed by the barrier merge in canonical order. The queue
    // has one merge-hook slot, so two stagers share a fan-out.
    if (ShardedEventQueue *sq = eq.sharded()) {
        if (sink_ && reqtrace_) {
            fanout_ = std::make_unique<MergeHookFanout>();
            fanout_->add(sink_.get());
            fanout_->add(reqtrace_.get());
            sq->setMergeHook(fanout_.get());
        } else if (sink_) {
            sq->setMergeHook(sink_.get());
        } else if (reqtrace_) {
            sq->setMergeHook(reqtrace_.get());
        }
    }
    if (cfg.slo_window > 0) {
        slo_ = std::make_unique<SloMonitor>(eq, Tick(cfg.slo_window));
        slo_->start();
    }
    if (!cfg.flight_recorder_path.empty()) {
        flight_ =
            std::make_unique<FlightRecorder>(cfg.flight_recorder_path);
        eq.setFlightRecorder(flight_.get());
    }
    if (cfg.sample_interval > 0) {
        sampler_ =
            std::make_unique<Sampler>(eq, Tick(cfg.sample_interval));
        sampler_->start();
    }
    if (cfg.self_profile) {
        profiler_ = std::make_unique<SelfProfiler>();
        eq.setProfiler(profiler_.get());
    }
#else
    if (cfg.enabled())
        BEACON_WARN("telemetry requested but compiled out "
                    "(BEACON_OBS=OFF)");
#endif
}

Observability::~Observability()
{
    if (sink_)
        eq.setTraceSink(nullptr);
    if (reqtrace_)
        eq.setRequestTrace(nullptr);
    if (sink_ || reqtrace_) {
        if (ShardedEventQueue *sq = eq.sharded())
            sq->setMergeHook(nullptr);
    }
    if (flight_)
        eq.setFlightRecorder(nullptr);
    if (profiler_)
        eq.setProfiler(nullptr);
}

SelfProfileResult
Observability::selfProfile() const
{
    return profiler_ ? profiler_->result() : SelfProfileResult{};
}

void
Observability::finish()
{
    if (sampler_)
        sampler_->finish();
    if (slo_)
        slo_->finish();
}

bool
Observability::writeTrace(const std::string &path) const
{
    if (!sink_) {
        BEACON_WARN("no trace recorded; cannot write ", path);
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        BEACON_WARN("cannot open trace file ", path);
        return false;
    }
    sink_->writeJson(os);
    return bool(os);
}

bool
Observability::writeRequestTrace(const std::string &path) const
{
    if (!reqtrace_) {
        BEACON_WARN("no request trace recorded; cannot write ", path);
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        BEACON_WARN("cannot open request-trace file ", path);
        return false;
    }
    reqtrace_->writeJson(os);
    return bool(os);
}

bool
Observability::writeTimeseries(const std::string &path) const
{
    if (!sampler_) {
        BEACON_WARN("no time series recorded; cannot write ", path);
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        BEACON_WARN("cannot open time-series file ", path);
        return false;
    }
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        sampler_->writeCsv(os);
    else
        sampler_->writeJson(os);
    return bool(os);
}

} // namespace beacon::obs
