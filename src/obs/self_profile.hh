/**
 * @file
 * Host-side self-profiling of the event loop.
 *
 * SelfProfiler implements the sim layer's EventProfiler interface:
 * EventQueue::runOne brackets every callback with beginEvent/endEvent
 * and the profiler attributes host wall time and event counts to the
 * EventCat the event was scheduled under. Results are wall-clock
 * based and therefore non-deterministic; they are reported only in
 * runtime sections of bench JSON (excluded by
 * BEACON_BENCH_JSON_NO_WALL, like wall_seconds).
 */

#ifndef BEACON_OBS_SELF_PROFILE_HH
#define BEACON_OBS_SELF_PROFILE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/wall_clock.hh"
#include "sim/event_queue.hh"

namespace beacon::obs
{

/** Per-category accumulation. */
struct SelfProfileCat
{
    std::uint64_t events = 0;
    double wall_seconds = 0;
    /** Most expensive single callback seen, in seconds. */
    double max_event_seconds = 0;
};

/** Aggregated self-profile, snapshot via SelfProfiler::result(). */
struct SelfProfileResult
{
    bool enabled = false;
    std::uint64_t events = 0;
    double wall_seconds = 0;

    /** Indexed by EventCat. */
    std::array<SelfProfileCat, num_event_cats> by_cat{};

    /** Executed events per host second (0 when no time elapsed). */
    double eventsPerSecond() const
    {
        return wall_seconds > 0 ? double(events) / wall_seconds : 0;
    }

    /**
     * Category names ordered by descending wall time, costliest
     * first, empty categories skipped; at most @p k entries.
     */
    std::vector<std::string> topCategories(std::size_t k = 3) const;
};

/** EventProfiler implementation using the sanctioned WallClock. */
class SelfProfiler : public EventProfiler
{
  public:
    void
    beginEvent(EventCat, Tick) override
    {
        begin = WallClock::now();
    }

    void
    endEvent(EventCat cat) override
    {
        const double dt = WallClock::secondsSince(begin);
        SelfProfileCat &c = by_cat[std::size_t(cat)];
        ++c.events;
        c.wall_seconds += dt;
        if (dt > c.max_event_seconds)
            c.max_event_seconds = dt;
    }

    /**
     * Sharded execution: one private sub-profiler per worker lane,
     * so in-window attribution is race-free; result() merges them
     * into the serial view. Lane attribution is a measurement of the
     * host, not the model — categories keep their meaning, only the
     * accumulation is split.
     */
    void
    prepareLanes(std::size_t lanes) override
    {
        while (lane_profilers.size() < lanes)
            lane_profilers.push_back(
                std::make_unique<SelfProfiler>());
    }

    EventProfiler *
    laneProfiler(unsigned lane) override
    {
        return lane < lane_profilers.size()
                   ? lane_profilers[lane].get()
                   : nullptr;
    }

    SelfProfileResult result() const;

  private:
    WallClock::TimePoint begin{};
    std::array<SelfProfileCat, num_event_cats> by_cat{};
    std::vector<std::unique_ptr<SelfProfiler>> lane_profilers;
};

} // namespace beacon::obs

#endif // BEACON_OBS_SELF_PROFILE_HH
