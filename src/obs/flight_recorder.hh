/**
 * @file
 * Always-on-cheap post-mortem flight recorder.
 *
 * FlightRecorder keeps one bounded ring of recently executed event
 * descriptors per execution lane (plus the barrier lane on a sharded
 * queue). The queues feed it immediately before each callback runs,
 * so when a run dies — a BEACON_CHECK/BEACON_ASSERT failure, a
 * src/check protocol checker, or the BEACON_LANE_GUARD=trap guard,
 * all of which funnel through beacon::detail::panicImpl — the
 * trapping event itself plus the window of events leading up to it
 * are dumped as a versioned JSON file ("beacon-flightrec-1") before
 * the process aborts.
 *
 * Cost model: one branch per executed event when disabled (a null
 * pointer on the queue), three stores when enabled. Each ring has a
 * single writer (its lane's worker; serial/barrier execution runs on
 * the coordinator while workers are quiesced), so recording needs no
 * synchronisation. The panic-path dump reads the rings racily — the
 * surviving lanes may be mid-write — which is acceptable for a
 * best-effort post-mortem artifact and is flagged per ring in the
 * dump.
 */

#ifndef BEACON_OBS_FLIGHT_RECORDER_HH
#define BEACON_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace beacon::obs
{

class FlightRecorder : public EventRecorder
{
  public:
    /** Compact descriptor of one executed event. */
    struct Record
    {
        Tick when = 0;
        /** Ring-local execution ordinal (dense, per lane). */
        std::uint64_t seq = 0;
        EventCat cat = EventCat::Other;
    };

    /**
     * @p path receives the post-mortem JSON on dump().
     * @p per_lane_capacity bounds each ring (oldest overwritten).
     */
    explicit FlightRecorder(std::string path,
                            std::size_t per_lane_capacity = 256);
    ~FlightRecorder() override;

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Allocate @p rings rings (serial queue: 1; sharded queue:
     * lanes + 1, the last being the barrier lane). Called by
     * EventQueue::setFlightRecorder; grows only.
     */
    void prepare(std::size_t rings) override;

    /** Record an event about to execute on ring @p ring. */
    void
    note(std::size_t ring, Tick when, EventCat cat) override
    {
        Ring &r = rings_[ring];
        Record &rec = r.buf[r.next];
        rec.when = when;
        rec.seq = r.seq++;
        rec.cat = cat;
        r.next = r.next + 1 == r.buf.size() ? 0 : r.next + 1;
    }

    std::size_t numRings() const { return rings_.size(); }
    const std::string &path() const { return path_; }

    /** Ring @p ring oldest-first (tests; not panic-safe). */
    std::vector<Record> snapshot(std::size_t ring) const;

    /**
     * Write the post-mortem JSON to path(). @p why is a short cause
     * tag ("panic", "manual"), @p detail the failure message.
     * Returns false when the file cannot be written. Safe to call
     * from the panic path.
     */
    bool dump(const char *why, const std::string &detail) const;

    /**
     * Dump every live FlightRecorder. Installed as the panic hook
     * (common/logging) by the first constructed instance.
     */
    static void dumpAll(const std::string &detail);

  private:
    struct Ring
    {
        std::vector<Record> buf;
        std::size_t next = 0;
        std::uint64_t seq = 0;
    };

    std::string path_;
    std::size_t capacity;
    std::vector<Ring> rings_;
};

} // namespace beacon::obs

#endif // BEACON_OBS_FLIGHT_RECORDER_HH
