#include "request_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon::obs
{

namespace
{

/**
 * Attribution priority when component spans overlap: DRAM media time
 * wins over the switch span that encloses the hop, which wins over
 * the link span, which wins over PE compute. Matches the SpanKind
 * numeric order, asserted here so a reordering of the enum cannot
 * silently change breakdowns.
 */
static_assert(int(SpanKind::Queue) < int(SpanKind::Pe) &&
                  int(SpanKind::Pe) < int(SpanKind::Link) &&
                  int(SpanKind::Link) < int(SpanKind::Switch) &&
                  int(SpanKind::Switch) < int(SpanKind::Dram),
              "SpanKind must stay in attribution-priority order");

} // namespace

RequestTrace::RequestTrace(const EventQueue &eq, std::size_t max_jobs)
    : eq(eq), max_jobs(max_jobs ? max_jobs : 1)
{
}

void
RequestTrace::push(const Op &op)
{
    // Same staging rule as TraceSink::push: in-window lane callbacks
    // may not touch the shared maps; the barrier merge applies staged
    // ops in canonical event order.
    if (const ShardExecContext *ctx = currentShardContext();
        ctx && ctx->in_window &&
        static_cast<const EventQueue *>(ctx->queue) == &eq) {
        BEACON_ASSERT(ctx->lane < staged.size(),
                      "request-trace op from unprepared lane ",
                      ctx->lane);
        Op tagged = op;
        tagged.pop = ctx->pop;
        staged[ctx->lane].push_back(tagged);
        return;
    }
    apply(op);
}

void
RequestTrace::prepareLanes(std::size_t lanes)
{
    if (staged.size() < lanes) {
        staged.resize(lanes);
        staged_cursor.resize(lanes, 0);
    }
}

void
RequestTrace::commitLaneEvent(unsigned lane, std::uint64_t pop_idx)
{
    BEACON_ASSERT(lane < staged.size(),
                  "commit for unprepared lane ", lane);
    std::vector<Op> &buf = staged[lane];
    std::size_t &cursor = staged_cursor[lane];
    while (cursor < buf.size() && buf[cursor].pop <= pop_idx) {
        apply(buf[cursor]);
        ++cursor;
    }
    if (cursor == buf.size()) {
        buf.clear();
        cursor = 0;
    }
}

void
RequestTrace::apply(const Op &op)
{
    switch (op.kind) {
      case Op::Kind::Begin: {
        Open &o = open[op.job];
        o.tenant = op.tenant;
        o.submit = op.a;
        break;
      }
      case Op::Kind::Span: {
        auto it = open.find(op.job);
        if (it == open.end())
            break; // job already finished/rejected or never began
        it->second.spans.push_back(CompSpan{op.span, op.a, op.b});
        break;
      }
      case Op::Kind::End:
        finishJob(op.job, op.a);
        break;
      case Op::Kind::Reject:
        open.erase(op.job);
        break;
    }
}

void
RequestTrace::finishJob(std::uint64_t job, Tick end)
{
    auto it = open.find(job);
    if (it == open.end())
        return;
    Open &o = it->second;

    JobRecord rec;
    rec.job = job;
    rec.tenant = o.tenant;
    rec.submit = o.submit;
    rec.end = end < o.submit ? o.submit : end;
    rec.n_spans = std::uint32_t(o.spans.size());

    // Integer sweep-line over [submit, end]: clip spans to the job
    // lifetime, cut time at every span boundary, and attribute each
    // segment to the highest-priority span covering it (none ->
    // Queue). Every tick lands in exactly one bucket, so the
    // components sum to end - submit by construction.
    std::vector<CompSpan> spans;
    spans.reserve(o.spans.size());
    std::vector<Tick> cuts;
    cuts.reserve(2 * o.spans.size() + 2);
    cuts.push_back(rec.submit);
    cuts.push_back(rec.end);
    for (const CompSpan &s : o.spans) {
        const Tick a = std::max(s.a, rec.submit);
        const Tick b = std::min(s.b, rec.end);
        if (a >= b)
            continue;
        spans.push_back(CompSpan{s.kind, a, b});
        cuts.push_back(a);
        cuts.push_back(b);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        const Tick lo = cuts[i];
        const Tick hi = cuts[i + 1];
        SpanKind best = SpanKind::Queue;
        for (const CompSpan &s : spans) {
            if (s.a <= lo && s.b >= hi && int(s.kind) > int(best))
                best = s.kind;
        }
        rec.comp[std::size_t(best)] += hi - lo;
    }

    open.erase(it);
    if (done.size() >= max_jobs) {
        ++dropped;
        return;
    }
    done.push_back(rec);
}

void
RequestTrace::jobBegin(std::uint64_t job, std::uint32_t tenant)
{
    if (job == 0)
        return;
    Op op;
    op.kind = Op::Kind::Begin;
    op.job = job;
    op.tenant = tenant;
    op.a = eq.now();
    push(op);
}

void
RequestTrace::recordSpan(std::uint64_t job, SpanKind kind, Tick start,
                         Tick end)
{
    if (job == 0)
        return;
    Op op;
    op.kind = Op::Kind::Span;
    op.span = kind;
    op.job = job;
    op.a = start;
    op.b = end;
    push(op);
}

void
RequestTrace::jobEnd(std::uint64_t job)
{
    if (job == 0)
        return;
    Op op;
    op.kind = Op::Kind::End;
    op.job = job;
    op.a = eq.now();
    push(op);
}

void
RequestTrace::jobReject(std::uint64_t job)
{
    if (job == 0)
        return;
    Op op;
    op.kind = Op::Kind::Reject;
    op.job = job;
    push(op);
}

TenantBreakdown
RequestTrace::tenantBreakdown(std::uint32_t tenant) const
{
    TenantBreakdown agg;
    for (const JobRecord &rec : done) {
        if (rec.tenant != tenant)
            continue;
        ++agg.jobs;
        agg.total_latency += rec.latency();
        for (std::size_t k = 0; k < num_span_kinds; ++k)
            agg.comp[k] += rec.comp[k];
    }
    return agg;
}

void
RequestTrace::writeJson(std::ostream &os) const
{
    os << "{\n\"schema\": \"beacon-reqtrace-1\",\n";
    os << "\"dropped_jobs\": " << dropped << ",\n";
    os << "\"open_jobs\": " << open.size() << ",\n";
    os << "\"jobs\": [";
    bool first = true;
    for (const JobRecord &rec : done) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"job\":" << rec.job << ",\"tenant\":" << rec.tenant
           << ",\"submit\":" << rec.submit << ",\"end\":" << rec.end
           << ",\"latency\":" << rec.latency() << ",\"spans\":"
           << rec.n_spans << ",\"breakdown\":{";
        for (std::size_t k = 0; k < num_span_kinds; ++k) {
            if (k)
                os << ",";
            os << "\"" << spanKindName(SpanKind(k))
               << "\":" << rec.comp[k];
        }
        os << "}}";
    }
    os << "\n]\n}\n";
}

} // namespace beacon::obs
