/**
 * @file
 * Request-scoped causal trace: per-job component spans and an exact
 * latency breakdown.
 *
 * RequestTrace collects, per orchestrator job, the component spans
 * the job's causal path touched (PE compute, CXL link, switch, DRAM
 * media) between submission and completion. At completion it runs an
 * integer sweep-line over [submit, end] that attributes every tick
 * to exactly one SpanKind — overlaps resolve to the highest-priority
 * category and uncovered time counts as Queue — so the breakdown
 * components always sum to the job's end-to-end latency exactly
 * (pure tick arithmetic, no floats).
 *
 * Sharded execution: like TraceSink, every operation emitted by an
 * in-window lane callback is staged in a per-lane buffer and applied
 * by the barrier merge in canonical event order
 * (LaneMergeHook::commitLaneEvent). Causality guarantees a job's
 * End op merges after every span recorded for it (each span's
 * emitting event canonically precedes the completion chain), so the
 * applied state — and writeJson() output — is byte-identical to a
 * serial run.
 */

#ifndef BEACON_OBS_REQUEST_TRACE_HH
#define BEACON_OBS_REQUEST_TRACE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "obs/request_context.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_event_queue.hh"

namespace beacon::obs
{

/** Per-tick attribution of one finished job (see file comment). */
struct JobRecord
{
    std::uint64_t job = 0;
    std::uint32_t tenant = 0;
    Tick submit = 0;
    Tick end = 0;
    /** Ticks per SpanKind; sums to end - submit exactly. */
    std::array<Tick, num_span_kinds> comp{};
    /** Component spans recorded before completion. */
    std::uint32_t n_spans = 0;

    Tick latency() const { return end - submit; }
};

/** Per-tenant totals over all finished jobs (report aggregation). */
struct TenantBreakdown
{
    std::uint64_t jobs = 0;
    Tick total_latency = 0;
    std::array<Tick, num_span_kinds> comp{};
};

class RequestTrace : public LaneMergeHook
{
  public:
    explicit RequestTrace(const EventQueue &eq,
                          std::size_t max_jobs = std::size_t(1) << 20);

    /** Job @p job submitted now by tenant @p tenant. */
    void jobBegin(std::uint64_t job, std::uint32_t tenant);

    /**
     * Attribute [@p start, @p end) of job @p job to @p kind. Spans
     * may be recorded with a future end tick (a PE span is recorded
     * when the compute is scheduled); the sweep clips them to the
     * job's lifetime. job 0 is ignored so call sites need no guard
     * beyond fetching the RequestTrace pointer.
     */
    void recordSpan(std::uint64_t job, SpanKind kind, Tick start,
                    Tick end);

    /** Job @p job completed now: compute and store its breakdown. */
    void jobEnd(std::uint64_t job);

    /** Job @p job was rejected at admission: drop its open state. */
    void jobReject(std::uint64_t job);

    /** Finished-job records in completion (canonical) order. */
    const std::vector<JobRecord> &records() const { return done; }

    /** Jobs begun but not yet ended/rejected (0 after a full run). */
    std::size_t openJobs() const { return open.size(); }

    /** Finished jobs discarded because max_jobs was reached. */
    std::uint64_t droppedJobs() const { return dropped; }

    /** Totals for @p tenant across all recorded jobs. */
    TenantBreakdown tenantBreakdown(std::uint32_t tenant) const;

    /** Versioned JSON dump ("beacon-reqtrace-1"), completion order. */
    void writeJson(std::ostream &os) const;

    /** @name LaneMergeHook (sharded queues) @{ */
    void prepareLanes(std::size_t lanes) override;
    void commitLaneEvent(unsigned lane,
                         std::uint64_t pop_idx) override;
    /** @} */

  private:
    /** One component span attached to an open job. */
    struct CompSpan
    {
        SpanKind kind = SpanKind::Queue;
        Tick a = 0;
        Tick b = 0;
    };

    /** An in-flight job's accumulated state. */
    struct Open
    {
        std::uint32_t tenant = 0;
        Tick submit = 0;
        std::vector<CompSpan> spans;
    };

    /** A staged operation, tagged with its emitter's pop index. */
    struct Op
    {
        enum class Kind : std::uint8_t
        {
            Begin,
            Span,
            End,
            Reject,
        };

        std::uint64_t pop = 0;
        Kind kind = Kind::Begin;
        SpanKind span = SpanKind::Queue;
        std::uint64_t job = 0;
        std::uint32_t tenant = 0;
        Tick a = 0;
        Tick b = 0;
    };

    void push(const Op &op);
    void apply(const Op &op);
    void finishJob(std::uint64_t job, Tick end);

    const EventQueue &eq;
    std::size_t max_jobs;
    // Canonical-order state: mutated only from quiesced contexts
    // (serial execution, barrier merge).
    // beacon-lint: shared-state(RequestTrace.open, merge-committed)
    std::unordered_map<std::uint64_t, Open> open;
    std::vector<JobRecord> done;
    std::uint64_t dropped = 0;
    /** Per-lane staging buffers + flush cursors (see file comment). */
    std::vector<std::vector<Op>> staged;
    std::vector<std::size_t> staged_cursor;
};

} // namespace beacon::obs

/**
 * Request-trace entry point for instrumented components: the
 * RequestTrace attached to an EventQueue, or a compile-time nullptr
 * when BEACON_OBS is off.
 */
#if BEACON_OBS_ENABLED
#define BEACON_REQUEST_TRACE(eq) ((eq).requestTrace())
#else
#define BEACON_REQUEST_TRACE(eq) \
    (static_cast<::beacon::obs::RequestTrace *>(nullptr))
#endif

#endif // BEACON_OBS_REQUEST_TRACE_HH
