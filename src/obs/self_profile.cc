#include "self_profile.hh"

#include <algorithm>

namespace beacon::obs
{

std::vector<std::string>
SelfProfileResult::topCategories(std::size_t k) const
{
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < by_cat.size(); ++i)
        if (by_cat[i].events)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return by_cat[a].wall_seconds >
                                by_cat[b].wall_seconds;
                     });
    if (order.size() > k)
        order.resize(k);
    std::vector<std::string> names;
    names.reserve(order.size());
    for (const std::size_t i : order)
        names.emplace_back(eventCatName(EventCat(i)));
    return names;
}

SelfProfileResult
SelfProfiler::result() const
{
    SelfProfileResult r;
    r.enabled = true;
    r.by_cat = by_cat;
    for (const auto &lane : lane_profilers) {
        const SelfProfileResult sub = lane->result();
        for (std::size_t i = 0; i < r.by_cat.size(); ++i) {
            r.by_cat[i].events += sub.by_cat[i].events;
            r.by_cat[i].wall_seconds += sub.by_cat[i].wall_seconds;
            r.by_cat[i].max_event_seconds =
                std::max(r.by_cat[i].max_event_seconds,
                         sub.by_cat[i].max_event_seconds);
        }
    }
    for (const SelfProfileCat &c : r.by_cat) {
        r.events += c.events;
        r.wall_seconds += c.wall_seconds;
    }
    return r;
}

} // namespace beacon::obs
