#include "slo.hh"

#include "common/logging.hh"

namespace beacon::obs
{

namespace
{

/** Index of the most significant set bit (v > 0). Portable; the
 *  loop only runs on the job-completion path, never per event. */
unsigned
msb64(std::uint64_t v)
{
    unsigned m = 0;
    while (v >>= 1)
        ++m;
    return m;
}

} // namespace

std::uint32_t
LogHistogram::bucketIndex(std::uint64_t v)
{
    constexpr std::uint64_t sub_count = std::uint64_t(1) << sub_bits;
    if (v < sub_count)
        return std::uint32_t(v); // exact buckets for small values
    const unsigned m = msb64(v);
    const unsigned shift = m - sub_bits;
    const std::uint32_t sub =
        std::uint32_t((v >> shift) & (sub_count - 1));
    return ((m - sub_bits + 1) << sub_bits) + sub;
}

std::uint64_t
LogHistogram::bucketUpper(std::uint32_t idx)
{
    BEACON_DCHECK(idx < num_buckets, "bucket index out of range");
    constexpr std::uint64_t sub_count = std::uint64_t(1) << sub_bits;
    const std::uint32_t octave = idx >> sub_bits;
    if (octave == 0)
        return idx; // exact buckets
    const std::uint64_t sub = idx & (sub_count - 1);
    const unsigned shift = octave - 1;
    return ((sub + sub_count + 1) << shift) - 1;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (std::size_t i = 0; i < num_buckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
}

void
LogHistogram::clear()
{
    buckets_.fill(0);
    count_ = 0;
}

std::uint64_t
LogHistogram::percentile(unsigned q) const
{
    if (count_ == 0)
        return 0;
    if (q > 100)
        q = 100;
    // ceil(q/100 * count), 1-based; q*count fits u64 for any
    // realistic job count (q <= 100).
    std::uint64_t rank = (std::uint64_t(q) * count_ + 99) / 100;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < num_buckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return bucketUpper(std::uint32_t(i));
    }
    return bucketUpper(num_buckets - 1); // unreachable when counts sum
}

SloMonitor::SloMonitor(EventQueue &eq, Tick window)
    : eq(eq), window_(window)
{
    BEACON_CHECK(window_ > 0, "SloMonitor window must be positive");
}

SloMonitor::~SloMonitor()
{
    if (armed && eq.scheduled(pending_ev))
        eq.cancel(pending_ev);
}

unsigned
SloMonitor::addTenant(std::string name, Tick target)
{
    Tenant t;
    t.name = std::move(name);
    t.target = target;
    tenants.push_back(std::move(t));
    return unsigned(tenants.size() - 1);
}

void
SloMonitor::start()
{
    if (armed)
        return;
    armed = true;
    last_roll = eq.now();
    reschedule();
}

void
SloMonitor::reschedule()
{
    // EventCat::Sampler: a sharded queue routes the roll to the
    // barrier lane, so it reads/clears per-tenant histograms only
    // while every worker lane is quiesced.
    pending_ev = eq.scheduleIn(
        window_, [this] { rollNow(); reschedule(); },
        EventCat::Sampler);
}

void
SloMonitor::rollNow()
{
    for (Tenant &t : tenants) {
        t.last.p50 = Tick(t.cur.percentile(50));
        t.last.p99 = Tick(t.cur.percentile(99));
        t.last.jobs = t.cur_jobs;
        t.last.breaches = t.cur_breaches;
        t.total.merge(t.cur);
        t.total_jobs += t.cur_jobs;
        t.total_breaches += t.cur_breaches;
        t.cur.clear();
        t.cur_jobs = 0;
        t.cur_breaches = 0;
    }
    last_roll = eq.now();
    dirty = false;
    ++n_windows;
}

void
SloMonitor::finish()
{
    if (!armed)
        return;
    armed = false;
    if (eq.scheduled(pending_ev))
        eq.cancel(pending_ev);
    if (dirty)
        rollNow(); // close the final partial window
}

void
SloMonitor::record(unsigned tenant, Tick latency)
{
    Tenant &t = tenants.at(tenant);
    t.cur.add(latency);
    ++t.cur_jobs;
    if (t.target > 0 && latency > t.target)
        ++t.cur_breaches;
    dirty = true;
}

double
SloMonitor::burnRate(unsigned t) const
{
    const WindowStats &w = tenants.at(t).last;
    return w.jobs ? double(w.breaches) / double(w.jobs) : 0.0;
}

} // namespace beacon::obs
