#include "flight_recorder.hh"

#include <algorithm>
#include <fstream>
#include <mutex>

#include "common/logging.hh"

namespace beacon::obs
{

namespace
{

/** Live recorders, in construction order. The mutex is only taken
 *  at construction/destruction and on the (already fatal) dump-all
 *  path, never while events execute. */
std::mutex registry_mutex;
std::vector<FlightRecorder *> registry;

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

FlightRecorder::FlightRecorder(std::string path,
                               std::size_t per_lane_capacity)
    : path_(std::move(path)),
      capacity(per_lane_capacity ? per_lane_capacity : 1)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    registry.push_back(this);
    // First recorder installs the process-wide panic hook so any
    // BEACON_CHECK / BEACON_ASSERT / lane-guard trap dumps the rings
    // before aborting. Idempotent: setPanicHook stores a pointer.
    detail::setPanicHook(&FlightRecorder::dumpAll);
}

FlightRecorder::~FlightRecorder()
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    registry.erase(std::remove(registry.begin(), registry.end(), this),
                   registry.end());
}

void
FlightRecorder::prepare(std::size_t rings)
{
    if (rings_.size() >= rings)
        return;
    const std::size_t old = rings_.size();
    rings_.resize(rings);
    for (std::size_t i = old; i < rings_.size(); ++i)
        rings_[i].buf.resize(capacity);
}

std::vector<FlightRecorder::Record>
FlightRecorder::snapshot(std::size_t ring) const
{
    std::vector<Record> out;
    const Ring &r = rings_.at(ring);
    const std::size_t n =
        std::size_t(std::min<std::uint64_t>(r.seq, r.buf.size()));
    const std::size_t first =
        r.seq > r.buf.size() ? r.next : 0;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(r.buf[(first + i) % r.buf.size()]);
    return out;
}

bool
FlightRecorder::dump(const char *why, const std::string &detail) const
{
    std::ofstream os(path_);
    if (!os)
        return false;
    os << "{\n\"schema\": \"beacon-flightrec-1\",\n";
    os << "\"reason\": \"" << escape(why) << "\",\n";
    os << "\"detail\": \"" << escape(detail) << "\",\n";
    os << "\"rings\": [";
    for (std::size_t ring = 0; ring < rings_.size(); ++ring) {
        os << (ring ? ",\n" : "\n");
        const Ring &r = rings_[ring];
        os << "{\"lane\":" << ring << ",\"executed\":" << r.seq
           << ",\"records\":[";
        // Panic path: other lanes may be mid-write; read racily and
        // emit what is there (best effort, see header).
        bool first_rec = true;
        for (const Record &rec : snapshot(ring)) {
            os << (first_rec ? "" : ",");
            first_rec = false;
            os << "{\"when\":" << rec.when << ",\"seq\":" << rec.seq
               << ",\"cat\":\"" << eventCatName(rec.cat) << "\"}";
        }
        os << "]}";
    }
    os << "\n]\n}\n";
    os.flush();
    return bool(os);
}

void
FlightRecorder::dumpAll(const std::string &detail)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    for (const FlightRecorder *fr : registry) {
        if (fr->dump("panic", detail))
            std::cerr << "flight recorder: wrote " << fr->path()
                      << std::endl;
        else
            std::cerr << "flight recorder: cannot write "
                      << fr->path() << std::endl;
    }
}

} // namespace beacon::obs
