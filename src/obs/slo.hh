/**
 * @file
 * Live per-tenant SLO monitoring: streaming log-bucket latency
 * histograms with windowed percentiles and burn-rate counters.
 *
 * LogHistogram is a fixed-shape HDR-style histogram (log2 major
 * buckets, 3 sub-bucket bits => at most ~9% relative bucket width)
 * over unsigned tick values. Everything is u64 integer arithmetic:
 * add/merge/percentile are exact functions of the recorded multiset
 * of bucket indices, so histograms are bit-identical across hosts
 * and BEACON_DES_SHARDS settings.
 *
 * SloMonitor keeps one histogram pair per tenant (current window +
 * lifetime), rolls windows on a self-scheduled EventCat::Sampler
 * event (barrier lane on a sharded queue: the roll runs only while
 * every worker lane is quiesced, at a deterministic point of the
 * canonical order), and exposes last-closed-window p50/p99 and
 * SLO burn rate for Sampler time-series registration.
 */

#ifndef BEACON_OBS_SLO_HH
#define BEACON_OBS_SLO_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace beacon::obs
{

/** Fixed log-bucket histogram over u64 values (see file comment). */
class LogHistogram
{
  public:
    /** Sub-bucket resolution bits per octave. */
    static constexpr unsigned sub_bits = 3;

    /** Bucket count covering the full u64 range. */
    static constexpr std::size_t num_buckets = 512;

    /** Bucket index of @p v; monotone non-decreasing in v. */
    static std::uint32_t bucketIndex(std::uint64_t v);

    /** Largest value mapping to bucket @p idx (reported quantile). */
    static std::uint64_t bucketUpper(std::uint32_t idx);

    void
    add(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
    }

    /** Pointwise sum; equals the histogram of the merged multiset. */
    void merge(const LogHistogram &other);

    void clear();

    std::uint64_t count() const { return count_; }

    /**
     * Quantile @p q in [0, 100] under the exact ceil-rank rule of
     * sim/stats.hh quantileSorted: the bucket upper bound of the
     * sample with 1-based rank max(1, ceil(q/100 * count)). Returns
     * 0 on an empty histogram.
     */
    std::uint64_t percentile(unsigned q) const;

    const std::array<std::uint64_t, num_buckets> &
    buckets() const
    {
        return buckets_;
    }

  private:
    std::array<std::uint64_t, num_buckets> buckets_{};
    std::uint64_t count_ = 0;
};

/**
 * Per-tenant windowed SLO monitor.
 *
 * record() is called at job completion on the canonical execution
 * path (the orchestrator's lane-0 completion events); window rolls
 * and all reads run on quiesced contexts (EventCat::Sampler /
 * report collection), so no lock is needed and results are
 * byte-identical serial vs. sharded.
 */
class SloMonitor
{
  public:
    /** Snapshot of one closed window. */
    struct WindowStats
    {
        Tick p50 = 0;
        Tick p99 = 0;
        std::uint64_t jobs = 0;
        std::uint64_t breaches = 0;
    };

    /** @p window is the roll interval in ticks (> 0). */
    SloMonitor(EventQueue &eq, Tick window);
    ~SloMonitor();

    SloMonitor(const SloMonitor &) = delete;
    SloMonitor &operator=(const SloMonitor &) = delete;

    /**
     * Register a tenant; @p target is the SLO latency target in
     * ticks (0 = no target: jobs are recorded but never count as
     * breaches). Returns the tenant index expected by record().
     */
    unsigned addTenant(std::string name, Tick target);

    /** Arm the first window roll at now() + window. Idempotent. */
    void start();

    /**
     * Cancel the pending roll and close one final partial window if
     * any job completed since the last roll. Idempotent.
     */
    void finish();

    /** Job for tenant @p tenant completed with @p latency ticks. */
    void record(unsigned tenant, Tick latency);

    Tick window() const { return window_; }
    std::size_t numTenants() const { return tenants.size(); }
    const std::string &tenantName(unsigned t) const
    {
        return tenants.at(t).name;
    }
    Tick target(unsigned t) const { return tenants.at(t).target; }

    /** Stats of the last closed window (zeros before the first). */
    const WindowStats &lastWindow(unsigned t) const
    {
        return tenants.at(t).last;
    }

    /**
     * Breach fraction of the last closed window in [0, 1]
     * (0 when the window saw no jobs) — the SLO burn rate.
     */
    double burnRate(unsigned t) const;

    /** Lifetime totals (closed windows only until finish()). */
    std::uint64_t totalJobs(unsigned t) const
    {
        return tenants.at(t).total_jobs;
    }
    std::uint64_t totalBreaches(unsigned t) const
    {
        return tenants.at(t).total_breaches;
    }
    const LogHistogram &totalHistogram(unsigned t) const
    {
        return tenants.at(t).total;
    }

    /** Windows closed so far (including the finish() partial). */
    std::uint64_t windowsClosed() const { return n_windows; }

  private:
    struct Tenant
    {
        std::string name;
        Tick target = 0;
        LogHistogram cur;
        LogHistogram total;
        std::uint64_t cur_jobs = 0;
        std::uint64_t cur_breaches = 0;
        std::uint64_t total_jobs = 0;
        std::uint64_t total_breaches = 0;
        WindowStats last;
    };

    void rollNow();
    void reschedule();

    EventQueue &eq;
    Tick window_;
    EventId pending_ev = 0;
    bool armed = false;
    Tick last_roll = 0;
    bool dirty = false; // a record() happened since the last roll
    std::uint64_t n_windows = 0;
    std::vector<Tenant> tenants;
};

} // namespace beacon::obs

#endif // BEACON_OBS_SLO_HH
