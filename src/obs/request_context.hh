/**
 * @file
 * Request-scoped identity carried along a job's causal path.
 *
 * A RequestContext names one orchestrator job (job id, tenant id,
 * span id) as it crosses layer boundaries: service::Orchestrator
 * stamps it into the submitted task, NdpModule copies it onto every
 * AccessRequest, the fabric layers forward it hop by hop, and
 * DramController sees it on the MemRequest. Job id 0 is reserved for
 * "no request context" (direct/driver traffic), so every
 * instrumentation site can gate on `job != 0` alone.
 *
 * This header is a dependency-free leaf: the dram/ndp/cxl request
 * structs embed the ids as plain integers and only obs code needs
 * the aggregate type.
 */

#ifndef BEACON_OBS_REQUEST_CONTEXT_HH
#define BEACON_OBS_REQUEST_CONTEXT_HH

#include <cstdint>

namespace beacon::obs
{

/** Identity of one in-flight orchestrator job. */
struct RequestContext
{
    /** Orchestrator-wide job id; 0 = no request attribution. */
    std::uint64_t job = 0;

    /** Owning tenant index (orchestrator numbering). */
    std::uint32_t tenant = 0;

    /** Span id within the job's tree (0 = the root job span). */
    std::uint32_t span = 0;

    bool valid() const { return job != 0; }
};

/**
 * Latency-breakdown category of one component span. The per-job
 * breakdown attributes every tick of [submit, complete] to exactly
 * one category; ticks covered by no component span count as Queue
 * (admission + slot + packer wait). When spans overlap, the
 * higher-valued category wins (DRAM media time beats the switch span
 * that encloses the hop, which beats the link span, which beats PE
 * compute overlap).
 */
enum class SpanKind : std::uint8_t
{
    Queue = 0, //!< waiting: admission, slots, batching (implicit)
    Pe,        //!< NDP processing-element compute
    Link,      //!< CXL link flits in flight
    Switch,    //!< switch buffering / bus occupancy
    Dram,      //!< DRAM media time (enqueue to data end)
};

inline constexpr std::size_t num_span_kinds = 5;

/** Stable lower-case name for a span kind (JSON keys). */
constexpr const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Pe: return "pe";
      case SpanKind::Link: return "link";
      case SpanKind::Switch: return "switch";
      case SpanKind::Dram: return "dram";
      case SpanKind::Queue: break;
    }
    return "queue";
}

} // namespace beacon::obs

#endif // BEACON_OBS_REQUEST_CONTEXT_HH
