#include "sampler.hh"

#include <cstdio>

#include "common/logging.hh"

namespace beacon::obs
{

namespace
{

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

Sampler::Sampler(EventQueue &eq, Tick interval)
    : eq(eq), interval_(interval)
{
    BEACON_ASSERT(interval > 0, "sampler interval must be positive");
}

Sampler::~Sampler()
{
    if (armed)
        eq.cancel(pending_ev);
}

void
Sampler::addLevel(std::string label, std::function<double()> read,
                  double scale)
{
    BEACON_ASSERT(rows_.empty(),
                  "series must be registered before sampling starts");
    series.push_back({std::move(label), std::move(read),
                      SeriesKind::Level, scale});
}

void
Sampler::addRate(std::string label, std::function<double()> read,
                 double scale)
{
    BEACON_ASSERT(rows_.empty(),
                  "series must be registered before sampling starts");
    Series s{std::move(label), std::move(read), SeriesKind::Rate,
             scale};
    s.prev = s.read();
    series.push_back(std::move(s));
}

void
Sampler::addCounterRate(std::string label, const StatRegistry &stats,
                        std::string substring, double scale)
{
    addRate(std::move(label),
            [&stats, substring = std::move(substring)] {
                return stats.sumMatching(substring);
            },
            scale);
}

void
Sampler::addCounterRate(std::string label, const StatRegistry &stats,
                        std::vector<std::string> substrings,
                        double scale)
{
    addRate(std::move(label),
            [&stats, substrings = std::move(substrings)] {
                double total = 0;
                for (const std::string &substring : substrings)
                    total += stats.sumMatching(substring);
                return total;
            },
            scale);
}

void
Sampler::start()
{
    if (armed)
        return;
    armed = true;
    last_sample_tick = eq.now();
    reschedule();
}

void
Sampler::reschedule()
{
    pending_ev = eq.scheduleIn(
        interval_,
        [this] {
            sampleNow();
            reschedule();
        },
        EventCat::Sampler);
}

void
Sampler::sampleNow()
{
    const Tick now = eq.now();
    const Tick dt = now - last_sample_tick;
    if (dt == 0)
        return;
    const double dt_seconds = double(dt) * 1e-12; // ticks are ps
    Row row;
    row.tick = now;
    row.values.reserve(series.size());
    for (Series &s : series) {
        const double cur = s.read();
        if (s.kind == SeriesKind::Level) {
            row.values.push_back(cur * s.scale);
        } else {
            row.values.push_back((cur - s.prev) * s.scale /
                                 dt_seconds);
            s.prev = cur;
        }
    }
    rows_.push_back(std::move(row));
    last_sample_tick = now;
}

void
Sampler::finish()
{
    if (!armed)
        return;
    eq.cancel(pending_ev);
    armed = false;
    // Final partial interval so the tail of the run is not lost.
    sampleNow();
}

std::vector<std::string>
Sampler::labels() const
{
    std::vector<std::string> out;
    out.reserve(series.size());
    for (const Series &s : series)
        out.push_back(s.label);
    return out;
}

void
Sampler::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"schema\": \"beacon-timeseries-1\",\n";
    os << "  \"interval_ticks\": " << interval_ << ",\n";
    os << "  \"series\": [";
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            os << ", ";
        os << "\"" << escape(series[i].label) << "\"";
    }
    os << "],\n";
    os << "  \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            os << ",";
        os << "\n    {\"tick\": " << rows_[r].tick << ", \"values\": [";
        for (std::size_t i = 0; i < rows_[r].values.size(); ++i) {
            if (i)
                os << ", ";
            os << jsonNumber(rows_[r].values[i]);
        }
        os << "]}";
    }
    if (!rows_.empty())
        os << "\n  ";
    os << "]\n}\n";
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const Series &s : series)
        os << "," << s.label;
    os << "\n";
    for (const Row &row : rows_) {
        os << row.tick;
        for (const double v : row.values)
            os << "," << jsonNumber(v);
        os << "\n";
    }
}

} // namespace beacon::obs
