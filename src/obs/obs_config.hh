/**
 * @file
 * Compile-time and runtime switches for the telemetry subsystem.
 *
 * This header is a dependency-free leaf so that SystemParams (and the
 * sim layer's instrumentation macros) can include it without pulling
 * the rest of src/obs into every translation unit.
 *
 * Two gates stack:
 *  - compile time: BEACON_OBS_ENABLED (CMake option BEACON_OBS,
 *    default ON). When 0, instrumentation sites fold to a literal
 *    nullptr sink and dead-code-eliminate entirely.
 *  - run time: ObsConfig. All fields default to "off"; a default
 *    ObsConfig makes NdpSystem skip constructing any obs machinery,
 *    so the only residual cost is one null-pointer test per
 *    instrumented site.
 */

#ifndef BEACON_OBS_OBS_CONFIG_HH
#define BEACON_OBS_OBS_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#ifndef BEACON_OBS_ENABLED
#define BEACON_OBS_ENABLED 1
#endif

namespace beacon::obs
{

/** Runtime telemetry configuration, carried by SystemParams. */
struct ObsConfig
{
    /** Record trace events into the ring buffer. */
    bool trace = false;

    /** Ring-buffer capacity in events (oldest dropped when full). */
    std::size_t trace_buffer_events = std::size_t(1) << 16;

    /**
     * Sampling interval in ticks (picoseconds); 0 disables the
     * time-series sampler.
     */
    std::uint64_t sample_interval = 0;

    /**
     * Host-side self-profiling of EventQueue::runOne. Wall-clock
     * based, so results are non-deterministic by design and are only
     * reported in runtime sections of bench JSON.
     */
    bool self_profile = false;

    /**
     * Request-scoped causal tracing (obs::RequestTrace): per-job
     * component spans, flow events, and the exact per-job latency
     * breakdown. Deterministic; byte-identical serial vs. sharded.
     */
    bool request_trace = false;

    /**
     * SLO window-roll interval in ticks (picoseconds); 0 disables
     * the per-tenant live SLO monitor (obs::SloMonitor).
     */
    std::uint64_t slo_window = 0;

    /**
     * Post-mortem flight-recorder output path; empty disables the
     * recorder (obs::FlightRecorder). The dump is written when a
     * BEACON_CHECK / BEACON_ASSERT / lane-guard trap aborts.
     */
    std::string flight_recorder_path;

    /** True when any telemetry feature is requested. */
    bool enabled() const
    {
        return trace || sample_interval > 0 || self_profile ||
               request_trace || slo_window > 0 ||
               !flight_recorder_path.empty();
    }

    /**
     * Configuration from the environment: BEACON_TRACE=1,
     * BEACON_TIMESERIES_NS=<interval>, BEACON_SELF_PROFILE=1,
     * BEACON_REQUEST_TRACE=1, BEACON_SLO_WINDOW_NS=<interval>, and
     * BEACON_FLIGHT_RECORDER=1 (default dump path) or =<path>.
     * Used as the SystemParams default so any harness can be traced
     * without plumbing flags.
     */
    static ObsConfig fromEnv();
};

} // namespace beacon::obs

#endif // BEACON_OBS_OBS_CONFIG_HH
