/**
 * @file
 * The sanctioned wall-clock API for host-side self-profiling.
 *
 * Simulation code must never read a wall clock (beacon-lint's
 * determinism-wallclock check enforces this repo-wide). Self-profiling
 * the simulator itself is the one legitimate exception, and this
 * header is the single funnel for it: anything built on obs::WallClock
 * is non-deterministic by definition and must only feed runtime-only
 * report sections (never stats, traces, or golden output).
 */
// beacon-lint: allow-file(determinism-wallclock)

#ifndef BEACON_OBS_WALL_CLOCK_HH
#define BEACON_OBS_WALL_CLOCK_HH

#include <chrono>

namespace beacon::obs
{

/** Monotonic host clock wrapper. */
class WallClock
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;

    static TimePoint now() { return std::chrono::steady_clock::now(); }

    /** Seconds elapsed since @p since. */
    static double
    secondsSince(TimePoint since)
    {
        return std::chrono::duration<double>(now() - since).count();
    }
};

} // namespace beacon::obs

#endif // BEACON_OBS_WALL_CLOCK_HH
