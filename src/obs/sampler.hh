/**
 * @file
 * Tick-driven time-series sampling of registered metrics.
 *
 * The Sampler schedules itself on the EventQueue every N ticks
 * (EventCat::Sampler) and snapshots a set of registered series:
 * either instantaneous levels (queue depth, utilisation read-outs) or
 * per-interval rates derived from monotonically increasing counters
 * (bytes -> GB/s). Being event-driven, sampling is part of the
 * deterministic schedule and its output is bit-stable across hosts
 * and worker counts.
 *
 * All run loops in the repo drain the queue through predicates
 * (drainUntil / orchestrator completion), so the sampler's pending
 * self-reschedule never stalls a run; finish() cancels it and records
 * one final partial-interval row.
 */

#ifndef BEACON_OBS_SAMPLER_HH
#define BEACON_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace beacon::obs
{

/** How a registered series turns readings into row values. */
enum class SeriesKind
{
    /** Report read() * scale as-is. */
    Level,
    /** Report (read() - previous) * scale / interval_seconds. */
    Rate,
};

class Sampler
{
  public:
    /** One sampled row: absolute tick plus one value per series. */
    struct Row
    {
        Tick tick = 0;
        std::vector<double> values;
    };

    Sampler(EventQueue &eq, Tick interval);
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register an instantaneous series; call before start(). */
    void addLevel(std::string label, std::function<double()> read,
                  double scale = 1.0);

    /** Register a per-interval rate over a monotonic reading. */
    void addRate(std::string label, std::function<double()> read,
                 double scale = 1.0);

    /**
     * Rate series over StatRegistry::sumMatching(@p substring) —
     * the common case for counter-backed bandwidth series.
     */
    void addCounterRate(std::string label, const StatRegistry &stats,
                        std::string substring, double scale = 1.0);

    /**
     * Rate series summing sumMatching over several substrings — one
     * per-host bandwidth series from that host's tenant-tagged
     * counters, for example. Substrings must not overlap (a counter
     * matching two is counted twice).
     */
    void addCounterRate(std::string label, const StatRegistry &stats,
                        std::vector<std::string> substrings,
                        double scale = 1.0);

    /** Arm the first sample at now() + interval. Idempotent. */
    void start();

    /**
     * Cancel the pending sample and record one final
     * partial-interval row if time advanced since the last sample.
     * Idempotent; called before reading rows()/writing output.
     */
    void finish();

    Tick interval() const { return interval_; }
    std::size_t numSeries() const { return series.size(); }
    const std::vector<Row> &rows() const { return rows_; }
    std::vector<std::string> labels() const;

    /** Versioned JSON time series ("beacon-timeseries-1"). */
    void writeJson(std::ostream &os) const;

    /** CSV: header "tick,<label>..." then one line per row. */
    void writeCsv(std::ostream &os) const;

  private:
    struct Series
    {
        std::string label;
        std::function<double()> read;
        SeriesKind kind;
        double scale;
        double prev = 0;
    };

    void sampleNow();
    void reschedule();

    EventQueue &eq;
    Tick interval_;
    EventId pending_ev = 0;
    bool armed = false;
    Tick last_sample_tick = 0;
    std::vector<Series> series;
    std::vector<Row> rows_;
};

} // namespace beacon::obs

#endif // BEACON_OBS_SAMPLER_HH
