/**
 * @file
 * Chrome/Perfetto trace-event recording.
 *
 * TraceSink keeps a bounded ring buffer of events stamped with
 * simulated ticks (1 tick = 1 ps); nothing here reads a wall clock,
 * so traces are bit-deterministic. writeJson() emits the Chrome
 * trace-event JSON format (the "JSON Array Format" with metadata),
 * which both chrome://tracing and ui.perfetto.dev open directly.
 *
 * Track model: one track ("thread") per component instance, named
 * hierarchically ("dimm0.bg2", "pool.sw0.dimm1.down", "ndp1.slot3",
 * "tenant0.jobs"). All tracks live in pid 1 ("beacon-sim").
 */

#ifndef BEACON_OBS_TRACE_HH
#define BEACON_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hh"
#include "obs/obs_config.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_event_queue.hh"

namespace beacon::obs
{

/** Index of a trace track; dense, assigned on first use. */
using TrackId = std::uint32_t;

/** One recorded trace event (fixed size so the ring stays compact). */
struct TraceEvent
{
    Tick start = 0;
    Tick dur = 0;
    double value = 0;           // counter events
    std::uint64_t id = 0;       // optional correlation id
    TrackId track = 0;
    /** 'X' complete, 'i' instant, 'C' counter, 's'/'t'/'f' flow. */
    char phase = 'X';
    bool has_id = false;
    const char *name = "";      // must point at static storage
    const char *arg = nullptr;  // optional reason; static storage
};

/**
 * Bounded ring-buffer sink for trace events.
 *
 * When the buffer is full the oldest event is overwritten and
 * droppedEvents() increments, so a trace always holds the most
 * recent window of activity and the loss is explicit.
 *
 * Event names are stored as raw pointers: pass string literals or
 * other static-storage strings only.
 *
 * Sharded execution: events emitted by in-window lane callbacks are
 * staged in a per-lane buffer (single writer, the lane's worker) and
 * flushed into the ring by the barrier merge in canonical event
 * order (LaneMergeHook::commitLaneEvent), so the ring's contents —
 * and the emitted JSON — are byte-identical to a serial run.
 */
class TraceSink : public LaneMergeHook
{
  public:
    explicit TraceSink(const EventQueue &eq,
                       std::size_t capacity = std::size_t(1) << 16);

    /** Track id for @p name, creating the track on first use. */
    TrackId track(const std::string &name);

    /** Current simulated time of the attached queue. */
    Tick now() const { return eq.now(); }

    /** Complete ('X') event covering [start, end]. */
    void complete(TrackId track, const char *name, Tick start,
                  Tick end);

    /** Complete event with a correlation id rendered into args. */
    void completeWithId(TrackId track, const char *name, Tick start,
                        Tick end, std::uint64_t id);

    /** Instant ('i') event at the current tick. */
    void instant(TrackId track, const char *name);

    /** Instant event with a correlation id. */
    void instantWithId(TrackId track, const char *name,
                       std::uint64_t id);

    /**
     * Instant event with an id and a reason string rendered into
     * args ("reject" admission decisions). @p reason must point at
     * static storage, like event names.
     */
    void instantReason(TrackId track, const char *name,
                       std::uint64_t id, const char *reason);

    /**
     * Flow event at the current tick: @p phase is 's' (start), 't'
     * (step) or 'f' (end). Events sharing @p id — one job's causal
     * path — are drawn as linked arrows between the enclosing slices
     * in Perfetto/chrome://tracing.
     */
    void flow(TrackId track, const char *name, std::uint64_t id,
              char phase);

    /** Counter ('C') sample at the current tick. */
    void counter(TrackId track, const char *name, double value);

    /** Events currently held (<= capacity). */
    std::size_t size() const { return count; }

    std::size_t capacity() const { return ring.size(); }

    /** Events overwritten because the ring was full. */
    std::uint64_t droppedEvents() const { return dropped; }

    std::size_t numTracks() const { return track_names.size(); }

    /** Events oldest-first (for tests and custom serialisers). */
    std::vector<TraceEvent> snapshot() const;

    /** Emit the whole buffer as Chrome trace-event JSON. */
    void writeJson(std::ostream &os) const;

    /** @name LaneMergeHook (sharded queues) @{ */
    void prepareLanes(std::size_t lanes) override;
    void commitLaneEvent(unsigned lane,
                         std::uint64_t pop_idx) override;
    /** @} */

  private:
    /** A staged event, tagged with its emitter's pop index. */
    struct Staged
    {
        std::uint64_t pop = 0;
        TraceEvent ev;
    };

    void push(const TraceEvent &ev);

    const EventQueue &eq;
    std::vector<std::string> track_names;
    std::map<std::string, TrackId> track_ids;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;  // next write slot
    std::size_t count = 0; // valid events in the ring
    std::uint64_t dropped = 0;
    /** Per-lane staging buffers + flush cursors (see class doc). */
    std::vector<std::vector<Staged>> staged;
    std::vector<std::size_t> staged_cursor;
};

/**
 * RAII duration span: records the tick at construction and emits a
 * complete event for [construction, destruction) on destruction (or
 * at an explicit close()). A null sink makes every operation a no-op,
 * so instrumented code needs no branches of its own.
 */
class TraceSpan
{
  public:
    TraceSpan() = default;

    TraceSpan(TraceSink *sink, TrackId track, const char *name)
        : sink(sink), track(track), name(name),
          start(sink ? sink->now() : 0)
    {
    }

    TraceSpan(TraceSink *sink, TrackId track, const char *name,
              std::uint64_t id)
        : sink(sink), track(track), name(name),
          start(sink ? sink->now() : 0), id(id), has_id(true)
    {
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    TraceSpan(TraceSpan &&other) noexcept { *this = std::move(other); }

    TraceSpan &
    operator=(TraceSpan &&other) noexcept
    {
        if (this != &other) {
            close();
            sink = other.sink;
            track = other.track;
            name = other.name;
            start = other.start;
            id = other.id;
            has_id = other.has_id;
            other.sink = nullptr;
        }
        return *this;
    }

    ~TraceSpan() { close(); }

    bool active() const { return sink != nullptr; }

    /** Emit the span now instead of at destruction. */
    void
    close()
    {
        if (!sink)
            return;
        if (has_id)
            sink->completeWithId(track, name, start, sink->now(), id);
        else
            sink->complete(track, name, start, sink->now());
        sink = nullptr;
    }

    /** Drop the span without emitting anything. */
    void abandon() { sink = nullptr; }

  private:
    TraceSink *sink = nullptr;
    TrackId track = 0;
    const char *name = "";
    Tick start = 0;
    std::uint64_t id = 0;
    bool has_id = false;
};

} // namespace beacon::obs

/**
 * Instrumentation entry point: the trace sink attached to an
 * EventQueue, or a compile-time nullptr when BEACON_OBS is off (so
 * every `if (sink)` block dead-code-eliminates).
 */
#if BEACON_OBS_ENABLED
#define BEACON_TRACE_SINK(eq) ((eq).traceSink())
#else
#define BEACON_TRACE_SINK(eq) \
    (static_cast<::beacon::obs::TraceSink *>(nullptr))
#endif

#endif // BEACON_OBS_TRACE_HH
