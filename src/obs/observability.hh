/**
 * @file
 * Bundle tying the telemetry parts to one EventQueue.
 *
 * NdpSystem owns one Observability instance per machine (absent when
 * ObsConfig is all-off, so the default cost is a null pointer). The
 * bundle attaches the TraceSink and SelfProfiler to the queue,
 * starts the Sampler, and handles end-of-run emission.
 */

#ifndef BEACON_OBS_OBSERVABILITY_HH
#define BEACON_OBS_OBSERVABILITY_HH

#include <memory>
#include <string>

#include "obs/flight_recorder.hh"
#include "obs/obs_config.hh"
#include "obs/request_trace.hh"
#include "obs/sampler.hh"
#include "obs/self_profile.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace beacon::obs
{

/**
 * Fan-out LaneMergeHook: a sharded queue exposes one merge-hook
 * slot, but TraceSink and RequestTrace both stage per lane; this
 * forwards every commit to each in registration order.
 */
class MergeHookFanout : public LaneMergeHook
{
  public:
    void add(LaneMergeHook *hook) { hooks.push_back(hook); }

    void
    prepareLanes(std::size_t lanes) override
    {
        for (LaneMergeHook *hook : hooks)
            hook->prepareLanes(lanes);
    }

    void
    commitLaneEvent(unsigned lane, std::uint64_t pop_idx) override
    {
        for (LaneMergeHook *hook : hooks)
            hook->commitLaneEvent(lane, pop_idx);
    }

  private:
    std::vector<LaneMergeHook *> hooks;
};

class Observability
{
  public:
    Observability(EventQueue &eq, const ObsConfig &cfg);
    ~Observability();

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    const ObsConfig &config() const { return cfg; }

    /** Trace sink, or nullptr when tracing is off. */
    TraceSink *trace() { return sink_.get(); }

    /** Sampler, or nullptr when sampling is off. */
    Sampler *sampler() { return sampler_.get(); }

    /** Request trace, or nullptr when request tracing is off. */
    RequestTrace *requestTrace() { return reqtrace_.get(); }

    /** SLO monitor, or nullptr when no SLO window is configured. */
    SloMonitor *slo() { return slo_.get(); }

    /** Flight recorder, or nullptr when off. */
    FlightRecorder *flightRecorder() { return flight_.get(); }

    bool selfProfiling() const { return profiler_ != nullptr; }

    /** Snapshot of the self-profile (enabled=false when off). */
    SelfProfileResult selfProfile() const;

    /**
     * Stop sampling (recording the final partial row). Call once the
     * run is over, while all series callbacks are still alive.
     */
    void finish();

    /** Write the trace as Chrome JSON; false (with a warning) on
     * I/O failure or when tracing is off. */
    bool writeTrace(const std::string &path) const;

    /** Write the time series; ".csv" selects CSV, anything else the
     * versioned JSON form. */
    bool writeTimeseries(const std::string &path) const;

    /** Write the request trace ("beacon-reqtrace-1"); false (with a
     * warning) on I/O failure or when request tracing is off. */
    bool writeRequestTrace(const std::string &path) const;

  private:
    EventQueue &eq;
    ObsConfig cfg;
    std::unique_ptr<TraceSink> sink_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<SelfProfiler> profiler_;
    std::unique_ptr<RequestTrace> reqtrace_;
    std::unique_ptr<SloMonitor> slo_;
    std::unique_ptr<FlightRecorder> flight_;
    std::unique_ptr<MergeHookFanout> fanout_;
};

} // namespace beacon::obs

#endif // BEACON_OBS_OBSERVABILITY_HH
