/**
 * @file
 * Bundle tying the telemetry parts to one EventQueue.
 *
 * NdpSystem owns one Observability instance per machine (absent when
 * ObsConfig is all-off, so the default cost is a null pointer). The
 * bundle attaches the TraceSink and SelfProfiler to the queue,
 * starts the Sampler, and handles end-of-run emission.
 */

#ifndef BEACON_OBS_OBSERVABILITY_HH
#define BEACON_OBS_OBSERVABILITY_HH

#include <memory>
#include <string>

#include "obs/obs_config.hh"
#include "obs/sampler.hh"
#include "obs/self_profile.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace beacon::obs
{

class Observability
{
  public:
    Observability(EventQueue &eq, const ObsConfig &cfg);
    ~Observability();

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    const ObsConfig &config() const { return cfg; }

    /** Trace sink, or nullptr when tracing is off. */
    TraceSink *trace() { return sink_.get(); }

    /** Sampler, or nullptr when sampling is off. */
    Sampler *sampler() { return sampler_.get(); }

    bool selfProfiling() const { return profiler_ != nullptr; }

    /** Snapshot of the self-profile (enabled=false when off). */
    SelfProfileResult selfProfile() const;

    /**
     * Stop sampling (recording the final partial row). Call once the
     * run is over, while all series callbacks are still alive.
     */
    void finish();

    /** Write the trace as Chrome JSON; false (with a warning) on
     * I/O failure or when tracing is off. */
    bool writeTrace(const std::string &path) const;

    /** Write the time series; ".csv" selects CSV, anything else the
     * versioned JSON form. */
    bool writeTimeseries(const std::string &path) const;

  private:
    EventQueue &eq;
    ObsConfig cfg;
    std::unique_ptr<TraceSink> sink_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<SelfProfiler> profiler_;
};

} // namespace beacon::obs

#endif // BEACON_OBS_OBSERVABILITY_HH
