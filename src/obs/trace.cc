#include "trace.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace beacon::obs
{

namespace
{

/** Minimal JSON string escaping for names we generate ourselves. */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Ticks (ps) rendered as trace-event microseconds. Fixed six
 * fractional digits keep full picosecond resolution and a
 * byte-stable encoding.
 */
std::string
ticksToUs(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  t / 1000000, t % 1000000);
    return buf;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

TraceSink::TraceSink(const EventQueue &eq, std::size_t capacity)
    : eq(eq), ring(capacity ? capacity : 1)
{
}

TrackId
TraceSink::track(const std::string &name)
{
    auto [it, inserted] =
        track_ids.try_emplace(name, TrackId(track_names.size()));
    if (inserted)
        track_names.push_back(name);
    return it->second;
}

void
TraceSink::push(const TraceEvent &ev)
{
    // Inside a parallel window, a lane callback may not touch the
    // shared ring: stage the event in the lane's own buffer, tagged
    // with the emitting event's pop index; the barrier merge flushes
    // it in canonical order (commitLaneEvent).
    if (const ShardExecContext *ctx = currentShardContext();
        ctx && ctx->in_window &&
        static_cast<const EventQueue *>(ctx->queue) == &eq) {
        BEACON_ASSERT(ctx->lane < staged.size(),
                      "trace event from unprepared lane ", ctx->lane);
        staged[ctx->lane].push_back(Staged{ctx->pop, ev});
        return;
    }
    if (count == ring.size()) {
        ++dropped; // overwriting the oldest event
    } else {
        ++count;
    }
    ring[next] = ev;
    next = (next + 1) % ring.size();
}

void
TraceSink::prepareLanes(std::size_t lanes)
{
    if (staged.size() < lanes) {
        staged.resize(lanes);
        staged_cursor.resize(lanes, 0);
    }
}

void
TraceSink::commitLaneEvent(unsigned lane, std::uint64_t pop_idx)
{
    BEACON_ASSERT(lane < staged.size(),
                  "commit for unprepared lane ", lane);
    std::vector<Staged> &buf = staged[lane];
    std::size_t &cursor = staged_cursor[lane];
    // Staged entries are appended in pop order (the lane is
    // sequential), so a prefix scan flushes exactly the committed
    // event's emissions.
    while (cursor < buf.size() && buf[cursor].pop <= pop_idx) {
        // Re-enter push() outside any lane context: goes to the ring.
        push(buf[cursor].ev);
        ++cursor;
    }
    if (cursor == buf.size()) {
        buf.clear();
        cursor = 0;
    }
}

void
TraceSink::complete(TrackId track, const char *name, Tick start,
                    Tick end)
{
    BEACON_DCHECK(end >= start, "span ends before it starts");
    TraceEvent ev;
    ev.phase = 'X';
    ev.track = track;
    ev.name = name;
    ev.start = start;
    ev.dur = end - start;
    push(ev);
}

void
TraceSink::completeWithId(TrackId track, const char *name, Tick start,
                          Tick end, std::uint64_t id)
{
    BEACON_DCHECK(end >= start, "span ends before it starts");
    TraceEvent ev;
    ev.phase = 'X';
    ev.track = track;
    ev.name = name;
    ev.start = start;
    ev.dur = end - start;
    ev.id = id;
    ev.has_id = true;
    push(ev);
}

void
TraceSink::instant(TrackId track, const char *name)
{
    TraceEvent ev;
    ev.phase = 'i';
    ev.track = track;
    ev.name = name;
    ev.start = now();
    push(ev);
}

void
TraceSink::instantWithId(TrackId track, const char *name,
                         std::uint64_t id)
{
    TraceEvent ev;
    ev.phase = 'i';
    ev.track = track;
    ev.name = name;
    ev.start = now();
    ev.id = id;
    ev.has_id = true;
    push(ev);
}

void
TraceSink::instantReason(TrackId track, const char *name,
                         std::uint64_t id, const char *reason)
{
    TraceEvent ev;
    ev.phase = 'i';
    ev.track = track;
    ev.name = name;
    ev.start = now();
    ev.id = id;
    ev.has_id = true;
    ev.arg = reason;
    push(ev);
}

void
TraceSink::flow(TrackId track, const char *name, std::uint64_t id,
                char phase)
{
    BEACON_DCHECK(phase == 's' || phase == 't' || phase == 'f',
                  "flow phase must be s/t/f");
    TraceEvent ev;
    ev.phase = phase;
    ev.track = track;
    ev.name = name;
    ev.start = now();
    ev.id = id;
    ev.has_id = true;
    push(ev);
}

void
TraceSink::counter(TrackId track, const char *name, double value)
{
    TraceEvent ev;
    ev.phase = 'C';
    ev.track = track;
    ev.name = name;
    ev.start = now();
    ev.value = value;
    push(ev);
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(count);
    const std::size_t first = (next + ring.size() - count) % ring.size();
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(first + i) % ring.size()]);
    return out;
}

void
TraceSink::writeJson(std::ostream &os) const
{
    os << "{\n\"traceEvents\": [";
    bool first_event = true;
    const auto sep = [&]() -> std::ostream & {
        if (!first_event)
            os << ",";
        first_event = false;
        return os << "\n";
    };

    // Metadata: one process, one named "thread" per track. Trace
    // viewers sort tracks by the sort_index we derive from creation
    // order, which follows machine construction order.
    sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
             "\"name\":\"process_name\","
             "\"args\":{\"name\":\"beacon-sim\"}}";
    for (std::size_t t = 0; t < track_names.size(); ++t) {
        sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (t + 1)
              << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
              << escape(track_names[t]) << "\"}}";
        sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (t + 1)
              << ",\"name\":\"thread_sort_index\",\"args\":{"
                 "\"sort_index\":"
              << (t + 1) << "}}";
    }

    for (const TraceEvent &ev : snapshot()) {
        sep() << "{\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":"
              << (ev.track + 1) << ",\"ts\":" << ticksToUs(ev.start)
              << ",\"name\":\"" << escape(ev.name) << "\"";
        const bool is_flow =
            ev.phase == 's' || ev.phase == 't' || ev.phase == 'f';
        if (ev.phase == 'X')
            os << ",\"dur\":" << ticksToUs(ev.dur);
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
        if (is_flow) {
            // Flow events carry a top-level id; 't'/'f' bind to the
            // enclosing slice ("bp":"e") so one job's arrows chain
            // host -> switch -> DIMM -> PE -> completion.
            os << ",\"cat\":\"flow\",\"id\":" << ev.id;
            if (ev.phase != 's')
                os << ",\"bp\":\"e\"";
        }
        if (ev.phase == 'C') {
            os << ",\"args\":{\"value\":" << jsonNumber(ev.value)
               << "}";
        } else if ((ev.has_id && !is_flow) || ev.arg) {
            os << ",\"args\":{";
            bool first_arg = true;
            if (ev.has_id && !is_flow) {
                os << "\"id\":" << ev.id;
                first_arg = false;
            }
            if (ev.arg) {
                os << (first_arg ? "" : ",") << "\"reason\":\""
                   << escape(ev.arg) << "\"";
            }
            os << "}";
        }
        os << "}";
    }

    os << "\n],\n";
    os << "\"displayTimeUnit\": \"ns\",\n";
    os << "\"otherData\": {\n";
    os << "  \"clock\": \"simulated-ticks-1ps\",\n";
    os << "  \"dropped_events\": \"" << dropped << "\",\n";
    os << "  \"tracks\": \"" << track_names.size() << "\"\n";
    os << "}\n}\n";
}

} // namespace beacon::obs
