/**
 * @file
 * Event-driven DRAM controller (FR-FCFS) for one DIMM.
 *
 * Requests arrive via enqueue(); the controller issues PRE/ACT/column
 * commands against the DimmTimingModel, honours refresh, and invokes
 * each request's completion callback at data-completion time.
 *
 * The scheduler is first-ready FR-FCFS over a window from the queue
 * head: row-hit column commands are preferred, ties broken by age.
 * Refresh is per-rank every tREFI and may be postponed while the rank
 * drains (JEDEC permits postponing refreshes; we do not model the
 * 8-deep postpone limit).
 */

#ifndef BEACON_DRAM_CONTROLLER_HH
#define BEACON_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "check/checker_config.hh"
#include "dram/dimm_timing.hh"
#include "dram/types.hh"
#include "obs/trace.hh"
#include "sim/sim_object.hh"

namespace beacon
{

/** Row-buffer management policy. */
enum class PagePolicy : std::uint8_t
{
    Open,   //!< keep rows open; precharge on conflict
    Closed, //!< auto-precharge with the last burst of each request
};

class DramProtocolChecker;

/** Tunables for a DramController. */
struct DramControllerParams
{
    unsigned scan_window = 32;   //!< FR-FCFS lookahead depth
    bool enable_refresh = true;
    PagePolicy page_policy = PagePolicy::Open;
    /** Verification toggles; dram_protocol arms the shadow checker. */
    CheckerConfig checkers;
    /**
     * Event-queue home of this controller's internal events (refresh
     * ticks, scheduling decisions). A sharded queue runs everything
     * with one hint on one lane, making the controller's state
     * single-threaded by construction; completion callbacks are homed
     * separately per request (MemRequest::completion_hint).
     */
    std::uint32_t home_hint = 0;
};

/** FR-FCFS controller in front of one DIMM. */
class DramController : public SimObject
{
  public:
    DramController(const std::string &name, EventQueue &eq,
                   StatRegistry &stats, const DimmGeometry &geom,
                   const DramTimingParams &timing,
                   const DramControllerParams &params = {});
    ~DramController() override;

    /** Hand a request to the controller; callback fires on data end. */
    void enqueue(MemRequest req);

    /** Requests accepted but not yet completed. */
    std::size_t inFlight() const { return queue.size(); }

    /** The underlying timing model (activity counters, row state). */
    const DimmTimingModel &device() const { return model; }

    /** Completed read/write request counts. */
    std::uint64_t readsCompleted() const { return reads_done; }
    std::uint64_t writesCompleted() const { return writes_done; }

    /** The protocol checker, or nullptr when not armed. */
    const DramProtocolChecker *checker() const
    {
        return protocol_checker.get();
    }

    /**
     * End-of-run checker validation (refresh staleness); a no-op
     * when the checker is off or refresh is disabled.
     */
    void finalizeCheck() const;

  private:
    struct ActiveRequest
    {
        MemRequest req;
        unsigned bursts_issued = 0;
    };

    /** One scheduling round: issue all commands ready this tick. */
    void decide();

    /**
     * Issue at most one command.
     * @return true if a command was issued.
     */
    bool decideOnce();

    /** Ensure a decision event is pending no later than @p t. */
    void scheduleDecision(Tick t);

    /** Per-rank refresh bookkeeping. */
    void refreshTick(unsigned rank);

    /** Emit a trace span for one C/A bus command. */
    void traceCommand(const DramCommand &cmd);

    DimmTimingModel model;
    DramControllerParams params;
    std::unique_ptr<DramProtocolChecker> protocol_checker;

    std::deque<ActiveRequest> queue;
    bool decision_pending = false;
    EventId decision_event = 0;
    Tick decision_time = max_tick;

    std::uint64_t reads_done = 0;
    std::uint64_t writes_done = 0;

    // Tracing (null when off): one track per (rank, bank group) for
    // ACT/PRE/column spans, one per rank for refresh, one for the
    // controller's queue-depth counter.
    obs::TraceSink *trace = nullptr;
    obs::TrackId trace_ctrl = 0;
    std::vector<obs::TrackId> trace_bg;
    std::vector<obs::TrackId> trace_rank;
    Tick trace_dur_act = 0;
    Tick trace_dur_pre = 0;
    Tick trace_dur_col = 0;
    Tick trace_dur_ref = 0;

    Counter &stat_reads;
    Counter &stat_writes;
    Counter &stat_acts;
    Counter &stat_row_hits;
    Counter &stat_row_conflicts;
    SampleStat &stat_latency;
};

} // namespace beacon

#endif // BEACON_DRAM_CONTROLLER_HH
