/**
 * @file
 * DRAMPower-style command-counting energy model.
 *
 * Energy is computed from the activity counters of a DimmTimingModel:
 * per-chip ACT/PRE/RD/WR operation energies, per-rank refresh energy,
 * and a background power term over elapsed simulated time. The
 * constants are representative of 8 Gb x4 DDR4 devices; as in the
 * paper, only relative comparisons between configurations matter.
 */

#ifndef BEACON_DRAM_ENERGY_HH
#define BEACON_DRAM_ENERGY_HH

#include "common/units.hh"
#include "dram/dimm_timing.hh"

namespace beacon
{

/** Per-operation DRAM energy constants. */
struct DramEnergyParams
{
    double act_pj_per_chip = 110.0;  //!< row activate, one device
    double pre_pj_per_chip = 60.0;   //!< precharge, one device
    double rd_pj_per_burst_chip = 55.0;  //!< BL8 read, one device
    double wr_pj_per_burst_chip = 60.0;  //!< BL8 write, one device
    double ref_pj_per_rank = 28000.0;    //!< all-bank refresh
    /** Idle/background power per device; controllers aggressively
     *  use power-down modes between accesses. */
    double background_mw_per_chip = 12.0;

    /** Defaults for the Table I DIMM (8 Gb x4 DDR4-1600). */
    static DramEnergyParams ddr4_8gb_x4() { return {}; }
};

/** Energy broken out by source. */
struct DramEnergyBreakdown
{
    Picojoules act_pre_pj;
    Picojoules rd_wr_pj;
    Picojoules refresh_pj;
    Picojoules background_pj;

    Picojoules
    totalPj() const
    {
        return act_pre_pj + rd_wr_pj + refresh_pj + background_pj;
    }
};

/**
 * Compute the energy consumed by one DIMM over @p elapsed ticks of
 * simulated time, given its activity counters.
 */
DramEnergyBreakdown computeDramEnergy(const DimmTimingModel &model,
                                      Tick elapsed,
                                      const DramEnergyParams &params =
                                          DramEnergyParams::ddr4_8gb_x4());

} // namespace beacon

#endif // BEACON_DRAM_ENERGY_HH
