#include "energy.hh"

namespace beacon
{

DramEnergyBreakdown
computeDramEnergy(const DimmTimingModel &model, Tick elapsed,
                  const DramEnergyParams &params)
{
    DramEnergyBreakdown out;
    out.act_pre_pj = Picojoules{
        double(model.numActChipOps()) * params.act_pj_per_chip +
        double(model.numPreChipOps()) * params.pre_pj_per_chip};

    std::uint64_t col_chip_ops = 0;
    for (std::uint64_t per_chip : model.chipAccesses())
        col_chip_ops += per_chip;
    // chipAccesses() counts both reads and writes; split by the
    // command ratio.
    const double total_cmds =
        double(model.numReadBursts() + model.numWriteBursts());
    const double rd_frac =
        total_cmds > 0 ? double(model.numReadBursts()) / total_cmds : 0;
    out.rd_wr_pj = Picojoules{
        double(col_chip_ops) *
        (rd_frac * params.rd_pj_per_burst_chip +
         (1.0 - rd_frac) * params.wr_pj_per_burst_chip)};

    out.refresh_pj = Picojoules{
        double(model.numRefreshes()) * params.ref_pj_per_rank};

    const double chips =
        double(model.geometry().ranks) *
        double(model.geometry().chips_per_rank);
    // mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ.
    out.background_pj = Picojoules{params.background_mw_per_chip *
                                   chips * double(elapsed) * 1e-3};
    return out;
}

} // namespace beacon
