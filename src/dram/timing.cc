#include "timing.hh"

namespace beacon
{

DramTimingParams
DramTimingParams::ddr4_1600_22()
{
    DramTimingParams p{};
    p.t_ck_ps = 1250;   // 1600 MT/s -> 800 MHz bus clock
    p.t_cl = 22;        // Table I: 22-22-22
    p.t_rcd = 22;
    p.t_rp = 22;
    p.t_ras = 52;
    p.t_rc = p.t_ras + p.t_rp;
    p.t_rrd_s = 4;
    p.t_rrd_l = 6;
    p.t_ccd_s = 4;
    p.t_ccd_l = 6;
    p.t_faw = 28;
    p.t_wr = 12;        // 15 ns
    p.t_wtr = 8;
    p.t_rtp = 8;
    p.t_cwl = 16;
    p.t_bl = 4;         // BL8 on a double data rate bus
    p.t_refi = 6240;    // 7.8 us
    p.t_rfc = 280;      // 350 ns for 8 Gb devices
    return p;
}

DramTimingParams
DramTimingParams::ddr4_3200_22()
{
    DramTimingParams p = ddr4_1600_22();
    p.t_ck_ps = 625;    // 3200 MT/s -> 1600 MHz bus clock
    // Same cycle-count CAS chain (JEDEC DDR4-3200AA is 22-22-22);
    // analog-limited windows double in cycles to hold in time.
    p.t_ras = 68;       // ~42.5 ns
    p.t_rc = p.t_ras + p.t_rp;
    p.t_rrd_s = 8;
    p.t_rrd_l = 12;
    p.t_faw = 48;       // 30 ns
    p.t_wr = 24;        // 15 ns
    p.t_wtr = 12;
    p.t_rtp = 12;
    p.t_refi = 12480;   // 7.8 us
    p.t_rfc = 560;      // 350 ns
    return p;
}

} // namespace beacon
