/**
 * @file
 * Core DRAM request/coordinate types.
 */

#ifndef BEACON_DRAM_TYPES_HH
#define BEACON_DRAM_TYPES_HH

#include <cstdint>
#include <functional>

#include "common/units.hh"

namespace beacon
{

/**
 * Physical coordinates of an access within one DIMM.
 *
 * The chip group [chip_first, chip_first + chip_count) selects which
 * devices in the rank participate. A conventional access uses the
 * whole rank (chip_count == chips_per_rank); MEDAL-style fine-grained
 * access uses chip_count == 1; BEACON's multi-chip coalescing uses an
 * intermediate group size.
 */
struct DramCoord
{
    unsigned rank = 0;
    unsigned bank_group = 0;
    unsigned bank = 0;          //!< bank within the group
    unsigned row = 0;
    unsigned column = 0;        //!< starting column of the access
    unsigned chip_first = 0;
    unsigned chip_count = 1;

    /** Flat bank index within the DIMM geometry. */
    unsigned
    flatBank(unsigned banks_per_group) const
    {
        return bank_group * banks_per_group + bank;
    }

    bool
    sameRow(const DramCoord &o) const
    {
        return rank == o.rank && bank_group == o.bank_group &&
               bank == o.bank && row == o.row &&
               chip_first == o.chip_first && chip_count == o.chip_count;
    }
};

/** A read or write handed to a DRAM controller. */
struct MemRequest
{
    DramCoord coord;
    bool is_write = false;
    /** Useful payload bytes (for bandwidth-utilisation stats). */
    std::uint64_t bytes = 0;
    /** Number of BL8 column commands needed to move the payload. */
    unsigned bursts = 1;
    /** Invoked at data-completion time. */
    std::function<void(Tick)> on_complete;
    /** Arrival time, filled in by the controller. */
    Tick enqueue_tick = 0;
};

} // namespace beacon

#endif // BEACON_DRAM_TYPES_HH
