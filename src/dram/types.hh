/**
 * @file
 * Core DRAM request/coordinate types.
 */

#ifndef BEACON_DRAM_TYPES_HH
#define BEACON_DRAM_TYPES_HH

#include <cstdint>
#include <functional>

#include "common/units.hh"

namespace beacon
{

/**
 * Physical coordinates of an access within one DIMM.
 *
 * The chip group [chip_first, chip_first + chip_count) selects which
 * devices in the rank participate. A conventional access uses the
 * whole rank (chip_count == chips_per_rank); MEDAL-style fine-grained
 * access uses chip_count == 1; BEACON's multi-chip coalescing uses an
 * intermediate group size.
 */
struct DramCoord
{
    unsigned rank = 0;
    unsigned bank_group = 0;
    unsigned bank = 0;          //!< bank within the group
    RowId row;
    unsigned column = 0;        //!< starting column of the access
    unsigned chip_first = 0;
    unsigned chip_count = 1;

    /** Flat bank index within the DIMM geometry. */
    unsigned
    flatBank(unsigned banks_per_group) const
    {
        return bank_group * banks_per_group + bank;
    }

    bool
    sameRow(const DramCoord &o) const
    {
        return rank == o.rank && bank_group == o.bank_group &&
               bank == o.bank && row == o.row &&
               chip_first == o.chip_first && chip_count == o.chip_count;
    }
};

/** DRAM command kinds observable on the C/A bus. */
enum class DramCommandKind : std::uint8_t
{
    Act,
    Pre,
    Read,
    ReadAp,  //!< read with auto-precharge
    Write,
    WriteAp, //!< write with auto-precharge
    Refresh,
};

/** Printable mnemonic for a command kind. */
constexpr const char *
dramCommandName(DramCommandKind kind)
{
    switch (kind) {
      case DramCommandKind::Act:
        return "ACT";
      case DramCommandKind::Pre:
        return "PRE";
      case DramCommandKind::Read:
        return "RD";
      case DramCommandKind::ReadAp:
        return "RDA";
      case DramCommandKind::Write:
        return "WR";
      case DramCommandKind::WriteAp:
        return "WRA";
      case DramCommandKind::Refresh:
        return "REF";
    }
    return "?";
}

/**
 * One command as issued on the command bus, reported to observers
 * tapped onto the DimmTimingModel command path. For Refresh only
 * @c tick and @c coord.rank are meaningful.
 */
struct DramCommand
{
    DramCommandKind kind = DramCommandKind::Act;
    DramCoord coord;
    Tick tick = 0;
};

/** A read or write handed to a DRAM controller. */
struct MemRequest
{
    DramCoord coord;
    bool is_write = false;
    /** Useful payload bytes (for bandwidth-utilisation stats). */
    Bytes bytes;
    /** Number of BL8 column commands needed to move the payload. */
    unsigned bursts = 1;
    /** Invoked at data-completion time. */
    std::function<void(Tick)> on_complete;
    /**
     * Home hint for the completion event: the component shard
     * on_complete's state lives on (see EventQueue::schedule). The
     * default 0 re-homes completions onto the default shard, where
     * every existing fabric/NDP completion closure runs.
     */
    std::uint32_t completion_hint = 0;
    /** Arrival time, filled in by the controller. */
    Tick enqueue_tick = 0;
    /**
     * Request-scoped attribution (obs::RequestContext): the
     * orchestrator job this access serves, or 0 for direct/driver
     * traffic. The controller records a DRAM component span for the
     * job when a RequestTrace is attached to its queue.
     */
    std::uint64_t job = 0;
};

} // namespace beacon

#endif // BEACON_DRAM_TYPES_HH
