#include "dimm_timing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon
{

DimmTimingModel::DimmTimingModel(const DimmGeometry &g,
                                 const DramTimingParams &t)
    : geom(g), tp(t)
{
    banks.resize(std::size_t{geom.ranks} * geom.chips_per_rank *
                 geom.banksPerRank());
    chips.resize(std::size_t{geom.ranks} * geom.chips_per_rank);
    ranks.resize(geom.ranks);
    const unsigned lanes = geom.per_rank_lanes
                               ? geom.ranks * geom.chips_per_rank
                               : geom.chips_per_rank;
    lane_busy_until.assign(lanes, 0);
    cmd_bus_busy_until.assign(
        geom.per_rank_cmd_bus ? geom.ranks : 1, 0);
    chip_accesses.assign(geom.chips_per_rank, 0);
}

unsigned
DimmTimingModel::bankIndex(unsigned rank, unsigned chip,
                           unsigned flat_bank) const
{
    BEACON_ASSERT(rank < geom.ranks && chip < geom.chips_per_rank &&
                      flat_bank < geom.banksPerRank(),
                  "bank index out of range");
    return (rank * geom.chips_per_rank + chip) * geom.banksPerRank() +
           flat_bank;
}

DimmTimingModel::BankState &
DimmTimingModel::bank(const DramCoord &coord, unsigned chip)
{
    return banks[bankIndex(coord.rank, chip,
                           coord.flatBank(geom.banks_per_group))];
}

const DimmTimingModel::BankState &
DimmTimingModel::bank(const DramCoord &coord, unsigned chip) const
{
    return banks[bankIndex(coord.rank, chip,
                           coord.flatBank(geom.banks_per_group))];
}

DimmTimingModel::ChipState &
DimmTimingModel::chipState(unsigned rank, unsigned chip)
{
    return chips[rank * geom.chips_per_rank + chip];
}

const DimmTimingModel::ChipState &
DimmTimingModel::chipState(unsigned rank, unsigned chip) const
{
    return chips[rank * geom.chips_per_rank + chip];
}

Tick
DimmTimingModel::align(Tick t) const
{
    const Tick rem = t % tp.t_ck_ps;
    return rem == 0 ? t : t + (tp.t_ck_ps - rem);
}

std::int64_t
DimmTimingModel::openRow(unsigned rank, unsigned chip,
                         unsigned flat_bank) const
{
    return banks[bankIndex(rank, chip, flat_bank)].open_row;
}

bool
DimmTimingModel::rowHit(const DramCoord &coord,
                        unsigned /*banks_per_group*/) const
{
    for (unsigned c = 0; c < coord.chip_count; ++c) {
        if (bank(coord, coord.chip_first + c).open_row !=
            std::int64_t{coord.row.value()}) {
            return false;
        }
    }
    return true;
}

bool
DimmTimingModel::bankClosed(const DramCoord &coord,
                            unsigned /*banks_per_group*/) const
{
    for (unsigned c = 0; c < coord.chip_count; ++c) {
        if (bank(coord, coord.chip_first + c).open_row != -1)
            return false;
    }
    return true;
}

Tick
DimmTimingModel::earliestAct(const DramCoord &coord, Tick t) const
{
    Tick earliest = std::max(t, cmdBusFree(coord.rank));
    earliest = std::max(earliest, ranks[coord.rank].ref_busy_until);
    const Tick ck = tp.t_ck_ps;
    for (unsigned c = 0; c < coord.chip_count; ++c) {
        const unsigned chip = coord.chip_first + c;
        const BankState &b = bank(coord, chip);
        earliest = std::max(earliest, b.act_allowed);
        const ChipState &cs = chipState(coord.rank, chip);
        if (cs.has_act) {
            const unsigned rrd = cs.last_act_bg == coord.bank_group
                                     ? tp.t_rrd_l
                                     : tp.t_rrd_s;
            earliest = std::max(earliest, cs.last_act + rrd * ck);
            // tFAW: at most 4 ACTs per chip per window.
            if (cs.act_count >= cs.act_history.size()) {
                const Tick fourth = cs.act_history[cs.act_head];
                earliest =
                    std::max(earliest, fourth + tp.t_faw * ck);
            }
        }
    }
    return align(earliest);
}

Tick
DimmTimingModel::earliestPre(const DramCoord &coord, Tick t) const
{
    Tick earliest = std::max(t, cmdBusFree(coord.rank));
    earliest = std::max(earliest, ranks[coord.rank].ref_busy_until);
    for (unsigned c = 0; c < coord.chip_count; ++c)
        earliest = std::max(earliest,
                            bank(coord, coord.chip_first + c).pre_allowed);
    return align(earliest);
}

Tick
DimmTimingModel::earliestColumn(const DramCoord &coord, bool is_write,
                                Tick t) const
{
    const Tick ck = tp.t_ck_ps;
    Tick earliest = std::max(t, cmdBusFree(coord.rank));
    earliest = std::max(earliest, ranks[coord.rank].ref_busy_until);
    earliest = std::max(earliest, is_write ? ranks[coord.rank].wr_allowed
                                           : ranks[coord.rank].rd_allowed);
    const Tick data_latency = (is_write ? tp.t_cwl : tp.t_cl) * ck;
    for (unsigned c = 0; c < coord.chip_count; ++c) {
        const unsigned chip = coord.chip_first + c;
        const BankState &b = bank(coord, chip);
        BEACON_ASSERT(b.open_row == std::int64_t{coord.row.value()},
                      "column command to a closed/mismatched row");
        earliest = std::max(earliest, b.col_allowed);
        const ChipState &cs = chipState(coord.rank, chip);
        if (cs.has_col) {
            const unsigned ccd = cs.last_col_bg == coord.bank_group
                                     ? tp.t_ccd_l
                                     : tp.t_ccd_s;
            earliest = std::max(earliest, cs.col_bus_allowed +
                                              (ccd - tp.t_ccd_s) * ck);
            earliest = std::max(earliest, cs.col_bus_allowed);
        }
        // The chip's data lane must be free when the data appears.
        const unsigned lane = geom.per_rank_lanes
                                  ? coord.rank * geom.chips_per_rank +
                                        chip
                                  : chip;
        const Tick lane_free = lane_busy_until[lane];
        if (lane_free > earliest + data_latency)
            earliest = lane_free - data_latency;
    }
    return align(earliest);
}

void
DimmTimingModel::issueAct(const DramCoord &coord, Tick t)
{
    const Tick ck = tp.t_ck_ps;
    for (unsigned c = 0; c < coord.chip_count; ++c) {
        const unsigned chip = coord.chip_first + c;
        BankState &b = bank(coord, chip);
        BEACON_ASSERT(b.open_row == -1, "ACT to an open bank");
        b.open_row = std::int64_t{coord.row.value()};
        b.act_allowed = t + tp.t_rc * ck;
        b.pre_allowed = std::max(b.pre_allowed, t + tp.t_ras * ck);
        b.col_allowed = t + tp.t_rcd * ck;
        ChipState &cs = chipState(coord.rank, chip);
        cs.act_history[cs.act_head] = t;
        cs.act_head = (cs.act_head + 1) % cs.act_history.size();
        ++cs.act_count;
        cs.last_act = t;
        cs.last_act_bg = coord.bank_group;
        cs.has_act = true;
    }
    occupyCmdBus(coord.rank, t + ck);
    ranks[coord.rank].busy_until =
        std::max(ranks[coord.rank].busy_until, t + tp.t_rc * ck);
    ++n_act;
    n_act_chips += coord.chip_count;
    reportCommand(DramCommandKind::Act, coord, t);
}

void
DimmTimingModel::issuePre(const DramCoord &coord, Tick t)
{
    const Tick ck = tp.t_ck_ps;
    for (unsigned c = 0; c < coord.chip_count; ++c) {
        const unsigned chip = coord.chip_first + c;
        BankState &b = bank(coord, chip);
        b.open_row = -1;
        b.act_allowed = std::max(b.act_allowed, t + tp.t_rp * ck);
    }
    occupyCmdBus(coord.rank, t + ck);
    ++n_pre;
    n_pre_chips += coord.chip_count;
    reportCommand(DramCommandKind::Pre, coord, t);
}

Tick
DimmTimingModel::issueColumn(const DramCoord &coord, bool is_write,
                             Tick t, bool auto_precharge)
{
    const Tick ck = tp.t_ck_ps;
    const Tick data_latency = (is_write ? tp.t_cwl : tp.t_cl) * ck;
    const Tick data_start = t + data_latency;
    const Tick data_end = data_start + tp.t_bl * ck;

    for (unsigned c = 0; c < coord.chip_count; ++c) {
        const unsigned chip = coord.chip_first + c;
        BankState &b = bank(coord, chip);
        if (is_write) {
            b.pre_allowed =
                std::max(b.pre_allowed, data_end + tp.t_wr * ck);
        } else {
            b.pre_allowed =
                std::max(b.pre_allowed, t + tp.t_rtp * ck);
        }
        if (auto_precharge) {
            // RDA/WRA: the bank self-precharges once tRTP/tWR
            // allows; no explicit PRE command is spent.
            b.open_row = -1;
            b.act_allowed =
                std::max(b.act_allowed, b.pre_allowed + tp.t_rp * ck);
            ++n_pre_chips;
        }
        ChipState &cs = chipState(coord.rank, chip);
        cs.col_bus_allowed = t + tp.t_ccd_s * ck;
        cs.last_col_bg = coord.bank_group;
        cs.has_col = true;
        const unsigned lane = geom.per_rank_lanes
                                  ? coord.rank * geom.chips_per_rank +
                                        chip
                                  : chip;
        lane_busy_until[lane] = data_end;
        ++chip_accesses[chip];
    }
    if (is_write) {
        ranks[coord.rank].rd_allowed =
            std::max(ranks[coord.rank].rd_allowed,
                     data_end + tp.t_wtr * ck);
        ++n_wr;
    } else {
        ranks[coord.rank].wr_allowed =
            std::max(ranks[coord.rank].wr_allowed, data_end);
        ++n_rd;
    }
    occupyCmdBus(coord.rank, t + ck);
    ranks[coord.rank].busy_until =
        std::max(ranks[coord.rank].busy_until, data_end);
    raw_bytes += Bytes{std::uint64_t{coord.chip_count} *
                       geom.bytesPerChipBurst()};
    reportCommand(is_write ? (auto_precharge ? DramCommandKind::WriteAp
                                             : DramCommandKind::Write)
                           : (auto_precharge ? DramCommandKind::ReadAp
                                             : DramCommandKind::Read),
                  coord, t);
    return data_end;
}

Tick
DimmTimingModel::earliestRefresh(unsigned rank, Tick t) const
{
    // All banks of the rank must be precharged; approximate by
    // waiting for outstanding activity on the rank to drain.
    Tick earliest = std::max(t, ranks[rank].busy_until);
    earliest = std::max(earliest, ranks[rank].ref_busy_until);
    return align(earliest);
}

Tick
DimmTimingModel::issueRefresh(unsigned rank, Tick t)
{
    const Tick done = t + tp.t_rfc * tp.t_ck_ps;
    ranks[rank].ref_busy_until = done;
    // Refresh closes every row in the rank.
    for (unsigned chip = 0; chip < geom.chips_per_rank; ++chip) {
        for (unsigned b = 0; b < geom.banksPerRank(); ++b) {
            BankState &bs = banks[bankIndex(rank, chip, b)];
            bs.open_row = -1;
            bs.act_allowed = std::max(bs.act_allowed, done);
        }
    }
    ++n_ref;
    DramCoord ref_coord;
    ref_coord.rank = rank;
    reportCommand(DramCommandKind::Refresh, ref_coord, t);
    return done;
}

} // namespace beacon
