/**
 * @file
 * DDR4 timing and geometry parameters.
 *
 * All timing values are in bus-clock cycles (nCK). The evaluation
 * configuration follows Table I of the BEACON paper: DDR4-1600 with
 * 22-22-22 primary timings, 8 Gb x4 devices, 16 chips per rank,
 * 4 ranks per DIMM, 4 bank groups x 4 banks (64 GB per DIMM).
 */

#ifndef BEACON_DRAM_TIMING_HH
#define BEACON_DRAM_TIMING_HH

#include <cstdint>

#include "common/units.hh"

namespace beacon
{

/** JEDEC-style DDR4 timing constraints, in bus-clock cycles. */
struct DramTimingParams
{
    Tick t_ck_ps;       //!< bus clock period in picoseconds
    unsigned t_cl;      //!< CAS latency (RD command to first data)
    unsigned t_rcd;     //!< ACT to internal RD/WR
    unsigned t_rp;      //!< PRE to ACT
    unsigned t_ras;     //!< ACT to PRE (same bank)
    unsigned t_rc;      //!< ACT to ACT (same bank)
    unsigned t_rrd_s;   //!< ACT to ACT, different bank group
    unsigned t_rrd_l;   //!< ACT to ACT, same bank group
    unsigned t_ccd_s;   //!< RD/WR to RD/WR, different bank group
    unsigned t_ccd_l;   //!< RD/WR to RD/WR, same bank group
    unsigned t_faw;     //!< four-activate window (per rank)
    unsigned t_wr;      //!< write recovery (end of write data to PRE)
    unsigned t_wtr;     //!< write-to-read turnaround (same rank)
    unsigned t_rtp;     //!< read to PRE
    unsigned t_cwl;     //!< CAS write latency
    unsigned t_bl;      //!< burst duration on the data bus (BL8 -> 4)
    unsigned t_refi;    //!< average refresh interval
    unsigned t_rfc;     //!< refresh cycle time

    /** DDR4-1600, 22-22-22 (Table I of the paper). */
    static DramTimingParams ddr4_1600_22();

    /** DDR4-3200, 22-22-22 (a faster grade for scaling studies). */
    static DramTimingParams ddr4_3200_22();

    /**
     * Minimum ticks between a column command issuing and its data
     * completing: min(CL, CWL) + BL, in wall ticks. A controller
     * completion scheduled at decision time t therefore lands at or
     * after t + this gap, which makes it a conservative-lookahead
     * horizon for cross-shard completion events in the sharded
     * event queue (alongside the CXL link latencies).
     */
    Tick
    minCompletionGapTicks() const
    {
        const unsigned cas = t_cl < t_cwl ? t_cl : t_cwl;
        return Tick(cas + t_bl) * t_ck_ps;
    }
};

/** Physical organisation of one DIMM. */
struct DimmGeometry
{
    unsigned ranks = 4;             //!< ranks per DIMM
    unsigned chips_per_rank = 16;   //!< x4 devices per rank
    unsigned bank_groups = 4;
    unsigned banks_per_group = 4;
    unsigned rows = 1u << 17;       //!< rows per bank (8 Gb x4)
    unsigned columns = 1u << 10;    //!< columns per row
    unsigned device_width_bits = 4; //!< DQ width per chip
    /**
     * Customised NDP DIMMs (MEDAL DIMMs, BEACON CXLG-DIMMs) wire each
     * rank's DQ lanes to the on-DIMM logic separately, so ranks do
     * not contend for data lanes; an unmodified DIMM shares one set
     * of lanes across all ranks.
     */
    bool per_rank_lanes = false;
    /**
     * Customised DIMMs likewise drive each rank's C/A bus from the
     * on-DIMM logic independently; a stock DIMM serialises all
     * commands on one C/A bus.
     */
    bool per_rank_cmd_bus = false;

    unsigned banksPerRank() const { return bank_groups * banks_per_group; }
    unsigned totalBanks() const { return ranks * banksPerRank(); }

    /** Bytes delivered by one BL8 burst from a single chip. */
    std::uint64_t
    bytesPerChipBurst() const
    {
        return std::uint64_t{device_width_bits} * 8 / 8;
    }

    /** Bytes per row in one chip (row-buffer size per chip). */
    std::uint64_t
    rowBytesPerChip() const
    {
        return std::uint64_t{columns} * device_width_bits / 8;
    }

    /** Total DIMM capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t{ranks} * chips_per_rank * banksPerRank() *
               rows * rowBytesPerChip();
    }
};

} // namespace beacon

#endif // BEACON_DRAM_TIMING_HH
