/**
 * @file
 * Cycle-level DDR4 timing state for one DIMM.
 *
 * The model tracks per-chip bank state (with individual chip-select,
 * as in MEDAL and BEACON's CXLG-DIMMs, different chips of the same
 * rank may have different rows open in the same bank), per-chip
 * activate windows (tRRD / tFAW), per-chip-position data-lane
 * occupancy (lanes are shared across ranks), a shared command bus,
 * and per-rank refresh blocking.
 *
 * The model is purely functional over time: callers ask for the
 * earliest tick at which a command could legally issue and then
 * commit the command at a chosen tick. It owns no events, which makes
 * it directly unit-testable.
 */

#ifndef BEACON_DRAM_DIMM_TIMING_HH
#define BEACON_DRAM_DIMM_TIMING_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "dram/timing.hh"
#include "dram/types.hh"

namespace beacon
{

/** Cycle-level timing state machine for one DIMM. */
class DimmTimingModel
{
  public:
    DimmTimingModel(const DimmGeometry &geom,
                    const DramTimingParams &timing);

    const DimmGeometry &geometry() const { return geom; }
    const DramTimingParams &timing() const { return tp; }

    /**
     * Observer invoked for every committed command, in issue order.
     * The verification layer taps this to shadow-validate the
     * command stream (see src/check/dram_protocol_checker.hh); an
     * unset tap costs one branch per command.
     */
    using CommandTap = std::function<void(const DramCommand &)>;

    /** Install (or clear, by passing nullptr) the command tap. */
    void setCommandTap(CommandTap tap) { command_tap = std::move(tap); }

    /** Clock period in ticks. */
    Tick tCK() const { return tp.t_ck_ps; }

    /** Row currently open in (rank, chip, bank), or -1. */
    std::int64_t openRow(unsigned rank, unsigned chip,
                         unsigned flat_bank) const;

    /** True when every chip in the group has @p row open. */
    bool rowHit(const DramCoord &coord,
                unsigned banks_per_group) const;

    /** True when every chip in the group has the bank closed. */
    bool bankClosed(const DramCoord &coord,
                    unsigned banks_per_group) const;

    /** Earliest tick >= @p t at which ACT can issue for the group. */
    Tick earliestAct(const DramCoord &coord, Tick t) const;

    /** Earliest tick >= @p t at which PRE can issue for the group. */
    Tick earliestPre(const DramCoord &coord, Tick t) const;

    /**
     * Earliest tick >= @p t at which a RD/WR burst can issue for the
     * group (requires the row to be open and tRCD satisfied).
     */
    Tick earliestColumn(const DramCoord &coord, bool is_write,
                        Tick t) const;

    /** Commit an ACT at @p t (must satisfy earliestAct). */
    void issueAct(const DramCoord &coord, Tick t);

    /** Commit a PRE at @p t. */
    void issuePre(const DramCoord &coord, Tick t);

    /**
     * Commit a RD/WR burst at @p t. With @p auto_precharge the bank
     * closes itself after the access (closed-page policy): the row
     * is gone and the next ACT waits out tRTP/tWR + tRP.
     * @return the tick at which the data transfer finishes.
     */
    Tick issueColumn(const DramCoord &coord, bool is_write, Tick t,
                     bool auto_precharge = false);

    /**
     * Begin a refresh on @p rank at @p t: closes every row in the
     * rank and blocks it until the returned completion tick.
     */
    Tick issueRefresh(unsigned rank, Tick t);

    /** Earliest tick a refresh may start on @p rank (banks idle). */
    Tick earliestRefresh(unsigned rank, Tick t) const;

    /** Tick until which rank @p rank is blocked by refresh. */
    Tick refreshBusyUntil(unsigned rank) const
    {
        return ranks[rank].ref_busy_until;
    }

    // --- Activity counters (read by energy model / stats) ---
    std::uint64_t numActs() const { return n_act; }
    std::uint64_t numPres() const { return n_pre; }
    /** Per-chip ACT/PRE operations (an ACT to a group of g chips
     *  opens g per-chip rows and costs g times the energy). */
    std::uint64_t numActChipOps() const { return n_act_chips; }
    std::uint64_t numPreChipOps() const { return n_pre_chips; }
    std::uint64_t numReadBursts() const { return n_rd; }
    std::uint64_t numWriteBursts() const { return n_wr; }
    std::uint64_t numRefreshes() const { return n_ref; }
    /** Raw bytes moved on the data lanes (useful or not). */
    Bytes rawBytes() const { return raw_bytes; }
    /** Column-command count per chip position (Fig. 13). */
    const std::vector<std::uint64_t> &chipAccesses() const
    {
        return chip_accesses;
    }

  private:
    struct BankState
    {
        std::int64_t open_row = -1;
        Tick act_allowed = 0;   //!< bank-level tRC / tRP gate
        Tick pre_allowed = 0;   //!< tRAS / tRTP / tWR gate
        Tick col_allowed = 0;   //!< tRCD gate after ACT
    };

    struct ChipState
    {
        std::array<Tick, 4> act_history{}; //!< for tFAW (ring)
        unsigned act_head = 0;
        unsigned act_count = 0;
        Tick last_act = 0;
        unsigned last_act_bg = 0;
        bool has_act = false;
        Tick col_bus_allowed = 0;  //!< tCCD gate (per chip)
        unsigned last_col_bg = 0;
        bool has_col = false;
    };

    struct RankState
    {
        Tick ref_busy_until = 0;
        Tick rd_allowed = 0;    //!< write-to-read turnaround
        Tick wr_allowed = 0;    //!< read-to-write turnaround
        Tick busy_until = 0;    //!< latest command/data end (refresh)
    };

    unsigned bankIndex(unsigned rank, unsigned chip,
                       unsigned flat_bank) const;
    BankState &bank(const DramCoord &coord, unsigned chip);
    const BankState &bank(const DramCoord &coord, unsigned chip) const;
    ChipState &chipState(unsigned rank, unsigned chip);
    const ChipState &chipState(unsigned rank, unsigned chip) const;

    /** Align @p t to the next bus-clock edge. */
    Tick align(Tick t) const;

    /** Report a committed command to the tap, if one is installed. */
    void
    reportCommand(DramCommandKind kind, const DramCoord &coord,
                  Tick t) const
    {
        if (command_tap)
            command_tap(DramCommand{kind, coord, t});
    }

    DimmGeometry geom;
    DramTimingParams tp;
    CommandTap command_tap;

    std::vector<BankState> banks;      //!< [rank][chip][flat_bank]
    std::vector<ChipState> chips;      //!< [rank][chip]
    std::vector<RankState> ranks;      //!< [rank]
    std::vector<Tick> lane_busy_until; //!< [chip position]
    /** C/A bus occupancy: one entry per DIMM, or per rank on
     *  customised DIMMs (per_rank_cmd_bus). */
    std::vector<Tick> cmd_bus_busy_until;

    /** Earliest tick the C/A bus serving @p rank is free. */
    Tick
    cmdBusFree(unsigned rank) const
    {
        return cmd_bus_busy_until[geom.per_rank_cmd_bus ? rank : 0];
    }

    /** Occupy the C/A bus serving @p rank until @p until. */
    void
    occupyCmdBus(unsigned rank, Tick until)
    {
        cmd_bus_busy_until[geom.per_rank_cmd_bus ? rank : 0] = until;
    }

    std::uint64_t n_act = 0;
    std::uint64_t n_pre = 0;
    std::uint64_t n_act_chips = 0;
    std::uint64_t n_pre_chips = 0;
    std::uint64_t n_rd = 0;
    std::uint64_t n_wr = 0;
    std::uint64_t n_ref = 0;
    Bytes raw_bytes;
    std::vector<std::uint64_t> chip_accesses;
};

} // namespace beacon

#endif // BEACON_DRAM_DIMM_TIMING_HH
