#include "controller.hh"

#include <algorithm>

#include "check/dram_protocol_checker.hh"
#include "common/logging.hh"
#include "obs/request_trace.hh"

namespace beacon
{

DramController::DramController(const std::string &name, EventQueue &eq,
                               StatRegistry &stats,
                               const DimmGeometry &geom,
                               const DramTimingParams &timing,
                               const DramControllerParams &p)
    : SimObject(name, eq, stats),
      model(geom, timing),
      params(p),
      stat_reads(stat("readsCompleted")),
      stat_writes(stat("writesCompleted")),
      stat_acts(stat("activates")),
      stat_row_hits(stat("rowHits")),
      stat_row_conflicts(stat("rowConflicts")),
      stat_latency(stats.sampleStat(name + ".requestLatency"))
{
    if (params.checkers.dram_protocol) {
        protocol_checker = std::make_unique<DramProtocolChecker>(
            name, geom, timing, params.checkers);
    }
    if (obs::TraceSink *sink = BEACON_TRACE_SINK(eq)) {
        trace = sink;
        trace_ctrl = sink->track(name);
        for (unsigned r = 0; r < geom.ranks; ++r) {
            const std::string rank_name =
                name + ".r" + std::to_string(r);
            trace_rank.push_back(sink->track(rank_name));
            for (unsigned g = 0; g < geom.bank_groups; ++g)
                trace_bg.push_back(sink->track(
                    rank_name + ".bg" + std::to_string(g)));
        }
        // Span lengths: the analytic occupancy each command implies
        // (row open, precharge, data burst, refresh busy).
        trace_dur_act = timing.t_rcd * timing.t_ck_ps;
        trace_dur_pre = timing.t_rp * timing.t_ck_ps;
        trace_dur_col = timing.t_bl * timing.t_ck_ps;
        trace_dur_ref = timing.t_rfc * timing.t_ck_ps;
    }
    if (protocol_checker || trace) {
        // Single tap on the C/A bus shared by the shadow checker and
        // the tracer, in that order.
        model.setCommandTap([this](const DramCommand &cmd) {
            if (protocol_checker)
                protocol_checker->observe(cmd);
            if (trace)
                traceCommand(cmd);
        });
    }
    if (params.enable_refresh) {
        const Tick refi = timing.t_refi * timing.t_ck_ps;
        for (unsigned r = 0; r < geom.ranks; ++r) {
            // Stagger refreshes across ranks.
            const Tick first = refi + r * (refi / geom.ranks);
            eq.schedule(first, [this, r] { refreshTick(r); },
                        EventCat::Dram, params.home_hint);
        }
    }
}

void
DramController::traceCommand(const DramCommand &cmd)
{
    Tick dur = trace_dur_col;
    switch (cmd.kind) {
      case DramCommandKind::Act:
        dur = trace_dur_act;
        break;
      case DramCommandKind::Pre:
        dur = trace_dur_pre;
        break;
      case DramCommandKind::Refresh:
        trace->complete(trace_rank[cmd.coord.rank], "REF", cmd.tick,
                        cmd.tick + trace_dur_ref);
        return;
      default:
        break;
    }
    const unsigned groups = model.geometry().bank_groups;
    trace->complete(
        trace_bg[cmd.coord.rank * groups + cmd.coord.bank_group],
        dramCommandName(cmd.kind), cmd.tick, cmd.tick + dur);
}

DramController::~DramController() = default;

void
DramController::enqueue(MemRequest req)
{
    BEACON_ASSERT(req.bursts >= 1, "request with zero bursts");
    BEACON_ASSERT(req.coord.chip_first + req.coord.chip_count <=
                      model.geometry().chips_per_rank,
                  "chip group out of range");
    eq.checkLaneTouch(params.home_hint, "DramController::enqueue");
    req.enqueue_tick = curTick();
    queue.push_back(ActiveRequest{std::move(req), 0});
    if (trace)
        trace->counter(trace_ctrl, "queue", double(queue.size()));
    scheduleDecision(curTick());
}

void
DramController::scheduleDecision(Tick t)
{
    if (decision_pending && decision_time <= t)
        return;
    if (decision_pending)
        eq.cancel(decision_event);
    decision_pending = true;
    decision_time = std::max(t, curTick());
    decision_event = eq.schedule(
        decision_time,
        [this] {
            decision_pending = false;
            decision_time = max_tick;
            decide();
        },
        EventCat::Dram, params.home_hint);
}

void
DramController::decide()
{
    // Issue as many commands as the C/A bus(es) allow at this tick:
    // a customised DIMM drives each rank's bus independently, so
    // several commands (to different ranks) may go out together.
    while (decideOnce()) {
    }
    if (!queue.empty())
        scheduleDecision(curTick() + model.tCK());
}

bool
DramController::decideOnce()
{
    if (queue.empty())
        return false;

    const Tick now = curTick();
    const unsigned bpg = model.geometry().banks_per_group;
    const unsigned window =
        std::min<std::size_t>(params.scan_window, queue.size());

    // Classify the next needed command for each request in the
    // window and find the best candidate.
    enum class Need { Column, Act, Pre };
    struct Candidate
    {
        unsigned idx;
        Need need;
        Tick earliest;
        bool row_hit;
    };

    Candidate best_ready{0, Need::Pre, max_tick, false};
    bool have_ready = false;
    bool have_ready_hit = false;
    Tick soonest = max_tick;

    for (unsigned i = 0; i < window; ++i) {
        const ActiveRequest &ar = queue[i];
        const DramCoord &coord = ar.req.coord;
        Candidate cand{i, Need::Pre, max_tick, false};
        if (model.rowHit(coord, bpg)) {
            cand.need = Need::Column;
            cand.row_hit = true;
            cand.earliest =
                model.earliestColumn(coord, ar.req.is_write, now);
        } else if (model.bankClosed(coord, bpg)) {
            cand.need = Need::Act;
            cand.earliest = model.earliestAct(coord, now);
        } else {
            cand.need = Need::Pre;
            cand.earliest = model.earliestPre(coord, now);
        }
        soonest = std::min(soonest, cand.earliest);
        if (cand.earliest > now)
            continue;
        // Ready now: prefer row hits, then age (scan order is age).
        if (!have_ready) {
            best_ready = cand;
            have_ready = true;
            have_ready_hit = cand.row_hit;
        } else if (cand.row_hit && !have_ready_hit) {
            best_ready = cand;
            have_ready_hit = true;
        }
    }

    if (!have_ready) {
        if (soonest != max_tick)
            scheduleDecision(soonest);
        return false;
    }

    ActiveRequest &ar = queue[best_ready.idx];
    const DramCoord &coord = ar.req.coord;
    switch (best_ready.need) {
      case Need::Pre:
        model.issuePre(coord, now);
        ++stat_row_conflicts;
        break;
      case Need::Act:
        model.issueAct(coord, now);
        ++stat_acts;
        break;
      case Need::Column: {
        if (ar.bursts_issued == 0 && best_ready.row_hit)
            ++stat_row_hits;
        const bool last_burst =
            ar.bursts_issued + 1 == ar.req.bursts;
        const bool auto_pre =
            last_burst &&
            params.page_policy == PagePolicy::Closed;
        const Tick data_end =
            model.issueColumn(coord, ar.req.is_write, now, auto_pre);
        ++ar.bursts_issued;
        if (ar.bursts_issued == ar.req.bursts) {
            // Request complete at data end.
            MemRequest done = std::move(ar.req);
            queue.erase(queue.begin() + best_ready.idx);
            if (trace)
                trace->counter(trace_ctrl, "queue",
                               double(queue.size()));
            if (done.is_write) {
                ++writes_done;
                ++stat_writes;
            } else {
                ++reads_done;
                ++stat_reads;
            }
            stat_latency.sample(
                double(data_end - done.enqueue_tick));
            if (done.job != 0) {
                // Request-scoped attribution: DRAM media time is the
                // whole queue-to-data residency in this controller.
                if (obs::RequestTrace *rt = BEACON_REQUEST_TRACE(eq))
                    rt->recordSpan(done.job, obs::SpanKind::Dram,
                                   done.enqueue_tick, data_end);
                if (trace)
                    trace->flow(trace_ctrl, "job", done.job, 't');
            }
            if (done.on_complete) {
                // Completion callbacks run on the requester's shard;
                // the CAS-to-data-end gap covers the lookahead.
                eq.schedule(data_end,
                            [cb = std::move(done.on_complete),
                             data_end] { cb(data_end); },
                            EventCat::Dram, done.completion_hint);
            }
        }
        break;
      }
    }
    return true;
}

void
DramController::finalizeCheck() const
{
    if (protocol_checker && params.enable_refresh)
        protocol_checker->finalize(curTick());
}

void
DramController::refreshTick(unsigned rank)
{
    const Tick now = curTick();
    const Tick start = model.earliestRefresh(rank, now);
    if (start > now) {
        eq.schedule(start, [this, rank] { refreshTick(rank); },
                    EventCat::Dram, params.home_hint);
        return;
    }
    model.issueRefresh(rank, now);
    const Tick refi =
        model.timing().t_refi * model.timing().t_ck_ps;
    eq.schedule(now + refi, [this, rank] { refreshTick(rank); },
                EventCat::Dram, params.home_hint);
    // Refresh may unblock nothing, but banks it closed need an ACT;
    // make sure a decision happens afterwards.
    scheduleDecision(model.refreshBusyUntil(rank));
}

} // namespace beacon
