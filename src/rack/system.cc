#include "system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/sampler.hh"

namespace beacon::rack
{

namespace
{

/** Tenant-id stride between hosts (max tenants per host). */
constexpr unsigned tenant_stride = 32;

/** Migration / evacuation transfer chunk. */
constexpr std::uint64_t migration_chunk = 4096;

std::uint64_t
chunkCount(Bytes bytes)
{
    return (bytes.value() + migration_chunk - 1) / migration_chunk;
}

} // namespace

SystemParams
RackSystem::machineParams(const RackParams &p)
{
    SystemParams mp = p.base;
    BEACON_CHECK(!mp.ddr_fabric,
                 "rack machines need the CXL pool fabric");
    BEACON_CHECK(p.expansion_switches >= 1,
                 "rack machines need at least one expansion switch");
    const unsigned base_groups = mp.num_groups;
    mp.num_groups += p.expansion_switches;
    for (unsigned sw = base_groups; sw < mp.num_groups; ++sw) {
        for (unsigned d = 0; d < mp.dimms_per_group; ++d)
            mp.rack_reserved_dimms.push_back(sw * mp.dimms_per_group +
                                             d);
    }
    return mp;
}

RackSystem::RackSystem(const RackParams &params)
    : p(params), mp(machineParams(params)),
      sys(std::make_unique<NdpSystem>(mp))
{
    BEACON_CHECK(p.hosts >= 1 && p.hosts <= 64,
                 "rack supports 1..64 hosts, got ", p.hosts);
    fabric = &sys->poolFabric();
    fw = &sys->memoryFramework();
    StatRegistry &stats = sys->statsMutable();
    EventQueue &eq = sys->eventQueue();

    // Host 0 is the pool's built-in root-port host; the others enter
    // the fabric at the same root and only differ in identity.
    for (unsigned h = 1; h < p.hosts; ++h)
        fabric->registerNode(NodeId::hostNode(h));

    tree_ = std::make_unique<RackTree>(
        eq, stats,
        RackTreeParams{p.hosts, p.switch_levels, p.rack_link});

    const unsigned base_groups = p.base.num_groups;
    for (unsigned sw = base_groups; sw < mp.num_groups; ++sw) {
        for (unsigned d = 0; d < mp.dimms_per_group; ++d)
            expansion_.push_back(sw * mp.dimms_per_group + d);
    }
    for (unsigned i = 0; i < unsigned(expansion_.size()); ++i) {
        online_.insert(expansion_[i]);
        binding_[expansion_[i]] = i % p.hosts;
    }

    const auto &inventory = fw->dimms();
    for (unsigned d : expansion_) {
        MappingPolicy mpol;
        mpol.chip_group = inventory.at(d).geom.chips_per_rank;
        mpol.granule_bytes = p.interleave_granularity;
        mpol.row_major = false;
        mpol.base_row = 0;
        rack_mappers_.emplace(
            d, DimmAddressMapper(inventory.at(d).geom, mpol));
    }

    decoders_.resize(p.hosts);
    hdm_cursor_.assign(p.hosts, 0);
    rebuildDecoders();
    rebalanceHdmReservations();

    seg_cursor_.assign(
        p.hosts, std::vector<std::uint64_t>(p.segments.size(), 0));
    seg_ops_.assign(p.hosts, 0);
    for (std::size_t i = 0; i < p.segments.size(); ++i) {
        const SegmentParams &sp = p.segments[i];
        BEACON_CHECK(online_.count(sp.owner_dimm) != 0,
                     "segment '", sp.name,
                     "' owner is not an online expansion DIMM");
        segments_.push_back(
            std::make_unique<SegmentCoherence>(sp, p.hosts));
        std::string err;
        BEACON_CHECK(fw->reserveOn(segApp(sp), sp.owner_dimm,
                                   sp.bytes, &err),
                     "segment reservation failed: ", err);
        c_bi_.push_back(&stats.counter(
            "rack.seg" + std::to_string(i) + ".biFlits"));
    }

    for (unsigned h = 0; h < p.hosts; ++h) {
        OrchestratorParams op;
        op.scheduler = p.scheduler;
        op.seed = p.seed;
        op.tenant_id_base = h * tenant_stride;
        op.ingress = [this, h](TenantId tenant, std::uint64_t job,
                               std::function<void()> cont) {
            beginIngress(h, tenant, job, std::move(cont));
        };
        hosts_.push_back(
            std::make_unique<PoolOrchestrator>(*sys, op));
    }

    c_ingress = &stats.counter("rack.ingressBytes");
    c_hits = &stats.counter("rack.cacheHits");
    c_misses = &stats.counter("rack.cacheMisses");
    c_inval = &stats.counter("rack.invalidations");
    c_migrated = &stats.counter("rack.migratedBytes");
    c_hot_adds = &stats.counter("rack.hotAdds");
    c_hot_removes = &stats.counter("rack.hotRemoves");
    c_rebinds = &stats.counter("rack.rebinds");
}

RackSystem::~RackSystem() = default;

std::string
RackSystem::hdmApp(unsigned host) const
{
    return "host" + std::to_string(host) + ".hdm";
}

std::string
RackSystem::segApp(const SegmentParams &seg) const
{
    return "rack.seg." + seg.name;
}

void
RackSystem::rebuildDecoders()
{
    for (unsigned h = 0; h < p.hosts; ++h) {
        std::vector<unsigned> targets;
        for (unsigned d : online_) { // std::set: ascending, stable
            if (binding_.at(d) == h)
                targets.push_back(d);
        }
        // A host whose virtual hierarchy lost every expander falls
        // back to decoding across the whole online set (its DPA
        // window stays disjoint, so nothing aliases).
        if (targets.empty())
            targets.assign(online_.begin(), online_.end());
        BEACON_CHECK(!targets.empty(), "host ", h,
                     " has no online expansion DIMM to decode onto");
        const unsigned ways = std::min(
            p.interleave_ways, unsigned(targets.size()));
        targets.resize(ways);
        const std::uint64_t unit =
            std::uint64_t(p.interleave_granularity) * ways;
        const std::uint64_t size =
            p.hdm_bytes_per_host.value() / unit * unit;
        BEACON_CHECK(size > 0,
                     "hdm_bytes_per_host smaller than one ",
                     ways, "-way interleave unit");
        HdmRange range;
        range.base =
            std::uint64_t(h) * p.hdm_bytes_per_host.value();
        range.size = Bytes{size};
        // DPA windows inherit the hosts' HPA disjointness, so two
        // hosts sharing a target never collide on (target, dpa).
        range.dpa_base = range.base;
        range.ways = ways;
        range.granularity = Bytes{p.interleave_granularity};
        range.targets = targets;
        decoders_[h].clear();
        decoders_[h].addRange(range);
        if (hdm_cursor_[h] >= size)
            hdm_cursor_[h] = 0;
    }
}

void
RackSystem::rebalanceHdmReservations()
{
    for (unsigned h = 0; h < p.hosts; ++h) {
        const std::string app = hdmApp(h);
        for (unsigned d : expansion_)
            fw->releaseOn(app, d);
        const HdmRange &range = decoders_[h].range(0);
        const Bytes share{range.size.value() / range.ways};
        for (unsigned target : range.targets) {
            std::string err;
            BEACON_CHECK(fw->reserveOn(app, target, share, &err),
                         "HDM reservation failed for host ", h,
                         ": ", err);
        }
    }
}

ResolvedAccess
RackSystem::rackAccess(unsigned dimm, std::uint64_t dpa,
                       Bytes bytes) const
{
    const DimmAddressMapper &mapper = rack_mappers_.at(dimm);
    ResolvedAccess acc;
    acc.dimm_index = dimm;
    acc.node = sys->dimmNodeId(dimm);
    acc.coord = mapper.mapGranule(dpa / p.interleave_granularity);
    acc.bursts = mapper.burstsFor(std::uint32_t(bytes.value()));
    acc.bytes = bytes;
    return acc;
}

ResolvedAccess
RackSystem::segAccess(std::size_t seg, std::uint64_t block) const
{
    const SegmentCoherence &sc = *segments_[seg];
    // Segments occupy private DPA regions far above every per-host
    // HDM window (one 4 GiB region per segment; the mapper wraps
    // modulo DIMM capacity like every rack access).
    const std::uint64_t dpa =
        (std::uint64_t(seg + 1) << 32) +
        block * sc.params().block_bytes;
    return rackAccess(sc.owner(), dpa,
                      Bytes{sc.params().block_bytes});
}

TenantId
RackSystem::addTenant(unsigned host, const TenantSpec &spec)
{
    BEACON_ASSERT(host < p.hosts, "bad rack host ", host);
    BEACON_CHECK(hosts_[host]->tenantIds().size() < tenant_stride,
                 "host ", host, " exceeded ", tenant_stride,
                 " tenants (the per-host tenant-id stride)");
    return hosts_[host]->addTenant(spec);
}

// ------------------------------------------------------------------
// Ingress pipeline
// ------------------------------------------------------------------

void
RackSystem::beginIngress(unsigned host, TenantId tenant,
                         std::uint64_t job,
                         std::function<void()> cont)
{
    if (paused_) {
        // Hot-plug in progress: replayed in arrival order on resume.
        paused_ingress_.push_back(
            [this, host, tenant, job,
             cont = std::move(cont)]() mutable {
                beginIngress(host, tenant, job, std::move(cont));
            });
        return;
    }
    ++rack_inflight_;
    auto st = std::make_shared<IngressState>();
    st->host = host;
    st->tenant = tenant;
    st->job = job;
    st->cont = std::move(cont);
    if (p.ingress_bytes_per_job.value() == 0) {
        segmentPhase(st);
        return;
    }
    tree_->traverse(host, p.ingress_bytes_per_job,
                    [this, st](Tick) { scatterHdm(st); });
}

void
RackSystem::scatterHdm(const std::shared_ptr<IngressState> &st)
{
    const HdmDecoder &dec = decoders_[st->host];
    const HdmRange &range = dec.range(0);
    const std::uint64_t span = std::min(
        p.ingress_bytes_per_job.value(), range.size.value());
    if (hdm_cursor_[st->host] + span > range.size.value())
        hdm_cursor_[st->host] = 0;
    const std::uint64_t hpa = range.base + hdm_cursor_[st->host];
    hdm_cursor_[st->host] += span;

    dec.forEachGranule(
        hpa, Bytes{span},
        [this, st](const HdmDecoded &piece, Bytes piece_bytes) {
            ++st->pending;
            // Issue-time accounting, all on lane 0.
            sys->accountDramBytes(st->tenant, piece_bytes);
            *c_ingress += double(piece_bytes.value());
            const unsigned dimm = piece.target;
            const ResolvedAccess acc =
                rackAccess(dimm, piece.dpa, piece_bytes);
            fabric->sendCtx(
                NodeId::hostNode(st->host), sys->dimmNodeId(dimm),
                piece_bytes, false, st->tenant, st->job,
                [this, st, dimm, acc](Tick) {
                    // Expander's lane: commit, then ack the host.
                    sys->dimmDram(
                        dimm, acc, true, [this, st, dimm](Tick) {
                            fabric->sendCtx(
                                sys->dimmNodeId(dimm),
                                NodeId::hostNode(st->host),
                                Bytes{8}, false, st->tenant,
                                st->job,
                                [this, st](Tick) {
                                    hdmPieceDone(st);
                                });
                        }, st->job);
                });
        });
    BEACON_ASSERT(st->pending > 0,
                  "HDM scatter produced no pieces");
}

void
RackSystem::hdmPieceDone(const std::shared_ptr<IngressState> &st)
{
    BEACON_ASSERT(st->pending > 0, "stray HDM scatter ack");
    if (--st->pending == 0)
        segmentPhase(st);
}

void
RackSystem::segmentPhase(const std::shared_ptr<IngressState> &st)
{
    if (st->seg >= segments_.size() ||
        p.segment_read_bytes_per_job.value() == 0) {
        finishIngress(st);
        return;
    }
    const std::size_t seg = st->seg++;
    SegmentCoherence &sc = *segments_[seg];
    const std::uint32_t block_bytes = sc.params().block_bytes;
    const std::uint64_t seq = seg_ops_[st->host]++;
    const bool is_write =
        p.segment_write_every != 0 &&
        (seq + 1) % p.segment_write_every == 0;
    const std::uint64_t blocks =
        is_write ? 1
                 : std::max<std::uint64_t>(
                       1, (p.segment_read_bytes_per_job.value() +
                           block_bytes - 1) /
                              block_bytes);
    // Jobs revisit a hot working set of the segment (the index head
    // every job consults) rather than streaming the whole segment
    // once — the re-reads are what give the host caches hits and the
    // writes someone to back-invalidate.
    const std::uint64_t working_set =
        std::min<std::uint64_t>(sc.numBlocks(), 16);
    std::uint64_t &cursor = seg_cursor_[st->host][seg];
    const std::uint64_t first = cursor;
    cursor = (cursor + blocks) % working_set;
    st->pending = unsigned(blocks);
    for (std::uint64_t i = 0; i < blocks; ++i) {
        const std::uint64_t block = (first + i) % working_set;
        coherentAccess(st->host, st->tenant, seg, block, is_write,
                       [this, st] {
                           if (--st->pending == 0)
                               segmentPhase(st);
                       });
    }
}

void
RackSystem::finishIngress(const std::shared_ptr<IngressState> &st)
{
    BEACON_ASSERT(rack_inflight_ > 0, "unbalanced rack ingress");
    --rack_inflight_;
    st->cont();
    tryExecuteOp(); // no-op unless a hot-plug op is drain-waiting
}

// ------------------------------------------------------------------
// Coherence protocol (see docs/rack_scale.md for the message table)
// ------------------------------------------------------------------

void
RackSystem::coherentAccess(unsigned host, TenantId tenant,
                           std::size_t seg, std::uint64_t block,
                           bool is_write, std::function<void()> done)
{
    SegmentCoherence &sc = *segments_[seg];
    const bool hit = is_write ? sc.modifiedOn(host, block)
                              : sc.cachedOn(host, block);
    if (hit) {
        ++*c_hits;
        done();
        return;
    }
    ++*c_misses;
    ++txn_inflight_;
    // The block's DRAM touch is accounted at issue time on lane 0;
    // the physical access runs later on the owner's lane.
    sys->accountDramBytes(tenant, Bytes{sc.params().block_bytes});
    fabric->sendTagged(
        NodeId::hostNode(host), sys->dimmNodeId(sc.owner()),
        Bytes{16}, false, tenant,
        [this, host, tenant, seg, block, is_write,
         done = std::move(done)](Tick) mutable {
            ownerHandle(host, tenant, seg, block, is_write,
                        std::move(done));
        });
}

void
RackSystem::ownerHandle(unsigned host, TenantId tenant,
                        std::size_t seg, std::uint64_t block,
                        bool is_write, std::function<void()> done)
{
    SegmentCoherence &sc = *segments_[seg];
    if (sc.busy(block)) {
        sc.queueTxn(block,
                    [this, host, tenant, seg, block, is_write,
                     done = std::move(done)]() mutable {
                        startTxn(host, tenant, seg, block, is_write,
                                 std::move(done));
                    });
        return;
    }
    startTxn(host, tenant, seg, block, is_write, std::move(done));
}

void
RackSystem::startTxn(unsigned host, TenantId tenant, std::size_t seg,
                     std::uint64_t block, bool is_write,
                     std::function<void()> done)
{
    // Owner lane: claim the block and update the directory (both
    // live with the owning expander), then fetch the block from its
    // DRAM. Every fabric message of the transaction is issued from a
    // DRAM-completion callback on lane 0: the pool fabric is lane-0
    // state (single-writer links, buses and packers), and DRAM
    // completions re-home there — the same trampoline the NDP
    // remote-access paths ride. A fabric send from this (the owner's)
    // lane would interleave with lane 0's sends nondeterministically
    // and break serial-vs-sharded bit-identity.
    SegmentCoherence &sc = *segments_[seg];
    sc.setBusy(block);
    const std::uint32_t block_bytes = sc.params().block_bytes;

    if (!is_write) {
        const auto actions = sc.directoryRead(host, block);
        sys->dimmDram(
            sc.owner(), segAccess(seg, block), false,
            [this, host, tenant, seg, block, block_bytes, actions,
             done = std::move(done)](Tick) mutable {
                // Lane 0: clean copy -> respond; dirty elsewhere ->
                // BI-snoop the modifier, commit its writeback, then
                // respond with the fresh data.
                if (!actions.writeback) {
                    respond(host, tenant, seg, block, false,
                            std::move(done));
                    return;
                }
                ++*c_bi_[seg];
                const unsigned victim = actions.writeback_host;
                fabric->sendTagged(
                    sys->dimmNodeId(segments_[seg]->owner()),
                    NodeId::hostNode(victim), Bytes{block_bytes},
                    false, tenant,
                    [this, host, tenant, seg, block, victim,
                     block_bytes, done = std::move(done)](Tick) mutable {
                        // Lane 0: drop the stale copy, send the
                        // dirty data back.
                        segments_[seg]->uncache(victim, block);
                        ++*c_inval;
                        sys->accountDramBytes(tenant,
                                              Bytes{block_bytes});
                        fabric->sendTagged(
                            NodeId::hostNode(victim),
                            sys->dimmNodeId(segments_[seg]->owner()),
                            Bytes{block_bytes}, false, tenant,
                            [this, host, tenant, seg, block,
                             done = std::move(done)](Tick) mutable {
                                // Owner lane: commit the writeback.
                                sys->dimmDram(
                                    segments_[seg]->owner(),
                                    segAccess(seg, block), true,
                                    [this, host, tenant, seg, block,
                                     done = std::move(done)](
                                        Tick) mutable {
                                        // Lane 0.
                                        respond(host, tenant, seg,
                                                block, false,
                                                std::move(done));
                                    });
                            });
                    });
            });
        return;
    }

    const auto actions = sc.directoryWrite(host, block);
    // No stale copy: the fetch doubles as the write commit. With
    // sharers, commit after the last invalidation ack instead.
    const bool exclusive = actions.invalidate.empty();
    sys->dimmDram(
        sc.owner(), segAccess(seg, block), exclusive,
        [this, host, tenant, seg, block, block_bytes, actions,
         exclusive, done = std::move(done)](Tick) mutable {
            // Lane 0.
            if (exclusive) {
                respond(host, tenant, seg, block, true,
                        std::move(done));
                return;
            }
            // BI-snoop every stale copy; the write proceeds once all
            // acks are in. A dirty victim's data merges into the
            // incoming write (accounted, not separately committed).
            auto acks = std::make_shared<unsigned>(
                unsigned(actions.invalidate.size()));
            for (const unsigned victim : actions.invalidate) {
                ++*c_bi_[seg];
                const bool dirty = actions.writeback &&
                                   victim == actions.writeback_host;
                fabric->sendTagged(
                    sys->dimmNodeId(segments_[seg]->owner()),
                    NodeId::hostNode(victim), Bytes{block_bytes},
                    false, tenant,
                    [this, host, tenant, seg, block, victim, dirty,
                     block_bytes, acks, done](Tick) {
                        // Lane 0: invalidate, then ack the owner.
                        segments_[seg]->uncache(victim, block);
                        ++*c_inval;
                        if (dirty) {
                            sys->accountDramBytes(
                                tenant, Bytes{block_bytes});
                        }
                        fabric->sendTagged(
                            NodeId::hostNode(victim),
                            sys->dimmNodeId(segments_[seg]->owner()),
                            Bytes{8}, false, tenant,
                            [this, host, tenant, seg, block, acks,
                             done](Tick) {
                                // Owner lane: the last ack commits
                                // the write, then responds (lane 0).
                                if (--*acks != 0)
                                    return;
                                sys->dimmDram(
                                    segments_[seg]->owner(),
                                    segAccess(seg, block), true,
                                    [this, host, tenant, seg, block,
                                     done](Tick) {
                                        respond(host, tenant, seg,
                                                block, true, done);
                                    });
                            });
                    });
            }
        });
}

void
RackSystem::respond(unsigned host, TenantId tenant, std::size_t seg,
                    std::uint64_t block, bool is_write,
                    std::function<void()> done)
{
    // Lane 0: data (read) / ack (write) flit back to the host.
    SegmentCoherence &sc = *segments_[seg];
    const Bytes resp =
        is_write ? Bytes{8} : Bytes{sc.params().block_bytes};
    fabric->sendTagged(
        sys->dimmNodeId(sc.owner()), NodeId::hostNode(host), resp,
        false, tenant,
        [this, host, seg, block, is_write,
         done = std::move(done)](Tick) mutable {
            // Lane 0: install and retire. The install-ack goes out
            // FIRST: done() may complete the drain a hot-plug op is
            // waiting on, and the op's directory-clear kick must
            // trail the ack through the (FIFO) fabric path so the
            // directory only resets after busy clears.
            SegmentCoherence &sc = *segments_[seg];
            if (is_write)
                sc.cacheModified(host, block);
            else
                sc.cacheShared(host, block);
            fabric->sendTagged(
                NodeId::hostNode(host), sys->dimmNodeId(sc.owner()),
                Bytes{8}, false, TenantId{},
                [this, seg, block](Tick) {
                    // Owner lane: unbusy, start the next queued
                    // transaction.
                    SegmentCoherence &sc = *segments_[seg];
                    sc.clearBusy(block);
                    if (auto next = sc.popTxn(block))
                        next();
                });
            BEACON_ASSERT(txn_inflight_ > 0,
                          "stray txn retirement");
            --txn_inflight_;
            done();
            tryExecuteOp();
        });
}

// ------------------------------------------------------------------
// Hot-plug state machine
// ------------------------------------------------------------------

void
RackSystem::scheduleHotRemove(Tick at, unsigned dimm)
{
    BEACON_ASSERT(!ran_, "hot-plug must be scheduled before run()");
    sys->eventQueue().schedule(
        at,
        [this, dimm] {
            enqueueOp({RackOp::Kind::HotRemove, dimm, 0});
        },
        EventCat::Rack);
}

void
RackSystem::scheduleHotAdd(Tick at, unsigned dimm)
{
    BEACON_ASSERT(!ran_, "hot-plug must be scheduled before run()");
    sys->eventQueue().schedule(
        at,
        [this, dimm] { enqueueOp({RackOp::Kind::HotAdd, dimm, 0}); },
        EventCat::Rack);
}

void
RackSystem::scheduleRebind(Tick at, unsigned dimm,
                           unsigned new_host)
{
    BEACON_ASSERT(!ran_, "hot-plug must be scheduled before run()");
    sys->eventQueue().schedule(
        at,
        [this, dimm, new_host] {
            enqueueOp({RackOp::Kind::Rebind, dimm, new_host});
        },
        EventCat::Rack);
}

void
RackSystem::enqueueOp(const RackOp &op)
{
    op_queue_.push_back(op);
    pumpOps();
}

void
RackSystem::pumpOps()
{
    if (op_active_ || op_queue_.empty())
        return;
    op_active_ = true;
    paused_ = true;
    tryExecuteOp();
}

void
RackSystem::tryExecuteOp()
{
    // Only fires the op while one is drain-waiting; finishIngress
    // and transaction retirement call this unconditionally, and may
    // do so reentrantly (the dispatch below can drain the last unit
    // of work, whose completion calls back in here) — op_running_
    // keeps a migrating op from being overtaken by the next in queue.
    if (!op_active_ || op_running_ || !paused_ ||
        rack_inflight_ > 0 || txn_inflight_ > 0 || op_queue_.empty())
        return;
    op_running_ = true;
    const RackOp op = op_queue_.front();
    op_queue_.pop_front();
    switch (op.kind) {
      case RackOp::Kind::HotAdd:
        executeHotAdd(op);
        break;
      case RackOp::Kind::HotRemove:
        executeHotRemove(op);
        break;
      case RackOp::Kind::Rebind:
        executeRebind(op);
        break;
    }
}

void
RackSystem::executeHotAdd(const RackOp &op)
{
    const unsigned d = op.dimm;
    BEACON_CHECK(std::find(expansion_.begin(), expansion_.end(),
                           d) != expansion_.end(),
                 "hot-add of non-expansion DIMM index ", d);
    BEACON_CHECK(online_.count(d) == 0,
                 "hot-add of already-online expander ", d);
    const NodeId node = sys->dimmNodeId(d);
    if (!fabric->isRegistered(node))
        fabric->registerNode(node);
    // Restore the delivery home the hot-remove dropped (the DIMM's
    // controller lane, matching buildMachine's shard plan).
    fabric->setNodeHome(node, 1 + d);
    online_.insert(d);
    // Bind to the host with the fewest expanders (lowest host wins
    // ties — deterministic).
    std::vector<unsigned> counts(p.hosts, 0);
    for (const auto &[dimm, h] : binding_)
        ++counts[h];
    unsigned best = 0;
    for (unsigned h = 1; h < p.hosts; ++h) {
        if (counts[h] < counts[best])
            best = h;
    }
    binding_[d] = best;
    rebuildDecoders();
    rebalanceHdmReservations();
    ++*c_hot_adds;
    completeOp();
}

void
RackSystem::executeHotRemove(const RackOp &op)
{
    const unsigned d = op.dimm;
    BEACON_CHECK(online_.count(d) != 0,
                 "hot-remove of offline expander DIMM index ", d);
    BEACON_CHECK(online_.size() > 1,
                 "cannot hot-remove the last online expander");
    op_pending_acks_ = 0;
    op_done_ = [this, d] {
        fabric->unregisterNode(sys->dimmNodeId(d));
        online_.erase(d);
        binding_.erase(d);
        rebuildDecoders();
        rebalanceHdmReservations();
        ++*c_hot_removes;
        completeOp();
    };

    // 1. Re-home every segment the leaving expander owns: rewrite
    // the capacity bookkeeping, conservatively BI-invalidate every
    // host mapping (the copies re-fetch from the new owner), clear
    // the old directory from its own lane, and stream the data over.
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        SegmentCoherence &sc = *segments_[i];
        if (sc.owner() != d)
            continue;
        unsigned new_owner = 0;
        bool found = false;
        std::uint64_t best_free = 0;
        for (const unsigned c : online_) {
            if (c == d)
                continue;
            const std::uint64_t free = fw->freeBytes(c).value();
            if (!found || free > best_free) {
                found = true;
                best_free = free;
                new_owner = c;
            }
        }
        BEACON_CHECK(found, "no online expander can adopt segment '",
                     sc.params().name, "'");
        fw->releaseOn(segApp(sc.params()), d);
        std::string err;
        BEACON_CHECK(fw->reserveOn(segApp(sc.params()), new_owner,
                                   sc.params().bytes, &err),
                     "segment re-home failed: ", err);
        *c_inval += double(sc.uncacheAll());
        sc.setOwner(new_owner);
        op_pending_acks_ += chunkCount(sc.params().bytes);
        fabric->sendTagged(
            NodeId::host(), sys->dimmNodeId(d), Bytes{16}, false,
            TenantId{}, [this, i, d, new_owner](Tick) {
                // Old owner's lane (quiescent: drained + paused).
                segments_[i]->directoryClear();
                chunkTransfer(d, new_owner,
                              segments_[i]->params().bytes);
            });
    }

    // 2. Evacuate the HDM regions still resident on the expander
    // onto the remaining online expanders, then stream each move.
    // The framework's interim usage tables are superseded by the
    // reservation rebalance in op_done_; evacuate() decides the
    // migration traffic pattern.
    std::vector<unsigned> candidates;
    for (const unsigned c : online_) {
        if (c != d)
            candidates.push_back(c);
    }
    std::vector<RegionMove> moves;
    std::string err;
    BEACON_CHECK(fw->evacuate(d, &moves, &err, &candidates),
                 "hot-remove evacuation failed: ", err);
    for (const RegionMove &mv : moves) {
        op_pending_acks_ += chunkCount(mv.bytes);
        fabric->sendTagged(
            NodeId::host(), sys->dimmNodeId(d), Bytes{16}, false,
            TenantId{}, [this, mv](Tick) {
                chunkTransfer(mv.from, mv.to, mv.bytes);
            });
    }

    if (op_pending_acks_ == 0) {
        auto finish = std::move(op_done_);
        op_done_ = nullptr;
        finish();
    }
}

void
RackSystem::executeRebind(const RackOp &op)
{
    const unsigned d = op.dimm;
    BEACON_CHECK(online_.count(d) != 0,
                 "VCS rebind of offline expander ", d);
    BEACON_CHECK(op.new_host < p.hosts, "VCS rebind to bad host ",
                 op.new_host);
    const unsigned old_host = binding_.at(d);
    if (old_host == op.new_host) {
        ++*c_rebinds;
        completeOp();
        return;
    }
    // Resident bytes must be read before the rebalance rewrites the
    // bookkeeping.
    const Bytes resident = fw->appBytesOn(hdmApp(old_host), d);
    binding_[d] = op.new_host;
    rebuildDecoders();
    rebalanceHdmReservations();
    ++*c_rebinds;
    const unsigned dest = decoders_[old_host].range(0).targets.front();
    if (resident.value() == 0 || dest == d) {
        completeOp();
        return;
    }
    op_pending_acks_ = chunkCount(resident);
    op_done_ = [this] { completeOp(); };
    fabric->sendTagged(NodeId::host(), sys->dimmNodeId(d), Bytes{16},
                       false, TenantId{},
                       [this, d, dest, resident](Tick) {
                           chunkTransfer(d, dest, resident);
                       });
}

void
RackSystem::chunkTransfer(unsigned src, unsigned dst, Bytes bytes)
{
    // Runs on @p src's lane (kicked by a management flit).
    std::uint64_t remaining = bytes.value();
    std::uint64_t offset = 0;
    while (remaining > 0) {
        const Bytes chunk{std::min(remaining, migration_chunk)};
        // Transient migration DPA region above every other window.
        const std::uint64_t dpa =
            (std::uint64_t(1) << 40) + offset;
        sys->dimmDram(
            src, rackAccess(src, dpa, chunk), false,
            [this, src, dst, dpa, chunk](Tick) {
                fabric->sendTagged(
                    sys->dimmNodeId(src), sys->dimmNodeId(dst),
                    chunk, false, TenantId{},
                    [this, dst, dpa, chunk](Tick) {
                        // Destination lane: commit, ack the manager.
                        sys->dimmDram(
                            dst, rackAccess(dst, dpa, chunk), true,
                            [this, dst, chunk](Tick) {
                                fabric->sendTagged(
                                    sys->dimmNodeId(dst),
                                    NodeId::host(), Bytes{8}, false,
                                    TenantId{}, [this, chunk](Tick) {
                                        opAck(chunk);
                                    });
                            });
                    });
            });
        offset += chunk.value();
        remaining -= chunk.value();
    }
}

void
RackSystem::opAck(Bytes chunk)
{
    // Lane 0: account the migration (source read + target write).
    *c_migrated += double(chunk.value());
    sys->accountDramBytes(TenantId{}, Bytes{2 * chunk.value()});
    BEACON_ASSERT(op_pending_acks_ > 0,
                  "unexpected rack migration ack");
    if (--op_pending_acks_ == 0) {
        auto finish = std::move(op_done_);
        op_done_ = nullptr;
        finish();
    }
}

void
RackSystem::completeOp()
{
    op_running_ = false;
    op_active_ = false;
    paused_ = false;
    std::deque<std::function<void()>> replay;
    replay.swap(paused_ingress_);
    for (auto &fn : replay)
        fn();
    pumpOps();
}

// ------------------------------------------------------------------
// Drive loop and reporting
// ------------------------------------------------------------------

bool
RackSystem::allFinished() const
{
    for (const auto &host : hosts_) {
        if (!host->finished())
            return false;
    }
    return true;
}

bool
RackSystem::rackBusy() const
{
    return op_active_ || !op_queue_.empty() || rack_inflight_ > 0 ||
           txn_inflight_ > 0 || !paused_ingress_.empty();
}

RackReport
RackSystem::run()
{
    BEACON_ASSERT(!ran_, "RackSystem::run() is one-shot");
    ran_ = true;
    EventQueue &eq = sys->eventQueue();
    sys->setSlotFreedFn([this] {
        for (auto &host : hosts_)
            host->dispatch();
    });

    // Per-host pool-bandwidth series from the hosts' disjoint
    // tenant-tagged counters (must register before sampling starts).
    if (obs::Sampler *sampler = sys->obsSampler()) {
        for (unsigned h = 0; h < p.hosts; ++h) {
            std::vector<std::string> substrings;
            for (const TenantId tenant : hosts_[h]->tenantIds()) {
                substrings.push_back(
                    "tenant" + std::to_string(tenant.value()) +
                    ".usefulBytes");
            }
            if (!substrings.empty()) {
                // Setup-time probe registration, before the run.
                // beacon-lint: shared-state(Sampler.addCounterRate, direct-mutation)
                sampler->addCounterRate(
                    "rack.host" + std::to_string(h) + ".fabricGBps",
                    sys->statsMutable(), std::move(substrings),
                    1e-9);
            }
        }
    }

    for (auto &host : hosts_)
        host->start();

    // Same windowed drive as PoolOrchestrator::run(), summed over
    // every host: a window is safe when the all-hosts-finished
    // predicate provably cannot flip inside it; pending hot-plug
    // work alone never flips it (the stop condition also requires
    // the rack idle, checked below).
    ShardedEventQueue *sq = eq.sharded();
    while (!allFinished() || rackBusy()) {
        if (sq != nullptr && sq->lookahead() > 0) {
            const Tick t0 = sq->nextPendingTick();
            if (t0 != max_tick && t0 < max_tick - sq->lookahead()) {
                const Tick w_end = t0 + sq->lookahead();
                std::uint64_t done = 0;
                std::uint64_t outstanding = 0;
                std::uint64_t arrivals = 0;
                std::uint64_t target = 0;
                for (auto &host : hosts_) {
                    done += host->doneJobs();
                    outstanding += host->outstandingJobs();
                    arrivals += host->arrivalsBetween(t0, w_end);
                    target += host->targetJobs();
                }
                if (done + outstanding + arrivals < target &&
                    sq->runWindow()) {
                    BEACON_CHECK(!(allFinished() && !rackBusy()),
                                 "rack stop predicate flipped "
                                 "inside a window");
                    continue;
                }
            }
        }
        if (!eq.runOne()) {
            BEACON_PANIC("rack run stalled with ", rack_inflight_,
                         " rack ops in flight and ",
                         op_queue_.size(),
                         " reconfigurations queued");
        }
    }

    const Tick end = eq.now();
    RackReport report;
    report.machine = sys->machineResult(end);
    for (auto &host : hosts_)
        report.hosts.push_back(host->collectReport(report.machine));

    if (mp.checkers.any())
        verifyRackConservation();

    const StatRegistry &reg = sys->stats();
    report.cache_hits =
        std::uint64_t(reg.counterValue("rack.cacheHits"));
    report.cache_misses =
        std::uint64_t(reg.counterValue("rack.cacheMisses"));
    report.invalidations =
        std::uint64_t(reg.counterValue("rack.invalidations"));
    report.bi_flits = std::uint64_t(reg.sumMatching(".biFlits"));
    report.ingress_bytes = Bytes{
        std::uint64_t(reg.counterValue("rack.ingressBytes"))};
    report.migrated_bytes = Bytes{
        std::uint64_t(reg.counterValue("rack.migratedBytes"))};
    report.hot_adds =
        unsigned(reg.counterValue("rack.hotAdds"));
    report.hot_removes =
        unsigned(reg.counterValue("rack.hotRemoves"));
    report.rebinds = unsigned(reg.counterValue("rack.rebinds"));
    if (report.machine.seconds > 0) {
        const double pool_rate =
            double(sys->numDimms()) *
            fabric->params().dimm_link.gb_per_s * 1e9;
        report.pool_utilization =
            double(report.machine.wire_bytes.value()) /
            (pool_rate * report.machine.seconds);
    }

    sys->setSlotFreedFn(nullptr);
    return report;
}

void
RackSystem::verifyRackConservation() const
{
    // The per-orchestrator check only knows its own tenants; on a
    // rack the tagged counters of EVERY host must sum to the shared
    // machine's untagged totals.
    const StatRegistry &reg = sys->stats();
    auto check = [](double total, double by_tenant,
                    const char *what) {
        BEACON_ASSERT(std::abs(total - by_tenant) <= 1e-6,
                      "per-tenant ", what,
                      " do not sum to the untagged total: ",
                      by_tenant, " vs ", total);
    };

    // DRAM families sum the host counter plus the partition-local
    // twins written on the CXLG lanes ("system.part<p>.*").
    double fabric_bytes = reg.sumMatching("tenant0.usefulBytes");
    double pe_ticks = reg.sumMatching("tenant0.peBusyTicks");
    double dram_bytes = reg.sumMatching("tenant0.dramBytes");
    for (const auto &host : hosts_) {
        for (const TenantId tenant : host->tenantIds()) {
            const std::string tag =
                "tenant" + std::to_string(tenant.value());
            fabric_bytes += reg.sumMatching(tag + ".usefulBytes");
            pe_ticks += reg.sumMatching(tag + ".peBusyTicks");
            dram_bytes += reg.sumMatching(tag + ".dramBytes");
        }
    }
    check(reg.sumMatching("usefulBytesTotal"), fabric_bytes,
          "fabric bytes");
    check(reg.sumMatching("peBusyTotalTicks"), pe_ticks,
          "PE busy ticks");
    check(reg.sumMatching("dramBytesTotal"), dram_bytes,
          "DRAM bytes");
}

} // namespace beacon::rack
