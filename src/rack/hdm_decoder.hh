/**
 * @file
 * CXL HDM (Host-managed Device Memory) address decoder.
 *
 * Each rack host owns one decoder mapping its host physical address
 * (HPA) ranges onto pool expanders. A range interleaves consecutive
 * granules round-robin across `ways` targets, exactly like the HDM
 * decoder capability of a CXL 3.x host bridge: granule g of the range
 * lands on target g % ways at device physical address (DPA)
 *
 *     dpa_base + (g / ways) * granularity + offset-in-granule.
 *
 * The math round-trips: encode(decode(hpa)) == hpa for every address
 * of every range (property-tested in tests/test_rack.cc), which is
 * what lets hot-plug rebuild decoders without losing track of data.
 */

#ifndef BEACON_RACK_HDM_DECODER_HH
#define BEACON_RACK_HDM_DECODER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"

namespace beacon::rack
{

/** One programmed HPA range of a host's HDM decoder. */
struct HdmRange
{
    std::uint64_t base = 0;  //!< first HPA covered
    Bytes size;              //!< multiple of ways * granularity
    std::uint64_t dpa_base = 0;
    unsigned ways = 1;           //!< interleave ways (>= 1)
    Bytes granularity{256};      //!< power-of-two interleave granule
    /** Target expander (global DIMM index) per way. */
    std::vector<unsigned> targets;
};

/** Result of decoding one HPA. */
struct HdmDecoded
{
    unsigned target = 0;     //!< global DIMM index
    unsigned way = 0;        //!< interleave way the HPA hit
    std::uint64_t dpa = 0;   //!< device physical address
    std::size_t range = 0;   //!< index of the matched range
};

/**
 * A host's HDM decoder: an ordered list of non-overlapping HPA
 * ranges. Plain state, no event-queue interaction; rack machines
 * mutate it only from lane-0 control events.
 */
class HdmDecoder
{
  public:
    /**
     * Program a range. Hard-fails (BEACON_CHECK) on a non-power-of-2
     * or zero granularity, a target list whose size differs from
     * `ways`, a size that does not tile ways * granularity, or an HPA
     * overlap with an already-programmed range.
     */
    void addRange(const HdmRange &range);

    /** Drop every range (hot-plug reprogramming). */
    void clear() { ranges.clear(); }

    std::size_t numRanges() const { return ranges.size(); }
    const HdmRange &range(std::size_t i) const { return ranges.at(i); }

    /** True when some range covers @p hpa. */
    bool contains(std::uint64_t hpa) const;

    /** Decode @p hpa; hard-fails when no range covers it. */
    HdmDecoded decode(std::uint64_t hpa) const;

    /**
     * Inverse of decode(): reconstruct the HPA of @p dpa on way
     * @p way of range @p range_idx.
     */
    std::uint64_t encode(std::size_t range_idx, unsigned way,
                         std::uint64_t dpa) const;

    /**
     * Split the span [hpa, hpa + bytes) at granule boundaries and
     * invoke @p fn once per piece in address order.
     */
    void forEachGranule(
        std::uint64_t hpa, Bytes bytes,
        const std::function<void(const HdmDecoded &, Bytes)> &fn) const;

  private:
    std::vector<HdmRange> ranges;
};

} // namespace beacon::rack

#endif // BEACON_RACK_HDM_DECODER_HH
