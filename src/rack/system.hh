/**
 * @file
 * Multi-host rack-scale pool sharing.
 *
 * A RackSystem attaches N hosts to ONE shared BEACON pool machine:
 *
 *  - every host runs its own PoolOrchestrator front-end (disjoint
 *    tenant-id ranges, so the PR-3 tenant-counter machinery splits
 *    every shared statistic per host for free);
 *  - hosts reach the pool through a multi-level rack switch tree
 *    (RackTree) — job inputs stream down the tree before the HDM
 *    decoder scatters them across the host's expansion DIMMs;
 *  - the pool grows `expansion_switches` extra switches whose DIMMs
 *    are the rack's hot-pluggable expanders. They are reserved out of
 *    tenant placement (SystemParams::rack_reserved_dimms), carved up
 *    by per-host HdmDecoders instead, and virtual-CXL-switch (VCS)
 *    bindings assign each expander to one host's virtual hierarchy;
 *  - shared segments (reference genomes) live once on an owning
 *    expander with back-invalidate coherence (SegmentCoherence);
 *  - hot-add / hot-remove / VCS-rebind events drain in-flight rack
 *    traffic, migrate resident regions (MemoryFramework::evacuate),
 *    update fabric registration and every host's decoder, and resume.
 *
 * Determinism: everything is driven by the one shared event queue, so
 * runs are bit-identical serial vs. sharded (BEACON_DES_SHARDS) and
 * across BEACON_BENCH_JOBS — test- and CI-enforced.
 */

#ifndef BEACON_RACK_SYSTEM_HH
#define BEACON_RACK_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "accel/system.hh"
#include "memmgmt/mapper.hh"
#include "rack/coherence.hh"
#include "rack/hdm_decoder.hh"
#include "rack/topology.hh"
#include "service/orchestrator.hh"

namespace beacon::rack
{

/** Rack topology and policy knobs. */
struct RackParams
{
    /** Hosts sharing the pool (1..64; 64 = sharer-bitmask width). */
    unsigned hosts = 2;
    /** Rack switch levels between each host and the pool root. */
    unsigned switch_levels = 1;
    /** Extra pool switches holding the hot-pluggable expanders. */
    unsigned expansion_switches = 1;
    /** HDM interleave ways (capped by the host's bound expanders). */
    unsigned interleave_ways = 2;
    /** HDM interleave granularity (power of two). */
    std::uint32_t interleave_granularity = 256;
    /** HPA window size per host; windows and their DPA images are
     *  disjoint across hosts by construction. */
    Bytes hdm_bytes_per_host{4ull << 20};
    /** Input bytes streamed down the rack tree and scattered through
     *  the HDM decoder per admitted job (0 disables ingress I/O). */
    Bytes ingress_bytes_per_job{4096};
    /** Bytes each job reads from every shared segment. */
    Bytes segment_read_bytes_per_job{512};
    /** Every Nth segment access of a host is a (BI-triggering) block
     *  write instead of a read batch; 0 = never write. */
    unsigned segment_write_every = 8;
    /** Rack tree link configuration (all levels). */
    LinkParams rack_link{64.0, 30000, false};
    SchedulerKind scheduler = SchedulerKind::Fcfs;
    std::uint64_t seed = 1;
    /** Shared segments; owner_dimm names a global expansion DIMM. */
    std::vector<SegmentParams> segments;
    /**
     * Pool machine the rack is built from. Must be a CXL pool preset
     * (not a DDR fabric); the constructor appends the expansion
     * switches and the reserved-DIMM list itself.
     */
    SystemParams base = SystemParams::beaconD();
};

/** Whole-rack outcome: the machine, every host, and rack counters. */
struct RackReport
{
    RunResult machine;
    /** Index = host; each host's ordinary ServiceReport. */
    std::vector<ServiceReport> hosts;
    /** Pool wire bytes over aggregate DIMM-link capacity x time. */
    double pool_utilization = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t bi_flits = 0;
    std::uint64_t invalidations = 0;
    Bytes ingress_bytes;
    Bytes migrated_bytes;
    unsigned hot_adds = 0;
    unsigned hot_removes = 0;
    unsigned rebinds = 0;
};

/**
 * N orchestrator front-ends multiplexed over one shared pool machine
 * plus the rack-only hardware: tree links, HDM decoders, expander
 * bindings, segment directories, and the hot-plug state machine.
 */
class RackSystem
{
  public:
    explicit RackSystem(const RackParams &params);
    ~RackSystem();

    RackSystem(const RackSystem &) = delete;
    RackSystem &operator=(const RackSystem &) = delete;

    const RackParams &params() const { return p; }
    NdpSystem &machine() { return *sys; }
    unsigned numHosts() const { return p.hosts; }
    PoolOrchestrator &host(unsigned h) { return *hosts_.at(h); }

    /** Global indices of the hot-pluggable expansion DIMMs. */
    const std::vector<unsigned> &expansionDimms() const
    {
        return expansion_;
    }
    bool online(unsigned dimm) const { return online_.count(dimm); }
    /** Host whose virtual hierarchy @p dimm is bound to. */
    unsigned boundHost(unsigned dimm) const
    {
        return binding_.at(dimm);
    }
    const HdmDecoder &decoder(unsigned host) const
    {
        return decoders_.at(host);
    }
    const RackTree &tree() const { return *tree_; }
    SegmentCoherence &segment(std::size_t i)
    {
        return *segments_.at(i);
    }
    std::size_t numSegments() const { return segments_.size(); }

    /** Admit a tenant on @p host (see PoolOrchestrator::addTenant). */
    TenantId addTenant(unsigned host, const TenantSpec &spec);

    /** @name Hot-plug schedule (call before run())
     * Each event executes at tick @p at on lane 0: it pauses new rack
     * ingress, waits for in-flight rack traffic to drain, performs
     * the reconfiguration (with its migration traffic), then resumes
     * and replays paused ingress in arrival order. @{ */
    void scheduleHotRemove(Tick at, unsigned dimm);
    void scheduleHotAdd(Tick at, unsigned dimm);
    void scheduleRebind(Tick at, unsigned dimm, unsigned new_host);
    /** @} */

    /** Run every host's job mix to completion and report. Once. */
    RackReport run();

  private:
    struct RackOp
    {
        enum class Kind
        {
            HotAdd,
            HotRemove,
            Rebind,
        };
        Kind kind = Kind::HotAdd;
        unsigned dimm = 0;
        unsigned new_host = 0;
    };

    /** Completion bookkeeping of one job's ingress. */
    struct IngressState
    {
        unsigned host = 0;
        TenantId tenant;
        std::uint64_t job = 0; //!< orchestrator job id (0 = none)
        unsigned pending = 0;
        std::size_t seg = 0;
        std::function<void()> cont;
    };

    /** Derive the machine parameters (expansion switches appended,
     *  expander DIMMs reserved out of tenant placement). */
    static SystemParams machineParams(const RackParams &p);

    std::string hdmApp(unsigned host) const;
    std::string segApp(const SegmentParams &seg) const;

    /** Reprogram every host's decoder from online_ + binding_. */
    void rebuildDecoders();
    /** Rewrite the per-host HDM capacity reservations to match the
     *  decoders (supersedes evacuate()'s interim bookkeeping). */
    void rebalanceHdmReservations();

    /** DRAM access for @p bytes at @p dpa on expander @p dimm. */
    ResolvedAccess rackAccess(unsigned dimm, std::uint64_t dpa,
                              Bytes bytes) const;
    /** DRAM access covering @p block of segment @p seg. */
    ResolvedAccess segAccess(std::size_t seg,
                             std::uint64_t block) const;

    // --- ingress pipeline (lane 0 unless noted) ---
    void beginIngress(unsigned host, TenantId tenant,
                      std::uint64_t job,
                      std::function<void()> cont);
    void scatterHdm(const std::shared_ptr<IngressState> &st);
    void hdmPieceDone(const std::shared_ptr<IngressState> &st);
    void segmentPhase(const std::shared_ptr<IngressState> &st);
    void finishIngress(const std::shared_ptr<IngressState> &st);

    // --- coherence protocol ---
    void coherentAccess(unsigned host, TenantId tenant,
                        std::size_t seg, std::uint64_t block,
                        bool is_write, std::function<void()> done);
    /** Owner-lane entry: serialise per block, then transact. */
    void ownerHandle(unsigned host, TenantId tenant, std::size_t seg,
                     std::uint64_t block, bool is_write,
                     std::function<void()> done);
    /** Owner lane: claim the block, update the directory, fetch the
     *  data; BI snoops and the response issue from the fetch's
     *  lane-0 completion (the fabric is lane-0 state). */
    void startTxn(unsigned host, TenantId tenant, std::size_t seg,
                  std::uint64_t block, bool is_write,
                  std::function<void()> done);
    /** Lane-0 tail: response flit, install, retire, unbusy kick. */
    void respond(unsigned host, TenantId tenant, std::size_t seg,
                 std::uint64_t block, bool is_write,
                 std::function<void()> done);

    // --- hot-plug state machine (lane 0) ---
    void enqueueOp(const RackOp &op);
    void pumpOps();
    void tryExecuteOp();
    void executeHotAdd(const RackOp &op);
    void executeHotRemove(const RackOp &op);
    void executeRebind(const RackOp &op);
    /** Stream @p bytes from @p src to @p dst in 4 KiB chunks; every
     *  chunk ack decrements op_pending_acks_. Kicked via a 16-byte
     *  management flit so the reads issue from @p src's lane. */
    void chunkTransfer(unsigned src, unsigned dst, Bytes bytes);
    void opAck(Bytes chunk);
    void completeOp();

    bool allFinished() const;
    bool rackBusy() const;
    void verifyRackConservation() const;

    RackParams p;
    SystemParams mp;
    std::unique_ptr<NdpSystem> sys;
    PoolFabric *fabric = nullptr;
    MemoryFramework *fw = nullptr;
    std::unique_ptr<RackTree> tree_;
    std::vector<std::unique_ptr<PoolOrchestrator>> hosts_;

    std::vector<unsigned> expansion_;
    std::set<unsigned> online_;
    std::map<unsigned, unsigned> binding_; //!< expander -> host
    std::vector<HdmDecoder> decoders_;     //!< per host
    std::vector<std::uint64_t> hdm_cursor_; //!< per host, HPA offset
    std::map<unsigned, DimmAddressMapper> rack_mappers_;

    std::vector<std::unique_ptr<SegmentCoherence>> segments_;
    /** Per host per segment: next block cursor. */
    std::vector<std::vector<std::uint64_t>> seg_cursor_;
    /** Per host: segment accesses so far (write cadence). */
    std::vector<std::uint64_t> seg_ops_;

    // Hot-plug state machine (lane 0).
    std::deque<RackOp> op_queue_;
    bool op_active_ = false;
    /** Set while an op is dispatched (possibly migrating); blocks
     *  tryExecuteOp from overtaking it with the next queued op. */
    bool op_running_ = false;
    bool paused_ = false;
    std::uint64_t rack_inflight_ = 0;
    /** Coherence transactions between miss issue and install (both
     *  lane 0). Hot-plug drains on this count; in-flight install-acks
     *  are safe because an op's directory-clear kick is sent after
     *  every ack and the fabric path to the owner is FIFO. */
    std::uint64_t txn_inflight_ = 0;
    std::deque<std::function<void()>> paused_ingress_;
    std::uint64_t op_pending_acks_ = 0;
    std::function<void()> op_done_;

    // Counters (registry-backed; lane noted per counter).
    Counter *c_ingress = nullptr;   //!< lane 0
    Counter *c_hits = nullptr;      //!< lane 0
    Counter *c_misses = nullptr;    //!< lane 0
    Counter *c_inval = nullptr;     //!< lane 0
    Counter *c_migrated = nullptr;  //!< lane 0
    Counter *c_hot_adds = nullptr;  //!< lane 0
    Counter *c_hot_removes = nullptr; //!< lane 0
    Counter *c_rebinds = nullptr;   //!< lane 0
    /** Per segment; incremented on lane 0 (BI snoops are issued from
     *  DRAM-completion callbacks, which re-home to lane 0). */
    std::vector<Counter *> c_bi_;

    bool ran_ = false;
};

} // namespace beacon::rack

#endif // BEACON_RACK_SYSTEM_HH
