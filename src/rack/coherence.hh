/**
 * @file
 * Shared-segment coherence state (CXL 3.x back-invalidate style).
 *
 * A shared segment is a read-mostly block of pool memory (e.g. a
 * reference genome) mapped by every rack host at once, with a single
 * physical copy on one owning expander. The owning expander keeps a
 * per-block directory (MESI-lite: Invalid / Shared / Modified plus a
 * sharer bitmask); hosts keep a block-granular cache of what they
 * have mapped. A write — or a read of a block another host modified —
 * makes the directory emit back-invalidate (BI) snoops to the stale
 * hosts over the ordinary pool fabric, exactly the BISnp flow CXL 3.x
 * added for device-to-host invalidation.
 *
 * Lane discipline (see docs/rack_scale.md): this class is pure state,
 * split into two single-writer halves. The host-side cache maps are
 * touched only from lane-0 event callbacks (every host delivers on
 * the default shard); the directory, busy set, and transaction queues
 * are touched only from the owning expander's lane (requests arrive
 * there as fabric deliveries). RackSystem's message protocol is what
 * moves a transaction between the two lanes, so each half has exactly
 * one writing lane per window and barrier ordering covers handoffs.
 */

#ifndef BEACON_RACK_COHERENCE_HH
#define BEACON_RACK_COHERENCE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hh"

namespace beacon::rack
{

/** Configuration of one shared segment. */
struct SegmentParams
{
    std::string name;
    Bytes bytes{1u << 20};
    /** Owning expander: global pool DIMM index (must be an online
     *  expansion DIMM; hot-remove re-homes it). */
    unsigned owner_dimm = 0;
    /** Coherence block size in bytes. */
    std::uint32_t block_bytes = 64;
};

/**
 * Directory + host-cache state of one shared segment. Pure state —
 * all messaging lives in RackSystem.
 */
class SegmentCoherence
{
  public:
    enum class BlockState : std::uint8_t
    {
        Invalid,
        Shared,
        Modified,
    };

    /** Directory decision for a read miss. */
    struct ReadActions
    {
        /** The block is Modified elsewhere: invalidate + write back
         *  from @p writeback_host before serving the read. */
        bool writeback = false;
        unsigned writeback_host = 0;
    };

    /** Directory decision for a write miss / upgrade. */
    struct WriteActions
    {
        /** Hosts holding stale copies, to BI-invalidate. */
        std::vector<unsigned> invalidate;
        /** One of them held the block Modified (dirty data). */
        bool writeback = false;
        unsigned writeback_host = 0;
    };

    SegmentCoherence(SegmentParams params, unsigned num_hosts);

    const SegmentParams &params() const { return p; }
    unsigned owner() const { return owner_; }
    /** Re-home the directory (hot-remove migration, lane 0 while the
     *  rack is quiescent). */
    void setOwner(unsigned dimm) { owner_ = dimm; }
    std::uint64_t numBlocks() const { return num_blocks; }

    // ------------------------------------------------------------
    // Host-side cache state — lane-0 callbacks only.
    // ------------------------------------------------------------

    /** Host @p host has a (Shared or Modified) copy of @p block. */
    bool cachedOn(unsigned host, std::uint64_t block) const;

    /** Host @p host holds @p block Modified. */
    bool modifiedOn(unsigned host, std::uint64_t block) const;

    void cacheShared(unsigned host, std::uint64_t block);
    void cacheModified(unsigned host, std::uint64_t block);

    /** BI snoop landed: drop the host's copy (no-op when absent). */
    void uncache(unsigned host, std::uint64_t block);

    /**
     * Drop every host's every copy (conservative BI-on-migrate when
     * the segment re-homes). Returns the number of entries dropped.
     */
    std::uint64_t uncacheAll();

    // ------------------------------------------------------------
    // Directory state — owning expander's lane only.
    // ------------------------------------------------------------

    /**
     * Record a read by @p host: the block becomes Shared with @p host
     * a sharer. Returns the writeback the caller must simulate first
     * when the block was Modified by another host (which is dropped
     * from the sharer set — conservative full invalidation).
     */
    ReadActions directoryRead(unsigned host, std::uint64_t block);

    /**
     * Record a write by @p host: the block becomes Modified by
     * @p host. Returns every stale copy the caller must BI-snoop.
     */
    WriteActions directoryWrite(unsigned host, std::uint64_t block);

    /** Drop all directory state (migration re-home). */
    void directoryClear();

    /** @name Per-block transaction serialisation
     * One coherence transaction per block at a time; later requests
     * queue on the owner lane and start when the current one's
     * install-ack returns. @{ */
    bool busy(std::uint64_t block) const
    {
        return busy_.count(block) != 0;
    }
    void setBusy(std::uint64_t block);
    void clearBusy(std::uint64_t block);
    void queueTxn(std::uint64_t block, std::function<void()> start);
    /** Next queued transaction for @p block, or null. */
    std::function<void()> popTxn(std::uint64_t block);
    /** @} */

  private:
    struct Block
    {
        BlockState state = BlockState::Invalid;
        std::uint64_t sharers = 0; //!< bit h = host h holds a copy
        unsigned modifier = 0;
    };

    SegmentParams p;
    unsigned owner_;
    std::uint64_t num_blocks;
    /** Per host: block -> cached state (lane 0). */
    std::vector<std::map<std::uint64_t, BlockState>> host_blocks;
    /** Directory: absent block = Invalid (owner lane). */
    std::unordered_map<std::uint64_t, Block> dir;
    std::unordered_set<std::uint64_t> busy_;
    std::unordered_map<std::uint64_t,
                       std::deque<std::function<void()>>>
        queues;
};

} // namespace beacon::rack

#endif // BEACON_RACK_COHERENCE_HH
