/**
 * @file
 * Rack-level CXL switch hierarchy between the hosts and the pool.
 *
 * Models the multi-level switch tree of a rack-scale pool: every host
 * reaches the pool root through `levels` cascaded rack switches, and
 * adjacent hosts share aggregation links higher up the tree (host h
 * uses link h >> l at level l, so 2^l hosts contend for each level-l
 * link). This is where cross-host interference on the shared pool
 * becomes visible: one host's ingress burst occupies aggregation
 * links other hosts need.
 *
 * The tree carries host-side traffic only (job ingress streaming);
 * pool-internal routing stays in PoolFabric. Every link lives on the
 * default event-queue shard (lane 0), like the fabric's host links.
 */

#ifndef BEACON_RACK_TOPOLOGY_HH
#define BEACON_RACK_TOPOLOGY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hh"
#include "cxl/link.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace beacon::rack
{

/** Shape of the rack switch tree. */
struct RackTreeParams
{
    unsigned hosts = 2;
    /** Cascaded switch levels between a host and the pool root;
     *  0 attaches every host directly to the root (no tree links). */
    unsigned levels = 1;
    /** Every tree link (all levels) uses this configuration. */
    LinkParams link{64.0, 30000, false};
};

/** The rack switch tree: owns the per-level aggregation links. */
class RackTree
{
  public:
    RackTree(EventQueue &eq, StatRegistry &stats,
             const RackTreeParams &params);

    const RackTreeParams &params() const { return p; }
    unsigned hosts() const { return p.hosts; }
    unsigned levels() const { return p.levels; }

    /** Aggregation links at @p level (ceil(hosts / 2^level)). */
    unsigned linksAt(unsigned level) const
    {
        return unsigned(level_links.at(level).size());
    }

    /** Link @p index at @p level (inspection in tests). */
    const CxlLink &link(unsigned level, unsigned index) const
    {
        return *level_links.at(level).at(index);
    }

    /**
     * Move @p bytes from host @p host down the tree to the pool
     * root: one sequential downstream hop per level over the host's
     * link at that level. @p done fires (on lane 0) when the last
     * byte reaches the root; with zero levels it fires immediately,
     * still from the calling event context.
     */
    void traverse(unsigned host, Bytes bytes,
                  std::function<void(Tick)> done);

    /** Bytes moved over every tree link, both directions. */
    Bytes totalBytes() const;

  private:
    void hop(unsigned host, unsigned level, Bytes bytes,
             std::function<void(Tick)> done);

    EventQueue &eq;
    RackTreeParams p;
    /** level -> shared links (index = host >> level). */
    std::vector<std::vector<std::unique_ptr<CxlLink>>> level_links;
};

} // namespace beacon::rack

#endif // BEACON_RACK_TOPOLOGY_HH
