#include "coherence.hh"

#include "common/logging.hh"

namespace beacon::rack
{

SegmentCoherence::SegmentCoherence(SegmentParams params,
                                   unsigned num_hosts)
    : p(std::move(params)), owner_(p.owner_dimm)
{
    BEACON_CHECK(num_hosts >= 1 && num_hosts <= 64,
                 "segment sharer bitmask supports 1..64 hosts, got ",
                 num_hosts);
    BEACON_CHECK(p.block_bytes > 0, "zero segment block size");
    BEACON_CHECK(p.bytes.value() > 0, "zero-byte segment '", p.name,
                 "'");
    BEACON_CHECK(p.bytes.value() % p.block_bytes == 0,
                 "segment '", p.name, "' size ", p.bytes.value(),
                 " does not tile its block size ", p.block_bytes);
    num_blocks = p.bytes.value() / p.block_bytes;
    host_blocks.resize(num_hosts);
}

bool
SegmentCoherence::cachedOn(unsigned host, std::uint64_t block) const
{
    return host_blocks.at(host).count(block) != 0;
}

bool
SegmentCoherence::modifiedOn(unsigned host, std::uint64_t block) const
{
    const auto &blocks = host_blocks.at(host);
    const auto it = blocks.find(block);
    return it != blocks.end() && it->second == BlockState::Modified;
}

void
SegmentCoherence::cacheShared(unsigned host, std::uint64_t block)
{
    host_blocks.at(host)[block] = BlockState::Shared;
}

void
SegmentCoherence::cacheModified(unsigned host, std::uint64_t block)
{
    host_blocks.at(host)[block] = BlockState::Modified;
}

void
SegmentCoherence::uncache(unsigned host, std::uint64_t block)
{
    host_blocks.at(host).erase(block);
}

std::uint64_t
SegmentCoherence::uncacheAll()
{
    std::uint64_t dropped = 0;
    for (auto &blocks : host_blocks) {
        dropped += blocks.size();
        blocks.clear();
    }
    return dropped;
}

SegmentCoherence::ReadActions
SegmentCoherence::directoryRead(unsigned host, std::uint64_t block)
{
    BEACON_ASSERT(block < num_blocks, "segment '", p.name,
                  "' block ", block, " out of range");
    Block &b = dir[block];
    ReadActions actions;
    if (b.state == BlockState::Modified) {
        // A host whose own cache hits never reaches the directory,
        // so a Modified block always belongs to a *different* host
        // (migration resets both halves together).
        BEACON_CHECK(b.modifier != host,
                     "read miss by the modifying host of segment '",
                     p.name, "' block ", block);
        actions.writeback = true;
        actions.writeback_host = b.modifier;
        b.sharers = 0;
    }
    b.state = BlockState::Shared;
    b.sharers |= std::uint64_t(1) << host;
    return actions;
}

SegmentCoherence::WriteActions
SegmentCoherence::directoryWrite(unsigned host, std::uint64_t block)
{
    BEACON_ASSERT(block < num_blocks, "segment '", p.name,
                  "' block ", block, " out of range");
    Block &b = dir[block];
    WriteActions actions;
    if (b.state == BlockState::Modified) {
        BEACON_CHECK(b.modifier != host,
                     "write miss by the modifying host of segment '",
                     p.name, "' block ", block);
        actions.invalidate.push_back(b.modifier);
        actions.writeback = true;
        actions.writeback_host = b.modifier;
    } else if (b.state == BlockState::Shared) {
        for (unsigned h = 0; h < unsigned(host_blocks.size()); ++h) {
            if (h != host && (b.sharers >> h) & 1)
                actions.invalidate.push_back(h);
        }
    }
    b.state = BlockState::Modified;
    b.modifier = host;
    b.sharers = 0;
    return actions;
}

void
SegmentCoherence::directoryClear()
{
    dir.clear();
    busy_.clear();
    queues.clear();
}

void
SegmentCoherence::setBusy(std::uint64_t block)
{
    const bool inserted = busy_.insert(block).second;
    BEACON_ASSERT(inserted, "segment '", p.name, "' block ", block,
                  " already has a transaction in flight");
}

void
SegmentCoherence::clearBusy(std::uint64_t block)
{
    BEACON_ASSERT(busy_.erase(block) == 1, "segment '", p.name,
                  "' block ", block, " was not busy");
}

void
SegmentCoherence::queueTxn(std::uint64_t block,
                           std::function<void()> start)
{
    queues[block].push_back(std::move(start));
}

std::function<void()>
SegmentCoherence::popTxn(std::uint64_t block)
{
    const auto it = queues.find(block);
    if (it == queues.end() || it->second.empty())
        return nullptr;
    std::function<void()> next = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        queues.erase(it);
    return next;
}

} // namespace beacon::rack
