#include "topology.hh"

#include <string>

#include "common/logging.hh"

namespace beacon::rack
{

RackTree::RackTree(EventQueue &eq, StatRegistry &stats,
                   const RackTreeParams &params)
    : eq(eq), p(params)
{
    BEACON_ASSERT(p.hosts >= 1, "rack tree needs at least one host");
    level_links.resize(p.levels);
    for (unsigned l = 0; l < p.levels; ++l) {
        const unsigned n = (p.hosts + (1u << l) - 1) >> l;
        for (unsigned i = 0; i < n; ++i) {
            level_links[l].push_back(std::make_unique<CxlLink>(
                "rack.l" + std::to_string(l) + ".link" +
                    std::to_string(i),
                eq, stats, p.link));
        }
    }
}

void
RackTree::traverse(unsigned host, Bytes bytes,
                   std::function<void(Tick)> done)
{
    BEACON_ASSERT(host < p.hosts, "bad rack host ", host);
    hop(host, 0, bytes, std::move(done));
}

void
RackTree::hop(unsigned host, unsigned level, Bytes bytes,
              std::function<void(Tick)> done)
{
    if (level >= p.levels) {
        done(eq.now());
        return;
    }
    CxlLink &link = *level_links[level][host >> level];
    link.send(LinkDir::Downstream, bytes,
              [this, host, level, bytes,
               done = std::move(done)](Tick) mutable {
                  hop(host, level + 1, bytes, std::move(done));
              });
}

Bytes
RackTree::totalBytes() const
{
    Bytes total;
    for (const auto &level : level_links) {
        for (const auto &link : level)
            total += link->totalBytes();
    }
    return total;
}

} // namespace beacon::rack
