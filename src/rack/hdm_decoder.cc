#include "hdm_decoder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace beacon::rack
{

void
HdmDecoder::addRange(const HdmRange &range)
{
    const std::uint64_t gran = range.granularity.value();
    BEACON_CHECK(gran > 0 && (gran & (gran - 1)) == 0,
                 "HDM granularity ", gran, " is not a power of two");
    BEACON_CHECK(range.ways >= 1, "HDM range needs >= 1 way");
    BEACON_CHECK(range.targets.size() == range.ways,
                 "HDM range declares ", range.ways, " ways but ",
                 range.targets.size(), " targets");
    const std::uint64_t tile = gran * range.ways;
    BEACON_CHECK(range.size.value() > 0 &&
                     range.size.value() % tile == 0,
                 "HDM range size ", range.size.value(),
                 " does not tile ways * granularity = ", tile);
    for (const HdmRange &other : ranges) {
        const bool disjoint =
            range.base + range.size.value() <= other.base ||
            other.base + other.size.value() <= range.base;
        BEACON_CHECK(disjoint, "HDM range [", range.base, ", ",
                     range.base + range.size.value(),
                     ") overlaps existing range [", other.base, ", ",
                     other.base + other.size.value(), ")");
    }
    ranges.push_back(range);
}

bool
HdmDecoder::contains(std::uint64_t hpa) const
{
    return std::any_of(ranges.begin(), ranges.end(),
                       [hpa](const HdmRange &r) {
                           return hpa >= r.base &&
                                  hpa - r.base < r.size.value();
                       });
}

HdmDecoded
HdmDecoder::decode(std::uint64_t hpa) const
{
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        const HdmRange &r = ranges[i];
        if (hpa < r.base || hpa - r.base >= r.size.value())
            continue;
        const std::uint64_t off = hpa - r.base;
        const std::uint64_t gran = r.granularity.value();
        HdmDecoded out;
        out.way = unsigned((off / gran) % r.ways);
        out.target = r.targets[out.way];
        out.dpa = r.dpa_base + (off / (gran * r.ways)) * gran +
                  off % gran;
        out.range = i;
        return out;
    }
    BEACON_PANIC("HPA ", hpa, " hits no HDM range");
}

std::uint64_t
HdmDecoder::encode(std::size_t range_idx, unsigned way,
                   std::uint64_t dpa) const
{
    const HdmRange &r = ranges.at(range_idx);
    BEACON_CHECK(way < r.ways, "way ", way, " out of range");
    const std::uint64_t gran = r.granularity.value();
    BEACON_CHECK(dpa >= r.dpa_base, "DPA ", dpa,
                 " below range dpa_base ", r.dpa_base);
    const std::uint64_t rel = dpa - r.dpa_base;
    BEACON_CHECK(rel < r.size.value() / r.ways,
                 "DPA ", dpa, " beyond the range's per-way span");
    const std::uint64_t block = rel / gran;
    const std::uint64_t rem = rel % gran;
    return r.base + block * (gran * r.ways) + way * gran + rem;
}

void
HdmDecoder::forEachGranule(
    std::uint64_t hpa, Bytes bytes,
    const std::function<void(const HdmDecoded &, Bytes)> &fn) const
{
    std::uint64_t remaining = bytes.value();
    std::uint64_t at = hpa;
    while (remaining > 0) {
        const HdmDecoded piece = decode(at);
        const HdmRange &r = ranges[piece.range];
        const std::uint64_t gran = r.granularity.value();
        const std::uint64_t into = (at - r.base) % gran;
        const std::uint64_t chunk =
            std::min(remaining, gran - into);
        fn(piece, Bytes{chunk});
        at += chunk;
        remaining -= chunk;
    }
}

} // namespace beacon::rack
