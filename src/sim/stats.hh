/**
 * @file
 * Lightweight named-statistics framework.
 *
 * Components register counters, vector counters, and sample
 * histograms with a StatRegistry; benchmark harnesses read them back
 * by name and the registry can dump all values for debugging.
 */

#ifndef BEACON_SIM_STATS_HH
#define BEACON_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace beacon
{

/** A monotonically accumulating scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(double v) { _value += v; return *this; }
    Counter &operator++() { _value += 1; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/** A fixed-size vector of counters (e.g., per-chip access counts). */
class VectorCounter
{
  public:
    explicit VectorCounter(std::size_t size = 0) : values(size, 0) {}

    void resize(std::size_t size) { values.assign(size, 0); }
    std::size_t size() const { return values.size(); }

    double &operator[](std::size_t i) { return values.at(i); }
    double operator[](std::size_t i) const { return values.at(i); }

    double total() const;
    double mean() const;
    double maxValue() const;
    double minValue() const;
    /** Coefficient of variation (stddev / mean); 0 when empty. */
    double cov() const;

    void reset() { std::fill(values.begin(), values.end(), 0); }

  private:
    std::vector<double> values;
};

/**
 * Streaming sample statistics (count / mean / min / max / stddev)
 * plus a fixed power-of-two bucket histogram for streaming
 * percentile estimates.
 *
 * Bucket b holds samples in [2^(b-17), 2^(b-16)); bucket 0 also
 * absorbs non-positive and underflowing samples, the last bucket
 * absorbs overflow. The range 2^-17..2^47 comfortably covers both
 * millisecond latencies and picosecond tick durations.
 */
class SampleStat
{
  public:
    static constexpr std::size_t num_buckets = 64;
    /** Exponent of the upper edge of bucket 0 (2^bucket0_exp). */
    static constexpr int bucket0_exp = -16;

    void sample(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / double(n) : 0; }
    double minValue() const { return n ? mn : 0; }
    double maxValue() const { return n ? mx : 0; }
    double variance() const;
    double stddev() const;

    /** Histogram bucket index a sample of value @p v lands in. */
    static std::size_t bucketIndex(double v);

    /** Lower edge of bucket @p b (0 for bucket 0). */
    static double bucketLow(std::size_t b);

    /** Upper edge (exclusive) of bucket @p b. */
    static double bucketHigh(std::size_t b);

    const std::array<std::uint64_t, num_buckets> &buckets() const
    {
        return hist;
    }

    /**
     * Streaming percentile estimate for quantile @p q in [0, 1].
     *
     * Finds the bucket holding the ceil(q*n)-th sample and returns
     * its geometric midpoint, clamped into [minValue, maxValue] —
     * accurate to within the power-of-two bucket width (a factor of
     * sqrt(2)). Use quantileSorted() when the exact order statistic
     * is required.
     */
    double percentile(double q) const;

    void reset() { *this = SampleStat{}; }

  private:
    std::uint64_t n = 0;
    double sum = 0;
    double sumsq = 0;
    double mn = 0;
    double mx = 0;
    std::array<std::uint64_t, num_buckets> hist{};
};

/**
 * Exact ceil-rank quantile of an ascending-sorted sample set: the
 * element with rank ceil(q*n) (1-based), the historical rule used by
 * the service-layer tenant reports. Returns 0 when empty.
 */
double quantileSorted(const std::vector<double> &sorted, double q);

/**
 * Name-indexed registry of statistics.
 *
 * Stats are created on first access; names are hierarchical by
 * convention ("dimm0.rank1.actEnergy").
 *
 * Thread model (sharded engine): the registry *structure* (the
 * name -> stat maps) is mutex-guarded, so lanes may lazily create
 * counters concurrently and lane-0 queries may run while they do.
 * Stat *values* are not guarded — every counter must have a single
 * writer lane (the beacon-lint lane map enforces this statically)
 * and cross-lane readers must be quiesced (barrier-lane samplers,
 * post-drain reports). The map-returning accessors hand out
 * unguarded references and are for quiesced callers only.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name);
    VectorCounter &vectorCounter(const std::string &name,
                                 std::size_t size);
    SampleStat &sampleStat(const std::string &name);

    /** Value of a counter, or 0 if absent. */
    double counterValue(const std::string &name) const;

    /** Sum of all counters whose name contains @p substring. */
    double sumMatching(const std::string &substring) const;

    /** All counters, sorted by name (quiesced callers only). */
    const std::map<std::string, Counter> &counters() const
    {
        return scalar_stats;
    }

    const std::map<std::string, VectorCounter> &vectorCounters() const
    {
        return vector_stats;
    }

    /** All sample stats, sorted by name. */
    const std::map<std::string, SampleStat> &sampleStats() const
    {
        return sample_stats;
    }

    void dump(std::ostream &os) const;
    void resetAll();

  private:
    /** Guards the maps, not the stat values (see class comment). */
    mutable std::mutex registry_mutex;
    std::map<std::string, Counter> scalar_stats;
    std::map<std::string, VectorCounter> vector_stats;
    std::map<std::string, SampleStat> sample_stats;
};

} // namespace beacon

#endif // BEACON_SIM_STATS_HH
