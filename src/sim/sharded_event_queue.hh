/**
 * @file
 * Sharded parallel discrete-event queue.
 *
 * The queue partitions events into per-component worker lanes (the
 * shard cut follows the beacon-shardmap-1 whole-program report: DRAM
 * controllers are the independently advancing shards; the CXL fabric,
 * NDP modules and the service layer share the default shard) and
 * advances lanes in parallel on the common ThreadPool under a
 * conservative-lookahead barrier.
 *
 * Exactness, not approximation: serial and sharded execution are
 * required to be *bit-identical*. The legacy serial queue orders
 * events by (tick, insertion sequence). This queue reproduces that
 * order exactly with a shard-count-independent key
 *
 *     (when, g(scheduler), call_index)
 *
 * where g(scheduler) is the global execution index of the event whose
 * callback made the schedule() call and call_index counts that
 * callback's schedule() calls. Legacy insertion sequence is assigned
 * in execution order, so seq(X) < seq(Y) iff X's scheduler executed
 * first, or the same scheduler scheduled X first — which is exactly
 * this key. g is assigned deterministically at window barriers by a
 * K-way merge of the per-lane execution logs; events scheduled by an
 * in-window event carry their scheduler's lane-local pop index until
 * the barrier resolves it to a g ("lazy g").
 *
 * Cross-lane schedule() calls made inside a window go through
 * single-writer per-lane outboxes drained at the barrier, and must
 * land at or beyond the window end — the conservative lookahead (the
 * minimum CXL link latency and the minimum DRAM CAS-to-data-end gap
 * guarantee this for the shard cut used by NdpSystem). A violation
 * is a loud BEACON_CHECK failure, never a silent reorder.
 */

#ifndef BEACON_SIM_SHARDED_EVENT_QUEUE_HH
#define BEACON_SIM_SHARDED_EVENT_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace beacon
{

class ThreadPool;

/**
 * Discrete-event engine selection, part of SystemParams.
 *
 * The default (shards = 1, force_sharded off) builds the legacy
 * serial EventQueue. shards > 1 builds a ShardedEventQueue with up to
 * that many worker lanes (capped by the machine's shardable
 * components); force_sharded builds the sharded engine even at one
 * lane, which is how differential tests pin the windowed code path.
 * Results are bit-identical across every setting.
 */
struct DesParams
{
    /** Requested worker lanes; 1 = legacy serial queue. */
    unsigned shards = 1;

    /** Pool width; 0 = min(lanes, hardware threads). */
    unsigned threads = 0;

    /** Use the sharded engine even when shards == 1. */
    bool force_sharded = false;

    bool sharded() const { return force_sharded || shards > 1; }

    /** BEACON_DES_SHARDS / BEACON_DES_THREADS, defaults otherwise. */
    static DesParams fromEnv();
};

/**
 * Static partition of home hints onto worker lanes.
 *
 * Hint 0 (the default of every schedule() call) is always lane 0;
 * other hints map through home_lane, defaulting to lane 0 when
 * absent. EventCat::Sampler events ignore the hint and run on the
 * dedicated barrier lane so registry-scanning observers only ever
 * execute while every worker lane is quiesced.
 */
struct ShardPlan
{
    /** Worker lanes (>= 1). Lane 0 is the default/coordinator shard. */
    unsigned lanes = 1;

    /** home_hint -> lane (< lanes); missing hints map to lane 0. */
    std::unordered_map<std::uint32_t, unsigned> home_lane;
};

/** Execution context of the event callback running on this thread. */
struct ShardExecContext
{
    const ShardedEventQueue *queue = nullptr;
    unsigned lane = 0;
    Tick now = 0;
    /** True only on a worker lane inside a parallel window. */
    bool in_window = false;
    /** Lane-local pop index of the current event (in_window). */
    std::uint64_t pop = 0;
    /** Resolved global execution index (only when !in_window). */
    std::uint64_t g = 0;
    /** schedule() calls made so far by the current callback. */
    std::uint32_t next_call = 0;
};

/**
 * The thread's current shard execution context, or nullptr outside
 * event callbacks. obs::TraceSink uses this to stage trace events
 * emitted by in-window lane callbacks.
 */
const ShardExecContext *currentShardContext();

/** Conservative-lookahead parallel event queue (see file comment). */
class ShardedEventQueue final : public EventQueue
{
  public:
    struct Params
    {
        /** Worker lanes; 1 degenerates to serial (still windowed). */
        unsigned lanes = 1;

        /**
         * Conservative lookahead in ticks: an in-window event may
         * only schedule onto another lane at or beyond window end =
         * window start + lookahead. 0 disables windows entirely
         * (every event runs through the serial-canonical runOne()).
         */
        Tick lookahead = 0;

        /** Pool width; 0 = min(lanes, hardware threads). */
        unsigned threads = 0;

        /**
         * Run window segments inline on the calling thread instead
         * of the pool. Same algorithm, same results; useful to
         * separate algorithmic from threading failures.
         */
        bool inline_windows = false;
    };

    explicit ShardedEventQueue(Params p);
    ~ShardedEventQueue() override;

    /**
     * Install the hint->lane partition. Must run before any event
     * that uses a non-zero hint is scheduled (the queue checks that
     * nothing is pending), because entries do not migrate.
     */
    void setPlan(ShardPlan plan);

    /** Lane-merge hook (the trace sink); not owned. */
    void setMergeHook(LaneMergeHook *hook) { merge_hook = hook; }

    /**
     * Runtime lane-ownership guard (EventQueue::checkLaneTouch).
     * Off: guard calls are a single cold branch. Count: in-window
     * touches of another lane's state bump laneGuardViolations().
     * Trap: such a touch is an immediate BEACON_CHECK failure naming
     * the component. The constructor seeds the mode from
     * BEACON_LANE_GUARD ("count" / "trap"); tests override here.
     */
    enum class LaneGuard
    {
        Off,
        Count,
        Trap,
    };

    void setLaneGuard(LaneGuard mode);
    LaneGuard laneGuard() const { return guard_mode; }

    /** Cross-lane touches observed since construction (Count mode). */
    std::uint64_t laneGuardViolations() const
    {
        return guard_violations.load(std::memory_order_relaxed);
    }

    // ------------------------------------------------------------
    // EventQueue interface
    // ------------------------------------------------------------
    Tick now() const override;
    std::uint64_t eventsExecuted() const override { return executed; }
    std::size_t pending() const override;
    std::size_t pendingIncludingCancelled() const override;
    EventId schedule(Tick when, Callback cb,
                     EventCat cat = EventCat::Other,
                     std::uint32_t home_hint = 0) override;
    void cancel(EventId id) override;
    bool scheduled(EventId id) const override;
    bool runOne() override;
    Tick run(Tick limit = max_tick) override;
    void reset() override;
    void setProfiler(EventProfiler *p) override;
    ShardedEventQueue *sharded() override { return this; }

    /** Rings: one per worker lane plus the barrier lane (= lanes()),
     *  matching the lane_idx each exec path passes to note(). */
    void
    setFlightRecorder(EventRecorder *recorder) override
    {
        flight = recorder;
        if (flight)
            flight->prepare(lane_store.size() + 1);
    }

    // ------------------------------------------------------------
    // Windowed driver interface
    // ------------------------------------------------------------

    /**
     * Earliest live event tick across all lanes, or max_tick when
     * the queue is empty. Coordinator-only.
     */
    Tick nextPendingTick();

    /**
     * Advance one conservative-lookahead window: execute every event
     * with tick in [nextPendingTick(), min(nextPendingTick() +
     * lookahead, limit + 1)) in canonical order, lanes in parallel.
     * Drivers may only call this when their stop predicate provably
     * cannot flip inside the window (else they must fall back to
     * runOne()). @return false when nothing fired (queue empty or
     * next event beyond @p limit).
     */
    bool runWindow(Tick limit = max_tick);

    // ------------------------------------------------------------
    // Introspection (tests, PR-body measurements)
    // ------------------------------------------------------------
    unsigned lanes() const { return unsigned(lane_store.size()); }
    Tick lookahead() const { return cfg.lookahead; }
    std::uint64_t windowsRun() const { return n_windows; }
    std::uint64_t parallelSegments() const { return n_par_segments; }
    std::uint64_t inlineSegments() const { return n_inline_segments; }
    std::uint64_t mailboxTransfers() const { return n_mailbox; }
    std::uint64_t serialEvents() const { return n_serial_events; }

    /** Lane a given hint resolves to under the installed plan. */
    unsigned homeLane(std::uint32_t hint) const;

    /**
     * Lifetime events executed on worker lane @p lane (serial pops
     * included — they stay attributed to their home lane). With
     * lanes() this gives the event-weighted lane shares quoted in the
     * scaling analysis. Coordinator-only, like the other counters.
     */
    std::uint64_t laneEventsExecuted(unsigned lane) const;

    /** Lifetime events executed on the barrier (sampler) lane. */
    std::uint64_t barrierEventsExecuted() const
    {
        return barrier.exec_count;
    }

  private:
    /**
     * Sentinel "g not assigned yet": the scheduler executes in the
     * current window and receives its g at the barrier merge.
     */
    static constexpr std::uint64_t unresolved_g = ~std::uint64_t(0);

    struct Entry
    {
        Tick when = 0;
        /** g of the scheduling callback, or unresolved_g. */
        std::uint64_t g = unresolved_g;
        /** Scheduler's lane-local pop index (when g unresolved). */
        std::uint64_t pop = 0;
        /** Scheduler's schedule()-call index. */
        std::uint32_t call = 0;
        EventId id = 0;
        EventCat cat = EventCat::Other;
    };

    /** One executed event, logged for the barrier merge. */
    struct ExecRec
    {
        Tick when = 0;
        std::uint64_t g_sched = 0;   // the event's own ordering key
        std::uint64_t pop_sched = 0; // (lazy form, like Entry)
        std::uint32_t call = 0;
        std::uint64_t pop = 0;        // this event's pop index
        std::uint32_t calls_made = 0; // schedule() calls it made
        std::uint64_t g_assigned = unresolved_g;
        EventCat cat = EventCat::Other;
    };

    /** Cross-lane send staged until the barrier drain. */
    struct Mail
    {
        unsigned dst = 0;
        Entry entry;
        Callback cb;
    };

    struct Lane
    {
        /** Binary min-heap of pending entries (entryLess order). */
        std::vector<Entry> heap;
        std::unordered_set<EventId> live;
        std::unordered_map<EventId, Callback> callbacks;
        /** Lifetime pops; pop indices are dense in [0, exec_count). */
        std::uint64_t exec_count = 0;
        /** exec_count at the start of the current segment. */
        std::uint64_t log_base = 0;
        std::vector<ExecRec> log;
        std::vector<Mail> outbox;
        /** Per-source id sequence (lane-owned, race-free). */
        std::uint64_t id_seq = 0;
        /** Determinism guard: last popped key on this lane. */
        Entry last_popped;
        bool has_popped = false;
        /** Keep lane-hot state off one cache line shared by all. */
        char pad[64] = {};
    };

    static bool entryLess(const Entry &a, const Entry &b);
    void heapPush(Lane &lane, Entry e);
    Entry heapPop(Lane &lane);
    /** Drop dead (cancelled) heads; false if lane has no live head. */
    bool pruneHead(Lane &lane);

    unsigned barrierLane() const { return unsigned(lane_store.size()); }
    Lane &laneAt(unsigned idx)
    {
        return idx == barrierLane() ? barrier : lane_store[idx];
    }
    unsigned destLane(EventCat cat, std::uint32_t hint) const;
    EventId makeId(unsigned src_code, unsigned dst);
    static unsigned ownerOf(EventId id)
    {
        return unsigned(id >> 56);
    }

    void insertResolved(unsigned dst, Entry e, Callback cb);
    /** Run lane events below the window bound on one worker. */
    void laneSegment(unsigned lane_idx, Tick w_end, const Entry *bound);
    /** K-way merge of segment logs: assign g, drive hooks. */
    void mergeSegments();
    void resolveAfterMerge();
    /** Execute one barrier-lane event on the coordinator. */
    void execBarrierOne();
    /** Execute one already-popped entry serially (runOne/barrier). */
    void execSerial(unsigned lane_idx, Entry top, Callback cb);
    ThreadPool &pool();

    Params cfg;
    ShardPlan plan;
    LaneMergeHook *merge_hook = nullptr;
    EventProfiler *profiler = nullptr;
    std::unique_ptr<ThreadPool> pool_store;

    std::vector<Lane> lane_store;
    Lane barrier;

    Tick _now = 0;
    std::uint64_t executed = 0;
    /**
     * Next global execution index. g = 0 is the virtual "root" event
     * (setup code outside any callback), so real events start at 1.
     */
    std::uint64_t g_counter = 1;
    /**
     * Ordering context for schedule() calls made outside callbacks:
     * continues the numbering of the canonically-last executed event,
     * exactly like the legacy queue's global insertion sequence.
     */
    std::uint64_t ambient_g = 0;
    std::uint32_t ambient_call = 0;
    std::uint64_t coord_id_seq = 0;

    /** True from window open to final merge (workers may be live). */
    bool window_open = false;
    Tick window_end = 0;
    bool lanes_prepared = false;

    // Determinism guard over the canonical merge order.
    Tick last_when = 0;
    std::uint64_t last_g = 0;
    std::uint32_t last_call = 0;
    bool has_executed = false;

    std::uint64_t n_windows = 0;
    std::uint64_t n_par_segments = 0;
    std::uint64_t n_inline_segments = 0;
    std::uint64_t n_mailbox = 0;
    std::uint64_t n_serial_events = 0;

    void laneTouchSlow(std::uint32_t home_hint,
                       const char *what) const override;

    LaneGuard guard_mode = LaneGuard::Off;
    /** Written from worker lanes in Count mode; atomic, relaxed. */
    mutable std::atomic<std::uint64_t> guard_violations{0};
};

} // namespace beacon

#endif // BEACON_SIM_SHARDED_EVENT_QUEUE_HH
