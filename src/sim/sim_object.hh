/**
 * @file
 * Base class for named simulated components.
 */

#ifndef BEACON_SIM_SIM_OBJECT_HH
#define BEACON_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace beacon
{

/**
 * A named component bound to an event queue and a stat registry.
 *
 * Every modelled hardware block (DIMM, switch, PE, ...) derives from
 * SimObject so that its statistics land in a shared registry under a
 * hierarchical name.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &event_queue,
              StatRegistry &stat_registry)
        : _name(std::move(name)), eq(event_queue), stats(stat_registry)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Tick curTick() const { return eq.now(); }

  protected:
    /** Counter in the shared registry, prefixed with this object. */
    Counter &
    stat(const std::string &suffix)
    {
        return stats.counter(_name + "." + suffix);
    }

    std::string _name;
    EventQueue &eq;
    StatRegistry &stats;
};

} // namespace beacon

#endif // BEACON_SIM_SIM_OBJECT_HH
