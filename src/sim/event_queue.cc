#include "event_queue.hh"

#include "common/logging.hh"

namespace beacon
{

EventId
EventQueue::schedule(Tick when, Callback cb, EventCat cat,
                     std::uint32_t /*home_hint*/)
{
    BEACON_ASSERT(when >= _now, "scheduling into the past: when=", when,
                  " now=", _now);
    const EventId id = next_seq;
    queue.push(Entry{when, next_seq, id, cat});
    ++next_seq;
    live.insert(id);
    callbacks.emplace(id, std::move(cb));
    return id;
}

EventId
EventQueue::scheduleIn(Tick delta, Callback cb, EventCat cat,
                       std::uint32_t home_hint)
{
    // Virtual now()/schedule() so the sharded queue inherits this
    // verbatim with lane-local time.
    return schedule(now() + delta, std::move(cb), cat, home_hint);
}

void
EventQueue::cancel(EventId id)
{
    live.erase(id);
    callbacks.erase(id);
}

bool
EventQueue::scheduled(EventId id) const
{
    return live.count(id) != 0;
}

bool
EventQueue::runOne()
{
    while (!queue.empty()) {
        const Entry top = queue.top();
        queue.pop();
        auto it = callbacks.find(top.id);
        if (it == callbacks.end())
            continue; // cancelled
        BEACON_ASSERT(top.when >= _now, "time went backwards");
        // Determinism: events must leave the queue in (tick, seq)
        // order — same-tick events run in schedule order, so a run
        // is a pure function of the schedule calls.
        BEACON_DCHECK(!has_executed || top.when > last_when ||
                          (top.when == last_when &&
                           top.seq > last_seq),
                      "tie-break order violated: event (t=", top.when,
                      ", seq=", top.seq,
                      ") popped after (t=", last_when, ", seq=",
                      last_seq, ")");
        BEACON_DCHECK(top.seq < next_seq,
                      "executing an event that was never scheduled");
        last_when = top.when;
        last_seq = top.seq;
        has_executed = true;
        _now = top.when;
        Callback cb = std::move(it->second);
        callbacks.erase(it);
        live.erase(top.id);
        ++executed;
        if (flight)
            flight->note(0, top.when, top.cat);
        if (profiler) {
            profiler->beginEvent(top.cat, top.when);
            cb();
            profiler->endEvent(top.cat);
        } else {
            cb();
        }
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue.empty()) {
        // Skip over cancelled entries without advancing time.
        const Entry top = queue.top();
        if (callbacks.find(top.id) == callbacks.end()) {
            queue.pop();
            continue;
        }
        if (top.when > limit)
            break;
        runOne();
    }
    return _now;
}

void
EventQueue::reset()
{
    queue = {};
    callbacks.clear();
    live.clear();
    _now = 0;
    executed = 0;
    next_seq = 0;
    last_when = 0;
    last_seq = 0;
    has_executed = false;
}

} // namespace beacon
