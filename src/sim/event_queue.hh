/**
 * @file
 * Global discrete-event simulation kernel.
 *
 * The queue orders events by (tick, insertion sequence) so that events
 * scheduled for the same tick execute in schedule order, which keeps
 * runs deterministic.
 */

#ifndef BEACON_SIM_EVENT_QUEUE_HH
#define BEACON_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hh"

namespace beacon
{

namespace obs
{
// src/obs — the sim layer only carries pointers.
class TraceSink;
class RequestTrace;
} // namespace obs

class ShardedEventQueue; // src/sim/sharded_event_queue.hh

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Coarse component category an event is attributed to.
 *
 * Used only for observability (self-profiling attribution of host
 * time per subsystem); it has no effect on scheduling order.
 */
enum class EventCat : std::uint8_t
{
    Other = 0,
    Dram,
    Cxl,
    Ndp,
    Service,
    Sampler,
    /** Rack layer (src/rack): multi-host switch tiers, HDM ingress,
     *  shared-segment coherence, hot-plug control. Rack events carry
     *  hint 0 and therefore always execute on the default lane. */
    Rack,
};

inline constexpr std::size_t num_event_cats = 7;

/** Stable lower-case name for an event category. */
constexpr const char *
eventCatName(EventCat cat)
{
    switch (cat) {
      case EventCat::Dram: return "dram";
      case EventCat::Cxl: return "cxl";
      case EventCat::Ndp: return "ndp";
      case EventCat::Service: return "service";
      case EventCat::Sampler: return "sampler";
      case EventCat::Rack: return "rack";
      case EventCat::Other: break;
    }
    return "other";
}

/**
 * Observer notified around every callback the queue executes.
 *
 * The sim layer defines only the interface; obs::SelfProfiler is the
 * one implementation and is the sanctioned place for wall-clock use.
 */
class EventProfiler
{
  public:
    virtual ~EventProfiler() = default;

    /** Called just before a callback runs. */
    virtual void beginEvent(EventCat cat, Tick when) = 0;

    /** Called just after the same callback returns. */
    virtual void endEvent(EventCat cat) = 0;

    /**
     * A sharded queue announces how many worker lanes it will run
     * before the first parallel window. Profilers that want per-lane
     * attribution allocate lane-local accumulators here.
     */
    virtual void prepareLanes(std::size_t /*lanes*/) {}

    /**
     * Lane-local profiler used by worker threads inside a parallel
     * window; must be safe to call concurrently with the profilers of
     * *other* lanes. Returning nullptr (the default) disables
     * profiling of lane events while windows run in parallel.
     */
    virtual EventProfiler *laneProfiler(unsigned /*lane*/)
    {
        return nullptr;
    }
};

/**
 * Always-on-cheap recorder fed immediately before every executed
 * callback — the flight-recorder half of the sim layer, mirroring
 * the EventProfiler/LaneMergeHook pattern: the interface lives here,
 * the one implementation (obs::FlightRecorder) in src/obs.
 *
 * Ring assignment: ring == the executing lane index; a serial queue
 * uses ring 0 only, a sharded queue uses [0, lanes] with ring ==
 * lanes() for the barrier lane. note() is called with the ring's
 * lane as single writer (serial and barrier execution run on the
 * coordinator while workers are quiesced), so implementations need
 * no locks on the record path. Feeding happens *before* the callback
 * runs so the event that dies mid-callback is in the dump.
 */
class EventRecorder
{
  public:
    virtual ~EventRecorder() = default;

    /** Allocate @p rings rings before the first note(). */
    virtual void prepare(std::size_t rings) = 0;

    /** Event about to execute on @p ring at @p when. */
    virtual void note(std::size_t ring, Tick when, EventCat cat) = 0;
};

/**
 * Hook a sharded queue drives while it merges per-lane execution logs
 * back into the canonical (serial) event order at a window barrier.
 *
 * The one implementation is obs::TraceSink: trace events emitted by
 * lane events are staged per lane and flushed into the shared ring in
 * canonical order, so serial and sharded traces are byte-identical.
 */
class LaneMergeHook
{
  public:
    virtual ~LaneMergeHook() = default;

    /** Sizes lane-local staging before the first parallel window. */
    virtual void prepareLanes(std::size_t lanes) = 0;

    /**
     * The lane event with lane-local pop index @p pop_idx is next in
     * canonical order; commit anything it staged.
     */
    virtual void commitLaneEvent(unsigned lane,
                                 std::uint64_t pop_idx) = 0;
};

/**
 * A deterministic discrete-event queue.
 *
 * Components schedule callbacks at absolute ticks; the driver runs the
 * queue until it is empty, a tick limit is reached, or an event count
 * budget is exhausted.
 *
 * The class is also the abstract interface of the sharded parallel
 * queue (ShardedEventQueue): the base implementation is the canonical
 * serial kernel, and every override is required to produce the exact
 * same execution order — stats, traces and time-series byte-for-byte.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    virtual ~EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Current simulated time. Inside an event callback this is the
     * tick the event fired at, even when the callback runs on a
     * worker lane of a sharded queue.
     */
    virtual Tick now() const { return _now; }

    /** Number of events executed so far. */
    virtual std::uint64_t eventsExecuted() const { return executed; }

    /**
     * Number of live pending events (cancelled events excluded, even
     * while their queue entries await lazy removal).
     */
    virtual std::size_t pending() const { return live.size(); }

    /**
     * Size of the internal heap: live events plus cancelled entries
     * that have not been popped yet. Only interesting for capacity
     * accounting; use pending() for "how much work is left".
     */
    virtual std::size_t pendingIncludingCancelled() const
    {
        return queue.size();
    }

    /**
     * Schedule @p cb at absolute time @p when (>= now()).
     *
     * @p home_hint names the component shard the callback belongs to
     * (0 = the default shard). The serial queue ignores it; a sharded
     * queue uses it to route the event to a worker lane. Hints must
     * be stable for a given destination component so that all events
     * touching one component's state run on one lane.
     *
     * @return an id usable with cancel().
     */
    virtual EventId schedule(Tick when, Callback cb,
                             EventCat cat = EventCat::Other,
                             std::uint32_t home_hint = 0);

    /** Schedule @p cb @p delta ticks from now. */
    EventId scheduleIn(Tick delta, Callback cb,
                       EventCat cat = EventCat::Other,
                       std::uint32_t home_hint = 0);

    /** Cancel a pending event; cancelling a fired event is a no-op. */
    virtual void cancel(EventId id);

    /** True if the event has not fired and is not cancelled. */
    virtual bool scheduled(EventId id) const;

    /**
     * Execute the next event, if any.
     * @return false when the queue is empty.
     */
    virtual bool runOne();

    /**
     * Run until the queue drains or until the next event would fire
     * after @p limit.
     * @return the final simulated time.
     */
    virtual Tick run(Tick limit = max_tick);

    /** Drop all pending events and reset time to zero. */
    virtual void reset();

    /**
     * Install (or clear, with nullptr) the host-side profiler that
     * brackets every executed callback. Not owned.
     */
    virtual void setProfiler(EventProfiler *p) { profiler = p; }

    /** Downcast without RTTI: non-null when this queue is sharded. */
    virtual ShardedEventQueue *sharded() { return nullptr; }

    /**
     * Debug lane-ownership guard. Components whose state is owned by
     * @p home_hint's lane call this at their mutation entry points
     * (DramController::enqueue, NdpModule::submit); a sharded queue
     * with the guard armed (BEACON_LANE_GUARD / setLaneGuard)
     * verifies the running in-window callback executes on exactly
     * that lane — the dynamic twin of the static `beacon-lint
     * --lane-map` pass, each validating the other. Free on the
     * serial queue and a single predictable branch when unarmed.
     */
    void
    checkLaneTouch(std::uint32_t home_hint, const char *what) const
    {
        if (lane_guard_armed)
            laneTouchSlow(home_hint, what);
    }

  protected:
    /** Armed by ShardedEventQueue::setLaneGuard; never on serial. */
    bool lane_guard_armed = false;

    /** Flight recorder (shared with ShardedEventQueue); not owned. */
    EventRecorder *flight = nullptr;

    /** Sharded-queue half of checkLaneTouch (see above). */
    virtual void laneTouchSlow(std::uint32_t /*home_hint*/,
                               const char * /*what*/) const
    {}

  public:

    /**
     * Attach (or clear) the trace sink components consult when they
     * want to emit trace events. Not owned; components must treat a
     * null sink as "tracing off".
     */
    void setTraceSink(obs::TraceSink *sink) { trace_sink = sink; }

    /** Trace sink for this queue, or nullptr when tracing is off. */
    obs::TraceSink *traceSink() const { return trace_sink; }

    /**
     * Attach (or clear) the request trace components consult to
     * record per-job component spans. Not owned; a null pointer
     * means "request tracing off".
     */
    void setRequestTrace(obs::RequestTrace *rt) { request_trace = rt; }

    /** Request trace for this queue, or nullptr when off. */
    obs::RequestTrace *requestTrace() const { return request_trace; }

    /**
     * Attach (or clear) the flight recorder fed before every
     * executed callback. Not owned. The base queue prepares one
     * ring; the sharded queue overrides to prepare lanes + 1.
     */
    virtual void
    setFlightRecorder(EventRecorder *recorder)
    {
        flight = recorder;
        if (flight)
            flight->prepare(1);
    }

    /** Flight recorder for this queue, or nullptr when off. */
    EventRecorder *flightRecorder() const { return flight; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        EventCat cat;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    // Causality/determinism guards (validated with BEACON_DCHECK).
    Tick last_when = 0;
    std::uint64_t last_seq = 0;
    bool has_executed = false;
    EventProfiler *profiler = nullptr;
    obs::TraceSink *trace_sink = nullptr;
    obs::RequestTrace *request_trace = nullptr;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    std::unordered_set<EventId> live;
    // Callbacks stored separately so Entry stays cheap to copy.
    std::unordered_map<EventId, Callback> callbacks;
};

} // namespace beacon

#endif // BEACON_SIM_EVENT_QUEUE_HH
