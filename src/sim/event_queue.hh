/**
 * @file
 * Global discrete-event simulation kernel.
 *
 * The queue orders events by (tick, insertion sequence) so that events
 * scheduled for the same tick execute in schedule order, which keeps
 * runs deterministic.
 */

#ifndef BEACON_SIM_EVENT_QUEUE_HH
#define BEACON_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hh"

namespace beacon
{

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Components schedule callbacks at absolute ticks; the driver runs the
 * queue until it is empty, a tick limit is reached, or an event count
 * budget is exhausted.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Number of events currently pending (including cancelled). */
    std::size_t pending() const { return queue.size(); }

    /**
     * Schedule @p cb at absolute time @p when (>= now()).
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    EventId scheduleIn(Tick delta, Callback cb);

    /** Cancel a pending event; cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** True if the event has not fired and is not cancelled. */
    bool scheduled(EventId id) const;

    /**
     * Execute the next event, if any.
     * @return false when the queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or until the next event would fire
     * after @p limit.
     * @return the final simulated time.
     */
    Tick run(Tick limit = max_tick);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventId id;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    // Causality/determinism guards (validated with BEACON_DCHECK).
    Tick last_when = 0;
    std::uint64_t last_seq = 0;
    bool has_executed = false;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    std::unordered_set<EventId> live;
    // Callbacks stored separately so Entry stays cheap to copy.
    std::unordered_map<EventId, Callback> callbacks;
};

} // namespace beacon

#endif // BEACON_SIM_EVENT_QUEUE_HH
