/**
 * @file
 * Global discrete-event simulation kernel.
 *
 * The queue orders events by (tick, insertion sequence) so that events
 * scheduled for the same tick execute in schedule order, which keeps
 * runs deterministic.
 */

#ifndef BEACON_SIM_EVENT_QUEUE_HH
#define BEACON_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hh"

namespace beacon
{

namespace obs
{
class TraceSink; // src/obs — the sim layer only carries a pointer.
} // namespace obs

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Coarse component category an event is attributed to.
 *
 * Used only for observability (self-profiling attribution of host
 * time per subsystem); it has no effect on scheduling order.
 */
enum class EventCat : std::uint8_t
{
    Other = 0,
    Dram,
    Cxl,
    Ndp,
    Service,
    Sampler,
};

inline constexpr std::size_t num_event_cats = 6;

/** Stable lower-case name for an event category. */
constexpr const char *
eventCatName(EventCat cat)
{
    switch (cat) {
      case EventCat::Dram: return "dram";
      case EventCat::Cxl: return "cxl";
      case EventCat::Ndp: return "ndp";
      case EventCat::Service: return "service";
      case EventCat::Sampler: return "sampler";
      case EventCat::Other: break;
    }
    return "other";
}

/**
 * Observer notified around every callback the queue executes.
 *
 * The sim layer defines only the interface; obs::SelfProfiler is the
 * one implementation and is the sanctioned place for wall-clock use.
 */
class EventProfiler
{
  public:
    virtual ~EventProfiler() = default;

    /** Called just before a callback runs. */
    virtual void beginEvent(EventCat cat, Tick when) = 0;

    /** Called just after the same callback returns. */
    virtual void endEvent(EventCat cat) = 0;
};

/**
 * A deterministic discrete-event queue.
 *
 * Components schedule callbacks at absolute ticks; the driver runs the
 * queue until it is empty, a tick limit is reached, or an event count
 * budget is exhausted.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /**
     * Number of live pending events (cancelled events excluded, even
     * while their queue entries await lazy removal).
     */
    std::size_t pending() const { return live.size(); }

    /**
     * Size of the internal heap: live events plus cancelled entries
     * that have not been popped yet. Only interesting for capacity
     * accounting; use pending() for "how much work is left".
     */
    std::size_t pendingIncludingCancelled() const
    {
        return queue.size();
    }

    /**
     * Schedule @p cb at absolute time @p when (>= now()).
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb,
                     EventCat cat = EventCat::Other);

    /** Schedule @p cb @p delta ticks from now. */
    EventId scheduleIn(Tick delta, Callback cb,
                       EventCat cat = EventCat::Other);

    /** Cancel a pending event; cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** True if the event has not fired and is not cancelled. */
    bool scheduled(EventId id) const;

    /**
     * Execute the next event, if any.
     * @return false when the queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or until the next event would fire
     * after @p limit.
     * @return the final simulated time.
     */
    Tick run(Tick limit = max_tick);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * Install (or clear, with nullptr) the host-side profiler that
     * brackets every executed callback. Not owned.
     */
    void setProfiler(EventProfiler *p) { profiler = p; }

    /**
     * Attach (or clear) the trace sink components consult when they
     * want to emit trace events. Not owned; components must treat a
     * null sink as "tracing off".
     */
    void setTraceSink(obs::TraceSink *sink) { trace_sink = sink; }

    /** Trace sink for this queue, or nullptr when tracing is off. */
    obs::TraceSink *traceSink() const { return trace_sink; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        EventCat cat;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    // Causality/determinism guards (validated with BEACON_DCHECK).
    Tick last_when = 0;
    std::uint64_t last_seq = 0;
    bool has_executed = false;
    EventProfiler *profiler = nullptr;
    obs::TraceSink *trace_sink = nullptr;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    std::unordered_set<EventId> live;
    // Callbacks stored separately so Entry stays cheap to copy.
    std::unordered_map<EventId, Callback> callbacks;
};

} // namespace beacon

#endif // BEACON_SIM_EVENT_QUEUE_HH
