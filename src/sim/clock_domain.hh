/**
 * @file
 * Clock domain: converts between cycles and picosecond ticks.
 */

#ifndef BEACON_SIM_CLOCK_DOMAIN_HH
#define BEACON_SIM_CLOCK_DOMAIN_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/units.hh"

namespace beacon
{

/**
 * A fixed-frequency clock domain.
 *
 * DRAM devices, CXL links, and PEs each run in their own domain; the
 * event queue itself is clockless (picosecond ticks).
 */
class ClockDomain
{
  public:
    /** @param period_ps clock period in picoseconds (> 0). */
    explicit ClockDomain(Tick period_ps)
        : _period(period_ps)
    {
        BEACON_ASSERT(period_ps > 0, "zero clock period");
    }

    /** Clock period in ticks. */
    Tick period() const { return _period; }

    /** Frequency in MHz (for reporting). */
    double frequencyMHz() const { return 1e6 / double(_period); }

    /** Duration of @p n cycles in ticks. */
    Tick cyclesToTicks(Cycles n) const { return n.value() * _period; }

    /** Number of whole cycles elapsed by @p t. */
    Cycles ticksToCycles(Tick t) const { return Cycles{t / _period}; }

    /**
     * First rising edge at or after @p t (ticks are aligned to
     * multiples of the period, treating tick 0 as an edge).
     */
    Tick
    nextEdgeAtOrAfter(Tick t) const
    {
        const Tick rem = t % _period;
        return rem == 0 ? t : t + (_period - rem);
    }

  private:
    Tick _period;
};

} // namespace beacon

#endif // BEACON_SIM_CLOCK_DOMAIN_HH
