#include "stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace beacon
{

double
VectorCounter::total() const
{
    double t = 0;
    for (double v : values)
        t += v;
    return t;
}

double
VectorCounter::mean() const
{
    return values.empty() ? 0 : total() / double(values.size());
}

double
VectorCounter::maxValue() const
{
    double m = 0;
    for (double v : values)
        m = std::max(m, v);
    return m;
}

double
VectorCounter::minValue() const
{
    if (values.empty())
        return 0;
    double m = values.front();
    for (double v : values)
        m = std::min(m, v);
    return m;
}

double
VectorCounter::cov() const
{
    if (values.empty())
        return 0;
    const double mu = mean();
    if (mu == 0)
        return 0;
    double acc = 0;
    for (double v : values)
        acc += (v - mu) * (v - mu);
    return std::sqrt(acc / double(values.size())) / mu;
}

void
SampleStat::sample(double v)
{
    if (n == 0) {
        mn = v;
        mx = v;
    } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    ++n;
    sum += v;
    sumsq += v * v;
}

double
SampleStat::variance() const
{
    if (n == 0)
        return 0;
    const double mu = mean();
    return sumsq / double(n) - mu * mu;
}

double
SampleStat::stddev() const
{
    return std::sqrt(std::max(0.0, variance()));
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return scalar_stats[name];
}

VectorCounter &
StatRegistry::vectorCounter(const std::string &name, std::size_t size)
{
    auto [it, inserted] = vector_stats.try_emplace(name, size);
    if (inserted || it->second.size() != size)
        it->second.resize(size);
    return it->second;
}

SampleStat &
StatRegistry::sampleStat(const std::string &name)
{
    return sample_stats[name];
}

double
StatRegistry::counterValue(const std::string &name) const
{
    auto it = scalar_stats.find(name);
    return it == scalar_stats.end() ? 0 : it->second.value();
}

double
StatRegistry::sumMatching(const std::string &substring) const
{
    double total = 0;
    for (const auto &[name, c] : scalar_stats) {
        if (name.find(substring) != std::string::npos)
            total += c.value();
    }
    return total;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : scalar_stats)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, v] : vector_stats) {
        os << name << " total=" << v.total() << " mean=" << v.mean()
           << " cov=" << v.cov() << "\n";
    }
    for (const auto &[name, s] : sample_stats) {
        os << name << " n=" << s.count() << " mean=" << s.mean()
           << " min=" << s.minValue() << " max=" << s.maxValue()
           << " sd=" << s.stddev() << "\n";
    }
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : scalar_stats)
        c.reset();
    for (auto &[name, v] : vector_stats)
        v.reset();
    for (auto &[name, s] : sample_stats)
        s.reset();
}

} // namespace beacon
