#include "stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace beacon
{

double
VectorCounter::total() const
{
    double t = 0;
    for (double v : values)
        t += v;
    return t;
}

double
VectorCounter::mean() const
{
    return values.empty() ? 0 : total() / double(values.size());
}

double
VectorCounter::maxValue() const
{
    double m = 0;
    for (double v : values)
        m = std::max(m, v);
    return m;
}

double
VectorCounter::minValue() const
{
    if (values.empty())
        return 0;
    double m = values.front();
    for (double v : values)
        m = std::min(m, v);
    return m;
}

double
VectorCounter::cov() const
{
    if (values.empty())
        return 0;
    const double mu = mean();
    if (mu == 0)
        return 0;
    double acc = 0;
    for (double v : values)
        acc += (v - mu) * (v - mu);
    return std::sqrt(acc / double(values.size())) / mu;
}

void
SampleStat::sample(double v)
{
    if (n == 0) {
        mn = v;
        mx = v;
    } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    ++n;
    sum += v;
    sumsq += v * v;
    ++hist[bucketIndex(v)];
}

std::size_t
SampleStat::bucketIndex(double v)
{
    if (!(v > 0) || !std::isfinite(v))
        return 0;
    // frexp: v = m * 2^e with m in [0.5, 1) => v in [2^(e-1), 2^e).
    int e = 0;
    std::frexp(v, &e);
    const long idx = long(e) - (bucket0_exp + 1) + 1;
    if (idx <= 0)
        return 0;
    return std::min<std::size_t>(std::size_t(idx), num_buckets - 1);
}

double
SampleStat::bucketLow(std::size_t b)
{
    if (b == 0)
        return 0;
    return std::ldexp(1.0, int(b) + bucket0_exp - 1);
}

double
SampleStat::bucketHigh(std::size_t b)
{
    return std::ldexp(1.0, int(b) + bucket0_exp);
}

double
SampleStat::percentile(double q) const
{
    if (n == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = std::uint64_t(std::ceil(q * double(n)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    std::size_t b = 0;
    for (; b < num_buckets; ++b) {
        seen += hist[b];
        if (seen >= rank)
            break;
    }
    if (b >= num_buckets)
        b = num_buckets - 1;
    const double lo = bucketLow(b);
    const double hi = bucketHigh(b);
    // Geometric midpoint of the bucket; bucket 0 has no positive
    // lower edge, so report its upper edge scaled down instead.
    const double mid = lo > 0 ? std::sqrt(lo * hi) : hi * 0.5;
    return std::clamp(mid, minValue(), maxValue());
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::size_t rank =
        std::size_t(std::ceil(q * double(sorted.size())));
    const std::size_t idx =
        rank == 0 ? 0 : std::min(sorted.size() - 1, rank - 1);
    return sorted[idx];
}

double
SampleStat::variance() const
{
    if (n == 0)
        return 0;
    const double mu = mean();
    return sumsq / double(n) - mu * mu;
}

double
SampleStat::stddev() const
{
    return std::sqrt(std::max(0.0, variance()));
}

Counter &
StatRegistry::counter(const std::string &name)
{
    // std::map never invalidates references on insert, so the
    // returned Counter& stays valid while other threads create
    // stats; only the map mutation itself needs the lock.
    std::lock_guard<std::mutex> guard(registry_mutex);
    return scalar_stats[name];
}

VectorCounter &
StatRegistry::vectorCounter(const std::string &name, std::size_t size)
{
    std::lock_guard<std::mutex> guard(registry_mutex);
    auto [it, inserted] = vector_stats.try_emplace(name, size);
    if (inserted || it->second.size() != size)
        it->second.resize(size);
    return it->second;
}

SampleStat &
StatRegistry::sampleStat(const std::string &name)
{
    std::lock_guard<std::mutex> guard(registry_mutex);
    return sample_stats[name];
}

double
StatRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> guard(registry_mutex);
    auto it = scalar_stats.find(name);
    return it == scalar_stats.end() ? 0 : it->second.value();
}

double
StatRegistry::sumMatching(const std::string &substring) const
{
    std::lock_guard<std::mutex> guard(registry_mutex);
    double total = 0;
    for (const auto &[name, c] : scalar_stats) {
        if (name.find(substring) != std::string::npos)
            total += c.value();
    }
    return total;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : scalar_stats)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, v] : vector_stats) {
        os << name << " total=" << v.total() << " mean=" << v.mean()
           << " cov=" << v.cov() << "\n";
    }
    for (const auto &[name, s] : sample_stats) {
        os << name << " n=" << s.count() << " mean=" << s.mean()
           << " min=" << s.minValue() << " max=" << s.maxValue()
           << " sd=" << s.stddev() << "\n";
    }
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : scalar_stats)
        c.reset();
    for (auto &[name, v] : vector_stats)
        v.reset();
    for (auto &[name, s] : sample_stats)
        s.reset();
}

} // namespace beacon
