#include "sharded_event_queue.hh"

#include <algorithm>
#include <cstdlib>
#include <future>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace beacon
{

namespace
{

// The thread's current execution context. Workers point this at a
// stack frame for the duration of a lane segment; the coordinator
// points it at the current event during serial execution. Nested
// queues (a sharded system driven from a sweep worker) restore the
// previous pointer on scope exit.
thread_local ShardExecContext *tls_ctx = nullptr;

struct CtxGuard
{
    ShardExecContext *prev;

    explicit CtxGuard(ShardExecContext *ctx) : prev(tls_ctx)
    {
        tls_ctx = ctx;
    }

    ~CtxGuard() { tls_ctx = prev; }

    CtxGuard(const CtxGuard &) = delete;
    CtxGuard &operator=(const CtxGuard &) = delete;
};

/** Context of this queue, or nullptr (another queue's worker). */
ShardExecContext *
ownCtx(const ShardedEventQueue *q)
{
    ShardExecContext *c = tls_ctx;
    return (c && c->queue == q) ? c : nullptr;
}

constexpr unsigned ambient_src_code = 0xFF;

} // namespace

const ShardExecContext *
currentShardContext()
{
    return tls_ctx;
}

DesParams
DesParams::fromEnv()
{
    DesParams p;
    if (const char *v = std::getenv("BEACON_DES_SHARDS"))
        p.shards = std::max(1, std::atoi(v));
    if (const char *v = std::getenv("BEACON_DES_THREADS"))
        p.threads = std::max(0, std::atoi(v));
    return p;
}

ShardedEventQueue::ShardedEventQueue(Params p) : cfg(p)
{
    if (cfg.lanes < 1)
        cfg.lanes = 1;
    BEACON_CHECK(cfg.lanes < 200,
                 "lane count ", cfg.lanes,
                 " exceeds the EventId encoding");
    lane_store.resize(cfg.lanes);
    plan.lanes = cfg.lanes;
    if (const char *v = std::getenv("BEACON_LANE_GUARD")) {
        const std::string mode(v);
        if (mode == "count")
            setLaneGuard(LaneGuard::Count);
        else if (mode == "trap" || mode == "1")
            setLaneGuard(LaneGuard::Trap);
    }
}

ShardedEventQueue::~ShardedEventQueue() = default;

void
ShardedEventQueue::setPlan(ShardPlan new_plan)
{
    BEACON_CHECK(pending() == 0,
                 "setPlan() with ", pending(),
                 " events pending: entries do not migrate between "
                 "lanes, install the plan before scheduling");
    BEACON_CHECK(new_plan.lanes >= 1 &&
                     new_plan.lanes <= unsigned(lane_store.size()),
                 "plan wants ", new_plan.lanes, " lanes, queue has ",
                 lane_store.size());
    for (const auto &[hint, lane] : new_plan.home_lane)
        BEACON_CHECK(lane < unsigned(lane_store.size()),
                     "hint ", hint, " maps to lane ", lane,
                     " out of ", lane_store.size());
    plan = std::move(new_plan);
}

// ---------------------------------------------------------------
// Ordering key
// ---------------------------------------------------------------

bool
ShardedEventQueue::entryLess(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    const bool ar = a.g != unresolved_g;
    const bool br = b.g != unresolved_g;
    if (ar != br) {
        // An unresolved scheduler executes in the current window, so
        // its g will exceed every g assigned so far: resolved first.
        return ar;
    }
    if (ar) {
        if (a.g != b.g)
            return a.g < b.g;
        return a.call < b.call;
    }
    // Both unresolved: structurally the same lane (cross-lane entries
    // only arrive through the barrier drain, already resolved), where
    // pop order equals g order.
    if (a.pop != b.pop)
        return a.pop < b.pop;
    return a.call < b.call;
}

void
ShardedEventQueue::heapPush(Lane &lane, Entry e)
{
    lane.heap.push_back(e);
    std::push_heap(lane.heap.begin(), lane.heap.end(),
                   [](const Entry &a, const Entry &b) {
                       return entryLess(b, a);
                   });
}

ShardedEventQueue::Entry
ShardedEventQueue::heapPop(Lane &lane)
{
    std::pop_heap(lane.heap.begin(), lane.heap.end(),
                  [](const Entry &a, const Entry &b) {
                      return entryLess(b, a);
                  });
    Entry e = lane.heap.back();
    lane.heap.pop_back();
    return e;
}

bool
ShardedEventQueue::pruneHead(Lane &lane)
{
    while (!lane.heap.empty() &&
           lane.callbacks.find(lane.heap.front().id) ==
               lane.callbacks.end())
        heapPop(lane); // cancelled: lazy removal, as in the serial queue
    return !lane.heap.empty();
}

// ---------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------

unsigned
ShardedEventQueue::homeLane(std::uint32_t hint) const
{
    auto it = plan.home_lane.find(hint);
    return it == plan.home_lane.end() ? 0 : it->second;
}

std::uint64_t
ShardedEventQueue::laneEventsExecuted(unsigned lane) const
{
    return lane_store.at(lane).exec_count;
}

void
ShardedEventQueue::setLaneGuard(LaneGuard mode)
{
    guard_mode = mode;
    lane_guard_armed = mode != LaneGuard::Off;
}

void
ShardedEventQueue::laneTouchSlow(std::uint32_t home_hint,
                                 const char *what) const
{
    const ShardExecContext *ctx = currentShardContext();
    // Ambient code, another queue's callback, or any serial-canonical
    // execution (runOne, barrier lane): every lane is quiesced, any
    // thread may touch any component.
    if (!ctx || ctx->queue != this || !ctx->in_window)
        return;
    const unsigned owner = homeLane(home_hint);
    if (ctx->lane == owner)
        return;
    guard_violations.fetch_add(1, std::memory_order_relaxed);
    BEACON_CHECK(guard_mode != LaneGuard::Trap,
                 "lane guard: ", what, " (hint ", home_hint,
                 ", owner lane ", owner,
                 ") touched from an in-window event on lane ",
                 ctx->lane);
}

unsigned
ShardedEventQueue::destLane(EventCat cat, std::uint32_t hint) const
{
    // Sampler events scan the whole stat registry, so they run on the
    // barrier lane where every worker lane is provably quiesced.
    if (cat == EventCat::Sampler)
        return barrierLane();
    return homeLane(hint);
}

EventId
ShardedEventQueue::makeId(unsigned src_code, unsigned dst)
{
    std::uint64_t seq;
    if (src_code == ambient_src_code)
        seq = coord_id_seq++;
    else
        seq = laneAt(src_code).id_seq++;
    BEACON_DCHECK(seq < (std::uint64_t(1) << 48),
                  "event id sequence overflow");
    return (std::uint64_t(dst) << 56) |
           (std::uint64_t(src_code) << 48) | seq;
}

void
ShardedEventQueue::insertResolved(unsigned dst, Entry e, Callback cb)
{
    BEACON_DCHECK(e.g != unresolved_g, "inserting an unresolved entry");
    Lane &lane = laneAt(dst);
    lane.live.insert(e.id);
    lane.callbacks.emplace(e.id, std::move(cb));
    heapPush(lane, e);
}

EventId
ShardedEventQueue::schedule(Tick when, Callback cb, EventCat cat,
                            std::uint32_t home_hint)
{
    ShardExecContext *c = ownCtx(this);
    const Tick ref_now = c ? c->now : _now;
    BEACON_ASSERT(when >= ref_now, "scheduling into the past: when=",
                  when, " now=", ref_now);
    const unsigned dst = destLane(cat, home_hint);

    if (c && c->in_window) {
        Lane &src = lane_store[c->lane];
        Entry e;
        e.when = when;
        e.g = unresolved_g;
        e.pop = c->pop;
        e.call = c->next_call++;
        e.id = makeId(c->lane, dst);
        e.cat = cat;
        if (dst == c->lane) {
            // Same lane: the worker owns all of this state.
            src.live.insert(e.id);
            src.callbacks.emplace(e.id, std::move(cb));
            heapPush(src, e);
        } else {
            // Cross-shard send: must clear the conservative
            // lookahead so the destination lane cannot have advanced
            // past it, then ride the single-writer outbox until the
            // barrier drain.
            BEACON_CHECK(
                when >= window_end,
                "cross-shard send violates conservative lookahead: "
                "lane ", c->lane, " -> lane ", dst, " at tick ", when,
                " inside window ending at ", window_end,
                " (same-tick cross-shard sends would silently "
                "reorder; route them through a link with latency >= "
                "the lookahead or home both endpoints on one shard)");
            src.outbox.push_back(Mail{dst, e, std::move(cb)});
        }
        return e.id;
    }

    // Serial execution, a barrier-lane event, or setup/driver code
    // outside any callback: lanes are quiesced, insert directly with
    // a fully resolved key. Outside callbacks the "ambient" context
    // continues the canonically-last event's numbering, matching the
    // legacy queue's global insertion sequence.
    Entry e;
    e.when = when;
    if (c) {
        e.g = c->g;
        e.call = c->next_call++;
        e.id = makeId(c->lane, dst);
    } else {
        e.g = ambient_g;
        e.call = ambient_call++;
        e.id = makeId(ambient_src_code, dst);
    }
    e.pop = 0;
    e.cat = cat;
    insertResolved(dst, e, std::move(cb));
    return e.id;
}

void
ShardedEventQueue::cancel(EventId id)
{
    const unsigned owner = ownerOf(id);
    BEACON_CHECK(owner <= barrierLane(), "cancel of foreign id");
    ShardExecContext *c = ownCtx(this);
    // In-window workers may only touch their own lane; every other
    // context runs while the lanes are quiesced.
    BEACON_CHECK(!c || !c->in_window || owner == c->lane,
                 "cross-shard cancel from lane ", c ? c->lane : 0,
                 " of an event owned by lane ", owner);
    Lane &lane = laneAt(owner);
    lane.live.erase(id);
    lane.callbacks.erase(id);
}

bool
ShardedEventQueue::scheduled(EventId id) const
{
    const unsigned owner = ownerOf(id);
    BEACON_CHECK(owner <= barrierLane(), "query of foreign id");
    const ShardExecContext *c = ownCtx(this);
    BEACON_CHECK(!c || !c->in_window || owner == c->lane,
                 "cross-shard scheduled() query from lane ",
                 c ? c->lane : 0, " of an event owned by lane ", owner);
    const Lane &lane = owner == barrierLane()
                           ? barrier
                           : lane_store[owner];
    return lane.live.count(id) != 0;
}

// ---------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------

Tick
ShardedEventQueue::now() const
{
    const ShardExecContext *c = ownCtx(this);
    return c ? c->now : _now;
}

std::size_t
ShardedEventQueue::pending() const
{
    std::size_t n = barrier.live.size();
    for (const Lane &lane : lane_store)
        n += lane.live.size() + lane.outbox.size();
    return n;
}

std::size_t
ShardedEventQueue::pendingIncludingCancelled() const
{
    std::size_t n = barrier.heap.size();
    for (const Lane &lane : lane_store)
        n += lane.heap.size() + lane.outbox.size();
    return n;
}

Tick
ShardedEventQueue::nextPendingTick()
{
    BEACON_CHECK(!window_open, "nextPendingTick() inside a window");
    Tick best = max_tick;
    bool any = false;
    for (unsigned i = 0; i <= barrierLane(); ++i) {
        Lane &lane = laneAt(i);
        if (!pruneHead(lane))
            continue;
        const Tick when = lane.heap.front().when;
        if (!any || when < best)
            best = when;
        any = true;
    }
    return any ? best : max_tick;
}

// ---------------------------------------------------------------
// Serial-canonical execution
// ---------------------------------------------------------------

void
ShardedEventQueue::execSerial(unsigned lane_idx, Entry top, Callback cb)
{
    BEACON_DCHECK(top.g != unresolved_g,
                  "serial execution of an unresolved entry");
    // Determinism: the canonical key order must be strictly
    // increasing, exactly like the serial queue's (tick, seq) guard.
    BEACON_DCHECK(
        !has_executed || top.when > last_when ||
            (top.when == last_when &&
             (top.g > last_g ||
              (top.g == last_g && top.call > last_call))),
        "canonical order violated: event (t=", top.when, ", g=",
        top.g, ", call=", top.call, ") after (t=", last_when, ", g=",
        last_g, ", call=", last_call, ")");
    last_when = top.when;
    last_g = top.g;
    last_call = top.call;
    has_executed = true;

    const std::uint64_t g_exec = g_counter++;
    _now = top.when;
    ++executed;
    if (flight)
        flight->note(lane_idx, top.when, top.cat);

    ShardExecContext ctx;
    ctx.queue = this;
    ctx.lane = lane_idx;
    ctx.now = top.when;
    ctx.in_window = false;
    ctx.g = g_exec;
    ctx.next_call = 0;
    {
        CtxGuard guard(&ctx);
        if (profiler) {
            profiler->beginEvent(top.cat, top.when);
            cb();
            profiler->endEvent(top.cat);
        } else {
            cb();
        }
    }
    ambient_g = g_exec;
    ambient_call = ctx.next_call;
}

bool
ShardedEventQueue::runOne()
{
    BEACON_CHECK(!window_open, "runOne() inside a window");
    int best = -1;
    for (unsigned i = 0; i <= barrierLane(); ++i) {
        Lane &lane = laneAt(i);
        if (!pruneHead(lane))
            continue;
        const Entry &head = lane.heap.front();
        BEACON_DCHECK(head.g != unresolved_g,
                      "unresolved entry outside a window");
        if (best < 0 ||
            entryLess(head, laneAt(unsigned(best)).heap.front()))
            best = int(i);
    }
    if (best < 0)
        return false;

    Lane &lane = laneAt(unsigned(best));
    Entry top = heapPop(lane);
    BEACON_DCHECK(!lane.has_popped ||
                      entryLess(lane.last_popped, top),
                  "lane pop order violated");
    lane.last_popped = top;
    lane.has_popped = true;
    auto it = lane.callbacks.find(top.id);
    BEACON_DCHECK(it != lane.callbacks.end(), "live entry without cb");
    Callback cb = std::move(it->second);
    lane.callbacks.erase(it);
    lane.live.erase(top.id);
    ++lane.exec_count;
    lane.log_base = lane.exec_count;
    ++n_serial_events;
    execSerial(unsigned(best), std::move(top), std::move(cb));
    return true;
}

// ---------------------------------------------------------------
// Windowed execution
// ---------------------------------------------------------------

ThreadPool &
ShardedEventQueue::pool()
{
    if (!pool_store) {
        unsigned threads = cfg.threads;
        if (threads == 0)
            threads = std::min(unsigned(lane_store.size()),
                               ThreadPool::defaultThreads());
        pool_store = std::make_unique<ThreadPool>(
            std::max(threads, 1u));
    }
    return *pool_store;
}

void
ShardedEventQueue::laneSegment(unsigned lane_idx, Tick w_end,
                               const Entry *bound)
{
    Lane &lane = lane_store[lane_idx];
    EventProfiler *lane_prof =
        profiler ? profiler->laneProfiler(lane_idx) : nullptr;

    ShardExecContext ctx;
    ctx.queue = this;
    ctx.lane = lane_idx;
    ctx.in_window = true;
    CtxGuard guard(&ctx);

    for (;;) {
        if (!pruneHead(lane))
            break;
        if (lane.heap.front().when >= w_end)
            break;
        if (bound && !entryLess(lane.heap.front(), *bound))
            break;
        Entry top = heapPop(lane);
        BEACON_DCHECK(!lane.has_popped ||
                          entryLess(lane.last_popped, top),
                      "lane pop order violated");
        lane.last_popped = top;
        lane.has_popped = true;
        auto it = lane.callbacks.find(top.id);
        BEACON_DCHECK(it != lane.callbacks.end(),
                      "live entry without cb");
        Callback cb = std::move(it->second);
        lane.callbacks.erase(it);
        lane.live.erase(top.id);

        ExecRec rec;
        rec.when = top.when;
        rec.g_sched = top.g;
        rec.pop_sched = top.pop;
        rec.call = top.call;
        rec.pop = lane.exec_count;
        rec.cat = top.cat;

        ctx.now = top.when;
        ctx.pop = lane.exec_count;
        ctx.next_call = 0;
        if (flight)
            flight->note(lane_idx, top.when, top.cat);
        if (lane_prof) {
            lane_prof->beginEvent(top.cat, top.when);
            cb();
            lane_prof->endEvent(top.cat);
        } else {
            cb();
        }
        rec.calls_made = ctx.next_call;
        lane.log.push_back(rec);
        ++lane.exec_count;
    }
}

void
ShardedEventQueue::mergeSegments()
{
    // K-way merge of the per-lane execution logs in canonical key
    // order; the winner of each round receives the next global
    // execution index g. An event scheduled by an in-window event
    // resolves its key through the scheduler's log record — the
    // scheduler always precedes it in canonical order, so its g is
    // already assigned when we need it.
    std::vector<std::size_t> cursor(lane_store.size(), 0);
    for (;;) {
        int best = -1;
        Tick best_when = 0;
        std::uint64_t best_g = 0;
        std::uint32_t best_call = 0;
        for (unsigned i = 0; i < unsigned(lane_store.size()); ++i) {
            Lane &lane = lane_store[i];
            if (cursor[i] >= lane.log.size())
                continue;
            const ExecRec &rec = lane.log[cursor[i]];
            std::uint64_t g = rec.g_sched;
            if (g == unresolved_g) {
                BEACON_DCHECK(rec.pop_sched >= lane.log_base,
                              "stale unresolved scheduler reference");
                const ExecRec &sched =
                    lane.log[rec.pop_sched - lane.log_base];
                BEACON_DCHECK(sched.g_assigned != unresolved_g,
                              "scheduler merged after schedulee");
                g = sched.g_assigned;
            }
            if (best < 0 || rec.when < best_when ||
                (rec.when == best_when &&
                 (g < best_g ||
                  (g == best_g && rec.call < best_call)))) {
                best = int(i);
                best_when = rec.when;
                best_g = g;
                best_call = rec.call;
            }
        }
        if (best < 0)
            break;

        Lane &lane = lane_store[unsigned(best)];
        ExecRec &rec = lane.log[cursor[unsigned(best)]];
        BEACON_DCHECK(
            !has_executed || best_when > last_when ||
                (best_when == last_when &&
                 (best_g > last_g ||
                  (best_g == last_g && best_call > last_call))),
            "canonical merge order violated at t=", best_when);
        last_when = best_when;
        last_g = best_g;
        last_call = best_call;
        has_executed = true;

        rec.g_assigned = g_counter++;
        _now = rec.when;
        ++executed;
        if (merge_hook)
            merge_hook->commitLaneEvent(unsigned(best), rec.pop);
        ambient_g = rec.g_assigned;
        ambient_call = rec.calls_made;
        ++cursor[unsigned(best)];
    }
    resolveAfterMerge();
}

void
ShardedEventQueue::resolveAfterMerge()
{
    // Resolve lazy keys left in the lane heaps. Within a lane, g is
    // monotone in pop index and any freshly assigned g exceeds every
    // pre-existing one, so resolution preserves heap order in place.
    for (Lane &lane : lane_store) {
        for (Entry &e : lane.heap) {
            if (e.g != unresolved_g)
                continue;
            BEACON_DCHECK(e.pop >= lane.log_base &&
                              e.pop - lane.log_base < lane.log.size(),
                          "unresolved entry without scheduler record");
            e.g = lane.log[e.pop - lane.log_base].g_assigned;
            BEACON_DCHECK(e.g != unresolved_g, "merge left a hole");
            e.pop = 0;
        }
    }
    // Drain the single-writer outboxes into their destination lanes.
    for (Lane &lane : lane_store) {
        for (Mail &mail : lane.outbox) {
            Entry e = mail.entry;
            if (e.g == unresolved_g) {
                BEACON_DCHECK(e.pop >= lane.log_base &&
                                  e.pop - lane.log_base <
                                      lane.log.size(),
                              "outbox entry without scheduler record");
                e.g = lane.log[e.pop - lane.log_base].g_assigned;
                e.pop = 0;
            }
            insertResolved(mail.dst, e, std::move(mail.cb));
            ++n_mailbox;
        }
        lane.outbox.clear();
        lane.log.clear();
        lane.log_base = lane.exec_count;
    }
}

void
ShardedEventQueue::execBarrierOne()
{
    Entry top = heapPop(barrier);
    BEACON_DCHECK(!barrier.has_popped ||
                      entryLess(barrier.last_popped, top),
                  "barrier pop order violated");
    barrier.last_popped = top;
    barrier.has_popped = true;
    auto it = barrier.callbacks.find(top.id);
    BEACON_DCHECK(it != barrier.callbacks.end(),
                  "live entry without cb");
    Callback cb = std::move(it->second);
    barrier.callbacks.erase(it);
    barrier.live.erase(top.id);
    ++barrier.exec_count;
    execSerial(barrierLane(), std::move(top), std::move(cb));
}

bool
ShardedEventQueue::runWindow(Tick limit)
{
    BEACON_CHECK(!window_open, "runWindow() inside a window");
    BEACON_CHECK(!ownCtx(this), "runWindow() inside a callback");
    const Tick t0 = nextPendingTick();
    if (t0 == max_tick || t0 > limit)
        return false;
    if (cfg.lookahead == 0 || t0 >= max_tick - cfg.lookahead)
        return runOne(); // no usable horizon: serial-canonical step

    if (!lanes_prepared) {
        if (profiler)
            profiler->prepareLanes(lane_store.size());
        if (merge_hook)
            merge_hook->prepareLanes(lane_store.size());
        lanes_prepared = true;
    }

    Tick w_end = t0 + cfg.lookahead;
    if (limit != max_tick && w_end > limit + 1)
        w_end = limit + 1;
    window_open = true;
    window_end = w_end;

    std::vector<unsigned> active;
    std::vector<std::future<void>> joins;
    for (;;) {
        // Barrier-lane bound: no lane event with a key at or beyond
        // the earliest barrier event may run before it.
        Entry bound_key;
        bool has_bound = false;
        if (pruneHead(barrier) &&
            barrier.heap.front().when < w_end) {
            bound_key = barrier.heap.front();
            BEACON_DCHECK(bound_key.g != unresolved_g,
                          "unresolved barrier entry");
            has_bound = true;
        }
        active.clear();
        for (unsigned i = 0; i < unsigned(lane_store.size()); ++i) {
            Lane &lane = lane_store[i];
            if (!pruneHead(lane))
                continue;
            const Entry &head = lane.heap.front();
            if (head.when >= w_end)
                continue;
            if (has_bound && !entryLess(head, bound_key))
                continue;
            active.push_back(i);
        }
        if (active.empty()) {
            if (has_bound) {
                execBarrierOne();
                continue;
            }
            break;
        }
        const Entry *bound = has_bound ? &bound_key : nullptr;
        if (cfg.inline_windows || active.size() == 1) {
            for (unsigned lane_idx : active)
                laneSegment(lane_idx, w_end, bound);
            ++n_inline_segments;
        } else {
            joins.clear();
            for (unsigned lane_idx : active)
                joins.push_back(pool().submit([this, lane_idx, w_end,
                                               bound] {
                    laneSegment(lane_idx, w_end, bound);
                }));
            for (std::future<void> &join : joins)
                join.get();
            ++n_par_segments;
        }
        mergeSegments();
        if (!has_bound)
            break;
    }
    window_open = false;
    ++n_windows;
    return true;
}

Tick
ShardedEventQueue::run(Tick limit)
{
    for (;;) {
        const Tick t0 = nextPendingTick();
        if (t0 == max_tick || t0 > limit)
            break;
        if (cfg.lookahead == 0) {
            runOne();
            continue;
        }
        runWindow(limit);
    }
    return _now;
}

void
ShardedEventQueue::reset()
{
    BEACON_CHECK(!window_open, "reset() inside a window");
    for (unsigned i = 0; i <= barrierLane(); ++i) {
        Lane &lane = laneAt(i);
        lane.heap.clear();
        lane.live.clear();
        lane.callbacks.clear();
        lane.exec_count = 0;
        lane.log_base = 0;
        lane.log.clear();
        lane.outbox.clear();
        lane.id_seq = 0;
        lane.has_popped = false;
    }
    _now = 0;
    executed = 0;
    g_counter = 1;
    ambient_g = 0;
    ambient_call = 0;
    coord_id_seq = 0;
    last_when = 0;
    last_g = 0;
    last_call = 0;
    has_executed = false;
}

void
ShardedEventQueue::setProfiler(EventProfiler *p)
{
    profiler = p;
    lanes_prepared = false; // re-announce lanes to the new observer
}

} // namespace beacon
