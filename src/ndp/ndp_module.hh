/**
 * @file
 * The NDP module (Fig. 5 b): PEs, Task Scheduler, and I/O buffer.
 *
 * One NDP module sits on each CXLG-DIMM (BEACON-D) or inside each
 * CXL-Switch's Switch-Logic (BEACON-S). It owns a pool of
 * fixed-function PEs and a Task Scheduler with incoming (waiting for
 * operands) and outgoing (ready to run) queues.
 *
 * Memory accesses are delegated to the owner through an IssueFn so
 * the module stays independent of the fabric and address-mapping
 * layers: the owner implements the Address Translator + MC path and
 * calls the completion callback when the operand is back.
 */

#ifndef BEACON_NDP_NDP_MODULE_HH
#define BEACON_NDP_NDP_MODULE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "check/checker_config.hh"
#include "ndp/task.hh"
#include "obs/trace.hh"
#include "sim/sim_object.hh"

namespace beacon
{

/** NDP module configuration. */
struct NdpModuleParams
{
    unsigned num_pes = 128;      //!< 128 per CXLG-DIMM, 256 per switch
    Tick pe_clock_ps = 1250;     //!< PE clock = DRAM bus clock
    /** Max tasks resident (incoming + outgoing + running). */
    unsigned max_inflight_tasks = 512;
    /** Verification toggles; ndp_accounting arms invariant checks. */
    CheckerConfig checkers;
    /**
     * Event-queue home hint of the module's step events. A module on
     * a CXLG-DIMM homes to that DIMM's lane so its PE pipeline and
     * its local DRAM controller advance together off lane 0; hint 0
     * (the default) keeps everything on the default lane.
     */
    std::uint32_t home_hint = 0;
    /**
     * Ticks between a task's last step retiring on the module and
     * the completion notification (on_done / the module observer)
     * firing on the default lane — the completion interrupt's trip
     * back to the host-side driver. Must be >= the sharded queue's
     * lookahead whenever home_hint maps to a worker lane, because
     * the observers touch host/driver state owned by lane 0.
     */
    Tick done_notify_delay = 0;
};

/**
 * The NDP module: schedules tasks over PEs and issues their memory
 * accesses through the owner-provided path.
 */
class NdpModule : public SimObject
{
  public:
    /**
     * Owner-side memory path: perform @p request for this module and
     * invoke the callback when the data is available / the write or
     * atomic has been acknowledged.
     */
    using IssueFn =
        std::function<void(const AccessRequest &request,
                           std::function<void(Tick)> on_complete)>;

    /** Called whenever a task finishes (for workload refill). */
    using TaskDoneFn = std::function<void()>;

    NdpModule(const std::string &name, EventQueue &eq,
              StatRegistry &stats, const NdpModuleParams &params,
              IssueFn issue_fn);

    /** True if the module can accept another task right now. */
    bool
    canAccept() const
    {
        return resident_tasks < p.max_inflight_tasks;
    }

    /**
     * Submit a task; the scheduler will dispatch it to a PE.
     * @p on_done (optional) fires when this particular task
     * completes, before the module-level observer — the hook the
     * multi-tenant orchestrator uses for per-job accounting.
     */
    void submit(TaskPtr task, TaskDoneFn on_done = nullptr);

    /** Register a completion observer (single observer). */
    void setTaskDoneFn(TaskDoneFn fn) { task_done = std::move(fn); }

    std::uint64_t tasksCompleted() const { return tasks_completed; }
    std::uint64_t accessesIssued() const { return accesses_issued; }
    std::uint64_t accessesCompleted() const
    {
        return accesses_completed;
    }
    unsigned residentTasks() const { return resident_tasks; }

    /**
     * End-of-run accounting validation (checkers.ndp_accounting):
     * once every dispatched task has completed, the module must be
     * empty and every issued access must have completed.
     */
    void finalizeCheck() const;

    /** Total PE-busy ticks (for PE energy accounting). */
    Tick peBusyTicks() const { return pe_busy_ticks; }

    /** PE-busy ticks attributed to each tenant that ran here. */
    const std::map<TenantId, Tick> &
    peBusyByTenant() const
    {
        return pe_busy_by_tenant;
    }

    const NdpModuleParams &params() const { return p; }

  private:
    struct PendingTask
    {
        TaskPtr task;
        TaskDoneFn on_done;
        unsigned outstanding_accesses = 0;
        /** Residency span submit -> completion (no-op when off). */
        obs::TraceSpan span;
        unsigned slot = 0;
    };

    /** Dispatch ready tasks onto idle PEs. */
    void dispatch();

    /** Run one step of @p pending on a PE (consumes a PE slot). */
    void runStep(std::unique_ptr<PendingTask> pending);

    /** A step's accesses have all completed: task is ready again. */
    void operandsReady(std::unique_ptr<PendingTask> pending);

    /** Fire the completion observers after done_notify_delay. */
    void notifyDone(TaskDoneFn on_done);

    NdpModuleParams p;
    IssueFn issue;
    TaskDoneFn task_done;

    /** Outgoing queue: ready-to-run tasks. */
    std::deque<std::unique_ptr<PendingTask>> ready_queue;
    unsigned busy_pes = 0;
    unsigned resident_tasks = 0;

    std::uint64_t tasks_completed = 0;
    std::uint64_t accesses_issued = 0;
    std::uint64_t accesses_completed = 0;
    Tick pe_busy_ticks = 0;
    /** Per-tenant PE-busy attribution; the conservation invariant
     *  (sum over tenants == pe_busy_ticks) is test-enforced. */
    std::map<TenantId, Tick> pe_busy_by_tenant;

    Counter &stat_tasks;
    Counter &stat_accesses;
    Counter &stat_steps;
    Counter &stat_pe_busy;

    /** Lazily created "tenant<k>.peBusyTicks" registry counters. */
    Counter &tenantBusyStat(TenantId tenant);
    std::map<TenantId, Counter *> tenant_busy_stats;

    // Tracing (null when off): tasks occupy numbered slot tracks so
    // concurrent residency spans never overlap within one track.
    obs::TraceSink *trace = nullptr;
    obs::TrackId trace_mod = 0;
    std::vector<char> slot_busy;
    std::vector<obs::TrackId> slot_tracks;
    std::uint64_t submit_seq = 0;

    /** Lowest free slot track, growing the pool as needed. */
    unsigned acquireSlot();
};

} // namespace beacon

#endif // BEACON_NDP_NDP_MODULE_HH
