/**
 * @file
 * Atomic Engine (Fig. 5 c / Fig. 7).
 *
 * Resolves read-modify-write data races near the memory: the engine
 * serialises atomic operations that target the same memory word,
 * performs read -> arithmetic -> write-back against the DRAM path
 * supplied by the owner, and acknowledges the requester once the
 * write has been accepted. Operations on different words proceed in
 * parallel (the DRAM controller provides the real ordering there).
 */

#ifndef BEACON_NDP_ATOMIC_ENGINE_HH
#define BEACON_NDP_ATOMIC_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/sim_object.hh"

namespace beacon
{

/** Atomic Engine configuration. */
struct AtomicEngineParams
{
    /** Arithmetic latency of one atomic update. */
    Tick compute_latency = 5000; // 4 DRAM cycles
    /**
     * Event-queue home hint of the engine's compute events. A
     * partition-local engine on a CXLG-DIMM homes to that DIMM's
     * lane (with its NDP module and DRAM controller); switch-level
     * engines keep the default lane 0.
     */
    std::uint32_t home_hint = 0;
};

/** Near-memory atomic RMW unit. */
class AtomicEngine : public SimObject
{
  public:
    /** Owner-provided DRAM read/write path (callback at data end). */
    using MemFn = std::function<void(std::function<void(Tick)>)>;
    using DoneFn = std::function<void(Tick)>;

    AtomicEngine(const std::string &name, EventQueue &eq,
                 StatRegistry &stats,
                 const AtomicEngineParams &params = {})
        : SimObject(name, eq, stats),
          p(params),
          stat_ops(stat("atomicOps")),
          stat_conflicts(stat("sameWordConflicts"))
    {}

    /**
     * Perform one atomic RMW on the word identified by @p word_key.
     * @param read  issues the DRAM read of the word
     * @param write issues the DRAM write-back
     * @param done  acknowledgement to the requester
     */
    void
    perform(std::uint64_t word_key, MemFn read, MemFn write,
            DoneFn done)
    {
        eq.checkLaneTouch(p.home_hint, "AtomicEngine::perform");
        ++stat_ops;
        Pending op{std::move(read), std::move(write), std::move(done)};
        auto [it, inserted] =
            word_queues.try_emplace(word_key);
        it->second.push_back(std::move(op));
        if (!inserted && it->second.size() > 1) {
            ++stat_conflicts;
            return; // an earlier op on this word is in flight
        }
        start(word_key);
    }

    std::uint64_t opsPerformed() const
    {
        return std::uint64_t(stat_ops.value());
    }

  private:
    struct Pending
    {
        MemFn read;
        MemFn write;
        DoneFn done;
    };

    void
    start(std::uint64_t word_key)
    {
        Pending &op = word_queues.at(word_key).front();
        op.read([this, word_key](Tick) {
            // Data at the engine: perform the arithmetic.
            eq.scheduleIn(
                p.compute_latency,
                [this, word_key] {
                    Pending &op2 = word_queues.at(word_key).front();
                    op2.write([this, word_key](Tick t) {
                        finish(word_key, t);
                    });
                },
                EventCat::Ndp, p.home_hint);
        });
    }

    void
    finish(std::uint64_t word_key, Tick t)
    {
        auto it = word_queues.find(word_key);
        Pending op = std::move(it->second.front());
        it->second.pop_front();
        const bool more = !it->second.empty();
        if (!more)
            word_queues.erase(it);
        op.done(t);
        if (more)
            start(word_key);
    }

    AtomicEngineParams p;
    std::unordered_map<std::uint64_t, std::deque<Pending>> word_queues;
    Counter &stat_ops;
    Counter &stat_conflicts;
};

} // namespace beacon

#endif // BEACON_NDP_ATOMIC_ENGINE_HH
